// Package naplet is the public facade of the NapletSocket reproduction: a
// mobile agent system (hosts, docking, location service, mailbox-based
// asynchronous messaging) with the paper's contribution on top — the
// NapletSocket connection migration mechanism for synchronous transient
// communication between mobile agents.
//
// A minimal deployment:
//
//	net, _ := naplet.NewNetwork()             // shared location service
//	h1, _ := net.AddHost("h1")                // agent servers
//	h2, _ := net.AddHost("h2")
//	net.Register("server", serverBehaviour)   // behaviours all hosts know
//	net.Register("client", clientBehaviour)
//	h1.Launch("bob", serverBehaviour)
//	h2.Launch("alice", clientBehaviour)
//
// Inside a behaviour's Run(ctx *naplet.Context):
//
//	ss, _ := naplet.Listen(ctx)               // NapletServerSocket
//	conn, _ := ss.Accept(ctx.StdContext())
//	conn, _ := naplet.Dial(ctx, "bob")        // NapletSocket
//	conn.Write(...); conn.Read(...)           // survives migration
//	return ctx.MigrateTo(otherDock)           // hop; conns migrate along
//	conn, _ = naplet.Attach(ctx, id)          // re-attach after landing
package naplet

import (
	"context"
	"errors"
	"sync"
	"time"

	"naplet/internal/agent"
	"naplet/internal/core"
	"naplet/internal/journal"
	"naplet/internal/naming"
	"naplet/internal/obs"
	"naplet/internal/postoffice"
	"naplet/internal/security"
	"naplet/internal/wire"
)

// Re-exported core types, so applications only import this package.
type (
	// Context is the per-hop execution environment of a behaviour.
	Context = agent.Context
	// Behavior is mobile code: Run is re-entered on every visited host.
	Behavior = agent.Behavior
	// Socket is a NapletSocket connection endpoint.
	Socket = core.Socket
	// ServerSocket is a NapletServerSocket accept endpoint.
	ServerSocket = core.ServerSocket
	// ConnID is the stable cross-migration connection handle.
	ConnID = wire.ConnID
	// Message is a PostOffice mailbox message.
	Message = postoffice.Message
	// Mailbox is an agent's PostOffice mailbox.
	Mailbox = postoffice.Box
)

// Re-exported sentinels.
var (
	// ErrMigrate must be propagated from Run to trigger a hop.
	ErrMigrate = agent.ErrMigrate
	// ErrMigrated reports use of a Socket handle whose agent moved on.
	ErrMigrated = core.ErrMigrated
	// ErrClosed reports use of a closed connection.
	ErrClosed = core.ErrClosed
)

// ParseConnID parses the hex form of a connection id.
func ParseConnID(s string) (ConnID, error) { return wire.ParseConnID(s) }

// Registry holds the behaviour types a deployment can run.
type Registry = agent.Registry

// NewRegistry returns an empty behaviour registry; share one across the
// nodes of a process, and register the same behaviours in every process.
func NewRegistry() *Registry { return agent.NewRegistry() }

// extension keys on the agent host.
const (
	extController = "napletsocket.controller"
	extOffice     = "napletsocket.postoffice"
)

// Config tunes a Node beyond the defaults.
type Config struct {
	// Name is the host name (required).
	Name string
	// DockAddr, ControlAddr, DataAddr, MailAddr bind the four listeners;
	// empty values select ephemeral loopback ports.
	DockAddr, ControlAddr, DataAddr, MailAddr string
	// Directory is the shared location service handle (required): a
	// naming.Local for in-process deployments or a *naming.Client for a
	// remote naming server.
	Directory agent.Directory
	// Registry holds the behaviours this node can run (required; share one
	// registry across nodes of one process).
	Registry *agent.Registry
	// Policy overrides the default policy (agents may connect/listen/
	// migrate; raw sockets stay system-only).
	Policy *security.Store
	// Insecure selects the paper's "w/o security" configuration.
	Insecure bool
	// MigrationDelay models agent code+state transfer cost (the paper's
	// T_a-migrate); zero means real transfer time only.
	MigrationDelay time.Duration
	// DockDialTimeout bounds the TCP dial to a destination dock when
	// shipping an agent. Zero selects the default (10s).
	DockDialTimeout time.Duration
	// BundleTimeout bounds the transfer of one migration bundle in either
	// direction. Zero selects the default (30s).
	BundleTimeout time.Duration
	// ClusterSecret authenticates the docking channel between the
	// deployment's hosts (see agent.Config.ClusterSecret).
	ClusterSecret []byte
	// WithPostOffice additionally runs the asynchronous mailbox service.
	WithPostOffice bool
	// JournalDir, when non-empty, enables crash recovery: agent and
	// connection state is checkpointed into a write-ahead journal under this
	// directory, and Node.Recover rebuilds both after a restart with the
	// same directory.
	JournalDir string
	// JournalSync selects the journal's fsync policy: "interval" (default),
	// "always", or "never". A crash of the napletd process alone loses
	// nothing under any policy (appends are atomic single writes); the
	// policy only matters for whole-machine failures.
	JournalSync string
	// HeartbeatInterval, when positive, enables the phi-accrual peer
	// failure detector on the controller (see core.Config).
	HeartbeatInterval time.Duration
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// Logger receives leveled diagnostics from every layer of the node and
	// takes precedence over Logf (which stays as a compatibility shim).
	Logger *obs.Logger
	// Metrics collects the node's runtime metrics: connection lifecycle
	// counters, FSM transitions, suspend/resume latency and phase
	// breakdowns, agent migrations, and control-channel RUDP stats. Nil
	// disables collection. Use one registry per node: gauge callbacks are
	// registered under fixed names and a shared registry would report only
	// the last node's values.
	Metrics *obs.Registry
	// Tracer records migration and connection traces (span trees with
	// cross-host context propagation) for the /tracez debug view. Nil
	// auto-creates one per node; tracing is cheap and always on.
	Tracer *obs.Tracer
	// Core tunes the NapletSocket controller timeouts (optional).
	Core core.Config
}

// Node is one fully wired agent server: agent host + NapletSocket
// controller (+ optional post office), sharing one location service with
// its peers.
type Node struct {
	host    *agent.Host
	ctrl    *core.Controller
	office  *postoffice.Office
	guard   *security.Guard
	metrics *obs.Registry
	journal *journal.Journal
}

// NewNode builds and starts a node.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Name == "" || cfg.Directory == nil || cfg.Registry == nil {
		return nil, errors.New("naplet: Config requires Name, Directory, and Registry")
	}
	policy := cfg.Policy
	if policy == nil {
		policy = security.NewStore(security.AllowAgentAll()...)
	}
	guard, err := security.NewGuard(policy)
	if err != nil {
		return nil, err
	}

	var jnl *journal.Journal
	if cfg.JournalDir != "" {
		sync, err := journal.ParseSyncPolicy(cfg.JournalSync)
		if err != nil {
			return nil, err
		}
		jnl, err = journal.Open(cfg.JournalDir, journal.Options{
			Sync:    sync,
			Metrics: cfg.Metrics,
			Logger:  cfg.Logger,
		})
		if err != nil {
			return nil, err
		}
	}

	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(cfg.Name)
	}

	ccfg := cfg.Core
	ccfg.HostName = cfg.Name
	ccfg.ControlAddr = cfg.ControlAddr
	ccfg.DataAddr = cfg.DataAddr
	ccfg.Guard = guard
	ccfg.Locator = cfg.Directory
	ccfg.Insecure = cfg.Insecure
	if ccfg.Journal == nil {
		ccfg.Journal = jnl
	}
	if ccfg.HeartbeatInterval == 0 {
		ccfg.HeartbeatInterval = cfg.HeartbeatInterval
	}
	if ccfg.Logger == nil {
		ccfg.Logger = cfg.Logger
	}
	if ccfg.Metrics == nil {
		ccfg.Metrics = cfg.Metrics
	}
	if ccfg.Tracer == nil {
		ccfg.Tracer = tracer
	}
	if ccfg.Logf == nil {
		ccfg.Logf = cfg.Logf
	}
	if ccfg.Logf == nil && ccfg.Logger == nil {
		ccfg.Logf = func(string, ...any) {}
	}
	ctrl, err := core.NewController(ccfg)
	if err != nil {
		if jnl != nil {
			jnl.Close()
		}
		return nil, err
	}

	var office *postoffice.Office
	mailAddr := ""
	if cfg.WithPostOffice {
		office, err = postoffice.New(cfg.Name, cfg.Directory, cfg.MailAddr)
		if err != nil {
			ctrl.Close()
			if jnl != nil {
				jnl.Close()
			}
			return nil, err
		}
		mailAddr = office.Addr()
	}

	hcfg := agent.Config{
		Name:            cfg.Name,
		DockAddr:        cfg.DockAddr,
		ControlAddr:     ctrl.ControlAddr(),
		DataAddr:        ctrl.DataAddr(),
		MailAddr:        mailAddr,
		Directory:       cfg.Directory,
		Registry:        cfg.Registry,
		Guard:           guard,
		MigrationDelay:  cfg.MigrationDelay,
		DockDialTimeout: cfg.DockDialTimeout,
		BundleTimeout:   cfg.BundleTimeout,
		ClusterSecret:   cfg.ClusterSecret,
		Logf:            cfg.Logf,
		Logger:          cfg.Logger,
		Metrics:         cfg.Metrics,
		Tracer:          ccfg.Tracer,
		Journal:         jnl,
	}
	host, err := agent.NewHost(hcfg)
	if err != nil {
		ctrl.Close()
		if office != nil {
			office.Close()
		}
		if jnl != nil {
			jnl.Close()
		}
		return nil, err
	}
	host.AddHook(ctrl)
	host.SetExtension(extController, ctrl)
	if office != nil {
		host.AddHook(office)
		host.SetExtension(extOffice, office)
	}
	return &Node{host: host, ctrl: ctrl, office: office, guard: guard, metrics: cfg.Metrics, journal: jnl}, nil
}

// Name returns the node's host name.
func (n *Node) Name() string { return n.host.Name() }

// DockAddr returns the address other nodes' agents migrate to.
func (n *Node) DockAddr() string { return n.host.DockAddr() }

// Host exposes the underlying agent server.
func (n *Node) Host() *agent.Host { return n.host }

// Controller exposes the underlying NapletSocket controller.
func (n *Node) Controller() *core.Controller { return n.ctrl }

// Metrics returns the node's registry (nil when not configured).
func (n *Node) Metrics() *obs.Registry { return n.metrics }

// Tracer returns the node's migration/connection tracer.
func (n *Node) Tracer() *obs.Tracer { return n.ctrl.Tracer() }

// Launch starts an agent on this node.
func (n *Node) Launch(agentID string, b Behavior) error { return n.host.Launch(agentID, b) }

// Recover rebuilds the node's state from its journal after a restart with
// the same JournalDir: first the connection layer (stranded connections are
// restored in the SUSPENDED state and driven through resume), then the
// agent layer (journaled agents are re-registered with the location service
// and re-entered from their last checkpoint). It returns the number of
// agents recovered. Call it once, after NewNode and before Launch; without
// a journal it is a no-op.
func (n *Node) Recover() (int, error) {
	if _, err := n.ctrl.RecoverConns(); err != nil {
		return 0, err
	}
	return n.host.Recover()
}

// Close shuts the node down.
func (n *Node) Close() error {
	err := n.host.Close()
	if cerr := n.ctrl.Close(); err == nil {
		err = cerr
	}
	if n.office != nil {
		if oerr := n.office.Close(); err == nil {
			err = oerr
		}
	}
	if n.journal != nil {
		if jerr := n.journal.Close(); err == nil {
			err = jerr
		}
	}
	return err
}

// Network is a convenience for in-process deployments: one shared location
// service and behaviour registry, N nodes.
type Network struct {
	Service  *naming.Service
	Registry *agent.Registry

	mu    sync.Mutex
	nodes map[string]*Node
	// defaults applied to every AddHost.
	defaults Config
}

// NetworkOption tweaks every node of a Network.
type NetworkOption func(*Config)

// WithInsecure selects the paper's "w/o security" configuration.
func WithInsecure() NetworkOption { return func(c *Config) { c.Insecure = true } }

// WithPostOffices runs a post office on every node.
func WithPostOffices() NetworkOption { return func(c *Config) { c.WithPostOffice = true } }

// WithMigrationDelay models the agent transfer cost on every node.
func WithMigrationDelay(d time.Duration) NetworkOption {
	return func(c *Config) { c.MigrationDelay = d }
}

// WithClusterSecret authenticates the docking channel across the network's
// nodes.
func WithClusterSecret(secret []byte) NetworkOption {
	return func(c *Config) { c.ClusterSecret = secret }
}

// WithLogf routes node diagnostics.
func WithLogf(logf func(string, ...any)) NetworkOption {
	return func(c *Config) { c.Logf = logf }
}

// WithCore tunes controller timeouts on every node.
func WithCore(cc core.Config) NetworkOption { return func(c *Config) { c.Core = cc } }

// WithHeartbeat enables the phi-accrual peer failure detector on every
// node, probing at the given interval.
func WithHeartbeat(interval time.Duration) NetworkOption {
	return func(c *Config) { c.HeartbeatInterval = interval }
}

// NewNetwork creates an empty in-process network.
func NewNetwork(opts ...NetworkOption) *Network {
	n := &Network{
		Service:  naming.NewService(),
		Registry: agent.NewRegistry(),
		nodes:    make(map[string]*Node),
	}
	for _, o := range opts {
		o(&n.defaults)
	}
	return n
}

// Register records a behaviour prototype under a stable name on the shared
// registry (and with gob).
func (nw *Network) Register(name string, proto Behavior) { nw.Registry.Register(name, proto) }

// AddHost creates and starts a node named name. Names must be unique
// within the network.
func (nw *Network) AddHost(name string) (*Node, error) {
	nw.mu.Lock()
	if _, dup := nw.nodes[name]; dup {
		nw.mu.Unlock()
		return nil, errors.New("naplet: host " + name + " already exists")
	}
	nw.mu.Unlock()
	cfg := nw.defaults
	cfg.Name = name
	cfg.Directory = naming.Local{Svc: nw.Service}
	cfg.Registry = nw.Registry
	node, err := NewNode(cfg)
	if err != nil {
		return nil, err
	}
	nw.mu.Lock()
	nw.nodes[name] = node
	nw.mu.Unlock()
	return node, nil
}

// Node returns a node by name, or nil.
func (nw *Network) Node(name string) *Node {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.nodes[name]
}

// DockOf returns the dock address of the named host — what behaviours pass
// to Context.MigrateTo.
func (nw *Network) DockOf(name string) string {
	if n := nw.Node(name); n != nil {
		return n.DockAddr()
	}
	return ""
}

// Await blocks until the named agent terminates (is deregistered), polling
// the location service.
func (nw *Network) Await(ctx context.Context, agentID string) error {
	for {
		_, err := nw.Service.Lookup(ctx, agentID)
		if errors.Is(err, naming.ErrNotFound) {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(3 * time.Millisecond):
		}
	}
}

// Close shuts every node down.
func (nw *Network) Close() error {
	nw.mu.Lock()
	nodes := make([]*Node, 0, len(nw.nodes))
	for _, n := range nw.nodes {
		nodes = append(nodes, n)
	}
	nw.mu.Unlock()
	var first error
	for _, n := range nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---- behaviour-side API ----

// controllerOf fetches the NapletSocket controller from a behaviour
// context.
func controllerOf(ctx *Context) (*core.Controller, error) {
	ctrl, ok := ctx.Extension(extController).(*core.Controller)
	if !ok {
		return nil, errors.New("naplet: host runs no NapletSocket controller")
	}
	return ctrl, nil
}

// Dial opens a NapletSocket connection from the calling agent to the named
// target agent, through the controller's security-checked proxy service.
// It retries while the target is still launching or mid-migration.
func Dial(ctx *Context, target string) (*Socket, error) {
	ctrl, err := controllerOf(ctx)
	if err != nil {
		return nil, err
	}
	return ctrl.Dial(ctx, target)
}

// Listen creates (or returns) the calling agent's NapletServerSocket.
func Listen(ctx *Context) (*ServerSocket, error) {
	ctrl, err := controllerOf(ctx)
	if err != nil {
		return nil, err
	}
	return ctrl.Listen(ctx)
}

// Attach re-binds the calling agent to one of its connections by id — the
// post-migration handle (live Socket values cannot travel inside gob state;
// carry conn.ID() instead and Attach after landing).
func Attach(ctx *Context, id ConnID) (*Socket, error) {
	ctrl, err := controllerOf(ctx)
	if err != nil {
		return nil, err
	}
	return ctrl.AgentSocket(ctx.AgentID(), id)
}

// Sockets lists the calling agent's resident connections.
func Sockets(ctx *Context) ([]*Socket, error) {
	ctrl, err := controllerOf(ctx)
	if err != nil {
		return nil, err
	}
	return ctrl.AgentSockets(ctx.AgentID()), nil
}

// MailboxOf opens (or returns) the calling agent's PostOffice mailbox.
func MailboxOf(ctx *Context) (*Mailbox, error) {
	office, ok := ctx.Extension(extOffice).(*postoffice.Office)
	if !ok {
		return nil, errors.New("naplet: host runs no post office")
	}
	return office.Open(ctx.AgentID()), nil
}

// Send delivers an asynchronous persistent message from the calling agent
// to the named agent's mailbox, following it through migrations.
func Send(ctx *Context, to string, body []byte) error {
	office, ok := ctx.Extension(extOffice).(*postoffice.Office)
	if !ok {
		return errors.New("naplet: host runs no post office")
	}
	return office.Send(ctx.StdContext(), ctx.AgentID(), to, body)
}
