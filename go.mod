module naplet

go 1.22
