package naplet

// An end-to-end token-ring workload: N agents in a ring, each connected to
// its successor by a NapletSocket connection; a token circulates while
// every agent migrates between laps. Exercises many simultaneous
// connections, listener migration, and repeated concurrent hops through
// the public API only.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

var ringResults = struct {
	sync.Mutex
	tokens map[string][]int
}{tokens: make(map[string][]int)}

func ringRecord(agent string, token int) {
	ringResults.Lock()
	ringResults.tokens[agent] = append(ringResults.tokens[agent], token)
	ringResults.Unlock()
}

// ringAgent holds a connection to its successor and accepts one from its
// predecessor; agent 0 injects the token and counts laps.
type ringAgent struct {
	Index, Size int
	Laps        int
	Docks       []string // itinerary: where to migrate after each lap
	NextConn    string   // connection to the successor (we dial)
	PrevConn    string   // connection from the predecessor (we accept)
	Lap         int
}

func (r *ringAgent) name(i int) string { return fmt.Sprintf("ring-%d", i%r.Size) }

func (r *ringAgent) Run(ctx *Context) error {
	var next, prev *Socket
	var err error
	if r.NextConn == "" {
		// Establish the ring: every agent listens, then dials its
		// successor. Acceptance order is arbitrary; Dial retries while the
		// successor is still setting up.
		ss, lerr := Listen(ctx)
		if lerr != nil {
			return lerr
		}
		acceptDone := make(chan *Socket, 1)
		acceptErr := make(chan error, 1)
		go func() {
			s, err := ss.Accept(ctx.StdContext())
			if err != nil {
				acceptErr <- err
				return
			}
			acceptDone <- s
		}()
		if next, err = Dial(ctx, r.name(r.Index+1)); err != nil {
			return err
		}
		select {
		case prev = <-acceptDone:
		case err := <-acceptErr:
			return err
		case <-ctx.Done():
			return nil
		}
		r.NextConn = next.ID().String()
		r.PrevConn = prev.ID().String()
	} else {
		nid, perr := ParseConnID(r.NextConn)
		if perr != nil {
			return perr
		}
		pid, perr := ParseConnID(r.PrevConn)
		if perr != nil {
			return perr
		}
		if next, err = Attach(ctx, nid); err != nil {
			return err
		}
		if prev, err = Attach(ctx, pid); err != nil {
			return err
		}
	}

	for {
		if r.Index == 0 {
			// Inject (or re-inject) the token for this lap.
			if err := next.WriteMsg([]byte{byte(r.Lap)}); err != nil {
				return err
			}
		}
		tok, err := prev.ReadMsg()
		if err != nil {
			return err
		}
		ringRecord(ctx.AgentID(), int(tok[0]))
		if r.Index != 0 {
			// Forward the token.
			if err := next.WriteMsg(tok); err != nil {
				return err
			}
		}
		r.Lap++
		if r.Lap >= r.Laps {
			return nil
		}
		// Migrate between laps, if the itinerary says so.
		if len(r.Docks) > 0 {
			dock := r.Docks[0]
			r.Docks = r.Docks[1:]
			return ctx.MigrateTo(dock)
		}
	}
}

func TestTokenRingWithMigrations(t *testing.T) {
	nw := newNet(t, []string{"h1", "h2", "h3", "h4"})
	nw.Register("test.ringAgent", &ringAgent{})

	const size = 3
	const laps = 3
	hosts := []string{"h1", "h2", "h3"}
	for i := 0; i < size; i++ {
		// Each agent hops to a fresh host after every lap.
		var docks []string
		for lap := 1; lap < laps; lap++ {
			docks = append(docks, nw.DockOf(hosts[(i+lap)%len(hosts)]))
		}
		agent := &ringAgent{Index: i, Size: size, Laps: laps, Docks: docks}
		if err := nw.Node(hosts[i]).Launch(fmt.Sprintf("ring-%d", i), agent); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	for i := 0; i < size; i++ {
		if err := nw.Await(ctx, fmt.Sprintf("ring-%d", i)); err != nil {
			t.Fatalf("awaiting ring-%d: %v", i, err)
		}
	}

	ringResults.Lock()
	defer ringResults.Unlock()
	for i := 0; i < size; i++ {
		got := ringResults.tokens[fmt.Sprintf("ring-%d", i)]
		if len(got) != laps {
			t.Fatalf("agent %d saw tokens %v, want %d laps", i, got, laps)
		}
		for lap, tok := range got {
			if tok != lap {
				t.Fatalf("agent %d lap %d saw token %d", i, lap, tok)
			}
		}
	}
}
