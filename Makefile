GO ?= go

.PHONY: build test vet lint race check integration fuzz-smoke bench bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs staticcheck when it is on PATH (CI installs it; locally run
# `go install honnef.co/go/tools/cmd/staticcheck@latest` once). It is kept
# out of `check` so an uninstalled linter never blocks the local gate.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# integration runs only the subprocess tests (two-process deployment and
# crash recovery), uncached.
integration:
	$(GO) test ./cmd/napletd -run Integration -count=1 -v

# fuzz-smoke gives every fuzz target a short budget — enough to replay the
# seed corpora and shake the parsers with a few mutations.
fuzz-smoke:
	for target in FuzzReadFrame FuzzDecodeControlMsg FuzzDecodeControlReply FuzzReadHandoffHeader; do \
		$(GO) test ./internal/wire -run '^$$' -fuzz "^$$target$$" -fuzztime 10s || exit 1; \
	done
	$(GO) test ./internal/journal -run '^$$' -fuzz '^FuzzReplay$$' -fuzztime 10s

# bench runs the Figure 9 throughput benchmark (TCP vs NapletSocket per
# message size).
bench:
	$(GO) test -run '^$$' -bench BenchmarkFig9_Throughput -benchmem .

# bench-smoke is the CI throughput gate: a single-iteration pass over the
# benchmark (catches panics and pathological slowdowns), then benchgate
# reruns the Fig 9 workload and fails if any NapletSocket/TCP throughput
# ratio regresses more than 50% against the committed BENCH_fig9.json.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkFig9_Throughput -benchtime 1x .
	$(GO) run ./cmd/benchgate -baseline BENCH_fig9.json -tolerance 0.5

# check is the gate CI runs: vet, build, and the full suite under the race
# detector.
check: vet build race
