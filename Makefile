GO ?= go

.PHONY: build test vet race check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the gate CI runs: vet, build, and the full suite under the race
# detector.
check: vet build race
