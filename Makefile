GO ?= go

.PHONY: build test vet race check integration fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# integration runs only the subprocess tests (two-process deployment and
# crash recovery), uncached.
integration:
	$(GO) test ./cmd/napletd -run Integration -count=1 -v

# fuzz-smoke gives every fuzz target a short budget — enough to replay the
# seed corpora and shake the parsers with a few mutations.
fuzz-smoke:
	for target in FuzzReadFrame FuzzDecodeControlMsg FuzzDecodeControlReply FuzzReadHandoffHeader; do \
		$(GO) test ./internal/wire -run '^$$' -fuzz "^$$target$$" -fuzztime 10s || exit 1; \
	done
	$(GO) test ./internal/journal -run '^$$' -fuzz '^FuzzReplay$$' -fuzztime 10s

# check is the gate CI runs: vet, build, and the full suite under the race
# detector.
check: vet build race
