GO ?= go

# Knobs for the netem fault-model sweep run as part of `test`: the seed and
# loss probability feed TestLossRateMatchesKnob, so the loss model can be
# swept (`make test NETEM_SEED=7 NETEM_LOSS=0.15`) without editing code.
NETEM_SEED ?= 42
NETEM_LOSS ?= 0.3

.PHONY: build test vet fmt lint race check integration fuzz-smoke bench bench-smoke chaos-smoke naming-smoke storm-smoke wan-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, printing the offenders.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt violations:"; echo "$$out"; exit 1; \
	fi

# lint enforces gofmt, then runs staticcheck when it is on PATH (CI
# installs it; locally run
# `go install honnef.co/go/tools/cmd/staticcheck@latest` once). staticcheck
# is kept out of `check` so an uninstalled linter never blocks the local
# gate.
lint: fmt
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	NETEM_SEED=$(NETEM_SEED) NETEM_LOSS=$(NETEM_LOSS) $(GO) test ./...

race:
	$(GO) test -race ./...

# chaos-smoke is the CI fault-injection gate: the chaos soak (16 streams,
# 2 migrations, RST storms, a 2s partition) in short mode under the race
# detector, uncached so it really runs every time — once over the default
# cleartext transports and once with the AEAD record layer on
# (CHAOS_SECURE=1), so fault injection shakes the encrypted resume path too.
chaos-smoke:
	$(GO) test ./internal/core -run TestChaosSoakExactlyOnce -race -short -count=1 -v
	CHAOS_SECURE=1 $(GO) test ./internal/core -run TestChaosSoakExactlyOnce -race -short -count=1 -v

# naming-smoke is the CI gate for the naming control plane: the
# kill-one-shard chaos test under the race detector (a 3x2 cluster with 2%
# control loss loses a shard leader mid-migration-wave), then benchgate
# reruns the lookup benchmark in short mode and fails if the cached/direct
# speedup regresses more than 50% against BENCH_naming.json or the hit
# rate under the migration storm drops below 90%.
naming-smoke:
	$(GO) test ./internal/naming/cluster -run TestKillOneShardLeader -race -count=1 -v
	$(GO) run ./cmd/benchgate -naming-baseline BENCH_naming.json -naming-short

# storm-smoke is the CI connection-scaling gate: the live storm at a
# reduced population (10k conns, 1k-conn migration wave), checked against
# the committed 100k baseline — heap per connection and wave p99 within
# tolerance, goroutine growth under the O(1) ceiling. The goroutine-leak
# regression test runs first, under the race detector.
storm-smoke:
	$(GO) test ./internal/core -run TestGoroutineCountFlatAcrossConns -race -count=1
	$(GO) run ./cmd/benchgate -c10k-baseline BENCH_c10k.json -c10k-short

# wan-smoke is the CI WAN-robustness gate: the relay rendezvous tests and
# the NAT'd migration scenario under the race detector (two hosts that
# cannot dial each other sustain a migrated connection through an
# untrusted relay), the RTT-adaptive keepalive/backoff regression tests,
# then benchgate reruns the netem scenario matrix in short mode (metro +
# intercontinental, 2 breaks) against BENCH_wan.json — any lost resume,
# false ErrTransportLost, false detector confirm, or false keepalive
# timeout on a merely-slow path fails the gate.
wan-smoke:
	$(GO) test ./internal/relay -race -count=1
	$(GO) test ./internal/transport -run 'TestRelayFallbackThroughNAT|TestRedialBackoffConfigHonored|TestKeepaliveAdaptsToWANRTT' -race -count=1 -v
	$(GO) test ./internal/core -run TestMigrationSustainedThroughRelayNAT -race -count=1 -v
	$(GO) test ./internal/fault -run 'TestRTTHintPreventsFalsePositive|TestSlowPathConfirmedDeadWithoutHint' -race -count=1
	$(GO) run ./cmd/benchgate -wan -wan-baseline BENCH_wan.json -wan-short

# integration runs only the subprocess tests (two-process deployment and
# crash recovery), uncached.
integration:
	$(GO) test ./cmd/napletd -run Integration -count=1 -v

# fuzz-smoke gives every fuzz target a short budget — enough to replay the
# seed corpora and shake the parsers with a few mutations.
fuzz-smoke:
	for target in FuzzReadFrame FuzzDecodeControlMsg FuzzDecodeControlReply FuzzReadHandoffHeader FuzzReadTransportHello; do \
		$(GO) test ./internal/wire -run '^$$' -fuzz "^$$target$$" -fuzztime 10s || exit 1; \
	done
	$(GO) test ./internal/security -run '^$$' -fuzz '^FuzzOpenRecord$$' -fuzztime 10s
	$(GO) test ./internal/journal -run '^$$' -fuzz '^FuzzReplay$$' -fuzztime 10s

# bench runs the Figure 9 throughput benchmark (TCP vs NapletSocket per
# message size).
bench:
	$(GO) test -run '^$$' -bench BenchmarkFig9_Throughput -benchmem .

# bench-smoke is the CI throughput gate: a single-iteration pass over the
# benchmark (catches panics and pathological slowdowns), then benchgate
# reruns the Fig 9 workload — cleartext and with the AEAD record layer on —
# and fails if any NapletSocket/TCP throughput ratio regresses more than
# 50% against the committed BENCH_fig9.json, or the encrypted ratios fall
# below the calibrated fraction of the cleartext baseline at 1KB+.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkFig9_Throughput -benchtime 1x .
	$(GO) run ./cmd/benchgate -baseline BENCH_fig9.json -tolerance 0.5
	$(GO) run ./cmd/benchgate -baseline BENCH_fig9.json -tolerance 0.5 -encrypted
	$(GO) run ./cmd/benchgate -wan -wan-baseline BENCH_wan.json

# check is the gate CI runs: vet, build, and the full suite under the race
# detector.
check: vet build race
