// Quickstart: two agents on two hosts talk over a NapletSocket connection.
//
// An echo agent listens on host h1; a pinger on host h2 resolves it through
// the location service, opens a secure NapletSocket connection through the
// controller proxy (authentication, policy check, Diffie-Hellman session
// key, redirector handoff), and exchanges a few messages.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"naplet"
	"naplet/internal/behaviors"
)

func main() {
	log.SetFlags(0)

	// One in-process deployment: a shared location service plus two hosts.
	nw := naplet.NewNetwork(naplet.WithLogf(log.Printf))
	defer nw.Close()
	behaviors.RegisterAll(nw.Registry)

	h1, err := nw.AddHost("h1")
	if err != nil {
		log.Fatal(err)
	}
	h2, err := nw.AddHost("h2")
	if err != nil {
		log.Fatal(err)
	}

	// The echo agent serves one connection; the pinger dials it by agent
	// id — no addresses or ports anywhere in application code.
	if err := h1.Launch("echoer", &behaviors.Echo{MaxConns: 1}); err != nil {
		log.Fatal(err)
	}
	if err := h2.Launch("pinger", &behaviors.Pinger{Target: "echoer", Count: 5}); err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := nw.Await(ctx, "pinger"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("quickstart: pinger finished; 5 round trips over one NapletSocket connection")
}
