// Multiconn: concurrent migration of both endpoints with multiple
// connections — the Section 3.2 scenario of the paper (its Figure 5).
//
// Two agents, ying and yang, hold two NapletSocket connections between
// them (one opened by each side). Both agents migrate at the same time,
// repeatedly. The controllers serialize the concurrent connection
// migrations with the ACK_WAIT / SUS_RES / RESUME_WAIT protocol driven by
// the hash-based agent priority; the application just keeps exchanging
// messages on both connections and never notices.
//
//	go run ./examples/multiconn
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"naplet"
)

const rounds = 3

// duet is both agents' behaviour: the Lead side opens connection A and
// accepts connection B; the other side does the reverse. Each round, each
// agent sends one message on each connection and reads one from each, then
// both migrate simultaneously.
type duet struct {
	Peer  string
	Lead  bool
	Docks []string
	Round int
	ConnA string // the connection this side dialed (or accepted, for !Lead)
	ConnB string
}

func (d *duet) Run(ctx *naplet.Context) error {
	var a, b *naplet.Socket
	var err error
	if d.ConnA == "" {
		// First hop: establish both connections. The lead dials first and
		// then accepts, the peer the other way around, so the two opens
		// cannot deadlock.
		if d.Lead {
			if a, err = naplet.Dial(ctx, d.Peer); err != nil {
				return err
			}
			ss, lerr := naplet.Listen(ctx)
			if lerr != nil {
				return lerr
			}
			if b, err = ss.Accept(ctx.StdContext()); err != nil {
				return err
			}
		} else {
			ss, lerr := naplet.Listen(ctx)
			if lerr != nil {
				return lerr
			}
			if a, err = ss.Accept(ctx.StdContext()); err != nil {
				return err
			}
			if b, err = naplet.Dial(ctx, d.Peer); err != nil {
				return err
			}
		}
		d.ConnA, d.ConnB = a.ID().String(), b.ID().String()
	} else {
		idA, perr := naplet.ParseConnID(d.ConnA)
		if perr != nil {
			return perr
		}
		idB, perr := naplet.ParseConnID(d.ConnB)
		if perr != nil {
			return perr
		}
		if a, err = naplet.Attach(ctx, idA); err != nil {
			return err
		}
		if b, err = naplet.Attach(ctx, idB); err != nil {
			return err
		}
	}

	// One synchronized exchange on each connection.
	for i, conn := range []*naplet.Socket{a, b} {
		msg := fmt.Sprintf("%s r%d conn%d @%s", ctx.AgentID(), d.Round, i, ctx.HostName())
		if err := conn.WriteMsg([]byte(msg)); err != nil {
			return err
		}
		got, err := conn.ReadMsg()
		if err != nil {
			return err
		}
		ctx.Logf("conn%d <- %q", i, got)
	}

	d.Round++
	if d.Round >= rounds || len(d.Docks) == 0 {
		ctx.Logf("done after %d rounds", d.Round)
		if d.Lead {
			a.Close()
			b.Close()
		}
		return nil
	}
	next := d.Docks[0]
	d.Docks = d.Docks[1:]
	ctx.Logf("round %d done; migrating (concurrently with %s)", d.Round-1, d.Peer)
	return ctx.MigrateTo(next)
}

func main() {
	log.SetFlags(0)
	nw := naplet.NewNetwork(naplet.WithLogf(log.Printf))
	defer nw.Close()
	nw.Register("example.duet", &duet{})

	for _, h := range []string{"h1", "h2", "h3", "h4"} {
		if _, err := nw.AddHost(h); err != nil {
			log.Fatal(err)
		}
	}

	// Both agents migrate after every round — at the same time.
	yingDocks := []string{nw.DockOf("h3"), nw.DockOf("h1")}
	yangDocks := []string{nw.DockOf("h4"), nw.DockOf("h2")}
	if err := nw.Node("h1").Launch("ying", &duet{Peer: "yang", Lead: true, Docks: yingDocks}); err != nil {
		log.Fatal(err)
	}
	if err := nw.Node("h2").Launch("yang", &duet{Peer: "ying", Docks: yangDocks}); err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, agent := range []string{"ying", "yang"} {
		if err := nw.Await(ctx, agent); err != nil {
			log.Fatalf("awaiting %s: %v", agent, err)
		}
	}
	fmt.Printf("multiconn: %d rounds over 2 connections with both agents migrating concurrently\n", rounds)
}
