// Parallelsync: the paper's motivating workload — mobile agents doing
// parallel computing with frequent synchronization (Section 1 cites
// mobile-agent-based parallel computation as the case where asynchronous
// mailbox messaging is not enough and a synchronous transient channel is
// needed).
//
// A coordinator agent and N worker agents estimate π by numerical
// integration of 4/(1+x²) over [0,1]. The interval is split into rounds;
// each round, every worker computes its slice's partial sum and
// synchronizes with the coordinator over its NapletSocket connection
// (send partial, block for the next assignment) — a barrier per round.
// Between rounds the workers migrate to other hosts, modelling load
// balancing; their connections to the coordinator migrate with them and the
// barrier protocol never notices.
//
//	go run ./examples/parallelsync
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"time"

	"naplet"
)

const (
	workers       = 3
	rounds        = 4
	slicesPerUnit = 200000
)

// f is the integrand: ∫₀¹ 4/(1+x²) dx = π.
func f(x float64) float64 { return 4 / (1 + x*x) }

func putF64(v float64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

func getF64(b []byte) float64 {
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// coordinator accepts one connection per worker and runs the round barrier:
// collect all partials, accumulate, release the workers into the next
// round.
type coordinator struct {
	// Result reports the final value on the launch host. The coordinator
	// is stationary, so this never needs to be serialized.
	Result chan<- float64
}

func (c *coordinator) Run(ctx *naplet.Context) error {
	ss, err := naplet.Listen(ctx)
	if err != nil {
		return err
	}
	conns := make([]*naplet.Socket, workers)
	for i := range conns {
		if conns[i], err = ss.Accept(ctx.StdContext()); err != nil {
			return err
		}
		ctx.Logf("worker %s joined", conns[i].RemoteAgent())
	}
	total := 0.0
	for round := 0; round < rounds; round++ {
		// Barrier: collect one partial from every worker...
		for _, conn := range conns {
			part, err := conn.ReadMsg()
			if err != nil {
				return err
			}
			total += getF64(part)
		}
		ctx.Logf("round %d complete, running total %.9f", round, total)
		// ...then release them all into the next round.
		for _, conn := range conns {
			if err := conn.WriteMsg([]byte{byte(round + 1)}); err != nil {
				return err
			}
		}
	}
	for _, conn := range conns {
		conn.Close()
	}
	if c.Result != nil {
		c.Result <- total
	}
	return nil
}

// worker computes its slice of each round, synchronizes, and migrates
// between rounds.
type worker struct {
	Index int
	Docks []string // itinerary: one hop per barrier
	Round int
	Conn  string
}

func (w *worker) Run(ctx *naplet.Context) error {
	var conn *naplet.Socket
	var err error
	if w.Conn == "" {
		if conn, err = naplet.Dial(ctx, "coordinator"); err != nil {
			return err
		}
		w.Conn = conn.ID().String()
	} else {
		id, perr := naplet.ParseConnID(w.Conn)
		if perr != nil {
			return perr
		}
		if conn, err = naplet.Attach(ctx, id); err != nil {
			return err
		}
	}

	for ; w.Round < rounds; w.Round++ {
		// This worker's slice of this round: the round splits [round/rounds,
		// (round+1)/rounds) among the workers.
		part := 0.0
		lo := (float64(w.Round)*float64(workers) + float64(w.Index)) / float64(rounds*workers)
		hi := lo + 1.0/float64(rounds*workers)
		n := slicesPerUnit / (rounds * workers)
		h := (hi - lo) / float64(n)
		for i := 0; i < n; i++ {
			x := lo + (float64(i)+0.5)*h
			part += f(x) * h
		}
		// Synchronize: send the partial, block until the whole round is
		// assembled.
		if err := conn.WriteMsg(putF64(part)); err != nil {
			return err
		}
		if _, err := conn.ReadMsg(); err != nil {
			return err
		}
		ctx.Logf("finished round %d on %s", w.Round, ctx.HostName())
		// Migrate before the next round, if the itinerary says so.
		if len(w.Docks) > 0 {
			next := w.Docks[0]
			w.Docks = w.Docks[1:]
			w.Round++
			return ctx.MigrateTo(next)
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	nw := naplet.NewNetwork(naplet.WithLogf(log.Printf))
	defer nw.Close()
	result := make(chan float64, 1)
	nw.Register("example.coordinator", &coordinator{})
	nw.Register("example.worker", &worker{})

	hostNames := []string{"h1", "h2", "h3", "h4"}
	for _, h := range hostNames {
		if _, err := nw.AddHost(h); err != nil {
			log.Fatal(err)
		}
	}
	if err := nw.Node("h1").Launch("coordinator", &coordinator{Result: result}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		home := hostNames[1+i%3]
		// Each worker hops to a different host after every round.
		var docks []string
		for r := 1; r < rounds; r++ {
			docks = append(docks, nw.DockOf(hostNames[1+(i+r)%3]))
		}
		if err := nw.Node(home).Launch(fmt.Sprintf("worker-%d", i), &worker{Index: i, Docks: docks}); err != nil {
			log.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	select {
	case pi := <-result:
		fmt.Printf("parallelsync: %d workers × %d rounds (migrating between rounds)\n", workers, rounds)
		fmt.Printf("π ≈ %.9f (error %.2e)\n", pi, math.Abs(pi-math.Pi))
	case <-ctx.Done():
		log.Fatal("timed out waiting for the computation")
	}
}
