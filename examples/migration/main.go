// Migration: the paper's Figure 7 scenario as an application.
//
// A stationary agent streams numbered messages to a mobile agent that
// migrates twice mid-stream. The mobile agent re-attaches to its connection
// after each hop and verifies that every message arrives in order, exactly
// once — messages caught in flight cross inside the NapletSocket buffer and
// are delivered from it after landing.
//
//	go run ./examples/migration
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"time"

	"naplet"
)

const totalMessages = 30

// streamer keeps sending numbered messages to the mover as fast as the
// connection accepts them (writes block transparently during migrations).
type streamer struct{}

func (streamer) Run(ctx *naplet.Context) error {
	conn, err := naplet.Dial(ctx, "mover")
	if err != nil {
		return err
	}
	for i := uint64(1); i <= totalMessages; i++ {
		var msg [8]byte
		binary.BigEndian.PutUint64(msg[:], i)
		if err := conn.WriteMsg(msg[:]); err != nil {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	// Leave the connection open; the mover closes when done.
	<-ctx.Done()
	return nil
}

// mover accepts the stream and reads it across two migrations, verifying
// in-order exactly-once delivery. Its state carries the verification
// cursor and the remaining itinerary.
type mover struct {
	Docks []string
	Conn  string
	Next  uint64 // next expected counter
}

func (m *mover) Run(ctx *naplet.Context) error {
	var conn *naplet.Socket
	var err error
	if m.Conn == "" {
		ss, lerr := naplet.Listen(ctx)
		if lerr != nil {
			return lerr
		}
		if conn, err = ss.Accept(ctx.StdContext()); err != nil {
			return err
		}
		m.Conn = conn.ID().String()
		m.Next = 1
	} else {
		id, perr := naplet.ParseConnID(m.Conn)
		if perr != nil {
			return perr
		}
		if conn, err = naplet.Attach(ctx, id); err != nil {
			return err
		}
	}

	buffered := 0
	conn.SetObserver(func(seq uint64, payload []byte, fromBuffer bool) {
		if fromBuffer {
			buffered++
		}
	})

	for m.Next <= totalMessages {
		msg, err := conn.ReadMsg()
		if errors.Is(err, naplet.ErrMigrated) {
			return nil // cannot happen: we initiate our own hops below
		}
		if err != nil {
			return err
		}
		got := binary.BigEndian.Uint64(msg)
		if got != m.Next {
			return fmt.Errorf("message %d arrived, expected %d: ordering/duplication broken", got, m.Next)
		}
		ctx.Logf("message %2d on %s", got, ctx.HostName())
		m.Next++
		// Migrate after each third of the stream: at message 10 and 20.
		if len(m.Docks) > 0 && m.Next == uint64(totalMessages/3*(3-len(m.Docks))) {
			next := m.Docks[0]
			m.Docks = m.Docks[1:]
			ctx.Logf("migrating after message %d (%d deliveries were from the migrated buffer so far)", got, buffered)
			return ctx.MigrateTo(next)
		}
	}
	ctx.Logf("all %d messages in order, exactly once (%d from migrated buffers on this host)", totalMessages, buffered)
	return conn.Close()
}

func main() {
	log.SetFlags(0)
	nw := naplet.NewNetwork(naplet.WithLogf(log.Printf))
	defer nw.Close()
	nw.Register("example.streamer", streamer{})
	nw.Register("example.mover", &mover{})

	for _, h := range []string{"h1", "h2", "h3", "h4"} {
		if _, err := nw.AddHost(h); err != nil {
			log.Fatal(err)
		}
	}
	itinerary := []string{nw.DockOf("h3"), nw.DockOf("h4")}
	if err := nw.Node("h2").Launch("mover", &mover{Docks: itinerary}); err != nil {
		log.Fatal(err)
	}
	if err := nw.Node("h1").Launch("streamer", streamer{}); err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := nw.Await(ctx, "mover"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("migration example: reliable delivery held across 2 migrations")
}
