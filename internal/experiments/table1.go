package experiments

import (
	"fmt"
	"net"
	"time"

	"naplet/internal/metrics"
)

// Table1Row is one connection type's open/close latency (Table 1 of the
// paper).
type Table1Row struct {
	Kind    string
	OpenMs  float64
	CloseMs float64
}

// Table1Result reproduces Table 1: latency to open/close a connection for
// a raw TCP socket (the paper's Java Socket), NapletSocket without
// security, and NapletSocket with security.
type Table1Result struct {
	Rows  []Table1Row
	Iters int
}

// Table renders the result in the paper's row order.
func (r *Table1Result) Table() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Kind, f3(row.OpenMs), f3(row.CloseMs)}
	}
	return table([]string{"connection type", "open (ms)", "close (ms)"}, rows)
}

// RunTable1 measures open and close latency for the three connection
// types, averaging over iters operations each (the paper used 100).
func RunTable1(iters int) (*Table1Result, error) {
	if iters <= 0 {
		iters = 100
	}
	res := &Table1Result{Iters: iters}

	tcpOpen, tcpClose, err := rawTCPLatency(iters)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{Kind: "TCP socket", OpenMs: tcpOpen, CloseMs: tcpClose})

	for _, sec := range []bool{false, true} {
		open, cls, err := napletLatency(iters, sec)
		if err != nil {
			return nil, err
		}
		kind := "NapletSocket w/o security"
		if sec {
			kind = "NapletSocket with security"
		}
		res.Rows = append(res.Rows, Table1Row{Kind: kind, OpenMs: open, CloseMs: cls})
	}
	return res, nil
}

// rawTCPLatency measures plain TCP connect/close on loopback — the
// baseline the paper labels "Java Socket".
func rawTCPLatency(iters int) (openMs, closeMs float64, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer ln.Close()
	accepted := make(chan net.Conn, iters)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				close(accepted)
				return
			}
			accepted <- c
		}
	}()
	openS, closeS := metrics.NewSeries(), metrics.NewSeries()
	for i := 0; i < iters; i++ {
		start := time.Now()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return 0, 0, err
		}
		openS.AddDuration(time.Since(start))
		srv := <-accepted
		start = time.Now()
		conn.Close()
		closeS.AddDuration(time.Since(start))
		srv.Close()
	}
	return openS.Mean(), closeS.Mean(), nil
}

// napletLatency measures NapletSocket open/close through the full stack
// (controller proxy, control handshake, key exchange when secure, socket
// handoff).
func napletLatency(iters int, secure bool) (openMs, closeMs float64, err error) {
	opts := []deployOption{}
	if !secure {
		opts = append(opts, withInsecure())
	}
	d, err := newDeployment([]string{"h1", "h2"}, opts...)
	if err != nil {
		return 0, 0, err
	}
	defer d.close()
	if err := d.place("opener", "h1"); err != nil {
		return 0, 0, err
	}
	if err := d.place("acceptor", "h2"); err != nil {
		return 0, 0, err
	}
	hs := d.hosts["h2"]
	ss, err := hs.ctrl.ListenAs("acceptor", hs.cred("acceptor"))
	if err != nil {
		return 0, 0, err
	}
	_ = ss
	hc := d.hosts["h1"]
	cred := hc.cred("opener")

	openS, closeS := metrics.NewSeries(), metrics.NewSeries()
	for i := 0; i < iters; i++ {
		// Table 1 measures full connection establishment: drop the warm
		// shared transport so every open pays the kernel dial and (when
		// secure) the key exchange, rather than riding a transport warmed
		// by a previous iteration. The warm-path win is measured
		// separately (core's warm-vs-cold transport test).
		hc.ctrl.CloseTransports()
		start := time.Now()
		conn, err := hc.ctrl.OpenAs("opener", cred, "acceptor")
		if err != nil {
			return 0, 0, fmt.Errorf("open %d: %w", i, err)
		}
		openS.AddDuration(time.Since(start))
		start = time.Now()
		if err := conn.Close(); err != nil {
			return 0, 0, fmt.Errorf("close %d: %w", i, err)
		}
		closeS.AddDuration(time.Since(start))
	}
	return openS.Mean(), closeS.Mean(), nil
}

// SuspendResumeResult measures the suspend/resume costs of Section 4.2 and
// the close+reopen comparison the paper draws: provisioning a persistent
// connection (suspend + resume) versus tearing it down and re-opening.
type SuspendResumeResult struct {
	SuspendMs   float64
	ResumeMs    float64
	CloseOpenMs float64 // close + secure re-open
	Iters       int
}

// Table renders the Section 4.2 numbers.
func (r *SuspendResumeResult) Table() string {
	rows := [][]string{
		{"suspend", f3(r.SuspendMs)},
		{"resume", f3(r.ResumeMs)},
		{"suspend+resume", f3(r.SuspendMs + r.ResumeMs)},
		{"close+reopen", f3(r.CloseOpenMs)},
	}
	return table([]string{"operation", "latency (ms)"}, rows)
}

// RunSuspendResume measures suspend and resume on an established
// connection (no agent movement, isolating the operation cost, as in
// Section 4.2) and the cost of the close+reopen alternative.
func RunSuspendResume(iters int) (*SuspendResumeResult, error) {
	if iters <= 0 {
		iters = 100
	}
	d, err := newDeployment([]string{"h1", "h2"})
	if err != nil {
		return nil, err
	}
	defer d.close()
	client, _, err := d.pair("opener", "h1", "acceptor", "h2")
	if err != nil {
		return nil, err
	}
	susS, resS := metrics.NewSeries(), metrics.NewSeries()
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := client.Suspend(); err != nil {
			return nil, fmt.Errorf("suspend %d: %w", i, err)
		}
		susS.AddDuration(time.Since(start))
		start = time.Now()
		if err := client.Resume(); err != nil {
			return nil, fmt.Errorf("resume %d: %w", i, err)
		}
		resS.AddDuration(time.Since(start))
	}
	client.Close()

	// Close + reopen alternative.
	hc := d.hosts["h1"]
	cred := hc.cred("opener")
	reopenS := metrics.NewSeries()
	for i := 0; i < iters; i++ {
		conn, err := hc.ctrl.OpenAs("opener", cred, "acceptor")
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := conn.Close(); err != nil {
			return nil, err
		}
		// The paper's close tears down the connection's data socket, so its
		// reopen pays full establishment (kernel dial + key exchange). With
		// the shared per-host-pair transport a reopen would ride the warm
		// connection and hide exactly the cost this baseline exists to
		// measure; drop the transport so close+reopen keeps the paper's
		// semantics.
		hc.ctrl.CloseTransports()
		conn2, err := hc.ctrl.OpenAs("opener", cred, "acceptor")
		if err != nil {
			return nil, err
		}
		reopenS.AddDuration(time.Since(start))
		conn2.Close()
	}
	return &SuspendResumeResult{
		SuspendMs:   susS.Mean(),
		ResumeMs:    resS.Mean(),
		CloseOpenMs: reopenS.Mean(),
		Iters:       iters,
	}, nil
}

// Fig8Result reproduces Figure 8: where the time of opening each
// connection type goes.
type Fig8Result struct {
	// PhasesMs maps connection type -> phase -> mean milliseconds.
	PhasesMs map[string]map[metrics.Phase]float64
	Iters    int
}

// Table renders one row per (type, phase) with the share of the type's
// total.
func (r *Fig8Result) Table() string {
	var rows [][]string
	for _, kind := range []string{"TCP socket", "NapletSocket w/o security", "NapletSocket with security"} {
		phases := r.PhasesMs[kind]
		if phases == nil {
			continue
		}
		var total float64
		for _, v := range phases {
			total += v
		}
		snap := make(map[metrics.Phase]time.Duration, len(phases))
		for p, v := range phases {
			snap[p] = time.Duration(v * float64(time.Millisecond))
		}
		for _, p := range sortedPhases(snap) {
			share := 0.0
			if total > 0 {
				share = 100 * phases[p] / total
			}
			rows = append(rows, []string{kind, string(p), f3(phases[p]), f1(share) + "%"})
		}
		rows = append(rows, []string{kind, "TOTAL", f3(total), "100%"})
	}
	return table([]string{"connection type", "phase", "mean ms", "share"}, rows)
}

// RunFig8 measures the per-phase breakdown of connection opens for the
// three connection types.
func RunFig8(iters int) (*Fig8Result, error) {
	if iters <= 0 {
		iters = 50
	}
	res := &Fig8Result{PhasesMs: make(map[string]map[metrics.Phase]float64), Iters: iters}

	// Raw TCP: the whole cost is the socket open.
	tcpOpen, _, err := rawTCPLatency(iters)
	if err != nil {
		return nil, err
	}
	res.PhasesMs["TCP socket"] = map[metrics.Phase]float64{metrics.PhaseOpenSocket: tcpOpen}

	for _, sec := range []bool{false, true} {
		// Separate client- and server-side breakdowns: the server performs
		// its half of the key exchange and its policy check inside the
		// CONNECT request, so that compute is carved out of the client's
		// measured handshaking time and attributed to the right phases —
		// matching the paper's accounting, where "key establishment" covers
		// both ends.
		bdClient, bdServer := metrics.NewBreakdown(), metrics.NewBreakdown()
		opts := []deployOption{withBreakdowns(map[string]*metrics.Breakdown{
			"h1": bdClient, "h2": bdServer,
		})}
		if !sec {
			opts = append(opts, withInsecure())
		}
		d, err := newDeployment([]string{"h1", "h2"}, opts...)
		if err != nil {
			return nil, err
		}
		err = func() error {
			if err := d.place("opener", "h1"); err != nil {
				return err
			}
			if err := d.place("acceptor", "h2"); err != nil {
				return err
			}
			hs := d.hosts["h2"]
			if _, err := hs.ctrl.ListenAs("acceptor", hs.cred("acceptor")); err != nil {
				return err
			}
			hc := d.hosts["h1"]
			cred := hc.cred("opener")
			for i := 0; i < iters; i++ {
				// Figure 8 decomposes full connection establishment, so
				// every open must pay the dial and key exchange rather
				// than riding a transport warmed by a previous iteration
				// (same reasoning as Table 1 above).
				hc.ctrl.CloseTransports()
				conn, err := hc.ctrl.OpenAs("opener", cred, "acceptor")
				if err != nil {
					return err
				}
				conn.Close()
			}
			return nil
		}()
		d.close()
		if err != nil {
			return nil, err
		}
		kind := "NapletSocket w/o security"
		if sec {
			kind = "NapletSocket with security"
		}
		toMs := func(d time.Duration) float64 {
			return float64(d) / float64(time.Millisecond) / float64(iters)
		}
		client, server := bdClient.Snapshot(), bdServer.Snapshot()
		phases := make(map[metrics.Phase]float64)
		for p, total := range client {
			phases[p] = toMs(total)
		}
		serverCompute := server[metrics.PhaseKeyExchange] + server[metrics.PhaseSecurityCheck]
		phases[metrics.PhaseKeyExchange] += toMs(server[metrics.PhaseKeyExchange])
		phases[metrics.PhaseSecurityCheck] += toMs(server[metrics.PhaseSecurityCheck])
		if adj := phases[metrics.PhaseHandshaking] - toMs(serverCompute); adj > 0 {
			phases[metrics.PhaseHandshaking] = adj
		}
		for p, v := range phases {
			if v == 0 {
				delete(phases, p)
			}
		}
		res.PhasesMs[kind] = phases
	}
	return res, nil
}
