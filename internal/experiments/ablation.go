package experiments

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"naplet/internal/metrics"
	"naplet/internal/rudp"
)

// Ablations of the design choices the paper argues for:
//
//   - Socket handoff (Section 3.4) versus the query-then-connect
//     alternative the paper describes (ask the server which port the agent
//     uses, then dial it): the handoff saves one control round trip per
//     connection setup.
//   - The reliable-UDP control channel (Section 3.5) versus issuing each
//     control request over a fresh TCP connection.
//   - The failure-resume extension on versus off: with it on, a broken
//     data socket heals; with it off, the connection stays down.

// AblationHandoffResult quantifies the socket handoff of Section 3.4: the
// query-then-connect alternative pays one extra control round trip (ask
// the server which port the target agent uses) per connection setup, which
// the handoff eliminates.
type AblationHandoffResult struct {
	// OpenMs is the handoff-based connection setup cost (insecure mode, so
	// the key exchange does not drown the protocol cost).
	OpenMs float64
	// SavedRTTMs is the control round trip the handoff saves — measured,
	// not modelled.
	SavedRTTMs float64
	Iters      int
}

// SavedShare is the saved round trip as a fraction of the setup cost.
func (r *AblationHandoffResult) SavedShare() float64 {
	if r.OpenMs+r.SavedRTTMs <= 0 {
		return 0
	}
	return r.SavedRTTMs / (r.OpenMs + r.SavedRTTMs)
}

// Table renders the comparison.
func (r *AblationHandoffResult) Table() string {
	return table([]string{"setup scheme", "mean ms"}, [][]string{
		{"socket handoff (paper §3.4)", f3(r.OpenMs)},
		{"query port, then connect", f3(r.OpenMs + r.SavedRTTMs)},
		{"saved per setup", fmt.Sprintf("%s (%.1f%%)", f3(r.SavedRTTMs), 100*r.SavedShare())},
	})
}

// RunAblationHandoff measures the handoff-based setup cost and the control
// round trip the handoff saves.
func RunAblationHandoff(iters int) (*AblationHandoffResult, error) {
	if iters <= 0 {
		iters = 50
	}
	// Without the key exchange: the Diffie-Hellman cost (~ms) would drown
	// the round trip this ablation is about (~10 µs).
	d, err := newDeployment([]string{"h1", "h2"}, withInsecure())
	if err != nil {
		return nil, err
	}
	defer d.close()
	if err := d.place("opener", "h1"); err != nil {
		return nil, err
	}
	if err := d.place("acceptor", "h2"); err != nil {
		return nil, err
	}
	hs := d.hosts["h2"]
	if _, err := hs.ctrl.ListenAs("acceptor", hs.cred("acceptor")); err != nil {
		return nil, err
	}
	hc := d.hosts["h1"]
	cred := hc.cred("opener")

	// The port-query service the alternative design would need.
	queryEP, err := rudp.Listen("127.0.0.1:0", func(_ *net.UDPAddr, req []byte) []byte {
		return []byte("port=12345") // the port-table lookup the server would do
	}, rudp.Config{})
	if err != nil {
		return nil, err
	}
	defer queryEP.Close()
	queryClient, err := rudp.Listen("127.0.0.1:0", nil, rudp.Config{})
	if err != nil {
		return nil, err
	}
	defer queryClient.Close()

	openS, rttS := metrics.NewSeries(), metrics.NewSeries()
	ctx := context.Background()
	for i := 0; i < iters; i++ {
		start := time.Now()
		conn, err := hc.ctrl.OpenAs("opener", cred, "acceptor")
		if err != nil {
			return nil, err
		}
		openS.AddDuration(time.Since(start))
		conn.Close()

		start = time.Now()
		if _, err := queryClient.Request(ctx, queryEP.Addr().String(), []byte("which port for acceptor?")); err != nil {
			return nil, err
		}
		rttS.AddDuration(time.Since(start))
	}
	return &AblationHandoffResult{
		OpenMs:     openS.Mean(),
		SavedRTTMs: rttS.Mean(),
		Iters:      iters,
	}, nil
}

// AblationControlResult compares the control channel transports.
type AblationControlResult struct {
	RUDPMs    float64
	TCPDialMs float64
	Iters     int
}

// Table renders the comparison.
func (r *AblationControlResult) Table() string {
	return table([]string{"control transport", "request mean ms"}, [][]string{
		{"reliable UDP (paper §3.5)", f3(r.RUDPMs)},
		{"TCP dial per request", f3(r.TCPDialMs)},
	})
}

// RunAblationControl measures one control round trip over the reliable-UDP
// channel against a fresh-TCP-connection-per-request design.
func RunAblationControl(iters int) (*AblationControlResult, error) {
	if iters <= 0 {
		iters = 200
	}
	// Reliable UDP side.
	server, err := rudp.Listen("127.0.0.1:0", func(_ *net.UDPAddr, req []byte) []byte { return req }, rudp.Config{})
	if err != nil {
		return nil, err
	}
	defer server.Close()
	client, err := rudp.Listen("127.0.0.1:0", nil, rudp.Config{})
	if err != nil {
		return nil, err
	}
	defer client.Close()

	// TCP side: a one-shot request/response server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var lenb [4]byte
				if _, err := io.ReadFull(c, lenb[:]); err != nil {
					return
				}
				n := binary.BigEndian.Uint32(lenb[:])
				body := make([]byte, n)
				if _, err := io.ReadFull(c, body); err != nil {
					return
				}
				c.Write(lenb[:])
				c.Write(body)
			}(c)
		}
	}()

	payload := []byte("SUSPEND conn-xyz nonce=7 tag=...")
	rudpS, tcpS := metrics.NewSeries(), metrics.NewSeries()
	ctx := context.Background()
	for i := 0; i < iters; i++ {
		start := time.Now()
		if _, err := client.Request(ctx, server.Addr().String(), payload); err != nil {
			return nil, err
		}
		rudpS.AddDuration(time.Since(start))

		start = time.Now()
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		var lenb [4]byte
		binary.BigEndian.PutUint32(lenb[:], uint32(len(payload)))
		if _, err := c.Write(lenb[:]); err != nil {
			c.Close()
			return nil, err
		}
		if _, err := c.Write(payload); err != nil {
			c.Close()
			return nil, err
		}
		if _, err := io.ReadFull(c, lenb[:]); err != nil {
			c.Close()
			return nil, err
		}
		body := make([]byte, binary.BigEndian.Uint32(lenb[:]))
		if _, err := io.ReadFull(c, body); err != nil {
			c.Close()
			return nil, err
		}
		tcpS.AddDuration(time.Since(start))
		c.Close()
	}
	return &AblationControlResult{RUDPMs: rudpS.Mean(), TCPDialMs: tcpS.Mean(), Iters: iters}, nil
}

// AblationFailureResult measures the fault-tolerance extension: time until
// traffic flows again after the data socket is killed, with automatic
// failure-resume on, and whether the connection recovers at all with it
// off.
type AblationFailureResult struct {
	RecoveryMs       float64
	RecoveredWithOff bool
	Trials           int
}

// Table renders the comparison.
func (r *AblationFailureResult) Table() string {
	off := "connection stays down (by design)"
	if r.RecoveredWithOff {
		off = "recovered (unexpected)"
	}
	return table([]string{"failure handling", "outcome"}, [][]string{
		{"failure-resume on", fmt.Sprintf("traffic restored in %.1f ms (mean of %d)", r.RecoveryMs, r.Trials)},
		{"failure-resume off", off},
	})
}

// RunAblationFailure kills the data socket under an established connection
// and measures recovery.
func RunAblationFailure(trials int) (*AblationFailureResult, error) {
	if trials <= 0 {
		trials = 5
	}
	rec := metrics.NewSeries()
	for i := 0; i < trials; i++ {
		ms, err := failureRecoveryOnce(true)
		if err != nil {
			return nil, err
		}
		rec.Add(ms)
	}
	// One trial with the extension disabled: traffic must NOT recover
	// within the observation window.
	recovered, err := failureRecoveryProbe(false, 500*time.Millisecond)
	if err != nil {
		return nil, err
	}
	return &AblationFailureResult{
		RecoveryMs:       rec.Mean(),
		RecoveredWithOff: recovered,
		Trials:           trials,
	}, nil
}

func failureRecoveryOnce(failureResume bool) (float64, error) {
	opts := []deployOption{}
	if !failureResume {
		opts = append(opts, withNoFailureResume())
	}
	d, err := newDeployment([]string{"h1", "h2"}, opts...)
	if err != nil {
		return 0, err
	}
	defer d.close()
	client, server, err := d.pair("a", "h1", "b", "h2")
	if err != nil {
		return 0, err
	}
	// Prime the connection.
	if err := client.WriteMsg([]byte("pre")); err != nil {
		return 0, err
	}
	if _, err := server.ReadMsg(); err != nil {
		return 0, err
	}
	start := time.Now()
	client.KillDataSocket()
	// Time until a message makes it through again.
	done := make(chan error, 1)
	go func() {
		_, err := server.ReadMsg()
		done <- err
	}()
	if err := client.WriteMsg([]byte("post")); err != nil {
		return 0, err
	}
	if err := <-done; err != nil {
		return 0, err
	}
	return float64(time.Since(start)) / float64(time.Millisecond), nil
}

// failureRecoveryProbe reports whether traffic recovered within the window
// when the extension is configured off.
func failureRecoveryProbe(failureResume bool, window time.Duration) (bool, error) {
	opts := []deployOption{}
	if !failureResume {
		opts = append(opts, withNoFailureResume())
	}
	d, err := newDeployment([]string{"h1", "h2"}, opts...)
	if err != nil {
		return false, err
	}
	defer d.close()
	client, server, err := d.pair("a", "h1", "b", "h2")
	if err != nil {
		return false, err
	}
	if err := client.WriteMsg([]byte("pre")); err != nil {
		return false, err
	}
	if _, err := server.ReadMsg(); err != nil {
		return false, err
	}
	client.KillDataSocket()
	got := make(chan struct{}, 1)
	go func() {
		if _, err := server.ReadMsg(); err == nil {
			got <- struct{}{}
		}
	}()
	go client.WriteMsg([]byte("post")) // blocks forever with the extension off
	select {
	case <-got:
		return true, nil
	case <-time.After(window):
		return false, nil
	}
}
