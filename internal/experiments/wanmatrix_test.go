package experiments

import (
	"strings"
	"testing"

	"naplet/internal/netem"
)

// TestWANMatrixMetro runs the full chaos scenario on the metro profile:
// cheap enough for the unit suite, while still covering the break/resume
// loop, the live migration, and the throughput leg end to end.
func TestWANMatrixMetro(t *testing.T) {
	res, err := RunWANMatrix(WANMatrixConfig{
		Profiles:        []netem.Profile{netem.ProfileMetro},
		Breaks:          2,
		ThroughputBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(res.Cells))
	}
	c := res.Cells[0]
	if c.Broken < c.Breaks {
		t.Fatalf("Broken = %d, want >= %d (one per severed conn)", c.Broken, c.Breaks)
	}
	if c.ResumeRate != 1.0 {
		t.Fatalf("ResumeRate = %.3f (%d/%d), want 1.0", c.ResumeRate, c.Resumed, c.Broken)
	}
	if c.TransportLost != 0 || c.DetectorConfirms != 0 || c.KeepaliveTimeouts != 0 {
		t.Fatalf("false positives: lost=%d confirms=%d ka=%d, want all 0",
			c.TransportLost, c.DetectorConfirms, c.KeepaliveTimeouts)
	}
	if c.ResumeP99Ms <= 0 {
		t.Fatal("no resume latency samples recorded")
	}
	if c.ThroughputMbps <= 0 {
		t.Fatal("throughput leg measured nothing")
	}
	if !strings.Contains(res.Table(), "metro") {
		t.Fatalf("table missing profile row:\n%s", res.Table())
	}
}

// TestCompareWAN pins the gate logic on synthetic data: the invariants are
// absolute, the p99 is relative with grace.
func TestCompareWAN(t *testing.T) {
	baseline := &BenchWAN{Breaks: 4, Points: []WANPoint{
		{Profile: "metro", ResumeRate: 1, ResumeP99Ms: 100},
		{Profile: "intercontinental", ResumeRate: 1, ResumeP99Ms: 2000},
	}}
	ok := &WANMatrixResult{Cells: []WANCell{
		{Profile: "metro", ResumeRate: 1, Broken: 8, Resumed: 8, ResumeP99Ms: 120},
		{Profile: "unknown-profile", ResumeRate: 0.5, TransportLost: 3},
	}}
	if report, err := CompareWAN(baseline, ok, 0.5); err != nil {
		t.Fatalf("CompareWAN(ok) = %v\n%s", err, report)
	}

	cases := []struct {
		name string
		cell WANCell
		want string
	}{
		{"dropped resume", WANCell{Profile: "metro", ResumeRate: 0.9, ResumeP99Ms: 100}, "resume rate"},
		{"false lost", WANCell{Profile: "metro", ResumeRate: 1, TransportLost: 1}, "ErrTransportLost"},
		{"false confirm", WANCell{Profile: "metro", ResumeRate: 1, DetectorConfirms: 2}, "detector confirms"},
		{"false keepalive", WANCell{Profile: "metro", ResumeRate: 1, KeepaliveTimeouts: 1}, "keepalive timeouts"},
		{"p99 blowup", WANCell{Profile: "metro", ResumeRate: 1, ResumeP99Ms: 100*1.5 + WANP99GraceMs + 1}, "resume p99"},
	}
	for _, tc := range cases {
		fresh := &WANMatrixResult{Cells: []WANCell{tc.cell}}
		_, err := CompareWAN(baseline, fresh, 0.5)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: CompareWAN error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Within grace: p99 just under the allowance passes.
	fresh := &WANMatrixResult{Cells: []WANCell{
		{Profile: "intercontinental", ResumeRate: 1, ResumeP99Ms: 2000*1.5 + WANP99GraceMs - 1},
	}}
	if _, err := CompareWAN(baseline, fresh, 0.5); err != nil {
		t.Fatalf("p99 inside grace rejected: %v", err)
	}
}
