package experiments

import (
	"context"
	"fmt"
	"time"

	"naplet/internal/metrics"
	"naplet/internal/naming"
	"naplet/internal/postoffice"
)

// MotivationResult quantifies the paper's introductory argument: for
// closely cooperating agents, a synchronous transient channel beats the
// mailbox-based asynchronous persistent mechanism. It measures one
// request/reply round trip between two agents through both mechanisms.
//
// The asynchronous path also gives the sender no delivery feedback — "it
// is hard for the sender agent to determine whether and when the receiver
// gets the message" — which is qualitative; the latency gap below is the
// measurable half of the argument.
type MotivationResult struct {
	NapletRTTMs  float64
	MailboxRTTMs float64
	Iters        int
}

// Table renders the comparison.
func (r *MotivationResult) Table() string {
	factor := 0.0
	if r.NapletRTTMs > 0 {
		factor = r.MailboxRTTMs / r.NapletRTTMs
	}
	return table([]string{"mechanism", "request/reply RTT (ms)"}, [][]string{
		{"NapletSocket (synchronous transient)", f3(r.NapletRTTMs)},
		{"PostOffice mailbox (asynchronous persistent)", f3(r.MailboxRTTMs)},
		{"ratio", fmt.Sprintf("%.1fx", factor)},
	})
}

// RunMotivation measures both mechanisms' round trips.
func RunMotivation(iters int) (*MotivationResult, error) {
	if iters <= 0 {
		iters = 200
	}
	res := &MotivationResult{Iters: iters}

	// Synchronous: one NapletSocket round trip against an echoing peer.
	d, err := newDeployment([]string{"h1", "h2"})
	if err != nil {
		return nil, err
	}
	client, server, err := d.pair("req", "h1", "rep", "h2")
	if err != nil {
		d.close()
		return nil, err
	}
	go func() {
		for {
			msg, err := server.ReadMsg()
			if err != nil {
				return
			}
			if err := server.WriteMsg(msg); err != nil {
				return
			}
		}
	}()
	sock := metrics.NewSeries()
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := client.WriteMsg([]byte("req")); err != nil {
			d.close()
			return nil, err
		}
		if _, err := client.ReadMsg(); err != nil {
			d.close()
			return nil, err
		}
		sock.AddDuration(time.Since(start))
	}
	res.NapletRTTMs = sock.Mean()
	d.close()

	// Asynchronous: the request goes to the replier's mailbox (location
	// lookup + office delivery), the replier mails back, the requester
	// receives — the mailbox mechanism of Section 1/6.
	svc := naming.NewService()
	officeA, err := postoffice.New("h1", svc, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer officeA.Close()
	officeB, err := postoffice.New("h2", svc, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer officeB.Close()
	if err := svc.Register("req", naming.Location{Host: "h1", MailAddr: officeA.Addr()}); err != nil {
		return nil, err
	}
	if err := svc.Register("rep", naming.Location{Host: "h2", MailAddr: officeB.Addr()}); err != nil {
		return nil, err
	}
	reqBox := officeA.Open("req")
	repBox := officeB.Open("rep")
	ctx := context.Background()
	go func() {
		for {
			msg, err := repBox.Receive(ctx)
			if err != nil {
				return
			}
			if err := officeB.Send(ctx, "rep", "req", msg.Body); err != nil {
				return
			}
		}
	}()
	mail := metrics.NewSeries()
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := officeA.Send(ctx, "req", "rep", []byte("req")); err != nil {
			return nil, err
		}
		if _, err := reqBox.Receive(ctx); err != nil {
			return nil, err
		}
		mail.AddDuration(time.Since(start))
	}
	res.MailboxRTTMs = mail.Mean()
	return res, nil
}
