package experiments

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"naplet/internal/core"
	"naplet/internal/trace"
)

// Fig7Result reproduces Figure 7: the message trace demonstrating reliable
// communication — a stationary agent streams numbered messages to a mobile
// agent that migrates mid-stream; messages caught in transit cross inside
// the NapletSocket buffer and are delivered from it after landing, in
// order, exactly once.
type Fig7Result struct {
	Recorder *trace.Recorder
	// Total and Buffered count delivered messages and how many of them
	// crossed a migration in the buffer (the light dots).
	Total, Buffered int
	// Migrations is how many hops the mobile agent made.
	Migrations int
}

// Table renders the Figure 7 trace: time, counter, and delivery source per
// message.
func (r *Fig7Result) Table() string {
	return r.Recorder.Render()
}

// Summary is a one-line digest.
func (r *Fig7Result) Summary() string {
	return fmt.Sprintf("%d messages delivered in order exactly once across %d migrations; %d served from the migrated buffer",
		r.Total, r.Migrations, r.Buffered)
}

// RunFig7 runs the Figure 7 workload: total messages sent at the given
// interval, with the mobile receiver migrating at each listed message
// index (the paper: 1 ms interval, migrations around messages 10, 20, 30).
// The receiver reads a shade slower than the sender sends, so migrations
// genuinely catch messages in transmission — the undelivered messages of
// the paper's trace (its messages 7–9 at the first migration point).
func RunFig7(total int, interval time.Duration, migrateAt []int) (*Fig7Result, error) {
	if total <= 0 {
		total = 40
	}
	if interval <= 0 {
		interval = time.Millisecond
	}
	if migrateAt == nil {
		migrateAt = []int{10, 20, 30}
	}
	readDelay := interval * 2
	d, err := newDeployment([]string{"h1", "h2", "h3", "h4"})
	if err != nil {
		return nil, err
	}
	defer d.close()

	// The stationary agent A (sender) dials the mobile agent B (receiver).
	sender, _, err := d.pair("agent-a", "h1", "agent-b", "h2")
	if err != nil {
		return nil, err
	}
	connID := sender.ID()

	rec := trace.NewRecorder()
	observer := func(seq uint64, payload []byte, fromBuffer bool) {
		counter := uint64(0)
		if len(payload) >= 8 {
			counter = binary.BigEndian.Uint64(payload)
		}
		src := trace.FromSocket
		if fromBuffer {
			src = trace.FromBuffer
		}
		rec.Record(seq, counter, src)
	}

	var mu sync.Mutex
	moverHost := "h2"
	currentHost := func() string {
		mu.Lock()
		defer mu.Unlock()
		return moverHost
	}
	setHost := func(h string) {
		mu.Lock()
		moverHost = h
		mu.Unlock()
	}

	// attachMover binds to the mover's endpoint at its current host.
	attachMover := func() (*core.Socket, error) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			s, err := d.hosts[currentHost()].ctrl.AgentSocket("agent-b", connID)
			if err == nil {
				s.SetObserver(observer)
				return s, nil
			}
			if time.Now().After(deadline) {
				return nil, err
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Receiver: read all messages, re-attaching after each migration.
	recvErr := make(chan error, 1)
	go func() {
		sock, err := attachMover()
		if err != nil {
			recvErr <- err
			return
		}
		for n := 0; n < total; {
			_, err := sock.ReadMsg()
			if errors.Is(err, core.ErrMigrated) {
				if sock, err = attachMover(); err != nil {
					recvErr <- err
					return
				}
				continue
			}
			if err != nil {
				recvErr <- fmt.Errorf("read %d: %w", n, err)
				return
			}
			n++
			time.Sleep(readDelay)
		}
		recvErr <- nil
	}()

	// Sender: one numbered message per interval; migration triggers at the
	// listed indices.
	migIdx := 0
	hops := []string{"h3", "h4", "h2", "h3", "h4"}
	epoch := uint64(1)
	migrations := 0
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 1; i <= total; i++ {
		var payload [8]byte
		binary.BigEndian.PutUint64(payload[:], uint64(i))
		if err := sender.WriteMsg(payload[:]); err != nil {
			return nil, fmt.Errorf("send %d: %w", i, err)
		}
		if migIdx < len(migrateAt) && i == migrateAt[migIdx] {
			from := currentHost()
			to := hops[migIdx%len(hops)]
			epoch++
			if err := d.migrate("agent-b", from, to, epoch); err != nil {
				return nil, err
			}
			setHost(to)
			migrations++
			migIdx++
		}
		<-tick.C
	}

	select {
	case err := <-recvErr:
		if err != nil {
			return nil, err
		}
	case <-time.After(60 * time.Second):
		return nil, errors.New("fig7: receiver never finished")
	}

	if err := rec.VerifyExactlyOnceInOrder(); err != nil {
		return nil, fmt.Errorf("fig7: reliability property violated: %w", err)
	}
	return &Fig7Result{
		Recorder:   rec,
		Total:      len(rec.Events()),
		Buffered:   len(rec.Buffered()),
		Migrations: migrations,
	}, nil
}
