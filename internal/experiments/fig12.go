package experiments

import (
	"fmt"

	"naplet/internal/model"
)

// Fig12Curve is one µ_b/µ_a ratio's cost-versus-service-time series.
type Fig12Curve struct {
	Ratio  float64
	Points []model.SimResult
}

// Fig12Result reproduces Figure 12: simulated connection migration cost as
// a function of agent A's mean service time, for the high-priority agent
// (12a) and the low-priority agent (12b), across µ_b/µ_a ratios.
type Fig12Result struct {
	Params model.Params
	MeansA []float64
	Curves []Fig12Curve
}

// DefaultFig12Means is the paper's x-axis: 0–2000 ms mean service time.
func DefaultFig12Means() []float64 {
	return []float64{25, 50, 100, 200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000}
}

// DefaultFig12Ratios are the paper's curves: µ_b/µ_a ∈ {1, 3, 1/3}.
func DefaultFig12Ratios() []float64 { return []float64{1, 3, 1.0 / 3} }

// RunFig12 sweeps the simulation over service times and ratios.
func RunFig12(means []float64, ratios []float64, migrations int, seed int64) *Fig12Result {
	if len(means) == 0 {
		means = DefaultFig12Means()
	}
	if len(ratios) == 0 {
		ratios = DefaultFig12Ratios()
	}
	if migrations <= 0 {
		migrations = 20000
	}
	res := &Fig12Result{Params: model.PaperParams(), MeansA: means}
	for _, ratio := range ratios {
		res.Curves = append(res.Curves, Fig12Curve{
			Ratio:  ratio,
			Points: model.Sweep(res.Params, ratio, means, migrations, seed),
		})
	}
	return res
}

// TableHigh renders Figure 12(a): the high-priority agent's cost.
func (r *Fig12Result) TableHigh() string { return r.render(true) }

// TableLow renders Figure 12(b): the low-priority agent's cost.
func (r *Fig12Result) TableLow() string { return r.render(false) }

func (r *Fig12Result) render(high bool) string {
	header := []string{"mean service A (ms)"}
	for _, c := range r.Curves {
		header = append(header, fmt.Sprintf("µb/µa=%.2f (ms)", c.Ratio))
	}
	rows := make([][]string, len(r.MeansA))
	for i, mean := range r.MeansA {
		row := []string{f1(mean)}
		for _, c := range r.Curves {
			v := c.Points[i].MeanCostLow
			if high {
				v = c.Points[i].MeanCostHigh
			}
			row = append(row, f1(v))
		}
		rows[i] = row
	}
	return table(header, rows)
}

// Fig13Result reproduces Figure 13: connection migration overhead (control
// messages relative to data messages) against the message exchange rate,
// for several relative rates r = λ/µ.
type Fig13Result struct {
	Params model.Params
	Rates  []float64 // message exchange rates λ (x-axis)
	Rs     []float64 // relative rates r (curves)
	Series [][]float64
}

// DefaultFig13Rates is the paper's x-axis: exchange rate 1–100.
func DefaultFig13Rates() []float64 {
	return []float64{1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
}

// DefaultFig13Rs are the paper's curves: r ∈ {1, 2, 5, 10, 20}.
func DefaultFig13Rs() []float64 { return []float64{1, 2, 5, 10, 20} }

// RunFig13 evaluates the overhead model over the grid.
func RunFig13(rates, rs []float64) *Fig13Result {
	if len(rates) == 0 {
		rates = DefaultFig13Rates()
	}
	if len(rs) == 0 {
		rs = DefaultFig13Rs()
	}
	p := model.PaperParams()
	res := &Fig13Result{Params: p, Rates: rates, Rs: rs}
	for _, r := range rs {
		series := make([]float64, len(rates))
		for i, lambda := range rates {
			series[i] = p.Overhead(lambda, r)
		}
		res.Series = append(res.Series, series)
	}
	return res
}

// Table renders the Figure 13 grid.
func (r *Fig13Result) Table() string {
	header := []string{"exchange rate λ"}
	for _, rr := range r.Rs {
		header = append(header, fmt.Sprintf("r=%g", rr))
	}
	rows := make([][]string, len(r.Rates))
	for i, lambda := range r.Rates {
		row := []string{f1(lambda)}
		for s := range r.Rs {
			row = append(row, f3(r.Series[s][i]))
		}
		rows[i] = row
	}
	return table(header, rows)
}
