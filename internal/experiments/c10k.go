package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"naplet/internal/core"
	"naplet/internal/fsm"
)

// acceptContext bounds one storm accept; generous because under a full
// 100k open the accept backlog competes with thousands of peers.
func acceptContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 60*time.Second)
}

// C10KConfig parameterizes the connection storm: Conns logical
// NapletSocket connections between two hosts, then a migration wave that
// moves the agents carrying Wave of those connections to a third host.
// The storm is the scaling companion to the paper's per-connection
// experiments — it exists to prove the per-connection footprint (memory,
// goroutines, timers) stays flat while the population grows by orders of
// magnitude.
type C10KConfig struct {
	// Conns is the logical connection population (default 100_000).
	Conns int
	// Wave is how many connections the migration wave sweeps
	// (default Conns/10).
	Wave int
	// ConnsPerAgent groups connections onto server agents; the wave
	// migrates whole agents, as the docking system does (default 100).
	ConnsPerAgent int
	// Workers bounds open/migrate parallelism (default 2*GOMAXPROCS,
	// minimum 4).
	Workers int
}

func (c *C10KConfig) defaults() {
	if c.Conns <= 0 {
		c.Conns = 100_000
	}
	if c.Wave <= 0 {
		c.Wave = c.Conns / 10
	}
	if c.Wave > c.Conns {
		c.Wave = c.Conns
	}
	if c.ConnsPerAgent <= 0 {
		c.ConnsPerAgent = 100
	}
	if c.Workers <= 0 {
		c.Workers = 2 * runtime.GOMAXPROCS(0)
		if c.Workers < 4 {
			c.Workers = 4
		}
	}
}

// C10KResult reports the storm measurements.
type C10KResult struct {
	Config C10KConfig
	// Agents is how many server agents carried the population.
	Agents int
	// OpenWall is the wall time to establish the whole population.
	OpenWall time.Duration
	// MemPerConnBytes is the steady-state heap growth per connection
	// (GC-settled heap delta across the open phase, divided by Conns).
	MemPerConnBytes float64
	// BaselineGoroutines is the process goroutine count with the
	// deployment up but zero connections; SteadyGoroutines is the count
	// with all Conns established. Their difference is the scaling
	// invariant: O(transports + worker pool), never O(conns).
	BaselineGoroutines, SteadyGoroutines int
	// WaveWall is the wall time of the whole migration wave; WaveP50 and
	// WaveP99 are per-connection suspend-to-resumed latencies across the
	// swept connections (from the owning agent's PreDepart to the client
	// endpoint re-entering ESTABLISHED).
	WaveWall, WaveP50, WaveP99 time.Duration
}

// Summary is a one-line digest.
func (r *C10KResult) Summary() string {
	return fmt.Sprintf("%d conns on %d agents: open %.1fs, %.0f B/conn, goroutines %d->%d; wave of %d: %.1fs wall, p50 %.1fms, p99 %.1fms",
		r.Config.Conns, r.Agents, r.OpenWall.Seconds(), r.MemPerConnBytes,
		r.BaselineGoroutines, r.SteadyGoroutines,
		r.Config.Wave, r.WaveWall.Seconds(),
		float64(r.WaveP50)/float64(time.Millisecond),
		float64(r.WaveP99)/float64(time.Millisecond))
}

// stormAgent is one server agent and the client-side endpoints of the
// connections it carries (the server-side endpoints migrate with it, so
// only the client side is observed across the wave).
type stormAgent struct {
	name    string
	clients []*core.Socket
}

// RunC10K opens cfg.Conns connections from agents on h1 to agents on h2,
// measures the per-connection footprint, migrates the agents carrying
// cfg.Wave connections to h3 while timing every connection's outage, and
// finishes with a data round trip through a migrated connection to prove
// the wave left live, usable sockets behind.
func RunC10K(cfg C10KConfig) (*C10KResult, error) {
	cfg.defaults()
	d, err := newDeployment([]string{"h1", "h2", "h3"}, withInsecure(), withNoFailureResume())
	if err != nil {
		return nil, err
	}
	defer d.close()

	agents := (cfg.Conns + cfg.ConnsPerAgent - 1) / cfg.ConnsPerAgent
	res := &C10KResult{Config: cfg, Agents: agents}

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res.BaselineGoroutines = runtime.NumGoroutine()

	// ---- open phase: agents open their connection blocks in parallel ----
	pop := make([]*stormAgent, agents)
	openStart := time.Now()
	var (
		wg      sync.WaitGroup
		errMu   sync.Mutex
		openErr error
	)
	sem := make(chan struct{}, cfg.Workers)
	remaining := cfg.Conns
	for i := 0; i < agents; i++ {
		n := cfg.ConnsPerAgent
		if n > remaining {
			n = remaining
		}
		remaining -= n
		wg.Add(1)
		sem <- struct{}{}
		go func(i, n int) {
			defer wg.Done()
			defer func() { <-sem }()
			a, err := openStormAgent(d, i, n)
			if err != nil {
				errMu.Lock()
				if openErr == nil {
					openErr = err
				}
				errMu.Unlock()
				return
			}
			pop[i] = a
		}(i, n)
	}
	wg.Wait()
	if openErr != nil {
		return nil, openErr
	}
	res.OpenWall = time.Since(openStart)

	// Footprint with the population at steady state. The GC pass settles
	// transient open-phase garbage so the delta is resident state, not
	// allocation churn.
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	res.MemPerConnBytes = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(cfg.Conns)
	res.SteadyGoroutines = runtime.NumGoroutine()

	// ---- migration wave ----
	waveAgents := (cfg.Wave + cfg.ConnsPerAgent - 1) / cfg.ConnsPerAgent
	if waveAgents > agents {
		waveAgents = agents
	}
	lats := make([]time.Duration, 0, cfg.Wave)
	var latMu sync.Mutex
	waveStart := time.Now()
	var waveErr error
	for i := 0; i < waveAgents; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(a *stormAgent) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			if err := d.migrate(a.name, "h2", "h3", 2); err != nil {
				errMu.Lock()
				if waveErr == nil {
					waveErr = err
				}
				errMu.Unlock()
				return
			}
			// Sweep the agent's client endpoints until each re-enters
			// ESTABLISHED, stamping its outage when first observed there.
			own := make([]time.Duration, len(a.clients))
			pending := len(a.clients)
			deadline := time.Now().Add(60 * time.Second)
			for pending > 0 {
				for j, c := range a.clients {
					if own[j] == 0 && c.State() == fsm.Established {
						own[j] = time.Since(t0)
						pending--
					}
				}
				if pending == 0 {
					break
				}
				if time.Now().After(deadline) {
					errMu.Lock()
					if waveErr == nil {
						waveErr = fmt.Errorf("c10k: agent %s: %d conns never resumed", a.name, pending)
					}
					errMu.Unlock()
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
			latMu.Lock()
			lats = append(lats, own...)
			latMu.Unlock()
		}(pop[i])
	}
	wg.Wait()
	if waveErr != nil {
		return nil, waveErr
	}
	res.WaveWall = time.Since(waveStart)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.WaveP50 = lats[len(lats)/2]
		res.WaveP99 = lats[len(lats)*99/100]
	}

	// ---- post-wave sanity: a migrated connection must still carry data ----
	probe := pop[0]
	client := probe.clients[0]
	if err := client.WriteMsg([]byte("storm-probe")); err != nil {
		return nil, fmt.Errorf("c10k: post-wave write: %w", err)
	}
	server, err := d.hosts["h3"].ctrl.AgentSocket(probe.name, client.ID())
	if err != nil {
		return nil, fmt.Errorf("c10k: attaching migrated endpoint: %w", err)
	}
	msg, err := server.ReadMsg()
	if err != nil {
		return nil, fmt.Errorf("c10k: post-wave read: %w", err)
	}
	if string(msg) != "storm-probe" {
		return nil, fmt.Errorf("c10k: post-wave probe corrupted: %q", msg)
	}
	return res, nil
}

// openStormAgent places one client/server agent pair and opens n
// connections between them over the shared host-pair transport.
func openStormAgent(d *deployment, idx, n int) (*stormAgent, error) {
	ca := fmt.Sprintf("c10k-c%d", idx)
	sa := fmt.Sprintf("c10k-s%d", idx)
	if err := d.place(ca, "h1"); err != nil {
		return nil, err
	}
	if err := d.place(sa, "h2"); err != nil {
		return nil, err
	}
	hc, hs := d.hosts["h1"], d.hosts["h2"]
	ss, err := hs.ctrl.ListenAs(sa, hs.cred(sa))
	if err != nil {
		return nil, err
	}
	a := &stormAgent{name: sa, clients: make([]*core.Socket, 0, n)}
	for j := 0; j < n; j++ {
		type acceptRes struct {
			s   *core.Socket
			err error
		}
		acceptCh := make(chan acceptRes, 1)
		go func() {
			ctx, cancel := acceptContext()
			defer cancel()
			s, err := ss.Accept(ctx)
			acceptCh <- acceptRes{s, err}
		}()
		cl, err := hc.ctrl.OpenAs(ca, hc.cred(ca), sa)
		if err != nil {
			return nil, fmt.Errorf("c10k: open %s#%d: %w", ca, j, err)
		}
		r := <-acceptCh
		if r.err != nil {
			return nil, fmt.Errorf("c10k: accept %s#%d: %w", sa, j, r.err)
		}
		a.clients = append(a.clients, cl)
	}
	return a, nil
}
