package experiments

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"naplet/internal/core"
)

// The Figure 10 experiments measure *effective throughput*: total traffic
// delivered over the whole period of communication and migration. The
// paper's testbed used service times of seconds and an agent migration
// cost of ~hundreds of milliseconds; this reproduction scales both down
// (milliseconds) so a full sweep runs in seconds — the ratios, and
// therefore the curve shapes, are preserved.

// mobileAgent tracks a migrating agent's current host so the traffic
// goroutines can re-attach to its connection after each hop.
type mobileAgent struct {
	d      *deployment
	id     string
	connID [16]byte

	mu    sync.Mutex
	host  string
	epoch uint64
}

func newMobileAgent(d *deployment, id, host string, connID [16]byte) *mobileAgent {
	return &mobileAgent{d: d, id: id, connID: connID, host: host, epoch: 1}
}

func (m *mobileAgent) currentHost() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.host
}

// hop migrates the agent to the next host of the ring.
func (m *mobileAgent) hop(ring []string) error {
	m.mu.Lock()
	from := m.host
	idx := 0
	for i, h := range ring {
		if h == from {
			idx = i
			break
		}
	}
	to := ring[(idx+1)%len(ring)]
	m.epoch++
	epoch := m.epoch
	m.mu.Unlock()
	if err := m.d.migrate(m.id, from, to, epoch); err != nil {
		return err
	}
	m.mu.Lock()
	m.host = to
	m.mu.Unlock()
	return nil
}

// attach binds to the agent's connection endpoint at its current host.
func (m *mobileAgent) attach(timeout time.Duration) (*core.Socket, error) {
	deadline := time.Now().Add(timeout)
	for {
		s, err := m.d.hosts[m.currentHost()].ctrl.AgentSocket(m.id, m.connID)
		if err == nil {
			return s, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(time.Millisecond)
	}
}

// offeredRateMbps paces the Figure 10 sender. The paper's testbed was
// capped by Fast Ethernet (~92 Mb/s measured); pacing the loopback sender
// to a comparable rate makes migration pauses — not scheduler noise — the
// thing the measurement sees, preserving the published curve shapes.
const offeredRateMbps = 100.0

// pump writes msgSize messages through the agent's connection at the paced
// offered rate until stopped, re-attaching across migrations. Delivered
// bytes are counted at the receiver.
func (m *mobileAgent) pump(msgSize int, stop <-chan struct{}) {
	payload := make([]byte, msgSize)
	sock, err := m.attach(5 * time.Second)
	if err != nil {
		return
	}
	// Batch a few messages per wakeup so the pace holds at millisecond
	// timer granularity. The schedule is deadline-based rather than
	// ticker-based: a constant-rate source sends on schedule even when a
	// loaded scheduler wakes it late, so up to maxCatchup intervals of
	// deficit are sent immediately on wakeup. Longer gaps — a write
	// blocked behind a migrating peer — are NOT backfilled: that offered
	// load is gone, which is exactly the loss effective throughput
	// measures.
	const (
		batch      = 8
		maxCatchup = 4
	)
	interval := time.Duration(float64(msgSize*8*batch) / (offeredRateMbps * 1e6) * float64(time.Second))
	next := time.Now()
	// One reused pacing timer for the whole run; time.After would allocate
	// a timer per wakeup at millisecond rates.
	pace := time.NewTimer(time.Hour)
	pace.Stop()
	defer pace.Stop()
	for {
		if d := time.Until(next); d > 0 {
			pace.Reset(d)
			select {
			case <-stop:
				return
			case <-pace.C:
			}
		} else {
			select {
			case <-stop:
				return
			default:
			}
		}
		behind := 1 + int(time.Since(next)/interval)
		if behind > maxCatchup {
			behind = maxCatchup
			next = time.Now().Add(-time.Duration(maxCatchup-1) * interval)
		}
		for i := 0; i < behind*batch; i++ {
			if err := sock.WriteMsg(payload); err != nil {
				if errors.Is(err, core.ErrMigrated) {
					if sock, err = m.attach(5 * time.Second); err != nil {
						return
					}
					i--
					continue
				}
				return
			}
		}
		next = next.Add(time.Duration(behind) * interval)
		// A long blocking write (a migration pause) leaves next far in the
		// past; restart the schedule from now instead of bursting.
		if time.Since(next) > maxCatchup*interval {
			next = time.Now().Add(interval)
		}
	}
}

// drain counts received bytes on a (possibly migrating) endpoint.
func drain(attach func() (*core.Socket, error), counter *atomic.Int64) {
	sock, err := attach()
	if err != nil {
		return
	}
	for {
		msg, err := sock.ReadMsg()
		if err != nil {
			if errors.Is(err, core.ErrMigrated) {
				if sock, err = attach(); err != nil {
					return
				}
				continue
			}
			return
		}
		counter.Add(int64(len(msg)))
	}
}

// runEffective measures effective throughput (Mb/s at the receiver) for
// one migration pattern: the sender agent performs `hops` migrations with
// the given per-host service time; when concurrent is set, the receiver
// agent migrates simultaneously along its own ring.
func runEffective(hops int, service, migDelay time.Duration, msgSize int, concurrent bool) (float64, error) {
	d, err := newDeployment([]string{"h1", "h2", "h3", "h4", "h5", "h6"}, withMigrationDelay(migDelay))
	if err != nil {
		return 0, err
	}
	defer d.close()

	sender, _, err := d.pair("tx", "h2", "rx", "h1")
	if err != nil {
		return 0, err
	}
	tx := newMobileAgent(d, "tx", "h2", sender.ID())
	rx := newMobileAgent(d, "rx", "h1", sender.ID())

	var received atomic.Int64
	stop := make(chan struct{})
	go drain(func() (*core.Socket, error) { return rx.attach(5 * time.Second) }, &received)
	go tx.pump(msgSize, stop)

	txRing := []string{"h2", "h3", "h4"}
	rxRing := []string{"h1", "h5", "h6"}
	start := time.Now()
	for i := 0; i < hops; i++ {
		time.Sleep(service)
		if concurrent {
			var wg sync.WaitGroup
			var txErr, rxErr error
			wg.Add(2)
			go func() { defer wg.Done(); txErr = tx.hop(txRing) }()
			go func() { defer wg.Done(); rxErr = rx.hop(rxRing) }()
			wg.Wait()
			if txErr != nil {
				return 0, txErr
			}
			if rxErr != nil {
				return 0, rxErr
			}
		} else if err := tx.hop(txRing); err != nil {
			return 0, err
		}
	}
	time.Sleep(service)
	elapsed := time.Since(start)
	bytes := received.Load()
	close(stop)
	if elapsed <= 0 {
		return 0, errors.New("fig10: zero elapsed time")
	}
	return float64(bytes) * 8 / 1e6 / elapsed.Seconds(), nil
}

// Fig10aPoint is one service-time setting's effective throughput.
type Fig10aPoint struct {
	Service time.Duration
	Mbps    float64
}

// Fig10aResult reproduces Figure 10(a): effective throughput versus agent
// service time under the single-migration pattern, against the
// no-migration ceiling.
type Fig10aResult struct {
	Points       []Fig10aPoint
	BaselineMbps float64
	MsgSize      int
	Hops         int
	MigDelay     time.Duration
}

// Table renders the Figure 10(a) series.
func (r *Fig10aResult) Table() string {
	rows := make([][]string, 0, len(r.Points)+1)
	for _, p := range r.Points {
		share := 0.0
		if r.BaselineMbps > 0 {
			share = 100 * p.Mbps / r.BaselineMbps
		}
		rows = append(rows, []string{
			fmt.Sprintf("%v", p.Service), f1(p.Mbps), f1(share) + "%",
		})
	}
	rows = append(rows, []string{"no migration", f1(r.BaselineMbps), "100%"})
	return table([]string{"service time", "effective Mb/s", "of ceiling"}, rows)
}

// DefaultFig10aServices is the scaled-down sweep corresponding to the
// paper's 0.05–30 s axis.
func DefaultFig10aServices() []time.Duration {
	return []time.Duration{
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		time.Second,
	}
}

// RunFig10a sweeps the service time under the single-migration pattern.
func RunFig10a(services []time.Duration, hops, msgSize int, migDelay time.Duration) (*Fig10aResult, error) {
	if len(services) == 0 {
		services = DefaultFig10aServices()
	}
	if hops <= 0 {
		hops = 3
	}
	if msgSize <= 0 {
		msgSize = 2048 // the paper's constant 2 KB messages
	}
	if migDelay <= 0 {
		migDelay = 20 * time.Millisecond // scaled-down T_a-migrate
	}
	res := &Fig10aResult{MsgSize: msgSize, Hops: hops, MigDelay: migDelay}

	// No-migration ceiling over a comparable duration.
	base, err := runEffective(0, 500*time.Millisecond, 0, msgSize, false)
	if err != nil {
		return nil, err
	}
	res.BaselineMbps = base

	for _, svc := range services {
		mbps, err := runEffective(hops, svc, migDelay, msgSize, false)
		if err != nil {
			return nil, fmt.Errorf("fig10a service %v: %w", svc, err)
		}
		res.Points = append(res.Points, Fig10aPoint{Service: svc, Mbps: mbps})
	}
	return res, nil
}

// Fig10bPoint is one hop count's effective throughput for both patterns.
type Fig10bPoint struct {
	Hops           int
	SingleMbps     float64
	ConcurrentMbps float64
}

// Fig10bResult reproduces Figure 10(b): effective throughput versus number
// of migration hops, single versus concurrent migration.
type Fig10bResult struct {
	Points   []Fig10bPoint
	Service  time.Duration
	MsgSize  int
	MigDelay time.Duration
}

// Table renders the Figure 10(b) series.
func (r *Fig10bResult) Table() string {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{
			fmt.Sprintf("%d", p.Hops), f1(p.SingleMbps), f1(p.ConcurrentMbps),
		}
	}
	return table([]string{"hops", "single (Mb/s)", "concurrent (Mb/s)"}, rows)
}

// RunFig10b sweeps the hop count for both migration patterns at a fixed
// service time (the paper fixed 20 s per host; scaled down here).
func RunFig10b(maxHops int, service time.Duration, msgSize int, migDelay time.Duration) (*Fig10bResult, error) {
	if maxHops <= 0 {
		maxHops = 7
	}
	if service <= 0 {
		service = 150 * time.Millisecond
	}
	if msgSize <= 0 {
		msgSize = 2048
	}
	if migDelay <= 0 {
		migDelay = 20 * time.Millisecond
	}
	res := &Fig10bResult{Service: service, MsgSize: msgSize, MigDelay: migDelay}
	for hops := 1; hops <= maxHops; hops++ {
		single, err := runEffective(hops, service, migDelay, msgSize, false)
		if err != nil {
			return nil, fmt.Errorf("fig10b single %d hops: %w", hops, err)
		}
		conc, err := runEffective(hops, service, migDelay, msgSize, true)
		if err != nil {
			return nil, fmt.Errorf("fig10b concurrent %d hops: %w", hops, err)
		}
		res.Points = append(res.Points, Fig10bPoint{Hops: hops, SingleMbps: single, ConcurrentMbps: conc})
	}
	return res, nil
}
