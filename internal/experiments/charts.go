package experiments

import (
	"fmt"

	"naplet/internal/plot"
)

// Chart/CSV adapters: each figure result renders as an ASCII chart (for
// the repro CLI) and exports CSV (for external plotting).

// Chart renders Figure 9.
func (r *Fig9Result) Chart() string {
	c := &plot.Chart{
		Title: "Figure 9: throughput vs message size (log x)", Width: 64, Height: 14,
		XLabel: "message size (B)", YLabel: "Mb/s", LogX: true,
	}
	c.Add(r.series("TCP", func(p Fig9Point) float64 { return p.TCPMbps }))
	c.Add(r.series("NapletSocket", func(p Fig9Point) float64 { return p.NapletMbps }))
	return c.Render()
}

// CSV exports the Figure 9 data.
func (r *Fig9Result) CSV() string {
	return plot.CSV("msg_size_bytes",
		r.series("tcp_mbps", func(p Fig9Point) float64 { return p.TCPMbps }),
		r.series("naplet_mbps", func(p Fig9Point) float64 { return p.NapletMbps }),
	)
}

func (r *Fig9Result) series(name string, y func(Fig9Point) float64) plot.Series {
	s := plot.Series{Name: name}
	for _, p := range r.Points {
		s.X = append(s.X, float64(p.MsgSize))
		s.Y = append(s.Y, y(p))
	}
	return s
}

// Chart renders Figure 10(a).
func (r *Fig10aResult) Chart() string {
	c := &plot.Chart{
		Title: "Figure 10(a): effective throughput vs service time (log x)", Width: 64, Height: 14,
		XLabel: "service time (ms)", YLabel: "Mb/s", LogX: true,
	}
	with, ceiling := r.serieses()
	c.Add(with)
	c.Add(ceiling)
	return c.Render()
}

// CSV exports the Figure 10(a) data.
func (r *Fig10aResult) CSV() string {
	with, ceiling := r.serieses()
	with.Name, ceiling.Name = "effective_mbps", "ceiling_mbps"
	return plot.CSV("service_ms", with, ceiling)
}

func (r *Fig10aResult) serieses() (with, ceiling plot.Series) {
	with = plot.Series{Name: "with migration"}
	ceiling = plot.Series{Name: "no migration"}
	for _, p := range r.Points {
		ms := float64(p.Service.Milliseconds())
		with.X = append(with.X, ms)
		with.Y = append(with.Y, p.Mbps)
		ceiling.X = append(ceiling.X, ms)
		ceiling.Y = append(ceiling.Y, r.BaselineMbps)
	}
	return with, ceiling
}

// Chart renders Figure 10(b).
func (r *Fig10bResult) Chart() string {
	c := &plot.Chart{
		Title: "Figure 10(b): effective throughput vs migration hops", Width: 64, Height: 14,
		XLabel: "hops", YLabel: "Mb/s",
	}
	single, conc := r.serieses()
	c.Add(single)
	c.Add(conc)
	return c.Render()
}

// CSV exports the Figure 10(b) data.
func (r *Fig10bResult) CSV() string {
	single, conc := r.serieses()
	single.Name, conc.Name = "single_mbps", "concurrent_mbps"
	return plot.CSV("hops", single, conc)
}

func (r *Fig10bResult) serieses() (single, conc plot.Series) {
	single = plot.Series{Name: "single migration"}
	conc = plot.Series{Name: "concurrent migration"}
	for _, p := range r.Points {
		single.X = append(single.X, float64(p.Hops))
		single.Y = append(single.Y, p.SingleMbps)
		conc.X = append(conc.X, float64(p.Hops))
		conc.Y = append(conc.Y, p.ConcurrentMbps)
	}
	return single, conc
}

// ChartHigh and ChartLow render Figure 12(a) and 12(b).
func (r *Fig12Result) ChartHigh() string { return r.chart(true) }

// ChartLow renders Figure 12(b).
func (r *Fig12Result) ChartLow() string { return r.chart(false) }

func (r *Fig12Result) chart(high bool) string {
	which, fig := "low-priority", "12(b)"
	if high {
		which, fig = "high-priority", "12(a)"
	}
	c := &plot.Chart{
		Title: fmt.Sprintf("Figure %s: connection migration cost, %s agent", fig, which),
		Width: 64, Height: 14,
		XLabel: "mean service time of A (ms)", YLabel: "cost (ms)",
		YMin: 30, YMax: 60, // the paper's y-axis
	}
	for _, s := range r.serieses(high) {
		c.Add(s)
	}
	return c.Render()
}

// CSVHigh and CSVLow export the Figure 12 data.
func (r *Fig12Result) CSVHigh() string { return plot.CSV("mean_service_a_ms", r.serieses(true)...) }

// CSVLow exports the low-priority series.
func (r *Fig12Result) CSVLow() string { return plot.CSV("mean_service_a_ms", r.serieses(false)...) }

func (r *Fig12Result) serieses(high bool) []plot.Series {
	out := make([]plot.Series, 0, len(r.Curves))
	for _, curve := range r.Curves {
		s := plot.Series{Name: fmt.Sprintf("ub/ua=%.2f", curve.Ratio)}
		for i, mean := range r.MeansA {
			v := curve.Points[i].MeanCostLow
			if high {
				v = curve.Points[i].MeanCostHigh
			}
			s.X = append(s.X, mean)
			s.Y = append(s.Y, v)
		}
		out = append(out, s)
	}
	return out
}

// Chart renders Figure 13.
func (r *Fig13Result) Chart() string {
	c := &plot.Chart{
		Title: "Figure 13: connection migration overhead vs message exchange rate", Width: 64, Height: 14,
		XLabel: "message exchange rate", YLabel: "overhead",
		YMin: 0.01, YMax: 1,
	}
	for _, s := range r.serieses() {
		c.Add(s)
	}
	return c.Render()
}

// CSV exports the Figure 13 data.
func (r *Fig13Result) CSV() string { return plot.CSV("exchange_rate", r.serieses()...) }

func (r *Fig13Result) serieses() []plot.Series {
	out := make([]plot.Series, 0, len(r.Rs))
	for si, rr := range r.Rs {
		s := plot.Series{Name: fmt.Sprintf("r=%g", rr)}
		for i, lambda := range r.Rates {
			s.X = append(s.X, lambda)
			s.Y = append(s.Y, r.Series[si][i])
		}
		out = append(out, s)
	}
	return out
}
