package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// WANPoint is one committed WAN-matrix cell (BENCH_wan.json). The
// robustness invariants — every break resumed, zero false transport
// losses, zero false detector confirms, zero false keepalive timeouts —
// are machine-independent and gated absolutely; the resume p99 is gated
// relatively, with an absolute grace term for scheduler noise, because it
// is dominated by the emulated RTT rather than by the hardware.
type WANPoint struct {
	Profile           string  `json:"profile"`
	RTTMs             float64 `json:"rtt_ms"`
	Breaks            int     `json:"breaks"`
	ResumeRate        float64 `json:"resume_rate"`
	ResumeP50Ms       float64 `json:"resume_p50_ms"`
	ResumeP99Ms       float64 `json:"resume_p99_ms"`
	FalseLost         int     `json:"false_lost"`
	FalseConfirms     int     `json:"false_confirms"`
	KeepaliveTimeouts int     `json:"keepalive_timeouts"`
	ThroughputMbps    float64 `json:"throughput_mbps"`
}

// BenchWAN is the committed WAN baseline file.
type BenchWAN struct {
	Note   string     `json:"note,omitempty"`
	Breaks int        `json:"breaks"`
	Points []WANPoint `json:"points"`
}

// BenchWANFrom converts a fresh matrix run to a committed baseline.
func BenchWANFrom(r *WANMatrixResult) *BenchWAN {
	b := &BenchWAN{}
	for _, c := range r.Cells {
		if b.Breaks == 0 {
			b.Breaks = c.Breaks
		}
		b.Points = append(b.Points, WANPoint{
			Profile:           c.Profile,
			RTTMs:             round1(c.RTTMs),
			Breaks:            c.Breaks,
			ResumeRate:        round3(c.ResumeRate),
			ResumeP50Ms:       round1(c.ResumeP50Ms),
			ResumeP99Ms:       round1(c.ResumeP99Ms),
			FalseLost:         c.TransportLost,
			FalseConfirms:     c.DetectorConfirms,
			KeepaliveTimeouts: c.KeepaliveTimeouts,
			ThroughputMbps:    round1(c.ThroughputMbps),
		})
	}
	return b
}

// LoadBenchWAN reads a committed WAN baseline.
func LoadBenchWAN(path string) (*BenchWAN, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b BenchWAN
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &b, nil
}

// WriteBenchWAN writes the baseline in a stable, diff-friendly form.
func WriteBenchWAN(path string, b *BenchWAN) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WANP99GraceMs is the absolute slack added on top of the relative
// tolerance when gating resume p99: with only a handful of break samples
// per cell the p99 is really a max, and a single slow scheduler wakeup
// should not fail CI.
const WANP99GraceMs = 500.0

// CompareWAN checks a fresh matrix run against the committed baseline.
// Profiles absent from the baseline are ignored (and vice versa), so a
// short smoke run gates only the cells it measured.
func CompareWAN(baseline *BenchWAN, fresh *WANMatrixResult, tolerance float64) (string, error) {
	base := make(map[string]WANPoint, len(baseline.Points))
	for _, p := range baseline.Points {
		base[p.Profile] = p
	}
	report := ""
	var regressions []string
	bad := func(format string, args ...any) {
		regressions = append(regressions, fmt.Sprintf(format, args...))
	}
	for _, c := range fresh.Cells {
		bp, ok := base[c.Profile]
		if !ok {
			continue
		}
		report += fmt.Sprintf("%-16s resume %d/%d p99 %.1fms (baseline %.1fms) lost=%d confirms=%d ka=%d\n",
			c.Profile, c.Resumed, c.Broken, c.ResumeP99Ms, bp.ResumeP99Ms,
			c.TransportLost, c.DetectorConfirms, c.KeepaliveTimeouts)
		if c.ResumeRate < bp.ResumeRate {
			bad("%s: resume rate %.3f below baseline %.3f", c.Profile, c.ResumeRate, bp.ResumeRate)
		}
		if c.TransportLost > bp.FalseLost {
			bad("%s: %d false ErrTransportLost (baseline %d)", c.Profile, c.TransportLost, bp.FalseLost)
		}
		if c.DetectorConfirms > bp.FalseConfirms {
			bad("%s: %d false detector confirms (baseline %d)", c.Profile, c.DetectorConfirms, bp.FalseConfirms)
		}
		if c.KeepaliveTimeouts > bp.KeepaliveTimeouts {
			bad("%s: %d false keepalive timeouts (baseline %d)", c.Profile, c.KeepaliveTimeouts, bp.KeepaliveTimeouts)
		}
		if bp.ResumeP99Ms > 0 {
			if allowed := bp.ResumeP99Ms*(1+tolerance) + WANP99GraceMs; c.ResumeP99Ms > allowed {
				bad("%s: resume p99 %.1fms exceeds %.1fms (baseline %.1fms + %.0f%% + %.0fms grace)",
					c.Profile, c.ResumeP99Ms, allowed, bp.ResumeP99Ms, tolerance*100, WANP99GraceMs)
			}
		}
	}
	if len(regressions) > 0 {
		msg := ""
		for _, r := range regressions {
			msg += r + "\n"
		}
		return report, fmt.Errorf("wan matrix regressions:\n%s", msg)
	}
	return report, nil
}
