package experiments

import (
	"testing"
	"time"
)

// TestNamingBenchSmoke runs the naming benchmark at a small population
// and short windows — enough to exercise the cluster bring-up, the
// registration pool, the storm, and both lookup phases, and to check the
// properties the full-size gate depends on.
func TestNamingBenchSmoke(t *testing.T) {
	res, err := RunNamingBench(NamingBenchConfig{
		Agents:    200,
		StormRate: 50,
		Duration:  400 * time.Millisecond,
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Table())
	if res.CachedPerSec <= 0 || res.DirectPerSec <= 0 {
		t.Fatalf("empty measurement: %+v", res)
	}
	if res.CachedPerSec <= res.DirectPerSec {
		t.Errorf("cache slower than direct cluster lookups: %.0f/s vs %.0f/s",
			res.CachedPerSec, res.DirectPerSec)
	}
	if res.HitRate < MinNamingHitRate {
		t.Errorf("storm-era hit rate %.3f below the %.2f floor", res.HitRate, MinNamingHitRate)
	}
	if res.Advances == 0 {
		t.Error("storm produced no cache advances; the piggyback path is dead")
	}
	if res.StormAchieved <= 0 {
		t.Error("storm made no migrations")
	}

	// The round trip through the committed-baseline form must gate a run
	// against itself cleanly.
	b := BenchNamingFrom(res)
	if report, err := CompareNaming(b, res, 0.5); err != nil {
		t.Errorf("self-comparison failed: %v\n%s", err, report)
	}
}
