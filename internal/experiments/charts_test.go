package experiments

import (
	"strings"
	"testing"
	"time"
)

func fig9Fixture() *Fig9Result {
	return &Fig9Result{Points: []Fig9Point{
		{MsgSize: 100, TCPMbps: 1000, NapletMbps: 400},
		{MsgSize: 10000, TCPMbps: 9000, NapletMbps: 5000},
	}}
}

func TestFig9ChartAndCSV(t *testing.T) {
	r := fig9Fixture()
	if out := r.Chart(); !strings.Contains(out, "NapletSocket") || !strings.Contains(out, "log x") {
		t.Fatalf("chart = %q", out)
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "msg_size_bytes,tcp_mbps,naplet_mbps\n") {
		t.Fatalf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "100,1000,400") {
		t.Fatalf("csv rows: %q", csv)
	}
}

func TestFig10ChartsAndCSV(t *testing.T) {
	a := &Fig10aResult{
		Points:       []Fig10aPoint{{Service: 50 * time.Millisecond, Mbps: 60}, {Service: 500 * time.Millisecond, Mbps: 90}},
		BaselineMbps: 100,
	}
	if out := a.Chart(); !strings.Contains(out, "no migration") {
		t.Fatalf("fig10a chart = %q", out)
	}
	if csv := a.CSV(); !strings.Contains(csv, "service_ms,effective_mbps,ceiling_mbps") {
		t.Fatalf("fig10a csv = %q", csv)
	}

	b := &Fig10bResult{Points: []Fig10bPoint{{Hops: 1, SingleMbps: 90, ConcurrentMbps: 80}, {Hops: 2, SingleMbps: 85, ConcurrentMbps: 75}}}
	if out := b.Chart(); !strings.Contains(out, "concurrent migration") {
		t.Fatalf("fig10b chart = %q", out)
	}
	if csv := b.CSV(); !strings.Contains(csv, "hops,single_mbps,concurrent_mbps") {
		t.Fatalf("fig10b csv = %q", csv)
	}
}

func TestFig12ChartsAndCSV(t *testing.T) {
	r := RunFig12([]float64{100, 1000}, []float64{1, 3}, 500, 5)
	if out := r.ChartHigh(); !strings.Contains(out, "12(a)") || !strings.Contains(out, "ub/ua=1.00") {
		t.Fatalf("chart high = %q", out)
	}
	if out := r.ChartLow(); !strings.Contains(out, "12(b)") {
		t.Fatalf("chart low = %q", out)
	}
	if csv := r.CSVHigh(); !strings.Contains(csv, "mean_service_a_ms,ub/ua=1.00,ub/ua=3.00") {
		t.Fatalf("csv high = %q", csv)
	}
	if csv := r.CSVLow(); !strings.HasPrefix(csv, "mean_service_a_ms") {
		t.Fatalf("csv low = %q", csv)
	}
}

func TestFig13ChartAndCSV(t *testing.T) {
	r := RunFig13([]float64{1, 10, 100}, []float64{1, 20})
	if out := r.Chart(); !strings.Contains(out, "r=20") {
		t.Fatalf("chart = %q", out)
	}
	if csv := r.CSV(); !strings.Contains(csv, "exchange_rate,r=1,r=20") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestBenchPairHelpers(t *testing.T) {
	p, err := NewBenchPair(false)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.OpenClose(); err != nil {
		t.Fatal(err)
	}
	if err := p.SuspendResume(); err != nil {
		t.Fatal(err)
	}
	if err := p.MigrateClient(); err != nil {
		t.Fatal(err)
	}
	// And again from the other spare host.
	if err := p.MigrateClient(); err != nil {
		t.Fatal(err)
	}
}
