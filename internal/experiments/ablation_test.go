package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestAblationHandoffSavesRoundTrip(t *testing.T) {
	res, err := RunAblationHandoff(15)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim (§3.4): the handoff saves one control round trip
	// per setup. Both quantities must be real and the saved share sane.
	if res.SavedRTTMs <= 0 {
		t.Fatalf("saved RTT = %v ms", res.SavedRTTMs)
	}
	if res.OpenMs <= res.SavedRTTMs {
		t.Fatalf("open cost %v ms not above one RTT %v ms", res.OpenMs, res.SavedRTTMs)
	}
	if share := res.SavedShare(); share <= 0 || share >= 0.5 {
		t.Fatalf("saved share = %v", share)
	}
	if !strings.Contains(res.Table(), "socket handoff") {
		t.Fatal("table rendering broken")
	}
}

func TestAblationControlChannel(t *testing.T) {
	res, err := RunAblationControl(50)
	if err != nil {
		t.Fatal(err)
	}
	// The paper chose UDP "from a performance perspective" (§3.5): one
	// reliable-UDP request must beat a fresh TCP dial per request.
	if res.RUDPMs >= res.TCPDialMs {
		t.Fatalf("reliable UDP (%.3f ms) not faster than TCP-per-request (%.3f ms)",
			res.RUDPMs, res.TCPDialMs)
	}
	if !strings.Contains(res.Table(), "reliable UDP") {
		t.Fatal("table rendering broken")
	}
}

func TestAblationFailureResume(t *testing.T) {
	res, err := RunAblationFailure(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveryMs <= 0 || res.RecoveryMs > 5000 {
		t.Fatalf("recovery time = %v ms", res.RecoveryMs)
	}
	if res.RecoveredWithOff {
		t.Fatal("connection recovered with failure-resume disabled")
	}
	if !strings.Contains(res.Table(), "failure-resume on") {
		t.Fatal("table rendering broken")
	}
}

func TestMotivationSocketBeatsMailbox(t *testing.T) {
	res, err := RunMotivation(50)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's motivating claim: the synchronous transient channel is
	// markedly faster per interaction than the mailbox path (which pays a
	// location lookup and office-to-office delivery each way).
	if res.NapletRTTMs <= 0 || res.MailboxRTTMs <= 0 {
		t.Fatalf("rtts = %v / %v", res.NapletRTTMs, res.MailboxRTTMs)
	}
	if res.MailboxRTTMs <= res.NapletRTTMs {
		t.Fatalf("mailbox RTT %.3f ms not above socket RTT %.3f ms", res.MailboxRTTMs, res.NapletRTTMs)
	}
	if !strings.Contains(res.Table(), "NapletSocket") {
		t.Fatal("table rendering broken")
	}
}

func TestWANApproximatesPaperRegime(t *testing.T) {
	res, err := RunWAN(5*time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	rttMs := 10.0 // 5ms one-way
	// Suspend is a control exchange plus the drain: at least one RTT.
	if res.SuspendMs < rttMs {
		t.Fatalf("suspend %v ms under one RTT %v ms", res.SuspendMs, rttMs)
	}
	// Resume adds the handoff dial: at least one RTT too.
	if res.ResumeMs < rttMs {
		t.Fatalf("resume %v ms under one RTT %v ms", res.ResumeMs, rttMs)
	}
	// Open performs multiple exchanges (CONNECT, handoff, ID): more than
	// suspend alone.
	if res.OpenSecureMs <= res.SuspendMs {
		t.Fatalf("open %v ms not above suspend %v ms", res.OpenSecureMs, res.SuspendMs)
	}
	// Everything still completes in a sane envelope.
	if res.OpenSecureMs > 500 || res.SuspendMs > 500 || res.ResumeMs > 500 {
		t.Fatalf("wan latencies out of envelope: %+v", res)
	}
	if !strings.Contains(res.Table(), "paper (ms)") {
		t.Fatal("table rendering broken")
	}
}
