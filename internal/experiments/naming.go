package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"naplet/internal/naming"
	"naplet/internal/naming/cluster"
	"naplet/internal/obs"
)

// The naming benchmark measures what the location-cache design note
// claims: under a continuous migration storm, a host that learns about
// moves from the piggybacked SUS_RES/RES notifications keeps serving
// lookups from cache — at memory speed and with a hit rate the storm
// barely dents — while a cacheless host pays a registry round trip for
// every open.
//
// The workload is an in-process sharded cluster (nodes on loopback UDP,
// leader-lease replication exactly as deployed) populated with Agents
// records. A storm goroutine performs epoch-bumping Updates at StormRate
// per second and, after each ack, delivers the same Advance notification
// the RES piggyback would carry. Lookup workers then hammer the directory
// through the cache and directly, for Duration each.

// NamingBenchConfig sizes the benchmark; zero values select the committed
// baseline's configuration (10k agents, 3x2 cluster, 100 migrations/sec).
type NamingBenchConfig struct {
	Agents      int           // directory population; default 10000
	Nodes       int           // cluster processes; default 3
	Shards      int           // consistent-hash shards; default 3
	Replication int           // replicas per shard; default 2
	StormRate   float64       // migrations/sec during measurement; default 100
	Duration    time.Duration // per-mode measurement window; default 3s
	Workers     int           // concurrent lookup workers; default 8
	Seed        int64         // agent-pick randomness; default 1
}

func (c NamingBenchConfig) withDefaults() NamingBenchConfig {
	if c.Agents <= 0 {
		c.Agents = 10000
	}
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.StormRate <= 0 {
		c.StormRate = 100
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// NamingBenchResult is one full run of the lookup benchmark.
type NamingBenchResult struct {
	Config NamingBenchConfig

	// CachedPerSec is lookups/sec served through the migration-aware
	// cache while the storm runs; DirectPerSec is the same workers
	// asking the cluster for every lookup.
	CachedPerSec float64
	DirectPerSec float64
	// HitRate is the cache's hit fraction over the cached phase.
	HitRate float64
	// Advances counts storm notifications absorbed by the cache (the
	// piggyback path keeping entries fresh without a registry fetch).
	Advances uint64
	// StormAchieved is the measured migration rate, which falls short of
	// StormRate only if the cluster cannot ack writes fast enough.
	StormAchieved float64
}

// Speedup is the cached/direct lookup throughput ratio — the
// machine-independent number the regression gate compares.
func (r *NamingBenchResult) Speedup() float64 {
	if r.DirectPerSec <= 0 {
		return 0
	}
	return r.CachedPerSec / r.DirectPerSec
}

// Table renders the benchmark summary.
func (r *NamingBenchResult) Table() string {
	rows := [][]string{
		{"agents", fmt.Sprintf("%d", r.Config.Agents)},
		{"cluster", fmt.Sprintf("%d nodes, %d shards x%d", r.Config.Nodes, r.Config.Shards, r.Config.Replication)},
		{"storm (migr/s)", f1(r.StormAchieved)},
		{"cached lookups/s", f1(r.CachedPerSec)},
		{"direct lookups/s", f1(r.DirectPerSec)},
		{"speedup", f1(r.Speedup()) + "x"},
		{"hit rate", f1(r.HitRate*100) + "%"},
		{"advances", fmt.Sprintf("%d", r.Advances)},
	}
	return table([]string{"metric", "value"}, rows)
}

// reserveUDPAddrs grabs n distinct loopback UDP addresses by binding and
// releasing them: the cluster layout must name every node address before
// the nodes exist.
func reserveUDPAddrs(n int) ([]string, error) {
	conns := make([]net.PacketConn, 0, n)
	addrs := make([]string, 0, n)
	defer func() {
		for _, pc := range conns {
			pc.Close()
		}
	}()
	for i := 0; i < n; i++ {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("reserving port: %w", err)
		}
		conns = append(conns, pc)
		addrs = append(addrs, pc.LocalAddr().String())
	}
	return addrs, nil
}

func namingLoc(agent string, epoch uint64) naming.Location {
	return naming.Location{
		Host:        fmt.Sprintf("host-%d", epoch%7),
		ControlAddr: fmt.Sprintf("10.1.0.%d:%d", epoch%250+1, 4000+epoch%1000),
		DataAddr:    fmt.Sprintf("10.1.0.%d:%d", epoch%250+1, 5000+epoch%1000),
	}
}

// RunNamingBench builds the cluster, loads it, runs the storm, and
// measures both lookup modes.
func RunNamingBench(cfg NamingBenchConfig) (*NamingBenchResult, error) {
	cfg = cfg.withDefaults()
	addrs, err := reserveUDPAddrs(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	layout, err := cluster.BuildLayout(addrs, cfg.Shards, cfg.Replication)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	nodes := make([]*cluster.Node, 0, cfg.Nodes)
	defer func() {
		for _, n := range nodes {
			n.Kill()
		}
	}()
	for _, addr := range addrs {
		n, err := cluster.NewNode(cluster.NodeConfig{Addr: addr, Layout: layout, Metrics: reg})
		if err != nil {
			return nil, fmt.Errorf("starting node %s: %w", addr, err)
		}
		nodes = append(nodes, n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	client, err := cluster.NewClient(ctx, cluster.ClientConfig{Seeds: addrs, Metrics: reg})
	if err != nil {
		return nil, err
	}
	defer client.Close()

	// Populate the directory with a registration worker pool; each write
	// is a synchronously replicated cluster operation, so parallelism is
	// what makes 10k of them tolerable.
	ids := make([]string, cfg.Agents)
	for i := range ids {
		ids[i] = fmt.Sprintf("agent-%05d", i)
	}
	epochs := make([]uint64, cfg.Agents) // storm-owned after load
	var regErr error
	var regErrOnce sync.Once
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if err := client.Register(ctx, ids[i], namingLoc(ids[i], 1)); err != nil {
					regErrOnce.Do(func() { regErr = fmt.Errorf("register %s: %w", ids[i], err) })
					return
				}
			}
		}()
	}
	for i := range ids {
		work <- i
		epochs[i] = 1
	}
	close(work)
	wg.Wait()
	if regErr != nil {
		return nil, regErr
	}

	cache := naming.NewCache(client, naming.CacheConfig{MaxEntries: cfg.Agents + 16, Metrics: reg})
	// Warm sweep: one lookup per agent fills the cache, the way a busy
	// host's first opens would.
	for _, id := range ids {
		if _, err := cache.Lookup(ctx, id); err != nil {
			return nil, fmt.Errorf("warm lookup %s: %w", id, err)
		}
	}
	warmed := cache.Stats()

	// The storm: epoch-bumping Updates at StormRate in aggregate, each
	// followed by the Advance the mover's RES would piggyback to this
	// host. Several workers own disjoint agent slices — per-agent epochs
	// stay sequential while the synchronous replicated writes overlap
	// enough to actually sustain the target rate.
	stormCtx, stopStorm := context.WithCancel(ctx)
	defer stopStorm()
	const stormWorkers = 4
	var stormMoves atomic.Int64
	var stormErr atomic.Value
	stormStart := time.Now()
	var stormWG sync.WaitGroup
	for w := 0; w < stormWorkers; w++ {
		stormWG.Add(1)
		go func(w int) {
			defer stormWG.Done()
			var own []int
			for i := w; i < len(ids); i += stormWorkers {
				own = append(own, i)
			}
			if len(own) == 0 {
				return
			}
			rnd := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			// Absolute-schedule pacing rather than a ticker: when the
			// lookup workers monopolize the CPU and delay a wakeup, the
			// storm catches up with a burst instead of silently dropping
			// ticks, so the average rate stays at the target.
			interval := time.Duration(float64(time.Second) * stormWorkers / cfg.StormRate)
			next := time.Now()
			// Reused pacing timer: at storm rates a per-tick time.After
			// would churn thousands of runtime timers per second.
			pace := time.NewTimer(time.Hour)
			pace.Stop()
			defer pace.Stop()
			for {
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					pace.Reset(d)
					select {
					case <-stormCtx.Done():
						return
					case <-pace.C:
					}
				} else if stormCtx.Err() != nil {
					return
				}
				i := own[rnd.Intn(len(own))]
				epochs[i]++
				loc := namingLoc(ids[i], epochs[i])
				if err := client.Update(stormCtx, ids[i], loc, epochs[i]); err != nil {
					if stormCtx.Err() == nil {
						stormErr.Store(fmt.Errorf("storm update %s: %w", ids[i], err))
					}
					return
				}
				cache.Advance(ids[i], loc, epochs[i])
				stormMoves.Add(1)
			}
		}(w)
	}

	lookupPhase := func(resolve func(context.Context, string) (naming.Record, error)) (float64, error) {
		var count atomic.Int64
		var firstErr atomic.Value
		deadline := time.Now().Add(cfg.Duration)
		var pwg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			pwg.Add(1)
			go func(seed int64) {
				defer pwg.Done()
				rnd := rand.New(rand.NewSource(seed))
				for time.Now().Before(deadline) {
					id := ids[rnd.Intn(len(ids))]
					if _, err := resolve(ctx, id); err != nil {
						firstErr.Store(fmt.Errorf("lookup %s: %w", id, err))
						return
					}
					count.Add(1)
				}
			}(cfg.Seed + int64(w) + 1)
		}
		pwg.Wait()
		if err, _ := firstErr.Load().(error); err != nil {
			return 0, err
		}
		return float64(count.Load()) / cfg.Duration.Seconds(), nil
	}

	cachedPerSec, err := lookupPhase(cache.Lookup)
	if err != nil {
		return nil, err
	}
	measured := cache.Stats()
	directPerSec, err := lookupPhase(client.Lookup)
	if err != nil {
		return nil, err
	}
	stormDur := time.Since(stormStart)
	stopStorm()
	stormWG.Wait()
	if err, _ := stormErr.Load().(error); err != nil {
		return nil, err
	}
	final := cache.Stats()

	// Hit rate over the cached phase only: subtract the warm sweep's
	// misses, which are the cost of booting, not of the storm.
	phaseLookups := (measured.Hits + measured.Misses) - (warmed.Hits + warmed.Misses)
	phaseHits := measured.Hits - warmed.Hits
	hitRate := 0.0
	if phaseLookups > 0 {
		hitRate = float64(phaseHits) / float64(phaseLookups)
	}
	return &NamingBenchResult{
		Config:        cfg,
		CachedPerSec:  cachedPerSec,
		DirectPerSec:  directPerSec,
		HitRate:       hitRate,
		Advances:      final.Advances,
		StormAchieved: float64(stormMoves.Load()) / stormDur.Seconds(),
	}, nil
}
