//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; throughput
// *shape* assertions are skipped under it, since instrumentation skews the
// very timings they compare. The transfers themselves still run and their
// correctness checks still apply.
const raceEnabled = true
