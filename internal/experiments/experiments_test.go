package experiments

import (
	"strings"
	"testing"
	"time"

	"naplet/internal/metrics"
)

func TestTable1ShapeHolds(t *testing.T) {
	res, err := RunTable1(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	tcp, insec, sec := res.Rows[0], res.Rows[1], res.Rows[2]
	// The paper's ordering: secure open >> insecure open >> raw TCP open.
	if !(sec.OpenMs > insec.OpenMs && insec.OpenMs > tcp.OpenMs) {
		t.Fatalf("open ordering violated: tcp=%v insec=%v sec=%v", tcp.OpenMs, insec.OpenMs, sec.OpenMs)
	}
	// NapletSocket close involves a control handshake; TCP close is local.
	if !(sec.CloseMs > tcp.CloseMs && insec.CloseMs > tcp.CloseMs) {
		t.Fatalf("close ordering violated: tcp=%v insec=%v sec=%v", tcp.CloseMs, insec.CloseMs, sec.CloseMs)
	}
	out := res.Table()
	if !strings.Contains(out, "NapletSocket with security") {
		t.Fatalf("table = %q", out)
	}
}

func TestSuspendResumeBeatsReopen(t *testing.T) {
	res, err := RunSuspendResume(10)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: suspend+resume costs a fraction of
	// close+reopen (their measurement: less than a third).
	if res.SuspendMs+res.ResumeMs >= res.CloseOpenMs {
		t.Fatalf("suspend+resume (%.3f+%.3f) not cheaper than close+reopen (%.3f)",
			res.SuspendMs, res.ResumeMs, res.CloseOpenMs)
	}
	if !strings.Contains(res.Table(), "close+reopen") {
		t.Fatal("table rendering broken")
	}
}

func TestFig8SecurityDominatesSecureOpen(t *testing.T) {
	res, err := RunFig8(10)
	if err != nil {
		t.Fatal(err)
	}
	secure := res.PhasesMs["NapletSocket with security"]
	if secure == nil {
		t.Fatal("no secure breakdown")
	}
	var total float64
	for _, v := range secure {
		total += v
	}
	securityShare := (secure[metrics.PhaseKeyExchange] + secure[metrics.PhaseSecurityCheck]) / total
	// The paper: >80% of a secure open is key establishment plus
	// authentication/authorization. On loopback the same phases must at
	// least dominate (>50%).
	if securityShare < 0.5 {
		t.Fatalf("security phases are %.0f%% of secure open, expected dominant; breakdown: %v",
			100*securityShare, secure)
	}
	// The insecure breakdown must lack those phases.
	insec := res.PhasesMs["NapletSocket w/o security"]
	if insec[metrics.PhaseKeyExchange] != 0 || insec[metrics.PhaseSecurityCheck] != 0 {
		t.Fatalf("insecure open charged security phases: %v", insec)
	}
	if !strings.Contains(res.Table(), "key-exchange") {
		t.Fatal("table rendering broken")
	}
}

func TestFig7ReliableTrace(t *testing.T) {
	res, err := RunFig7(30, time.Millisecond, []int{8, 16, 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 30 {
		t.Fatalf("delivered %d messages", res.Total)
	}
	if res.Migrations != 3 {
		t.Fatalf("migrations = %d", res.Migrations)
	}
	if res.Buffered == 0 {
		t.Fatal("no buffered deliveries — migrations did not catch messages in flight")
	}
	if !strings.Contains(res.Table(), "buffer") {
		t.Fatalf("trace rendering: %q", res.Table())
	}
	if !strings.Contains(res.Summary(), "exactly once") {
		t.Fatalf("summary: %q", res.Summary())
	}
}

func TestFig9NapletClosesTCPGap(t *testing.T) {
	res, err := RunFig9([]int{100, 10000}, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %+v", res.Points)
	}
	for _, p := range res.Points {
		if p.TCPMbps <= 0 || p.NapletMbps <= 0 {
			t.Fatalf("non-positive throughput: %+v", p)
		}
	}
	// Larger messages narrow the relative gap (paper: gap becomes almost
	// negligible as message size grows).
	small := res.Points[0].NapletMbps / res.Points[0].TCPMbps
	large := res.Points[1].NapletMbps / res.Points[1].TCPMbps
	if large < small*0.8 && !raceEnabled {
		// Under the race detector the instrumentation overhead dwarfs the
		// per-message cost the ratio isolates, so the shape is only
		// asserted in uninstrumented runs.
		t.Fatalf("gap did not close with size: small ratio %.2f, large ratio %.2f", small, large)
	}
	if !strings.Contains(res.Table(), "msg size") {
		t.Fatal("table rendering broken")
	}
}

func TestFig10aThroughputRisesWithServiceTime(t *testing.T) {
	res, err := RunFig10a([]time.Duration{40 * time.Millisecond, 500 * time.Millisecond}, 2, 2048, 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %+v", res.Points)
	}
	fast, slow := res.Points[0].Mbps, res.Points[1].Mbps
	if slow <= fast {
		t.Fatalf("throughput did not rise with service time: %v @40ms vs %v @500ms", fast, slow)
	}
	if res.BaselineMbps <= 0 || slow > res.BaselineMbps*1.5 {
		t.Fatalf("baseline %v vs slow %v", res.BaselineMbps, slow)
	}
	if !strings.Contains(res.Table(), "no migration") {
		t.Fatal("table rendering broken")
	}
}

func TestFig10bConcurrentBelowSingle(t *testing.T) {
	// Average a few paired trials: the effect (concurrent migration incurs
	// more overhead than single) is real but modest, and loopback runs
	// under a loaded test machine are noisy.
	var single, conc float64
	const trials = 3
	for i := 0; i < trials; i++ {
		s, err := runEffective(2, 120*time.Millisecond, 40*time.Millisecond, 2048, false)
		if err != nil {
			t.Fatal(err)
		}
		c, err := runEffective(2, 120*time.Millisecond, 40*time.Millisecond, 2048, true)
		if err != nil {
			t.Fatal(err)
		}
		if s <= 0 || c <= 0 {
			t.Fatalf("non-positive throughput: single=%v concurrent=%v", s, c)
		}
		single += s
		conc += c
	}
	single /= trials
	conc /= trials
	if conc > single*1.1 {
		t.Fatalf("concurrent (%v) above single (%v) on average", conc, single)
	}
	// And the table rendering works on a minimal run.
	res, err := RunFig10b(1, 80*time.Millisecond, 2048, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table(), "hops") {
		t.Fatal("table rendering broken")
	}
}

func TestFig12CurveShapes(t *testing.T) {
	res := RunFig12([]float64{50, 500, 2000}, []float64{1}, 4000, 11)
	if len(res.Curves) != 1 || len(res.Curves[0].Points) != 3 {
		t.Fatalf("curves = %+v", res.Curves)
	}
	pts := res.Curves[0].Points
	single := res.Params.SingleCost()
	// High-priority cost stays near the single cost everywhere.
	for i, p := range pts {
		if p.MeanCostHigh < single-4 || p.MeanCostHigh > single+4 {
			t.Fatalf("high cost at point %d = %v, want ~%v", i, p.MeanCostHigh, single)
		}
	}
	// Low-priority cost is elevated at small service times and converges.
	if pts[0].MeanCostLow <= pts[2].MeanCostLow {
		t.Fatalf("low cost did not decay: %v -> %v", pts[0].MeanCostLow, pts[2].MeanCostLow)
	}
	if got := pts[2].MeanCostLow; got < single-2 || got > single+4 {
		t.Fatalf("low cost at 2000ms = %v, want ~%v", got, single)
	}
	if !strings.Contains(res.TableHigh(), "µb/µa") || !strings.Contains(res.TableLow(), "µb/µa") {
		t.Fatal("table rendering broken")
	}
}

func TestFig13OverheadShape(t *testing.T) {
	res := RunFig13(nil, nil)
	if len(res.Series) != len(DefaultFig13Rs()) {
		t.Fatalf("series = %d", len(res.Series))
	}
	// r = 1 stays above 0.8 everywhere (the paper's closing observation).
	for i, v := range res.Series[0] {
		if v < 0.8 {
			t.Fatalf("r=1 overhead at λ=%v is %v", res.Rates[i], v)
		}
	}
	// Each curve decreases with the exchange rate.
	for s, series := range res.Series {
		for i := 1; i < len(series); i++ {
			if series[i] >= series[i-1] {
				t.Fatalf("curve r=%v not decreasing at λ=%v", res.Rs[s], res.Rates[i])
			}
		}
	}
	// Larger r sits lower at every rate.
	for i := range res.Rates {
		for s := 1; s < len(res.Series); s++ {
			if res.Series[s][i] >= res.Series[s-1][i] {
				t.Fatalf("r ordering violated at λ=%v", res.Rates[i])
			}
		}
	}
	if !strings.Contains(res.Table(), "r=20") {
		t.Fatal("table rendering broken")
	}
}
