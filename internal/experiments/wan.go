package experiments

import (
	"fmt"
	"net"
	"time"

	"naplet/internal/metrics"
	"naplet/internal/netem"
)

// WANResult re-runs the Table 1 / Section 4.2 latency measurements with an
// emulated network: every data-socket write and every control packet is
// delayed by a one-way latency, so the protocol runs in the paper's
// absolute regime (their Fast Ethernet testbed had sub-millisecond RTT,
// their measured costs came from message exchanges; with a few
// milliseconds of emulated one-way delay the same exchange counts dominate
// the totals the way they did for the paper's JVM stack).
type WANResult struct {
	// OneWay is the emulated one-way latency.
	OneWay time.Duration
	// Latencies in milliseconds.
	OpenSecureMs float64
	SuspendMs    float64
	ResumeMs     float64
	Iters        int
}

// Table renders the emulated-network measurements with the paper's values
// alongside.
func (r *WANResult) Table() string {
	return table(
		[]string{"operation", fmt.Sprintf("measured @ %v one-way (ms)", r.OneWay), "paper (ms)"},
		[][]string{
			{"open (secure)", f1(r.OpenSecureMs), "134.4"},
			{"suspend", f1(r.SuspendMs), "27.8"},
			{"resume", f1(r.ResumeMs), "16.9"},
			{"suspend+resume", f1(r.SuspendMs + r.ResumeMs), "44.7"},
		},
	)
}

// RunWAN measures open/suspend/resume with the given emulated one-way
// latency applied to both the data plane and the control channel.
func RunWAN(oneWay time.Duration, iters int) (*WANResult, error) {
	if oneWay <= 0 {
		oneWay = 5 * time.Millisecond
	}
	if iters <= 0 {
		iters = 20
	}
	d, err := newDeployment([]string{"h1", "h2"}, withNetem(oneWay))
	if err != nil {
		return nil, err
	}
	defer d.close()
	client, _, err := d.pair("opener", "h1", "acceptor", "h2")
	if err != nil {
		return nil, err
	}

	// Open latency on fresh connections.
	hc := d.hosts["h1"]
	cred := hc.cred("opener")
	openS := metrics.NewSeries()
	for i := 0; i < iters; i++ {
		start := time.Now()
		conn, err := hc.ctrl.OpenAs("opener", cred, "acceptor")
		if err != nil {
			return nil, fmt.Errorf("wan open %d: %w", i, err)
		}
		openS.AddDuration(time.Since(start))
		conn.Close()
	}

	// Suspend/resume on the established connection.
	susS, resS := metrics.NewSeries(), metrics.NewSeries()
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := client.Suspend(); err != nil {
			return nil, fmt.Errorf("wan suspend %d: %w", i, err)
		}
		susS.AddDuration(time.Since(start))
		start = time.Now()
		if err := client.Resume(); err != nil {
			return nil, fmt.Errorf("wan resume %d: %w", i, err)
		}
		resS.AddDuration(time.Since(start))
	}
	return &WANResult{
		OneWay:       oneWay,
		OpenSecureMs: openS.Mean(),
		SuspendMs:    susS.Mean(),
		ResumeMs:     resS.Mean(),
		Iters:        iters,
	}, nil
}

// withNetem applies one-way latency emulation to every host's data and
// control plane.
func withNetem(oneWay time.Duration) deployOption {
	return func(c *deployConfig) {
		c.netemDelay = oneWay
	}
}

// wrapDelay builds the data-plane wrapper for a deployment.
func wrapDelay(oneWay time.Duration) func(net.Conn) net.Conn {
	return func(conn net.Conn) net.Conn { return netem.Delay(conn, oneWay) }
}
