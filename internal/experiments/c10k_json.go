package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchC10K is the committed connection-storm baseline (BENCH_c10k.json).
// The gate holds the scaling *invariants* rather than absolute speed:
// heap bytes per connection and the goroutine growth across the whole
// population are machine-independent properties of the data-plane design,
// and the wave p99 is compared with a wide latency tolerance because CI
// machines vary.
type BenchC10K struct {
	Note  string `json:"note,omitempty"`
	Conns int    `json:"conns"`
	Wave  int    `json:"wave"`
	// MemPerConnBytes is the GC-settled heap growth per connection.
	MemPerConnBytes float64 `json:"mem_per_conn_bytes"`
	// GoroutineGrowth is steady-state minus baseline goroutines with the
	// full population up — O(transports + worker pool), never O(conns).
	GoroutineGrowth int `json:"goroutine_growth"`
	// WaveP99Ms is the per-connection suspend-to-resumed p99 across the
	// migration wave.
	WaveP99Ms float64 `json:"wave_p99_ms"`
}

// MaxC10KGoroutineGrowth is the absolute ceiling on goroutine growth
// between zero connections and the full population. It is deliberately a
// constant, not a baseline ratio: any O(conns) goroutine regression blows
// through it at the smoke scale already.
const MaxC10KGoroutineGrowth = 64

// BenchC10KFrom converts a measured storm to the committed form.
func BenchC10KFrom(r *C10KResult) *BenchC10K {
	return &BenchC10K{
		Conns:           r.Config.Conns,
		Wave:            r.Config.Wave,
		MemPerConnBytes: round1(r.MemPerConnBytes),
		GoroutineGrowth: r.SteadyGoroutines - r.BaselineGoroutines,
		WaveP99Ms:       round3(r.WaveP99.Seconds() * 1000),
	}
}

// LoadBenchC10K reads a committed storm baseline file.
func LoadBenchC10K(path string) (*BenchC10K, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b BenchC10K
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &b, nil
}

// WriteBenchC10K writes the baseline in a stable, diff-friendly form.
func WriteBenchC10K(path string, b *BenchC10K) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CompareC10K checks a fresh storm against the committed baseline. Three
// conditions gate:
//
//   - heap per connection must not exceed the baseline's by more than
//     tolerance (fractional);
//   - goroutine growth across the population must stay under the absolute
//     MaxC10KGoroutineGrowth ceiling, regardless of the baseline;
//   - the wave p99 must not exceed the baseline's by more than twice the
//     tolerance (latency is the noisiest of the three on shared CI).
//
// It returns a human-readable report and an error listing any failures.
func CompareC10K(baseline *BenchC10K, fresh *C10KResult, tolerance float64) (string, error) {
	growth := fresh.SteadyGoroutines - fresh.BaselineGoroutines
	p99ms := fresh.WaveP99.Seconds() * 1000
	report := fmt.Sprintf("%d conns: %.0f B/conn (baseline %.0f), goroutine growth %d (ceiling %d), wave p99 %.1fms (baseline %.1fms)\n",
		fresh.Config.Conns, fresh.MemPerConnBytes, baseline.MemPerConnBytes,
		growth, MaxC10KGoroutineGrowth, p99ms, baseline.WaveP99Ms)
	var failures []string
	if baseline.MemPerConnBytes > 0 && fresh.MemPerConnBytes > baseline.MemPerConnBytes*(1+tolerance) {
		failures = append(failures,
			fmt.Sprintf("heap per connection %.0f B is more than %.0f%% above baseline %.0f B",
				fresh.MemPerConnBytes, tolerance*100, baseline.MemPerConnBytes))
	}
	if growth > MaxC10KGoroutineGrowth {
		failures = append(failures,
			fmt.Sprintf("goroutine growth %d across %d conns exceeds the O(1) ceiling %d — a per-connection goroutine is back",
				growth, fresh.Config.Conns, MaxC10KGoroutineGrowth))
	}
	if baseline.WaveP99Ms > 0 && p99ms > baseline.WaveP99Ms*(1+2*tolerance) {
		failures = append(failures,
			fmt.Sprintf("wave p99 %.1fms is more than %.0f%% above baseline %.1fms",
				p99ms, 2*tolerance*100, baseline.WaveP99Ms))
	}
	if len(failures) > 0 {
		msg := ""
		for _, f := range failures {
			msg += f + "\n"
		}
		return report, fmt.Errorf("connection storm regressions:\n%s", msg)
	}
	return report, nil
}
