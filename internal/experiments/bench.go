package experiments

import (
	"fmt"

	"naplet/internal/core"
)

// This file exports the small harness pieces the repository-level
// benchmarks (bench_test.go) need, so each table/figure benchmark can set
// up a live deployment without duplicating the wiring.

// BenchPair is an established connection between two simulated agents on
// two hosts, plus the handles needed to drive migrations.
type BenchPair struct {
	Client, Server *core.Socket
	d              *deployment
	// clientHost tracks the client agent's current host.
	clientHost string
	epoch      uint64
}

// NewBenchPair builds a two-host deployment (plus two spare hosts for
// migrations) with one established connection. Close releases everything.
func NewBenchPair(secure bool) (*BenchPair, error) {
	opts := []deployOption{}
	if !secure {
		opts = append(opts, withInsecure())
	}
	d, err := newDeployment([]string{"h1", "h2", "h3", "h4"}, opts...)
	if err != nil {
		return nil, err
	}
	client, server, err := d.pair("bench-client", "h1", "bench-server", "h2")
	if err != nil {
		d.close()
		return nil, err
	}
	return &BenchPair{Client: client, Server: server, d: d, clientHost: "h1", epoch: 1}, nil
}

// Close tears the deployment down.
func (p *BenchPair) Close() { p.d.close() }

// OpenClose opens and closes one extra connection between the resident
// agents — the Table 1 unit of work.
func (p *BenchPair) OpenClose() error {
	h := p.d.hosts[p.clientHost]
	conn, err := h.ctrl.OpenAs("bench-client", h.cred("bench-client"), "bench-server")
	if err != nil {
		return err
	}
	return conn.Close()
}

// SuspendResume suspends and resumes the pair's connection once — the
// Section 4.2 unit of work.
func (p *BenchPair) SuspendResume() error {
	if err := p.Client.Suspend(); err != nil {
		return err
	}
	return p.Client.Resume()
}

// MigrateClient moves the client agent to the other spare host and back
// alternately, carrying the established connection — one full connection
// migration per call.
func (p *BenchPair) MigrateClient() error {
	next := "h3"
	if p.clientHost == "h3" {
		next = "h4"
	}
	p.epoch++
	if err := p.d.migrate("bench-client", p.clientHost, next, p.epoch); err != nil {
		return err
	}
	p.clientHost = next
	sock, err := p.d.hosts[next].ctrl.AgentSocket("bench-client", p.Client.ID())
	if err != nil {
		return fmt.Errorf("re-attach after migration: %w", err)
	}
	p.Client = sock
	// Wait until the connection is usable again.
	if err := sock.WriteMsg([]byte("mig-probe")); err != nil {
		return err
	}
	if _, err := p.Server.ReadMsg(); err != nil {
		return err
	}
	return nil
}
