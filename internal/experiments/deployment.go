// Package experiments contains one driver per table and figure of the
// paper's evaluation (Sections 4 and 5). Each driver builds a live
// deployment of NapletSocket controllers over loopback — the same code
// paths as a distributed deployment — runs the paper's workload, and
// returns a result that renders as the corresponding table or data series.
//
// Absolute numbers differ from the paper's 2004 Sun Blade / Fast Ethernet
// testbed (and from the JVM); the experiments reproduce the *shape* of each
// result: orderings, ratios, and crossover locations. EXPERIMENTS.md holds
// the paper-vs-measured comparison.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"naplet/internal/core"
	"naplet/internal/metrics"
	"naplet/internal/naming"
	"naplet/internal/security"
)

// host is one simulated agent server: a NapletSocket controller plus the
// identity machinery, without the behaviour runtime (experiments drive
// migration through the controller hooks directly, which is exactly what
// the docking system does).
type host struct {
	name  string
	ctrl  *core.Controller
	guard *security.Guard
}

func (h *host) cred(agentID string) [security.CredentialSize]byte {
	return h.guard.IssueCredential(agentID)
}

func (h *host) loc() naming.Location {
	return naming.Location{
		Host:        h.name,
		ControlAddr: h.ctrl.ControlAddr(),
		DataAddr:    h.ctrl.DataAddr(),
	}
}

// deployment is a set of hosts sharing one location service.
type deployment struct {
	svc   *naming.Service
	hosts map[string]*host
	// migrationDelay models the agent transfer cost T_a-migrate between
	// PreDepart and PostArrive.
	migrationDelay time.Duration
}

type deployOption func(*deployConfig)

type deployConfig struct {
	insecure        bool
	noEncryption    bool
	noFailureResume bool
	breakdown       *metrics.Breakdown
	breakdowns      map[string]*metrics.Breakdown
	migrationDelay  time.Duration
	// netemDelay applies one-way latency emulation to the data sockets and
	// the control channel of every host.
	netemDelay time.Duration
	// coreHook, when non-nil, adjusts each host's controller config after
	// the deployment defaults — the escape hatch experiments use for
	// per-host fault plans, metrics registries, and detector tuning.
	coreHook func(hostName string, cfg *core.Config)
}

func withInsecure() deployOption { return func(c *deployConfig) { c.insecure = true } }

// withoutEncryption keeps the secure handshake but negotiates cleartext
// data records, matching the transport the committed cleartext baselines
// were measured over.
func withoutEncryption() deployOption { return func(c *deployConfig) { c.noEncryption = true } }

// withNoFailureResume disables the fault-tolerance extension.
func withNoFailureResume() deployOption {
	return func(c *deployConfig) { c.noFailureResume = true }
}

func withBreakdown(b *metrics.Breakdown) deployOption {
	return func(c *deployConfig) { c.breakdown = b }
}

// withBreakdowns installs a separate phase breakdown per host, so client-
// and server-side contributions to an open can be told apart.
func withBreakdowns(m map[string]*metrics.Breakdown) deployOption {
	return func(c *deployConfig) { c.breakdowns = m }
}

func withMigrationDelay(d time.Duration) deployOption {
	return func(c *deployConfig) { c.migrationDelay = d }
}

// withCoreHook lets an experiment mutate each host's controller config
// after the deployment defaults are applied and before the controller
// starts.
func withCoreHook(hook func(hostName string, cfg *core.Config)) deployOption {
	return func(c *deployConfig) { c.coreHook = hook }
}

func newDeployment(names []string, opts ...deployOption) (*deployment, error) {
	var cfg deployConfig
	for _, o := range opts {
		o(&cfg)
	}
	d := &deployment{
		svc:            naming.NewService(),
		hosts:          make(map[string]*host),
		migrationDelay: cfg.migrationDelay,
	}
	for _, name := range names {
		guard, err := security.NewGuard(security.NewStore(security.AllowAgentAll()...))
		if err != nil {
			d.close()
			return nil, err
		}
		bd := cfg.breakdown
		if cfg.breakdowns != nil {
			bd = cfg.breakdowns[name]
		}
		ccfg := core.Config{
			HostName:                   name,
			Guard:                      guard,
			Locator:                    d.svc,
			Insecure:                   cfg.insecure,
			DisableTransportEncryption: cfg.noEncryption,
			DisableFailureResume:       cfg.noFailureResume,
			OpenBreakdown:              bd,
			OpTimeout:                  5 * time.Second,
			ParkTimeout:                30 * time.Second,
			DrainTimeout:               5 * time.Second,
			Logf:                       func(string, ...any) {},
		}
		if cfg.netemDelay > 0 {
			ccfg.WrapData = wrapDelay(cfg.netemDelay)
			ccfg.ControlSendDelay = cfg.netemDelay
		}
		if cfg.coreHook != nil {
			cfg.coreHook(name, &ccfg)
		}
		ctrl, err := core.NewController(ccfg)
		if err != nil {
			d.close()
			return nil, err
		}
		d.hosts[name] = &host{name: name, ctrl: ctrl, guard: guard}
	}
	return d, nil
}

func (d *deployment) close() {
	for _, h := range d.hosts {
		h.ctrl.Close()
	}
}

func (d *deployment) place(agentID, hostName string) error {
	return d.svc.Register(agentID, d.hosts[hostName].loc())
}

// pair establishes one connection between two (simulated) agents.
func (d *deployment) pair(clientAgent, hostC, serverAgent, hostS string) (client, server *core.Socket, err error) {
	hc, hs := d.hosts[hostC], d.hosts[hostS]
	if err := d.place(clientAgent, hostC); err != nil {
		return nil, nil, err
	}
	if err := d.place(serverAgent, hostS); err != nil {
		return nil, nil, err
	}
	ss, err := hs.ctrl.ListenAs(serverAgent, hs.cred(serverAgent))
	if err != nil {
		return nil, nil, err
	}
	type res struct {
		s   *core.Socket
		err error
	}
	acceptCh := make(chan res, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		s, err := ss.Accept(ctx)
		acceptCh <- res{s, err}
	}()
	client, err = hc.ctrl.OpenAs(clientAgent, hc.cred(clientAgent), serverAgent)
	if err != nil {
		return nil, nil, err
	}
	r := <-acceptCh
	if r.err != nil {
		client.Close()
		return nil, nil, r.err
	}
	return client, r.s, nil
}

// migrate moves an agent between hosts, exactly as the docking system does:
// PreDepart (suspend + serialize), transfer (modelled by migrationDelay),
// location update, PostArrive (restore + resume).
func (d *deployment) migrate(agentID, from, to string, epoch uint64) error {
	blob, err := d.hosts[from].ctrl.PreDepart(agentID)
	if err != nil {
		return fmt.Errorf("predepart %s: %w", agentID, err)
	}
	if d.migrationDelay > 0 {
		time.Sleep(d.migrationDelay)
	}
	if err := d.svc.Update(agentID, d.hosts[to].loc(), epoch); err != nil {
		return fmt.Errorf("relocating %s: %w", agentID, err)
	}
	if err := d.hosts[to].ctrl.PostArrive(agentID, blob); err != nil {
		return fmt.Errorf("postarrive %s: %w", agentID, err)
	}
	return nil
}

// ---- rendering helpers ----

// table renders rows of columns with a header, tab-separated — the format
// every experiment prints.
func table(header []string, rows [][]string) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(header, "\t"))
	sb.WriteByte('\n')
	for _, r := range rows {
		sb.WriteString(strings.Join(r, "\t"))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// sortedPhases returns breakdown phases in presentation order with any
// extras appended alphabetically.
func sortedPhases(snap map[metrics.Phase]time.Duration) []metrics.Phase {
	known := metrics.OpenPhases()
	seen := make(map[metrics.Phase]bool, len(known))
	out := make([]metrics.Phase, 0, len(snap))
	for _, p := range known {
		if _, ok := snap[p]; ok {
			out = append(out, p)
			seen[p] = true
		}
	}
	var extra []metrics.Phase
	for p := range snap {
		if !seen[p] {
			extra = append(extra, p)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	return append(out, extra...)
}
