package experiments

import (
	"fmt"
	"net"

	"naplet/internal/ttcp"
)

// Fig9Point is one message size's throughput for both socket types.
type Fig9Point struct {
	MsgSize    int
	TCPMbps    float64
	NapletMbps float64
}

// Fig9Result reproduces Figure 9: TTCP throughput of NapletSocket versus a
// plain TCP socket across message sizes. The paper's observation: the
// NapletSocket penalty is small (a few percent) and shrinks as messages
// grow.
type Fig9Result struct {
	Points []Fig9Point
	// TotalBytes transferred per measurement.
	TotalBytes int64
}

// Table renders the Figure 9 series.
func (r *Fig9Result) Table() string {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		ratio := 0.0
		if p.TCPMbps > 0 {
			ratio = 100 * p.NapletMbps / p.TCPMbps
		}
		rows[i] = []string{
			fmt.Sprintf("%d", p.MsgSize),
			f1(p.TCPMbps), f1(p.NapletMbps), f1(ratio) + "%",
		}
	}
	return table([]string{"msg size (B)", "TCP (Mb/s)", "NapletSocket (Mb/s)", "ratio"}, rows)
}

// DefaultFig9Sizes are the paper's x-axis decades: 1 B to 100 KB.
func DefaultFig9Sizes() []int { return []int{1, 10, 100, 1000, 10000, 100000} }

// fig9Passes is how many times each throughput point is measured; the
// fastest pass is reported. A single short transfer is dominated by
// whatever the scheduler and the garbage collector happened to do in its
// few tens of milliseconds — peak-of-N is the conventional TTCP report and
// is what makes the committed baseline (and the CI gate built on it)
// reproducible on a busy machine.
const fig9Passes = 3

// bestOf runs measure n times and keeps the fastest result.
func bestOf(n int, measure func() (float64, error)) (float64, error) {
	best := 0.0
	for i := 0; i < n; i++ {
		v, err := measure()
		if err != nil {
			return 0, err
		}
		if v > best {
			best = v
		}
	}
	return best, nil
}

// RunFig9 measures TTCP throughput for each message size over both socket
// types. totalBytes bounds each transfer; small messages automatically use
// a proportionally smaller volume so the tiny-message points stay fast.
//
// The NapletSocket side runs with the secure handshake but cleartext data
// records — the transport the committed BENCH_fig9.json Before/After series
// were measured over. RunFig9Encrypted measures the AEAD record layer.
func RunFig9(sizes []int, totalBytes int64) (*Fig9Result, error) {
	return runFig9(sizes, totalBytes, withoutEncryption())
}

// RunFig9Encrypted is the Figure 9 workload with the negotiated AEAD record
// layer on: every data frame is sealed with AES-256-GCM on the way out and
// authenticated on the way in. Its series quantifies the encryption cost
// against RunFig9's cleartext numbers.
func RunFig9Encrypted(sizes []int, totalBytes int64) (*Fig9Result, error) {
	return runFig9(sizes, totalBytes)
}

func runFig9(sizes []int, totalBytes int64, opts ...deployOption) (*Fig9Result, error) {
	if len(sizes) == 0 {
		sizes = DefaultFig9Sizes()
	}
	if totalBytes <= 0 {
		totalBytes = 16 << 20
	}
	res := &Fig9Result{TotalBytes: totalBytes}
	for _, size := range sizes {
		vol := totalBytes
		// Keep at most ~64k writes per point so 1-byte messages finish.
		if maxVol := int64(size) * 65536; vol > maxVol {
			vol = maxVol
		}
		tcpMbps, err := bestOf(fig9Passes, func() (float64, error) { return tcpThroughput(size, vol) })
		if err != nil {
			return nil, fmt.Errorf("fig9: tcp size %d: %w", size, err)
		}
		napMbps, err := bestOf(fig9Passes, func() (float64, error) { return napletThroughput(size, vol, opts...) })
		if err != nil {
			return nil, fmt.Errorf("fig9: naplet size %d: %w", size, err)
		}
		res.Points = append(res.Points, Fig9Point{MsgSize: size, TCPMbps: tcpMbps, NapletMbps: napMbps})
	}
	return res, nil
}

// tcpThroughput runs the TTCP workload over a plain loopback TCP
// connection.
func tcpThroughput(msgSize int, total int64) (float64, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	acceptCh := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acceptCh <- c
		}
	}()
	sender, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return 0, err
	}
	defer sender.Close()
	sink := <-acceptCh
	defer sink.Close()
	resCh := make(chan ttcp.Result, 1)
	errCh := make(chan error, 2)
	go func() {
		r, err := ttcp.Receive(sink, 64<<10, total)
		resCh <- r
		errCh <- err
	}()
	if _, err := ttcp.Send(sender, msgSize, total); err != nil {
		return 0, err
	}
	r := <-resCh
	if err := <-errCh; err != nil {
		return 0, err
	}
	return r.Mbps(), nil
}

// napletThroughput runs the TTCP workload over an established NapletSocket
// connection between two stationary agents.
func napletThroughput(msgSize int, total int64, opts ...deployOption) (float64, error) {
	d, err := newDeployment([]string{"h1", "h2"}, opts...)
	if err != nil {
		return 0, err
	}
	defer d.close()
	client, server, err := d.pair("ttcp-tx", "h1", "ttcp-rx", "h2")
	if err != nil {
		return 0, err
	}
	defer client.Close()
	resCh := make(chan ttcp.Result, 1)
	errCh := make(chan error, 2)
	go func() {
		r, err := ttcp.Receive(server, 64<<10, total)
		resCh <- r
		errCh <- err
	}()
	if _, err := ttcp.Send(client, msgSize, total); err != nil {
		return 0, err
	}
	r := <-resCh
	if err := <-errCh; err != nil {
		return 0, err
	}
	return r.Mbps(), nil
}
