package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchPoint is one committed Figure 9 measurement: throughput of both
// socket types at one message size, plus their ratio. The ratio — not the
// absolute Mbps — is what regression gates compare, because it factors out
// the machine the measurement ran on.
type BenchPoint struct {
	MsgSize    int     `json:"msg_size"`
	TCPMbps    float64 `json:"tcp_mbps"`
	NapletMbps float64 `json:"naplet_mbps"`
	Ratio      float64 `json:"ratio"`
}

// BenchFig9 is the committed benchmark baseline (BENCH_fig9.json): the
// Figure 9 series measured before and after the data-plane overhaul that
// established it, plus the same workload with the AEAD record layer on.
type BenchFig9 struct {
	Note       string       `json:"note,omitempty"`
	TotalBytes int64        `json:"total_bytes"`
	Before     []BenchPoint `json:"before,omitempty"`
	After      []BenchPoint `json:"after"`
	// Encrypted is the RunFig9Encrypted series: every data frame sealed
	// with AES-256-GCM. Gated by CompareFig9Encrypted.
	Encrypted []BenchPoint `json:"encrypted,omitempty"`
}

// BenchPoints converts a measured Fig 9 series to committed bench points.
func BenchPoints(r *Fig9Result) []BenchPoint {
	pts := make([]BenchPoint, 0, len(r.Points))
	for _, p := range r.Points {
		bp := BenchPoint{MsgSize: p.MsgSize, TCPMbps: round1(p.TCPMbps), NapletMbps: round1(p.NapletMbps)}
		if p.TCPMbps > 0 {
			bp.Ratio = round3(p.NapletMbps / p.TCPMbps)
		}
		pts = append(pts, bp)
	}
	return pts
}

func round1(v float64) float64 { return float64(int64(v*10+0.5)) / 10 }
func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }

// LoadBenchFig9 reads a committed baseline file.
func LoadBenchFig9(path string) (*BenchFig9, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b BenchFig9
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &b, nil
}

// WriteBenchFig9 writes the baseline file in a stable, diff-friendly form.
func WriteBenchFig9(path string, b *BenchFig9) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CompareFig9 checks a fresh measurement against the committed baseline's
// After series. A point regresses when its NapletSocket/TCP ratio falls
// more than tolerance (fractional, e.g. 0.3) below the committed ratio;
// comparing ratios rather than Mbps keeps the gate independent of the
// hardware it runs on. Sizes absent from the baseline are ignored. It
// returns a human-readable report and an error listing any regressions.
func CompareFig9(baseline *BenchFig9, fresh *Fig9Result, tolerance float64) (string, error) {
	base := make(map[int]BenchPoint, len(baseline.After))
	for _, p := range baseline.After {
		base[p.MsgSize] = p
	}
	report := ""
	var regressions []string
	for _, p := range fresh.Points {
		bp, ok := base[p.MsgSize]
		if !ok || bp.Ratio <= 0 || p.TCPMbps <= 0 {
			continue
		}
		ratio := p.NapletMbps / p.TCPMbps
		report += fmt.Sprintf("size %6dB: ratio %.3f vs baseline %.3f\n", p.MsgSize, ratio, bp.Ratio)
		if ratio < bp.Ratio*(1-tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("size %dB: naplet/tcp ratio %.3f is more than %.0f%% below baseline %.3f",
					p.MsgSize, ratio, tolerance*100, bp.Ratio))
		}
	}
	if len(regressions) > 0 {
		msg := ""
		for _, r := range regressions {
			msg += r + "\n"
		}
		return report, fmt.Errorf("fig9 throughput regressions:\n%s", msg)
	}
	return report, nil
}

// Encryption-cost floor enforced by CompareFig9Encrypted: at message sizes
// of 1 KB and up (where sealing cost amortises over real payloads), the
// encrypted NapletSocket/TCP ratio must stay at least this fraction of the
// committed cleartext After ratio at the same size. Tiny-message points are
// excluded: they are dominated by per-frame fixed costs and scheduler noise.
//
// Calibration: on the single-core loopback host that measures the gate,
// both endpoints AND both AES-GCM directions (seal + open, ~2.2 GB/s for
// the pair with container batching) share one core with a cleartext
// pipeline that alone runs ~1.7 GB/s — so the encrypted relative ratio
// measures ~0.5x healthy, and 0.25 leaves the same 50% degradation margin
// the ratio gate uses. A real deployment pays half the crypto per host
// (one direction each) without sharing the core with the peer, so this
// floor is deliberately about catching regressions (a resurrected
// per-frame seal, crypto back under the write lock), not absolute parity.
const (
	EncryptedFloorFrac    = 0.25
	EncryptedFloorMinSize = 1000
)

// CompareFig9Encrypted checks a fresh RunFig9Encrypted measurement against
// the baseline twice over: (a) like CompareFig9, each ratio must not fall
// more than tolerance below the committed Encrypted ratio at the same size,
// and (b) the absolute encryption-cost floor — at sizes >= EncryptedFloorMinSize
// the encrypted ratio must be at least EncryptedFloorFrac of the committed
// cleartext After ratio, so the record layer can never quietly eat more
// than ~20% of the data plane's relative throughput.
func CompareFig9Encrypted(baseline *BenchFig9, fresh *Fig9Result, tolerance float64) (string, error) {
	enc := make(map[int]BenchPoint, len(baseline.Encrypted))
	for _, p := range baseline.Encrypted {
		enc[p.MsgSize] = p
	}
	after := make(map[int]BenchPoint, len(baseline.After))
	for _, p := range baseline.After {
		after[p.MsgSize] = p
	}
	report := ""
	var regressions []string
	for _, p := range fresh.Points {
		if p.TCPMbps <= 0 {
			continue
		}
		ratio := p.NapletMbps / p.TCPMbps
		if bp, ok := enc[p.MsgSize]; ok && bp.Ratio > 0 {
			report += fmt.Sprintf("size %6dB: encrypted ratio %.3f vs baseline %.3f\n", p.MsgSize, ratio, bp.Ratio)
			if ratio < bp.Ratio*(1-tolerance) {
				regressions = append(regressions,
					fmt.Sprintf("size %dB: encrypted naplet/tcp ratio %.3f is more than %.0f%% below baseline %.3f",
						p.MsgSize, ratio, tolerance*100, bp.Ratio))
			}
		}
		if ap, ok := after[p.MsgSize]; ok && ap.Ratio > 0 && p.MsgSize >= EncryptedFloorMinSize {
			floor := ap.Ratio * EncryptedFloorFrac
			report += fmt.Sprintf("size %6dB: encrypted ratio %.3f vs cleartext floor %.3f\n", p.MsgSize, ratio, floor)
			if ratio < floor {
				regressions = append(regressions,
					fmt.Sprintf("size %dB: encrypted ratio %.3f below %.0f%% of cleartext baseline %.3f",
						p.MsgSize, ratio, EncryptedFloorFrac*100, ap.Ratio))
			}
		}
	}
	if len(regressions) > 0 {
		msg := ""
		for _, r := range regressions {
			msg += r + "\n"
		}
		return report, fmt.Errorf("fig9 encrypted throughput regressions:\n%s", msg)
	}
	return report, nil
}
