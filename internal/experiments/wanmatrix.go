package experiments

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"naplet/internal/core"
	"naplet/internal/metrics"
	"naplet/internal/netem"
	"naplet/internal/obs"
)

// The WAN scenario matrix (ROADMAP item 5): every named netem profile is
// run through the same chaos scenario — an echo session whose shared
// transport is repeatedly killed mid-conversation, then one live
// migration, then a throughput leg — with the phi-accrual detector armed
// and keepalive probing tightened well below the emulated RTT. What the
// matrix proves is the negative space: across every profile the resume
// machinery recovers each break, and neither the keepalive timer nor the
// failure detector ever fires on a path that is merely slow. The
// committed BENCH_wan.json baseline is gated by `benchgate -wan`.

// WANMatrixConfig sizes one matrix run.
type WANMatrixConfig struct {
	// Profiles defaults to the full netem.WANProfiles() matrix.
	Profiles []netem.Profile
	// Breaks is how many times the live transport is severed per profile
	// (default 4). Each break must resume inside the window.
	Breaks int
	// ThroughputBytes is the volume of the echo throughput leg (default
	// 256 KiB — enough to exceed the credit window, small enough that the
	// lossy-cell bandwidth cap keeps the leg under a second).
	ThroughputBytes int64
	// Seed varies the deterministic jitter/loss schedules (default 1).
	Seed int64
}

func (c *WANMatrixConfig) setDefaults() {
	if len(c.Profiles) == 0 {
		c.Profiles = netem.WANProfiles()
	}
	if c.Breaks <= 0 {
		c.Breaks = 4
	}
	if c.ThroughputBytes <= 0 {
		c.ThroughputBytes = 256 << 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// WANCell is one profile's measurements.
type WANCell struct {
	Profile string
	// RTTMs is the profile's base round trip (what the scenario emulated,
	// not a measurement).
	RTTMs float64
	// Breaks is how many times the transport was severed; Broken/Resumed
	// count the flight-recorder events across every host. An acceptor that
	// learns of an outage only by the dialer's resume arriving records
	// resumed without broken, so Resumed can exceed Broken.
	Breaks  int
	Broken  int
	Resumed int
	// ResumeRate is the fraction of broken events followed by a resumed
	// event on the same transport: 1.0 means every break recovered.
	ResumeRate float64
	// Resume latency percentiles, measured per transport from the flight
	// recorder (broken event to the matching resumed event).
	ResumeP50Ms float64
	ResumeP99Ms float64
	// TransportLost counts ErrTransportLost tombstones — any value but 0
	// is a false positive, since every break stayed inside the window.
	TransportLost int
	// DetectorConfirms counts phi-accrual confirmed-down verdicts; the
	// peers never died, so any value but 0 is a false positive.
	DetectorConfirms int
	// KeepaliveTimeouts counts half-open declarations; the path was slow,
	// never dead, so any value but 0 is a false positive.
	KeepaliveTimeouts int
	// ThroughputMbps is the echo throughput leg: payload megabits per
	// second reflected back through both emulated directions.
	ThroughputMbps float64
}

// WANMatrixResult is the full matrix.
type WANMatrixResult struct {
	Cells []WANCell
}

// Table renders the matrix.
func (r *WANMatrixResult) Table() string {
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Profile, f1(c.RTTMs),
			fmt.Sprintf("%d/%d", c.Resumed, c.Broken),
			f1(c.ResumeP50Ms), f1(c.ResumeP99Ms),
			fmt.Sprintf("%d", c.TransportLost),
			fmt.Sprintf("%d", c.DetectorConfirms),
			fmt.Sprintf("%d", c.KeepaliveTimeouts),
			f1(c.ThroughputMbps),
		})
	}
	return table(
		[]string{"profile", "rtt(ms)", "resumed", "res-p50(ms)", "res-p99(ms)", "false-lost", "false-confirm", "ka-timeout", "echo(Mb/s)"},
		rows,
	)
}

// RunWANMatrix runs the chaos scenario once per profile.
func RunWANMatrix(cfg WANMatrixConfig) (*WANMatrixResult, error) {
	cfg.setDefaults()
	res := &WANMatrixResult{}
	for i, p := range cfg.Profiles {
		cell, err := runWANProfile(p, cfg.Breaks, cfg.ThroughputBytes, cfg.Seed+int64(i)*7)
		if err != nil {
			return nil, fmt.Errorf("profile %s: %w", p.Name, err)
		}
		res.Cells = append(res.Cells, *cell)
	}
	return res, nil
}

// wanTap records the kernel connections WrapData installs so the scenario
// can sever the latest one — the moral equivalent of a NAT rebind or a
// mid-path reset.
type wanTap struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (t *wanTap) track(c net.Conn) net.Conn {
	t.mu.Lock()
	t.conns = append(t.conns, c)
	t.mu.Unlock()
	return c
}

func (t *wanTap) killLatest() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.conns) == 0 {
		return false
	}
	t.conns[len(t.conns)-1].Close()
	return true
}

// roundtrip pushes one message through the echo session and waits for the
// reflection, bounded by timeout — the probe that forces the transport to
// notice a severed connection and proves the session recovered.
func roundtrip(client *core.Socket, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() {
		msg := []byte("wan-matrix-probe")
		if _, err := client.Write(msg); err != nil {
			done <- err
			return
		}
		buf := make([]byte, len(msg))
		_, err := io.ReadFull(client, buf)
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		return errors.New("echo round trip timed out")
	}
}

func runWANProfile(p netem.Profile, breaks int, volume int64, seed int64) (*WANCell, error) {
	names := []string{"h1", "h2", "h3"}
	taps := make(map[string]*wanTap, len(names))
	mets := make(map[string]*obs.Registry, len(names))
	hostIdx := int64(0)
	d, err := newDeployment(names, withCoreHook(func(hostName string, cfg *core.Config) {
		hostIdx++
		f := netem.NewFaults(seed + hostIdx)
		p.Apply(f)
		tap := &wanTap{}
		taps[hostName] = tap
		mets[hostName] = obs.NewRegistry()
		cfg.Metrics = mets[hostName]
		// Every write this host makes crosses its uplink: base delay,
		// jitter, and the profile's (possibly asymmetric) bandwidth cap.
		cfg.WrapData = func(c net.Conn) net.Conn { return f.Wrap(tap.track(c), netem.Up) }
		// The control plane crosses the same path: delayed sends plus the
		// profile's datagram loss (RUDP retransmits around it).
		cfg.ControlSendDelay = p.OneWayUp
		cfg.ControlDropFn = f.DropFn()
		// Arm both detectors far below the emulated RTT: without the
		// RTT-adaptive floors every cell past metro would be a wall of
		// false positives.
		cfg.HeartbeatInterval = 200 * time.Millisecond
		cfg.TransportKeepaliveInterval = 250 * time.Millisecond
		// Control exchanges pay several emulated round trips plus loss
		// retransmits; the defaults assume a LAN.
		cfg.OpTimeout = 20 * time.Second
	}))
	if err != nil {
		return nil, err
	}
	defer d.close()

	client, server, err := d.pair("mover", "h1", "anchor", "h2")
	if err != nil {
		return nil, err
	}
	// The anchor reflects everything it reads for the life of the cell.
	go func() {
		buf := make([]byte, 32<<10)
		for {
			n, err := server.Read(buf)
			if n > 0 {
				if _, werr := server.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()

	// Generous per-step budget: intercontinental resumes pay backoff plus
	// several 250ms round trips, lossy-cell adds retransmits.
	step := 30 * time.Second
	if err := roundtrip(client, step); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}

	for i := 0; i < breaks; i++ {
		if !taps["h1"].killLatest() {
			return nil, fmt.Errorf("break %d: no live connection to sever", i)
		}
		if err := roundtrip(client, step); err != nil {
			return nil, fmt.Errorf("recovery after break %d: %w", i, err)
		}
	}

	// One live migration mid-session, then the same liveness probe from
	// the new host.
	if err := d.migrate("mover", "h1", "h3", 2); err != nil {
		return nil, err
	}
	var moved *core.Socket
	deadline := time.Now().Add(step)
	for {
		moved, err = d.hosts["h3"].ctrl.AgentSocket("mover", client.ID())
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("re-attaching after migration: %w", err)
		}
		time.Sleep(time.Millisecond)
	}
	if err := roundtrip(moved, step); err != nil {
		return nil, fmt.Errorf("post-migration probe: %w", err)
	}

	// Throughput leg: stream volume bytes and read the reflection back,
	// crossing both hosts' emulated uplinks.
	mbps, err := echoThroughput(moved, volume, 2*step)
	if err != nil {
		return nil, fmt.Errorf("throughput leg: %w", err)
	}

	cell := &WANCell{
		Profile:        p.Name,
		RTTMs:          float64(p.RTT()) / float64(time.Millisecond),
		Breaks:         breaks,
		ThroughputMbps: mbps,
	}
	lat := metrics.NewSeries()
	paired := 0
	for _, h := range names {
		for _, in := range d.hosts[h].ctrl.TransportInfos() {
			cell.Broken += int(in.EventCounts["broken"])
			cell.Resumed += int(in.EventCounts["resumed"])
			cell.TransportLost += int(in.EventCounts["lost"])
			var brokenAt time.Time
			for _, ev := range in.Events {
				switch ev.Kind {
				case "broken":
					brokenAt = ev.At
				case "resumed":
					if !brokenAt.IsZero() {
						lat.AddDuration(ev.At.Sub(brokenAt))
						paired++
						brokenAt = time.Time{}
					}
				}
			}
		}
		snap := mets[h].Snapshot()
		cell.DetectorConfirms += int(snap.Counters["fault.confirms"])
		cell.KeepaliveTimeouts += int(snap.Counters["transport.keepalive_timeouts"])
	}
	if cell.Broken > 0 {
		cell.ResumeRate = float64(paired) / float64(cell.Broken)
	}
	cell.ResumeP50Ms = lat.Percentile(50)
	cell.ResumeP99Ms = lat.Percentile(99)
	return cell, nil
}

// echoThroughput streams volume bytes through the echo session and clocks
// the full reflection.
func echoThroughput(client *core.Socket, volume int64, timeout time.Duration) (float64, error) {
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		chunk := make([]byte, 8<<10)
		var sent int64
		for sent < volume {
			n := int64(len(chunk))
			if volume-sent < n {
				n = volume - sent
			}
			if _, err := client.Write(chunk[:n]); err != nil {
				done <- err
				return
			}
			sent += n
		}
		done <- nil
	}()
	var got int64
	buf := make([]byte, 32<<10)
	deadline := time.Now().Add(timeout)
	for got < volume {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("echo stalled after %d/%d bytes", got, volume)
		}
		n, err := client.Read(buf)
		got += int64(n)
		if err != nil {
			return 0, fmt.Errorf("reading echo after %d bytes: %w", got, err)
		}
	}
	if err := <-done; err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, nil
	}
	return float64(volume) * 8 / elapsed / 1e6, nil
}
