package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchNaming is the committed naming-benchmark baseline
// (BENCH_naming.json): lookup throughput against the sharded cluster at
// the baseline population under the migration storm, with and without the
// migration-aware cache. The gate compares the speedup ratio rather than
// absolute lookups/sec — the ratio factors out the machine — and holds
// the hit rate to an absolute floor, because a cache the storm defeats is
// a design regression no hardware can excuse.
type BenchNaming struct {
	Note             string  `json:"note,omitempty"`
	Agents           int     `json:"agents"`
	MigrationsPerSec float64 `json:"migrations_per_sec"`
	CachedPerSec     float64 `json:"cached_lookups_per_sec"`
	DirectPerSec     float64 `json:"direct_lookups_per_sec"`
	Speedup          float64 `json:"speedup"`
	HitRate          float64 `json:"hit_rate"`
}

// MinNamingHitRate is the absolute hit-rate floor the gate enforces: the
// piggybacked Advance notifications must keep at least this fraction of
// storm-era lookups off the registry.
const MinNamingHitRate = 0.9

// BenchNamingFrom converts a measured run to the committed form.
func BenchNamingFrom(r *NamingBenchResult) *BenchNaming {
	return &BenchNaming{
		Agents:           r.Config.Agents,
		MigrationsPerSec: round1(r.StormAchieved),
		CachedPerSec:     round1(r.CachedPerSec),
		DirectPerSec:     round1(r.DirectPerSec),
		Speedup:          round3(r.Speedup()),
		HitRate:          round3(r.HitRate),
	}
}

// LoadBenchNaming reads a committed naming baseline file.
func LoadBenchNaming(path string) (*BenchNaming, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b BenchNaming
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &b, nil
}

// WriteBenchNaming writes the baseline in a stable, diff-friendly form.
func WriteBenchNaming(path string, b *BenchNaming) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CompareNaming checks a fresh run against the committed baseline. Two
// conditions gate:
//
//   - the cached/direct speedup must not fall more than tolerance
//     (fractional) below the baseline's;
//   - the storm-era hit rate must stay at or above MinNamingHitRate,
//     regardless of what the baseline recorded.
//
// It returns a human-readable report and an error listing any failures.
func CompareNaming(baseline *BenchNaming, fresh *NamingBenchResult, tolerance float64) (string, error) {
	report := fmt.Sprintf("cached %.0f/s direct %.0f/s speedup %.2fx (baseline %.2fx), hit rate %.1f%% (floor %.0f%%)\n",
		fresh.CachedPerSec, fresh.DirectPerSec, fresh.Speedup(), baseline.Speedup,
		fresh.HitRate*100, MinNamingHitRate*100)
	var failures []string
	if baseline.Speedup > 0 && fresh.Speedup() < baseline.Speedup*(1-tolerance) {
		failures = append(failures,
			fmt.Sprintf("cached/direct speedup %.2fx is more than %.0f%% below baseline %.2fx",
				fresh.Speedup(), tolerance*100, baseline.Speedup))
	}
	if fresh.HitRate < MinNamingHitRate {
		failures = append(failures,
			fmt.Sprintf("hit rate %.3f under the migration storm is below the %.2f floor",
				fresh.HitRate, MinNamingHitRate))
	}
	if len(failures) > 0 {
		msg := ""
		for _, f := range failures {
			msg += f + "\n"
		}
		return report, fmt.Errorf("naming benchmark regressions:\n%s", msg)
	}
	return report, nil
}
