package fault

import (
	"context"
	"testing"
	"time"

	"naplet/internal/obs"
)

// slowProbe answers every probe correctly, but only after a WAN round trip:
// the peer is perfectly healthy, just far away.
func slowProbe(rtt time.Duration) func(context.Context, string) error {
	return func(ctx context.Context, peer string) error {
		select {
		case <-time.After(rtt):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// TestSlowPathConfirmedDeadWithoutHint pins the failure mode the RTT hint
// exists for: with the probe timeout defaulted from a short interval, a
// healthy peer behind a 60ms round trip fails every probe and is confirmed
// dead.
func TestSlowPathConfirmedDeadWithoutHint(t *testing.T) {
	cfg := Config{
		Interval: 10 * time.Millisecond,
		Probe:    slowProbe(60 * time.Millisecond),
	}
	ch := collectEvents(&cfg)
	d := NewDetector(cfg)
	defer d.Close()
	d.Watch("far-peer")
	waitEvent(t, ch, EventConfirm, 5*time.Second)
}

// TestRTTHintPreventsFalsePositive is the regression test for the fix: the
// same slow-but-healthy peer, with the detector told the current path RTT,
// never becomes suspect and never confirms — each probe's timeout is
// floored at 4x the hint, so its (correct, slow) answer is awaited.
func TestRTTHintPreventsFalsePositive(t *testing.T) {
	const rtt = 60 * time.Millisecond
	met := obs.NewRegistry()
	cfg := Config{
		Interval: 10 * time.Millisecond,
		Probe:    slowProbe(rtt),
		RTTHint:  func() time.Duration { return rtt },
		Metrics:  met,
	}
	ch := collectEvents(&cfg)
	d := NewDetector(cfg)
	defer d.Close()
	d.Watch("far-peer")

	// Many intervals' worth of wall time; every probe takes a full RTT but
	// succeeds within the hint-floored timeout.
	time.Sleep(1 * time.Second)

	if st := d.State("far-peer"); st != Alive {
		t.Fatalf("State = %v, want Alive", st)
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected detector event on a healthy slow path: %+v", ev)
	default:
	}
	snap := met.Snapshot()
	if n := snap.Counters["fault.probe_failures"]; n != 0 {
		t.Fatalf("fault.probe_failures = %d on a healthy slow path, want 0", n)
	}
	if n := snap.Counters["fault.suspects"]; n != 0 {
		t.Fatalf("fault.suspects = %d, want 0", n)
	}
	if n := snap.Counters["fault.confirms"]; n != 0 {
		t.Fatalf("fault.confirms = %d, want 0", n)
	}
	if n := snap.Counters["fault.probes"]; n == 0 {
		t.Fatal("no probes ran; the test proved nothing")
	}
}
