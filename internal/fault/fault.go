// Package fault is the heartbeat failure detector of the fault-tolerance
// subsystem: a phi-accrual-style detector riding the RUDP control channel.
//
// For every watched peer the detector keeps a sliding window of
// inter-evidence gaps — evidence being either a successful probe or any
// piggybacked traffic reported via Observe — and computes the suspicion
// level phi = -log10(P(gap > elapsed)) under an exponential model of the
// gap distribution. Unlike a fixed timeout, phi scales with the observed
// heartbeat cadence: a peer that has answered every 20ms becomes suspect
// far sooner than one probed over a congested path.
//
// Probes back off exponentially (with jitter, capped) while a peer is
// unresponsive, so a dead peer is not hammered; any fresh evidence resets
// the probe cadence. The detector emits three events per peer transition:
// Suspect when phi crosses the threshold, Confirm after enough consecutive
// probe failures, and Recover when evidence returns. The socket controller
// consumes Confirm to fail established connections over to the resume
// path, and Recover to clear suspicion.
package fault

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"time"

	"naplet/internal/obs"
)

// State is a watched peer's health as currently assessed.
type State int

const (
	// Alive means recent evidence of liveness exists.
	Alive State = iota
	// Suspect means phi has crossed the suspicion threshold.
	Suspect
	// Down means failure was confirmed by consecutive probe failures.
	Down
)

// String names the state.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	default:
		return "unknown"
	}
}

// EventKind discriminates detector events.
type EventKind int

const (
	// EventSuspect fires when a peer's phi crosses the threshold.
	EventSuspect EventKind = iota + 1
	// EventConfirm fires when consecutive probe failures confirm a
	// suspected peer as down.
	EventConfirm
	// EventRecover fires when evidence returns from a suspected or
	// confirmed-down peer.
	EventRecover
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventSuspect:
		return "suspect"
	case EventConfirm:
		return "confirm"
	case EventRecover:
		return "recover"
	default:
		return "unknown"
	}
}

// Event is one peer state transition.
type Event struct {
	// Peer is the watched peer's control address.
	Peer string
	// Kind is the transition.
	Kind EventKind
	// Phi is the suspicion level at the transition.
	Phi float64
	// Failures is the consecutive probe-failure count at the transition.
	Failures int
}

// Probe checks one peer's liveness, typically with a heartbeat request
// over the control channel. A nil error is evidence of life.
type Probe func(ctx context.Context, peer string) error

// Config tunes a detector. Interval and Probe are required; the rest
// default sensibly.
type Config struct {
	// Interval is the nominal gap between heartbeat probes of an alive
	// peer. Piggybacked evidence younger than Interval suppresses the
	// probe entirely.
	Interval time.Duration
	// Threshold is the phi level at which a peer becomes suspect.
	// Default 4 (evidence gap ≈ 9x the observed mean).
	Threshold float64
	// ConfirmFailures is how many consecutive probe failures confirm a
	// suspect peer as down. Default 5.
	ConfirmFailures int
	// MaxBackoff caps the probe backoff while a peer is unresponsive.
	// Default 8x Interval.
	MaxBackoff time.Duration
	// Jitter is the fraction (0..1) by which each probe gap is randomly
	// perturbed, decorrelating probe storms. Default 0.2.
	Jitter float64
	// Window is how many inter-evidence gaps feed the phi estimate.
	// Default 64.
	Window int
	// ProbeTimeout bounds one probe attempt. Default Interval (min 10ms).
	ProbeTimeout time.Duration
	// RTTHint, when non-nil, supplies the current worst-path round-trip
	// estimate (e.g. transport.Manager.MaxRTT). Each probe's timeout is
	// floored at 4x the hint, so a heartbeat that merely takes a WAN round
	// trip is never scored as a failure: without this, any path whose RTT
	// exceeds ProbeTimeout fails every probe and confirms a perfectly
	// healthy peer as down.
	RTTHint func() time.Duration
	// Probe checks a peer's liveness. Required.
	Probe Probe
	// OnEvent, when non-nil, receives every state transition. Called from
	// detector goroutines; implementations must not block for long.
	OnEvent func(Event)
	// Metrics receives fault.* instruments when non-nil.
	Metrics *obs.Registry
	// Logger receives transition logs when non-nil.
	Logger *obs.Logger

	// now and rand are test seams.
	now  func() time.Time
	rand func() float64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Threshold <= 0 {
		c.Threshold = 4
	}
	if c.ConfirmFailures <= 0 {
		c.ConfirmFailures = 5
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 8 * c.Interval
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.2
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.Interval
		if c.ProbeTimeout < 10*time.Millisecond {
			c.ProbeTimeout = 10 * time.Millisecond
		}
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.rand == nil {
		c.rand = rand.Float64
	}
	return c
}

// watch is the per-peer detector state.
type watch struct {
	peer string
	// lastEvidence is when liveness was last evidenced.
	lastEvidence time.Time
	// gaps is the sliding window of inter-evidence gaps, seconds.
	gaps []float64
	// gapSum is the running sum of gaps.
	gapSum float64
	// state is the assessed health.
	state State
	// failures counts consecutive probe failures.
	failures int
	// kick wakes the probe loop early (fresh evidence, unwatch).
	kick chan struct{}
	// stopped ends the probe loop.
	stopped bool
}

// Detector watches a set of peers. It is safe for concurrent use.
type Detector struct {
	cfg Config

	mu      sync.Mutex
	watches map[string]*watch
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup

	ins struct {
		probes        *obs.Counter
		probeFailures *obs.Counter
		suspects      *obs.Counter
		confirms      *obs.Counter
		recoveries    *obs.Counter
	}
}

// NewDetector starts an empty detector.
func NewDetector(cfg Config) *Detector {
	d := &Detector{
		cfg:     cfg.withDefaults(),
		watches: make(map[string]*watch),
		done:    make(chan struct{}),
	}
	met := cfg.Metrics
	d.ins.probes = met.Counter("fault.probes")
	d.ins.probeFailures = met.Counter("fault.probe_failures")
	d.ins.suspects = met.Counter("fault.suspects")
	d.ins.confirms = met.Counter("fault.confirms")
	d.ins.recoveries = met.Counter("fault.recoveries")
	met.Func("fault.watched", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.watches))
	})
	met.Func("fault.suspected", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		n := 0
		for _, w := range d.watches {
			if w.state != Alive {
				n++
			}
		}
		return float64(n)
	})
	return d
}

// Watch starts probing peer. Watching an already-watched peer is a no-op.
func (d *Detector) Watch(peer string) {
	if d == nil || peer == "" {
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	if _, ok := d.watches[peer]; ok {
		d.mu.Unlock()
		return
	}
	w := &watch{
		peer:         peer,
		lastEvidence: d.cfg.now(),
		kick:         make(chan struct{}, 1),
	}
	d.watches[peer] = w
	d.mu.Unlock()
	d.wg.Add(1)
	go d.probeLoop(w)
}

// Unwatch stops probing peer and forgets its history.
func (d *Detector) Unwatch(peer string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	w, ok := d.watches[peer]
	if ok {
		delete(d.watches, peer)
		w.stopped = true
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	d.mu.Unlock()
}

// Watched returns the currently watched peers.
func (d *Detector) Watched() []string {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.watches))
	for p := range d.watches {
		out = append(out, p)
	}
	return out
}

// Observe reports piggybacked evidence of life from peer — any valid
// control-channel traffic counts, suppressing the next probe.
func (d *Detector) Observe(peer string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	w := d.watches[peer]
	if w == nil {
		d.mu.Unlock()
		return
	}
	ev := d.evidenceLocked(w)
	d.mu.Unlock()
	d.emit(ev)
}

// evidenceLocked folds fresh evidence of life into w and returns a
// Recover event to emit, if the peer was suspect or down.
func (d *Detector) evidenceLocked(w *watch) *Event {
	now := d.cfg.now()
	gap := now.Sub(w.lastEvidence).Seconds()
	if gap > 0 {
		w.gaps = append(w.gaps, gap)
		w.gapSum += gap
		if len(w.gaps) > d.cfg.Window {
			w.gapSum -= w.gaps[0]
			w.gaps = w.gaps[1:]
		}
	}
	w.lastEvidence = now
	w.failures = 0
	if w.state == Alive {
		return nil
	}
	w.state = Alive
	d.ins.recoveries.Inc()
	return &Event{Peer: w.peer, Kind: EventRecover}
}

// phiLocked computes the current suspicion level for w: under an
// exponential model of the evidence gaps, phi = elapsed/(mean·ln 10),
// the -log10 of the probability that a live peer stays silent this long.
func (d *Detector) phiLocked(w *watch, now time.Time) float64 {
	mean := d.cfg.Interval.Seconds()
	if len(w.gaps) >= 3 {
		if m := w.gapSum / float64(len(w.gaps)); m > mean {
			mean = m
		}
	}
	elapsed := now.Sub(w.lastEvidence).Seconds()
	if elapsed <= 0 || mean <= 0 {
		return 0
	}
	return elapsed / (mean * math.Ln10)
}

// Phi returns peer's current suspicion level (0 when not watched).
func (d *Detector) Phi(peer string) float64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.watches[peer]
	if w == nil {
		return 0
	}
	return d.phiLocked(w, d.cfg.now())
}

// State returns peer's assessed health (Alive when not watched).
func (d *Detector) State(peer string) State {
	if d == nil {
		return Alive
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.watches[peer]
	if w == nil {
		return Alive
	}
	return w.state
}

// probeTimeout returns the per-probe deadline: the configured ProbeTimeout,
// floored at 4x the current RTT hint so slow-but-healthy WAN paths get their
// probe responses awaited rather than scored as failures.
func (d *Detector) probeTimeout() time.Duration {
	timeout := d.cfg.ProbeTimeout
	if d.cfg.RTTHint != nil {
		if rtt := d.cfg.RTTHint(); rtt > 0 && 4*rtt > timeout {
			timeout = 4 * rtt
		}
	}
	return timeout
}

// probeLoop drives one peer's heartbeat probes until unwatch or close.
func (d *Detector) probeLoop(w *watch) {
	defer d.wg.Done()
	interval := d.cfg.Interval
	timer := time.NewTimer(d.jittered(interval))
	defer timer.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-w.kick:
			d.mu.Lock()
			stopped := w.stopped
			d.mu.Unlock()
			if stopped {
				return
			}
			// Fresh evidence arrived: resume the nominal cadence.
			interval = d.cfg.Interval
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(d.jittered(interval))
			continue
		case <-timer.C:
		}

		d.mu.Lock()
		if w.stopped {
			d.mu.Unlock()
			return
		}
		fresh := d.cfg.now().Sub(w.lastEvidence) < d.cfg.Interval
		d.mu.Unlock()

		if fresh {
			// Piggybacked traffic already evidenced liveness; skip the probe.
			interval = d.cfg.Interval
			timer.Reset(d.jittered(interval))
			continue
		}

		ctx, cancel := context.WithTimeout(context.Background(), d.probeTimeout())
		err := d.cfg.Probe(ctx, w.peer)
		cancel()
		d.ins.probes.Inc()

		var ev *Event
		d.mu.Lock()
		if w.stopped {
			d.mu.Unlock()
			return
		}
		now := d.cfg.now()
		if err == nil {
			ev = d.evidenceLocked(w)
			interval = d.cfg.Interval
		} else {
			d.ins.probeFailures.Inc()
			w.failures++
			phi := d.phiLocked(w, now)
			switch {
			case w.state == Alive && phi >= d.cfg.Threshold:
				w.state = Suspect
				d.ins.suspects.Inc()
				ev = &Event{Peer: w.peer, Kind: EventSuspect, Phi: phi, Failures: w.failures}
			case w.state != Down && w.failures >= d.cfg.ConfirmFailures:
				w.state = Down
				d.ins.confirms.Inc()
				ev = &Event{Peer: w.peer, Kind: EventConfirm, Phi: phi, Failures: w.failures}
			}
			// Unresponsive peer: back off exponentially, capped.
			interval *= 2
			if interval > d.cfg.MaxBackoff {
				interval = d.cfg.MaxBackoff
			}
		}
		d.mu.Unlock()
		d.emit(ev)
		timer.Reset(d.jittered(interval))
	}
}

// jittered perturbs d0 by ±Jitter/2, never below a quarter interval.
func (d *Detector) jittered(d0 time.Duration) time.Duration {
	f := 1 + d.cfg.Jitter*(d.cfg.rand()-0.5)
	out := time.Duration(float64(d0) * f)
	if min := d.cfg.Interval / 4; out < min {
		out = min
	}
	return out
}

func (d *Detector) emit(ev *Event) {
	if ev == nil {
		return
	}
	lg := d.cfg.Logger
	switch ev.Kind {
	case EventSuspect:
		lg.Warnf("fault: peer %s suspect (phi=%.2f, failures=%d)", ev.Peer, ev.Phi, ev.Failures)
	case EventConfirm:
		lg.Warnf("fault: peer %s confirmed down (phi=%.2f, failures=%d)", ev.Peer, ev.Phi, ev.Failures)
	case EventRecover:
		lg.Infof("fault: peer %s recovered", ev.Peer)
	}
	if d.cfg.OnEvent != nil {
		d.cfg.OnEvent(*ev)
	}
}

// Close stops all probing.
func (d *Detector) Close() {
	if d == nil {
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	for _, w := range d.watches {
		w.stopped = true
	}
	close(d.done)
	d.mu.Unlock()
	d.wg.Wait()
}
