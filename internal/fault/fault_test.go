package fault

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"naplet/internal/obs"
)

// collectEvents wires an event channel into cfg and returns it.
func collectEvents(cfg *Config) chan Event {
	ch := make(chan Event, 64)
	cfg.OnEvent = func(ev Event) { ch <- ev }
	return ch
}

func waitEvent(t *testing.T, ch chan Event, kind EventKind, timeout time.Duration) Event {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev := <-ch:
			if ev.Kind == kind {
				return ev
			}
		case <-deadline:
			t.Fatalf("no %v event within %v", kind, timeout)
		}
	}
}

func TestHealthyPeerStaysAlive(t *testing.T) {
	cfg := Config{
		Interval: 5 * time.Millisecond,
		Probe:    func(context.Context, string) error { return nil },
	}
	ch := collectEvents(&cfg)
	d := NewDetector(cfg)
	defer d.Close()
	d.Watch("peer1")
	time.Sleep(60 * time.Millisecond)
	if st := d.State("peer1"); st != Alive {
		t.Fatalf("State = %v, want Alive", st)
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected event %+v", ev)
	default:
	}
}

func TestSuspectConfirmRecover(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	met := obs.NewRegistry()
	cfg := Config{
		Interval:        5 * time.Millisecond,
		Threshold:       2,
		ConfirmFailures: 4,
		MaxBackoff:      20 * time.Millisecond,
		Metrics:         met,
		Probe: func(context.Context, string) error {
			if failing.Load() {
				return errors.New("unreachable")
			}
			return nil
		},
	}
	ch := collectEvents(&cfg)
	d := NewDetector(cfg)
	defer d.Close()
	d.Watch("peer1")

	ev := waitEvent(t, ch, EventSuspect, 2*time.Second)
	if ev.Phi < cfg.Threshold {
		t.Fatalf("suspect at phi %.2f < threshold %v", ev.Phi, cfg.Threshold)
	}
	ev = waitEvent(t, ch, EventConfirm, 2*time.Second)
	if ev.Failures < cfg.ConfirmFailures {
		t.Fatalf("confirm after %d failures, want >= %d", ev.Failures, cfg.ConfirmFailures)
	}
	if st := d.State("peer1"); st != Down {
		t.Fatalf("State = %v, want Down", st)
	}

	failing.Store(false)
	waitEvent(t, ch, EventRecover, 2*time.Second)
	if st := d.State("peer1"); st != Alive {
		t.Fatalf("State after recovery = %v, want Alive", st)
	}
	snap := met.Snapshot()
	for _, c := range []string{"fault.probes", "fault.probe_failures", "fault.suspects", "fault.confirms", "fault.recoveries"} {
		if snap.Counters[c] == 0 {
			t.Errorf("%s = 0", c)
		}
	}
}

func TestObserveSuppressesProbes(t *testing.T) {
	var probes atomic.Int64
	cfg := Config{
		Interval: 10 * time.Millisecond,
		Probe: func(context.Context, string) error {
			probes.Add(1)
			return nil
		},
	}
	d := NewDetector(cfg)
	defer d.Close()
	d.Watch("peer1")
	// Piggybacked evidence faster than the probe interval: the detector
	// should not probe at all.
	stop := time.After(100 * time.Millisecond)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
loop:
	for {
		select {
		case <-tick.C:
			d.Observe("peer1")
		case <-stop:
			break loop
		}
	}
	if n := probes.Load(); n > 2 {
		t.Fatalf("probed %d times despite piggybacked evidence", n)
	}
}

func TestObserveRecoversSuspectPeer(t *testing.T) {
	cfg := Config{
		Interval:  5 * time.Millisecond,
		Threshold: 2,
		Probe:     func(context.Context, string) error { return errors.New("nope") },
	}
	ch := collectEvents(&cfg)
	d := NewDetector(cfg)
	defer d.Close()
	d.Watch("peer1")
	waitEvent(t, ch, EventSuspect, 2*time.Second)
	// Evidence by piggybacking (not probing) must clear suspicion.
	d.Observe("peer1")
	waitEvent(t, ch, EventRecover, time.Second)
}

func TestPhiGrowsWithSilence(t *testing.T) {
	base := time.Unix(1000, 0)
	now := base
	cfg := Config{
		Interval: time.Second,
		Probe:    func(context.Context, string) error { return nil },
		now:      func() time.Time { return now },
	}
	d := NewDetector(cfg)
	defer d.Close()
	d.Watch("peer1")
	// Regular 1s evidence builds the gap window.
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		d.Observe("peer1")
	}
	if phi := d.Phi("peer1"); phi != 0 {
		t.Fatalf("phi right after evidence = %v, want 0", phi)
	}
	now = now.Add(2 * time.Second)
	low := d.Phi("peer1")
	now = now.Add(18 * time.Second)
	high := d.Phi("peer1")
	if low <= 0 || high <= low {
		t.Fatalf("phi not increasing with silence: %v then %v", low, high)
	}
	// 20s of silence against a 1s cadence is overwhelming suspicion.
	if high < 4 {
		t.Fatalf("phi after 20s silence = %v, want >= 4", high)
	}
}

func TestProbeBackoffWhileUnreachable(t *testing.T) {
	var mu struct {
		atomic.Int64
	}
	times := make(chan time.Time, 128)
	cfg := Config{
		Interval:        5 * time.Millisecond,
		MaxBackoff:      40 * time.Millisecond,
		ConfirmFailures: 2,
		Probe: func(context.Context, string) error {
			mu.Add(1)
			times <- time.Now()
			return errors.New("unreachable")
		},
	}
	d := NewDetector(cfg)
	defer d.Close()
	d.Watch("peer1")
	time.Sleep(300 * time.Millisecond)
	d.Close()
	n := int(mu.Load())
	// Without backoff ~60 probes fit in 300ms at 5ms cadence; with
	// doubling capped at 40ms far fewer must have run.
	if n == 0 || n > 25 {
		t.Fatalf("probe count %d outside backoff envelope", n)
	}
	// Gaps should reach (near) the cap.
	close(times)
	var prev time.Time
	var maxGap time.Duration
	for ts := range times {
		if !prev.IsZero() {
			if g := ts.Sub(prev); g > maxGap {
				maxGap = g
			}
		}
		prev = ts
	}
	if maxGap < 20*time.Millisecond {
		t.Fatalf("max probe gap %v never backed off toward cap", maxGap)
	}
}

func TestUnwatchStopsProbing(t *testing.T) {
	var probes atomic.Int64
	cfg := Config{
		Interval: 5 * time.Millisecond,
		Probe: func(context.Context, string) error {
			probes.Add(1)
			return nil
		},
	}
	d := NewDetector(cfg)
	defer d.Close()
	d.Watch("peer1")
	time.Sleep(30 * time.Millisecond)
	d.Unwatch("peer1")
	if got := d.Watched(); len(got) != 0 {
		t.Fatalf("Watched = %v after Unwatch", got)
	}
	settled := probes.Load()
	time.Sleep(50 * time.Millisecond)
	if after := probes.Load(); after > settled+1 {
		t.Fatalf("probing continued after Unwatch: %d -> %d", settled, after)
	}
	if st := d.State("peer1"); st != Alive {
		t.Fatalf("unwatched State = %v, want Alive", st)
	}
}

func TestNilDetector(t *testing.T) {
	var d *Detector
	d.Watch("x")
	d.Unwatch("x")
	d.Observe("x")
	d.Close()
	if d.Phi("x") != 0 || d.State("x") != Alive || d.Watched() != nil {
		t.Fatal("nil detector accessors")
	}
}
