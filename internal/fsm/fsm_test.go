package fsm

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// walk applies a sequence of events to a fresh machine, failing the test on
// any illegal step, and returns the final state.
func walk(t *testing.T, start State, events ...Event) State {
	t.Helper()
	m := NewMachine(start)
	for i, e := range events {
		if _, err := m.Step(e); err != nil {
			t.Fatalf("step %d (%s in %s): %v", i, e, m.State(), err)
		}
	}
	return m.State()
}

func TestClientOpenPath(t *testing.T) {
	// Fig 3, solid lines: CLOSED -> CONNECT_SENT -> ESTABLISHED.
	if got := walk(t, Closed, AppOpen, RecvConnectAck); got != Established {
		t.Fatalf("final = %s", got)
	}
}

func TestServerOpenPath(t *testing.T) {
	// Fig 3, dotted lines: CLOSED -> LISTEN -> CONNECT_ACKED -> ESTABLISHED.
	if got := walk(t, Closed, AppListen, RecvConnect, RecvID); got != Established {
		t.Fatalf("final = %s", got)
	}
}

func TestSuspendResumeRoundTrip(t *testing.T) {
	// Initiator: ESTABLISHED -> SUS_SENT -> SUSPENDED -> RES_SENT -> ESTABLISHED.
	if got := walk(t, Established, AppSuspend, RecvSuspendAck, AppResume, RecvResumeAck); got != Established {
		t.Fatalf("initiator final = %s", got)
	}
	// Passive side: ESTABLISHED -> SUS_ACKED -> SUSPENDED -> RES_ACKED -> ESTABLISHED.
	if got := walk(t, Established, RecvSuspend, ExecSuspended, RecvResume, ExecResumed); got != Established {
		t.Fatalf("passive final = %s", got)
	}
}

func TestClosePaths(t *testing.T) {
	if got := walk(t, Established, AppClose, RecvCloseAck); got != Closed {
		t.Fatalf("active close from established: %s", got)
	}
	if got := walk(t, Suspended, AppClose, RecvCloseAck); got != Closed {
		t.Fatalf("active close from suspended: %s", got)
	}
	if got := walk(t, Established, RecvClose, ExecClosed); got != Closed {
		t.Fatalf("passive close: %s", got)
	}
}

func TestOverlappedConcurrentMigration(t *testing.T) {
	// Fig 4(a). Side A (low priority): sends SUS, gets ACK_WAIT, parks in
	// SUSPEND_WAIT, later gets SUS_RES -> SUSPENDED, then migrates and
	// resumes.
	a := walk(t, Established, AppSuspend, RecvAckWait, RecvSusRes, AppResume, RecvResumeAck)
	if a != Established {
		t.Fatalf("side A final = %s", a)
	}
	// Side B (high priority): sends SUS, concurrently receives A's SUS and
	// grants it... in the paper B replies ACK_WAIT to A and A ACKs B's SUS,
	// so B's own path is SUS_SENT -> (recv ACK from A) SUSPENDED.
	b := walk(t, Established, AppSuspend, RecvSuspendAck, AppResume, RecvResumeAck)
	if b != Established {
		t.Fatalf("side B final = %s", b)
	}
	// Low-priority side that had sent SUS and then receives the peer's SUS
	// grants it: SUS_SENT -> SUS_ACKED -> SUSPENDED.
	c := walk(t, Established, AppSuspend, RecvSuspend, ExecSuspended)
	if c != Suspended {
		t.Fatalf("granting side final = %s", c)
	}
}

func TestNonOverlappedConcurrentMigration(t *testing.T) {
	// Fig 4(b). Side B acked A's SUS, is SUSPENDED (remote), then wants to
	// migrate itself: its local suspend blocks (AppSuspendBlocked) in
	// SUSPEND_WAIT. A's RESUME arrives; B answers RESUME_WAIT and its own
	// suspend completes -> SUSPENDED. After B's migration it resumes.
	b := walk(t, Established,
		RecvSuspend, ExecSuspended, // grant A's suspend
		AppSuspendBlocked,        // B's own suspend parks
		RecvResume,               // A resumes; we answer RESUME_WAIT; our suspend completes
		AppResume, RecvResumeAck, // after B's migration
	)
	if b != Established {
		t.Fatalf("side B final = %s", b)
	}
	// Side A: suspends normally, migrates, sends RES, gets RESUME_WAIT,
	// parks in RESUME_WAIT, then B's RESUME arrives -> RES_ACKED -> ESTABLISHED.
	a := walk(t, Established,
		AppSuspend, RecvSuspendAck, // normal suspend
		AppResume, RecvResumeWait, // resume parked by B
		RecvResume, ExecResumed, // B resumes toward us
	)
	if a != Established {
		t.Fatalf("side A final = %s", a)
	}
}

func TestMultiConnectionPrioritySuspendInPlace(t *testing.T) {
	// Section 3.2: a local suspend on a remotely suspended connection when
	// we hold priority returns without further action (stay SUSPENDED).
	if got := walk(t, Suspended, AppSuspend); got != Suspended {
		t.Fatalf("state = %s", got)
	}
	// With low priority it blocks.
	if got := walk(t, Suspended, AppSuspendBlocked); got != SuspendWait {
		t.Fatalf("state = %s", got)
	}
}

func TestFailureDegradesToSuspended(t *testing.T) {
	if got := walk(t, Established, Fail, AppResume, RecvResumeAck); got != Established {
		t.Fatalf("state = %s", got)
	}
}

func TestTimeouts(t *testing.T) {
	if got := walk(t, Closed, AppOpen, Timeout); got != Closed {
		t.Fatalf("connect timeout -> %s", got)
	}
	if got := walk(t, Established, AppSuspend, Timeout); got != Suspended {
		t.Fatalf("suspend timeout -> %s", got)
	}
	if got := walk(t, Suspended, AppResume, Timeout); got != Suspended {
		t.Fatalf("resume timeout -> %s", got)
	}
	if got := walk(t, Established, AppClose, Timeout); got != Closed {
		t.Fatalf("close timeout -> %s", got)
	}
}

func TestIllegalTransitionsRejected(t *testing.T) {
	cases := []struct {
		s State
		e Event
	}{
		{Closed, AppSuspend},
		{Closed, RecvSuspend},
		{Established, AppOpen},
		{Established, AppResume},
		{Established, RecvResume},
		{Suspended, AppListen},
		{Listen, AppSuspend},
		{SuspendWait, AppSuspend},
		{ResumeWait, AppResume},
		{CloseSent, AppOpen},
	}
	for _, c := range cases {
		m := NewMachine(c.s)
		if _, err := m.Step(c.e); err == nil {
			t.Errorf("event %s accepted in state %s", c.e, c.s)
		} else {
			var ill *ErrIllegalTransition
			if !errors.As(err, &ill) {
				t.Errorf("error type = %T", err)
			} else if ill.From != c.s || ill.Event != c.e {
				t.Errorf("error details = %+v", ill)
			}
		}
		if m.State() != c.s {
			t.Errorf("illegal event changed state %s -> %s", c.s, m.State())
		}
	}
}

func TestNoDataTransferStatesUnreachableFromClosed(t *testing.T) {
	// From CLOSED, no single receive event may do anything: only the
	// application can start a connection (open/listen). This is the
	// security property that a wire message cannot conjure a connection.
	for _, e := range Events() {
		if e == AppListen || e == AppOpen {
			continue
		}
		if Legal(Closed, e) {
			t.Errorf("event %s legal in CLOSED", e)
		}
	}
}

func TestEveryStateHasNames(t *testing.T) {
	for _, s := range States() {
		if strings.HasPrefix(s.String(), "State(") {
			t.Errorf("state %d has no name", s)
		}
	}
	for _, e := range Events() {
		if strings.HasPrefix(e.String(), "Event(") {
			t.Errorf("event %d has no name", e)
		}
	}
}

func TestTransitionTargetsAreValidStates(t *testing.T) {
	for s, row := range transitions {
		if int(s) >= numStates {
			t.Errorf("transition source %d out of range", s)
		}
		for e, to := range row {
			if int(e) >= numEvents {
				t.Errorf("event %d out of range", e)
			}
			if int(to) >= numStates {
				t.Errorf("transition %s --%s--> %d targets invalid state", s, e, to)
			}
		}
	}
}

// TestEveryNonTerminalStateHasExit ensures the machine cannot wedge: every
// state except CLOSED has at least one outgoing transition.
func TestEveryNonTerminalStateHasExit(t *testing.T) {
	for _, s := range States() {
		if s == Closed {
			continue
		}
		if len(transitions[s]) == 0 {
			t.Errorf("state %s has no outgoing transitions", s)
		}
	}
}

// TestClosedReachableFromEverywhere checks by BFS that CLOSED is reachable
// from every state — connections can always be torn down.
func TestClosedReachableFromEverywhere(t *testing.T) {
	for _, start := range States() {
		visited := map[State]bool{start: true}
		frontier := []State{start}
		found := start == Closed
		for len(frontier) > 0 && !found {
			var next []State
			for _, s := range frontier {
				for _, to := range transitions[s] {
					if to == Closed {
						found = true
					}
					if !visited[to] {
						visited[to] = true
						next = append(next, to)
					}
				}
			}
			frontier = next
		}
		if !found {
			t.Errorf("CLOSED unreachable from %s", start)
		}
	}
}

// TestRandomWalkInvariants drives random legal event sequences and checks
// machine invariants: state always valid, history consistent.
func TestRandomWalkInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		m := NewMachine(Closed)
		for step := 0; step < 50; step++ {
			var legal []Event
			for _, e := range Events() {
				if Legal(m.State(), e) {
					legal = append(legal, e)
				}
			}
			if len(legal) == 0 {
				break
			}
			e := legal[rng.Intn(len(legal))]
			prev := m.State()
			got, err := m.Step(e)
			if err != nil {
				t.Fatalf("legal event %s in %s failed: %v", e, prev, err)
			}
			want, _ := Next(prev, e)
			if got != want {
				t.Fatalf("Step disagreed with Next: %s vs %s", got, want)
			}
		}
		h := m.History()
		for i := 1; i < len(h); i++ {
			if h[i].From != h[i-1].To {
				t.Fatalf("history discontinuity at %d: %+v -> %+v", i, h[i-1], h[i])
			}
		}
	}
}

// TestStepMatchesNextProperty cross-checks Machine.Step against the pure
// Next for arbitrary state/event pairs.
func TestStepMatchesNextProperty(t *testing.T) {
	f := func(sRaw, eRaw uint8) bool {
		s := State(sRaw % numStates)
		e := Event(eRaw % numEvents)
		m := NewMachine(s)
		got, errStep := m.Step(e)
		want, errNext := Next(s, e)
		if (errStep == nil) != (errNext == nil) {
			return false
		}
		if errStep != nil {
			return m.State() == s
		}
		return got == want && m.State() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHistoryBounded(t *testing.T) {
	m := NewMachine(Established)
	for i := 0; i < 500; i++ {
		m.Step(AppSuspend)     // -> SUS_SENT
		m.Step(RecvSuspendAck) // -> SUSPENDED
		m.Step(AppResume)      // -> RES_SENT
		m.Step(RecvResumeAck)  // -> ESTABLISHED
	}
	if n := len(m.History()); n > 128 {
		t.Fatalf("history length %d exceeds bound", n)
	}
}

func TestIn(t *testing.T) {
	m := NewMachine(Established)
	if !m.In(Closed, Established) {
		t.Error("In missed current state")
	}
	if m.In(Closed, Suspended) {
		t.Error("In matched wrong states")
	}
}

func TestObserverSeesTransitions(t *testing.T) {
	m := NewMachine(Established)
	var got []Transition
	m.SetObserver(func(tr Transition) { got = append(got, tr) })
	m.Step(AppSuspend)     // -> SUS_SENT
	m.Step(RecvSuspendAck) // -> SUSPENDED
	if _, err := m.Step(AppOpen); err == nil {
		t.Fatal("expected illegal transition")
	}
	want := []Transition{
		{From: Established, Event: AppSuspend, To: SusSent},
		{From: SusSent, Event: RecvSuspendAck, To: Suspended},
	}
	if len(got) != len(want) {
		t.Fatalf("observer saw %d transitions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].At.IsZero() {
			t.Errorf("transition %d has no timestamp", i)
		}
		got[i].At = time.Time{}
		if got[i] != want[i] {
			t.Errorf("transition %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Removing the observer stops the callbacks.
	m.SetObserver(nil)
	m.Step(AppResume)
	if len(got) != 2 {
		t.Fatalf("observer saw %d transitions after removal", len(got))
	}
}

func TestObserverRunsOutsideLock(t *testing.T) {
	// The observer may inspect (but not step) the machine: State() must
	// not deadlock when called from the callback.
	m := NewMachine(Closed)
	var seen State
	m.SetObserver(func(tr Transition) { seen = m.State() })
	m.Step(AppOpen)
	if seen != ConnectSent {
		t.Fatalf("state inside observer = %v", seen)
	}
}
