// Package fsm implements the NapletSocket connection state machine of
// Section 2.2 of the paper: fourteen states extending the TCP state machine
// with suspend/resume states, including the SUSPEND_WAIT and RESUME_WAIT
// states that serialize concurrent connection migrations.
//
// The machine is a pure transition table — no I/O — so the protocol's
// control flow can be tested exhaustively and the core package cannot make
// an illegal move without an error telling it exactly which one.
package fsm

import (
	"fmt"
	"sync"
	"time"
)

// State is a NapletSocket connection state (Table 1 of the paper).
type State uint8

// The fourteen connection states. States beyond the TCP-derived set
// (SUS_*, SUSPEND_WAIT, SUSPENDED, RES_*, RESUME_WAIT) are the paper's
// additions for connection migration.
const (
	// Closed: not connected.
	Closed State = iota
	// Listen: ready to accept connections.
	Listen
	// ConnectSent: sent a CONNECT request.
	ConnectSent
	// ConnectAcked: confirmed a CONNECT request.
	ConnectAcked
	// Established: normal state for data transfer.
	Established
	// SusSent: sent a SUSPEND request.
	SusSent
	// SusAcked: confirmed a SUSPEND request.
	SusAcked
	// SuspendWait: a suspend operation is blocked waiting for the peer's
	// migration to finish (concurrent connection migration).
	SuspendWait
	// Suspended: the connection is suspended; no data can be exchanged.
	Suspended
	// ResSent: sent a RESUME request.
	ResSent
	// ResAcked: confirmed a RESUME request.
	ResAcked
	// ResumeWait: a resume operation is blocked because the peer has a
	// pending suspend of its own to finish first.
	ResumeWait
	// CloseSent: sent a CLOSE request.
	CloseSent
	// CloseAcked: confirmed a CLOSE request.
	CloseAcked

	numStates = iota
)

// String returns the paper's name for the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "CLOSED"
	case Listen:
		return "LISTEN"
	case ConnectSent:
		return "CONNECT_SENT"
	case ConnectAcked:
		return "CONNECT_ACKED"
	case Established:
		return "ESTABLISHED"
	case SusSent:
		return "SUS_SENT"
	case SusAcked:
		return "SUS_ACKED"
	case SuspendWait:
		return "SUSPEND_WAIT"
	case Suspended:
		return "SUSPENDED"
	case ResSent:
		return "RES_SENT"
	case ResAcked:
		return "RES_ACKED"
	case ResumeWait:
		return "RESUME_WAIT"
	case CloseSent:
		return "CLOSE_SENT"
	case CloseAcked:
		return "CLOSE_ACKED"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Event is a stimulus driving the machine: an application call (App*), a
// received control message (Recv*), or an internal completion (Exec*).
type Event uint8

// Events of the NapletSocket protocol (Figure 3 of the paper).
const (
	// AppListen: application creates a server socket.
	AppListen Event = iota
	// AppOpen: application actively opens a connection.
	AppOpen
	// AppSuspend: application (or the docking system) suspends the
	// connection ahead of a migration.
	AppSuspend
	// AppSuspendBlocked: a locally issued suspend found the connection
	// already remotely suspended by a higher-priority peer and must wait
	// (Section 3.2, multiple connections).
	AppSuspendBlocked
	// AppResume: application resumes the connection after landing.
	AppResume
	// AppClose: application closes the connection.
	AppClose

	// RecvConnect: a CONNECT request arrived (server side).
	RecvConnect
	// RecvConnectAck: the CONNECT was acknowledged with a socket id.
	RecvConnectAck
	// RecvID: the client's socket id arrived, completing establishment.
	RecvID
	// RecvSuspend: a SUS request arrived and was granted.
	RecvSuspend
	// RecvSuspendAck: our SUS request was acknowledged (ACK).
	RecvSuspendAck
	// RecvAckWait: our SUS request was answered with ACK_WAIT — the
	// higher-priority peer migrates first (overlapped concurrent
	// migration).
	RecvAckWait
	// RecvSusRes: the peer finished its migration; our blocked suspend may
	// complete (SUS_RES).
	RecvSusRes
	// RecvResume: a RES request arrived and was granted.
	RecvResume
	// RecvResumeAck: our RES request was acknowledged.
	RecvResumeAck
	// RecvResumeWait: our RES request was answered with RESUME_WAIT — the
	// peer has a parked suspend to finish before the resume completes
	// (non-overlapped concurrent migration).
	RecvResumeWait
	// RecvClose: a CLS request arrived.
	RecvClose
	// RecvCloseAck: our CLS request was acknowledged.
	RecvCloseAck

	// ExecSuspended: the local teardown after a granted suspend finished
	// (streams drained and data socket closed).
	ExecSuspended
	// ExecResumed: the local setup after a granted resume finished (new
	// data socket installed, streams recreated).
	ExecResumed
	// ExecClosed: the local teardown after a granted close finished.
	ExecClosed

	// Timeout: a protocol exchange timed out.
	Timeout
	// Fail: the data socket broke while established (fault-tolerance
	// extension; the connection degrades to SUSPENDED for re-resume rather
	// than dying).
	Fail

	numEvents = iota
)

// String returns a readable event name.
func (e Event) String() string {
	names := [...]string{
		AppListen: "app:listen", AppOpen: "app:open", AppSuspend: "app:suspend",
		AppSuspendBlocked: "app:suspend-blocked", AppResume: "app:resume", AppClose: "app:close",
		RecvConnect: "recv:CONNECT", RecvConnectAck: "recv:ACK+ID", RecvID: "recv:ID",
		RecvSuspend: "recv:SUS", RecvSuspendAck: "recv:ACK(SUS)", RecvAckWait: "recv:ACK_WAIT",
		RecvSusRes: "recv:SUS_RES", RecvResume: "recv:RES", RecvResumeAck: "recv:ACK(RES)",
		RecvResumeWait: "recv:RESUME_WAIT", RecvClose: "recv:CLS", RecvCloseAck: "recv:ACK(CLS)",
		ExecSuspended: "exec:suspended", ExecResumed: "exec:resumed", ExecClosed: "exec:closed",
		Timeout: "timeout", Fail: "fail",
	}
	if int(e) < len(names) {
		return names[e]
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// transitions is the legal-move table: transitions[state][event] is the
// next state; absence means the event is illegal in that state.
var transitions = map[State]map[Event]State{
	Closed: {
		AppListen: Listen,
		AppOpen:   ConnectSent,
	},
	Listen: {
		RecvConnect: ConnectAcked,
		AppClose:    Closed,
	},
	ConnectSent: {
		RecvConnectAck: Established,
		Timeout:        Closed,
	},
	ConnectAcked: {
		RecvID:  Established,
		Timeout: Closed,
	},
	Established: {
		AppSuspend: SusSent,
		// Section 3.2: a local suspend that must defer to a higher-priority
		// remote suspend parks without sending SUS.
		AppSuspendBlocked: SuspendWait,
		RecvSuspend:       SusAcked,
		AppClose:          CloseSent,
		RecvClose:         CloseAcked,
		// Fault-tolerance extension: a broken data socket degrades the
		// connection to SUSPENDED instead of killing it.
		Fail: Suspended,
	},
	SusSent: {
		RecvSuspendAck: Suspended,
		RecvAckWait:    SuspendWait,
		// Both sides issued SUS and this side has low priority: the peer's
		// SUS also arrives here and is granted.
		RecvSuspend: SusAcked,
		Timeout:     Suspended,
	},
	SusAcked: {
		ExecSuspended: Suspended,
	},
	SuspendWait: {
		// Peer finished migrating; the blocked suspend completes.
		RecvSusRes: Suspended,
		// Peer resumes while we hold a parked suspend: we answer
		// RESUME_WAIT and our suspend completes (Fig 4(b), side B).
		RecvResume: Suspended,
	},
	Suspended: {
		AppResume: ResSent,
		// A locally issued suspend on a remotely suspended connection with
		// a low-priority peer blocks (Section 3.2).
		AppSuspendBlocked: SuspendWait,
		// A locally issued suspend on a remotely suspended connection when
		// we hold priority completes in place; no state change.
		AppSuspend: Suspended,
		RecvResume: ResAcked,
		AppClose:   CloseSent,
		RecvClose:  CloseAcked,
		// A SUS arriving while already suspended is idempotent.
		RecvSuspend: Suspended,
		// Overlapped concurrent migration where the peer's SUS was granted
		// before our own SUS's ACK_WAIT verdict arrived: park from
		// SUSPENDED.
		RecvAckWait: SuspendWait,
	},
	ResSent: {
		RecvResumeAck:  Established,
		RecvResumeWait: ResumeWait,
		// Resume race: both endpoints resumed at once; the low-priority
		// side grants the peer's RES and abandons its own.
		RecvResume: ResAcked,
		Timeout:    Suspended,
	},
	ResAcked: {
		ExecResumed: Established,
		// The mover's handoff never arrived; fall back to SUSPENDED.
		Timeout: Suspended,
	},
	ResumeWait: {
		// The peer finished its parked suspend and migration, and now
		// resumes toward us.
		RecvResume: ResAcked,
	},
	CloseSent: {
		RecvCloseAck: Closed,
		Timeout:      Closed,
	},
	CloseAcked: {
		ExecClosed: Closed,
	},
}

// ErrIllegalTransition reports an event that is not legal in the current
// state.
type ErrIllegalTransition struct {
	From  State
	Event Event
}

// Error implements error.
func (e *ErrIllegalTransition) Error() string {
	return fmt.Sprintf("fsm: event %s illegal in state %s", e.Event, e.From)
}

// Next returns the state reached by applying event in state, or an
// ErrIllegalTransition.
func Next(s State, e Event) (State, error) {
	if to, ok := transitions[s][e]; ok {
		return to, nil
	}
	return s, &ErrIllegalTransition{From: s, Event: e}
}

// Legal reports whether event e is legal in state s.
func Legal(s State, e Event) bool {
	_, ok := transitions[s][e]
	return ok
}

// States returns all states, in declaration order.
func States() []State {
	out := make([]State, numStates)
	for i := range out {
		out[i] = State(i)
	}
	return out
}

// Events returns all events, in declaration order.
func Events() []Event {
	out := make([]Event, numEvents)
	for i := range out {
		out[i] = Event(i)
	}
	return out
}

// Transition is one recorded machine step.
type Transition struct {
	From  State
	Event Event
	To    State
	// At is when the step was applied; observers and the tracing layer
	// use it to attribute lifecycle edges to migration phases.
	At time.Time
}

// Observer receives every successful transition of a Machine, in step
// order — the hook the observability layer uses to count and log
// lifecycle edges. Observers run synchronously on the stepping
// goroutine, outside the machine's lock, and must not call back into
// the machine.
type Observer func(Transition)

// Machine is a concurrency-safe instance of the state machine with history,
// one per connection endpoint.
type Machine struct {
	mu       sync.Mutex
	state    State
	history  []Transition
	observer Observer
	// maxHistory bounds the retained history.
	maxHistory int
}

// NewMachine returns a machine starting in the given state (Closed for
// fresh connections).
func NewMachine(start State) *Machine {
	return &Machine{state: start, maxHistory: 128}
}

// State returns the current state.
func (m *Machine) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// SetObserver installs the machine's transition observer (nil to
// remove). It only affects subsequent steps.
func (m *Machine) SetObserver(o Observer) {
	m.mu.Lock()
	m.observer = o
	m.mu.Unlock()
}

// Step applies event e, returning the new state or an error leaving the
// state unchanged. On success the observer, if any, is invoked with the
// transition after the state is updated.
func (m *Machine) Step(e Event) (State, error) {
	m.mu.Lock()
	to, err := Next(m.state, e)
	if err != nil {
		from := m.state
		m.mu.Unlock()
		return from, err
	}
	tr := Transition{From: m.state, Event: e, To: to, At: time.Now()}
	m.history = append(m.history, tr)
	if len(m.history) > m.maxHistory {
		m.history = m.history[len(m.history)-m.maxHistory:]
	}
	m.state = to
	obs := m.observer
	m.mu.Unlock()
	if obs != nil {
		obs(tr)
	}
	return to, nil
}

// In reports whether the current state is one of the given states.
func (m *Machine) In(states ...State) bool {
	cur := m.State()
	for _, s := range states {
		if cur == s {
			return true
		}
	}
	return false
}

// History returns a copy of the recorded transitions, oldest first.
func (m *Machine) History() []Transition {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Transition, len(m.history))
	copy(out, m.history)
	return out
}
