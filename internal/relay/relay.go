// Package relay implements a TURN-like rendezvous relay for transport
// connections between hosts that cannot dial each other directly (both
// behind address-restricted NATs, or a firewalled path). Both sides make
// *outbound* connections to the relay; the relay matches the two legs and
// then blindly pipes bytes between them.
//
// Trust model: the relay is untrusted infrastructure. It sees only what a
// NAT'd router would see — the transport handshake hellos and, on
// encrypted sessions, AEAD ciphertext records. It cannot read stream
// plaintext, forge frames (the transcript tags and record MACs are keyed
// by the end-to-end DH exchange it is not part of), or splice a
// connection to the wrong peer without the handshake failing on both
// ends. A malicious relay can only do what any middlebox can: drop or
// delay bytes, which the resume machinery already survives.
//
// Wire protocol (one ASCII line per leg before the blind pipe starts):
//
//	callee  → relay:  "NR REG <advertised-addr>\n"   (persistent leg)
//	relay   → callee: "OK\n", then "DIAL <token>\n" per inbound caller
//	callee  → relay:  "NR ACPT <token>\n"            (fresh leg per call)
//	caller  → relay:  "NR CONN <advertised-addr>\n"  (fresh leg per call)
//	relay   → both:   "OK\n" (or "ERR <reason>\n"), then raw bytes
package relay

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// DialFn is the dial shape shared with transport.Config.Dial, so a relay
// leg can reuse whatever dialer (and fault injection) the transport uses.
type DialFn func(addr string, timeout time.Duration) (net.Conn, error)

// maxLine bounds one control line; addresses and tokens are short.
const maxLine = 256

// ErrRelayRefused reports the relay's ERR answer to a CONN or ACPT.
var ErrRelayRefused = errors.New("relay: refused")

// readLine reads one \n-terminated control line directly from conn, one
// byte at a time — deliberately unbuffered, so not a single byte beyond
// the line is consumed and the blind pipe that follows starts exactly at
// the first payload byte.
func readLine(conn net.Conn) (string, error) {
	var b [1]byte
	line := make([]byte, 0, 64)
	for len(line) < maxLine {
		if _, err := io.ReadFull(conn, b[:]); err != nil {
			return "", err
		}
		if b[0] == '\n' {
			return string(line), nil
		}
		line = append(line, b[0])
	}
	return "", fmt.Errorf("relay: control line exceeds %d bytes", maxLine)
}

func writeLine(conn net.Conn, line string) error {
	_, err := io.WriteString(conn, line+"\n")
	return err
}

// newToken mints an unguessable rendezvous token.
func newToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// Server is a running relay listener.
type Server struct {
	ln   net.Listener
	logf func(format string, args ...any)
	// matchTimeout bounds how long a CONN leg waits for the callee's ACPT.
	matchTimeout time.Duration
	// done unblocks in-flight rendezvous waits when the server closes.
	done chan struct{}

	mu sync.Mutex
	// regs maps an advertised address to its callee's registration leg.
	regs map[string]net.Conn
	// pending maps a rendezvous token to the channel the waiting CONN leg
	// receives its matched ACPT leg on.
	pending map[string]chan net.Conn
	// active holds every accepted leg — registration, rendezvous, and
	// spliced alike — so Close can sever them all.
	active map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// trackedConn removes itself from the server's active set when closed, so
// the set only holds live legs.
type trackedConn struct {
	net.Conn
	s *Server
}

func (c *trackedConn) Close() error {
	c.s.mu.Lock()
	delete(c.s.active, c)
	c.s.mu.Unlock()
	return c.Conn.Close()
}

func (c *trackedConn) CloseWrite() error {
	if cw, ok := c.Conn.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return errors.New("relay: conn does not support CloseWrite")
}

// track wraps an accepted leg into the active set (or closes it outright
// when the server is already shutting down).
func (s *Server) track(conn net.Conn) net.Conn {
	tc := &trackedConn{Conn: conn, s: s}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return nil
	}
	s.active[tc] = struct{}{}
	s.mu.Unlock()
	return tc
}

// New starts a relay server listening on addr ("host:0" picks a port).
func New(addr string, logf func(format string, args ...any)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		ln:           ln,
		logf:         logf,
		matchTimeout: 10 * time.Second,
		done:         make(chan struct{}),
		regs:         make(map[string]net.Conn),
		pending:      make(map[string]chan net.Conn),
		active:       make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the relay's listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Registrations returns how many callees currently hold a registration
// leg (debug surface).
func (s *Server) Registrations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.regs)
}

// Close stops the relay. Spliced connections in flight are severed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	legs := make([]net.Conn, 0, len(s.active))
	for c := range s.active {
		legs = append(legs, c)
	}
	s.mu.Unlock()
	close(s.done)
	err := s.ln.Close()
	for _, c := range legs {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if conn = s.track(conn); conn == nil {
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle classifies one inbound leg by its first control line.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	conn.SetReadDeadline(time.Now().Add(s.matchTimeout))
	line, err := readLine(conn)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if !strings.HasPrefix(line, "NR ") {
		writeLine(conn, "ERR bad-hello")
		conn.Close()
		return
	}
	verb, arg, _ := strings.Cut(strings.TrimPrefix(line, "NR "), " ")
	switch verb {
	case "REG":
		s.handleReg(conn, arg)
	case "ACPT":
		s.handleAcpt(conn, arg)
	case "CONN":
		s.handleConn(conn, arg)
	default:
		writeLine(conn, "ERR bad-verb")
		conn.Close()
	}
}

// handleReg installs a callee's persistent registration leg. A
// re-registration for the same address replaces the old leg (the callee
// redialed after a blip).
func (s *Server) handleReg(conn net.Conn, addr string) {
	if addr == "" {
		writeLine(conn, "ERR bad-addr")
		conn.Close()
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	old := s.regs[addr]
	s.regs[addr] = conn
	s.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if writeLine(conn, "OK") != nil {
		s.dropReg(addr, conn)
		return
	}
	s.logf("relay: %s registered by %s", addr, conn.RemoteAddr())
	// Block reading the leg: the callee never writes again, so the read
	// returning means the leg died and the registration is gone.
	var buf [64]byte
	for {
		if _, err := conn.Read(buf[:]); err != nil {
			s.dropReg(addr, conn)
			return
		}
	}
}

func (s *Server) dropReg(addr string, conn net.Conn) {
	s.mu.Lock()
	if s.regs[addr] == conn {
		delete(s.regs, addr)
	}
	s.mu.Unlock()
	conn.Close()
}

// handleAcpt matches a callee's fresh leg to the CONN leg waiting on its
// token.
func (s *Server) handleAcpt(conn net.Conn, token string) {
	s.mu.Lock()
	ch := s.pending[token]
	delete(s.pending, token)
	s.mu.Unlock()
	if ch == nil {
		writeLine(conn, "ERR unknown-token")
		conn.Close()
		return
	}
	ch <- conn
}

// handleConn serves a caller: ask the callee (via its registration leg)
// to call in, wait for the matched ACPT leg, then splice.
func (s *Server) handleConn(conn net.Conn, target string) {
	s.mu.Lock()
	reg := s.regs[target]
	s.mu.Unlock()
	if reg == nil {
		writeLine(conn, "ERR no-registration")
		conn.Close()
		return
	}
	token, err := newToken()
	if err != nil {
		writeLine(conn, "ERR internal")
		conn.Close()
		return
	}
	ch := make(chan net.Conn, 1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.pending[token] = ch
	s.mu.Unlock()
	abort := func(reason string) {
		s.mu.Lock()
		delete(s.pending, token)
		s.mu.Unlock()
		// A racing ACPT may already be in the channel; sever it.
		select {
		case c := <-ch:
			c.Close()
		default:
		}
		writeLine(conn, "ERR "+reason)
		conn.Close()
	}
	if err := writeLine(reg, "DIAL "+token); err != nil {
		abort("callee-gone")
		return
	}
	timer := time.NewTimer(s.matchTimeout)
	defer timer.Stop()
	select {
	case acpt := <-ch:
		if writeLine(acpt, "OK") != nil || writeLine(conn, "OK") != nil {
			acpt.Close()
			conn.Close()
			return
		}
		s.logf("relay: spliced %s -> %s", conn.RemoteAddr(), target)
		s.splice(conn, acpt)
	case <-timer.C:
		abort("match-timeout")
	case <-s.done:
		abort("relay-closed")
	}
}

// splice blindly pipes bytes between the two matched legs until either
// side ends; EOF propagates as a half-close so orderly shutdown survives
// the relay hop.
func (s *Server) splice(a, b net.Conn) {
	var wg sync.WaitGroup
	wg.Add(2)
	pipe := func(dst, src net.Conn) {
		defer wg.Done()
		_, err := io.Copy(dst, src)
		if err == nil {
			if cw, ok := dst.(interface{ CloseWrite() error }); ok {
				cw.CloseWrite()
				return
			}
		}
		a.Close()
		b.Close()
	}
	go pipe(a, b)
	pipe(b, a)
	wg.Wait()
	a.Close()
	b.Close()
}

// Connect runs the caller's half of the rendezvous on an already-dialed
// relay leg: request target, wait for the relay's OK. On success the
// returned error is nil and conn is ready to carry the transport
// handshake; on failure conn is closed.
func Connect(conn net.Conn, target string, timeout time.Duration) error {
	conn.SetDeadline(time.Now().Add(timeout))
	if err := writeLine(conn, "NR CONN "+target); err != nil {
		conn.Close()
		return err
	}
	line, err := readLine(conn)
	if err != nil {
		conn.Close()
		return err
	}
	if line != "OK" {
		conn.Close()
		return fmt.Errorf("%w: %s", ErrRelayRefused, strings.TrimPrefix(line, "ERR "))
	}
	conn.SetDeadline(time.Time{})
	return nil
}

// DialVia dials the relay with dial and rendezvouses with target — the
// one-call form of the caller's side.
func DialVia(dial DialFn, relayAddr, target string, timeout time.Duration) (net.Conn, error) {
	conn, err := dial(relayAddr, timeout)
	if err != nil {
		return nil, err
	}
	if err := Connect(conn, target, timeout); err != nil {
		return nil, err
	}
	return conn, nil
}
