package relay

import (
	"net"
	"strings"
	"sync"
	"time"
)

// Client maintains a callee's registration with a relay: a persistent
// outbound leg the relay uses to request call-ins. Each DIAL request is
// answered with a fresh outbound leg that, once matched, is handed to the
// Handle callback exactly like an inbound connection from a listener —
// the transport layer cannot tell the difference, which is the point.
type Client struct {
	cfg ClientConfig

	done chan struct{}
	wg   sync.WaitGroup

	mu         sync.Mutex
	registered bool
}

// ClientConfig parameterises a Client.
type ClientConfig struct {
	// RelayAddr is the relay server to register with.
	RelayAddr string
	// Advertise is the address peers name when asking the relay for this
	// host — the same advertised redirector address transport hellos carry.
	Advertise string
	// Dial opens relay legs; nil means net.DialTimeout.
	Dial DialFn
	// Handle receives each matched call-in leg; it must not block forever
	// (the transport handshake it runs is deadline-bounded). Required.
	Handle func(net.Conn)
	// Logf logs relay-client events; nil discards.
	Logf func(format string, args ...any)
	// DialTimeout bounds each leg's dial + rendezvous; 0 means 10s.
	DialTimeout time.Duration
	// RedialBase/RedialCap bound the re-registration backoff after the
	// registration leg dies; 0 means 250ms / 5s.
	RedialBase, RedialCap time.Duration
}

// NewClient starts a client that keeps (re-)registering with the relay
// until Close.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.RedialBase <= 0 {
		cfg.RedialBase = 250 * time.Millisecond
	}
	if cfg.RedialCap <= 0 {
		cfg.RedialCap = 5 * time.Second
	}
	c := &Client{cfg: cfg, done: make(chan struct{})}
	c.wg.Add(1)
	go c.run()
	return c
}

// Registered reports whether the registration leg is currently live.
func (c *Client) Registered() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.registered
}

// Close stops the client and severs its registration leg.
func (c *Client) Close() {
	c.mu.Lock()
	select {
	case <-c.done:
		c.mu.Unlock()
		return
	default:
	}
	close(c.done)
	c.mu.Unlock()
	c.wg.Wait()
}

// run keeps one registration leg alive, with capped backoff between
// attempts.
func (c *Client) run() {
	defer c.wg.Done()
	backoff := c.cfg.RedialBase
	for {
		select {
		case <-c.done:
			return
		default:
		}
		if err := c.register(); err != nil {
			c.cfg.Logf("relay client: registration with %s failed: %v", c.cfg.RelayAddr, err)
		} else {
			// The leg was live; start the backoff over.
			backoff = c.cfg.RedialBase
		}
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-c.done:
			timer.Stop()
			return
		}
		if backoff *= 2; backoff > c.cfg.RedialCap {
			backoff = c.cfg.RedialCap
		}
	}
}

// register dials the relay, registers, and serves DIAL requests until the
// leg dies or the client closes. A nil error means the leg was accepted
// and served for a while; an error means the attempt failed outright.
func (c *Client) register() error {
	conn, err := c.cfg.Dial(c.cfg.RelayAddr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	// Sever the leg when the client closes, so the blocking readLine ends.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-c.done:
			conn.Close()
		case <-stop:
		}
	}()
	conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	if err := writeLine(conn, "NR REG "+c.cfg.Advertise); err != nil {
		conn.Close()
		return err
	}
	line, err := readLine(conn)
	if err != nil || line != "OK" {
		conn.Close()
		if err == nil {
			err = ErrRelayRefused
		}
		return err
	}
	conn.SetDeadline(time.Time{})
	c.setRegistered(true)
	defer c.setRegistered(false)
	c.cfg.Logf("relay client: %s registered with %s", c.cfg.Advertise, c.cfg.RelayAddr)
	for {
		line, err := readLine(conn)
		if err != nil {
			conn.Close()
			return nil
		}
		if token, ok := strings.CutPrefix(line, "DIAL "); ok {
			c.wg.Add(1)
			go c.callIn(token)
		}
	}
}

func (c *Client) setRegistered(v bool) {
	c.mu.Lock()
	c.registered = v
	c.mu.Unlock()
}

// callIn answers one DIAL request: a fresh leg, the ACPT rendezvous, and
// the matched connection handed over as if it had been accepted locally.
func (c *Client) callIn(token string) {
	defer c.wg.Done()
	conn, err := c.cfg.Dial(c.cfg.RelayAddr, c.cfg.DialTimeout)
	if err != nil {
		c.cfg.Logf("relay client: call-in dial failed: %v", err)
		return
	}
	conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	if err := writeLine(conn, "NR ACPT "+token); err != nil {
		conn.Close()
		return
	}
	line, err := readLine(conn)
	if err != nil || line != "OK" {
		c.cfg.Logf("relay client: call-in rendezvous failed: %v (%q)", err, line)
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	c.cfg.Handle(conn)
}
