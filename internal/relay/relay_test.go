package relay

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func tcpDial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

func waitRegistered(t *testing.T, c *Client) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !c.Registered() {
		if time.Now().After(deadline) {
			t.Fatal("client never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSpliceBidirectional proves the full rendezvous: a registered callee
// receives a caller's leg, and bytes flow both ways through the blind pipe
// with half-close (CloseWrite) surviving the relay hop.
func TestSpliceBidirectional(t *testing.T) {
	srv, err := New("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	accepted := make(chan net.Conn, 1)
	cli := NewClient(ClientConfig{
		RelayAddr: srv.Addr(),
		Advertise: "callee-1",
		Dial:      tcpDial,
		Handle:    func(c net.Conn) { accepted <- c },
		Logf:      t.Logf,
	})
	defer cli.Close()
	waitRegistered(t, cli)

	caller, err := DialVia(tcpDial, srv.Addr(), "callee-1", 5*time.Second)
	if err != nil {
		t.Fatalf("DialVia: %v", err)
	}
	defer caller.Close()
	var callee net.Conn
	select {
	case callee = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("callee never received the matched leg")
	}
	defer callee.Close()

	// Caller -> callee, then a half-close; the callee must still be able
	// to answer on its own write half.
	if _, err := caller.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if cw, ok := caller.(interface{ CloseWrite() error }); ok {
		cw.CloseWrite()
	} else {
		t.Fatal("caller leg does not support CloseWrite")
	}
	got, err := io.ReadAll(callee)
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("callee read %q, %v; want \"hello\"", got, err)
	}
	if _, err := callee.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	callee.Close()
	back, err := io.ReadAll(caller)
	if err != nil || !bytes.Equal(back, []byte("world")) {
		t.Fatalf("caller read %q, %v; want \"world\"", back, err)
	}
}

// TestRefusesUnknownTarget proves a CONN for an unregistered address is
// answered with ERR, surfaced as ErrRelayRefused.
func TestRefusesUnknownTarget(t *testing.T) {
	srv, err := New("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := DialVia(tcpDial, srv.Addr(), "nobody", 2*time.Second); !errors.Is(err, ErrRelayRefused) {
		t.Fatalf("DialVia to unregistered target: got %v, want ErrRelayRefused", err)
	}
}

// TestClientReregisters proves the callee client survives its registration
// leg dying: a usurping REG replaces (and severs) the old leg, and the
// client re-registers after its backoff.
func TestClientReregisters(t *testing.T) {
	srv, err := New("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewClient(ClientConfig{
		RelayAddr:  srv.Addr(),
		Advertise:  "callee-r",
		Dial:       tcpDial,
		Handle:     func(c net.Conn) { c.Close() },
		Logf:       t.Logf,
		RedialBase: 20 * time.Millisecond,
	})
	defer cli.Close()
	waitRegistered(t, cli)

	// Usurp the registration; the relay closes the client's old leg.
	usurper, err := tcpDial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeLine(usurper, "NR REG callee-r"); err != nil {
		t.Fatal(err)
	}
	if line, err := readLine(usurper); err != nil || line != "OK" {
		t.Fatalf("usurper REG: %q, %v", line, err)
	}

	// The client notices the dead leg and re-registers, replacing the
	// usurper in turn.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cli.Registered() {
			// Registered again — but make sure it is the *new* leg, not a
			// stale flag: the usurper's leg must have been replaced/closed.
			usurper.SetReadDeadline(time.Now().Add(2 * time.Second))
			var b [1]byte
			if _, err := usurper.Read(b[:]); err != nil {
				break // usurper severed: the client's fresh leg won
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("client never re-registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	usurper.Close()
	if n := srv.Registrations(); n != 1 {
		t.Fatalf("registrations = %d, want 1", n)
	}
}

// TestConcurrentCalls proves independent rendezvous: several callers reach
// the same callee at once and each pipe carries its own bytes.
func TestConcurrentCalls(t *testing.T) {
	srv, err := New("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewClient(ClientConfig{
		RelayAddr: srv.Addr(),
		Advertise: "callee-c",
		Dial:      tcpDial,
		Handle: func(c net.Conn) {
			// Echo server: mirror whatever the caller sends.
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		},
		Logf: t.Logf,
	})
	defer cli.Close()
	waitRegistered(t, cli)

	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := DialVia(tcpDial, srv.Addr(), "callee-c", 5*time.Second)
			if err != nil {
				errs <- fmt.Errorf("caller %d: %v", i, err)
				return
			}
			defer conn.Close()
			msg := []byte(fmt.Sprintf("payload-%d", i))
			if _, err := conn.Write(msg); err != nil {
				errs <- fmt.Errorf("caller %d write: %v", i, err)
				return
			}
			got := make([]byte, len(msg))
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, err := io.ReadFull(conn, got); err != nil {
				errs <- fmt.Errorf("caller %d read: %v", i, err)
				return
			}
			if !bytes.Equal(got, msg) {
				errs <- fmt.Errorf("caller %d echoed %q, want %q", i, got, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRelayedLegIsOpaque proves the relay sees only what the wire carries:
// the splice starts at the first payload byte (readLine consumed nothing
// beyond the control line), so a byte-exact round trip survives.
func TestRelayedLegIsOpaque(t *testing.T) {
	srv, err := New("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	accepted := make(chan net.Conn, 1)
	cli := NewClient(ClientConfig{
		RelayAddr: srv.Addr(),
		Advertise: "callee-o",
		Dial:      tcpDial,
		Handle:    func(c net.Conn) { accepted <- c },
		Logf:      t.Logf,
	})
	defer cli.Close()
	waitRegistered(t, cli)

	caller, err := DialVia(tcpDial, srv.Addr(), "callee-o", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()
	callee := <-accepted
	defer callee.Close()

	// A binary blob that embeds line breaks and the protocol's own verbs:
	// none of it may be interpreted or eaten by the relay.
	blob := []byte("NR CONN x\nOK\nDIAL y\n\x00\x01\xfe\xff-binary-tail")
	if _, err := caller.Write(blob); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(blob))
	callee.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(callee, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("relay corrupted the stream: got %q want %q", got, blob)
	}
}
