// Package metrics provides the lightweight phase timers and aggregate
// statistics used to reproduce the paper's cost breakdowns: Table 1 (open
// and close latency), Figure 8 (where the time of a secure open goes), and
// the suspend/resume costs feeding the Section 5 model.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase names one stage of a composite operation. The open-connection
// phases mirror Figure 8 of the paper.
type Phase string

// Phases of a NapletSocket open, per Figure 8.
const (
	// PhaseManagement covers connection bookkeeping: id allocation, agent
	// location lookup, connection table updates.
	PhaseManagement Phase = "management"
	// PhaseHandshaking covers the control-channel message exchanges.
	PhaseHandshaking Phase = "handshaking"
	// PhaseSecurityCheck covers authentication and authorization.
	PhaseSecurityCheck Phase = "security-check"
	// PhaseKeyExchange covers Diffie-Hellman key generation and derivation.
	PhaseKeyExchange Phase = "key-exchange"
	// PhaseOpenSocket covers TCP dial plus redirector handoff.
	PhaseOpenSocket Phase = "open-socket"
)

// Phases of suspend and resume, parallel to the Figure 8 open breakdown;
// they make the Section 5 model inputs observable on a live system.
const (
	// PhaseDrain covers the pre-suspend drain: flush marker, half-close,
	// and capturing in-flight frames into the migrating buffer.
	PhaseDrain Phase = "drain"
	// PhaseSerialize covers packing suspended connection state (buffers,
	// send log, keys) into the migration bundle.
	PhaseSerialize Phase = "serialize"
)

// OpenPhases lists the Figure 8 phases in presentation order.
func OpenPhases() []Phase {
	return []Phase{PhaseManagement, PhaseHandshaking, PhaseSecurityCheck, PhaseKeyExchange, PhaseOpenSocket}
}

// SuspendPhases lists the phases of a locally issued suspend in
// presentation order: the SUS control exchange, the data-socket drain,
// and bundle serialization.
func SuspendPhases() []Phase {
	return []Phase{PhaseHandshaking, PhaseDrain, PhaseSerialize}
}

// ResumePhases lists the phases of a resume in presentation order: the
// location re-lookup, the RES control exchange, and the new data
// socket's dial + handoff + retransmission.
func ResumePhases() []Phase {
	return []Phase{PhaseManagement, PhaseHandshaking, PhaseOpenSocket}
}

// Breakdown accumulates elapsed time per phase. It is safe for concurrent
// use.
type Breakdown struct {
	mu sync.Mutex
	d  map[Phase]time.Duration
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{d: make(map[Phase]time.Duration)}
}

// Add accumulates d into phase.
func (b *Breakdown) Add(p Phase, d time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.d[p] += d
	b.mu.Unlock()
}

// Time runs fn, charging its elapsed time to phase.
func (b *Breakdown) Time(p Phase, fn func()) {
	start := time.Now()
	fn()
	b.Add(p, time.Since(start))
}

// Get returns the accumulated time of one phase.
func (b *Breakdown) Get(p Phase) time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.d[p]
}

// Total returns the sum over all phases.
func (b *Breakdown) Total() time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var t time.Duration
	for _, d := range b.d {
		t += d
	}
	return t
}

// Snapshot returns a copy of the per-phase durations.
func (b *Breakdown) Snapshot() map[Phase]time.Duration {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[Phase]time.Duration, len(b.d))
	for p, d := range b.d {
		out[p] = d
	}
	return out
}

// String renders phases sorted by descending share.
func (b *Breakdown) String() string {
	snap := b.Snapshot()
	type row struct {
		p Phase
		d time.Duration
	}
	rows := make([]row, 0, len(snap))
	for p, d := range snap {
		rows = append(rows, row{p, d})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	total := b.Total()
	var sb strings.Builder
	for i, r := range rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.d) / float64(total)
		}
		fmt.Fprintf(&sb, "%s=%v (%.0f%%)", r.p, r.d, pct)
	}
	return sb.String()
}

// Series accumulates scalar samples and reports summary statistics. It is
// safe for concurrent use. Min and max are tracked incrementally, and
// Percentile sorts at most once per batch of Adds (the sorted copy is
// cached and reused until the series changes).
type Series struct {
	mu       sync.Mutex
	v        []float64
	min, max float64
	// sorted caches a sorted copy of v; nil when stale.
	sorted []float64
}

// NewSeries returns an empty series.
func NewSeries() *Series { return &Series{} }

// Add appends a sample.
func (s *Series) Add(x float64) {
	s.mu.Lock()
	if len(s.v) == 0 || x < s.min {
		s.min = x
	}
	if len(s.v) == 0 || x > s.max {
		s.max = x
	}
	s.v = append(s.v, x)
	s.sorted = nil
	s.mu.Unlock()
}

// AddDuration appends a duration sample in milliseconds.
func (s *Series) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the sample count.
func (s *Series) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.v)
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.v) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.v {
		sum += x
	}
	return sum / float64(len(s.v))
}

// Stddev returns the sample standard deviation, or 0 for fewer than two
// samples.
func (s *Series) Stddev() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.v) < 2 {
		return 0
	}
	var sum float64
	for _, x := range s.v {
		sum += x
	}
	mean := sum / float64(len(s.v))
	var ss float64
	for _, x := range s.v {
		ss += (x - mean) * (x - mean)
	}
	return math.Sqrt(ss / float64(len(s.v)-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank,
// or 0 for an empty series.
func (s *Series) Percentile(p float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.v) == 0 {
		return 0
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	if s.sorted == nil {
		s.sorted = append([]float64(nil), s.v...)
		sort.Float64s(s.sorted)
	}
	rank := int(math.Ceil(p/100*float64(len(s.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.sorted[rank]
}

// Min returns the smallest sample, or 0 for an empty series.
func (s *Series) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.v) == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.v) == 0 {
		return 0
	}
	return s.max
}
