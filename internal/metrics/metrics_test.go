package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBreakdownAccumulates(t *testing.T) {
	b := NewBreakdown()
	b.Add(PhaseKeyExchange, 10*time.Millisecond)
	b.Add(PhaseKeyExchange, 5*time.Millisecond)
	b.Add(PhaseHandshaking, 2*time.Millisecond)
	if got := b.Get(PhaseKeyExchange); got != 15*time.Millisecond {
		t.Fatalf("key-exchange = %v", got)
	}
	if got := b.Total(); got != 17*time.Millisecond {
		t.Fatalf("total = %v", got)
	}
}

func TestBreakdownTime(t *testing.T) {
	b := NewBreakdown()
	b.Time(PhaseOpenSocket, func() { time.Sleep(time.Millisecond) })
	if b.Get(PhaseOpenSocket) < time.Millisecond {
		t.Fatalf("timed phase = %v", b.Get(PhaseOpenSocket))
	}
}

func TestNilBreakdownSafe(t *testing.T) {
	var b *Breakdown
	b.Add(PhaseManagement, time.Second)
	if b.Get(PhaseManagement) != 0 || b.Total() != 0 || b.Snapshot() != nil {
		t.Fatal("nil breakdown misbehaved")
	}
}

func TestBreakdownString(t *testing.T) {
	b := NewBreakdown()
	b.Add(PhaseKeyExchange, 80*time.Millisecond)
	b.Add(PhaseHandshaking, 20*time.Millisecond)
	s := b.String()
	if !strings.Contains(s, "key-exchange") || !strings.Contains(s, "80%") {
		t.Fatalf("String() = %q", s)
	}
	// Largest phase first.
	if strings.Index(s, "key-exchange") > strings.Index(s, "handshaking") {
		t.Fatalf("phases not sorted by share: %q", s)
	}
}

func TestBreakdownConcurrent(t *testing.T) {
	b := NewBreakdown()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Add(PhaseManagement, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := b.Get(PhaseManagement); got != 1600*time.Microsecond {
		t.Fatalf("concurrent total = %v", got)
	}
}

func TestOpenPhasesOrder(t *testing.T) {
	p := OpenPhases()
	if len(p) != 5 || p[0] != PhaseManagement || p[4] != PhaseOpenSocket {
		t.Fatalf("OpenPhases() = %v", p)
	}
}

func TestSeriesStats(t *testing.T) {
	s := NewSeries()
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	if got := s.Stddev(); math.Abs(got-2.138) > 0.01 {
		t.Fatalf("stddev = %v", got)
	}
	if got := s.Min(); got != 2 {
		t.Fatalf("min = %v", got)
	}
	if got := s.Max(); got != 9 {
		t.Fatalf("max = %v", got)
	}
	if got := s.Percentile(50); got != 4 {
		t.Fatalf("p50 = %v", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries()
	if s.Mean() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty series stats non-zero")
	}
}

func TestSeriesAddDuration(t *testing.T) {
	s := NewSeries()
	s.AddDuration(1500 * time.Microsecond)
	if got := s.Mean(); got != 1.5 {
		t.Fatalf("mean = %v ms, want 1.5", got)
	}
}

func TestSeriesPercentileBounds(t *testing.T) {
	s := NewSeries()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(-5); got != 1 {
		t.Fatalf("p<0 = %v", got)
	}
	if got := s.Percentile(200); got != 100 {
		t.Fatalf("p>100 = %v", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
}

func TestSeriesMinMaxIncremental(t *testing.T) {
	s := NewSeries()
	// Interleave reads and writes: min/max must stay exact without
	// resorting, including after negative samples.
	s.Add(5)
	if s.Min() != 5 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	s.Add(-2)
	s.Add(11)
	if s.Min() != -2 || s.Max() != 11 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	// A percentile read caches the sorted copy; a later Add must
	// invalidate it.
	if got := s.Percentile(50); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	s.Add(7)
	if got := s.Percentile(50); got != 5 {
		t.Fatalf("p50 after add = %v", got)
	}
	s.Add(100)
	if s.Max() != 100 || s.Percentile(100) != 100 {
		t.Fatalf("max after add = %v", s.Max())
	}
}

func TestSeriesPercentileCacheReuse(t *testing.T) {
	s := NewSeries()
	for i := 100; i > 0; i-- {
		s.Add(float64(i))
	}
	// Repeated percentile calls on an unchanged series agree with the
	// from-scratch nearest-rank answer.
	for _, p := range []float64{1, 25, 50, 75, 99} {
		want := s.Percentile(p)
		for i := 0; i < 3; i++ {
			if got := s.Percentile(p); got != want {
				t.Fatalf("p%v changed across calls: %v != %v", p, got, want)
			}
		}
	}
	if s.Percentile(50) != 50 || s.Percentile(1) != 1 {
		t.Fatalf("p50=%v p1=%v", s.Percentile(50), s.Percentile(1))
	}
}

func TestSuspendResumePhaseLists(t *testing.T) {
	if got := SuspendPhases(); len(got) != 3 || got[0] != PhaseHandshaking || got[1] != PhaseDrain || got[2] != PhaseSerialize {
		t.Fatalf("SuspendPhases() = %v", got)
	}
	if got := ResumePhases(); len(got) != 3 || got[0] != PhaseManagement || got[1] != PhaseHandshaking || got[2] != PhaseOpenSocket {
		t.Fatalf("ResumePhases() = %v", got)
	}
}
