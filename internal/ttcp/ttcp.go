// Package ttcp reimplements the Test-TCP (TTCP) measurement workload used
// in Section 4.3 of the paper: a sender pushes fixed-size messages as fast
// as possible to a sink, and throughput is computed at the receiver. The
// tool works over any byte stream, so the same workload runs over a plain
// TCP connection (the paper's Java Socket baseline) and over a NapletSocket
// connection, with or without agent migration in the background.
package ttcp

import (
	"errors"
	"fmt"
	"io"
	"time"
)

// Result is one measurement.
type Result struct {
	// Bytes is the payload volume transferred.
	Bytes int64
	// Elapsed is the wall-clock duration of the transfer (at the side that
	// produced the result).
	Elapsed time.Duration
	// MsgSize is the per-write message size used.
	MsgSize int
	// Ops is the number of I/O calls the measurement issued: Write calls on
	// the sender side, Read calls on the receiver side. With a coalescing
	// transport the receiver's ops per byte drops well below the sender's —
	// a cheap external view of how well small writes batch.
	Ops int64
}

// Mbps returns throughput in megabits per second (the paper's Figure 9/10
// unit).
func (r Result) Mbps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / 1e6 / r.Elapsed.Seconds()
}

// MBps returns throughput in megabytes per second.
func (r Result) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// String renders the result in TTCP's habitual form.
func (r Result) String() string {
	return fmt.Sprintf("%d bytes in %.3fs = %.2f Mbit/s (msg %dB, %d ops)",
		r.Bytes, r.Elapsed.Seconds(), r.Mbps(), r.MsgSize, r.Ops)
}

// Send writes total bytes to w in msgSize chunks and returns the sender
// side measurement.
func Send(w io.Writer, msgSize int, total int64) (Result, error) {
	if msgSize <= 0 {
		return Result{}, errors.New("ttcp: message size must be positive")
	}
	if total <= 0 {
		return Result{}, errors.New("ttcp: total bytes must be positive")
	}
	buf := make([]byte, msgSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	start := time.Now()
	var sent, ops int64
	for sent < total {
		chunk := buf
		if rem := total - sent; rem < int64(msgSize) {
			chunk = buf[:rem]
		}
		n, err := w.Write(chunk)
		sent += int64(n)
		ops++
		if err != nil {
			return Result{Bytes: sent, Elapsed: time.Since(start), MsgSize: msgSize, Ops: ops}, err
		}
	}
	return Result{Bytes: sent, Elapsed: time.Since(start), MsgSize: msgSize, Ops: ops}, nil
}

// Receive reads total bytes from r and returns the receiver-side
// measurement — the number the paper reports.
func Receive(r io.Reader, msgSize int, total int64) (Result, error) {
	if msgSize <= 0 {
		msgSize = 64 << 10
	}
	buf := make([]byte, msgSize)
	start := time.Now()
	var got, ops int64
	for got < total {
		want := int64(len(buf))
		if rem := total - got; rem < want {
			want = rem
		}
		n, err := r.Read(buf[:want])
		got += int64(n)
		ops++
		if err != nil {
			if err == io.EOF && got == total {
				break
			}
			return Result{Bytes: got, Elapsed: time.Since(start), MsgSize: msgSize, Ops: ops}, err
		}
	}
	return Result{Bytes: got, Elapsed: time.Since(start), MsgSize: msgSize, Ops: ops}, nil
}

// Run drives one full measurement over an established pair: the sender
// writes total bytes in msgSize messages on w while the receiver drains r;
// the receiver-side result is returned.
func Run(w io.Writer, r io.Reader, msgSize int, total int64) (Result, error) {
	errs := make(chan error, 1)
	go func() {
		_, err := Send(w, msgSize, total)
		errs <- err
	}()
	res, rerr := Receive(r, msgSize, total)
	serr := <-errs
	if rerr != nil {
		return res, rerr
	}
	return res, serr
}

// EffectiveResult extends Result with the migration bookkeeping of the
// Figure 10 experiments: the elapsed time includes the service periods and
// the migrations, so Mbps is the paper's "effective throughput".
type EffectiveResult struct {
	Result
	// Hops is the number of agent migrations that occurred during the
	// measurement.
	Hops int
}

// String renders the effective result.
func (r EffectiveResult) String() string {
	return fmt.Sprintf("%s over %d hops", r.Result, r.Hops)
}
