package ttcp

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func TestSendReceiveOverPipe(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	const total = 1 << 20
	done := make(chan Result, 1)
	go func() {
		res, err := Receive(c2, 32<<10, total)
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	sres, err := Send(c1, 8<<10, total)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Bytes != total {
		t.Fatalf("sent %d bytes", sres.Bytes)
	}
	rres := <-done
	if rres.Bytes != total {
		t.Fatalf("received %d bytes", rres.Bytes)
	}
	if rres.Mbps() <= 0 {
		t.Fatalf("throughput = %v", rres.Mbps())
	}
}

func TestRun(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	res, err := Run(c1, c2, 4<<10, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 256<<10 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
}

func TestPartialTailMessage(t *testing.T) {
	var buf bytes.Buffer
	res, err := Send(&buf, 1000, 2500) // 2 full messages + 500B tail
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 2500 || buf.Len() != 2500 {
		t.Fatalf("bytes = %d, buffered %d", res.Bytes, buf.Len())
	}
}

func TestReceiveEOFAtExactEnd(t *testing.T) {
	data := bytes.Repeat([]byte{1}, 1234)
	res, err := Receive(bytes.NewReader(data), 100, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 1234 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
}

func TestReceiveShortStreamErrors(t *testing.T) {
	data := bytes.Repeat([]byte{1}, 100)
	_, err := Receive(bytes.NewReader(data), 64, 500)
	if err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestInvalidArgs(t *testing.T) {
	if _, err := Send(io.Discard, 0, 100); err == nil {
		t.Error("zero message size accepted")
	}
	if _, err := Send(io.Discard, 100, 0); err == nil {
		t.Error("zero total accepted")
	}
}

func TestResultUnits(t *testing.T) {
	r := Result{Bytes: 1e6, Elapsed: time.Second, MsgSize: 1024}
	if got := r.Mbps(); got != 8 {
		t.Fatalf("Mbps = %v, want 8", got)
	}
	if got := r.MBps(); got != 1 {
		t.Fatalf("MBps = %v, want 1", got)
	}
	if (Result{}).Mbps() != 0 {
		t.Fatal("zero result Mbps not 0")
	}
	if !strings.Contains(r.String(), "Mbit/s") {
		t.Fatalf("String() = %q", r.String())
	}
	er := EffectiveResult{Result: r, Hops: 3}
	if !strings.Contains(er.String(), "3 hops") {
		t.Fatalf("String() = %q", er.String())
	}
}
