// Package behaviors provides a small library of ready-made mobile agent
// behaviours used by the example programs and the napletd daemon: an echo
// server, a pinging client, a roaming client that keeps its connection
// across migrations, and mailbox-based counterparts. Every napletd process
// of a deployment must register the same behaviours (RegisterAll), since
// agents are shipped between processes by behaviour type.
package behaviors

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"naplet"
)

// RegisterAll registers every behaviour of this package with a network's
// registry (or any registry).
func RegisterAll(reg interface{ Register(string, naplet.Behavior) }) {
	reg.Register("behaviors.Echo", &Echo{})
	reg.Register("behaviors.Pinger", &Pinger{})
	reg.Register("behaviors.Roamer", &Roamer{})
	reg.Register("behaviors.MailLogger", &MailLogger{})
	reg.Register("behaviors.Streamer", &Streamer{})
	reg.Register("behaviors.Sink", &Sink{})
}

// Echo is a stationary agent that accepts NapletSocket connections and
// echoes every message back. It serves until its host shuts down. MaxConns
// bounds how many connections it serves (0 = unlimited).
type Echo struct {
	MaxConns int
}

// Run implements naplet.Behavior.
func (e *Echo) Run(ctx *naplet.Context) error {
	ss, err := naplet.Listen(ctx)
	if err != nil {
		return err
	}
	ctx.Logf("echo: listening")
	var served sync.WaitGroup
	for n := 0; e.MaxConns == 0 || n < e.MaxConns; n++ {
		conn, err := ss.Accept(ctx.StdContext())
		if err != nil {
			if errors.Is(err, naplet.ErrClosed) || ctx.StdContext().Err() != nil {
				break
			}
			return err
		}
		served.Add(1)
		go func(conn *naplet.Socket) {
			defer served.Done()
			for {
				msg, err := conn.ReadMsg()
				if err != nil {
					return
				}
				if err := conn.WriteMsg(msg); err != nil {
					return
				}
			}
		}(conn)
	}
	// With a connection budget, serve every accepted connection to its end
	// (peer close) before terminating — termination closes our endpoints.
	served.Wait()
	return nil
}

// Pinger dials a target agent, exchanges Count messages, logs the
// round-trip times, and terminates.
type Pinger struct {
	Target string
	Count  int
	// IntervalMs paces the pings; zero means back-to-back.
	IntervalMs int
}

// Run implements naplet.Behavior.
func (p *Pinger) Run(ctx *naplet.Context) error {
	if p.Count <= 0 {
		p.Count = 5
	}
	conn, err := naplet.Dial(ctx, p.Target)
	if err != nil {
		return fmt.Errorf("pinger: dialing %s: %w", p.Target, err)
	}
	defer conn.Close()
	// One reused pacing timer for the whole run, not a fresh time.After
	// channel per iteration.
	var pace *time.Timer
	for i := 0; i < p.Count; i++ {
		start := time.Now()
		if err := conn.WriteMsg([]byte(fmt.Sprintf("ping-%d", i))); err != nil {
			return err
		}
		reply, err := conn.ReadMsg()
		if err != nil {
			return err
		}
		ctx.Logf("pinger: %s -> rtt %v", reply, time.Since(start).Round(time.Microsecond))
		if p.IntervalMs > 0 {
			interval := time.Duration(p.IntervalMs) * time.Millisecond
			if pace == nil {
				pace = time.NewTimer(interval)
				defer pace.Stop()
			} else {
				pace.Reset(interval)
			}
			select {
			case <-pace.C:
			case <-ctx.Done():
				return nil
			}
		}
	}
	return nil
}

// Roamer dials a target agent once, then walks an itinerary of docking
// addresses, exchanging MsgsPerHop messages with the target at every host
// over the same NapletSocket connection — the paper's headline scenario.
// The connection id is carried in the behaviour state and re-attached
// after each hop.
type Roamer struct {
	Target     string
	Docks      []string
	MsgsPerHop int
	// Conn carries the connection id across hops (managed by Run).
	Conn string
}

// Run implements naplet.Behavior.
func (r *Roamer) Run(ctx *naplet.Context) error {
	if r.MsgsPerHop <= 0 {
		r.MsgsPerHop = 3
	}
	var conn *naplet.Socket
	var err error
	if r.Conn == "" {
		if conn, err = naplet.Dial(ctx, r.Target); err != nil {
			return fmt.Errorf("roamer: dialing %s: %w", r.Target, err)
		}
		r.Conn = conn.ID().String()
	} else {
		id, perr := naplet.ParseConnID(r.Conn)
		if perr != nil {
			return perr
		}
		if conn, err = naplet.Attach(ctx, id); err != nil {
			return fmt.Errorf("roamer: re-attaching: %w", err)
		}
	}
	for i := 0; i < r.MsgsPerHop; i++ {
		msg := fmt.Sprintf("hop%d/%s #%d", ctx.Epoch(), ctx.HostName(), i)
		if err := conn.WriteMsg([]byte(msg)); err != nil {
			return err
		}
		reply, err := conn.ReadMsg()
		if err != nil {
			return err
		}
		ctx.Logf("roamer: echo %q", reply)
	}
	if len(r.Docks) == 0 {
		ctx.Logf("roamer: itinerary done, closing")
		return conn.Close()
	}
	next := r.Docks[0]
	r.Docks = r.Docks[1:]
	ctx.Logf("roamer: migrating to %s", next)
	return ctx.MigrateTo(next)
}

// Streamer dials a target agent and streams Count numbered messages to it,
// checkpointing its progress after every send. Message number i carries i
// as a big-endian uint64 in its first 8 bytes (padded to Size bytes), so
// the payload for any counter is reproducible. Because the checkpoint
// journals the send cursor Next atomically with the connection's stream
// state, a crash-restarted Streamer resends at most the one in-flight
// message — under the sequence number it already used, which the receiver
// deduplicates — and the receiver observes every counter exactly once.
type Streamer struct {
	Target string
	Count  int
	// Size pads each message to this many bytes (minimum 8).
	Size int
	// IntervalMs paces the stream; zero means back-to-back.
	IntervalMs int
	// Next is the next counter to send — the journaled progress cursor.
	Next uint64
	// Conn carries the connection id across migrations and restarts.
	Conn string
}

// Run implements naplet.Behavior.
func (s *Streamer) Run(ctx *naplet.Context) error {
	if s.Count <= 0 {
		s.Count = 100
	}
	if s.Size < 8 {
		s.Size = 8
	}
	var conn *naplet.Socket
	var err error
	if s.Conn == "" {
		if conn, err = naplet.Dial(ctx, s.Target); err != nil {
			return fmt.Errorf("streamer: dialing %s: %w", s.Target, err)
		}
		s.Conn = conn.ID().String()
		// Bind the connection id into the journal before the first send, so
		// a restart never redials a second connection.
		if err := ctx.Checkpoint(); err != nil {
			ctx.Logf("streamer: checkpoint: %v", err)
		}
	} else {
		id, perr := naplet.ParseConnID(s.Conn)
		if perr != nil {
			return perr
		}
		if conn, err = naplet.Attach(ctx, id); err != nil {
			return fmt.Errorf("streamer: re-attaching: %w", err)
		}
		ctx.Logf("streamer: resuming at message %d", s.Next)
	}
	var pace *time.Timer // reused across iterations; time.After would allocate one per message
	for s.Next < uint64(s.Count) {
		payload := make([]byte, s.Size)
		binary.BigEndian.PutUint64(payload, s.Next)
		if err := conn.WriteMsg(payload); err != nil {
			return fmt.Errorf("streamer: sending %d: %w", s.Next, err)
		}
		s.Next++
		if err := ctx.Checkpoint(); err != nil {
			ctx.Logf("streamer: checkpoint: %v", err)
		}
		if s.IntervalMs > 0 {
			interval := time.Duration(s.IntervalMs) * time.Millisecond
			if pace == nil {
				pace = time.NewTimer(interval)
				defer pace.Stop()
			} else {
				pace.Reset(interval)
			}
			select {
			case <-pace.C:
			case <-ctx.Done():
				return nil
			}
		}
	}
	ctx.Logf("streamer: stream of %d messages complete", s.Count)
	return conn.Close()
}

// Sink accepts one connection and reads numbered messages from it (the
// Streamer's wire format) until Expect arrive (0 = until the peer closes).
// An observer installed with SetObserver sees every delivery.
type Sink struct {
	Expect int
	Got    uint64

	// observe is a local (non-migrating, non-journaled) delivery hook; the
	// crash-recovery tests feed it into a trace recorder.
	observe func(seq uint64, payload []byte, fromBuffer bool)
}

// SetObserver installs a per-delivery hook. Call it before Launch; the hook
// does not survive migration or a journal restart.
func (s *Sink) SetObserver(fn func(seq uint64, payload []byte, fromBuffer bool)) {
	s.observe = fn
}

// Run implements naplet.Behavior.
func (s *Sink) Run(ctx *naplet.Context) error {
	ss, err := naplet.Listen(ctx)
	if err != nil {
		return err
	}
	ctx.Logf("sink: listening")
	conn, err := ss.Accept(ctx.StdContext())
	if err != nil {
		return err
	}
	if s.observe != nil {
		conn.SetObserver(s.observe)
	}
	for s.Expect == 0 || s.Got < uint64(s.Expect) {
		msg, err := conn.ReadMsg()
		if err != nil {
			if s.Expect == 0 && (errors.Is(err, naplet.ErrClosed) || ctx.StdContext().Err() != nil) {
				break
			}
			return fmt.Errorf("sink: after %d messages: %w", s.Got, err)
		}
		counter := uint64(0)
		if len(msg) >= 8 {
			counter = binary.BigEndian.Uint64(msg)
		}
		s.Got++
		// Consumption is externally visible progress too: checkpoint it so a
		// crash-restarted sink is not re-delivered messages it already read.
		if err := ctx.Checkpoint(); err != nil {
			ctx.Logf("sink: checkpoint: %v", err)
		}
		if counter%50 == 0 {
			ctx.Logf("sink: %d messages so far (counter %d)", s.Got, counter)
		}
	}
	ctx.Logf("sink: received %d messages", s.Got)
	return nil
}

// MailLogger drains its PostOffice mailbox, logging each message, until
// Expect messages arrive (0 = until the host shuts down).
type MailLogger struct {
	Expect int
	Got    int
}

// Run implements naplet.Behavior.
func (m *MailLogger) Run(ctx *naplet.Context) error {
	box, err := naplet.MailboxOf(ctx)
	if err != nil {
		return err
	}
	for m.Expect == 0 || m.Got < m.Expect {
		msg, err := box.Receive(ctx.StdContext())
		if err != nil {
			if ctx.StdContext().Err() != nil {
				return nil
			}
			return err
		}
		m.Got++
		ctx.Logf("mail from %s: %q", msg.From, msg.Body)
	}
	return nil
}
