package behaviors

import (
	"context"
	"testing"
	"time"

	"naplet"
)

func newNet(t *testing.T, hosts int, opts ...naplet.NetworkOption) *naplet.Network {
	t.Helper()
	nw := naplet.NewNetwork(opts...)
	t.Cleanup(func() { nw.Close() })
	RegisterAll(nw.Registry)
	for i := 0; i < hosts; i++ {
		if _, err := nw.AddHost(hostName(i)); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

func hostName(i int) string { return string(rune('a'+i)) + "-host" }

func await(t *testing.T, nw *naplet.Network, agents ...string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, a := range agents {
		if err := nw.Await(ctx, a); err != nil {
			t.Fatalf("awaiting %s: %v", a, err)
		}
	}
}

func TestEchoAndPinger(t *testing.T) {
	nw := newNet(t, 2)
	if err := nw.Node(hostName(0)).Launch("echoer", &Echo{MaxConns: 1}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Node(hostName(1)).Launch("pinger", &Pinger{Target: "echoer", Count: 4}); err != nil {
		t.Fatal(err)
	}
	await(t, nw, "pinger", "echoer")
}

func TestRoamerWalksItinerary(t *testing.T) {
	nw := newNet(t, 3)
	if err := nw.Node(hostName(0)).Launch("anchor", &Echo{MaxConns: 1}); err != nil {
		t.Fatal(err)
	}
	docks := []string{nw.DockOf(hostName(2)), nw.DockOf(hostName(1))}
	if err := nw.Node(hostName(1)).Launch("walker", &Roamer{Target: "anchor", Docks: docks, MsgsPerHop: 2}); err != nil {
		t.Fatal(err)
	}
	await(t, nw, "walker", "anchor")
	// The walker's trace in the location service shows 3 hops (launch + 2
	// migrations).
	tr := nw.Service.Trace("walker")
	if len(tr) != 3 {
		t.Fatalf("trace = %d entries, want 3", len(tr))
	}
}

func TestMailLoggerReceivesCount(t *testing.T) {
	nw := newNet(t, 2, naplet.WithPostOffices())
	if err := nw.Node(hostName(0)).Launch("logger", &MailLogger{Expect: 3}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Node(hostName(1)).Launch("writer", &mailWriter{To: "logger", N: 3}); err != nil {
		t.Fatal(err)
	}
	await(t, nw, "logger", "writer")
}

// mailWriter is a test-only behaviour sending N mails.
type mailWriter struct {
	To string
	N  int
}

func (m *mailWriter) Run(ctx *naplet.Context) error {
	for i := 0; i < m.N; i++ {
		if err := naplet.Send(ctx, m.To, []byte{byte(i)}); err != nil {
			return err
		}
	}
	return nil
}

func TestEchoUnlimitedServesManyClients(t *testing.T) {
	nw := newNet(t, 2)
	if err := nw.Node(hostName(0)).Launch("echoer", &Echo{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		id := "p" + string(rune('0'+i))
		if err := nw.Node(hostName(1)).Launch(id, &Pinger{Target: "echoer", Count: 2}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		await(t, nw, "p"+string(rune('0'+i)))
	}
}
