package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperParams(t *testing.T) {
	p := PaperParams()
	if p.TControl != 10 || p.TSuspend != 27.8 || p.TResume != 16.9 || p.TAMigrate != 220 {
		t.Fatalf("params = %+v", p)
	}
}

func TestClassify(t *testing.T) {
	p := PaperParams()
	cases := []struct {
		tau  float64
		want Kind
	}{
		{0, Overlapped},
		{5, Overlapped},
		{9.99, Overlapped},
		{10, NonOverlapped},
		{20, NonOverlapped},
		{27.79, NonOverlapped},
		{27.8, Single},
		{1000, Single},
		{-5, Overlapped}, // |τ| is what matters
	}
	for _, c := range cases {
		if got := p.Classify(c.tau); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.tau, got, c.want)
		}
	}
}

func TestCostEquations(t *testing.T) {
	p := PaperParams()
	if got := p.SingleCost(); got != 44.7 {
		t.Fatalf("single = %v", got)
	}
	if got := p.OverlappedHighCost(); got != p.SingleCost() {
		t.Fatal("high-priority overlapped cost must equal single cost")
	}
	// Equation (3): T_control + T_suspend + τ (+ resume).
	if got := p.OverlappedLowCost(5); math.Abs(got-(10+27.8+5+16.9)) > 1e-9 {
		t.Fatalf("overlapped low = %v", got)
	}
	// Equation (4): T_resume + T_control + τ.
	if got := p.NonOverlappedSecondCost(15); math.Abs(got-(16.9+10+15)) > 1e-9 {
		t.Fatalf("non-overlapped second = %v", got)
	}
	// The non-overlapped second mover can beat the single cost — the dip
	// the paper highlights in Figure 12.
	if p.NonOverlappedSecondCost(10) >= p.SingleCost() {
		t.Fatal("no dip: eq (4) at τ=T_control should undercut single cost")
	}
}

func TestCostDispatch(t *testing.T) {
	p := PaperParams()
	if got := p.Cost(Single, true, false, 0); got != p.SingleCost() {
		t.Fatal("single dispatch")
	}
	if got := p.Cost(Overlapped, true, false, 3); got != p.OverlappedHighCost() {
		t.Fatal("overlapped high dispatch")
	}
	if got := p.Cost(Overlapped, false, true, 3); got != p.OverlappedLowCost(3) {
		t.Fatal("overlapped low dispatch")
	}
	if got := p.Cost(NonOverlapped, false, true, 12); got != p.NonOverlappedSecondCost(12) {
		t.Fatal("non-overlapped second dispatch")
	}
	if got := p.Cost(NonOverlapped, false, false, 12); got != p.SingleCost() {
		t.Fatal("non-overlapped first dispatch")
	}
}

func TestOverheadShape(t *testing.T) {
	p := PaperParams()
	// r = 1: overhead stays above 0.8 at every exchange rate (the paper's
	// Figure 13 observation).
	for _, lambda := range []float64{1, 5, 10, 50, 100} {
		if got := p.Overhead(lambda, 1); got < 0.8 {
			t.Errorf("overhead(λ=%v, r=1) = %v, want >= 0.8", lambda, got)
		}
	}
	// Overhead decreases with the exchange rate for fixed r.
	prev := 2.0
	for _, lambda := range []float64{1, 2, 5, 10, 20, 50, 100} {
		got := p.Overhead(lambda, 10)
		if got >= prev {
			t.Fatalf("overhead not decreasing at λ=%v: %v >= %v", lambda, got, prev)
		}
		prev = got
	}
	// Overhead decreases with r for fixed λ: more data amortizes control.
	prev = 2.0
	for _, r := range []float64{1, 2, 5, 10, 20} {
		got := p.Overhead(50, r)
		if got >= prev {
			t.Fatalf("overhead not decreasing at r=%v: %v >= %v", r, got, prev)
		}
		prev = got
	}
	// Degenerate inputs saturate at 1.
	if p.Overhead(0, 5) != 1 || p.Overhead(5, 0) != 1 {
		t.Fatal("degenerate overhead not 1")
	}
}

func TestOverheadBounds(t *testing.T) {
	p := PaperParams()
	f := func(lr, rr uint16) bool {
		lambda := 0.1 + float64(lr%1000)
		r := 0.1 + float64(rr%100)
		o := p.Overhead(lambda, r)
		return o > 0 && o < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := SimConfig{Params: PaperParams(), MeanServiceA: 500, MeanServiceB: 500, Migrations: 2000, Seed: 7}
	a := Simulate(cfg)
	b := Simulate(cfg)
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestSimulateHighPriorityNearSingleCost(t *testing.T) {
	// The paper: "the cost for connection migration remains unchanged for
	// the high priority agent" — its mean must stay near T_sus + T_res.
	p := PaperParams()
	for _, mean := range []float64{100, 500, 1000, 2000} {
		res := Simulate(SimConfig{Params: p, MeanServiceA: mean, MeanServiceB: mean, Migrations: 5000, Seed: 1})
		if math.Abs(res.MeanCostHigh-p.SingleCost()) > 3 {
			t.Errorf("mean service %v: high cost %v, want ~%v", mean, res.MeanCostHigh, p.SingleCost())
		}
	}
}

func TestSimulateLowPriorityElevatedAtHighMigrationRates(t *testing.T) {
	// Fast migration (small service time) → more concurrent episodes → the
	// low-priority agent pays more than at slow migration.
	p := PaperParams()
	fast := Simulate(SimConfig{Params: p, MeanServiceA: 50, MeanServiceB: 50, Migrations: 8000, Seed: 2})
	slow := Simulate(SimConfig{Params: p, MeanServiceA: 2000, MeanServiceB: 2000, Migrations: 8000, Seed: 2})
	if fast.MeanCostLow <= slow.MeanCostLow {
		t.Fatalf("low-priority cost fast=%v <= slow=%v", fast.MeanCostLow, slow.MeanCostLow)
	}
	// At slow rates nearly everything is single migration.
	if slow.Singles == 0 || slow.Overlapped > slow.Singles/10 {
		t.Fatalf("slow-rate mix: %+v", slow)
	}
	// At fast rates concurrency shows up.
	if fast.Overlapped+fast.NonOverlapped == 0 {
		t.Fatalf("fast-rate mix has no concurrency: %+v", fast)
	}
}

func TestSimulateConvergesToSingleAtLargeServiceTimes(t *testing.T) {
	p := PaperParams()
	res := Simulate(SimConfig{Params: p, MeanServiceA: 5000, MeanServiceB: 5000, Migrations: 4000, Seed: 3})
	if math.Abs(res.MeanCostLow-p.SingleCost()) > 2 {
		t.Fatalf("low cost at large service time = %v, want ~%v", res.MeanCostLow, p.SingleCost())
	}
}

func TestSweep(t *testing.T) {
	p := PaperParams()
	means := []float64{100, 500, 1000}
	out := Sweep(p, 3, means, 1000, 9)
	if len(out) != len(means) {
		t.Fatalf("sweep results = %d", len(out))
	}
	for i, r := range out {
		if r.MeanCostHigh <= 0 || r.MeanCostLow <= 0 {
			t.Fatalf("sweep[%d] = %+v", i, r)
		}
	}
}

func TestFasterPeerIncreasesConcurrencyForLowPriority(t *testing.T) {
	// Given A's rate, increasing µ_b/µ_a (B migrates faster) gives A's
	// suspends more chances to meet an ongoing one — the paper's
	// observation on the ratio plots.
	p := PaperParams()
	slowPeer := Simulate(SimConfig{Params: p, MeanServiceA: 400, MeanServiceB: 1200, Migrations: 8000, Seed: 4})
	fastPeer := Simulate(SimConfig{Params: p, MeanServiceA: 400, MeanServiceB: 133, Migrations: 8000, Seed: 4})
	concSlow := float64(slowPeer.Overlapped+slowPeer.NonOverlapped) / float64(slowPeer.Singles+1)
	concFast := float64(fastPeer.Overlapped+fastPeer.NonOverlapped) / float64(fastPeer.Singles+1)
	if concFast <= concSlow {
		t.Fatalf("concurrency ratio fast=%v <= slow=%v", concFast, concSlow)
	}
}

func TestKindString(t *testing.T) {
	if Single.String() != "single" || Overlapped.String() != "overlapped" || NonOverlapped.String() != "non-overlapped" {
		t.Fatal("kind names wrong")
	}
}
