// Package model implements the analytical performance model of Section 5
// of the paper and the discrete-event simulation built on it: the cost of a
// connection migration (equations (1)–(4)) as a function of agent migration
// concurrency, and the control-message overhead of maintaining a persistent
// connection relative to its data traffic (Figure 13).
//
// All durations are in milliseconds, matching the paper's presentation.
package model

import (
	"fmt"
	"math"
	"math/rand"
)

// Params are the model's cost constants. The paper's Section 5.2 settings
// come from the measurements of Section 4.2.
type Params struct {
	// TControl is the one-way latency of a control message (ms).
	TControl float64
	// TSuspend is the cost of an uncontended suspend operation (ms).
	TSuspend float64
	// TResume is the cost of an uncontended resume operation (ms).
	TResume float64
	// TAMigrate is the agent migration cost (code + state transfer, ms).
	TAMigrate float64
}

// PaperParams returns the constants used in the paper's simulations:
// T_control = 10 ms, T_suspend = 27.8 ms, T_resume = 16.9 ms,
// T_a-migrate = 220 ms.
func PaperParams() Params {
	return Params{TControl: 10, TSuspend: 27.8, TResume: 16.9, TAMigrate: 220}
}

// Kind classifies one connection migration episode (Section 5.1).
type Kind int

const (
	// Single: the peer was not migrating concurrently.
	Single Kind = iota
	// Overlapped: both suspends were issued before either was
	// acknowledged (τ < T_control).
	Overlapped
	// NonOverlapped: the second suspend was issued after the first was
	// acknowledged but before it finished (T_control ≤ τ < T_suspend).
	NonOverlapped
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Single:
		return "single"
	case Overlapped:
		return "overlapped"
	case NonOverlapped:
		return "non-overlapped"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Classify determines the episode kind from the suspend-issue interval
// τ = |t_a − t_b| (ms): the paper's Section 5.1 case analysis. τ at least
// T_suspend means the first suspend completed before the second was issued
// — a single migration.
func (p Params) Classify(tau float64) Kind {
	tau = math.Abs(tau)
	switch {
	case tau < p.TControl:
		return Overlapped
	case tau < p.TSuspend:
		return NonOverlapped
	default:
		return Single
	}
}

// SingleCost is equation (1): T_c-migrate = T_suspend + T_resume.
func (p Params) SingleCost() float64 { return p.TSuspend + p.TResume }

// OverlappedHighCost is the connection migration cost of the
// higher-priority agent under overlapped concurrent migration — the same
// as the single pattern (Section 5.1).
func (p Params) OverlappedHighCost() float64 { return p.SingleCost() }

// OverlappedLowCost is the cost of the lower-priority agent under
// overlapped concurrent migration: its suspend completes only after the
// peer's SUS_RES, per equation (3), T_suspend^a = T_control + T_suspend^b
// + τ, plus its own resume.
func (p Params) OverlappedLowCost(tau float64) float64 {
	return p.TControl + p.TSuspend + math.Abs(tau) + p.TResume
}

// NonOverlappedSecondCost is equation (4): the second mover's suspend is
// absorbed into the first mover's migration window, so its connection
// migration costs T_resume + T_control + τ.
func (p Params) NonOverlappedSecondCost(tau float64) float64 {
	return p.TResume + p.TControl + math.Abs(tau)
}

// Cost returns the episode cost for one endpoint given the classification,
// whether this endpoint holds the migration priority, whether it issued
// its suspend second, and the issue interval τ.
func (p Params) Cost(kind Kind, highPriority, issuedSecond bool, tau float64) float64 {
	switch kind {
	case Overlapped:
		if highPriority {
			return p.OverlappedHighCost()
		}
		return p.OverlappedLowCost(tau)
	case NonOverlapped:
		if issuedSecond {
			return p.NonOverlappedSecondCost(tau)
		}
		return p.SingleCost()
	default:
		return p.SingleCost()
	}
}

// Overhead is the Figure 13 model: the fraction of control messages among
// all messages of one connection migration cycle. Each migration costs a
// fixed handshake budget (SUS/ACK + RES/ACK) plus the keepalive traffic of
// holding the connection open between migrations; the data traffic per
// cycle is r = λ/µ messages.
//
// lambda is the data message exchange rate (messages per unit time) and r
// the relative rate λ/µ with respect to the migration frequency µ.
func (p Params) Overhead(lambda, r float64) float64 {
	if lambda <= 0 || r <= 0 {
		return 1
	}
	const handshakePerMigration = 4.0 // SUS+ACK and RES+ACK
	const keepalivePerUnitTime = 1.0
	mu := lambda / r
	ctrl := handshakePerMigration + keepalivePerUnitTime/mu
	return ctrl / (ctrl + r)
}

// ---- discrete-event simulation (Figure 12) ----

// SimConfig configures one simulation run of two connected agents, A and B,
// migrating independently with exponentially distributed service times. B
// is assumed to hold the migration priority, as in the paper.
type SimConfig struct {
	Params
	// MeanServiceA and MeanServiceB are the agents' mean per-host service
	// times (ms), the paper's 1/µ_a and 1/µ_b.
	MeanServiceA float64
	MeanServiceB float64
	// Migrations is how many migrations of each agent to simulate.
	Migrations int
	// Seed makes the run reproducible.
	Seed int64
}

// SimResult aggregates one run.
type SimResult struct {
	// MeanCostHigh and MeanCostLow are the mean connection migration costs
	// (ms) of the high-priority (B) and low-priority (A) agents — the
	// Figure 12(a) and 12(b) y-values.
	MeanCostHigh float64
	MeanCostLow  float64
	// Episode counts by classification, summed over both agents.
	Singles, Overlapped, NonOverlapped int
}

// Simulate runs the two-agent migration model and reports mean connection
// migration costs per priority class.
func Simulate(cfg SimConfig) SimResult {
	if cfg.Migrations <= 0 {
		cfg.Migrations = 10000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	exp := func(mean float64) float64 {
		if mean <= 0 {
			return 0
		}
		return rng.ExpFloat64() * mean
	}

	// Issue times of the next suspend of each agent.
	tA := exp(cfg.MeanServiceA)
	tB := exp(cfg.MeanServiceB)
	var sumLow, sumHigh float64
	var nLow, nHigh int
	res := SimResult{}

	record := func(cost float64, high bool) {
		if high {
			sumHigh += cost
			nHigh++
		} else {
			sumLow += cost
			nLow++
		}
	}

	// hop advances an agent's clock past one migration episode.
	hop := func(t, connCost, service float64) float64 {
		return t + connCost + cfg.TAMigrate + service
	}

	for nLow < cfg.Migrations || nHigh < cfg.Migrations {
		tau := math.Abs(tA - tB)
		kind := cfg.Classify(tau)
		switch kind {
		case Single:
			// Only the earlier migration is uncontended this round; the
			// later one is re-examined against the earlier agent's *next*
			// migration.
			if tA <= tB {
				cost := cfg.SingleCost()
				record(cost, false)
				tA = hop(tA, cost, exp(cfg.MeanServiceA))
			} else {
				cost := cfg.SingleCost()
				record(cost, true)
				tB = hop(tB, cost, exp(cfg.MeanServiceB))
			}
			res.Singles++
		case Overlapped:
			costHigh := cfg.OverlappedHighCost()
			costLow := cfg.OverlappedLowCost(tau)
			record(costHigh, true)
			record(costLow, false)
			// The low-priority agent's hop is serialized behind the high-
			// priority one's.
			tB = hop(tB, costHigh, exp(cfg.MeanServiceB))
			tA = hop(math.Max(tA, tB), costLow, exp(cfg.MeanServiceA))
			res.Overlapped += 2
		case NonOverlapped:
			first, second := tA, tB
			firstHigh := false
			if tB < tA {
				first, second = tB, tA
				firstHigh = true
			}
			costFirst := cfg.SingleCost()
			costSecond := cfg.NonOverlappedSecondCost(tau)
			record(costFirst, firstHigh)
			record(costSecond, !firstHigh)
			if firstHigh {
				tB = hop(first, costFirst, exp(cfg.MeanServiceB))
				tA = hop(math.Max(second, tB), costSecond, exp(cfg.MeanServiceA))
			} else {
				tA = hop(first, costFirst, exp(cfg.MeanServiceA))
				tB = hop(math.Max(second, tA), costSecond, exp(cfg.MeanServiceB))
			}
			res.NonOverlapped += 2
		}
	}
	if nHigh > 0 {
		res.MeanCostHigh = sumHigh / float64(nHigh)
	}
	if nLow > 0 {
		res.MeanCostLow = sumLow / float64(nLow)
	}
	return res
}

// Sweep runs Simulate over a range of mean service times for agent A with
// the given ratio µ_b/µ_a (so B's mean service time is A's divided by the
// ratio), reproducing one curve of Figure 12.
func Sweep(p Params, ratio float64, meansA []float64, migrations int, seed int64) []SimResult {
	out := make([]SimResult, len(meansA))
	for i, mean := range meansA {
		out[i] = Simulate(SimConfig{
			Params:       p,
			MeanServiceA: mean,
			MeanServiceB: mean / ratio,
			Migrations:   migrations,
			Seed:         seed + int64(i),
		})
	}
	return out
}
