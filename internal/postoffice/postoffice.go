// Package postoffice implements Naplet's mailbox-based asynchronous
// persistent communication mechanism — the PostOffice the paper's
// introduction describes as the pre-existing communication service that
// NapletSocket complements. Each resident agent has a mailbox at its host's
// post office; senders resolve the recipient through the location service
// and deliver to the recipient's current office, retrying around
// migrations. The mailbox contents migrate with the agent (the office is a
// migration hook), so messages are never dropped by a hop.
//
// In the paper's terms this is asynchronous *persistent* communication: a
// send succeeds whether or not the receiver is currently reachable, and the
// sender learns nothing about when (or whether) the receiver reads the
// message — exactly the weakness that motivates NapletSocket's synchronous
// transient channel.
package postoffice

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"naplet/internal/naming"
	"naplet/internal/rudp"
)

// Message is one mailbox message.
type Message struct {
	From, To string
	Body     []byte
	Sent     time.Time
}

// Errors returned by the office.
var (
	// ErrNoMailbox reports a receive on an agent with no mailbox here.
	ErrNoMailbox = errors.New("postoffice: no mailbox on this host")
	// ErrUndeliverable reports that delivery retries were exhausted.
	ErrUndeliverable = errors.New("postoffice: undeliverable")
)

// deliverStatus values in wire replies.
const (
	statusOK      = "ok"
	statusNotHere = "not-here" // agent not resident; sender should re-resolve
	statusRetry   = "retry"    // agent mid-migration; sender should retry here
)

type deliverRequest struct {
	Msg Message
}

type deliverReply struct {
	Status string
}

// Box is one agent's mailbox.
type Box struct {
	mu    sync.Mutex
	queue []Message
	// arrival is signalled (closed and replaced) whenever a message lands.
	arrival chan struct{}
}

func newBox() *Box {
	return &Box{arrival: make(chan struct{})}
}

func (b *Box) put(m Message) {
	b.mu.Lock()
	b.queue = append(b.queue, m)
	close(b.arrival)
	b.arrival = make(chan struct{})
	b.mu.Unlock()
}

// Len returns the number of queued messages.
func (b *Box) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// Receive pops the oldest message, blocking until one arrives or ctx is
// done.
func (b *Box) Receive(ctx context.Context) (Message, error) {
	for {
		b.mu.Lock()
		if len(b.queue) > 0 {
			m := b.queue[0]
			b.queue = b.queue[1:]
			b.mu.Unlock()
			return m, nil
		}
		arrival := b.arrival
		b.mu.Unlock()
		select {
		case <-arrival:
		case <-ctx.Done():
			return Message{}, ctx.Err()
		}
	}
}

// TryReceive pops the oldest message without blocking; ok is false when the
// box is empty.
func (b *Box) TryReceive() (Message, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.queue) == 0 {
		return Message{}, false
	}
	m := b.queue[0]
	b.queue = b.queue[1:]
	return m, true
}

// Office is one host's post office.
type Office struct {
	hostName string
	resolver naming.Resolver
	ep       *rudp.Endpoint

	mu    sync.Mutex
	boxes map[string]*Box
	// migrating marks agents that departed from here, so deliveries get a
	// retry verdict while the location service still (briefly) points here.
	migrating map[string]bool
}

// New starts a post office for hostName, listening on addr ("" for an
// ephemeral loopback port). The resolver locates recipient agents.
func New(hostName string, resolver naming.Resolver, addr string) (*Office, error) {
	o := &Office{
		hostName:  hostName,
		resolver:  resolver,
		boxes:     make(map[string]*Box),
		migrating: make(map[string]bool),
	}
	ep, err := rudp.Listen(addr, o.handle, rudp.Config{})
	if err != nil {
		return nil, err
	}
	o.ep = ep
	return o, nil
}

// Addr returns the office's UDP address, advertised as MailAddr in the
// host's location record.
func (o *Office) Addr() string { return o.ep.Addr().String() }

// Close shuts the office down.
func (o *Office) Close() error { return o.ep.Close() }

// Open creates (or returns) the mailbox of a resident agent.
func (o *Office) Open(agentID string) *Box {
	o.mu.Lock()
	defer o.mu.Unlock()
	if b, ok := o.boxes[agentID]; ok {
		return b
	}
	b := newBox()
	o.boxes[agentID] = b
	delete(o.migrating, agentID)
	return b
}

// Lookup returns the mailbox of a resident agent, if any.
func (o *Office) Lookup(agentID string) (*Box, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	b, ok := o.boxes[agentID]
	return b, ok
}

// handle serves one inbound delivery.
func (o *Office) handle(_ *net.UDPAddr, reqBytes []byte) []byte {
	var req deliverRequest
	if err := gob.NewDecoder(bytes.NewReader(reqBytes)).Decode(&req); err != nil {
		return encodeReply(deliverReply{Status: "bad request: " + err.Error()})
	}
	o.mu.Lock()
	box, ok := o.boxes[req.Msg.To]
	migrating := o.migrating[req.Msg.To]
	o.mu.Unlock()
	if !ok {
		if migrating {
			return encodeReply(deliverReply{Status: statusRetry})
		}
		return encodeReply(deliverReply{Status: statusNotHere})
	}
	box.put(req.Msg)
	return encodeReply(deliverReply{Status: statusOK})
}

func encodeReply(r deliverReply) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		panic("postoffice: encoding reply: " + err.Error())
	}
	return buf.Bytes()
}

// Send delivers body from one agent to another, following the recipient
// through migrations: resolve, deliver to the recipient's office, and on a
// miss re-resolve and retry with backoff until ctx expires or attempts run
// out.
func (o *Office) Send(ctx context.Context, from, to string, body []byte) error {
	msg := Message{From: from, To: to, Body: append([]byte(nil), body...), Sent: time.Now()}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(deliverRequest{Msg: msg}); err != nil {
		return fmt.Errorf("postoffice: encoding message: %w", err)
	}
	backoff := 5 * time.Millisecond
	const maxAttempts = 20
	for attempt := 0; attempt < maxAttempts; attempt++ {
		rec, err := o.resolver.Lookup(ctx, to)
		if err != nil {
			if errors.Is(err, naming.ErrNotFound) {
				// The agent may be registering or mid-migration; wait and
				// retry rather than failing an asynchronous send.
				if serr := sleepCtx(ctx, backoff); serr != nil {
					return serr
				}
				backoff = bump(backoff)
				continue
			}
			return err
		}
		if rec.Loc.MailAddr == "" {
			return fmt.Errorf("postoffice: host %s of agent %s has no post office", rec.Loc.Host, to)
		}
		respBytes, err := o.ep.Request(ctx, rec.Loc.MailAddr, buf.Bytes())
		if err != nil {
			return err
		}
		var resp deliverReply
		if err := gob.NewDecoder(bytes.NewReader(respBytes)).Decode(&resp); err != nil {
			return fmt.Errorf("postoffice: decoding reply: %w", err)
		}
		switch resp.Status {
		case statusOK:
			return nil
		case statusNotHere, statusRetry:
			if serr := sleepCtx(ctx, backoff); serr != nil {
				return serr
			}
			backoff = bump(backoff)
		default:
			return fmt.Errorf("postoffice: remote error: %s", resp.Status)
		}
	}
	return fmt.Errorf("%w: %s after %d attempts", ErrUndeliverable, to, maxAttempts)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func bump(d time.Duration) time.Duration {
	if d >= 200*time.Millisecond {
		return d
	}
	return d * 2
}

// ---- migration hook (structurally implements agent.Hook) ----

// HookName keys the office's blob in migration bundles.
func (o *Office) HookName() string { return "postoffice" }

// PreDepart serializes and removes the departing agent's mailbox so queued
// messages travel with the agent.
func (o *Office) PreDepart(agentID string) ([]byte, error) {
	o.mu.Lock()
	box, ok := o.boxes[agentID]
	if ok {
		delete(o.boxes, agentID)
		o.migrating[agentID] = true
	}
	o.mu.Unlock()
	if !ok {
		return nil, nil // agent never opened a mailbox
	}
	box.mu.Lock()
	queue := box.queue
	box.queue = nil
	box.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(queue); err != nil {
		return nil, fmt.Errorf("postoffice: serializing mailbox of %s: %w", agentID, err)
	}
	return buf.Bytes(), nil
}

// PostArrive recreates the arriving agent's mailbox with its carried
// messages.
func (o *Office) PostArrive(agentID string, blob []byte) error {
	if blob == nil {
		return nil
	}
	var queue []Message
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&queue); err != nil {
		return fmt.Errorf("postoffice: restoring mailbox of %s: %w", agentID, err)
	}
	box := o.Open(agentID)
	box.mu.Lock()
	box.queue = append(queue, box.queue...)
	close(box.arrival)
	box.arrival = make(chan struct{})
	box.mu.Unlock()
	return nil
}

// OnTerminate discards the agent's mailbox.
func (o *Office) OnTerminate(agentID string) {
	o.mu.Lock()
	delete(o.boxes, agentID)
	delete(o.migrating, agentID)
	o.mu.Unlock()
}
