package postoffice

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"naplet/internal/naming"
)

// env wires two offices to one location service, simulating two hosts.
type env struct {
	svc     *naming.Service
	offices map[string]*Office
}

func newEnv(t *testing.T, hosts ...string) *env {
	t.Helper()
	e := &env{svc: naming.NewService(), offices: make(map[string]*Office)}
	for _, h := range hosts {
		o, err := New(h, e.svc, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { o.Close() })
		e.offices[h] = o
	}
	return e
}

// place registers an agent as resident on host with a fresh mailbox.
func (e *env) place(t *testing.T, agentID, host string) *Box {
	t.Helper()
	o := e.offices[host]
	loc := naming.Location{Host: host, MailAddr: o.Addr()}
	if err := e.svc.Register(agentID, loc); err != nil {
		t.Fatal(err)
	}
	return o.Open(agentID)
}

func TestSendReceive(t *testing.T) {
	e := newEnv(t, "h1", "h2")
	e.place(t, "alice", "h1")
	bobBox := e.place(t, "bob", "h2")

	if err := e.offices["h1"].Send(context.Background(), "alice", "bob", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	msg, err := bobBox.Receive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != "alice" || msg.To != "bob" || string(msg.Body) != "hello" {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestSendToSelfHost(t *testing.T) {
	e := newEnv(t, "h1")
	e.place(t, "a", "h1")
	box := e.place(t, "b", "h1")
	if err := e.offices["h1"].Send(context.Background(), "a", "b", []byte("local")); err != nil {
		t.Fatal(err)
	}
	msg, _ := box.Receive(context.Background())
	if string(msg.Body) != "local" {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestFIFOOrdering(t *testing.T) {
	e := newEnv(t, "h1", "h2")
	e.place(t, "a", "h1")
	box := e.place(t, "b", "h2")
	for i := 0; i < 20; i++ {
		if err := e.offices["h1"].Send(context.Background(), "a", "b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		msg, err := box.Receive(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if msg.Body[0] != byte(i) {
			t.Fatalf("message %d out of order: got %d", i, msg.Body[0])
		}
	}
}

func TestReceiveBlocksUntilArrival(t *testing.T) {
	e := newEnv(t, "h1")
	box := e.place(t, "b", "h1")
	got := make(chan Message, 1)
	go func() {
		m, err := box.Receive(context.Background())
		if err == nil {
			got <- m
		}
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("Receive returned before any message")
	default:
	}
	e.place(t, "a", "h1")
	if err := e.offices["h1"].Send(context.Background(), "a", "b", []byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Body) != "wake" {
			t.Fatalf("msg = %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Receive never woke up")
	}
}

func TestTryReceive(t *testing.T) {
	e := newEnv(t, "h1")
	box := e.place(t, "b", "h1")
	if _, ok := box.TryReceive(); ok {
		t.Fatal("TryReceive on empty box returned a message")
	}
	e.place(t, "a", "h1")
	e.offices["h1"].Send(context.Background(), "a", "b", []byte("x"))
	if m, ok := box.TryReceive(); !ok || string(m.Body) != "x" {
		t.Fatalf("TryReceive = %v, %v", m, ok)
	}
}

func TestReceiveContextCancel(t *testing.T) {
	e := newEnv(t, "h1")
	box := e.place(t, "b", "h1")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := box.Receive(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestSendToUnknownAgentEventuallyFails(t *testing.T) {
	e := newEnv(t, "h1")
	e.place(t, "a", "h1")
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	err := e.offices["h1"].Send(ctx, "a", "nobody", []byte("x"))
	if err == nil {
		t.Fatal("send to unknown agent succeeded")
	}
}

// TestDeliveryFollowsMigration simulates an agent migrating between hosts:
// the mailbox moves via the hook, the location service is updated, and a
// message sent mid-migration is delivered at the new host.
func TestDeliveryFollowsMigration(t *testing.T) {
	e := newEnv(t, "h1", "h2")
	e.place(t, "sender", "h1")
	box := e.place(t, "mover", "h1")

	// Queue a message before the move; it must travel with the agent.
	if err := e.offices["h1"].Send(context.Background(), "sender", "mover", []byte("pre-move")); err != nil {
		t.Fatal(err)
	}
	for box.Len() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Migrate: depart h1, update directory, arrive h2 (what agent.Host does
	// around a hop).
	blob, err := e.offices["h1"].PreDepart("mover")
	if err != nil {
		t.Fatal(err)
	}
	loc2 := naming.Location{Host: "h2", MailAddr: e.offices["h2"].Addr()}
	if err := e.svc.Update("mover", loc2, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.offices["h2"].PostArrive("mover", blob); err != nil {
		t.Fatal(err)
	}
	newBox, ok := e.offices["h2"].Lookup("mover")
	if !ok {
		t.Fatal("mailbox not recreated on h2")
	}

	// The queued message survived the hop.
	m, err := newBox.Receive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Body) != "pre-move" {
		t.Fatalf("carried message = %+v", m)
	}

	// New sends land at h2.
	if err := e.offices["h1"].Send(context.Background(), "sender", "mover", []byte("post-move")); err != nil {
		t.Fatal(err)
	}
	m, err = newBox.Receive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Body) != "post-move" {
		t.Fatalf("post-move message = %+v", m)
	}
}

// TestSendDuringMigrationRetries sends while the agent is between offices —
// departed h1, not yet arrived at h2 — and checks the sender retries until
// arrival instead of failing.
func TestSendDuringMigrationRetries(t *testing.T) {
	e := newEnv(t, "h1", "h2")
	e.place(t, "sender", "h2")
	e.place(t, "mover", "h1")

	blob, err := e.offices["h1"].PreDepart("mover")
	if err != nil {
		t.Fatal(err)
	}
	// Directory still points at h1; office h1 will answer "retry".
	sendDone := make(chan error, 1)
	go func() {
		sendDone <- e.offices["h2"].Send(context.Background(), "sender", "mover", []byte("in-flight"))
	}()
	time.Sleep(30 * time.Millisecond)

	loc2 := naming.Location{Host: "h2", MailAddr: e.offices["h2"].Addr()}
	if err := e.svc.Update("mover", loc2, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.offices["h2"].PostArrive("mover", blob); err != nil {
		t.Fatal(err)
	}
	if err := <-sendDone; err != nil {
		t.Fatalf("send across migration failed: %v", err)
	}
	box, _ := e.offices["h2"].Lookup("mover")
	m, err := box.Receive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Body) != "in-flight" {
		t.Fatalf("message = %+v", m)
	}
}

func TestHookWithNoMailboxIsNoOp(t *testing.T) {
	e := newEnv(t, "h1")
	blob, err := e.offices["h1"].PreDepart("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if blob != nil {
		t.Fatalf("blob = %v, want nil", blob)
	}
	if err := e.offices["h1"].PostArrive("ghost", nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnTerminateDiscardsMailbox(t *testing.T) {
	e := newEnv(t, "h1")
	e.place(t, "b", "h1")
	e.offices["h1"].OnTerminate("b")
	if _, ok := e.offices["h1"].Lookup("b"); ok {
		t.Fatal("mailbox survived termination")
	}
}

func TestConcurrentSenders(t *testing.T) {
	e := newEnv(t, "h1", "h2")
	box := e.place(t, "sink", "h2")
	const senders, each = 8, 16
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		id := fmt.Sprintf("s%d", s)
		e.place(t, id, "h1")
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := e.offices["h1"].Send(context.Background(), id, "sink", []byte(id)); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	counts := make(map[string]int)
	for i := 0; i < senders*each; i++ {
		m, err := box.Receive(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		counts[string(m.Body)]++
	}
	for s := 0; s < senders; s++ {
		id := fmt.Sprintf("s%d", s)
		if counts[id] != each {
			t.Fatalf("sender %s delivered %d messages, want %d", id, counts[id], each)
		}
	}
}
