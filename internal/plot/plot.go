// Package plot renders small ASCII line charts for the figure-reproducing
// CLI: each paper figure can be eyeballed directly in the terminal next to
// its data table, and the CSV emitters feed external plotting tools.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name string
	X, Y []float64
}

// markers distinguish overlapping series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart is an ASCII line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot area dimensions in characters;
	// defaults 60×16.
	Width, Height int
	// LogX plots the x axis on a log10 scale.
	LogX bool
	// YMin/YMax fix the y range; when both zero the range is computed
	// from the data with a small margin.
	YMin, YMax float64

	series []Series
}

// Add appends a series. X and Y must have equal length.
func (c *Chart) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
	}
	c.series = append(c.series, s)
	return nil
}

func (c *Chart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	return w, h
}

func (c *Chart) xTransform(x float64) float64 {
	if c.LogX {
		if x <= 0 {
			return math.Inf(-1)
		}
		return math.Log10(x)
	}
	return x
}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.dims()
	// Data ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		for i := range s.X {
			x := c.xTransform(s.X[i])
			if math.IsInf(x, -1) {
				continue
			}
			points++
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		return c.Title + "\n(no data)\n"
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	} else {
		margin := (ymax - ymin) * 0.05
		if margin == 0 {
			margin = math.Abs(ymax)*0.05 + 1
		}
		ymin -= margin
		ymax += margin
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	// Plot each series: points plus linear interpolation between them.
	for si, s := range c.series {
		m := markers[si%len(markers)]
		var prevCol, prevRow int
		hasPrev := false
		for i := range s.X {
			x := c.xTransform(s.X[i])
			if math.IsInf(x, -1) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((s.Y[i]-ymin)/(ymax-ymin)*float64(h-1)))
			if row < 0 {
				row = 0
			}
			if row >= h {
				row = h - 1
			}
			if hasPrev {
				drawLine(grid, prevCol, prevRow, col, row, '.')
			}
			grid[row][col] = m
			prevCol, prevRow = col, row
			hasPrev = true
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	yTop := fmt.Sprintf("%.4g", ymax)
	yBot := fmt.Sprintf("%.4g", ymin)
	labelW := len(yTop)
	if len(yBot) > labelW {
		labelW = len(yBot)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yTop)
		case h - 1:
			label = fmt.Sprintf("%*s", labelW, yBot)
		case h / 2:
			mid := fmt.Sprintf("%.4g", (ymin+ymax)/2)
			label = fmt.Sprintf("%*s", labelW, mid)
		}
		sb.WriteString(label)
		sb.WriteString(" |")
		sb.Write(grid[r])
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", labelW+2))
	sb.WriteString(strings.Repeat("-", w))
	sb.WriteByte('\n')
	// X axis labels.
	xl, xr := xmin, xmax
	if c.LogX {
		xl, xr = math.Pow(10, xmin), math.Pow(10, xmax)
	}
	left := fmt.Sprintf("%.4g", xl)
	right := fmt.Sprintf("%.4g", xr)
	pad := w - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	sb.WriteString(strings.Repeat(" ", labelW+2))
	sb.WriteString(left)
	sb.WriteString(strings.Repeat(" ", pad))
	sb.WriteString(right)
	sb.WriteByte('\n')
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&sb, "%s x: %s", strings.Repeat(" ", labelW+2), c.XLabel)
		if c.YLabel != "" {
			fmt.Fprintf(&sb, ", y: %s", c.YLabel)
		}
		sb.WriteByte('\n')
	}
	// Legend.
	if len(c.series) > 1 {
		sb.WriteString(strings.Repeat(" ", labelW+2))
		for si, s := range c.series {
			if si > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%c %s", markers[si%len(markers)], s.Name)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// drawLine draws a Bresenham segment with ch, not overwriting markers.
func drawLine(grid [][]byte, x0, y0, x1, y1 int, ch byte) {
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if y0 >= 0 && y0 < len(grid) && x0 >= 0 && x0 < len(grid[y0]) && grid[y0][x0] == ' ' {
			grid[y0][x0] = ch
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// CSV renders series as comma-separated rows: header x,<name>... then one
// row per x value (series are assumed to share x values; missing points
// are left empty).
func CSV(xLabel string, series ...Series) string {
	var sb strings.Builder
	sb.WriteString(xLabel)
	for _, s := range series {
		sb.WriteByte(',')
		sb.WriteString(s.Name)
	}
	sb.WriteByte('\n')
	if len(series) == 0 {
		return sb.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&sb, "%g", series[0].X[i])
		for _, s := range series {
			sb.WriteByte(',')
			if i < len(s.Y) {
				fmt.Fprintf(&sb, "%g", s.Y[i])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
