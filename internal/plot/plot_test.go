package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := &Chart{Title: "demo", XLabel: "x", YLabel: "y", Width: 40, Height: 10}
	if err := c.Add(Series{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	if !strings.Contains(out, "demo") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "x: x, y: y") {
		t.Fatalf("missing axis labels: %q", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data markers rendered")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + xlabels + labels line
	if len(lines) < 13 {
		t.Fatalf("rendered %d lines", len(lines))
	}
}

func TestRenderMonotoneSeriesShape(t *testing.T) {
	c := &Chart{Width: 30, Height: 8}
	c.Add(Series{Name: "s", X: []float64{0, 1, 2}, Y: []float64{0, 5, 10}})
	out := c.Render()
	// The max must appear on the first plot row, the min on the last.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "*") {
		t.Fatalf("top row has no marker: %q", lines[0])
	}
	if !strings.Contains(lines[7], "*") {
		t.Fatalf("bottom row has no marker: %q", lines[7])
	}
}

func TestRenderMultipleSeriesLegend(t *testing.T) {
	c := &Chart{Width: 30, Height: 8}
	c.Add(Series{Name: "a", X: []float64{0, 1}, Y: []float64{1, 2}})
	c.Add(Series{Name: "b", X: []float64{0, 1}, Y: []float64{2, 1}})
	out := c.Render()
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("legend missing: %q", out)
	}
}

func TestRenderLogX(t *testing.T) {
	c := &Chart{Width: 30, Height: 8, LogX: true}
	c.Add(Series{Name: "s", X: []float64{1, 10, 100}, Y: []float64{1, 2, 3}})
	out := c.Render()
	if !strings.Contains(out, "100") {
		t.Fatalf("x range label missing: %q", out)
	}
	// Non-positive x values are skipped, not crashed on.
	c2 := &Chart{LogX: true}
	c2.Add(Series{Name: "s", X: []float64{0, -1}, Y: []float64{1, 2}})
	if out := c2.Render(); !strings.Contains(out, "no data") {
		t.Fatalf("expected no-data render, got %q", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "no data") {
		t.Fatalf("out = %q", out)
	}
}

func TestRenderFlatSeries(t *testing.T) {
	c := &Chart{Width: 20, Height: 6}
	c.Add(Series{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}})
	out := c.Render() // must not divide by zero
	if !strings.Contains(out, "*") {
		t.Fatal("flat series not rendered")
	}
}

func TestAddMismatchedLengths(t *testing.T) {
	c := &Chart{}
	if err := c.Add(Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestFixedYRange(t *testing.T) {
	c := &Chart{Width: 20, Height: 6, YMin: 0, YMax: 100}
	c.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{50, 60}})
	out := c.Render()
	if !strings.Contains(out, "100") || !strings.Contains(out, "0") {
		t.Fatalf("fixed range labels missing: %q", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV("x",
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		Series{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
	)
	want := "x,a,b\n1,10,30\n2,20,40\n"
	if out != want {
		t.Fatalf("csv = %q, want %q", out, want)
	}
	if got := CSV("x"); got != "x\n" {
		t.Fatalf("empty csv = %q", got)
	}
}
