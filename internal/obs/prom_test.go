package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"agent.migrations":                     "agent_migrations",
		"fsm.transition.ESTABLISHED->SUS_SENT": "fsm_transition_ESTABLISHED__SUS_SENT",
		"rudp:retx":                            "rudp:retx",
		"9lives":                               "_9lives",
		`build.info{commit="abc",go="go1.22"}`: `build_info{commit="abc",go="go1.22"}`,
		"weird{unterminated":                   "weird_unterminated",
		"suspend.ms":                           "suspend_ms",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// ValidatePromText is a minimal Prometheus text-exposition validator: every
// non-empty line must be a well-formed comment or a sample whose metric name
// matches the grammar, labels (if any) are quoted key=value pairs, and the
// value parses as a float. It returns the number of samples seen.
func ValidatePromText(t *testing.T, text string) int {
	t.Helper()
	validName := func(s string) bool {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(c >= '0' && c <= '9' && i > 0)
			if !ok {
				return false
			}
		}
		return true
	}
	samples := 0
	types := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 4 || f[1] != "TYPE" || !validName(f[2]) {
				t.Errorf("line %d: bad comment %q", ln+1, line)
				continue
			}
			switch f[3] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Errorf("line %d: bad type %q", ln+1, f[3])
			}
			types[f[2]] = f[3]
			continue
		}
		// name[{labels}] value
		rest := line
		name := rest
		labels := ""
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			j := strings.IndexByte(rest, '}')
			if j < i {
				t.Errorf("line %d: unbalanced braces %q", ln+1, line)
				continue
			}
			name, labels, rest = rest[:i], rest[i+1:j], rest[j+1:]
		} else if i := strings.IndexByte(rest, ' '); i >= 0 {
			name, rest = rest[:i], rest[i:]
		}
		if !validName(name) {
			t.Errorf("line %d: bad metric name %q", ln+1, name)
			continue
		}
		if labels != "" {
			for _, pair := range strings.Split(labels, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || !validName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Errorf("line %d: bad label %q", ln+1, pair)
				}
			}
		}
		val := strings.TrimSpace(rest)
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Errorf("line %d: bad value %q: %v", ln+1, val, err)
			continue
		}
		// A sample must be typed under its family name (summary samples may
		// carry _sum/_count suffixes).
		family := name
		family = strings.TrimSuffix(family, "_sum")
		family = strings.TrimSuffix(family, "_count")
		if _, ok := types[name]; !ok {
			if _, ok := types[family]; !ok {
				t.Errorf("line %d: sample %q without TYPE line", ln+1, name)
			}
		}
		samples++
	}
	return samples
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("fsm.transition.ESTABLISHED->SUS_SENT").Add(3)
	r.Counter("agent.migrations").Inc()
	r.Gauge(`build.info{commit="abc123",go="go1.22.1"}`).Set(1)
	r.Func("agent.resident", func() float64 { return 2 })
	h := r.Histogram("suspend.ms")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	n := ValidatePromText(t, text)
	// 2 counters + 2 gauges + (3 quantiles + sum + count) = 9 samples.
	if n != 9 {
		t.Fatalf("samples = %d, want 9\n%s", n, text)
	}
	for _, want := range []string{
		"# TYPE agent_migrations counter\nagent_migrations 1\n",
		"# TYPE fsm_transition_ESTABLISHED__SUS_SENT counter\nfsm_transition_ESTABLISHED__SUS_SENT 3\n",
		"# TYPE build_info gauge\nbuild_info{commit=\"abc123\",go=\"go1.22.1\"} 1\n",
		"# TYPE suspend_ms summary\n",
		"suspend_ms{quantile=\"0.5\"}",
		"suspend_ms_count 100\n",
		"suspend_ms_sum 5050\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n%s", want, text)
		}
	}

	// Nil registry writes nothing.
	var nilReg *Registry
	buf.Reset()
	if err := nilReg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q (err %v)", buf.String(), err)
	}
}

// TestWritePrometheusTransportSessionCounters pins the exposition names of
// the transport-plane session counters: dotted registry names map to valid
// underscore-separated Prometheus families, and zero-valued counters are
// still exported (a cleartext_legacy flat line at 0 is the signal that every
// session negotiated encryption).
func TestWritePrometheusTransportSessionCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter("transport.encrypted").Add(2)
	r.Counter("transport.cleartext_legacy")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if n := ValidatePromText(t, text); n != 2 {
		t.Fatalf("samples = %d, want 2\n%s", n, text)
	}
	for _, want := range []string{
		"# TYPE transport_encrypted counter\ntransport_encrypted 2\n",
		"# TYPE transport_cleartext_legacy counter\ntransport_cleartext_legacy 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n%s", want, text)
		}
	}
}

func TestWritePrometheusSnapshotFallbackSum(t *testing.T) {
	// Without explicit sums, a histogram's _sum reconstructs as mean*count.
	s := Snapshot{Histograms: map[string]HistogramSnapshot{
		"x.ms": {Count: 4, Mean: 2.5, P50: 2, P95: 4, P99: 4},
	}}
	var buf bytes.Buffer
	if err := WritePrometheusSnapshot(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x_ms_sum 10\n") {
		t.Fatalf("output = %s", buf.String())
	}
	ValidatePromText(t, buf.String())
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 50; i++ {
		r.Counter(fmt.Sprintf("c%d.total", i)).Add(uint64(i))
	}
	for i := 0; i < 10; i++ {
		h := r.Histogram(fmt.Sprintf("h%d.ms", i))
		for j := 0; j < 100; j++ {
			h.Observe(float64(j))
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.WritePrometheus(&bytes.Buffer{})
	}
}
