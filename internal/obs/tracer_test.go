package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanContextMarshalRoundtrip(t *testing.T) {
	tr := NewTracer("h1")
	sp := tr.StartTrace("migrate a1")
	ctx := sp.Context()
	if !ctx.Valid() {
		t.Fatal("root span context invalid")
	}
	b := ctx.Marshal()
	if len(b) != 24 {
		t.Fatalf("marshal length = %d, want 24", len(b))
	}
	back, ok := UnmarshalSpanContext(b)
	if !ok || back != ctx {
		t.Fatalf("roundtrip = %+v ok=%v, want %+v", back, ok, ctx)
	}

	if (SpanContext{}).Marshal() != nil {
		t.Fatal("invalid context marshals non-nil")
	}
	for _, bad := range [][]byte{nil, {}, make([]byte, 23), make([]byte, 25), make([]byte, 24)} {
		if _, ok := UnmarshalSpanContext(bad); ok {
			t.Fatalf("unmarshal accepted %d zero/odd bytes", len(bad))
		}
	}
}

func TestTracerSpanTreeAcrossHosts(t *testing.T) {
	// One trace whose spans land on two tracers, stitched by trace id —
	// exactly how a migration spreads over origin and destination hosts.
	origin := NewTracer("origin")
	dest := NewTracer("dest")

	root := origin.StartTrace("migrate a1")
	sus := root.Child("suspend")
	sus.Annotate("conn=abc")
	sus.End()
	xfer := root.Child("transfer")
	xfer.End()
	root.End()

	// The context travels (marshaled) to the destination host.
	ctx, ok := UnmarshalSpanContext(root.Context().Marshal())
	if !ok {
		t.Fatal("context did not survive the wire")
	}
	arrive := dest.StartSpan(ctx, "arrive")
	res := arrive.Child("resume")
	res.End()
	arrive.End()

	osnap := origin.Snapshot()
	dsnap := dest.Snapshot()
	if len(osnap) != 1 || len(dsnap) != 1 {
		t.Fatalf("traces: origin=%d dest=%d, want 1 each", len(osnap), len(dsnap))
	}
	if osnap[0].ID != dsnap[0].ID {
		t.Fatalf("trace ids differ: %s vs %s", osnap[0].ID, dsnap[0].ID)
	}
	if osnap[0].Root != "migrate a1" {
		t.Fatalf("origin root = %q", osnap[0].Root)
	}
	if len(osnap[0].Spans) != 3 || len(dsnap[0].Spans) != 2 {
		t.Fatalf("spans: origin=%d dest=%d", len(osnap[0].Spans), len(dsnap[0].Spans))
	}
	for _, name := range []string{"migrate a1", "suspend", "transfer"} {
		if _, ok := osnap[0].Phases[name]; !ok {
			t.Errorf("origin missing phase %q", name)
		}
	}
	for _, sp := range osnap[0].Spans {
		if sp.Host != "origin" {
			t.Errorf("span %s host = %q", sp.Name, sp.Host)
		}
		if sp.End.Before(sp.Start) {
			t.Errorf("span %s ends before it starts", sp.Name)
		}
		if sp.Name == "suspend" {
			if sp.ParentHex != root.Context().Span.String() {
				t.Errorf("suspend parent = %s, want root %s", sp.ParentHex, root.Context().Span)
			}
			if len(sp.Notes) != 1 || sp.Notes[0] != "conn=abc" {
				t.Errorf("suspend notes = %v", sp.Notes)
			}
		}
	}
}

func TestTracerNeverEndedInvisible(t *testing.T) {
	tr := NewTracer("h")
	sp := tr.StartTrace("r")
	sp.Child("x").End()
	// sp itself never ends; only the child shows.
	snap := tr.Snapshot()
	if len(snap) != 1 || len(snap[0].Spans) != 1 || snap[0].Spans[0].Name != "x" {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Double End is a no-op.
	c := tr.StartTrace("y")
	c.End()
	c.End()
	if n := len(tr.Snapshot()); n != 2 {
		t.Fatalf("traces = %d, want 2", n)
	}
}

func TestTracerEvictionAndSpanCap(t *testing.T) {
	tr := NewTracer("h")
	tr.maxTraces = 4
	tr.maxSpans = 3
	var first *Span
	for i := 0; i < 6; i++ {
		sp := tr.StartTrace(fmt.Sprintf("t%d", i))
		if i == 0 {
			first = sp
		}
		sp.End()
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("traces after eviction = %d, want 4", len(snap))
	}
	// Most recent first.
	if snap[0].Root != "t5" || snap[3].Root != "t2" {
		t.Fatalf("order = %s .. %s", snap[0].Root, snap[3].Root)
	}
	// A late span of an evicted trace re-registers it (new entry).
	child := tr.StartSpan(first.Context(), "late")
	child.End()

	// Span cap: the 4th span of one trace is dropped and counted.
	root := tr.StartTrace("full")
	for i := 0; i < 3; i++ {
		root.Child(fmt.Sprintf("s%d", i)).End()
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d before cap", tr.Dropped())
	}
	root.Child("overflow").End()
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
}

func TestTracerActiveRegistry(t *testing.T) {
	tr := NewTracer("h")
	if tr.Active("a1").Valid() {
		t.Fatal("unset key is valid")
	}
	sp := tr.StartTrace("migrate a1")
	tr.SetActive("a1", sp.Context())
	if got := tr.Active("a1"); got != sp.Context() {
		t.Fatalf("Active = %+v", got)
	}
	tr.ClearActive("a1")
	if tr.Active("a1").Valid() {
		t.Fatal("cleared key still valid")
	}
	// Invalid contexts are not stored.
	tr.SetActive("a2", SpanContext{})
	if tr.Active("a2").Valid() {
		t.Fatal("invalid context stored")
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartTrace("x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.Annotate("note")
	sp.End()
	child := sp.Child("y")
	child.End()
	if sp.Context().Valid() {
		t.Fatal("nil span context valid")
	}
	tr.SetActive("k", SpanContext{})
	_ = tr.Active("k")
	tr.ClearActive("k")
	if tr.Snapshot() != nil || tr.Slowest(3) != nil || tr.Dropped() != 0 || tr.Host() != "" {
		t.Fatal("nil tracer leaks state")
	}
	// An invalid parent yields a nil (inert) span.
	real := NewTracer("h")
	if real.StartSpan(SpanContext{}, "x") != nil {
		t.Fatal("invalid parent produced a live span")
	}
}

func TestTracerSlowest(t *testing.T) {
	tr := NewTracer("h")
	for i, d := range []time.Duration{5 * time.Millisecond, 20 * time.Millisecond, 1 * time.Millisecond} {
		start := time.Now().Add(-d)
		sp := tr.StartSpanAt(SpanContext{}, "ignored", start)
		if sp != nil {
			t.Fatal("invalid parent must be inert")
		}
		root := tr.StartTrace(fmt.Sprintf("t%d", i))
		// Backdate via a child started in the past so durations differ.
		tr.record(SpanRecord{Trace: root.Context().Trace, Span: root.Context().Span,
			Name: fmt.Sprintf("t%d", i), Host: "h", Start: start, End: time.Now()})
	}
	top := tr.Slowest(2)
	if len(top) != 2 || top[0].Root != "t1" || top[1].Root != "t0" {
		t.Fatalf("slowest = %+v", top)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer("h")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tr.StartTrace(fmt.Sprintf("t%d", g))
				c := root.Child("work")
				c.Annotate("i")
				c.End()
				root.End()
				tr.SetActive(fmt.Sprintf("k%d", g), root.Context())
				tr.Active(fmt.Sprintf("k%d", g))
				tr.ClearActive(fmt.Sprintf("k%d", g))
				if i%50 == 0 {
					tr.Snapshot()
					tr.Slowest(3)
				}
			}
		}(g)
	}
	wg.Wait()
	if len(tr.Snapshot()) != tr.maxTraces {
		t.Fatalf("traces = %d, want full store %d", len(tr.Snapshot()), tr.maxTraces)
	}
}
