// Package obs is the runtime observability layer of the NapletSocket
// system: a process-wide metrics registry (counters, gauges, log-scale
// latency histograms) snapshot-able as JSON, and a structured, leveled
// event logger with per-connection context.
//
// Unlike the offline instrumentation in internal/metrics and
// internal/trace — which exists to reproduce the paper's figures in
// one-shot benchmark harnesses — this package makes the same quantities
// continuously measurable on a live daemon, where they feed the
// /metrics and /connz endpoints of napletd.
//
// Every type is nil-safe: methods on a nil *Registry, *Counter, *Gauge,
// *Histogram, or *Logger record nothing, so instrumentation can stay
// unconditionally in place in the hot path.
package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an instantaneous float64 metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket geometry: buckets grow geometrically from histLo by
// histGrowth per bucket, so a recorded quantile is within one growth
// factor of the true sample quantile. With growth 1.5 and 64 buckets the
// range spans ~1µs to ~10 hours when samples are milliseconds.
const (
	histBuckets = 64
	histLo      = 1e-3 // first upper bound, in the caller's unit (ms)
	histGrowth  = 1.5
)

// histBounds[i] is the inclusive upper bound of bucket i.
var histBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	v := histLo
	for i := range b {
		b[i] = v
		v *= histGrowth
	}
	return b
}()

// Histogram accumulates samples into log-scale buckets and reports
// nearest-rank quantiles with bounded relative error (one bucket growth
// factor). Samples are conventionally latencies in milliseconds. The
// fields are atomics rather than a mutex: during a migration wave every
// suspending connection observes into the same suspend/resume histograms
// concurrently, and a single lock there serializes the wave. Reads
// (snapshot, quantile) are consequently only approximately consistent
// with in-flight writes, which is fine for monitoring.
type Histogram struct {
	count   atomic.Uint64
	sumBits atomic.Uint64
	// minEnc/maxEnc hold math.Float64bits(v)+1, so the zero value means
	// "no sample yet" and &Histogram{} stays fully usable.
	minEnc  atomic.Uint64
	maxEnc  atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// histDecode undoes the bits+1 encoding of minEnc/maxEnc.
func histDecode(enc uint64) float64 {
	if enc == 0 {
		return 0
	}
	return math.Float64frombits(enc - 1)
}

// bucketIndex returns the bucket whose range contains v.
func bucketIndex(v float64) int {
	if v <= histLo {
		return 0
	}
	i := int(math.Ceil(math.Log(v/histLo) / math.Log(histGrowth)))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	enc := math.Float64bits(v) + 1
	for {
		old := h.minEnc.Load()
		if old != 0 && v >= histDecode(old) {
			break
		}
		if h.minEnc.CompareAndSwap(old, enc) {
			break
		}
	}
	for {
		old := h.maxEnc.Load()
		if old != 0 && v <= histDecode(old) {
			break
		}
		if h.maxEnc.CompareAndSwap(old, enc) {
			break
		}
	}
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.count.Add(1)
}

// ObserveDuration records a duration sample in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns the p-th percentile (0 <= p <= 100) by nearest rank
// over the buckets: the upper bound of the bucket holding the ranked
// sample, clamped to the observed min and max. It returns 0 for an empty
// histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	return h.quantile(h.count.Load(), p)
}

// quantile answers against a caller-captured count, so one snapshot's
// percentiles agree on the sample population even while writers race.
func (h *Histogram) quantile(count uint64, p float64) float64 {
	if count == 0 {
		return 0
	}
	min := histDecode(h.minEnc.Load())
	max := histDecode(h.maxEnc.Load())
	if p <= 0 {
		return min
	}
	if p >= 100 {
		return max
	}
	rank := uint64(math.Ceil(p / 100 * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			v := histBounds[i]
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
	}
	return max
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// snapshot captures the histogram's summary statistics.
func (h *Histogram) snapshot() HistogramSnapshot {
	count := h.count.Load()
	if count == 0 {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: count,
		Mean:  math.Float64frombits(h.sumBits.Load()) / float64(count),
		Min:   histDecode(h.minEnc.Load()),
		Max:   histDecode(h.maxEnc.Load()),
		P50:   h.quantile(count, 50),
		P95:   h.quantile(count, 95),
		P99:   h.quantile(count, 99),
	}
}

// Snapshot is a point-in-time copy of every metric in a registry,
// marshalable as JSON (map keys marshal sorted, so output is stable).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// MarshalJSON renders the snapshot (ensuring non-nil maps).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	return json.Marshal(alias(s))
}

// regShards is the stripe count for the registry's name→metric maps.
// Lookups hash the metric name to a shard, so get-or-create calls from
// different subsystems (which overwhelmingly use different names) take
// different locks. 16 stripes is plenty: the maps are small and the
// per-sample hot path (Counter.Add, Histogram.Observe) never touches
// them once the caller holds the metric pointer.
const regShards = 16

// regShard is one stripe of the registry.
type regShard struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	funcs  map[string]func() float64
	hists  map[string]*Histogram
}

// Registry is a named collection of metrics, striped regShards ways by
// metric-name hash. Metric constructors return the existing metric when
// the name is already registered, so independent subsystems can share
// names safely. A nil *Registry hands out nil metrics, which record
// nothing.
type Registry struct {
	shards [regShards]regShard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		s := &r.shards[i]
		s.counts = make(map[string]*Counter)
		s.gauges = make(map[string]*Gauge)
		s.funcs = make(map[string]func() float64)
		s.hists = make(map[string]*Histogram)
	}
	return r
}

// shard maps a metric name to its stripe (FNV-1a).
func (r *Registry) shard(name string) *regShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return &r.shards[h%regShards]
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counts[name]
	if !ok {
		c = &Counter{}
		s.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Func registers a callback evaluated at snapshot time and reported
// among the gauges — the zero-plumbing way to expose counters a
// subsystem already keeps (e.g. the RUDP endpoint's Stats). Re-register
// under the same name to replace the callback.
func (r *Registry) Func(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	s := r.shard(name)
	s.mu.Lock()
	s.funcs[name] = fn
	s.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hists[name]
	if !ok {
		h = &Histogram{}
		s.hists[name] = h
	}
	return h
}

// Snapshot captures every metric. Func gauges are evaluated outside the
// shard locks, so callbacks may themselves take locks (including other
// registry shards).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	var funcs map[string]func() float64
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for name, c := range s.counts {
			snap.Counters[name] = c.Value()
		}
		for name, g := range s.gauges {
			snap.Gauges[name] = g.Value()
		}
		for name, h := range s.hists {
			snap.Histograms[name] = h.snapshot()
		}
		if len(s.funcs) > 0 {
			if funcs == nil {
				funcs = make(map[string]func() float64, len(s.funcs))
			}
			for name, fn := range s.funcs {
				funcs[name] = fn
			}
		}
		s.mu.Unlock()
	}
	for name, fn := range funcs {
		snap.Gauges[name] = fn()
	}
	return snap
}

// Names returns the sorted names of all registered metrics.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	var names []string
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for n := range s.counts {
			names = append(names, n)
		}
		for n := range s.gauges {
			names = append(names, n)
		}
		for n := range s.funcs {
			names = append(names, n)
		}
		for n := range s.hists {
			names = append(names, n)
		}
		s.mu.Unlock()
	}
	sort.Strings(names)
	return names
}
