// Package obs is the runtime observability layer of the NapletSocket
// system: a process-wide metrics registry (counters, gauges, log-scale
// latency histograms) snapshot-able as JSON, and a structured, leveled
// event logger with per-connection context.
//
// Unlike the offline instrumentation in internal/metrics and
// internal/trace — which exists to reproduce the paper's figures in
// one-shot benchmark harnesses — this package makes the same quantities
// continuously measurable on a live daemon, where they feed the
// /metrics and /connz endpoints of napletd.
//
// Every type is nil-safe: methods on a nil *Registry, *Counter, *Gauge,
// *Histogram, or *Logger record nothing, so instrumentation can stay
// unconditionally in place in the hot path.
package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an instantaneous float64 metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket geometry: buckets grow geometrically from histLo by
// histGrowth per bucket, so a recorded quantile is within one growth
// factor of the true sample quantile. With growth 1.5 and 64 buckets the
// range spans ~1µs to ~10 hours when samples are milliseconds.
const (
	histBuckets = 64
	histLo      = 1e-3 // first upper bound, in the caller's unit (ms)
	histGrowth  = 1.5
)

// histBounds[i] is the inclusive upper bound of bucket i.
var histBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	v := histLo
	for i := range b {
		b[i] = v
		v *= histGrowth
	}
	return b
}()

// Histogram accumulates samples into log-scale buckets and reports
// nearest-rank quantiles with bounded relative error (one bucket growth
// factor). Samples are conventionally latencies in milliseconds. These
// record control-plane operations (opens, suspends, resumes), so a
// mutex is plenty fast.
type Histogram struct {
	mu       sync.Mutex
	count    uint64
	sum      float64
	min, max float64
	buckets  [histBuckets]uint64
}

// bucketIndex returns the bucket whose range contains v.
func bucketIndex(v float64) int {
	if v <= histLo {
		return 0
	}
	i := int(math.Ceil(math.Log(v/histLo) / math.Log(histGrowth)))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.buckets[bucketIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// ObserveDuration records a duration sample in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns the p-th percentile (0 <= p <= 100) by nearest rank
// over the buckets: the upper bound of the bucket holding the ranked
// sample, clamped to the observed min and max. It returns 0 for an empty
// histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(p)
}

func (h *Histogram) quantileLocked(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			v := histBounds[i]
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// snapshot captures the histogram's summary statistics.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.count,
		Mean:  h.sum / float64(h.count),
		Min:   h.min,
		Max:   h.max,
		P50:   h.quantileLocked(50),
		P95:   h.quantileLocked(95),
		P99:   h.quantileLocked(99),
	}
}

// Snapshot is a point-in-time copy of every metric in a registry,
// marshalable as JSON (map keys marshal sorted, so output is stable).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// MarshalJSON renders the snapshot (ensuring non-nil maps).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	return json.Marshal(alias(s))
}

// Registry is a named collection of metrics. Metric constructors return
// the existing metric when the name is already registered, so independent
// subsystems can share names safely. A nil *Registry hands out nil
// metrics, which record nothing.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	funcs  map[string]func() float64
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		funcs:  make(map[string]func() float64),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Func registers a callback evaluated at snapshot time and reported
// among the gauges — the zero-plumbing way to expose counters a
// subsystem already keeps (e.g. the RUDP endpoint's Stats). Re-register
// under the same name to replace the callback.
func (r *Registry) Func(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric. Func gauges are evaluated outside the
// registry lock, so callbacks may themselves take locks.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	for name, c := range r.counts {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.snapshot()
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for name, fn := range r.funcs {
		funcs[name] = fn
	}
	r.mu.Unlock()
	for name, fn := range funcs {
		snap.Gauges[name] = fn()
	}
	return snap
}

// Names returns the sorted names of all registered metrics.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counts)+len(r.gauges)+len(r.funcs)+len(r.hists))
	for n := range r.counts {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.funcs {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}
