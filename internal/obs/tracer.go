package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// This file adds distributed tracing to the observability layer: bounded
// in-memory spans grouped into traces whose identity travels across hosts
// with the migration itself. A trace is born where a migration (or
// connection open) starts; its context — trace id plus parent span id —
// rides the control messages and transport hellos so the suspend on the
// origin host, the handoff on the stationary peer, and the resume on the
// destination host all land under one id. Each host keeps only its own
// spans; /tracez (or a test) merges the per-host views by trace id.

// TraceID identifies one distributed trace (a migration, a connection
// open). It is 16 random bytes, rendered as hex.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the id is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as lowercase hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as lowercase hex.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated half of a span: enough for a remote host
// to attach its own spans to the same trace.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real trace.
func (c SpanContext) Valid() bool { return !c.Trace.IsZero() }

// spanContextLen is the wire size of a marshaled SpanContext.
const spanContextLen = 16 + 8

// Marshal returns the 24-byte wire form of c, or nil when invalid; the
// transport hello and migration blob carry it opaquely.
func (c SpanContext) Marshal() []byte {
	if !c.Valid() {
		return nil
	}
	b := make([]byte, 0, spanContextLen)
	b = append(b, c.Trace[:]...)
	return append(b, c.Span[:]...)
}

// UnmarshalSpanContext parses a Marshal'd context; ok is false for empty
// or malformed input.
func UnmarshalSpanContext(b []byte) (SpanContext, bool) {
	if len(b) != spanContextLen {
		return SpanContext{}, false
	}
	var c SpanContext
	copy(c.Trace[:], b[:16])
	copy(c.Span[:], b[16:])
	return c, c.Valid()
}

// Span is one timed operation inside a trace. Spans are recorded into the
// tracer's store when ended; a span that is never ended is never visible.
// All methods are safe on a nil *Span, so call sites need no tracing
// guards.
type Span struct {
	tracer *Tracer
	ctx    SpanContext
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	notes []string
	ended bool
}

// Tracer records spans for one host into a bounded store: at most
// maxTraces traces (oldest evicted first) of at most maxSpans spans each.
// A nil *Tracer is valid and records nothing.
type Tracer struct {
	host string

	mu     sync.Mutex
	traces map[TraceID]*traceEntry
	order  []TraceID // insertion order, for eviction
	active map[string]SpanContext

	maxTraces int
	maxSpans  int
	dropped   uint64
}

type traceEntry struct {
	first time.Time
	spans []SpanRecord
}

const (
	defaultMaxTraces        = 256
	defaultMaxSpansPerTrace = 512
)

// NewTracer returns a tracer whose spans are attributed to host.
func NewTracer(host string) *Tracer {
	return &Tracer{
		host:      host,
		traces:    make(map[TraceID]*traceEntry),
		active:    make(map[string]SpanContext),
		maxTraces: defaultMaxTraces,
		maxSpans:  defaultMaxSpansPerTrace,
	}
}

// Host returns the host name spans are attributed to.
func (t *Tracer) Host() string {
	if t == nil {
		return ""
	}
	return t.host
}

func randomBytes(b []byte) {
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failure is unrecoverable in practice; leave zeros,
		// which render as an invalid (ignored) context.
		for i := range b {
			b[i] = 0
		}
	}
}

// StartTrace begins a new trace rooted at a span called name.
func (t *Tracer) StartTrace(name string) *Span {
	if t == nil {
		return nil
	}
	var ctx SpanContext
	randomBytes(ctx.Trace[:])
	randomBytes(ctx.Span[:])
	return &Span{tracer: t, ctx: ctx, name: name, start: time.Now()}
}

// StartSpan begins a child span of parent, which may have been created on
// another host. An invalid parent yields a nil span.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Span {
	return t.StartSpanAt(parent, name, time.Now())
}

// StartSpanAt is StartSpan with an explicit start time, for spans whose
// beginning was observed before the tracer got involved (e.g. a transfer
// span backdated to the departure timestamp carried in the migration
// blob).
func (t *Tracer) StartSpanAt(parent SpanContext, name string, start time.Time) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	ctx := SpanContext{Trace: parent.Trace}
	randomBytes(ctx.Span[:])
	return &Span{tracer: t, ctx: ctx, parent: parent.Span, name: name, start: start}
}

// Context returns the span's propagable context (zero for a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// Child begins a child span of s on the same tracer.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.StartSpan(s.ctx, name)
}

// Annotate attaches a free-form note to the span.
func (s *Span) Annotate(note string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.notes) < 32 {
		s.notes = append(s.notes, note)
	}
	s.mu.Unlock()
}

// End records the span into the tracer's store. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	notes := s.notes
	s.mu.Unlock()
	s.tracer.record(SpanRecord{
		Trace:  s.ctx.Trace,
		Span:   s.ctx.Span,
		Parent: s.parent,
		Name:   s.name,
		Host:   s.tracer.host,
		Start:  s.start,
		End:    now,
		Notes:  notes,
	})
}

// SpanRecord is one finished span as stored and served by /tracez.
type SpanRecord struct {
	Trace  TraceID   `json:"-"`
	Span   SpanID    `json:"-"`
	Parent SpanID    `json:"-"`
	Name   string    `json:"name"`
	Host   string    `json:"host"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Notes  []string  `json:"notes,omitempty"`

	// Hex forms for JSON consumers.
	SpanHex   string `json:"span"`
	ParentHex string `json:"parent,omitempty"`
}

// DurationMs returns the span's duration in milliseconds.
func (r SpanRecord) DurationMs() float64 {
	return float64(r.End.Sub(r.Start)) / float64(time.Millisecond)
}

func (t *Tracer) record(r SpanRecord) {
	r.SpanHex = r.Span.String()
	if !r.Parent.IsZero() {
		r.ParentHex = r.Parent.String()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.traces[r.Trace]
	if e == nil {
		for len(t.order) >= t.maxTraces {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
		e = &traceEntry{first: r.Start}
		t.traces[r.Trace] = e
		t.order = append(t.order, r.Trace)
	}
	if len(e.spans) >= t.maxSpans {
		t.dropped++
		return
	}
	if r.Start.Before(e.first) {
		e.first = r.Start
	}
	e.spans = append(e.spans, r)
}

// SetActive publishes the span context of an in-flight operation under a
// key (e.g. a migrating agent's id), so a layer that cannot be handed the
// context directly can still join the trace.
func (t *Tracer) SetActive(key string, ctx SpanContext) {
	if t == nil || !ctx.Valid() {
		return
	}
	t.mu.Lock()
	t.active[key] = ctx
	t.mu.Unlock()
}

// Active returns the context published under key (zero when absent).
func (t *Tracer) Active(key string) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active[key]
}

// ClearActive removes the context published under key.
func (t *Tracer) ClearActive(key string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.active, key)
	t.mu.Unlock()
}

// TraceSnapshot is one trace as served by /tracez: this host's spans plus
// derived per-phase durations.
type TraceSnapshot struct {
	ID    string    `json:"id"`
	Root  string    `json:"root"`
	Start time.Time `json:"start"`
	// DurationMs spans the earliest start to the latest end among this
	// host's spans.
	DurationMs float64            `json:"duration_ms"`
	Spans      []SpanRecord       `json:"spans"`
	Phases     map[string]float64 `json:"phases_ms"`
}

// Snapshot returns the stored traces, most recent first.
func (t *Tracer) Snapshot() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TraceSnapshot, 0, len(t.order))
	for i := len(t.order) - 1; i >= 0; i-- {
		id := t.order[i]
		e := t.traces[id]
		ts := TraceSnapshot{
			ID:     id.String(),
			Start:  e.first,
			Spans:  append([]SpanRecord(nil), e.spans...),
			Phases: make(map[string]float64, len(e.spans)),
		}
		out = append(out, ts)
	}
	t.mu.Unlock()

	for i := range out {
		ts := &out[i]
		var last time.Time
		rootStart := time.Time{}
		for _, sp := range ts.Spans {
			ts.Phases[sp.Name] += sp.DurationMs()
			if sp.End.After(last) {
				last = sp.End
			}
			if rootStart.IsZero() || sp.Start.Before(rootStart) {
				rootStart = sp.Start
				ts.Root = sp.Name
			}
		}
		if !last.IsZero() {
			ts.DurationMs = float64(last.Sub(ts.Start)) / float64(time.Millisecond)
		}
	}
	return out
}

// Slowest returns the n stored traces with the largest durations, slowest
// first.
func (t *Tracer) Slowest(n int) []TraceSnapshot {
	all := t.Snapshot()
	sort.SliceStable(all, func(i, j int) bool { return all[i].DurationMs > all[j].DurationMs })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Dropped returns the count of spans discarded because their trace was
// full.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
