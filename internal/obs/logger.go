package obs

import (
	"fmt"
	"strings"
)

// Level is a log severity.
type Level int8

// Severities, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int8(l))
	}
}

// ParseLevel parses a level name (case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
	}
}

// Logger is a leveled, structured event logger. Field context added with
// With is rendered after the message as space-separated key=value pairs,
// so a connection-scoped logger carries its conn id, FSM state, and host
// on every line. The sink is any printf-style function (log.Printf, a
// testing.T's Logf, ...), which keeps the tree compatible with the
// pre-existing Config.Logf plumbing.
//
// A nil *Logger discards everything. Loggers are immutable; With returns
// a derived logger and is safe for concurrent use.
type Logger struct {
	min    Level
	sink   func(format string, args ...any)
	fields string // rendered " k=v k=v" suffix
}

// NewLogger builds a logger emitting lines at or above min to sink. A
// nil sink yields a nil (discard-everything) logger.
func NewLogger(sink func(format string, args ...any), min Level) *Logger {
	if sink == nil {
		return nil
	}
	return &Logger{min: min, sink: sink}
}

// With returns a logger that appends key=value to every line.
func (l *Logger) With(key string, value any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{
		min:    l.min,
		sink:   l.sink,
		fields: l.fields + " " + key + "=" + fmt.Sprint(value),
	}
}

// Level returns the minimum emitted level.
func (l *Logger) Level() Level {
	if l == nil {
		return LevelError + 1
	}
	return l.min
}

// Enabled reports whether lines at lv would be emitted — the guard for
// instrumentation that is expensive to format.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.min
}

// Logf emits one line at lv.
func (l *Logger) Logf(lv Level, format string, args ...any) {
	if !l.Enabled(lv) {
		return
	}
	l.sink("%-5s %s%s", lv, fmt.Sprintf(format, args...), l.fields)
}

// Debugf emits at LevelDebug: per-transition, per-frame detail.
func (l *Logger) Debugf(format string, args ...any) { l.Logf(LevelDebug, format, args...) }

// Infof emits at LevelInfo: lifecycle edges (open, suspend, resume,
// close, migrate).
func (l *Logger) Infof(format string, args ...any) { l.Logf(LevelInfo, format, args...) }

// Warnf emits at LevelWarn: degraded but recoverable conditions.
func (l *Logger) Warnf(format string, args ...any) { l.Logf(LevelWarn, format, args...) }

// Errorf emits at LevelError: operations that failed outright.
func (l *Logger) Errorf(format string, args ...any) { l.Logf(LevelError, format, args...) }
