package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"naplet/internal/metrics"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := r.Counter("x").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("y")
	g.Set(2.5)
	g.Add(-1)
	if got := r.Gauge("y").Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	r.Func("z", func() float64 { return 42 })
	snap := r.Snapshot()
	if snap.Counters["x"] != 5 || snap.Gauges["y"] != 1.5 || snap.Gauges["z"] != 42 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Func("c", func() float64 { return 1 })
	r.Histogram("d").Observe(1)
	if n := r.Histogram("d").Count(); n != 0 {
		t.Fatalf("nil histogram count = %d", n)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
	var l *Logger
	l.Infof("dropped")
	l.With("k", "v").Errorf("dropped")
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

// TestHistogramQuantileOracle checks the histogram's percentile math
// against metrics.Series (exact nearest-rank) as the oracle: every
// reported quantile must be within one bucket growth factor of the exact
// value, and min/max must be exact.
func TestHistogramQuantileOracle(t *testing.T) {
	// Deterministic pseudo-random samples spanning several decades.
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		// Map into (0, ~4000) ms with a long tail.
		u := float64(seed%1_000_000) / 1_000_000
		return math.Exp(u*10) / 5.5
	}
	h := &Histogram{}
	s := metrics.NewSeries()
	for i := 0; i < 5000; i++ {
		v := next()
		h.Observe(v)
		s.Add(v)
	}
	if h.Count() != uint64(s.N()) {
		t.Fatalf("count %d != %d", h.Count(), s.N())
	}
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99, 99.9} {
		exact := s.Percentile(p)
		got := h.Quantile(p)
		if got < exact || got > exact*histGrowth {
			t.Errorf("p%v = %v, exact %v (allowed [%v, %v])", p, got, exact, exact, exact*histGrowth)
		}
	}
	if got := h.Quantile(0); got != s.Min() {
		t.Errorf("min = %v, want %v", got, s.Min())
	}
	if got := h.Quantile(100); got != s.Max() {
		t.Errorf("max = %v, want %v", got, s.Max())
	}
	snap := h.snapshot()
	if math.Abs(snap.Mean-s.Mean()) > 1e-9*s.Mean() {
		t.Errorf("mean = %v, want %v", snap.Mean, s.Mean())
	}
}

func TestHistogramSmallAndEdge(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(50) != 0 {
		t.Fatal("empty quantile != 0")
	}
	h.ObserveDuration(3 * time.Millisecond)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Quantile(p); got != 3 {
			t.Fatalf("single-sample p%v = %v, want 3", p, got)
		}
	}
	// Negative and sub-resolution samples land in the first bucket.
	h2 := &Histogram{}
	h2.Observe(-5)
	h2.Observe(1e-9)
	if h2.Count() != 2 || h2.Quantile(100) != 1e-9 {
		t.Fatalf("edge samples: count=%d max=%v", h2.Count(), h2.Quantile(100))
	}
}

func TestHistogramAllEqualSamples(t *testing.T) {
	// Every quantile of a constant series is that constant: the bucketed
	// estimate must return the exact tracked min/max, not a bucket bound.
	h := &Histogram{}
	for i := 0; i < 1000; i++ {
		h.Observe(37.5)
	}
	for _, p := range []float64{0, 1, 50, 95, 99, 99.9, 100} {
		if got := h.Quantile(p); got != 37.5 {
			t.Errorf("all-equal p%v = %v, want 37.5", p, got)
		}
	}
	snap := h.snapshot()
	if snap.Min != 37.5 || snap.Max != 37.5 || snap.Mean != 37.5 {
		t.Errorf("all-equal snapshot = %+v", snap)
	}

	// Empty series: every field and quantile is zero.
	empty := (&Histogram{}).snapshot()
	if empty.Count != 0 || empty.Min != 0 || empty.Max != 0 ||
		empty.Mean != 0 || empty.P50 != 0 || empty.P99 != 0 {
		t.Errorf("empty snapshot = %+v", empty)
	}
	if got := (&Histogram{}).Quantile(99.9); got != 0 {
		t.Errorf("empty p99.9 = %v", got)
	}
}

// TestRegistrySnapshotDuringWrites hammers one registry with concurrent
// instrument registration, updates, and Snapshot/WritePrometheus readers;
// the race detector is the assertion.
func TestRegistrySnapshotDuringWrites(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter(fmt.Sprintf("c%d", i%7)).Inc()
				r.Gauge(fmt.Sprintf("g%d", g)).Set(float64(i))
				r.Histogram(fmt.Sprintf("h%d", i%3)).Observe(float64(i % 100))
				if i%10 == 0 {
					r.Func(fmt.Sprintf("f%d.%d", g, i%5), func() float64 { return float64(i) })
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				if snap.Counters == nil {
					t.Error("snapshot lost counters map")
					return
				}
				r.WritePrometheus(io.Discard)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("fsm.transition.ESTABLISHED->SUS_SENT").Inc()
	r.Histogram("suspend.ms").Observe(12)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["fsm.transition.ESTABLISHED->SUS_SENT"] != 1 {
		t.Fatalf("roundtrip counters = %+v", back.Counters)
	}
	if back.Histograms["suspend.ms"].Count != 1 || back.Histograms["suspend.ms"].P50 == 0 {
		t.Fatalf("roundtrip histograms = %+v", back.Histograms)
	}
}

func TestLoggerLevelsAndFields(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	sink := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	l := NewLogger(sink, LevelInfo)
	l.Debugf("hidden %d", 1)
	l.With("conn", "abc").With("state", "ESTABLISHED").Infof("resumed in %dms", 7)
	l.Errorf("boom")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.Contains(lines[0], "resumed in 7ms") ||
		!strings.Contains(lines[0], "conn=abc") ||
		!strings.Contains(lines[0], "state=ESTABLISHED") ||
		!strings.HasPrefix(lines[0], "INFO") {
		t.Fatalf("line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "ERROR") {
		t.Fatalf("line = %q", lines[1])
	}
	if !l.Enabled(LevelWarn) || l.Enabled(LevelDebug) {
		t.Fatal("Enabled misreports")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "Info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, " error ": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("expected error")
	}
}
