package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format,
// hand-written so the repo stays dependency-free. Registry names use dots
// (and the FSM edge counters embed "->"), so every name is sanitized to
// the [a-zA-Z_:][a-zA-Z0-9_:]* grammar. A registered name may carry a
// trailing {label="value"} block (build.info does); the block is passed
// through after the bare name is sanitized, which is how a label-free
// registry still exposes labeled identity gauges.

// PromName sanitizes a registry metric name into a legal Prometheus
// metric name, preserving a trailing {...} label block if present.
func PromName(name string) string {
	labels := ""
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		labels = name[i:]
		name = name[:i]
	}
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String() + labels
}

// promSplit separates the sanitized metric name from its label block.
func promSplit(name string) (base, labels string) {
	s := PromName(name)
	if i := strings.IndexByte(s, '{'); i >= 0 {
		return s[:i], s[i:]
	}
	return s, ""
}

func promFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every metric of the registry to w in the
// Prometheus text exposition format: counters and gauges as-is,
// histograms as summaries (quantile series plus _sum and _count). A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	return WritePrometheusSnapshot(w, r.Snapshot(), r.histogramSums())
}

// histogramSums captures each histogram's running sum, which the summary
// rendering needs but HistogramSnapshot (Mean-based) does not carry.
func (r *Registry) histogramSums() map[string]float64 {
	out := make(map[string]float64)
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for name, h := range s.hists {
			out[name] = math.Float64frombits(h.sumBits.Load())
		}
		s.mu.Unlock()
	}
	return out
}

// WritePrometheusSnapshot renders a point-in-time snapshot; sums may be
// nil, in which case each histogram's sum is reconstructed as mean*count.
func WritePrometheusSnapshot(w io.Writer, s Snapshot, sums map[string]float64) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, labels := promSplit(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", base, base, labels, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, labels := promSplit(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %s\n", base, base, labels, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		base, _ := promSplit(name)
		sum, ok := sums[name]
		if !ok {
			sum = h.Mean * float64(h.Count)
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", base); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			v     float64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", base, q.label, promFloat(q.v)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", base, promFloat(sum), base, h.Count); err != nil {
			return err
		}
	}
	return nil
}
