// Package dhkx implements the Diffie-Hellman key exchange used by
// NapletSocket to establish a secret session key at connection setup
// (Section 3.3 of the paper), plus the HMAC-based authenticator derived from
// that key. Every subsequent suspend, resume, and close request on the
// connection must carry a tag under the session key; requests without a
// valid tag are denied, protecting connection migration from eavesdropping
// and hijacking.
//
// The group is the 2048-bit MODP group 14 of RFC 3526 with generator 2 —
// well beyond the paper's 2004-era parameters, using only the standard
// library (math/big, crypto/rand, crypto/hmac, crypto/sha256).
package dhkx

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"math/big"
)

// modp2048Hex is the prime of RFC 3526 group 14.
const modp2048Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
	"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9" +
	"DE2BCBF6955817183995497CEA956AE515D2261898FA0510" +
	"15728E5A8AACAA68FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF"

var (
	prime     *big.Int
	generator = big.NewInt(2)
	// pMinus2 bounds valid public values: 2 <= pub <= p-2.
	pMinus2 *big.Int
)

func init() {
	var ok bool
	prime, ok = new(big.Int).SetString(modp2048Hex, 16)
	if !ok {
		panic("dhkx: bad MODP constant")
	}
	pMinus2 = new(big.Int).Sub(prime, big.NewInt(2))
}

// KeySize is the size in bytes of a derived session key.
const KeySize = 32

// privateBits is the size of the random exponent; 256 bits gives the full
// strength of the 2048-bit group per RFC 3526 guidance.
const privateBits = 256

// ErrInvalidPublicKey reports a peer public value outside (1, p-1), which
// would leak the shared secret (small-subgroup confinement).
var ErrInvalidPublicKey = errors.New("dhkx: invalid peer public key")

// KeyPair is one party's ephemeral DH key pair.
type KeyPair struct {
	priv *big.Int
	pub  *big.Int
}

// GenerateKeyPair draws a fresh ephemeral key pair from crypto/rand.
func GenerateKeyPair() (*KeyPair, error) {
	max := new(big.Int).Lsh(big.NewInt(1), privateBits)
	for {
		priv, err := rand.Int(rand.Reader, max)
		if err != nil {
			return nil, fmt.Errorf("dhkx: generating private key: %w", err)
		}
		if priv.Sign() <= 0 || priv.BitLen() < 2 {
			continue
		}
		pub := new(big.Int).Exp(generator, priv, prime)
		return &KeyPair{priv: priv, pub: pub}, nil
	}
}

// PublicBytes returns the party's public value for transmission.
func (kp *KeyPair) PublicBytes() []byte { return kp.pub.Bytes() }

// SharedSecret combines the private key with the peer's public value and
// returns the raw shared group element bytes. It rejects degenerate peer
// values (0, 1, p-1 and out-of-range) that would fix the secret.
func (kp *KeyPair) SharedSecret(peerPublic []byte) ([]byte, error) {
	pub := new(big.Int).SetBytes(peerPublic)
	if pub.Cmp(big.NewInt(2)) < 0 || pub.Cmp(pMinus2) > 0 {
		return nil, ErrInvalidPublicKey
	}
	secret := new(big.Int).Exp(pub, kp.priv, prime)
	return secret.Bytes(), nil
}

// DeriveSessionKey turns the raw DH secret into a fixed-size session key
// bound to a particular connection id, using an HKDF-style extract/expand
// with HMAC-SHA256.
func DeriveSessionKey(secret, connID []byte) []byte {
	// Extract with a fixed protocol salt.
	ext := hmac.New(sha256.New, []byte("napletsocket-v1 key extract"))
	ext.Write(secret)
	prk := ext.Sum(nil)
	// Expand bound to the connection id.
	exp := hmac.New(sha256.New, prk)
	exp.Write([]byte("napletsocket-v1 session key"))
	exp.Write(connID)
	exp.Write([]byte{1})
	return exp.Sum(nil)[:KeySize]
}

// Authenticator signs and verifies control messages under a session key.
// The zero value is unusable; construct with NewAuthenticator.
type Authenticator struct {
	key []byte
}

// NewAuthenticator wraps a derived session key.
func NewAuthenticator(sessionKey []byte) (*Authenticator, error) {
	if len(sessionKey) != KeySize {
		return nil, fmt.Errorf("dhkx: session key must be %d bytes, got %d", KeySize, len(sessionKey))
	}
	k := make([]byte, KeySize)
	copy(k, sessionKey)
	return &Authenticator{key: k}, nil
}

// TagSize is the length of a signature tag.
const TagSize = sha256.Size

// Sign returns the HMAC-SHA256 tag of msg under the session key.
func (a *Authenticator) Sign(msg []byte) [TagSize]byte {
	m := hmac.New(sha256.New, a.key)
	m.Write(msg)
	var tag [TagSize]byte
	copy(tag[:], m.Sum(nil))
	return tag
}

// Verify reports whether tag is the valid signature of msg, in constant
// time.
func (a *Authenticator) Verify(msg []byte, tag [TagSize]byte) bool {
	want := a.Sign(msg)
	return subtle.ConstantTimeCompare(want[:], tag[:]) == 1
}

// Exchange is a convenience for tests and examples: it runs both halves of
// a key exchange locally and returns the two (identical) session keys.
func Exchange(connID []byte) (clientKey, serverKey []byte, err error) {
	a, err := GenerateKeyPair()
	if err != nil {
		return nil, nil, err
	}
	b, err := GenerateKeyPair()
	if err != nil {
		return nil, nil, err
	}
	sa, err := a.SharedSecret(b.PublicBytes())
	if err != nil {
		return nil, nil, err
	}
	sb, err := b.SharedSecret(a.PublicBytes())
	if err != nil {
		return nil, nil, err
	}
	return DeriveSessionKey(sa, connID), DeriveSessionKey(sb, connID), nil
}
