package dhkx

import (
	"bytes"
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

func TestKeyExchangeAgreement(t *testing.T) {
	a, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.SharedSecret(b.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.SharedSecret(a.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatal("shared secrets differ")
	}
	ka := DeriveSessionKey(sa, []byte("conn-1"))
	kb := DeriveSessionKey(sb, []byte("conn-1"))
	if !bytes.Equal(ka, kb) {
		t.Fatal("session keys differ")
	}
	if len(ka) != KeySize {
		t.Fatalf("key size %d, want %d", len(ka), KeySize)
	}
}

func TestSessionKeyBoundToConnID(t *testing.T) {
	secret := []byte("shared secret bytes")
	k1 := DeriveSessionKey(secret, []byte("conn-1"))
	k2 := DeriveSessionKey(secret, []byte("conn-2"))
	if bytes.Equal(k1, k2) {
		t.Fatal("different connections derived the same session key")
	}
}

func TestDistinctPairsDistinctKeys(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 8; i++ {
		kp, err := GenerateKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		pub := string(kp.PublicBytes())
		if seen[pub] {
			t.Fatal("duplicate public key generated")
		}
		seen[pub] = true
	}
}

func TestRejectDegeneratePublicKeys(t *testing.T) {
	kp, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	pMinus1 := new(big.Int).Sub(prime, big.NewInt(1))
	bad := [][]byte{
		nil,
		{},
		{0},
		{1},
		pMinus1.Bytes(),
		prime.Bytes(),
		new(big.Int).Add(prime, big.NewInt(5)).Bytes(),
	}
	for i, pub := range bad {
		if _, err := kp.SharedSecret(pub); !errors.Is(err, ErrInvalidPublicKey) {
			t.Errorf("degenerate key %d accepted (err=%v)", i, err)
		}
	}
}

func TestAuthenticatorSignVerify(t *testing.T) {
	key := DeriveSessionKey([]byte("secret"), []byte("conn"))
	auth, err := NewAuthenticator(key)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("SUSPEND conn-1 nonce=5")
	tag := auth.Sign(msg)
	if !auth.Verify(msg, tag) {
		t.Fatal("valid tag rejected")
	}
	// Tampered message.
	if auth.Verify([]byte("SUSPEND conn-1 nonce=6"), tag) {
		t.Fatal("tampered message accepted")
	}
	// Tampered tag.
	tag[0] ^= 1
	if auth.Verify(msg, tag) {
		t.Fatal("tampered tag accepted")
	}
}

func TestAuthenticatorKeyIsolation(t *testing.T) {
	k1 := DeriveSessionKey([]byte("secret-1"), []byte("conn"))
	k2 := DeriveSessionKey([]byte("secret-2"), []byte("conn"))
	a1, _ := NewAuthenticator(k1)
	a2, _ := NewAuthenticator(k2)
	msg := []byte("RESUME")
	if a2.Verify(msg, a1.Sign(msg)) {
		t.Fatal("tag under key 1 verified under key 2")
	}
}

func TestAuthenticatorRejectsBadKeySize(t *testing.T) {
	if _, err := NewAuthenticator([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestAuthenticatorDefensiveKeyCopy(t *testing.T) {
	key := DeriveSessionKey([]byte("secret"), []byte("conn"))
	auth, _ := NewAuthenticator(key)
	msg := []byte("m")
	tag := auth.Sign(msg)
	key[0] ^= 0xff // caller mutates its copy
	if !auth.Verify(msg, tag) {
		t.Fatal("authenticator shared the caller's key slice")
	}
}

func TestSignVerifyProperty(t *testing.T) {
	key := DeriveSessionKey([]byte("prop"), []byte("conn"))
	auth, _ := NewAuthenticator(key)
	f := func(msg []byte) bool {
		return auth.Verify(msg, auth.Sign(msg))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(msg []byte, flip uint8) bool {
		if len(msg) == 0 {
			return true
		}
		tag := auth.Sign(msg)
		mutated := append([]byte(nil), msg...)
		mutated[int(flip)%len(mutated)] ^= 1 + flip%255
		if bytes.Equal(mutated, msg) {
			return true
		}
		return !auth.Verify(mutated, tag)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestExchangeHelper(t *testing.T) {
	ck, sk, err := Exchange([]byte("conn-xyz"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ck, sk) {
		t.Fatal("exchange produced mismatched keys")
	}
}

func BenchmarkKeyExchange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := Exchange([]byte("bench")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSign(b *testing.B) {
	key := DeriveSessionKey([]byte("s"), []byte("c"))
	auth, _ := NewAuthenticator(key)
	msg := bytes.Repeat([]byte("x"), 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		auth.Sign(msg)
	}
}
