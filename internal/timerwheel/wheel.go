// Package timerwheel provides a hierarchical timing wheel: a shared
// replacement for the per-connection time.Timer/time.AfterFunc churn that
// dominates the scheduler at 100k+ connections. One wheel runs one
// goroutine regardless of how many timers are armed, insertion and
// cancellation are O(1), and expiry processing touches only the bucket
// whose tick arrived. The price is coarse granularity: a timer fires
// within one tick after its deadline, which is exactly right for protocol
// timeouts (op timeouts, drain deadlines, reconnect backoff) and wrong
// for microsecond pacing — callers needing precision keep time.Timer.
//
// The wheel is hierarchical in the classic Varghese/Lauck arrangement:
// level 0 spans wheelSlots ticks at full resolution, and each level above
// spans wheelSlots times the level below at correspondingly coarser
// resolution. A timer lands in the coarsest level that still resolves its
// deadline and cascades toward level 0 as the wheels turn, so far-out
// timers cost nothing until they get close.
package timerwheel

import (
	"sync"
	"time"
)

const (
	// wheelSlots is the bucket count per level; a power of two so the
	// slot index is a mask away.
	wheelSlots = 256
	wheelMask  = wheelSlots - 1
	// wheelLevels bounds the horizon: with a 2ms tick, level 0 spans
	// ~0.5s, level 1 ~2.2min, level 2 ~9.3h, level 3 ~99d. Anything
	// beyond the horizon clamps to the last bucket and re-cascades.
	wheelLevels = 4
)

// DefaultTick is the default wheel granularity. Two milliseconds keeps
// the idle wakeup rate of a busy wheel at 500/s for the whole process —
// versus one runtime timer per pending operation — while staying well
// under every protocol timeout in the tree (the tightest is 5ms).
const DefaultTick = 2 * time.Millisecond

// Timer is one scheduled callback. The zero value is not a valid Timer;
// they come from Wheel.AfterFunc.
type Timer struct {
	w *Wheel
	// deadline is the absolute expiry in ticks since the wheel epoch.
	deadline uint64
	fn       func()
	// bucket links: an intrusive doubly-linked list per slot.
	next, prev *Timer
	// slot is the bucket the timer currently sits in, nil when detached
	// (fired, cancelled, or in-flight between cascade and re-insert).
	slot *bucket
	// fired marks a timer whose callback ran (or is running).
	fired bool
}

type bucket struct{ head *Timer }

func (b *bucket) insert(t *Timer) {
	t.slot = b
	t.prev = nil
	t.next = b.head
	if b.head != nil {
		b.head.prev = t
	}
	b.head = t
}

func (b *bucket) remove(t *Timer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		b.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	t.next, t.prev, t.slot = nil, nil, nil
}

// Wheel is one hierarchical timing wheel with its own driver goroutine.
type Wheel struct {
	tick time.Duration

	mu     sync.Mutex
	levels [wheelLevels][wheelSlots]bucket
	// now is the current wheel time in ticks since start.
	now    uint64
	armed  int // live timers, so the driver can sleep when idle
	closed bool

	start time.Time
	wake  chan struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

// New starts a wheel with the given tick granularity (DefaultTick when
// tick <= 0).
func New(tick time.Duration) *Wheel {
	if tick <= 0 {
		tick = DefaultTick
	}
	w := &Wheel{
		tick:  tick,
		start: time.Now(),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	w.wg.Add(1)
	go w.run()
	return w
}

// Close stops the driver goroutine. Pending timers never fire; pending
// Stop calls still work. Close is idempotent.
func (w *Wheel) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
	w.wg.Wait()
}

// AfterFunc schedules fn to run on the wheel's driver goroutine once d
// has elapsed — within one tick after, never before. fn must not block:
// it shares the driver with every other timer on the wheel. d <= 0 fires
// on the next tick.
func (w *Wheel) AfterFunc(d time.Duration, fn func()) *Timer {
	t := &Timer{w: w, fn: fn}
	w.mu.Lock()
	if w.closed {
		// A closed wheel (shutdown) swallows the timer; Stop still works.
		t.fired = true
		w.mu.Unlock()
		return t
	}
	// The deadline is the first tick whose wall time is >= now+d, so a
	// timer never fires early. It is computed from wall time, not w.now:
	// wheel time lags wall time while the driver sleeps idle, and a
	// deadline measured from the stale position would expire instantly
	// in the catch-up sweep.
	if d < 0 {
		d = 0
	}
	t.deadline = uint64((time.Since(w.start) + d + w.tick - 1) / w.tick)
	if t.deadline <= w.now {
		t.deadline = w.now + 1
	}
	w.placeLocked(t)
	w.armed++
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
	return t
}

// placeLocked files t in the coarsest level that resolves its deadline.
// Caller holds mu and has set t.deadline >= w.now+1.
func (w *Wheel) placeLocked(t *Timer) {
	delta := t.deadline - w.now
	span := uint64(wheelSlots)
	for lvl := 0; lvl < wheelLevels; lvl++ {
		if delta < span || lvl == wheelLevels-1 {
			// Beyond the horizon, file into this level's farthest slot
			// without touching the real deadline; the cascade re-places
			// it until the deadline resolves, so it never fires early.
			pos := t.deadline
			if delta >= span {
				pos = w.now + span - 1
			}
			shift := lvl * 8 // log2(wheelSlots) bits per level
			idx := (pos >> shift) & wheelMask
			w.levels[lvl][idx].insert(t)
			return
		}
		span *= wheelSlots
	}
}

// Stop cancels the timer, reporting whether it was still pending (false
// when it already fired or was stopped). It does not wait for a running
// callback.
func (t *Timer) Stop() bool {
	w := t.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if t.fired || t.slot == nil {
		return false
	}
	t.slot.remove(t)
	t.fired = true
	w.armed--
	return true
}

// run is the driver: it advances wheel time to wall time, expiring and
// cascading buckets, then sleeps — one tick when timers are armed, or
// until an AfterFunc wakes it when idle.
func (w *Wheel) run() {
	defer w.wg.Done()
	timer := time.NewTimer(w.tick)
	defer timer.Stop()
	for {
		w.mu.Lock()
		target := uint64(time.Since(w.start) / w.tick)
		if w.armed == 0 && target > w.now {
			// Nothing pending: fast-forward past the idle gap instead of
			// sweeping every empty tick of it.
			w.now = target
		}
		var ready *Timer
		for w.now < target {
			w.now++
			ready = w.collectLocked(w.now, ready)
		}
		idle := w.armed == 0
		w.mu.Unlock()

		// Fire outside the lock: callbacks may schedule or stop timers.
		for ready != nil {
			next := ready.next
			ready.next = nil
			ready.fn()
			ready = next
		}

		if idle {
			select {
			case <-w.wake:
			case <-w.done:
				return
			}
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(w.tick)
		select {
		case <-timer.C:
		case <-w.done:
			return
		}
	}
}

// collectLocked processes one tick: level 0's bucket expires, and each
// coarser level whose boundary the tick crossed cascades its bucket down.
// Expired timers are chained onto ready (via their next links) for firing
// outside the lock. Caller holds mu.
func (w *Wheel) collectLocked(now uint64, ready *Timer) *Timer {
	// Expire level 0.
	b := &w.levels[0][now&wheelMask]
	for t := b.head; t != nil; {
		next := t.next
		b.remove(t)
		t.fired = true
		w.armed--
		t.next = ready
		ready = t
		t = next
	}
	// Cascade higher levels on their boundaries.
	for lvl := 1; lvl < wheelLevels; lvl++ {
		shift := lvl * 8
		if now&((uint64(1)<<shift)-1) != 0 {
			break
		}
		b := &w.levels[lvl][(now>>shift)&wheelMask]
		for t := b.head; t != nil; {
			next := t.next
			b.remove(t)
			if t.deadline <= now {
				t.fired = true
				w.armed--
				t.next = ready
				ready = t
			} else {
				w.placeLocked(t)
			}
			t = next
		}
	}
	return ready
}

// ---- process-default wheel ----

var (
	defaultOnce  sync.Once
	defaultWheel *Wheel
)

// Default returns the process-wide shared wheel, starting it on first
// use. It is never closed: like the runtime timer goroutine it sleeps
// when idle and belongs to no one subsystem. Every caller that schedules
// protocol timeouts (core, transport) shares it, which is the point —
// one driver goroutine for the whole process.
func Default() *Wheel {
	defaultOnce.Do(func() { defaultWheel = New(DefaultTick) })
	return defaultWheel
}

// AfterFunc schedules fn on the default wheel.
func AfterFunc(d time.Duration, fn func()) *Timer {
	return Default().AfterFunc(d, fn)
}
