package timerwheel

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitUntil polls cond (with a real sleep, this is test scaffolding) until
// it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	if !cond() {
		t.Fatalf("condition not reached within %v", d)
	}
}

// TestFireOrdering schedules timers at strictly increasing delays and
// asserts they fire in deadline order, each no earlier than its delay.
func TestFireOrdering(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Close()

	const n = 10
	var mu sync.Mutex
	var order []int
	start := time.Now()
	fireAt := make([]time.Duration, n)
	delays := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		i := i
		// 10ms apart: far coarser than the tick, so ordering is defined.
		delays[i] = time.Duration(i+1) * 10 * time.Millisecond
		w.AfterFunc(delays[i], func() {
			mu.Lock()
			order = append(order, i)
			fireAt[i] = time.Since(start)
			mu.Unlock()
		})
	}
	waitUntil(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == n
	})
	mu.Lock()
	defer mu.Unlock()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("timers fired out of deadline order: %v", order)
	}
	for i, d := range delays {
		if fireAt[i] < d {
			t.Errorf("timer %d fired early: %v < %v", i, fireAt[i], d)
		}
	}
}

// TestAccuracyBounds asserts the coarse-tick contract: never early, and
// late only by ticks plus scheduling noise.
func TestAccuracyBounds(t *testing.T) {
	const tick = 5 * time.Millisecond
	w := New(tick)
	defer w.Close()

	// Generous upper slack: CI under the race detector schedules lazily.
	const slack = 250 * time.Millisecond
	for _, d := range []time.Duration{0, tick / 2, 3 * tick, 20 * tick} {
		done := make(chan time.Duration, 1)
		start := time.Now()
		w.AfterFunc(d, func() { done <- time.Since(start) })
		select {
		case got := <-done:
			if got < d {
				t.Errorf("AfterFunc(%v) fired early at %v", d, got)
			}
			if got > d+2*tick+slack {
				t.Errorf("AfterFunc(%v) fired late at %v", d, got)
			}
		case <-time.After(d + 5*time.Second):
			t.Fatalf("AfterFunc(%v) never fired", d)
		}
	}
}

// TestCascade exercises deadlines past level 0's span so timers must
// cascade down from a coarser level before firing.
func TestCascade(t *testing.T) {
	const tick = time.Millisecond // level 0 spans 256ms
	w := New(tick)
	defer w.Close()

	var fired atomic.Int32
	start := time.Now()
	d := 600 * time.Millisecond // level 1 territory
	var at atomic.Int64
	w.AfterFunc(d, func() {
		at.Store(int64(time.Since(start)))
		fired.Add(1)
	})
	waitUntil(t, 5*time.Second, func() bool { return fired.Load() == 1 })
	if got := time.Duration(at.Load()); got < d {
		t.Fatalf("cascaded timer fired early: %v < %v", got, d)
	}
}

// TestStop covers cancellation: a stopped timer never fires, Stop is
// true exactly once, and Stop after firing reports false.
func TestStop(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Close()

	var fired atomic.Int32
	tm := w.AfterFunc(time.Hour, func() { fired.Add(1) })
	if !tm.Stop() {
		t.Fatal("first Stop of a pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}

	done := make(chan struct{})
	tm2 := w.AfterFunc(time.Millisecond, func() { close(done) })
	<-done
	if tm2.Stop() {
		t.Fatal("Stop after firing returned true")
	}
	time.Sleep(20 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatal("stopped timer fired")
	}
}

// TestClose verifies a closed wheel drops pending timers and accepts
// (and swallows) new ones without panicking.
func TestClose(t *testing.T) {
	w := New(time.Millisecond)
	var fired atomic.Int32
	w.AfterFunc(50*time.Millisecond, func() { fired.Add(1) })
	w.Close()
	w.Close() // idempotent
	tm := w.AfterFunc(time.Millisecond, func() { fired.Add(1) })
	if tm.Stop() {
		t.Fatal("timer on closed wheel claims to be pending")
	}
	time.Sleep(80 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatalf("timers fired after Close: %d", fired.Load())
	}
}

// TestConcurrentScheduleCancel is the -race stress: many goroutines
// schedule and cancel against one wheel, mimicking timeout arm/disarm
// from many connections. Every timer either fires exactly once or is
// stopped successfully exactly once, never both.
func TestConcurrentScheduleCancel(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Close()

	const (
		workers   = 8
		perWorker = 200
	)
	var fired, stopped, leaked atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				var count atomic.Int32
				d := time.Duration(rnd.Intn(20)) * time.Millisecond
				tm := w.AfterFunc(d, func() {
					if count.Add(1) > 1 {
						leaked.Add(1)
					}
					fired.Add(1)
				})
				if rnd.Intn(2) == 0 {
					if tm.Stop() {
						stopped.Add(1)
						if count.Load() != 0 {
							leaked.Add(1)
						}
					}
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	total := int64(workers * perWorker)
	waitUntil(t, 10*time.Second, func() bool {
		return fired.Load()+stopped.Load() == total
	})
	if leaked.Load() != 0 {
		t.Fatalf("%d timers double-fired or fired after a successful Stop", leaked.Load())
	}
}

// TestIdleThenSchedule regresses the idle-lag bug: after the wheel sits
// idle (wheel time lagging wall time), a fresh timer must still honour
// its full delay rather than expiring in the catch-up sweep.
func TestIdleThenSchedule(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Close()
	time.Sleep(300 * time.Millisecond) // let the driver go idle and lag

	start := time.Now()
	done := make(chan time.Duration, 1)
	d := 50 * time.Millisecond
	w.AfterFunc(d, func() { done <- time.Since(start) })
	got := <-done
	if got < d {
		t.Fatalf("timer after idle period fired early: %v < %v", got, d)
	}
}
