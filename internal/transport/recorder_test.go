package transport

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"naplet/internal/netem"
	"naplet/internal/obs"
)

func TestFlightRecorderRingAndCounts(t *testing.T) {
	rec := newFlightRecorder()
	for i := 0; i < recorderCap+10; i++ {
		rec.record("redial", "attempt=%d", i)
	}
	rec.record("broken", "cause=x")
	events, counts := rec.snapshot()
	if len(events) != recorderCap {
		t.Fatalf("ring holds %d events, want %d", len(events), recorderCap)
	}
	// Oldest-first: the first retained redial is attempt 11 (10 evicted by
	// wraparound plus one more for the broken event).
	if events[0].Kind != "redial" || events[0].Detail != "attempt=11" {
		t.Fatalf("oldest event = %+v", events[0])
	}
	if events[len(events)-1].Kind != "broken" {
		t.Fatalf("newest event = %+v", events[len(events)-1])
	}
	// Cumulative counts survive eviction.
	if counts["redial"] != recorderCap+10 || counts["broken"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if rec.count("redial") != recorderCap+10 || rec.count("missing") != 0 {
		t.Fatalf("count() = %d / %d", rec.count("redial"), rec.count("missing"))
	}

	// Timestamps are monotone non-decreasing oldest-to-newest.
	for i := 1; i < len(events); i++ {
		if events[i].At.Before(events[i-1].At) {
			t.Fatalf("event %d out of order", i)
		}
	}

	// A nil recorder is inert.
	var nilRec *flightRecorder
	nilRec.record("x", "y")
	if ev, c := nilRec.snapshot(); ev != nil || c != nil {
		t.Fatal("nil recorder leaks state")
	}
	if nilRec.count("x") != 0 {
		t.Fatal("nil recorder counts")
	}
	nilRec.dump(nil, "t", nil)
}

func TestFlightRecorderDump(t *testing.T) {
	rec := newFlightRecorder()
	rec.record("dial", "peer=b addr=1.2.3.4:5")
	rec.record("broken", "cause=eof window=10s")
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	rec.dump(logf, "tid (peer b)", ErrTransportLost)
	if len(lines) < 3 {
		t.Fatalf("dump wrote %d lines: %q", len(lines), lines)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"tid (peer b)", "session lost", "dial", "peer=b addr=1.2.3.4:5", "broken", "cause=eof"} {
		if !strings.Contains(joined, want) {
			t.Errorf("dump missing %q:\n%s", want, joined)
		}
	}
}

// TestFlightRecorderCapturesNetemFaults is the chaos-soak follow-up from
// the issue: every RST the netem proxy injects must show up in the dialing
// transport's flight recorder — the recorder's broken/resumed counts equal
// the proxy's injected fault count exactly.
func TestFlightRecorderCapturesNetemFaults(t *testing.T) {
	faults := netem.NewFaults(0xF11647)
	met := obs.NewRegistry()
	b := newTestPeerCfg(t, "b", true, resumable(10*time.Second))
	proxy, err := netem.NewProxy(b.addr(), faults)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	a := newTestPeerCfg(t, "a", true, func(cfg *Config) {
		cfg.ResumeWindow = 10 * time.Second
		cfg.Metrics = met
		// Every dial — including resumption redials — crosses the fault
		// proxy, so the proxy sees exactly the transport's connections.
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", proxy.Addr(), timeout)
		}
	})

	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)

	roundTrip := func(k int) {
		t.Helper()
		msg := []byte(fmt.Sprintf("ping-%d", k))
		if _, err := cs.Write(msg); err != nil {
			t.Fatalf("round %d write: %v", k, err)
		}
		buf := make([]byte, 64)
		n, err := ss.Read(buf)
		if err != nil || string(buf[:n]) != string(msg) {
			t.Fatalf("round %d read: %q, %v", k, buf[:n], err)
		}
	}
	waitFlows := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for proxy.FlowCount() != n {
			if time.Now().After(deadline) {
				t.Fatalf("proxy flows = %d, want %d", proxy.FlowCount(), n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	const rounds = 4
	roundTrip(0)
	for k := 1; k <= rounds; k++ {
		waitFlows(1)
		if killed := proxy.ResetAll(); killed != 1 {
			t.Fatalf("round %d: reset killed %d flows, want 1", k, killed)
		}
		// The round trip blocks until the session has resumed over a fresh
		// connection, so each injected fault is fully absorbed before the
		// next one fires.
		roundTrip(k)
	}

	var info *Info
	for _, in := range a.mgr.Infos() {
		if in.Dialer {
			in := in
			info = &in
		}
	}
	if info == nil {
		t.Fatal("no dialer transport in Infos()")
	}
	resets := proxy.Resets()
	if resets != rounds {
		t.Fatalf("proxy injected %d resets, want %d", resets, rounds)
	}
	if got := info.EventCounts["broken"]; got != resets {
		t.Errorf("recorder broken count = %d, want %d (one per injected RST)", got, resets)
	}
	if got := info.EventCounts["resumed"]; got != resets {
		t.Errorf("recorder resumed count = %d, want %d", got, resets)
	}
	if got := met.Counter("transport.reconnects").Value(); got != resets {
		t.Errorf("transport.reconnects = %d, want %d", got, resets)
	}
	if info.EventCounts["redial"] < resets {
		t.Errorf("recorder redial count = %d, want >= %d", info.EventCounts["redial"], resets)
	}
	// The ring itself holds the narrative: a dial, then broken/redial/
	// resumed triples.
	var kinds []string
	for _, ev := range info.Events {
		kinds = append(kinds, ev.Kind)
	}
	if kinds[0] != "dial" {
		t.Errorf("first event = %q, want dial (events: %v)", kinds[0], kinds)
	}
}
