package transport

import (
	"bytes"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"naplet/internal/netem"
	"naplet/internal/obs"
	"naplet/internal/relay"
)

// waitRelayRegistered polls until the callee's registration leg is live.
func waitRelayRegistered(t *testing.T, c *relay.Client) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !c.Registered() {
		if time.Now().After(deadline) {
			t.Fatal("relay client never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRelayFallbackThroughNAT proves the full WAN story: host a sits behind
// a default-deny NAT that admits only the relay, so its direct dial to b
// fails and the manager falls back to the rendezvous. The session is then
// killed mid-stream and must resume — again through the relay — with every
// byte delivered exactly once.
func TestRelayFallbackThroughNAT(t *testing.T) {
	rs, err := relay.New("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	met := obs.NewRegistry()
	tap := &connTap{}
	b := newTestPeerCfg(t, "b", true, resumable(10*time.Second))

	nat := netem.NewNAT()
	nat.Allow(rs.Addr())
	a := newTestPeerCfg(t, "a", true, func(cfg *Config) {
		cfg.ResumeWindow = 10 * time.Second
		cfg.RelayAddr = rs.Addr()
		cfg.Metrics = met
		cfg.WrapData = tap.wrap
		cfg.Dial = nat.WrapDial(func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		})
	})

	// b cannot be dialed by a, so it holds a registration leg open with the
	// relay and treats matched call-ins as relayed accepts.
	rc := relay.NewClient(relay.ClientConfig{
		RelayAddr: rs.Addr(),
		Advertise: b.addr(),
		Handle:    func(c net.Conn) { b.mgr.HandleRelayedConn(c) },
		Logf:      t.Logf,
	})
	defer rc.Close()
	waitRelayRegistered(t, rc)

	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatalf("OpenStream through NAT: %v", err)
	}
	ss := recvStream(t, b)

	if got := met.Counter("transport.relay_dials").Value(); got < 1 {
		t.Fatalf("transport.relay_dials = %d, want >= 1", got)
	}
	for _, peer := range []*testPeer{a, b} {
		infos := peer.mgr.Infos()
		if len(infos) != 1 || !infos[0].Relayed {
			t.Fatalf("peer %s: transport not marked relayed: %+v", peer.mgr.cfg.HostName, infos)
		}
	}

	// Stream a deterministic payload — several credit windows, so the
	// writer is still mid-flight when the spliced connection dies and the
	// resume must also route through the relay.
	const total = 4 << 20
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i*31 + i>>7)
	}
	writeErr := make(chan error, 1)
	go func() {
		var err error
		for off := 0; off < total && err == nil; off += 8 << 10 {
			end := off + 8<<10
			if end > total {
				end = total
			}
			_, err = cs.Write(payload[off:end])
		}
		if err == nil {
			err = cs.CloseWrite()
		}
		writeErr <- err
	}()

	killed := false
	got := make([]byte, 0, total)
	buf := make([]byte, 32<<10)
	for {
		n, err := ss.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("server read after %d bytes: %v", len(got), err)
		}
		if !killed && len(got) > total/4 {
			killed = true
			tap.killLatest()
		}
	}
	if err := <-writeErr; err != nil {
		t.Fatalf("client write: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted across relayed resume: got %d bytes, want %d", len(got), total)
	}
	if !killed {
		t.Fatal("never killed the relayed connection")
	}

	// The reverse direction still works on the resumed relayed session.
	if _, err := ss.Write([]byte("over the relay")); err != nil {
		t.Fatal(err)
	}
	rb := make([]byte, 32)
	n, err := cs.Read(rb)
	if err != nil || string(rb[:n]) != "over the relay" {
		t.Fatalf("client read after relayed resume: %q, %v", rb[:n], err)
	}
	// By now the resume definitely happened, and the NAT forced it back
	// through the rendezvous.
	if got := met.Counter("transport.relay_dials").Value(); got < 2 {
		t.Fatalf("transport.relay_dials after resume = %d, want >= 2", got)
	}
}

// TestRedialBackoffConfigHonored proves the hoisted Config knobs drive the
// reconnect loop: with a 60ms cap the redial gaps stay tight; the stock 2s
// cap would open >400ms gaps well inside the observation window.
func TestRedialBackoffConfigHonored(t *testing.T) {
	tap := &connTap{}
	var (
		mu       sync.Mutex
		attempts []time.Time
		blocked  atomic.Bool
	)
	b := newTestPeerCfg(t, "b", true, resumable(10*time.Second))
	a := newTestPeerCfg(t, "a", true, func(cfg *Config) {
		cfg.ResumeWindow = 10 * time.Second
		cfg.RedialBackoffBase = 20 * time.Millisecond
		cfg.RedialBackoffCap = 60 * time.Millisecond
		cfg.WrapData = tap.wrap
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			if blocked.Load() {
				mu.Lock()
				attempts = append(attempts, time.Now())
				mu.Unlock()
				return nil, net.ErrClosed
			}
			return net.DialTimeout("tcp", addr, timeout)
		}
	})

	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)

	blocked.Store(true)
	tap.killLatest()
	time.Sleep(1200 * time.Millisecond)
	blocked.Store(false)

	// The session must come back once dials succeed again.
	if _, err := cs.Write([]byte("after outage")); err != nil {
		t.Fatal(err)
	}
	rb := make([]byte, 32)
	ss.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := ss.Read(rb)
	if err != nil || string(rb[:n]) != "after outage" {
		t.Fatalf("post-outage read: %q, %v", rb[:n], err)
	}

	mu.Lock()
	times := append([]time.Time(nil), attempts...)
	mu.Unlock()
	if len(times) < 6 {
		t.Fatalf("only %d redial attempts in 1.2s; cap=60ms should keep retrying briskly", len(times))
	}
	for i := 1; i < len(times); i++ {
		if gap := times[i].Sub(times[i-1]); gap > 400*time.Millisecond {
			t.Fatalf("redial gap %v exceeds the capped backoff (cap=60ms, jittered max 120ms)", gap)
		}
	}
}

// TestKeepaliveAdaptsToWANRTT pins the false-positive fix: a 300ms-RTT path
// with jitter, a 50ms keepalive interval, and a configured 150ms timeout —
// shorter than one round trip. The RTT-adaptive timeout must stretch past
// the measured path delay, so an idle-but-healthy WAN session is never
// declared half-open.
func TestKeepaliveAdaptsToWANRTT(t *testing.T) {
	met := obs.NewRegistry()
	fa := netem.NewFaults(1)
	fa.SetDelay(netem.Up, 150*time.Millisecond, 10*time.Millisecond)
	fb := netem.NewFaults(2)
	fb.SetDelay(netem.Up, 150*time.Millisecond, 10*time.Millisecond)

	// The dialer's half of the path delay is installed at dial time, so the
	// handshake itself crosses the slow path and seeds the RTT estimator —
	// exactly what a real WAN dial looks like. The acceptor's half wraps its
	// end post-handshake (WrapData), delaying pongs and acks.
	a := newTestPeerCfg(t, "a", true, func(cfg *Config) {
		cfg.ResumeWindow = 10 * time.Second
		cfg.KeepaliveInterval = 50 * time.Millisecond
		cfg.KeepaliveTimeout = 150 * time.Millisecond
		cfg.Metrics = met
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			conn, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			return fa.Wrap(conn, netem.Up), nil
		}
	})
	b := newTestPeerCfg(t, "b", true, func(cfg *Config) {
		cfg.ResumeWindow = 10 * time.Second
		cfg.KeepaliveInterval = 50 * time.Millisecond
		cfg.KeepaliveTimeout = 150 * time.Millisecond
		cfg.WrapData = func(c net.Conn) net.Conn { return fb.Wrap(c, netem.Up) }
	})

	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)
	if _, err := cs.Write([]byte("warmup")); err != nil {
		t.Fatal(err)
	}
	wb := make([]byte, 16)
	if _, err := ss.Read(wb); err != nil {
		t.Fatal(err)
	}

	// Sit idle for many keepalive intervals: only ping/pong traffic flows,
	// each taking a full 300ms round trip.
	time.Sleep(2 * time.Second)

	if got := met.Counter("transport.keepalive_timeouts").Value(); got != 0 {
		t.Fatalf("transport.keepalive_timeouts = %d on a healthy 300ms path, want 0", got)
	}
	for _, peer := range []*testPeer{a, b} {
		for _, in := range peer.mgr.Infos() {
			if n := in.EventCounts["keepalive-timeout"]; n != 0 {
				t.Fatalf("peer %s recorded %d keepalive-timeout events", peer.mgr.cfg.HostName, n)
			}
			if n := in.EventCounts["broken"]; n != 0 {
				t.Fatalf("peer %s transport broke %d times on a healthy path", peer.mgr.cfg.HostName, n)
			}
			if in.State != "connected" {
				t.Fatalf("peer %s transport state %q, want connected", peer.mgr.cfg.HostName, in.State)
			}
		}
	}

	// The estimator must have converged near the real path RTT, and the
	// exported gauge mirrors it.
	if rtt := a.mgr.MaxRTT(); rtt < 100*time.Millisecond || rtt > 900*time.Millisecond {
		t.Fatalf("dialer MaxRTT = %v, want ~300ms", rtt)
	}
	snap := met.Snapshot()
	if g, ok := snap.Gauges["transport.rtt_ms"]; !ok || g < 100 {
		t.Fatalf("transport.rtt_ms gauge = %v (present=%t), want >= 100", g, ok)
	}

	// And the path still carries data.
	if _, err := cs.Write([]byte("still alive")); err != nil {
		t.Fatal(err)
	}
	rb := make([]byte, 16)
	cs.SetReadDeadline(time.Now().Add(5 * time.Second))
	ss.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := ss.Read(rb)
	if err != nil || string(rb[:n]) != "still alive" {
		t.Fatalf("post-idle read: %q, %v", rb[:n], err)
	}
}
