package transport

import (
	"net"
	"sort"
	"sync"
	"time"

	"naplet/internal/wire"
)

// Config parameterises a Manager.
type Config struct {
	// HostName is advertised in hellos for diagnostics.
	HostName string
	// AdvertiseAddr is this host's redirector address, advertised so the
	// accepting side can reuse an inbound transport for its own dials.
	AdvertiseAddr string
	// Insecure disables the DH exchange (the paper's "w/o security" mode).
	Insecure bool
	// Dial opens the underlying connection; nil means net.DialTimeout.
	// Tests count calls through this hook to prove transport sharing.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// WrapData wraps the shared connection after the handshake (network
	// emulation); it replaces the old per-data-socket wrapping.
	WrapData func(net.Conn) net.Conn
	// HandshakeTimeout bounds the transport handshake.
	HandshakeTimeout time.Duration
	// Authorize vets an inbound stream-open before it is accepted.
	Authorize func(*wire.HandoffHeader) error
	// Deliver hands an accepted inbound stream to the layer above; a false
	// return means no endpoint claimed it and the stream is reset.
	Deliver func(*wire.HandoffHeader, *Stream) bool
	// Logf logs transport-level events; nil discards.
	Logf func(format string, args ...any)
}

// Manager owns every shared transport of one host: at most one live
// transport per peer redirector address, with concurrent dials to the same
// peer collapsed onto a single kernel connection and handshake.
type Manager struct {
	cfg Config

	mu     sync.Mutex
	byAddr map[string]*Transport
	all    map[*Transport]struct{}
	closed bool

	// dialMu holds one mutex per address, serialising dials so that N
	// concurrent opens to a new peer produce exactly one connection. It is
	// never held while registering an accepted inbound transport, so a host
	// dialing itself (or two hosts dialing each other simultaneously)
	// cannot deadlock.
	dialMuMu sync.Mutex
	dialMu   map[string]*sync.Mutex
}

// NewManager returns a Manager with cfg's zero values defaulted.
func NewManager(cfg Config) *Manager {
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	return &Manager{
		cfg:    cfg,
		byAddr: make(map[string]*Transport),
		all:    make(map[*Transport]struct{}),
		dialMu: make(map[string]*sync.Mutex),
	}
}

func (m *Manager) addrLock(addr string) *sync.Mutex {
	m.dialMuMu.Lock()
	defer m.dialMuMu.Unlock()
	mu := m.dialMu[addr]
	if mu == nil {
		mu = &sync.Mutex{}
		m.dialMu[addr] = mu
	}
	return mu
}

func (m *Manager) lookup(addr string) (*Transport, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.byAddr[addr]
	return t, ok && !m.closed
}

// Transport returns the live shared transport to addr, dialing and
// handshaking one if none exists. Concurrent callers for the same address
// share a single dial.
func (m *Manager) Transport(addr string, timeout time.Duration) (*Transport, error) {
	if t, ok := m.lookup(addr); ok {
		return t, nil
	}
	lock := m.addrLock(addr)
	lock.Lock()
	defer lock.Unlock()
	// Another caller may have finished the dial while we waited.
	if t, ok := m.lookup(addr); ok {
		return t, nil
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.mu.Unlock()
	if timeout <= 0 {
		timeout = m.cfg.HandshakeTimeout
	}
	conn, err := m.cfg.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(m.cfg.HandshakeTimeout))
	id, secret, peer, err := clientHandshake(conn, &m.cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	t := m.register(conn, id, secret, peer, true, addr)
	if t == nil {
		return nil, ErrClosed
	}
	return t, nil
}

// HandleConn runs the accept side of the transport handshake on a sniffed
// inbound connection and registers the result. It returns once the
// handshake finishes; the transport's read loop runs on its own goroutine.
func (m *Manager) HandleConn(conn net.Conn) error {
	conn.SetDeadline(time.Now().Add(m.cfg.HandshakeTimeout))
	id, secret, peer, err := serverHandshake(conn, &m.cfg)
	if err != nil {
		conn.Close()
		return err
	}
	conn.SetDeadline(time.Time{})
	// Register under the peer's advertised redirector address so our own
	// later dials toward that host reuse this transport. Registration
	// deliberately skips the dial lock: the dialer side may be mid-
	// handshake holding it (loopback, or crossed simultaneous dials), and
	// blocking here would deadlock both.
	if m.register(conn, id, secret, peer, false, peer.Addr) == nil {
		return ErrClosed
	}
	return nil
}

// register wires up a handshaken transport and starts its read loop. The
// addrKey may be "" (peer without a redirector); an existing entry for the
// same address is left in place — both transports stay usable, the table
// just keeps steering new opens at the incumbent.
func (m *Manager) register(conn net.Conn, id wire.ConnID, secret []byte, peer *wire.TransportHello, dialer bool, addrKey string) *Transport {
	if m.cfg.WrapData != nil {
		conn = m.cfg.WrapData(conn)
	}
	t := &Transport{
		mgr:      m,
		conn:     conn,
		id:       id,
		secret:   secret,
		dialer:   dialer,
		peerHost: peer.Host,
		peerAddr: peer.Addr,
		streams:  make(map[uint64]*Stream),
		opened:   time.Now(),
	}
	if dialer {
		t.nextID = 1
	} else {
		t.nextID = 2
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return nil
	}
	m.all[t] = struct{}{}
	if addrKey != "" {
		if _, taken := m.byAddr[addrKey]; !taken {
			m.byAddr[addrKey] = t
			t.addrKey = addrKey
		}
	}
	m.mu.Unlock()
	go t.readLoop()
	return t
}

// remove forgets a failed transport.
func (m *Manager) remove(t *Transport) {
	m.mu.Lock()
	delete(m.all, t)
	if t.addrKey != "" && m.byAddr[t.addrKey] == t {
		delete(m.byAddr, t.addrKey)
	}
	m.mu.Unlock()
}

// OpenStream opens a logical stream to the peer at addr, establishing the
// shared transport first if needed. If a warm transport dies between
// lookup and open, the open is retried once on a fresh transport.
func (m *Manager) OpenStream(addr string, hdr *wire.HandoffHeader, timeout time.Duration) (*Stream, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		t, err := m.Transport(addr, timeout)
		if err != nil {
			return nil, err
		}
		s, err := t.OpenStream(hdr, timeout)
		if err == nil {
			return s, nil
		}
		lastErr = err
		if t.alive() {
			// The transport is fine; the peer refused or timed out.
			return nil, err
		}
	}
	return nil, lastErr
}

// SecretByID returns the secret of the live transport with the given id,
// for deriving connection session keys on the accepting side of CONNECT.
func (m *Manager) SecretByID(id wire.ConnID) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for t := range m.all {
		if t.id == id {
			return t.secret, true
		}
	}
	return nil, false
}

// Counts returns the number of live transports and the total live streams
// across them, for the transport.active / transport.streams gauges.
func (m *Manager) Counts() (transports, streams int) {
	m.mu.Lock()
	all := make([]*Transport, 0, len(m.all))
	for t := range m.all {
		all = append(all, t)
	}
	m.mu.Unlock()
	for _, t := range all {
		streams += t.streamCount()
	}
	return len(all), streams
}

// Info describes one live transport for the debug surface.
type Info struct {
	ID       wire.ConnID
	PeerHost string
	PeerAddr string
	Dialer   bool
	Streams  int
	Opened   time.Time
}

// Infos returns a stable-ordered snapshot of the live transports.
func (m *Manager) Infos() []Info {
	m.mu.Lock()
	all := make([]*Transport, 0, len(m.all))
	for t := range m.all {
		all = append(all, t)
	}
	m.mu.Unlock()
	infos := make([]Info, 0, len(all))
	for _, t := range all {
		infos = append(infos, Info{
			ID:       t.id,
			PeerHost: t.peerHost,
			PeerAddr: t.peerAddr,
			Dialer:   t.dialer,
			Streams:  t.streamCount(),
			Opened:   t.opened,
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Opened.Before(infos[j].Opened) })
	return infos
}

// CloseTransports fails every live transport but leaves the manager usable;
// the next open pays the full dial + handshake again (tests use this to
// measure cold-path cost).
func (m *Manager) CloseTransports() {
	m.mu.Lock()
	all := make([]*Transport, 0, len(m.all))
	for t := range m.all {
		all = append(all, t)
	}
	m.mu.Unlock()
	for _, t := range all {
		t.fail(ErrClosed)
	}
}

// Close shuts the manager down: every transport fails and future opens
// return ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	all := make([]*Transport, 0, len(m.all))
	for t := range m.all {
		all = append(all, t)
	}
	m.mu.Unlock()
	for _, t := range all {
		t.fail(ErrClosed)
	}
}
