package transport

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"naplet/internal/dhkx"
	"naplet/internal/obs"
	"naplet/internal/relay"
	"naplet/internal/security"
	"naplet/internal/wire"
)

// Config parameterises a Manager.
type Config struct {
	// HostName is advertised in hellos for diagnostics.
	HostName string
	// AdvertiseAddr is this host's redirector address, advertised so the
	// accepting side can reuse an inbound transport for its own dials.
	AdvertiseAddr string
	// Insecure disables the DH exchange (the paper's "w/o security" mode).
	Insecure bool
	// DisableEncryption keeps a secure transport's frames cleartext: the
	// version-2 hello advertises no cipher suites, so negotiation settles
	// on cleartext framing while the DH exchange, transcript tags, and
	// resume tokens still run. Benchmarks use it to isolate the record
	// layer's cost; Insecure implies it.
	DisableEncryption bool
	// Limits overrides the advertised protocol limits field by field; zero
	// fields keep wire.DefaultLimits. A session's effective limits are the
	// field-wise minimum of both sides' advertisements (KeepaliveMs is
	// advertised from KeepaliveInterval, not from here). Invalid overrides
	// are logged and replaced with the defaults.
	Limits wire.Limits
	// Dial opens the underlying connection; nil means net.DialTimeout.
	// Tests count calls through this hook to prove transport sharing.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// WrapData wraps the shared connection after the handshake (network
	// emulation); it replaces the old per-data-socket wrapping.
	WrapData func(net.Conn) net.Conn
	// HandshakeTimeout bounds the transport handshake.
	HandshakeTimeout time.Duration
	// Authorize vets an inbound stream-open before it is accepted.
	Authorize func(*wire.HandoffHeader) error
	// Deliver hands an accepted inbound stream to the layer above; a false
	// return means no endpoint claimed it and the stream is reset.
	Deliver func(*wire.HandoffHeader, *Stream) bool
	// Logf logs transport-level events; nil discards.
	Logf func(format string, args ...any)

	// KeepaliveInterval is how long a transport may sit without inbound
	// traffic before the side probes it with a mux ping; 0 means the 15s
	// default, negative disables keepalive probing entirely.
	KeepaliveInterval time.Duration
	// KeepaliveTimeout is the inbound-silence threshold past which the
	// connection is declared half-open and broken (feeding resumption);
	// 0 defaults to 3x the keepalive interval.
	KeepaliveTimeout time.Duration
	// ResumeWindow bounds how long a broken transport keeps its streams
	// stalled while trying to resume the session; past it every stream
	// fails with ErrTransportLost. 0 means the 30s default, negative
	// disables resumption (a broken connection fails streams immediately,
	// the pre-resumption behaviour).
	ResumeWindow time.Duration
	// ResumeLogBudget bounds the unacked reliable-frame bytes retained for
	// resume replay while a transport is down; exceeding it during an
	// outage fails the transport rather than buffering without bound.
	// 0 means the 64 MiB default.
	ResumeLogBudget int
	// RedialBackoffBase / RedialBackoffCap bound the jittered exponential
	// backoff between resume redial attempts; 0 means the 25ms / 2s
	// defaults. These are floors: on a path whose measured RTT exceeds
	// them, the backoff scales up from the RTT estimate (see rtt.go).
	RedialBackoffBase time.Duration
	RedialBackoffCap  time.Duration
	// RelayAddr is the address of a rendezvous relay (internal/relay) to
	// fall back to when a direct dial — fresh or resume redial — fails;
	// "" disables the fallback. The relay sees only the transport
	// handshake and (on encrypted sessions) AEAD ciphertext.
	RelayAddr string
	// Metrics receives the transport.reconnects / transport.resumed_streams
	// / transport.keepalive_timeouts counters; nil records nothing.
	Metrics *obs.Registry
	// Tracer records transport dial/accept spans; a fresh dial performed
	// with a trace context (TransportTraced) joins that trace and carries
	// it to the acceptor in the hello. Nil disables tracing.
	Tracer *obs.Tracer

	// advertised is the validated limits advertisement NewManager computed
	// from Limits and KeepaliveInterval; hellos carry it verbatim.
	advertised wire.Limits
}

// helloNegotiation fills the version-2 negotiation section of an outbound
// fresh-session hello: the supported versions, the cipher suites this
// side will encrypt under (none when encryption is off — negotiation then
// settles on cleartext), and the advertised limits.
func (cfg *Config) helloNegotiation(h *wire.TransportHello) {
	h.Versions = wire.SupportedVersions()
	if !cfg.Insecure && !cfg.DisableEncryption {
		h.Ciphers = []uint16{wire.CipherAES256GCM}
	}
	h.Limits = cfg.advertised
}

// Manager owns every shared transport of one host: at most one live
// transport per peer redirector address, with concurrent dials to the same
// peer collapsed onto a single kernel connection and handshake.
type Manager struct {
	cfg Config

	// done closes when the manager closes, releasing keepalive tickers,
	// reconnect backoff sleeps, and dials blocked in flight.
	done chan struct{}

	// Resumption metrics (nil-safe when cfg.Metrics is nil).
	reconnects        *obs.Counter
	resumedStreams    *obs.Counter
	keepaliveTimeouts *obs.Counter
	// Session-security metrics: how many transport sessions negotiated an
	// AEAD record layer versus settling on cleartext framing (version-1
	// peers, insecure mode, or encryption disabled).
	encrypted       *obs.Counter
	cleartextLegacy *obs.Counter
	// relayDials counts connections (fresh or resume redials) established
	// through the rendezvous relay after a direct dial failed.
	relayDials *obs.Counter

	mu     sync.Mutex
	byAddr map[string]*Transport
	all    map[*Transport]struct{}
	// lost is a small ring of recently failed transports, so the debug
	// surface can show the terminal "lost" state after removal.
	lost []Info
	// pending tracks connections whose handshake is in flight, so Close
	// can fail them promptly instead of waiting out the handshake timeout.
	pending map[net.Conn]struct{}
	closed  bool

	// dialMu holds one mutex per address, serialising dials so that N
	// concurrent opens to a new peer produce exactly one connection. It is
	// never held while registering an accepted inbound transport, so a host
	// dialing itself (or two hosts dialing each other simultaneously)
	// cannot deadlock.
	dialMuMu sync.Mutex
	dialMu   map[string]*sync.Mutex
}

// maxLostInfos bounds the lost-transport ring kept for the debug surface.
const maxLostInfos = 8

// NewManager returns a Manager with cfg's zero values defaulted.
func NewManager(cfg Config) *Manager {
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.KeepaliveInterval == 0 {
		cfg.KeepaliveInterval = 15 * time.Second
	}
	if cfg.KeepaliveTimeout <= 0 {
		cfg.KeepaliveTimeout = 3 * cfg.KeepaliveInterval
	}
	if cfg.ResumeWindow == 0 {
		cfg.ResumeWindow = 30 * time.Second
	}
	if cfg.ResumeLogBudget <= 0 {
		cfg.ResumeLogBudget = 64 << 20
	}
	if cfg.RedialBackoffBase <= 0 {
		cfg.RedialBackoffBase = 25 * time.Millisecond
	}
	if cfg.RedialBackoffCap <= 0 {
		cfg.RedialBackoffCap = 2 * time.Second
	}
	if cfg.RedialBackoffCap < cfg.RedialBackoffBase {
		cfg.RedialBackoffCap = cfg.RedialBackoffBase
	}
	cfg.advertised = advertisedLimits(&cfg)
	m := &Manager{
		cfg:               cfg,
		done:              make(chan struct{}),
		reconnects:        cfg.Metrics.Counter("transport.reconnects"),
		resumedStreams:    cfg.Metrics.Counter("transport.resumed_streams"),
		keepaliveTimeouts: cfg.Metrics.Counter("transport.keepalive_timeouts"),
		encrypted:         cfg.Metrics.Counter("transport.encrypted"),
		cleartextLegacy:   cfg.Metrics.Counter("transport.cleartext_legacy"),
		relayDials:        cfg.Metrics.Counter("transport.relay_dials"),
		byAddr:            make(map[string]*Transport),
		all:               make(map[*Transport]struct{}),
		pending:           make(map[net.Conn]struct{}),
		dialMu:            make(map[string]*sync.Mutex),
	}
	// The worst-path RTT gauge: evaluated at snapshot time, so dashboards
	// see the live estimate without the manager pushing samples anywhere.
	cfg.Metrics.Func("transport.rtt_ms", func() float64 {
		return float64(m.MaxRTT().Microseconds()) / 1000
	})
	return m
}

// maxAdvertiseKeepaliveMs clamps the keepalive advertisement to the
// protocol's 24h bound.
const maxAdvertiseKeepaliveMs = 24 * 60 * 60 * 1000

// advertisedLimits builds the limits a defaulted Config advertises in its
// hellos: wire defaults overlaid field-wise with non-zero Limits
// overrides, keepalive taken from KeepaliveInterval (0 = probing
// disabled locally). Invalid overrides are logged and dropped so a bad
// flag can never wedge the handshake.
func advertisedLimits(cfg *Config) wire.Limits {
	var kaMs uint32
	if cfg.KeepaliveInterval > 0 {
		ms := cfg.KeepaliveInterval.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		if ms > maxAdvertiseKeepaliveMs {
			ms = maxAdvertiseKeepaliveMs
		}
		kaMs = uint32(ms)
	}
	adv := wire.DefaultLimits()
	if cfg.Limits.MaxPayload != 0 {
		adv.MaxPayload = cfg.Limits.MaxPayload
	}
	if cfg.Limits.InitialWindow != 0 {
		adv.InitialWindow = cfg.Limits.InitialWindow
	}
	if cfg.Limits.AckFrames != 0 {
		adv.AckFrames = cfg.Limits.AckFrames
	}
	if cfg.Limits.AckBytes != 0 {
		adv.AckBytes = cfg.Limits.AckBytes
	}
	adv.KeepaliveMs = kaMs
	if err := adv.Validate(); err != nil {
		if cfg.Logf != nil {
			cfg.Logf("transport: invalid limits override (%v); advertising defaults", err)
		}
		adv = wire.DefaultLimits()
		adv.KeepaliveMs = kaMs
	}
	return adv
}

func (m *Manager) addrLock(addr string) *sync.Mutex {
	m.dialMuMu.Lock()
	defer m.dialMuMu.Unlock()
	mu := m.dialMu[addr]
	if mu == nil {
		mu = &sync.Mutex{}
		m.dialMu[addr] = mu
	}
	return mu
}

func (m *Manager) lookup(addr string) (*Transport, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.byAddr[addr]
	return t, ok && !m.closed
}

func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// trackPending registers an in-flight handshake connection so Close can
// fail it promptly; it reports false when the manager is already closed.
func (m *Manager) trackPending(conn net.Conn) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.pending[conn] = struct{}{}
	return true
}

func (m *Manager) untrackPending(conn net.Conn) {
	m.mu.Lock()
	delete(m.pending, conn)
	m.mu.Unlock()
}

// dial runs cfg.Dial without letting a slow connect outlive the manager:
// the caller gets ErrClosed as soon as the manager closes, and the dial
// goroutine closes the late connection when (bounded by the dial timeout)
// it finally returns.
func (m *Manager) dial(addr string, timeout time.Duration) (net.Conn, error) {
	type dialResult struct {
		conn net.Conn
		err  error
	}
	ch := make(chan dialResult)
	go func() {
		conn, err := m.cfg.Dial(addr, timeout)
		select {
		case ch <- dialResult{conn, err}:
		case <-m.done:
			if conn != nil {
				conn.Close()
			}
		}
	}()
	select {
	case r := <-ch:
		return r.conn, r.err
	case <-m.done:
		return nil, ErrClosed
	}
}

// dialTransport opens the underlying connection for a transport to addr:
// a direct dial first, then — when a relay is configured and addr is not
// the relay itself — a rendezvous through the relay. Both paths run
// through m.dial, so cfg.Dial hooks (fault injection, NAT models) and
// manager-close semantics apply to relay legs too. It reports whether the
// returned connection is relayed.
func (m *Manager) dialTransport(addr string, timeout time.Duration) (net.Conn, bool, error) {
	conn, err := m.dial(addr, timeout)
	if err == nil {
		return conn, false, nil
	}
	ra := m.cfg.RelayAddr
	if ra == "" || addr == ra {
		return nil, false, err
	}
	rconn, rerr := relay.DialVia(func(a string, t time.Duration) (net.Conn, error) {
		return m.dial(a, t)
	}, ra, addr, timeout)
	if rerr != nil {
		return nil, false, fmt.Errorf("transport: direct dial failed (%v); relay via %s failed: %w", err, ra, rerr)
	}
	m.relayDials.Inc()
	if m.cfg.Logf != nil {
		m.cfg.Logf("transport: direct dial to %s failed (%v); connected via relay %s", addr, err, ra)
	}
	return rconn, true, nil
}

// Transport returns the live shared transport to addr, dialing and
// handshaking one if none exists. Concurrent callers for the same address
// share a single dial. Closing the manager fails an in-flight dial or
// handshake promptly.
func (m *Manager) Transport(addr string, timeout time.Duration) (*Transport, error) {
	return m.TransportTraced(addr, timeout, obs.SpanContext{})
}

// TransportTraced is Transport with a tracing context: when the lookup
// misses and a fresh dial runs, the dial gets a span under tc and the
// hello carries the context to the acceptor, so cross-host operations see
// the transport establishment they paid for inside their own trace.
func (m *Manager) TransportTraced(addr string, timeout time.Duration, tc obs.SpanContext) (*Transport, error) {
	if t, ok := m.lookup(addr); ok {
		return t, nil
	}
	lock := m.addrLock(addr)
	lock.Lock()
	defer lock.Unlock()
	// Another caller may have finished the dial while we waited.
	if t, ok := m.lookup(addr); ok {
		return t, nil
	}
	if m.isClosed() {
		return nil, ErrClosed
	}
	if timeout <= 0 {
		timeout = m.cfg.HandshakeTimeout
	}
	sp := m.cfg.Tracer.StartSpan(tc, "transport.dial")
	sp.Annotate("addr=" + addr)
	defer sp.End()
	// Propagate the dial span when we have one, else the caller's context
	// untouched — a tracing acceptor can join either way.
	trace := sp.Context().Marshal()
	if trace == nil {
		trace = tc.Marshal()
	}
	dialStart := time.Now()
	conn, relayed, err := m.dialTransport(addr, timeout)
	if err != nil {
		return nil, err
	}
	if relayed {
		sp.Annotate("via=relay")
	}
	// Track the handshake so Manager.Close can cut it short by closing the
	// connection under it.
	if !m.trackPending(conn) {
		conn.Close()
		return nil, ErrClosed
	}
	conn.SetDeadline(time.Now().Add(m.cfg.HandshakeTimeout))
	hs, err := clientHandshake(conn, &m.cfg, trace)
	m.untrackPending(conn)
	if err != nil {
		conn.Close()
		if m.isClosed() {
			return nil, ErrClosed
		}
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	t := m.register(conn, hs, true, addr, relayed)
	if t == nil {
		return nil, ErrClosed
	}
	t.dialAddr = addr
	// Seed the RTT estimate from what the dial + handshake cost: three
	// round trips (TCP connect, hello exchange, tag exchange), so a WAN
	// transport starts with WAN-scaled timeouts before its first pong.
	t.seedRTT(time.Since(dialStart) / 3)
	return t, nil
}

// HandleConn runs the accept side of the transport handshake on a sniffed
// inbound connection and registers the result. A resume hello instead
// resurrects the prior session in place (see resume.go). It returns once
// the handshake finishes; the transport's read loop runs on its own
// goroutine.
func (m *Manager) HandleConn(conn net.Conn) error {
	return m.handleConn(conn, false)
}

// HandleRelayedConn is HandleConn for a connection that arrived through a
// rendezvous relay call-in (internal/relay.Client) instead of the local
// listener; the transport is marked relayed for the debug surface.
func (m *Manager) HandleRelayedConn(conn net.Conn) error {
	return m.handleConn(conn, true)
}

func (m *Manager) handleConn(conn net.Conn, relayed bool) error {
	if !m.trackPending(conn) {
		conn.Close()
		return ErrClosed
	}
	conn.SetDeadline(time.Now().Add(m.cfg.HandshakeTimeout))
	peer, recvd, err := wire.ReadTransportHello(conn)
	if err != nil {
		m.untrackPending(conn)
		conn.Close()
		return err
	}
	if peer.Resume {
		err := m.handleResume(conn, peer, recvd, relayed)
		m.untrackPending(conn)
		return err
	}
	started := time.Now()
	hs, err := serverHandshake(conn, &m.cfg, peer, recvd)
	m.untrackPending(conn)
	if err != nil {
		conn.Close()
		return err
	}
	if tc, ok := obs.UnmarshalSpanContext(peer.Trace); ok {
		sp := m.cfg.Tracer.StartSpanAt(tc, "transport.accept", started)
		sp.Annotate("peer=" + peer.Host)
		sp.End()
	}
	conn.SetDeadline(time.Time{})
	// Register under the peer's advertised redirector address so our own
	// later dials toward that host reuse this transport. Registration
	// deliberately skips the dial lock: the dialer side may be mid-
	// handshake holding it (loopback, or crossed simultaneous dials), and
	// blocking here would deadlock both.
	t := m.register(conn, hs, false, peer.Addr, relayed)
	if t == nil {
		return ErrClosed
	}
	// The acceptor's handshake spans one round trip (hello out, tag back).
	t.seedRTT(time.Since(started))
	return nil
}

// byID returns the live transport with the given id.
func (m *Manager) byID(id wire.ConnID) *Transport {
	m.mu.Lock()
	defer m.mu.Unlock()
	for t := range m.all {
		if t.id == id {
			return t
		}
	}
	return nil
}

// register wires up a handshaken transport and starts its read loop. The
// addrKey may be "" (peer without a redirector); an existing entry for the
// same address is left in place — both transports stay usable, the table
// just keeps steering new opens at the incumbent.
func (m *Manager) register(conn net.Conn, hs *handshakeResult, dialer bool, addrKey string, relayed bool) *Transport {
	if m.cfg.WrapData != nil {
		conn = m.cfg.WrapData(conn)
	}
	auth, err := newResumeAuth(hs.secret)
	if err != nil {
		conn.Close()
		return nil
	}
	// Version-2 secure sessions sign resume tokens under a dedicated
	// HKDF-derived key; version-1 sessions keep the legacy single-key
	// behaviour so mixed deployments resume across versions of this code.
	resumeAuth := auth
	if hs.ks != nil {
		if resumeAuth, err = dhkx.NewAuthenticator(hs.ks.ResumeTagKey()); err != nil {
			conn.Close()
			return nil
		}
	}
	t := &Transport{
		mgr:        m,
		conn:       conn,
		id:         hs.id,
		secret:     hs.secret,
		auth:       auth,
		resumeAuth: resumeAuth,
		neg:        hs.neg,
		ks:         hs.ks,
		dialer:     dialer,
		peerHost:   hs.peer.Host,
		peerAddr:   hs.peer.Addr,
		gen:        1,
		readerDone: make(chan struct{}),
		streams:    make(map[uint64]*Stream),
		opened:     time.Now(),
		localAddr:  conn.LocalAddr(),
		remoteAddr: conn.RemoteAddr(),
		relayed:    relayed,
		rec:        newFlightRecorder(),
	}
	t.kaInterval = m.cfg.KeepaliveInterval
	if hs.neg.Version >= wire.TransportVersion2 {
		lim := hs.neg.Limits
		t.maxPlain = int(lim.MaxPayload)
		t.streamWindow = int(lim.InitialWindow)
		t.streamWindowAt = int(lim.InitialWindow / 2)
		t.ackFrames = int(lim.AckFrames)
		t.ackBytes = int(lim.AckBytes)
		// The negotiated probe interval is the min of both advertisements,
		// so probing never gets slower than the local config asked for; a
		// locally disabled keepalive stays disabled regardless of the peer.
		if m.cfg.KeepaliveInterval > 0 && lim.KeepaliveMs > 0 {
			t.kaInterval = time.Duration(lim.KeepaliveMs) * time.Millisecond
		}
	}
	var opener *security.Opener
	if hs.neg.Cipher == wire.CipherAES256GCM {
		// Sealed containers ride inside the negotiated frame limit: the
		// container plaintext cap shrinks by the AEAD tag so every sealed
		// container still fits a pooled buffer of the negotiated class, and
		// one frame's payload additionally leaves room for its inner header
		// so a full-size data frame always fits a container alone.
		t.containerPlain = t.maxPlain - security.RecordOverhead
		t.maxPlain = t.containerPlain - wire.MuxHeaderSize
		dialKey, acceptKey := hs.ks.SealKeys(hs.transcript)
		sealKey, openKey := dialKey, acceptKey
		if !dialer {
			sealKey, openKey = acceptKey, dialKey
		}
		sealer, serr := security.NewSealer(sealKey)
		op, oerr := security.NewOpener(openKey)
		if serr != nil || oerr != nil {
			conn.Close()
			return nil
		}
		t.sealer = sealer
		opener = op
		t.flusher = newRecordFlusher(t)
		m.encrypted.Inc()
	} else {
		m.cleartextLegacy.Inc()
	}
	t.lastRead.Store(time.Now().UnixNano())
	path := "direct"
	if relayed {
		path = "relay"
	}
	if dialer {
		t.rec.record("dial", "peer=%s remote=%s cipher=%s via=%s", hs.peer.Host, conn.RemoteAddr(), wire.CipherName(hs.neg.Cipher), path)
	} else {
		t.rec.record("accept", "peer=%s remote=%s cipher=%s via=%s", hs.peer.Host, conn.RemoteAddr(), wire.CipherName(hs.neg.Cipher), path)
	}
	if dialer {
		t.nextID = 1
	} else {
		t.nextID = 2
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return nil
	}
	m.all[t] = struct{}{}
	if addrKey != "" {
		if _, taken := m.byAddr[addrKey]; !taken {
			m.byAddr[addrKey] = t
			t.addrKey = addrKey
		}
	}
	m.mu.Unlock()
	if t.flusher != nil {
		go t.flusher.run()
	}
	go t.readLoop(conn, t.readerDone, opener)
	go t.keepalive(conn)
	return t
}

// remove forgets a failed transport, keeping a tombstone for the debug
// surface's "lost" state.
func (m *Manager) remove(t *Transport, cause error) {
	info := t.info()
	info.State = fmt.Sprintf("lost (%v)", cause)
	m.mu.Lock()
	delete(m.all, t)
	if t.addrKey != "" && m.byAddr[t.addrKey] == t {
		delete(m.byAddr, t.addrKey)
	}
	m.lost = append(m.lost, info)
	if len(m.lost) > maxLostInfos {
		m.lost = m.lost[len(m.lost)-maxLostInfos:]
	}
	m.mu.Unlock()
}

// OpenStream opens a logical stream to the peer at addr, establishing the
// shared transport first if needed. If a warm transport dies between
// lookup and open, the open is retried once on a fresh transport.
func (m *Manager) OpenStream(addr string, hdr *wire.HandoffHeader, timeout time.Duration) (*Stream, error) {
	return m.OpenStreamTraced(addr, hdr, timeout, obs.SpanContext{})
}

// OpenStreamTraced is OpenStream carrying a tracing context into any
// fresh transport dial the open triggers.
func (m *Manager) OpenStreamTraced(addr string, hdr *wire.HandoffHeader, timeout time.Duration, tc obs.SpanContext) (*Stream, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		t, err := m.TransportTraced(addr, timeout, tc)
		if err != nil {
			return nil, err
		}
		s, err := t.OpenStream(hdr, timeout)
		if err == nil {
			return s, nil
		}
		lastErr = err
		if t.alive() {
			// The transport is fine; the peer refused or timed out.
			return nil, err
		}
	}
	return nil, lastErr
}

// FailIfReconnecting fails the transport with the given id if and only if
// it is currently between connections trying to resume, returning whether
// it did. The core layer calls this when a peer's connection-level RES
// proves the peer's end of the session is gone for good (crash + restart
// re-handshakes the connection; it never resumes the old transport) —
// waiting out the resume window would only stall recovery.
func (m *Manager) FailIfReconnecting(id wire.ConnID, cause error) bool {
	t := m.byID(id)
	if t == nil {
		return false
	}
	t.mu.Lock()
	down := t.reconnecting && !t.closed
	t.mu.Unlock()
	if !down {
		return false
	}
	t.fail(fmt.Errorf("%w: peer abandoned session: %v", ErrTransportLost, cause))
	return true
}

// SecretByID returns the secret of the live transport with the given id,
// for deriving connection session keys on the accepting side of CONNECT.
func (m *Manager) SecretByID(id wire.ConnID) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for t := range m.all {
		if t.id == id {
			return t.secret, true
		}
	}
	return nil, false
}

// Counts returns the number of live transports and the total live streams
// across them, for the transport.active / transport.streams gauges.
func (m *Manager) Counts() (transports, streams int) {
	m.mu.Lock()
	all := make([]*Transport, 0, len(m.all))
	for t := range m.all {
		all = append(all, t)
	}
	m.mu.Unlock()
	for _, t := range all {
		streams += t.streamCount()
	}
	return len(all), streams
}

// Info describes one transport for the debug surface.
type Info struct {
	ID       wire.ConnID
	PeerHost string
	PeerAddr string
	Dialer   bool
	Streams  int
	Opened   time.Time
	// Cipher names the record-layer cipher the session negotiated
	// ("cleartext" for version-1 peers, insecure mode, or encryption
	// disabled); Limits are the effective negotiated limits.
	Cipher string
	Limits wire.Limits
	// State is "connected", "reconnecting(n)" with n the attempt count of
	// the current outage, or "lost (<cause>)" for a tombstone.
	State string
	// ResumeDeadline is when the current outage's resume window expires
	// (zero unless reconnecting): past it the transport fails with
	// ErrTransportLost.
	ResumeDeadline time.Time
	// LastKeepalive is when the transport last saw any inbound frame
	// (data or keepalive), feeding the half-open detector.
	LastKeepalive time.Time
	// RTT is the smoothed path round-trip estimate (zero before any
	// sample); Relayed reports whether the current connection runs through
	// a rendezvous relay instead of a direct dial.
	RTT     time.Duration
	Relayed bool
	// Events is the transport's flight-recorder ring, oldest first;
	// EventCounts are cumulative per-kind totals that survive ring
	// eviction.
	Events      []RecorderEvent
	EventCounts map[string]uint64
}

// info snapshots one transport's debug state.
func (t *Transport) info() Info {
	t.mu.Lock()
	state := "connected"
	if t.reconnecting {
		state = fmt.Sprintf("reconnecting(%d)", t.attempts)
	}
	if t.closed {
		state = "lost"
	}
	info := Info{
		ID:             t.id,
		PeerHost:       t.peerHost,
		PeerAddr:       t.peerAddr,
		Dialer:         t.dialer,
		Streams:        len(t.streams),
		Opened:         t.opened,
		Cipher:         wire.CipherName(t.neg.Cipher),
		Limits:         t.neg.Limits,
		State:          state,
		ResumeDeadline: t.resumeDeadline,
		Relayed:        t.relayed,
	}
	t.mu.Unlock()
	info.RTT = t.SRTT()
	if nanos := t.lastRead.Load(); nanos != 0 {
		info.LastKeepalive = time.Unix(0, nanos)
	}
	info.Events, info.EventCounts = t.rec.snapshot()
	return info
}

// Infos returns a stable-ordered snapshot of the live transports followed
// by the recently lost ones.
func (m *Manager) Infos() []Info {
	m.mu.Lock()
	all := make([]*Transport, 0, len(m.all))
	for t := range m.all {
		all = append(all, t)
	}
	lost := append([]Info(nil), m.lost...)
	m.mu.Unlock()
	infos := make([]Info, 0, len(all)+len(lost))
	for _, t := range all {
		infos = append(infos, t.info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Opened.Before(infos[j].Opened) })
	return append(infos, lost...)
}

// CloseTransports fails every live transport but leaves the manager usable;
// the next open pays the full dial + handshake again (tests use this to
// measure cold-path cost).
func (m *Manager) CloseTransports() {
	m.mu.Lock()
	all := make([]*Transport, 0, len(m.all))
	for t := range m.all {
		all = append(all, t)
	}
	m.mu.Unlock()
	for _, t := range all {
		t.fail(ErrClosed)
	}
}

// Close shuts the manager down: every transport fails, in-flight dials and
// handshakes abort promptly, and future opens return ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	all := make([]*Transport, 0, len(m.all))
	for t := range m.all {
		all = append(all, t)
	}
	pending := make([]net.Conn, 0, len(m.pending))
	for c := range m.pending {
		pending = append(pending, c)
	}
	m.mu.Unlock()
	close(m.done)
	for _, c := range pending {
		c.Close()
	}
	for _, t := range all {
		t.fail(ErrClosed)
	}
}
