// Package transport implements the shared per-host-pair transport layer:
// one authenticated TCP connection between any two hosts, multiplexing
// every logical NapletSocket data stream between them.
//
// The paper's Table 1 shows connection setup cost is dominated by the
// per-connection TCP handshake plus Diffie-Hellman key exchange. This layer
// amortises both: the first connection between two hosts dials once and
// runs one DH exchange; every later connection (and every migration resume
// targeting the same host) opens a lightweight stream over the warm
// transport, paying only a control round trip. Streams carry per-stream
// credit-based flow control so one bulk stream cannot head-of-line-starve
// the others, and each stream supports the half-close (CloseWrite) the
// suspend drain's FLUSH barrier depends on.
//
// The transport is also self-healing (see resume.go): when the shared
// connection dies or goes half-open, the dialer reconnects with jittered
// capped backoff and resumes the session in place — reliable mux frames
// are retained until acked and replayed across the gap, so every live
// stream stalls and then recovers without surfacing an error. Only when
// the bounded resume window expires do streams fail, with the typed
// ErrTransportLost, into the NapletSocket layer's own recovery path.
//
// Security (Section 3.3 of the paper, amortised): the transport handshake
// runs the unauthenticated ephemeral DH that connection setup used to run
// per connection, and both sides prove possession of the derived transport
// secret with HMAC tags over the hello transcript. Per-connection session
// keys are then derived from the transport secret bound to the connection
// id, so compromise of one connection's key reveals nothing about its
// siblings, and the handoff-token and control-message HMAC machinery above
// is unchanged. The trust root is identical to the old per-connection
// exchange (unauthenticated DH, hardened by the Guard policy layer); what
// changes is only how often the modular exponentiation is paid.
package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"naplet/internal/dhkx"
	"naplet/internal/security"
	"naplet/internal/wire"
)

// Errors returned by the transport layer.
var (
	// ErrClosed reports use of a closed manager or transport.
	ErrClosed = errors.New("transport: closed")
	// ErrStreamClosed reports use of a locally closed stream.
	ErrStreamClosed = errors.New("transport: stream closed")
	// ErrHandshake reports a failed transport handshake.
	ErrHandshake = errors.New("transport: handshake failed")
	// ErrTransportLost reports that the shared transport session died for
	// good: the connection broke and could not be resumed within the
	// resume window (or resumption is disabled). Stream errors wrap it, so
	// the layer above can tell retryable transport loss apart from a
	// stream-level reset with errors.Is.
	ErrTransportLost = errors.New("transport: session lost")
)

// Default acknowledgement cadence for reliable mux frames: the receiver
// confirms its cumulative reliable-frame count after this many frames or
// bytes, whichever comes first, bounding how much the sender retains for
// resume replay. Keepalive pings and pongs also piggyback the count, so an
// idle transport stays trimmed too. A version-2 handshake negotiates the
// effective cadence (wire.Limits.AckFrames/AckBytes); these constants are
// the version-1 behaviour and the zero-value fallback.
const (
	ackEveryFrames = 64
	ackEveryBytes  = 256 << 10
)

// muxLogEntry is one unacked reliable frame retained for resume replay.
// The payload is a pooled copy owned by the log until the frame is acked.
type muxLogEntry struct {
	seq     uint64
	typ     uint8
	stream  uint64
	payload []byte
}

// Transport is one end of the shared connection between a pair of hosts.
// Both sides hold the same transport id and secret; the dialer opens
// odd-numbered streams, the acceptor even-numbered ones.
type Transport struct {
	mgr    *Manager
	id     wire.ConnID
	secret []byte
	// auth signs and verifies handshake transcript tags under the session
	// key (the raw transport secret on version-1 sessions).
	auth *dhkx.Authenticator
	// resumeAuth signs and verifies resume tokens. On version-2 sessions
	// it runs under a dedicated HKDF-derived resume-tag key; on version-1
	// sessions it is auth (the legacy single-key behaviour).
	resumeAuth *dhkx.Authenticator
	// neg is the protocol agreement of the version-2 handshake (version,
	// cipher suite, limits); version-1 sessions carry the defaults.
	neg wire.Negotiated
	// ks derives per-purpose keys for version-2 secure sessions (nil on
	// version-1 or insecure sessions); rekey-on-resume expands fresh seal
	// keys from it bound to the resume handshake transcript.
	ks *security.KeySchedule
	// flusher drains sealed records to the connection outside wmu (nil on
	// cleartext sessions): sealing happens under wmu so nonce order is
	// wire order, while the flusher's writev of already-sealed records
	// overlaps the next frame's crypto.
	flusher *recordFlusher
	// sealer encrypts outbound records; guarded by wmu (rekey swaps it
	// under wmu in adopt). Nil on cleartext sessions.
	sealer *security.Sealer
	// Negotiated limits, fixed at registration: maxPlain caps one frame's
	// plaintext payload, streamWindow/streamWindowAt drive per-stream
	// credit, ackFrames/ackBytes the ack cadence, kaInterval the keepalive
	// probe cadence. Zero values fall back to the version-1 constants so
	// hand-built Transports in tests keep working.
	maxPlain int
	// containerPlain caps one MuxSealed container's plaintext (the
	// negotiated MaxPayload minus the AEAD tag); zero on cleartext
	// sessions. The flusher packs consecutive frames up to this budget so
	// one GCM pass and one writev cover a burst of small frames.
	containerPlain int
	streamWindow   int
	streamWindowAt int
	ackFrames      int
	ackBytes       int
	kaInterval     time.Duration
	dialer         bool
	// peerHost and peerAddr are what the peer advertised in its hello;
	// peerAddr keys the manager's reuse table so either side can open
	// streams over the one connection.
	peerHost string
	peerAddr string
	// addrKey is the manager reuse-table key this transport registered
	// under ("" when none); dialAddr is the address the dialer side
	// originally dialed, reused for session resumption.
	addrKey  string
	dialAddr string

	// wmu serializes frame writes to the shared connection and guards the
	// reliable-frame send state (sendSeq, sendLog): the log order is the
	// wire order, which resume replay depends on. The header+payload pair
	// of one frame goes out with a single writev so concurrent streams
	// interleave only on frame boundaries.
	wmu          sync.Mutex
	sendSeq      uint64
	sendLog      []muxLogEntry
	sendLogBytes int

	// resumeMu serializes inbound resume handshakes.
	resumeMu sync.Mutex

	mu sync.Mutex
	// conn is the current shared connection; nil while reconnecting.
	conn net.Conn
	// gen counts successfully installed connections; a resume attempt is
	// valid only for the generation it observed breaking.
	gen int
	// readerDone is closed when the current generation's read loop exits;
	// resume waits on it so recvSeq is final before being advertised.
	readerDone   chan struct{}
	reconnecting bool
	// attempts counts reconnect attempts in the current outage (the n of
	// the debug surface's "reconnecting(n)").
	attempts int
	// resumeDeadline is when the current outage's resume window expires;
	// zero while connected. Surfaced on Info for /connz.
	resumeDeadline time.Time
	streams        map[uint64]*Stream
	nextID         uint64
	closed         bool
	closeErr       error
	opened         time.Time
	// cached endpoint addresses of the most recent connection, so streams
	// can answer LocalAddr/RemoteAddr while the transport is between
	// connections.
	localAddr  net.Addr
	remoteAddr net.Addr

	// recvSeq counts reliable mux frames fully received; lastRead is the
	// unix-nano time of the last inbound frame (keepalive freshness).
	recvSeq  atomic.Uint64
	lastRead atomic.Int64

	// Smoothed path RTT (RFC 6298 estimator, see rtt.go): srttNanos /
	// rttvarNanos hold the estimate, pingSentAt the unix-nano stamp of the
	// oldest unanswered keepalive ping (0 when none outstanding). Seeded
	// from the handshake duration, refined by every ping/pong round.
	srttNanos   atomic.Int64
	rttvarNanos atomic.Int64
	pingSentAt  atomic.Int64

	// relayed records whether the current connection runs through a
	// rendezvous relay rather than a direct dial; guarded by mu.
	relayed bool

	// rec is the transport's flight recorder: a bounded ring of lifecycle
	// events dumped into the log when the session dies with
	// ErrTransportLost.
	rec *flightRecorder
}

// ID returns the transport id shared by both ends.
func (t *Transport) ID() wire.ConnID { return t.id }

// Secret returns the transport secret both ends derived at handshake;
// connection session keys are derived from it bound to the connection id.
func (t *Transport) Secret() []byte { return t.secret }

// PeerHost returns the host name the peer advertised.
func (t *Transport) PeerHost() string { return t.peerHost }

func (t *Transport) alive() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.closed
}

// maxPayload is the largest plaintext payload one mux frame may carry
// under the negotiated limits (sealed frames still fit the wire-level
// MaxPayload once the record overhead is added back).
func (t *Transport) maxPayload() int {
	if t.maxPlain > 0 {
		return t.maxPlain
	}
	return wire.MaxMuxPayload
}

// containerCap is the largest plaintext one MuxSealed container may hold
// under the negotiated limits (the sealed container then fits the
// negotiated wire-level MaxPayload exactly).
func (t *Transport) containerCap() int {
	if t.containerPlain > 0 {
		return t.containerPlain
	}
	return wire.MaxMuxPayload - security.RecordOverhead
}

// initialStreamWindow is the negotiated per-stream credit window.
func (t *Transport) initialStreamWindow() int {
	if t.streamWindow > 0 {
		return t.streamWindow
	}
	return initialWindow
}

// streamGrantAt is the consumed-byte threshold past which a stream's
// reader grants the peer more credit.
func (t *Transport) streamGrantAt() int {
	if t.streamWindowAt > 0 {
		return t.streamWindowAt
	}
	return windowUpdateAt
}

// ackCadence is the negotiated reliable-frame acknowledgement cadence.
func (t *Transport) ackCadence() (frames, bytes int) {
	frames, bytes = t.ackFrames, t.ackBytes
	if frames <= 0 {
		frames = ackEveryFrames
	}
	if bytes <= 0 {
		bytes = ackEveryBytes
	}
	return frames, bytes
}

// handshake constants.
const (
	serverTagLabel = "naplet-transport-server-v1"
	clientTagLabel = "naplet-transport-client-v1"
)

// transportSecret derives the shared transport secret from the raw DH
// secret (or, in insecure mode, from the transport id alone — keeping the
// tagging machinery uniform without the key-exchange cost, exactly like
// insecure connection keys).
func transportSecret(dhSecret []byte, id wire.ConnID, insecure bool) []byte {
	if insecure {
		return dhkx.DeriveSessionKey(id[:], id[:])
	}
	return dhkx.DeriveSessionKey(dhSecret, id[:])
}

// transcriptTag authenticates the handshake transcript under the transport
// secret, proving the tagger derived the same secret. Because the raw
// hello bytes are covered, the tags double as downgrade protection: a
// middlebox that rewrites a hello's version list, cipher list, or limits
// desynchronises the two transcripts and the handshake fails on both
// sides — the negotiation can never be silently steered.
func transcriptTag(auth *dhkx.Authenticator, label string, clientHello, serverHello []byte) [wire.TagSize]byte {
	msg := make([]byte, 0, len(label)+len(clientHello)+len(serverHello))
	msg = append(msg, label...)
	msg = append(msg, clientHello...)
	msg = append(msg, serverHello...)
	return auth.Sign(msg)
}

// handshakeResult is everything a completed fresh-session handshake
// produced: the identity and secret, the negotiated protocol, the key
// schedule (version-2 secure sessions only), and the dialer-order
// transcript hash the initial seal keys are bound to.
type handshakeResult struct {
	id         wire.ConnID
	secret     []byte
	ks         *security.KeySchedule
	neg        wire.Negotiated
	transcript []byte
	peer       *wire.TransportHello
}

// deriveSessionSecret turns the raw DH secret into the session secret and,
// for version-2 secure sessions, the per-purpose key schedule. Version-1
// peers and insecure mode keep the legacy single-key derivation so mixed
// deployments interoperate.
func deriveSessionSecret(dhSecret []byte, id wire.ConnID, insecure bool, neg wire.Negotiated) ([]byte, *security.KeySchedule) {
	if insecure || neg.Version < wire.TransportVersion2 {
		return transportSecret(dhSecret, id, insecure), nil
	}
	ks := security.NewKeySchedule(dhSecret, id[:])
	return ks.SessionKey(), ks
}

// clientHandshake runs the dialer's half of the transport handshake on a
// fresh connection whose deadline the caller has already set.
func clientHandshake(conn net.Conn, cfg *Config, trace []byte) (*handshakeResult, error) {
	id, err := wire.NewConnID()
	if err != nil {
		return nil, err
	}
	var kp *dhkx.KeyPair
	hello := &wire.TransportHello{ID: id, Insecure: cfg.Insecure, Host: cfg.HostName, Addr: cfg.AdvertiseAddr, Trace: trace}
	cfg.helloNegotiation(hello)
	if !cfg.Insecure {
		if kp, err = dhkx.GenerateKeyPair(); err != nil {
			return nil, err
		}
		hello.Public = kp.PublicBytes()
	}
	sent, err := wire.WriteTransportHello(conn, hello)
	if err != nil {
		return nil, err
	}
	peer, recvd, err := wire.ReadTransportHello(conn)
	if err != nil {
		return nil, err
	}
	if peer.Insecure != cfg.Insecure {
		return nil, fmt.Errorf("%w: security mode mismatch with %s", ErrHandshake, peer.Host)
	}
	if peer.ID != id {
		return nil, fmt.Errorf("%w: peer echoed wrong transport id", ErrHandshake)
	}
	neg, err := wire.Negotiate(hello, peer)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	var dhSecret []byte
	if !cfg.Insecure {
		if dhSecret, err = kp.SharedSecret(peer.Public); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
	}
	secret, ks := deriveSessionSecret(dhSecret, id, cfg.Insecure, neg)
	auth, err := dhkx.NewAuthenticator(secret)
	if err != nil {
		return nil, err
	}
	var srvTag [wire.TagSize]byte
	if _, err = io.ReadFull(conn, srvTag[:]); err != nil {
		return nil, err
	}
	want := transcriptTag(auth, serverTagLabel, sent, recvd)
	if !hmacEqual(want, srvTag) {
		return nil, fmt.Errorf("%w: bad server transcript tag", ErrHandshake)
	}
	cliTag := transcriptTag(auth, clientTagLabel, sent, recvd)
	if _, err = conn.Write(cliTag[:]); err != nil {
		return nil, err
	}
	return &handshakeResult{
		id: id, secret: secret, ks: ks, neg: neg,
		transcript: security.TranscriptHash(sent, recvd),
		peer:       peer,
	}, nil
}

// serverHandshake runs the acceptor's half of a fresh-session handshake,
// given the already-read client hello (HandleConn reads it first to tell
// fresh sessions from resumes).
func serverHandshake(conn net.Conn, cfg *Config, peer *wire.TransportHello, recvd []byte) (*handshakeResult, error) {
	if peer.Insecure != cfg.Insecure {
		return nil, fmt.Errorf("%w: security mode mismatch with %s", ErrHandshake, peer.Host)
	}
	id := peer.ID
	var kp *dhkx.KeyPair
	var err error
	hello := &wire.TransportHello{ID: id, Insecure: cfg.Insecure, Host: cfg.HostName, Addr: cfg.AdvertiseAddr}
	cfg.helloNegotiation(hello)
	if !cfg.Insecure {
		if kp, err = dhkx.GenerateKeyPair(); err != nil {
			return nil, err
		}
		hello.Public = kp.PublicBytes()
	}
	sent, err := wire.WriteTransportHello(conn, hello)
	if err != nil {
		return nil, err
	}
	neg, err := wire.Negotiate(hello, peer)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	var dhSecret []byte
	if !cfg.Insecure {
		if dhSecret, err = kp.SharedSecret(peer.Public); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
	}
	secret, ks := deriveSessionSecret(dhSecret, id, cfg.Insecure, neg)
	auth, err := dhkx.NewAuthenticator(secret)
	if err != nil {
		return nil, err
	}
	srvTag := transcriptTag(auth, serverTagLabel, recvd, sent)
	if _, err = conn.Write(srvTag[:]); err != nil {
		return nil, err
	}
	var cliTag [wire.TagSize]byte
	if _, err = io.ReadFull(conn, cliTag[:]); err != nil {
		return nil, err
	}
	want := transcriptTag(auth, clientTagLabel, recvd, sent)
	if !hmacEqual(want, cliTag) {
		return nil, fmt.Errorf("%w: bad client transcript tag", ErrHandshake)
	}
	return &handshakeResult{
		id: id, secret: secret, ks: ks, neg: neg,
		transcript: security.TranscriptHash(recvd, sent),
		peer:       peer,
	}, nil
}

// hmacEqual compares two already-HMAC'd tags; Verify recomputes, so plain
// constant-time comparison of the fixed-size arrays is what we need here.
func hmacEqual(a, b [wire.TagSize]byte) bool {
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}

// writeMux writes one mux frame to conn; the header and payload reach the
// kernel in a single writev, so no copy joins them.
func writeMux(conn net.Conn, typ uint8, stream uint64, payload []byte) error {
	hdr := wire.AppendMuxHeader(make([]byte, 0, wire.MuxHeaderSize), typ, stream, len(payload))
	if len(payload) == 0 {
		_, err := conn.Write(hdr)
		return err
	}
	bufs := net.Buffers{hdr, payload}
	_, err := bufs.WriteTo(conn)
	return err
}

// seqPayload encodes a reliable-frame count for ping/pong/ack payloads.
func seqPayload(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// writeFrame sends one mux frame. Reliable frames (open/accept/reset/data/
// fin/window) are first copied into the unacked send log — if the shared
// connection is down they simply wait there and are replayed when the
// session resumes, so callers see success for anything the resume contract
// covers. Unreliable frames (ping/pong/ack) are droppable by definition:
// they use a try-lock so the read loop can never deadlock against a resume
// replay holding the write lock, and they vanish while disconnected.
func (t *Transport) writeFrame(typ uint8, stream uint64, payload []byte) error {
	if len(payload) > t.maxPayload() {
		return fmt.Errorf("transport: mux payload %d exceeds limit", len(payload))
	}
	reliable := wire.ReliableMuxFrame(typ)
	if reliable && t.flusher != nil {
		// Soft backpressure on the sealed-record queue, taken before wmu
		// so a waiting writer can never deadlock the flusher (which needs
		// no lock we hold while waiting).
		t.flusher.waitSpace()
	}
	if reliable {
		t.wmu.Lock()
	} else if !t.wmu.TryLock() {
		return nil
	}
	err, failCause := t.writeFrameLocked(typ, stream, payload, reliable)
	t.wmu.Unlock()
	if failCause != nil {
		t.fail(failCause)
	}
	return err
}

// writeFrameLocked does writeFrame's work under wmu. It returns the error
// for the caller plus an optional transport-fatal cause the caller must
// pass to fail after releasing wmu.
func (t *Transport) writeFrameLocked(typ uint8, stream uint64, payload []byte, reliable bool) (err, failCause error) {
	if reliable {
		var cp []byte
		if len(payload) > 0 {
			cp = wire.GetPayload(len(payload))
			copy(cp, payload)
		}
		t.sendSeq++
		t.sendLog = append(t.sendLog, muxLogEntry{seq: t.sendSeq, typ: typ, stream: stream, payload: cp})
		t.sendLogBytes += len(payload)
	}
	t.mu.Lock()
	conn, closed, closeErr := t.conn, t.closed, t.closeErr
	t.mu.Unlock()
	if closed {
		if closeErr == nil {
			closeErr = ErrClosed
		}
		return closeErr, nil
	}
	if conn == nil {
		// Between connections. Reliable frames wait in the log for the
		// resume replay — unless the outage has already outgrown the
		// replay budget, at which point the session is unrecoverable.
		if !reliable {
			return nil, nil
		}
		if t.sendLogBytes > t.mgr.cfg.ResumeLogBudget {
			cause := fmt.Errorf("%w: resume log budget exceeded (%d bytes unacked)", ErrTransportLost, t.sendLogBytes)
			return cause, cause
		}
		return nil, nil
	}
	if werr, fatal := t.sendLocked(conn, typ, stream, payload); werr != nil {
		if fatal {
			return werr, werr
		}
		t.connBroken(conn, werr)
		if !reliable {
			return werr, nil
		}
	}
	return nil, nil
}

// sendLocked transmits one frame on conn; the caller holds wmu. Cleartext
// sessions write straight to the kernel. Encrypted sessions pack the
// frame into the flusher's pending container — tagged with the current
// generation's sealer, which resume swaps under this same lock — and the
// flusher goroutine seals containers in queue order (so the AEAD nonce
// order is exactly the wire order) and writevs multi-container batches.
// Both the crypto and the flush syscall run outside wmu, overlapping the
// next frame's production; seal failures (nonce exhaustion) fail the
// transport from the flusher. A fatal=true error must fail the whole
// transport; others are connection I/O errors that feed the resume path.
func (t *Transport) sendLocked(conn net.Conn, typ uint8, stream uint64, payload []byte) (err error, fatal bool) {
	if t.flusher == nil {
		return writeMux(conn, typ, stream, payload), false
	}
	t.flusher.enqueue(conn, t.sealer, typ, stream, payload)
	return nil, false
}

// trimSendLogLocked releases reliable frames the peer confirmed receiving.
// Caller holds wmu.
func (t *Transport) trimSendLogLocked(acked uint64) {
	i := 0
	for i < len(t.sendLog) && t.sendLog[i].seq <= acked {
		t.sendLogBytes -= len(t.sendLog[i].payload)
		if t.sendLog[i].payload != nil {
			wire.PutPayload(t.sendLog[i].payload)
		}
		i++
	}
	if i == 0 {
		return
	}
	kept := copy(t.sendLog, t.sendLog[i:])
	for j := kept; j < len(t.sendLog); j++ {
		t.sendLog[j] = muxLogEntry{}
	}
	t.sendLog = t.sendLog[:kept]
}

// handleAck trims the send log up to the peer's cumulative receive count.
func (t *Transport) handleAck(acked uint64) {
	t.wmu.Lock()
	t.trimSendLogLocked(acked)
	t.wmu.Unlock()
}

// OpenStream opens a logical stream carrying hdr as its open payload and
// waits for the peer's accept (or refusal) up to timeout.
func (t *Transport) OpenStream(hdr *wire.HandoffHeader, timeout time.Duration) (*Stream, error) {
	var buf bytes.Buffer
	if err := hdr.Write(&buf); err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.closed {
		err := t.closeErr
		t.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	sid := t.nextID
	t.nextID += 2
	s := newStream(t, sid, true)
	t.streams[sid] = s
	t.mu.Unlock()

	if err := t.writeFrame(wire.MuxOpen, sid, buf.Bytes()); err != nil {
		return nil, err
	}
	if err := s.waitOpened(timeout); err != nil {
		t.removeStream(sid)
		// Best-effort: tell the peer we gave up waiting.
		t.writeFrame(wire.MuxReset, sid, []byte("open timed out"))
		return nil, err
	}
	return s, nil
}

// serveOpen authorizes and delivers one inbound stream; it runs outside the
// read loop so a slow rendezvous cannot stall the whole transport.
func (t *Transport) serveOpen(s *Stream, hdr *wire.HandoffHeader) {
	cfg := &t.mgr.cfg
	if cfg.Authorize != nil {
		if err := cfg.Authorize(hdr); err != nil {
			t.logf("transport %s: refused %s stream for %s: %v", t.peerHost, hdr.Purpose, hdr.ConnID, err)
			t.removeStream(s.id)
			t.writeFrame(wire.MuxReset, s.id, []byte("handoff denied"))
			return
		}
	}
	if err := t.writeFrame(wire.MuxAccept, s.id, nil); err != nil {
		return
	}
	if cfg.Deliver == nil || !cfg.Deliver(hdr, s) {
		t.logf("transport %s: no endpoint claimed %s stream for %s", t.peerHost, hdr.Purpose, hdr.ConnID)
		s.Close()
	}
}

// readPayloadInto fills p from the buffered reader's backlog first, then
// straight from the underlying connection: headers are decoded through the
// small bufio buffer, but the bulk of a large data payload skips the
// intermediate copy entirely.
func readPayloadInto(br *bufio.Reader, conn io.Reader, p []byte) error {
	n := 0
	for n < len(p) && br.Buffered() > 0 {
		m, err := br.Read(p[n:])
		n += m
		if err != nil {
			return err
		}
	}
	if n < len(p) {
		if _, err := io.ReadFull(conn, p[n:]); err != nil {
			return err
		}
	}
	return nil
}

// muxReadState carries one connection generation's receive-side
// bookkeeping across frames: the cumulative reliable-frame count the
// resume contract advertises, plus the ack cadence counters and
// thresholds. It is shared by the cleartext wire path and the sealed
// container demux, so both count exactly the same logical frames.
type muxReadState struct {
	recvSeq        uint64
	framesSinceAck int
	bytesSinceAck  int
	ackFrames      int
	ackBytes       int
}

// readFailed classifies the end of one connection generation: a protocol
// violation (desynchronised mux framing, malformed open) is unrecoverable
// and fails the whole transport, while a plain I/O error means the
// connection died and the session tries to resume.
func (t *Transport) readFailed(conn net.Conn, err error) {
	if errors.Is(err, wire.ErrBadTransport) {
		t.fail(err)
		return
	}
	t.connBroken(conn, err)
}

// readLoop demultiplexes inbound frames for one connection generation. Data
// payloads land in pooled buffers whose ownership passes to the receiving
// stream (and from there, segment by segment, back to the pool as the
// stream's reader drains them); control payloads — open headers, reset
// reasons, window grants — are small and reuse one scratch buffer.
//
// The loop also carries the session-resumption bookkeeping: every reliable
// frame bumps the transport's cumulative receive count (advertised back to
// the peer as ack cadence demands, and in the resume hello after a
// failure), and every inbound frame refreshes the keepalive clock.
//
// On encrypted sessions opener holds the peer's per-generation seal key
// (nil on cleartext sessions): every frame on the wire is a MuxSealed
// container — one AEAD record, opened in place in the buffer the
// ciphertext arrived in, whose plaintext is a sequence of complete mux
// frames that amortise the GCM pass. An authentication failure (or a bare
// cleartext frame) is a protocol violation, not an I/O blip — it fails the
// transport rather than feeding the resume path, since a tampered stream
// can never resynchronise.
func (t *Transport) readLoop(conn net.Conn, done chan struct{}, opener *security.Opener) {
	defer close(done)
	// The buffer is deliberately small: it batches the 13-byte mux headers
	// and small control frames, while readPayloadInto pulls the bulk of
	// each data payload straight from the socket into its pooled segment —
	// a large buffer here would soak up payload bytes on header reads and
	// force an extra copy for almost every data byte.
	br := bufio.NewReaderSize(conn, 4<<10)
	rl := muxReadState{recvSeq: t.recvSeq.Load()}
	rl.ackFrames, rl.ackBytes = t.adaptiveAckCadence()
	if opener != nil {
		t.readSealed(conn, br, opener, &rl)
		return
	}
	var scratch []byte
	wireMax := t.maxPayload()
	for {
		h, err := wire.ReadMuxHeader(br)
		if err != nil {
			t.readFailed(conn, err)
			return
		}
		if h.Type == wire.MuxSealed {
			t.fail(fmt.Errorf("%w: sealed container on cleartext session", wire.ErrBadTransport))
			return
		}
		if int(h.Length) > wireMax {
			t.fail(fmt.Errorf("%w: mux payload %d exceeds negotiated limit %d", wire.ErrBadTransport, h.Length, wireMax))
			return
		}
		t.lastRead.Store(time.Now().UnixNano())
		if h.Type == wire.MuxData {
			var buf []byte
			if h.Length > 0 {
				buf = wire.GetPayload(int(h.Length))
				if err := readPayloadInto(br, conn, buf); err != nil {
					wire.PutPayload(buf)
					t.readFailed(conn, err)
					return
				}
			}
			if !t.handleFrame(h, buf, true, &rl) {
				return
			}
			continue
		}
		var payload []byte
		if h.Length > 0 {
			if cap(scratch) < int(h.Length) {
				scratch = make([]byte, h.Length)
			}
			payload = scratch[:h.Length]
			if _, err := io.ReadFull(br, payload); err != nil {
				t.readFailed(conn, err)
				return
			}
		}
		if !t.handleFrame(h, payload, false, &rl) {
			return
		}
	}
}

// readSealed is the encrypted read loop: every wire frame must be a
// MuxSealed container whose associated data is its own header
// (AppendMuxHeader is deterministic, so the rebuilt bytes equal what the
// peer sealed over). Each container is opened in place with one GCM pass,
// then the inner frames are demultiplexed through the same handler the
// cleartext loop uses — so reliable-frame counting, ack cadence, and the
// resume contract see exactly the inner frames, never the container.
func (t *Transport) readSealed(conn net.Conn, br *bufio.Reader, opener *security.Opener, rl *muxReadState) {
	var aadBuf [wire.MuxHeaderSize]byte
	wireMax := t.containerCap() + security.RecordOverhead
	maxInner := t.maxPayload()
	for {
		h, err := wire.ReadMuxHeader(br)
		if err != nil {
			t.readFailed(conn, err)
			return
		}
		if h.Type != wire.MuxSealed {
			t.fail(fmt.Errorf("%w: cleartext frame type %d on encrypted session", wire.ErrBadTransport, h.Type))
			return
		}
		if int(h.Length) > wireMax || h.Length < security.RecordOverhead {
			t.fail(fmt.Errorf("%w: sealed container of %d bytes (cap %d)", wire.ErrBadTransport, h.Length, wireMax))
			return
		}
		t.lastRead.Store(time.Now().UnixNano())
		buf := wire.GetPayload(int(h.Length))
		if err := readPayloadInto(br, conn, buf); err != nil {
			wire.PutPayload(buf)
			t.readFailed(conn, err)
			return
		}
		aad := wire.AppendMuxHeader(aadBuf[:0], h.Type, h.Stream, int(h.Length))
		pt, oerr := opener.Open(buf[:0], buf, aad)
		if oerr != nil {
			wire.PutPayload(buf)
			t.fail(oerr)
			return
		}
		ok := true
		for off := 0; ok && off < len(pt); {
			ih, derr := wire.DecodeMuxHeader(pt[off:])
			if derr != nil {
				wire.PutPayload(buf)
				t.fail(derr)
				return
			}
			off += wire.MuxHeaderSize
			end := off + int(ih.Length)
			if int(ih.Length) > maxInner || end > len(pt) {
				wire.PutPayload(buf)
				t.fail(fmt.Errorf("%w: inner mux frame of %d bytes overruns its container", wire.ErrBadTransport, ih.Length))
				return
			}
			ok = t.handleFrame(ih, pt[off:end], false, rl)
			off = end
		}
		wire.PutPayload(buf)
		if !ok {
			return
		}
	}
}

// handleFrame applies one demultiplexed mux frame — straight off a
// cleartext wire or from inside an opened container — to the transport:
// reliable-frame sequence counting, ack cadence, and stream dispatch.
// payload is only valid for the duration of the call unless owned is true,
// in which case it is a pooled buffer whose ownership transfers here (only
// data frames arrive owned: the buffer moves to the receiving stream, or
// back to the pool). It returns false when the read loop must exit; the
// transport has already been failed or closed by then.
func (t *Transport) handleFrame(h wire.MuxHeader, payload []byte, owned bool, rl *muxReadState) bool {
	t.mu.Lock()
	s := t.streams[h.Stream]
	t.mu.Unlock()
	if h.Type == wire.MuxData {
		rl.recvSeq++
		t.recvSeq.Store(rl.recvSeq)
		rl.framesSinceAck++
		rl.bytesSinceAck += len(payload)
		buf := payload
		if !owned && len(payload) > 0 {
			// Container plaintext is recycled when the demux finishes, so
			// data segments are copied out into their own pooled buffer
			// before ownership moves to the stream.
			buf = wire.GetPayload(len(payload))
			copy(buf, payload)
		}
		if len(buf) > 0 {
			if s != nil {
				s.pushData(buf) // ownership moves to the stream
			} else {
				wire.PutPayload(buf) // stream already gone; drop the bytes
			}
		}
		if rl.framesSinceAck >= rl.ackFrames || rl.bytesSinceAck >= rl.ackBytes {
			rl.framesSinceAck, rl.bytesSinceAck = 0, 0
			t.writeFrame(wire.MuxAck, 0, seqPayload(rl.recvSeq))
		}
		return true
	}
	if wire.ReliableMuxFrame(h.Type) {
		rl.recvSeq++
		t.recvSeq.Store(rl.recvSeq)
		if rl.framesSinceAck++; rl.framesSinceAck >= rl.ackFrames {
			rl.framesSinceAck, rl.bytesSinceAck = 0, 0
			t.writeFrame(wire.MuxAck, 0, seqPayload(rl.recvSeq))
		}
	}
	switch h.Type {
	case wire.MuxOpen:
		hdr, err := wire.ReadHandoffHeader(bytes.NewReader(payload))
		if err != nil {
			t.fail(fmt.Errorf("transport: bad stream open: %w", err))
			return false
		}
		if s != nil {
			t.fail(fmt.Errorf("transport: stream %d reopened", h.Stream))
			return false
		}
		// Register before accepting so data racing behind the accept
		// lands in the buffer rather than the void.
		ns := newStream(t, h.Stream, false)
		t.mu.Lock()
		closed := t.closed
		if !closed {
			t.streams[h.Stream] = ns
		}
		t.mu.Unlock()
		if closed {
			return false
		}
		go t.serveOpen(ns, hdr)
	case wire.MuxAccept:
		if s != nil {
			s.opened()
		}
	case wire.MuxReset:
		if s != nil {
			t.removeStream(h.Stream)
			s.remoteReset(string(payload))
		}
	case wire.MuxFin:
		if s != nil {
			s.finReceived()
		}
	case wire.MuxWindow:
		if s != nil && len(payload) == 4 {
			s.addSendWindow(int(uint32(payload[0])<<24 | uint32(payload[1])<<16 | uint32(payload[2])<<8 | uint32(payload[3])))
		}
	case wire.MuxPing:
		if len(payload) == 8 {
			t.handleAck(binary.BigEndian.Uint64(payload))
		}
		t.writeFrame(wire.MuxPong, 0, seqPayload(rl.recvSeq))
	case wire.MuxPong:
		if len(payload) == 8 {
			t.handleAck(binary.BigEndian.Uint64(payload))
		}
		// A pong resolves our oldest outstanding ping into an RTT sample,
		// and the refined estimate retunes this generation's ack cadence.
		t.notePongReceived()
		rl.ackFrames, rl.ackBytes = t.adaptiveAckCadence()
	case wire.MuxAck:
		if len(payload) == 8 {
			t.handleAck(binary.BigEndian.Uint64(payload))
		}
	}
	return true
}

// fail tears the transport down for good: the shared connection closes,
// every stream fails with an ErrTransportLost-wrapped error (which the
// NapletSocket layer above heals through its SUSPENDED/resume recovery
// path), and the retained replay log is released.
func (t *Transport) fail(cause error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.closeErr = cause
	t.reconnecting = false
	conn := t.conn
	t.conn = nil
	streams := make([]*Stream, 0, len(t.streams))
	for _, s := range t.streams {
		streams = append(streams, s)
	}
	t.streams = map[uint64]*Stream{}
	t.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if t.flusher != nil {
		t.flusher.close()
	}
	for _, s := range streams {
		s.transportFailed(cause)
	}
	// Release the replay log after the connection is closed: any replay
	// holding wmu fails its write promptly and lets go.
	t.wmu.Lock()
	for i := range t.sendLog {
		if t.sendLog[i].payload != nil {
			wire.PutPayload(t.sendLog[i].payload)
		}
		t.sendLog[i] = muxLogEntry{}
	}
	t.sendLog = nil
	t.sendLogBytes = 0
	t.wmu.Unlock()
	// A session lost for good gets its black box on record before the
	// tombstone replaces it.
	if errors.Is(cause, ErrTransportLost) {
		t.rec.record("lost", "%v", cause)
		t.rec.dump(t.logf, fmt.Sprintf("%s (peer %s)", t.id, t.peerHost), cause)
	}
	if t.mgr != nil {
		t.mgr.remove(t, cause)
	}
}

func (t *Transport) removeStream(id uint64) {
	t.mu.Lock()
	delete(t.streams, id)
	t.mu.Unlock()
}

// streamCount returns the number of live streams.
func (t *Transport) streamCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.streams)
}

// addrs returns the cached endpoint addresses of the most recent
// connection (valid even while the transport is between connections).
func (t *Transport) addrs() (local, remote net.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.localAddr, t.remoteAddr
}

func (t *Transport) logf(format string, args ...any) {
	if t.mgr != nil && t.mgr.cfg.Logf != nil {
		t.mgr.cfg.Logf(format, args...)
	}
}
