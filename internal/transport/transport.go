// Package transport implements the shared per-host-pair transport layer:
// one authenticated TCP connection between any two hosts, multiplexing
// every logical NapletSocket data stream between them.
//
// The paper's Table 1 shows connection setup cost is dominated by the
// per-connection TCP handshake plus Diffie-Hellman key exchange. This layer
// amortises both: the first connection between two hosts dials once and
// runs one DH exchange; every later connection (and every migration resume
// targeting the same host) opens a lightweight stream over the warm
// transport, paying only a control round trip. Streams carry per-stream
// credit-based flow control so one bulk stream cannot head-of-line-starve
// the others, and each stream supports the half-close (CloseWrite) the
// suspend drain's FLUSH barrier depends on.
//
// Security (Section 3.3 of the paper, amortised): the transport handshake
// runs the unauthenticated ephemeral DH that connection setup used to run
// per connection, and both sides prove possession of the derived transport
// secret with HMAC tags over the hello transcript. Per-connection session
// keys are then derived from the transport secret bound to the connection
// id, so compromise of one connection's key reveals nothing about its
// siblings, and the handoff-token and control-message HMAC machinery above
// is unchanged. The trust root is identical to the old per-connection
// exchange (unauthenticated DH, hardened by the Guard policy layer); what
// changes is only how often the modular exponentiation is paid.
package transport

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"naplet/internal/dhkx"
	"naplet/internal/wire"
)

// Errors returned by the transport layer.
var (
	// ErrClosed reports use of a closed manager or transport.
	ErrClosed = errors.New("transport: closed")
	// ErrStreamClosed reports use of a locally closed stream.
	ErrStreamClosed = errors.New("transport: stream closed")
	// ErrHandshake reports a failed transport handshake.
	ErrHandshake = errors.New("transport: handshake failed")
)

// Transport is one end of the shared connection between a pair of hosts.
// Both sides hold the same transport id and secret; the dialer opens
// odd-numbered streams, the acceptor even-numbered ones.
type Transport struct {
	mgr    *Manager
	conn   net.Conn
	id     wire.ConnID
	secret []byte
	dialer bool
	// peerHost and peerAddr are what the peer advertised in its hello;
	// peerAddr keys the manager's reuse table so either side can open
	// streams over the one connection.
	peerHost string
	peerAddr string
	// addrKey is the manager reuse-table key this transport registered
	// under ("" when none).
	addrKey string

	// wmu serializes frame writes to conn; the header+payload pair of one
	// frame goes out with a single writev so concurrent streams interleave
	// only on frame boundaries.
	wmu sync.Mutex

	mu       sync.Mutex
	streams  map[uint64]*Stream
	nextID   uint64
	closed   bool
	closeErr error
	opened   time.Time
}

// ID returns the transport id shared by both ends.
func (t *Transport) ID() wire.ConnID { return t.id }

// Secret returns the transport secret both ends derived at handshake;
// connection session keys are derived from it bound to the connection id.
func (t *Transport) Secret() []byte { return t.secret }

// PeerHost returns the host name the peer advertised.
func (t *Transport) PeerHost() string { return t.peerHost }

func (t *Transport) alive() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.closed
}

// handshake constants.
const (
	serverTagLabel = "naplet-transport-server-v1"
	clientTagLabel = "naplet-transport-client-v1"
)

// transportSecret derives the shared transport secret from the raw DH
// secret (or, in insecure mode, from the transport id alone — keeping the
// tagging machinery uniform without the key-exchange cost, exactly like
// insecure connection keys).
func transportSecret(dhSecret []byte, id wire.ConnID, insecure bool) []byte {
	if insecure {
		return dhkx.DeriveSessionKey(id[:], id[:])
	}
	return dhkx.DeriveSessionKey(dhSecret, id[:])
}

// transcriptTag authenticates the handshake transcript under the transport
// secret, proving the tagger derived the same secret.
func transcriptTag(auth *dhkx.Authenticator, label string, clientHello, serverHello []byte) [wire.TagSize]byte {
	msg := make([]byte, 0, len(label)+len(clientHello)+len(serverHello))
	msg = append(msg, label...)
	msg = append(msg, clientHello...)
	msg = append(msg, serverHello...)
	return auth.Sign(msg)
}

// clientHandshake runs the dialer's half of the transport handshake on a
// fresh connection whose deadline the caller has already set.
func clientHandshake(conn net.Conn, cfg *Config) (id wire.ConnID, secret []byte, peer *wire.TransportHello, err error) {
	id, err = wire.NewConnID()
	if err != nil {
		return id, nil, nil, err
	}
	var kp *dhkx.KeyPair
	hello := &wire.TransportHello{ID: id, Insecure: cfg.Insecure, Host: cfg.HostName, Addr: cfg.AdvertiseAddr}
	if !cfg.Insecure {
		if kp, err = dhkx.GenerateKeyPair(); err != nil {
			return id, nil, nil, err
		}
		hello.Public = kp.PublicBytes()
	}
	sent, err := wire.WriteTransportHello(conn, hello)
	if err != nil {
		return id, nil, nil, err
	}
	peer, recvd, err := wire.ReadTransportHello(conn)
	if err != nil {
		return id, nil, nil, err
	}
	if peer.Insecure != cfg.Insecure {
		return id, nil, nil, fmt.Errorf("%w: security mode mismatch with %s", ErrHandshake, peer.Host)
	}
	if peer.ID != id {
		return id, nil, nil, fmt.Errorf("%w: peer echoed wrong transport id", ErrHandshake)
	}
	var dhSecret []byte
	if !cfg.Insecure {
		if dhSecret, err = kp.SharedSecret(peer.Public); err != nil {
			return id, nil, nil, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
	}
	secret = transportSecret(dhSecret, id, cfg.Insecure)
	auth, err := dhkx.NewAuthenticator(secret)
	if err != nil {
		return id, nil, nil, err
	}
	var srvTag [wire.TagSize]byte
	if _, err = io.ReadFull(conn, srvTag[:]); err != nil {
		return id, nil, nil, err
	}
	want := transcriptTag(auth, serverTagLabel, sent, recvd)
	if !hmacEqual(want, srvTag) {
		return id, nil, nil, fmt.Errorf("%w: bad server transcript tag", ErrHandshake)
	}
	cliTag := transcriptTag(auth, clientTagLabel, sent, recvd)
	if _, err = conn.Write(cliTag[:]); err != nil {
		return id, nil, nil, err
	}
	return id, secret, peer, nil
}

// serverHandshake runs the acceptor's half on a connection whose first
// bytes (including the sniffed magic) are readable from conn.
func serverHandshake(conn net.Conn, cfg *Config) (id wire.ConnID, secret []byte, peer *wire.TransportHello, err error) {
	peer, recvd, err := wire.ReadTransportHello(conn)
	if err != nil {
		return id, nil, nil, err
	}
	if peer.Insecure != cfg.Insecure {
		return id, nil, nil, fmt.Errorf("%w: security mode mismatch with %s", ErrHandshake, peer.Host)
	}
	id = peer.ID
	var kp *dhkx.KeyPair
	hello := &wire.TransportHello{ID: id, Insecure: cfg.Insecure, Host: cfg.HostName, Addr: cfg.AdvertiseAddr}
	if !cfg.Insecure {
		if kp, err = dhkx.GenerateKeyPair(); err != nil {
			return id, nil, nil, err
		}
		hello.Public = kp.PublicBytes()
	}
	sent, err := wire.WriteTransportHello(conn, hello)
	if err != nil {
		return id, nil, nil, err
	}
	var dhSecret []byte
	if !cfg.Insecure {
		if dhSecret, err = kp.SharedSecret(peer.Public); err != nil {
			return id, nil, nil, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
	}
	secret = transportSecret(dhSecret, id, cfg.Insecure)
	auth, err := dhkx.NewAuthenticator(secret)
	if err != nil {
		return id, nil, nil, err
	}
	srvTag := transcriptTag(auth, serverTagLabel, recvd, sent)
	if _, err = conn.Write(srvTag[:]); err != nil {
		return id, nil, nil, err
	}
	var cliTag [wire.TagSize]byte
	if _, err = io.ReadFull(conn, cliTag[:]); err != nil {
		return id, nil, nil, err
	}
	want := transcriptTag(auth, clientTagLabel, recvd, sent)
	if !hmacEqual(want, cliTag) {
		return id, nil, nil, fmt.Errorf("%w: bad client transcript tag", ErrHandshake)
	}
	return id, secret, peer, nil
}

// hmacEqual compares two already-HMAC'd tags; Verify recomputes, so plain
// constant-time comparison of the fixed-size arrays is what we need here.
func hmacEqual(a, b [wire.TagSize]byte) bool {
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}

// writeFrame sends one mux frame; the header and payload reach the kernel
// in a single writev, so no copy joins them.
func (t *Transport) writeFrame(typ uint8, stream uint64, payload []byte) error {
	if len(payload) > wire.MaxMuxPayload {
		return fmt.Errorf("transport: mux payload %d exceeds limit", len(payload))
	}
	hdr := wire.AppendMuxHeader(make([]byte, 0, wire.MuxHeaderSize), typ, stream, len(payload))
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if len(payload) == 0 {
		_, err := t.conn.Write(hdr)
		return err
	}
	bufs := net.Buffers{hdr, payload}
	_, err := bufs.WriteTo(t.conn)
	return err
}

// OpenStream opens a logical stream carrying hdr as its open payload and
// waits for the peer's accept (or refusal) up to timeout.
func (t *Transport) OpenStream(hdr *wire.HandoffHeader, timeout time.Duration) (*Stream, error) {
	var buf bytes.Buffer
	if err := hdr.Write(&buf); err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.closed {
		err := t.closeErr
		t.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	sid := t.nextID
	t.nextID += 2
	s := newStream(t, sid, true)
	t.streams[sid] = s
	t.mu.Unlock()

	if err := t.writeFrame(wire.MuxOpen, sid, buf.Bytes()); err != nil {
		t.fail(err)
		return nil, err
	}
	if err := s.waitOpened(timeout); err != nil {
		t.removeStream(sid)
		// Best-effort: tell the peer we gave up waiting.
		t.writeFrame(wire.MuxReset, sid, []byte("open timed out"))
		return nil, err
	}
	return s, nil
}

// serveOpen authorizes and delivers one inbound stream; it runs outside the
// read loop so a slow rendezvous cannot stall the whole transport.
func (t *Transport) serveOpen(s *Stream, hdr *wire.HandoffHeader) {
	cfg := &t.mgr.cfg
	if cfg.Authorize != nil {
		if err := cfg.Authorize(hdr); err != nil {
			t.logf("transport %s: refused %s stream for %s: %v", t.peerHost, hdr.Purpose, hdr.ConnID, err)
			t.removeStream(s.id)
			t.writeFrame(wire.MuxReset, s.id, []byte("handoff denied"))
			return
		}
	}
	if err := t.writeFrame(wire.MuxAccept, s.id, nil); err != nil {
		t.fail(err)
		return
	}
	if cfg.Deliver == nil || !cfg.Deliver(hdr, s) {
		t.logf("transport %s: no endpoint claimed %s stream for %s", t.peerHost, hdr.Purpose, hdr.ConnID)
		s.Close()
	}
}

// readPayloadInto fills p from the buffered reader's backlog first, then
// straight from the underlying connection: headers are decoded through the
// small bufio buffer, but the bulk of a large data payload skips the
// intermediate copy entirely.
func readPayloadInto(br *bufio.Reader, conn io.Reader, p []byte) error {
	n := 0
	for n < len(p) && br.Buffered() > 0 {
		m, err := br.Read(p[n:])
		n += m
		if err != nil {
			return err
		}
	}
	if n < len(p) {
		if _, err := io.ReadFull(conn, p[n:]); err != nil {
			return err
		}
	}
	return nil
}

// readLoop demultiplexes inbound frames for the transport's lifetime. Data
// payloads land in pooled buffers whose ownership passes to the receiving
// stream (and from there, segment by segment, back to the pool as the
// stream's reader drains them); control payloads — open headers, reset
// reasons, window grants — are small and reuse one scratch buffer.
func (t *Transport) readLoop() {
	// The buffer is deliberately small: it batches the 13-byte mux headers
	// and small control frames, while readPayloadInto pulls the bulk of
	// each data payload straight from the socket into its pooled segment —
	// a large buffer here would soak up payload bytes on header reads and
	// force an extra copy for almost every data byte.
	br := bufio.NewReaderSize(t.conn, 4<<10)
	var scratch []byte
	for {
		h, err := wire.ReadMuxHeader(br)
		if err != nil {
			t.fail(err)
			return
		}
		t.mu.Lock()
		s := t.streams[h.Stream]
		t.mu.Unlock()
		if h.Type == wire.MuxData {
			if h.Length == 0 {
				continue
			}
			buf := wire.GetPayload(int(h.Length))
			if err := readPayloadInto(br, t.conn, buf); err != nil {
				wire.PutPayload(buf)
				t.fail(err)
				return
			}
			if s != nil {
				s.pushData(buf) // ownership moves to the stream
			} else {
				wire.PutPayload(buf) // stream already gone; drop the bytes
			}
			continue
		}
		var payload []byte
		if h.Length > 0 {
			if cap(scratch) < int(h.Length) {
				scratch = make([]byte, h.Length)
			}
			payload = scratch[:h.Length]
			if _, err := io.ReadFull(br, payload); err != nil {
				t.fail(err)
				return
			}
		}
		switch h.Type {
		case wire.MuxOpen:
			hdr, err := wire.ReadHandoffHeader(bytes.NewReader(payload))
			if err != nil {
				t.fail(fmt.Errorf("transport: bad stream open: %w", err))
				return
			}
			if s != nil {
				t.fail(fmt.Errorf("transport: stream %d reopened", h.Stream))
				return
			}
			// Register before accepting so data racing behind the accept
			// lands in the buffer rather than the void.
			ns := newStream(t, h.Stream, false)
			t.mu.Lock()
			closed := t.closed
			if !closed {
				t.streams[h.Stream] = ns
			}
			t.mu.Unlock()
			if closed {
				return
			}
			go t.serveOpen(ns, hdr)
		case wire.MuxAccept:
			if s != nil {
				s.opened()
			}
		case wire.MuxReset:
			if s != nil {
				t.removeStream(h.Stream)
				s.remoteReset(string(payload))
			}
		case wire.MuxFin:
			if s != nil {
				s.finReceived()
			}
		case wire.MuxWindow:
			if s != nil && h.Length == 4 {
				s.addSendWindow(int(uint32(payload[0])<<24 | uint32(payload[1])<<16 | uint32(payload[2])<<8 | uint32(payload[3])))
			}
		}
	}
}

// fail tears the transport down: the shared connection closes and every
// stream fails, which the NapletSocket layer above sees as a data-socket
// failure and heals through its SUSPENDED/resume recovery path.
func (t *Transport) fail(cause error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.closeErr = cause
	streams := make([]*Stream, 0, len(t.streams))
	for _, s := range t.streams {
		streams = append(streams, s)
	}
	t.streams = map[uint64]*Stream{}
	t.mu.Unlock()
	t.conn.Close()
	for _, s := range streams {
		s.transportFailed(cause)
	}
	if t.mgr != nil {
		t.mgr.remove(t)
	}
}

func (t *Transport) removeStream(id uint64) {
	t.mu.Lock()
	delete(t.streams, id)
	t.mu.Unlock()
}

// streamCount returns the number of live streams.
func (t *Transport) streamCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.streams)
}

func (t *Transport) logf(format string, args ...any) {
	if t.mgr != nil && t.mgr.cfg.Logf != nil {
		t.mgr.cfg.Logf(format, args...)
	}
}
