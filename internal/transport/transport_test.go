package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"naplet/internal/wire"
)

// testPeer is one host end for transport tests: a listener feeding inbound
// connections to a Manager, with delivered streams exposed on a channel.
type testPeer struct {
	t       *testing.T
	mgr     *Manager
	ln      net.Listener
	inbound chan *Stream
	dials   atomic.Int64

	mu        sync.Mutex
	authErr   error
	noDeliver bool
}

func (p *testPeer) setAuthErr(err error) {
	p.mu.Lock()
	p.authErr = err
	p.mu.Unlock()
}

func (p *testPeer) setNoDeliver(v bool) {
	p.mu.Lock()
	p.noDeliver = v
	p.mu.Unlock()
}

func newTestPeer(t *testing.T, name string, insecure bool) *testPeer {
	return newTestPeerCfg(t, name, insecure, nil)
}

// newTestPeerCfg is newTestPeer with a hook to adjust the Config before the
// Manager starts (resume windows, keepalive cadence, conn wrappers).
func newTestPeerCfg(t *testing.T, name string, insecure bool, mutate func(*Config)) *testPeer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &testPeer{t: t, ln: ln, inbound: make(chan *Stream, 64)}
	cfg := Config{
		HostName:         name,
		AdvertiseAddr:    ln.Addr().String(),
		Insecure:         insecure,
		HandshakeTimeout: 5 * time.Second,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			p.dials.Add(1)
			return net.DialTimeout("tcp", addr, timeout)
		},
		Authorize: func(h *wire.HandoffHeader) error {
			p.mu.Lock()
			defer p.mu.Unlock()
			return p.authErr
		},
		Deliver: func(h *wire.HandoffHeader, s *Stream) bool {
			p.mu.Lock()
			skip := p.noDeliver
			p.mu.Unlock()
			if skip {
				return false
			}
			p.inbound <- s
			return true
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	p.mgr = NewManager(cfg)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go p.mgr.HandleConn(conn)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		p.mgr.Close()
	})
	return p
}

func (p *testPeer) addr() string { return p.ln.Addr().String() }

func testHeader(t *testing.T) *wire.HandoffHeader {
	t.Helper()
	id, err := wire.NewConnID()
	if err != nil {
		t.Fatal(err)
	}
	return &wire.HandoffHeader{Purpose: wire.HandoffConnect, ConnID: id, TargetAgent: "srv", FromAgent: "cli"}
}

func recvStream(t *testing.T, p *testPeer) *Stream {
	t.Helper()
	select {
	case s := <-p.inbound:
		return s
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for inbound stream")
		return nil
	}
}

func TestStreamDataBothDirections(t *testing.T) {
	for _, insecure := range []bool{false, true} {
		t.Run(fmt.Sprintf("insecure=%v", insecure), func(t *testing.T) {
			a := newTestPeer(t, "a", insecure)
			b := newTestPeer(t, "b", insecure)
			cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			ss := recvStream(t, b)

			if _, err := cs.Write([]byte("ping")); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 16)
			n, err := ss.Read(buf)
			if err != nil || string(buf[:n]) != "ping" {
				t.Fatalf("server read %q, %v", buf[:n], err)
			}
			if _, err := ss.Write([]byte("pong")); err != nil {
				t.Fatal(err)
			}
			n, err = cs.Read(buf)
			if err != nil || string(buf[:n]) != "pong" {
				t.Fatalf("client read %q, %v", buf[:n], err)
			}

			// Both ends derived the same transport secret.
			if !bytes.Equal(
				func() []byte { s, _ := a.mgr.SecretByID(cs.TransportID()); return s }(),
				func() []byte { s, _ := b.mgr.SecretByID(ss.TransportID()); return s }(),
			) {
				t.Fatal("transport secrets differ between the two ends")
			}
		})
	}
}

func TestSecurityModeMismatchRefused(t *testing.T) {
	a := newTestPeer(t, "a", false)
	b := newTestPeer(t, "b", true)
	if _, err := a.mgr.OpenStream(b.addr(), testHeader(t), 3*time.Second); err == nil {
		t.Fatal("secure dialer connected to insecure acceptor")
	}
}

func TestCloseWriteDeliversEOFAfterData(t *testing.T) {
	a := newTestPeer(t, "a", true)
	b := newTestPeer(t, "b", true)
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)

	payload := bytes.Repeat([]byte("x"), 100_000)
	if _, err := cs.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := cs.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(ss)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read %d bytes, want %d", len(got), len(payload))
	}
	// The reverse direction still works after the half-close.
	if _, err := ss.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := cs.Read(buf)
	if err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("read after half-close: %q, %v", buf[:n], err)
	}
}

func TestConcurrentOpensShareOneDial(t *testing.T) {
	a := newTestPeer(t, "a", true)
	b := newTestPeer(t, "b", true)
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if _, err := s.Write([]byte("hi")); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := a.dials.Load(); got != 1 {
		t.Fatalf("%d kernel dials for %d concurrent opens, want 1", got, n)
	}
	for i := 0; i < n; i++ {
		recvStream(t, b)
	}
	if tr, st := b.mgr.Counts(); tr != 1 || st != n {
		t.Fatalf("acceptor sees %d transports / %d streams, want 1 / %d", tr, st, n)
	}
}

func TestBulkStreamDoesNotStarveSibling(t *testing.T) {
	a := newTestPeer(t, "a", true)
	b := newTestPeer(t, "b", true)

	bulk, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	bulkSrv := recvStream(t, b)
	_ = bulkSrv // never read: the bulk sender must stall on credit, not jam the pipe

	// Fill the bulk stream's window and keep pushing from a goroutine.
	done := make(chan struct{})
	go func() {
		defer close(done)
		chunk := bytes.Repeat([]byte("B"), 64<<10)
		for i := 0; i < 64; i++ { // 4 MiB >> initialWindow
			if _, err := bulk.Write(chunk); err != nil {
				return
			}
		}
	}()

	// A sibling stream opened while the bulk stream is stalled must still
	// pass data promptly.
	small, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	smallSrv := recvStream(t, b)
	start := time.Now()
	if _, err := small.Write([]byte("urgent")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := smallSrv.Read(buf)
	if err != nil || string(buf[:n]) != "urgent" {
		t.Fatalf("sibling read %q, %v", buf[:n], err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("sibling stream stalled %v behind bulk stream", elapsed)
	}
	bulk.Close()
	<-done
}

func TestBulkTransferIntegrityAcrossWindows(t *testing.T) {
	a := newTestPeer(t, "a", true)
	b := newTestPeer(t, "b", true)
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)

	const total = 5 << 20 // 5 MiB: several window refills and frame splits
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		cs.Write(payload)
		cs.CloseWrite()
	}()
	got, err := io.ReadAll(ss)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("bulk payload corrupted: %d bytes, want %d", len(got), total)
	}
}

func TestAuthorizeRefusalResetsOpen(t *testing.T) {
	a := newTestPeer(t, "a", true)
	b := newTestPeer(t, "b", true)
	b.setAuthErr(errors.New("nope"))
	if _, err := a.mgr.OpenStream(b.addr(), testHeader(t), 3*time.Second); err == nil {
		t.Fatal("open succeeded despite authorize refusal")
	}
	// The refusal must not have killed the transport.
	b.setAuthErr(nil)
	if _, err := a.mgr.OpenStream(b.addr(), testHeader(t), 3*time.Second); err != nil {
		t.Fatalf("open after refusal: %v", err)
	}
	if got := a.dials.Load(); got != 1 {
		t.Fatalf("refusal burned the transport: %d dials", got)
	}
}

func TestUnclaimedStreamReset(t *testing.T) {
	a := newTestPeer(t, "a", true)
	b := newTestPeer(t, "b", true)
	b.setNoDeliver(true)
	s, err := a.mgr.OpenStream(b.addr(), testHeader(t), 3*time.Second)
	if err != nil {
		// Acceptable: the reset may arrive before the accept is processed.
		return
	}
	s.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := s.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded on unclaimed stream")
	}
}

func TestTransportFailureFailsStreams(t *testing.T) {
	a := newTestPeer(t, "a", true)
	b := newTestPeer(t, "b", true)
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	recvStream(t, b)
	a.mgr.CloseTransports()
	if _, err := cs.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded on failed transport")
	}
	if _, err := cs.Write([]byte("x")); err == nil {
		t.Fatal("write succeeded on failed transport")
	}
	// A fresh open redials.
	if _, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := a.dials.Load(); got != 2 {
		t.Fatalf("%d dials, want 2 (one before and one after failure)", got)
	}
}

func TestSelfDialDoesNotDeadlock(t *testing.T) {
	a := newTestPeer(t, "a", true)
	done := make(chan error, 1)
	go func() {
		_, err := a.mgr.OpenStream(a.addr(), testHeader(t), 5*time.Second)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("self-dial deadlocked")
	}
	recvStream(t, a)
}

func TestReadDeadline(t *testing.T) {
	a := newTestPeer(t, "a", true)
	b := newTestPeer(t, "b", true)
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	recvStream(t, b)
	cs.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	if _, err := cs.Read(make([]byte, 1)); err == nil {
		t.Fatal("read returned without data before deadline")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("deadline ignored")
	}
	// Clearing the deadline restores blocking reads.
	cs.SetReadDeadline(time.Time{})
}

func TestManagerCloseRefusesOpens(t *testing.T) {
	a := newTestPeer(t, "a", true)
	b := newTestPeer(t, "b", true)
	a.mgr.Close()
	if _, err := a.mgr.OpenStream(b.addr(), testHeader(t), time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
