package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"naplet/internal/dhkx"
	"naplet/internal/security"
	"naplet/internal/wire"
)

// Transport session resumption.
//
// The shared transport multiplexes every logical stream between two hosts
// over one TCP connection, which makes a single network failure maximally
// destructive: one RST kills every NapletSocket between the pair. This
// file heals that. When the connection breaks (read/write error, or the
// keepalive declares it half-open), the transport enters a bounded
// "reconnecting" state instead of failing:
//
//   - Both sides count reliable mux frames (open/accept/reset/data/fin/
//     window) as they are received, and retain sent reliable frames in a
//     log until the peer's cumulative count — piggybacked on keepalive
//     ping/pong and periodic acks — confirms delivery.
//   - The original dialer redials the peer with jittered capped backoff
//     and sends a resume hello: the prior transport id, its receive count,
//     and an HMAC resume token under the prior transport secret. The
//     acceptor verifies the token, answers with its own receive count, and
//     both sides prove possession of the secret with the same transcript
//     tags a fresh handshake uses.
//   - Each side then replays its retained frames above the peer's count,
//     in the original wire order. Because both sides count deterministically,
//     replay is exact: no frame is lost, none is duplicated, and stream
//     users see a stall followed by recovery — never an error.
//   - Only the dialer redials (the acceptor may sit behind asymmetric
//     reachability); the acceptor just arms a resume-window timer and
//     waits. If the window expires on either side, the transport fails for
//     good with ErrTransportLost and the NapletSocket layer's own
//     SUSPENDED/resume recovery takes over.
//
// resumeTagLabel domain-separates the resume token HMAC. The redial
// backoff bounds live in Config (RedialBackoffBase / RedialBackoffCap)
// and scale up with the measured path RTT — see redialBackoffBounds.
const resumeTagLabel = "naplet-transport-resume-v1"

// errResumeDenied reports the peer's final refusal of a resume attempt.
var errResumeDenied = errors.New("transport: resume denied by peer")

// newResumeAuth builds the authenticator that signs and verifies resume
// tokens and handshake transcript tags under the transport secret.
func newResumeAuth(secret []byte) (*dhkx.Authenticator, error) {
	return dhkx.NewAuthenticator(secret)
}

// resumeTag authenticates a resume hello: possession of the prior
// session, bound to the transport id and the claimed receive count. It
// signs under the dedicated resume-tag key on version-2 sessions (the
// session key on version-1 ones), so a leaked resume token can never
// double as a transcript-tag or record key.
func (t *Transport) resumeTag(recvSeq uint64) [wire.TagSize]byte {
	msg := make([]byte, 0, len(resumeTagLabel)+len(t.id)+8)
	msg = append(msg, resumeTagLabel...)
	msg = append(msg, t.id[:]...)
	msg = binary.BigEndian.AppendUint64(msg, recvSeq)
	return t.resumeAuth.Sign(msg)
}

// connBroken reports that one connection generation died. If resumption is
// enabled the transport goes into the reconnecting state — streams stall
// against their credit windows while the dialer redials (or the acceptor
// waits) — otherwise it fails immediately. Stale reports about already-
// replaced connections are ignored.
func (t *Transport) connBroken(conn net.Conn, cause error) {
	t.mu.Lock()
	if t.closed || t.conn != conn {
		t.mu.Unlock()
		conn.Close()
		return
	}
	if t.mgr == nil || t.mgr.cfg.ResumeWindow < 0 {
		t.mu.Unlock()
		t.fail(cause)
		return
	}
	t.conn = nil
	t.reconnecting = true
	t.attempts = 0
	gen := t.gen
	readerDone := t.readerDone
	// The window stretches with the measured RTT: a slow path needs more
	// round trips' worth of redial attempts for a fair chance.
	window := t.adaptiveResumeWindow()
	deadline := time.Now().Add(window)
	t.resumeDeadline = deadline
	t.mu.Unlock()
	conn.Close()
	// Records sealed for the dead generation are dropped, not flushed:
	// their plaintext is still in the reliable send log, and the resume
	// replay reseals it under the next generation's keys.
	if t.flusher != nil {
		t.flusher.purge(conn)
	}
	t.rec.record("broken", "cause=%v window=%v", cause, window)
	t.logf("transport %s: connection broken (%v); holding %d streams for resume within %v",
		t.peerHost, cause, t.streamCount(), window)
	if t.dialer {
		go t.reconnectLoop(gen, readerDone, deadline, cause)
	} else {
		go t.resumeWait(gen, deadline, cause)
	}
}

// resumeWait is the acceptor's side of an outage: it cannot redial (the
// dialer may be behind a NAT or a one-way partition), so it just bounds
// how long it will hold stream state for the dialer's resume.
func (t *Transport) resumeWait(gen int, deadline time.Time, cause error) {
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-t.mgr.done:
		return
	}
	t.mu.Lock()
	expired := !t.closed && t.reconnecting && t.gen == gen
	t.mu.Unlock()
	if expired {
		t.fail(fmt.Errorf("%w: resume window expired: %v", ErrTransportLost, cause))
	}
}

// reconnectLoop is the dialer's side of an outage: redial with jittered
// capped backoff and resume the session, until the resume window expires
// or the peer denies the resume.
func (t *Transport) reconnectLoop(gen int, readerDone chan struct{}, deadline time.Time, cause error) {
	// Wait for the broken generation's read loop to exit so the receive
	// count we advertise is final — a frame half-processed after the
	// snapshot would otherwise be replayed on top of itself.
	if readerDone != nil {
		<-readerDone
	}
	backoff, maxBackoff := t.redialBackoffBounds()
	for attempt := 1; ; attempt++ {
		t.mu.Lock()
		if t.closed || !t.reconnecting || t.gen != gen {
			t.mu.Unlock()
			return
		}
		t.attempts = attempt
		t.mu.Unlock()
		if t.mgr.isClosed() {
			t.fail(ErrClosed)
			return
		}
		if time.Now().After(deadline) {
			t.fail(fmt.Errorf("%w: resume window expired after %d attempts: %v", ErrTransportLost, attempt-1, cause))
			return
		}
		t.rec.record("redial", "attempt=%d addr=%s", attempt, t.dialAddr)
		conn, relayed, err := t.mgr.dialTransport(t.dialAddr, t.mgr.cfg.HandshakeTimeout)
		if err == nil {
			var peer *wire.TransportHello
			var transcript []byte
			peer, transcript, err = t.clientResume(conn)
			if err == nil {
				if !t.adopt(conn, peer.RecvSeq, gen, transcript) {
					conn.Close()
					return
				}
				t.setRelayed(relayed)
				return
			}
			conn.Close()
			if errors.Is(err, errResumeDenied) {
				t.rec.record("resume-denied", "attempt=%d", attempt)
				t.fail(fmt.Errorf("%w: %v (after %v)", ErrTransportLost, err, cause))
				return
			}
		}
		t.logf("transport %s: resume attempt %d failed: %v", t.peerHost, attempt, err)
		delay := backoff + time.Duration(rand.Int63n(int64(backoff)))
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-t.mgr.done:
			timer.Stop()
			return
		}
	}
}

// setRelayed records whether the current connection runs through the
// rendezvous relay (debug surface only).
func (t *Transport) setRelayed(v bool) {
	t.mu.Lock()
	t.relayed = v
	t.mu.Unlock()
}

// clientResume runs the dialer's half of the resume handshake on a fresh
// connection: resume hello out, peer hello back, then the same transcript
// tag exchange as a fresh handshake, all under the prior session's keys.
// It also returns the dialer-order transcript hash of the resume
// handshake, which adopt binds the new generation's seal keys to.
func (t *Transport) clientResume(conn net.Conn) (*wire.TransportHello, []byte, error) {
	conn.SetDeadline(time.Now().Add(t.mgr.cfg.HandshakeTimeout))
	recvSeq := t.recvSeq.Load()
	tag := t.resumeTag(recvSeq)
	hello := &wire.TransportHello{
		ID:        t.id,
		Insecure:  t.mgr.cfg.Insecure,
		Resume:    true,
		Host:      t.mgr.cfg.HostName,
		Addr:      t.mgr.cfg.AdvertiseAddr,
		RecvSeq:   recvSeq,
		ResumeTag: tag[:],
	}
	sent, err := wire.WriteTransportHello(conn, hello)
	if err != nil {
		return nil, nil, err
	}
	peer, recvd, err := wire.ReadTransportHello(conn)
	if err != nil {
		return nil, nil, err
	}
	if peer.ResumeDenied {
		return nil, nil, errResumeDenied
	}
	if !peer.Resume || peer.ID != t.id {
		return nil, nil, fmt.Errorf("%w: peer answered resume with a non-resume hello", ErrHandshake)
	}
	var srvTag [wire.TagSize]byte
	if _, err := io.ReadFull(conn, srvTag[:]); err != nil {
		return nil, nil, err
	}
	if want := transcriptTag(t.auth, serverTagLabel, sent, recvd); !hmacEqual(want, srvTag) {
		return nil, nil, fmt.Errorf("%w: bad server transcript tag on resume", ErrHandshake)
	}
	cliTag := transcriptTag(t.auth, clientTagLabel, sent, recvd)
	if _, err := conn.Write(cliTag[:]); err != nil {
		return nil, nil, err
	}
	conn.SetDeadline(time.Time{})
	return peer, security.TranscriptHash(sent, recvd), nil
}

// handleResume routes an inbound resume hello to the transport it names,
// or sends the (necessarily unauthenticated) final denial when the session
// is unknown — already failed, resumed elsewhere, or never ours.
func (m *Manager) handleResume(conn net.Conn, peer *wire.TransportHello, recvd []byte, relayed bool) error {
	t := m.byID(peer.ID)
	if t == nil {
		wire.WriteTransportHello(conn, &wire.TransportHello{ID: peer.ID, ResumeDenied: true})
		conn.Close()
		return fmt.Errorf("transport: resume for unknown transport %s", peer.ID)
	}
	if err := t.serverResume(conn, peer, recvd); err != nil {
		return err
	}
	t.setRelayed(relayed)
	return nil
}

// serverResume runs the acceptor's half of the resume handshake and, on
// success, adopts the new connection in place of the broken one.
func (t *Transport) serverResume(conn net.Conn, peer *wire.TransportHello, recvd []byte) error {
	t.resumeMu.Lock()
	defer t.resumeMu.Unlock()
	want := t.resumeTag(peer.RecvSeq)
	var got [wire.TagSize]byte
	if len(peer.ResumeTag) != len(got) || !hmacEqual(want, *(*[wire.TagSize]byte)(peer.ResumeTag)) {
		wire.WriteTransportHello(conn, &wire.TransportHello{ID: peer.ID, ResumeDenied: true})
		conn.Close()
		return fmt.Errorf("transport: bad resume token for %s", peer.ID)
	}
	// Break the old connection if we had not yet noticed it die (the
	// dialer usually notices first), and wait for its read loop to exit so
	// our receive count is final.
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return ErrClosed
	}
	old := t.conn
	t.conn = nil
	t.reconnecting = true
	gen := t.gen
	readerDone := t.readerDone
	t.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if readerDone != nil {
		<-readerDone
	}
	recvSeq := t.recvSeq.Load()
	hello := &wire.TransportHello{
		ID:       t.id,
		Insecure: t.mgr.cfg.Insecure,
		Resume:   true,
		Host:     t.mgr.cfg.HostName,
		Addr:     t.mgr.cfg.AdvertiseAddr,
		RecvSeq:  recvSeq,
	}
	sent, err := wire.WriteTransportHello(conn, hello)
	if err != nil {
		conn.Close()
		return err
	}
	srvTag := transcriptTag(t.auth, serverTagLabel, recvd, sent)
	if _, err := conn.Write(srvTag[:]); err != nil {
		conn.Close()
		return err
	}
	var cliTag [wire.TagSize]byte
	if _, err := io.ReadFull(conn, cliTag[:]); err != nil {
		conn.Close()
		return err
	}
	if want := transcriptTag(t.auth, clientTagLabel, recvd, sent); !hmacEqual(want, cliTag) {
		conn.Close()
		return fmt.Errorf("%w: bad client transcript tag on resume", ErrHandshake)
	}
	conn.SetDeadline(time.Time{})
	if !t.adopt(conn, peer.RecvSeq, gen, security.TranscriptHash(recvd, sent)) {
		conn.Close()
		return ErrClosed
	}
	return nil
}

// adopt installs a resumed connection as the transport's new generation:
// the send log is trimmed to what the peer confirmed and the remainder
// replayed in original wire order, the read loop and keepalive restart,
// and every stalled stream simply carries on. The read loop starts before
// the replay so two peers replaying large logs at each other cannot
// deadlock on full kernel buffers.
//
// Encrypted sessions rekey here: fresh per-direction seal keys are
// expanded from the key schedule bound to the resume handshake's
// transcript, and both directions' nonce counters restart from zero.
// Replayed frames are resealed from their retained plaintext under the
// new keys — a record captured from (or still queued for) the dead
// generation can never authenticate on the new one.
func (t *Transport) adopt(conn net.Conn, peerRecvSeq uint64, gen int, transcript []byte) bool {
	if w := t.mgr.cfg.WrapData; w != nil {
		conn = w(conn)
	}
	t.wmu.Lock()
	t.mu.Lock()
	if t.closed || !t.reconnecting || t.gen != gen {
		t.mu.Unlock()
		t.wmu.Unlock()
		return false
	}
	var opener *security.Opener
	if t.flusher != nil {
		dialKey, acceptKey := t.ks.SealKeys(transcript)
		sealKey, openKey := dialKey, acceptKey
		if !t.dialer {
			sealKey, openKey = acceptKey, dialKey
		}
		sealer, serr := security.NewSealer(sealKey)
		op, oerr := security.NewOpener(openKey)
		if serr != nil || oerr != nil {
			t.mu.Unlock()
			t.wmu.Unlock()
			return false
		}
		t.sealer = sealer
		opener = op
	}
	t.gen++
	t.conn = conn
	t.reconnecting = false
	attempts := t.attempts
	t.attempts = 0
	t.resumeDeadline = time.Time{}
	t.readerDone = make(chan struct{})
	readerDone := t.readerDone
	t.localAddr, t.remoteAddr = conn.LocalAddr(), conn.RemoteAddr()
	nstreams := len(t.streams)
	t.mu.Unlock()
	t.lastRead.Store(time.Now().UnixNano())
	// A ping outstanding across the outage would measure outage length,
	// not path RTT; drop it. The smoothed estimate itself survives — the
	// path is the same even though the connection is new.
	t.pingSentAt.Store(0)
	go t.readLoop(conn, readerDone, opener)
	go t.keepalive(conn)
	t.trimSendLogLocked(peerRecvSeq)
	replayed := len(t.sendLog)
	var werr error
	var fatal bool
	for _, e := range t.sendLog {
		if werr, fatal = t.sendLocked(conn, e.typ, e.stream, e.payload); werr != nil {
			break
		}
	}
	t.wmu.Unlock()
	t.mgr.reconnects.Inc()
	t.mgr.resumedStreams.Add(uint64(nstreams))
	t.rec.record("resumed", "attempts=%d streams=%d replayed=%d", attempts, nstreams, replayed)
	if werr != nil {
		if fatal {
			t.fail(werr)
			return true
		}
		t.logf("transport %s: resumed connection broke during replay: %v", t.peerHost, werr)
		t.connBroken(conn, werr)
		return true
	}
	t.logf("transport %s: session resumed after %d attempts (%d streams, %d frames replayed)",
		t.peerHost, attempts, nstreams, replayed)
	return true
}

// keepalive probes one connection generation for liveness: every tick it
// sends a mux ping (whose payload doubles as an ack, and whose pong
// doubles as an RTT sample), and after the adaptive keepalive timeout of
// inbound silence it declares the connection half-open and breaks it into
// the resume path. The timeout is re-evaluated each tick against the live
// RTT estimate — the configured KeepaliveTimeout is a floor, stretched on
// slow paths so a pong that is merely in flight never reads as a dead
// peer. It exits when its generation is replaced or the manager closes.
// The probe interval is the negotiated one on version-2 sessions — the
// min of both sides' advertisements, so it is never slower than the local
// config asked for.
func (t *Transport) keepalive(conn net.Conn) {
	interval := t.kaInterval
	if interval == 0 {
		interval = t.mgr.cfg.KeepaliveInterval
	}
	if interval <= 0 {
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
		case <-t.mgr.done:
			return
		}
		t.mu.Lock()
		cur, closed := t.conn, t.closed
		t.mu.Unlock()
		if closed || cur != conn {
			return
		}
		timeout := t.adaptiveKeepaliveTimeout(interval)
		idle := time.Since(time.Unix(0, t.lastRead.Load()))
		if idle >= timeout {
			t.mgr.keepaliveTimeouts.Inc()
			t.rec.record("keepalive-timeout", "idle=%v srtt=%v", idle.Round(time.Millisecond), t.SRTT().Round(time.Millisecond))
			t.connBroken(conn, fmt.Errorf("transport: keepalive timeout after %v of silence", idle.Round(time.Millisecond)))
			return
		}
		// One ping outstanding at a time, so each pong resolves the stamp
		// of the ping it answers and the RTT samples stay honest — pinging
		// every tick would pair pongs of old pings with fresh stamps and
		// collapse the estimate toward zero on slow paths. A stamp older
		// than half the declare-dead timeout means the ping or its pong was
		// dropped (both are unreliable frames): restamp and probe again.
		stamp := t.pingSentAt.Load()
		switch {
		case stamp == 0:
			t.notePingSent()
			t.writeFrame(wire.MuxPing, 0, seqPayload(t.recvSeq.Load()))
		case time.Since(time.Unix(0, stamp)) >= timeout/2:
			t.pingSentAt.Store(time.Now().UnixNano())
			t.writeFrame(wire.MuxPing, 0, seqPayload(t.recvSeq.Load()))
		}
	}
}
