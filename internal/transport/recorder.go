package transport

import (
	"fmt"
	"sync"
	"time"
)

// This file is the transport's black-box flight recorder: every transport
// keeps a small ring of lifecycle events (dial, broken, redial, resumed,
// keepalive timeouts, credit stalls) so that when a session finally dies
// with ErrTransportLost the log shows what the transport lived through,
// not just the terminal cause. The ring is also surfaced on Info for the
// /connz debug endpoint, and cumulative per-kind counts survive ring
// eviction so tests can assert exact fault coverage.

// RecorderEvent is one recorded transport lifecycle event.
type RecorderEvent struct {
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail,omitempty"`
}

// recorderCap bounds the per-transport event ring.
const recorderCap = 64

// flightRecorder is a bounded ring of RecorderEvents plus cumulative
// per-kind counts. A nil recorder records nothing.
type flightRecorder struct {
	mu     sync.Mutex
	events []RecorderEvent // ring storage, oldest overwritten
	next   int             // next write slot once the ring is full
	counts map[string]uint64
}

func newFlightRecorder() *flightRecorder {
	return &flightRecorder{counts: make(map[string]uint64)}
}

func (r *flightRecorder) record(kind, format string, args ...any) {
	if r == nil {
		return
	}
	ev := RecorderEvent{At: time.Now(), Kind: kind}
	if format != "" {
		ev.Detail = fmt.Sprintf(format, args...)
	}
	r.mu.Lock()
	if len(r.events) < recorderCap {
		r.events = append(r.events, ev)
	} else {
		r.events[r.next] = ev
		r.next = (r.next + 1) % recorderCap
	}
	r.counts[kind]++
	r.mu.Unlock()
}

// snapshot returns the recorded events oldest-first and a copy of the
// cumulative counts.
func (r *flightRecorder) snapshot() ([]RecorderEvent, map[string]uint64) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RecorderEvent, 0, len(r.events))
	if len(r.events) == recorderCap {
		out = append(out, r.events[r.next:]...)
		out = append(out, r.events[:r.next]...)
	} else {
		out = append(out, r.events...)
	}
	counts := make(map[string]uint64, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	return out, counts
}

// count returns the cumulative number of events of the given kind.
func (r *flightRecorder) count(kind string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[kind]
}

// dump writes the ring into the log, one line per event, newest last; it
// runs when a transport dies with ErrTransportLost so the black box is on
// record before the tombstone replaces the transport.
func (r *flightRecorder) dump(logf func(format string, args ...any), label string, cause error) {
	if r == nil || logf == nil {
		return
	}
	events, _ := r.snapshot()
	logf("transport %s lost (%v); flight recorder (%d events):", label, cause, len(events))
	for _, ev := range events {
		logf("  %s %-18s %s", ev.At.Format("15:04:05.000"), ev.Kind, ev.Detail)
	}
}
