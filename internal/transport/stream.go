package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"naplet/internal/timerwheel"
	"naplet/internal/wire"
)

// Flow-control constants. Every stream starts with initialWindow bytes of
// send credit in each direction; the receiver grants more once the reader
// has consumed at least windowUpdateAt bytes. A stream that stops reading
// therefore stalls only its own sender — the transport read loop never
// blocks on a full stream, so one bulk stream cannot head-of-line-starve
// its siblings. A version-2 handshake negotiates the effective window
// (wire.Limits.InitialWindow); these constants are the version-1
// behaviour and the zero-value fallback.
const (
	initialWindow  = 1 << 20
	windowUpdateAt = initialWindow / 2
)

// Stream is one logical byte stream multiplexed over a shared Transport.
// It implements net.Conn plus the CloseWrite half-close the NapletSocket
// drain protocol requires, so the layers above use it exactly like the
// dedicated TCP data socket it replaces.
type Stream struct {
	t  *Transport
	id uint64
	// local is true on the side that opened the stream.
	local bool

	mu   sync.Mutex
	cond chan struct{} // closed-and-replaced broadcast, PR 3 style

	// accepted/openErr gate the opener until MuxAccept or MuxReset arrives.
	accepted bool
	openErr  error

	// Receive side: a queue of pooled payload segments owned by the
	// stream (segs[0][roff:] is the next readable byte). Segments arrive
	// whole from the read loop and are recycled to the wire payload pool
	// as the reader drains them — inbound bytes are never copied between
	// the socket read and the consumer's buffer. finSeen marks a received
	// FIN (EOF after the queue drains); consumed counts bytes handed to
	// Read since the last window grant.
	segs     [][]byte
	roff     int
	finSeen  bool
	consumed int
	// peekBuf backs Peek when the peeked bytes span segments.
	peekBuf [32]byte

	// Send side: sendWindow is the remaining peer-granted credit.
	sendWindow int

	// Lifecycle.
	writeClosed bool // we sent FIN
	closed      bool // fully closed locally
	err         error

	rdeadline time.Time
	wdeadline time.Time

	// readable/writable are event hooks for callers that drive the stream
	// as a state machine instead of parking a goroutine in Read/Write:
	// readable fires (outside s.mu, on the transport read loop) whenever
	// read progress becomes possible — data, FIN, reset, transport
	// failure, close — and writable fires when send credit arrives or the
	// stream dies. Both must be non-blocking.
	readable func()
	writable func()
}

func newStream(t *Transport, id uint64, local bool) *Stream {
	return &Stream{
		t:          t,
		id:         id,
		local:      local,
		cond:       make(chan struct{}),
		sendWindow: t.initialStreamWindow(),
	}
}

// TransportID returns the id of the shared transport carrying the stream;
// the core layer surfaces it in connection Info.
func (s *Stream) TransportID() wire.ConnID { return s.t.ID() }

// broadcastLocked wakes every waiter; callers hold s.mu.
func (s *Stream) broadcastLocked() {
	close(s.cond)
	s.cond = make(chan struct{})
}

// waitLocked releases s.mu until the next broadcast or the deadline; it
// returns os.ErrDeadlineExceeded on timeout. s.mu is held on return.
// Deadlines ride the shared timer wheel rather than a per-wait
// time.Timer: with 100k streams each blocked in a deadline-bearing
// Read/Write, per-wait timers put 100k entries in the runtime timer
// heap; the wheel pays one bucket node each, and the callback only
// broadcasts (every caller loops re-checking its condition, so a
// coarse-tick or spurious wake is harmless).
func (s *Stream) waitLocked(deadline time.Time) error {
	ch := s.cond
	s.mu.Unlock()
	if deadline.IsZero() {
		<-ch
		s.mu.Lock()
		return nil
	}
	d := time.Until(deadline)
	if d <= 0 {
		s.mu.Lock()
		return os.ErrDeadlineExceeded
	}
	tm := timerwheel.AfterFunc(d, func() {
		s.mu.Lock()
		s.broadcastLocked()
		s.mu.Unlock()
	})
	<-ch
	tm.Stop()
	s.mu.Lock()
	if !time.Now().Before(deadline) {
		return os.ErrDeadlineExceeded
	}
	return nil
}

// waitOpened blocks the opener until the peer accepts, refuses, or the
// timeout elapses.
func (s *Stream) waitOpened(timeout time.Duration) error {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.openErr != nil {
			return s.openErr
		}
		if s.err != nil {
			return s.err
		}
		if s.accepted {
			return nil
		}
		if err := s.waitLocked(deadline); err != nil {
			return fmt.Errorf("transport: stream open: %w", err)
		}
	}
}

// opened records the peer's MuxAccept.
func (s *Stream) opened() {
	s.mu.Lock()
	s.accepted = true
	s.broadcastLocked()
	s.mu.Unlock()
}

// remoteReset records a peer MuxReset: pending opens fail, reads fail once
// the buffer drains, writes fail immediately.
func (s *Stream) remoteReset(reason string) {
	err := fmt.Errorf("transport: stream reset by peer")
	if reason != "" {
		err = fmt.Errorf("transport: stream reset by peer: %s", reason)
	}
	s.mu.Lock()
	if s.openErr == nil && !s.accepted {
		s.openErr = err
	}
	if s.err == nil {
		s.err = err
	}
	s.broadcastLocked()
	rfn, wfn := s.readable, s.writable
	s.mu.Unlock()
	if rfn != nil {
		rfn()
	}
	if wfn != nil {
		wfn()
	}
}

// transportFailed fails the stream because the shared transport died for
// good (broken past the resume window, or torn down). The error wraps
// ErrTransportLost so the layer above can tell transport loss — retryable
// through its own connection-level recovery — from a stream-level reset.
func (s *Stream) transportFailed(cause error) {
	s.mu.Lock()
	if s.err == nil {
		if errors.Is(cause, ErrTransportLost) {
			s.err = cause
		} else {
			s.err = fmt.Errorf("%w: %w", ErrTransportLost, cause)
		}
	}
	if s.openErr == nil && !s.accepted {
		s.openErr = s.err
	}
	s.broadcastLocked()
	rfn, wfn := s.readable, s.writable
	s.mu.Unlock()
	if rfn != nil {
		rfn()
	}
	if wfn != nil {
		wfn()
	}
}

// pushData queues one inbound payload segment, taking ownership of the
// pooled buffer. It runs on the transport read loop and must not block:
// credit guarantees the queue stays bounded by initialWindow plus one
// frame. A segment arriving after close or FIN is recycled immediately.
func (s *Stream) pushData(owned []byte) {
	s.mu.Lock()
	if s.closed || s.finSeen {
		s.mu.Unlock()
		wire.PutPayload(owned)
		return
	}
	s.segs = append(s.segs, owned)
	s.broadcastLocked()
	fn := s.readable
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Buffered reports how many received bytes Read can return without
// blocking. Together with Peek it satisfies wire.PeekReader, so the socket
// layer batch-decodes frames straight off the stream — no intermediate
// buffered reader, one copy from received segment to frame payload.
func (s *Stream) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := -s.roff
	for _, seg := range s.segs {
		n += len(seg)
	}
	return n
}

// Peek returns the next n queued bytes without consuming them, mirroring
// (*bufio.Reader).Peek for wire.FrameBuffered. n is capped at the peek
// scratch size (a frame header fits comfortably); the returned slice is
// only valid until the next Read.
func (s *Stream) Peek(n int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > len(s.peekBuf) {
		return nil, fmt.Errorf("transport: peek %d exceeds scratch size %d", n, len(s.peekBuf))
	}
	if len(s.segs) > 0 && len(s.segs[0])-s.roff >= n {
		return s.segs[0][s.roff : s.roff+n : s.roff+n], nil
	}
	got := 0
	for i, seg := range s.segs {
		if i == 0 {
			seg = seg[s.roff:]
		}
		got += copy(s.peekBuf[got:n], seg)
		if got == n {
			return s.peekBuf[:n], nil
		}
	}
	return nil, io.ErrShortBuffer
}

// finReceived records the peer's half-close.
func (s *Stream) finReceived() {
	s.mu.Lock()
	s.finSeen = true
	s.broadcastLocked()
	fn := s.readable
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// addSendWindow credits the send window from a peer MuxWindow grant.
func (s *Stream) addSendWindow(n int) {
	s.mu.Lock()
	s.sendWindow += n
	s.broadcastLocked()
	fn := s.writable
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Read implements net.Conn. A clean peer half-close yields io.EOF after
// the buffered bytes drain, which is exactly the orderly-shutdown signal
// the NapletSocket drain protocol watches for.
func (s *Stream) Read(p []byte) (int, error) {
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return 0, ErrStreamClosed
		}
		if len(s.segs) > 0 {
			break
		}
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return 0, err
		}
		if s.finSeen {
			s.mu.Unlock()
			return 0, io.EOF
		}
		if err := s.waitLocked(s.rdeadline); err != nil {
			s.mu.Unlock()
			return 0, err
		}
	}
	// Drain whole segments into p while room remains, recycling each
	// fully-consumed segment to the payload pool (the queue never holds a
	// drained head, so len(segs) > 0 means bytes are readable).
	n := 0
	for n < len(p) && len(s.segs) > 0 {
		m := copy(p[n:], s.segs[0][s.roff:])
		n += m
		s.roff += m
		if s.roff == len(s.segs[0]) {
			wire.PutPayload(s.segs[0])
			s.segs[0] = nil
			s.segs = s.segs[1:]
			s.roff = 0
		}
	}
	s.consumed += n
	var grant int
	if s.consumed >= s.t.streamGrantAt() && s.err == nil && !s.finSeen {
		grant = s.consumed
		s.consumed = 0
	}
	s.mu.Unlock()
	if grant > 0 {
		var w [4]byte
		w[0], w[1], w[2], w[3] = byte(grant>>24), byte(grant>>16), byte(grant>>8), byte(grant)
		// writeFrame handles connection failure internally (the grant waits
		// in the resume log); an error here means the transport is gone and
		// this stream's err is already set.
		s.t.writeFrame(wire.MuxWindow, s.id, w[:])
	}
	return n, nil
}

// Write implements net.Conn, chunking by both the peer's credit window and
// the mux frame payload bound. The frame write happens outside s.mu so a
// slow kernel write on the shared connection never holds the stream lock.
func (s *Stream) Write(p []byte) (int, error) {
	written := 0
	// stalled throttles the flight-recorder event to one per Write call
	// that runs out of credit, not one per wait wakeup.
	stalled := false
	for len(p) > 0 {
		s.mu.Lock()
		for {
			if s.closed || s.writeClosed {
				s.mu.Unlock()
				return written, ErrStreamClosed
			}
			if s.err != nil {
				err := s.err
				s.mu.Unlock()
				return written, err
			}
			if s.sendWindow > 0 {
				break
			}
			if !stalled {
				stalled = true
				s.t.rec.record("credit-stall", "stream=%d", s.id)
			}
			if err := s.waitLocked(s.wdeadline); err != nil {
				s.mu.Unlock()
				return written, err
			}
		}
		n := len(p)
		if n > s.sendWindow {
			n = s.sendWindow
		}
		if max := s.t.maxPayload(); n > max {
			n = max
		}
		s.sendWindow -= n
		s.mu.Unlock()
		if err := s.t.writeFrame(wire.MuxData, s.id, p[:n]); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// CloseWrite half-closes the stream: the peer reads EOF after consuming
// everything sent, mirroring (*net.TCPConn).CloseWrite for the suspend
// drain's FLUSH barrier.
func (s *Stream) CloseWrite() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrStreamClosed
	}
	if s.writeClosed || s.err != nil {
		s.mu.Unlock()
		return nil
	}
	s.writeClosed = true
	s.mu.Unlock()
	return s.t.writeFrame(wire.MuxFin, s.id, nil)
}

// Close releases the stream. A stream that finished cleanly in both
// directions just detaches; otherwise the peer gets a MuxReset so its end
// fails promptly rather than hanging.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	clean := s.writeClosed && s.finSeen && len(s.segs) == 0
	failed := s.err != nil
	for _, seg := range s.segs {
		wire.PutPayload(seg)
	}
	s.segs = nil
	s.roff = 0
	s.broadcastLocked()
	rfn, wfn := s.readable, s.writable
	s.mu.Unlock()
	if rfn != nil {
		rfn()
	}
	if wfn != nil {
		wfn()
	}
	s.t.removeStream(s.id)
	if !clean && !failed && s.t.alive() {
		s.t.writeFrame(wire.MuxReset, s.id, nil)
	}
	return nil
}

// LocalAddr implements net.Conn using the shared connection's most recent
// address (cached, so it stays answerable mid-resume).
func (s *Stream) LocalAddr() net.Addr {
	local, _ := s.t.addrs()
	return local
}

// RemoteAddr implements net.Conn using the shared connection's most recent
// address (cached, so it stays answerable mid-resume).
func (s *Stream) RemoteAddr() net.Addr {
	_, remote := s.t.addrs()
	return remote
}

// SetDeadline implements net.Conn.
func (s *Stream) SetDeadline(t time.Time) error {
	s.mu.Lock()
	s.rdeadline, s.wdeadline = t, t
	s.broadcastLocked()
	s.mu.Unlock()
	return nil
}

// SetReadDeadline implements net.Conn.
func (s *Stream) SetReadDeadline(t time.Time) error {
	s.mu.Lock()
	s.rdeadline = t
	s.broadcastLocked()
	s.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (s *Stream) SetWriteDeadline(t time.Time) error {
	s.mu.Lock()
	s.wdeadline = t
	s.broadcastLocked()
	s.mu.Unlock()
	return nil
}

// ---- event-driven access (the C10K pump path) ----
//
// The methods below let a caller drive the stream as a state machine
// instead of parking a goroutine per stream in Read/Write: register a
// readable hook, decode frames only while Buffered says a whole one is
// queued, and probe TermStatus for the EOF/reset/close verdict that a
// blocking Read would have returned.

// SetReadable installs fn as the readable hook; it fires (on the
// transport read loop — it must not block) whenever read progress
// becomes possible: data queued, FIN, reset, transport failure, or local
// close. If the stream is already readable or terminal, fn fires once
// immediately so a registration after the fact misses nothing.
func (s *Stream) SetReadable(fn func()) {
	s.mu.Lock()
	s.readable = fn
	fire := fn != nil && (len(s.segs) > 0 || s.finSeen || s.err != nil || s.closed)
	s.mu.Unlock()
	if fire {
		fn()
	}
}

// SetWritable installs fn as the writable hook; it fires when send
// credit arrives or the stream dies. If the stream already has credit or
// is terminal, fn fires once immediately.
func (s *Stream) SetWritable(fn func()) {
	s.mu.Lock()
	s.writable = fn
	fire := fn != nil && (s.sendWindow > 0 || s.err != nil || s.closed || s.writeClosed)
	s.mu.Unlock()
	if fire {
		fn()
	}
}

// SendWindow reports the remaining peer-granted send credit.
func (s *Stream) SendWindow() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sendWindow
}

// TermStatus reports whether the stream is terminal for reading and the
// error a blocking Read would return once the queue drains: local close,
// the stream/transport error, or io.EOF after a clean FIN. Callers probe
// it only after consuming every complete frame they could, so bytes
// still buffered when the FIN is down are a truncated trailing record
// that can never complete — terminal with ErrUnexpectedEOF rather than a
// wait that no future event would end.
func (s *Stream) TermStatus() (error, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrStreamClosed, true
	case s.err != nil:
		return s.err, true
	case s.finSeen && len(s.segs) == 0:
		return io.EOF, true
	case s.finSeen:
		return io.ErrUnexpectedEOF, true
	}
	return nil, false
}
