package transport

import (
	"fmt"
	"net"
	"sync"

	"naplet/internal/security"
	"naplet/internal/wire"
)

// maxPendingRecordBytes bounds the plaintext bytes queued for the flusher
// before writers block: enough to keep the socket saturated through a
// flush, small enough that a stalled peer exerts backpressure promptly
// (the per-stream credit windows bound per-stream damage; this bounds the
// transport-wide buffer).
const maxPendingRecordBytes = 1 << 20

// pendingChunk is one MuxSealed container being assembled: consecutive
// frames for the same connection generation packed (inner header +
// payload) into a pooled plaintext buffer, plus the sealer of the
// generation they were enqueued under. Binding the sealer at enqueue time
// (under wmu, where resume swaps it) ensures a container is always sealed
// with the keys of the generation that will carry it — frames stranded in
// the queue across a resume are purged, never sealed with the next
// generation's keys (which would burn nonces the peer's opener will
// expect to see on the wire).
type pendingChunk struct {
	conn   net.Conn
	sealer *security.Sealer
	pt     []byte
}

// recordFlusher decouples AEAD sealing and flushing from frame production
// on encrypted transports. Producers pack plaintext frames into container
// chunks in wire order under the transport's write lock and return
// immediately; a single goroutine seals each container (queue order ==
// seal order == nonce order) and writevs multi-container batches to the
// socket. Crypto and the flush syscall thus run entirely outside wmu, and
// a burst of small frames costs one GCM pass and one writev entry instead
// of one each.
//
// A connection generation dying does not stop the flusher: resume
// installs a new conn (and fresh seal keys), and subsequent containers
// carry the new conn and sealer. Containers queued for a broken conn are
// purged — their frames survive in the reliable send log and are repacked
// on replay.
type recordFlusher struct {
	t *Transport

	mu     sync.Mutex
	cond   *sync.Cond
	q      []pendingChunk
	qBytes int
	closed bool
}

func newRecordFlusher(t *Transport) *recordFlusher {
	f := &recordFlusher{t: t}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// enqueue packs one frame into the pending container chunks; payload need
// only be valid for the duration of the call (it is copied into the
// chunk's pooled buffer). Called under the transport's write lock, so
// queue order is wire order. A new chunk starts when the connection
// generation changes or the container plaintext budget would overflow;
// writeFrame's maxPayload check guarantees any single frame fits an empty
// chunk.
func (f *recordFlusher) enqueue(conn net.Conn, sealer *security.Sealer, typ uint8, stream uint64, payload []byte) {
	need := wire.MuxHeaderSize + len(payload)
	budget := f.t.containerCap()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	n := len(f.q)
	if n == 0 || f.q[n-1].conn != conn || f.q[n-1].sealer != sealer || len(f.q[n-1].pt)+need > budget {
		f.q = append(f.q, pendingChunk{conn: conn, sealer: sealer, pt: wire.GetPayload(budget)[:0]})
		n++
	}
	c := &f.q[n-1]
	c.pt = wire.AppendMuxHeader(c.pt, typ, stream, len(payload))
	c.pt = append(c.pt, payload...)
	f.qBytes += need
	f.cond.Signal()
	f.mu.Unlock()
}

// waitSpace blocks while the pending queue is over budget. Callers must
// NOT hold the transport's write lock: the flusher drains without it, so
// waiting here cannot deadlock, and unreliable frames (sent under a
// try-lock) skip the wait entirely.
func (f *recordFlusher) waitSpace() {
	f.mu.Lock()
	for f.qBytes >= maxPendingRecordBytes && !f.closed {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// purge drops queued containers bound for a now-broken connection
// generation; their frames are still in the reliable send log and will be
// repacked under the next generation's keys on resume replay.
func (f *recordFlusher) purge(conn net.Conn) {
	f.mu.Lock()
	kept := f.q[:0]
	for _, c := range f.q {
		if c.conn == conn {
			f.qBytes -= len(c.pt)
			wire.PutPayload(c.pt)
			continue
		}
		kept = append(kept, c)
	}
	for i := len(kept); i < len(f.q); i++ {
		f.q[i] = pendingChunk{}
	}
	f.q = kept
	f.cond.Broadcast()
	f.mu.Unlock()
}

// close shuts the flusher down for good (transport failed): queued
// containers are recycled, waiters are released, and the run loop exits.
func (f *recordFlusher) close() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		for i := range f.q {
			wire.PutPayload(f.q[i].pt)
			f.q[i] = pendingChunk{}
		}
		f.q = nil
		f.qBytes = 0
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// run is the flusher goroutine: it swaps the whole pending queue out
// under the lock, seals each container into a MuxSealed record, then
// writevs per-connection runs outside the lock. A write error breaks that
// connection (feeding the resume path) and drops the rest of its run;
// containers for other generations in the same batch still flush. A seal
// error (nonce space exhausted) fails the whole transport. The loop exits
// only when the transport fails.
func (f *recordFlusher) run() {
	var batch []pendingChunk
	var recs [][]byte
	for {
		f.mu.Lock()
		for len(f.q) == 0 && !f.closed {
			f.cond.Wait()
		}
		if f.closed {
			f.mu.Unlock()
			return
		}
		batch, f.q = f.q, batch[:0]
		f.qBytes = 0
		f.cond.Broadcast()
		f.mu.Unlock()

		for i := 0; i < len(batch); {
			conn := batch[i].conn
			j := i
			for j < len(batch) && batch[j].conn == conn {
				j++
			}
			// Headers live in one slab sized exactly for the run, so the
			// appends below never reallocate and the slices stay valid
			// through the writev. recs keeps the sealed buffers for
			// recycling: net.Buffers.WriteTo consumes bufs in place.
			hdrs := make([]byte, 0, wire.MuxHeaderSize*(j-i))
			bufs := make(net.Buffers, 0, 2*(j-i))
			recs = recs[:0]
			var sealErr error
			for k := i; k < j; k++ {
				c := &batch[k]
				sealedLen := len(c.pt) + security.RecordOverhead
				mark := len(hdrs)
				hdrs = wire.AppendMuxHeader(hdrs, wire.MuxSealed, 0, sealedLen)
				hdr := hdrs[mark:]
				buf := wire.GetPayload(sealedLen)
				rec, err := c.sealer.Seal(buf[:0], c.pt, hdr)
				if err != nil {
					wire.PutPayload(buf)
					sealErr = fmt.Errorf("%w: %v", ErrTransportLost, err)
					break
				}
				bufs = append(bufs, hdr, rec)
				recs = append(recs, rec)
			}
			if sealErr == nil && len(bufs) > 0 {
				if _, err := bufs.WriteTo(conn); err != nil {
					f.t.connBroken(conn, err)
				}
			}
			for _, rec := range recs {
				wire.PutPayload(rec[:cap(rec)])
			}
			for k := i; k < len(batch) && (sealErr != nil || k < j); k++ {
				wire.PutPayload(batch[k].pt)
				batch[k] = pendingChunk{}
			}
			if sealErr != nil {
				f.t.fail(sealErr)
				return
			}
			i = j
		}
	}
}
