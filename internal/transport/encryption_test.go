package transport

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"naplet/internal/obs"
	"naplet/internal/wire"
)

// wireSniffer taps the shared connection (via WrapData) and records every
// byte written to the kernel, so tests can assert what actually crossed
// the wire — ciphertext or cleartext.
type wireSniffer struct {
	mu  sync.Mutex
	out bytes.Buffer
}

func (ws *wireSniffer) wrap(c net.Conn) net.Conn { return &sniffConn{Conn: c, ws: ws} }

func (ws *wireSniffer) contains(sub []byte) bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return bytes.Contains(ws.out.Bytes(), sub)
}

type sniffConn struct {
	net.Conn
	ws *wireSniffer
}

func (c *sniffConn) Write(p []byte) (int, error) {
	c.ws.mu.Lock()
	c.ws.out.Write(p)
	c.ws.mu.Unlock()
	return c.Conn.Write(p)
}

func transportInfo(t *testing.T, m *Manager) Info {
	t.Helper()
	infos := m.Infos()
	if len(infos) == 0 {
		t.Fatal("no transports registered")
	}
	return infos[0]
}

func TestEncryptedSessionNegotiatesCipher(t *testing.T) {
	sniff := &wireSniffer{}
	met := obs.NewRegistry()
	a := newTestPeerCfg(t, "a", false, func(cfg *Config) {
		cfg.WrapData = sniff.wrap
		cfg.Metrics = met
	})
	b := newTestPeer(t, "b", false)
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)

	secret := []byte("TOP-SECRET agent payload that must never appear on the wire")
	if _, err := cs.Write(secret); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := ss.Read(buf)
	if err != nil || !bytes.Equal(buf[:n], secret) {
		t.Fatalf("server read %q, %v", buf[:n], err)
	}
	if _, err := ss.Write(secret); err != nil {
		t.Fatal(err)
	}
	if n, err = cs.Read(buf); err != nil || !bytes.Equal(buf[:n], secret) {
		t.Fatalf("client read %q, %v", buf[:n], err)
	}

	for _, m := range []*Manager{a.mgr, b.mgr} {
		if info := transportInfo(t, m); info.Cipher != "aes256gcm" {
			t.Fatalf("negotiated cipher %q, want aes256gcm", info.Cipher)
		}
	}
	if sniff.contains(secret) {
		t.Fatal("plaintext payload visible on the wire of an encrypted session")
	}
	if got := met.Counter("transport.encrypted").Value(); got != 1 {
		t.Fatalf("transport.encrypted = %d, want 1", got)
	}
	if got := met.Counter("transport.cleartext_legacy").Value(); got != 0 {
		t.Fatalf("transport.cleartext_legacy = %d, want 0", got)
	}
}

func TestDisableEncryptionNegotiatesCleartext(t *testing.T) {
	sniff := &wireSniffer{}
	met := obs.NewRegistry()
	noEnc := func(cfg *Config) { cfg.DisableEncryption = true; cfg.Metrics = met }
	a := newTestPeerCfg(t, "a", false, func(cfg *Config) {
		noEnc(cfg)
		cfg.WrapData = sniff.wrap
	})
	b := newTestPeerCfg(t, "b", false, noEnc)
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)
	payload := []byte("cleartext-by-choice payload")
	if _, err := cs.Write(payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := ss.Read(buf)
	if err != nil || !bytes.Equal(buf[:n], payload) {
		t.Fatalf("server read %q, %v", buf[:n], err)
	}
	if info := transportInfo(t, a.mgr); info.Cipher != "cleartext" {
		t.Fatalf("cipher %q, want cleartext", info.Cipher)
	}
	if !sniff.contains(payload) {
		t.Fatal("payload not found on the wire of a cleartext session")
	}
	if got := met.Counter("transport.cleartext_legacy").Value(); got == 0 {
		t.Fatal("transport.cleartext_legacy not counted")
	}
}

// TestOneSidedDisableEncryptionFallsBack: encryption is negotiated, so a
// peer that will not seal (no advertised ciphers) yields a cleartext
// session rather than a failed handshake — tunable, not mandatory.
func TestOneSidedDisableEncryptionFallsBack(t *testing.T) {
	a := newTestPeer(t, "a", false)
	b := newTestPeerCfg(t, "b", false, func(cfg *Config) { cfg.DisableEncryption = true })
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)
	if _, err := cs.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if n, err := ss.Read(buf); err != nil || string(buf[:n]) != "hi" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	for _, m := range []*Manager{a.mgr, b.mgr} {
		if info := transportInfo(t, m); info.Cipher != "cleartext" {
			t.Fatalf("cipher %q, want cleartext", info.Cipher)
		}
	}
}

// TestEncryptedStreamSurvivesConnectionKill is the exactly-once resume
// contract on an encrypted session: each resume handshake installs fresh
// seal keys (bound to its transcript) and restarts the nonce counters,
// and the retained plaintext log is resealed under them — the receiver
// must still see every byte exactly once, in order.
func TestEncryptedStreamSurvivesConnectionKill(t *testing.T) {
	tap := &connTap{}
	a := newTestPeerCfg(t, "a", false, func(cfg *Config) {
		cfg.ResumeWindow = 10 * time.Second
		cfg.WrapData = tap.wrap
	})
	b := newTestPeerCfg(t, "b", false, resumable(10*time.Second))
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)
	if info := transportInfo(t, a.mgr); info.Cipher != "aes256gcm" {
		t.Fatalf("cipher %q, want aes256gcm", info.Cipher)
	}

	const total = 2 << 20
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i*167 + i>>8)
	}
	writeErr := make(chan error, 1)
	go func() {
		var err error
		for off := 0; off < total && err == nil; off += 8 << 10 {
			end := off + 8<<10
			if end > total {
				end = total
			}
			_, err = cs.Write(payload[off:end])
		}
		if err == nil {
			err = cs.CloseWrite()
		}
		writeErr <- err
	}()

	killed := 0
	got := make([]byte, 0, total)
	buf := make([]byte, 32<<10)
	for {
		n, err := ss.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("server read after %d bytes: %v", len(got), err)
		}
		if (killed == 0 && len(got) > total/4) || (killed == 1 && len(got) > total/2) {
			killed++
			tap.killLatest()
		}
	}
	if err := <-writeErr; err != nil {
		t.Fatalf("client write: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted across encrypted resume: got %d bytes, want %d", len(got), total)
	}
	if killed != 2 {
		t.Fatalf("killed %d connections, want 2", killed)
	}
	// The reverse direction runs on the rekeyed generation too.
	if _, err := ss.Write([]byte("rekeyed")); err != nil {
		t.Fatal(err)
	}
	rb := make([]byte, 16)
	n, err := cs.Read(rb)
	if err != nil || string(rb[:n]) != "rekeyed" {
		t.Fatalf("client read after rekey: %q, %v", rb[:n], err)
	}
}

// TestNegotiatedLimitsThreaded: one side advertising tighter limits must
// bind both sides to the minimum, and the session must still move bulk
// data correctly under the smaller frames and window.
func TestNegotiatedLimitsThreaded(t *testing.T) {
	tight := wire.Limits{MaxPayload: 2048, InitialWindow: 8192, AckFrames: 4, AckBytes: 4096}
	a := newTestPeerCfg(t, "a", false, func(cfg *Config) { cfg.Limits = tight })
	b := newTestPeer(t, "b", false)
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)

	for _, m := range []*Manager{a.mgr, b.mgr} {
		lim := transportInfo(t, m).Limits
		if lim.MaxPayload != tight.MaxPayload || lim.InitialWindow != tight.InitialWindow ||
			lim.AckFrames != tight.AckFrames || lim.AckBytes != tight.AckBytes {
			t.Fatalf("negotiated limits %+v, want mins of %+v", lim, tight)
		}
	}

	// Several windows' and frames' worth of data, byte-exact.
	const total = 256 << 10
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i * 37)
	}
	go func() {
		cs.Write(payload)
		cs.CloseWrite()
	}()
	got, err := io.ReadAll(ss)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("bulk payload corrupted under tight limits: %d bytes, want %d", len(got), total)
	}
}

// downgradeMiddlebox is a hello-rewriting man-in-the-middle: it accepts
// the dialer's connection, splices it to the real peer, and rewrites the
// dialer's fresh-session hello in flight (everything after passes through
// untouched). The transcript tags must catch any such rewrite.
func downgradeMiddlebox(t *testing.T, target string, mutate func(*wire.TransportHello)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			cli, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer cli.Close()
				srv, err := net.Dial("tcp", target)
				if err != nil {
					return
				}
				defer srv.Close()
				hello, _, err := wire.ReadTransportHello(cli)
				if err != nil {
					return
				}
				mutate(hello)
				if _, err := wire.WriteTransportHello(srv, hello); err != nil {
					return
				}
				done := make(chan struct{}, 2)
				go func() { io.Copy(srv, cli); done <- struct{}{} }()
				go func() { io.Copy(cli, srv); done <- struct{}{} }()
				<-done
			}()
		}
	}()
	return ln.Addr().String()
}

// TestDowngradeAttackFailsHandshake: a middlebox stripping the cipher
// list or capping the version list would steer two encryption-capable
// peers onto cleartext — the transcript tags must fail the handshake on
// both sides instead. No retry, no silent fallback.
func TestDowngradeAttackFailsHandshake(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*wire.TransportHello)
	}{
		{"strip-ciphers", func(h *wire.TransportHello) { h.Ciphers = nil }},
		{"cap-version", func(h *wire.TransportHello) { h.Versions = []uint8{wire.TransportVersion1} }},
		{"raise-limits", func(h *wire.TransportHello) { h.Limits.MaxPayload = wire.MaxMuxPayload }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newTestPeer(t, "b", false)
			mitm := downgradeMiddlebox(t, b.addr(), tc.mutate)
			a := newTestPeerCfg(t, "a", false, func(cfg *Config) {
				cfg.Limits = wire.Limits{MaxPayload: 4096}
				cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
					return net.DialTimeout("tcp", mitm, timeout)
				}
			})
			if _, err := a.mgr.OpenStream(b.addr(), testHeader(t), 3*time.Second); err == nil {
				t.Fatal("handshake survived a rewritten hello")
			}
			// Neither side may have registered a transport: the tampered
			// session must not exist in any mode, encrypted or cleartext.
			for name, m := range map[string]*Manager{"dialer": a.mgr, "acceptor": b.mgr} {
				if tr, _ := m.Counts(); tr != 0 {
					t.Fatalf("%s registered %d transports after tampered handshake", name, tr)
				}
			}
		})
	}
}

// TestEncryptedEmptyAndTinyFrames covers record-layer edge cases end to
// end: zero-byte writes, 1-byte frames, and frames around the bufio
// boundary all seal, open, and deliver intact.
func TestEncryptedEmptyAndTinyFrames(t *testing.T) {
	a := newTestPeer(t, "a", false)
	b := newTestPeer(t, "b", false)
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)
	var want bytes.Buffer
	for _, n := range []int{0, 1, 2, 13, 4095, 4096, 4097} {
		chunk := bytes.Repeat([]byte{byte(n)}, n)
		if _, err := cs.Write(chunk); err != nil {
			t.Fatalf("write %d bytes: %v", n, err)
		}
		want.Write(chunk)
	}
	if err := cs.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(ss)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("frame boundary bytes corrupted: got %d bytes, want %d", len(got), want.Len())
	}
}

// TestKeepaliveNegotiatedInterval: the effective probe interval is the
// minimum of both advertisements, so a fast-probing peer pulls a
// slow-probing one down to its cadence (visible as prompt half-open
// detection), and the negotiated value lands in the session limits.
func TestKeepaliveNegotiatedInterval(t *testing.T) {
	a := newTestPeerCfg(t, "a", false, func(cfg *Config) {
		cfg.KeepaliveInterval = 50 * time.Millisecond
		cfg.KeepaliveTimeout = 10 * time.Second
	})
	b := newTestPeerCfg(t, "b", false, func(cfg *Config) {
		cfg.KeepaliveInterval = 10 * time.Second
	})
	if _, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	recvStream(t, b)
	for name, m := range map[string]*Manager{"a": a.mgr, "b": b.mgr} {
		if lim := transportInfo(t, m).Limits; lim.KeepaliveMs != 50 {
			t.Fatalf("%s negotiated keepalive %dms, want 50", name, lim.KeepaliveMs)
		}
	}
	// The slow side (10s configured) must probe at the negotiated 50ms:
	// its pings keep the fast side's lastRead fresh well within a second.
	deadline := time.Now().Add(3 * time.Second)
	for {
		info := transportInfo(t, b.mgr)
		if !info.LastKeepalive.IsZero() && time.Since(info.LastKeepalive) < time.Second && time.Since(info.Opened) > 500*time.Millisecond {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow side did not see negotiated-cadence probes (last inbound %v)", time.Since(info.LastKeepalive))
		}
		time.Sleep(20 * time.Millisecond)
	}
}
