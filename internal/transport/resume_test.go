package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"naplet/internal/obs"
)

// connTap records the shared connections a manager installs (via WrapData)
// so tests can kill them out from under the transport.
type connTap struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (ct *connTap) wrap(c net.Conn) net.Conn {
	ct.mu.Lock()
	ct.conns = append(ct.conns, c)
	ct.mu.Unlock()
	return c
}

func (ct *connTap) killLatest() {
	ct.mu.Lock()
	c := ct.conns[len(ct.conns)-1]
	ct.mu.Unlock()
	c.Close()
}

func (ct *connTap) count() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return len(ct.conns)
}

func resumable(window time.Duration) func(*Config) {
	return func(cfg *Config) { cfg.ResumeWindow = window }
}

func TestStreamSurvivesConnectionKill(t *testing.T) {
	tap := &connTap{}
	met := obs.NewRegistry()
	a := newTestPeerCfg(t, "a", true, func(cfg *Config) {
		cfg.ResumeWindow = 10 * time.Second
		cfg.WrapData = tap.wrap
		cfg.Metrics = met
	})
	b := newTestPeerCfg(t, "b", true, resumable(10*time.Second))
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)

	// A deterministic multi-window payload, streamed while the underlying
	// connection is killed twice: the session must resume in place and the
	// receiver must see every byte exactly once, in order, with no error.
	const total = 4 << 20
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i*131 + i>>9)
	}
	writeErr := make(chan error, 1)
	go func() {
		var err error
		for off := 0; off < total && err == nil; off += 8 << 10 {
			end := off + 8<<10
			if end > total {
				end = total
			}
			_, err = cs.Write(payload[off:end])
		}
		if err == nil {
			err = cs.CloseWrite()
		}
		writeErr <- err
	}()

	killed := 0
	got := make([]byte, 0, total)
	buf := make([]byte, 32<<10)
	for {
		n, err := ss.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("server read after %d bytes: %v", len(got), err)
		}
		if (killed == 0 && len(got) > total/4) || (killed == 1 && len(got) > total/2) {
			killed++
			tap.killLatest()
		}
	}
	if err := <-writeErr; err != nil {
		t.Fatalf("client write: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted across resume: got %d bytes, want %d", len(got), total)
	}
	if killed != 2 {
		t.Fatalf("killed %d connections, want 2", killed)
	}
	if tap.count() < 3 {
		t.Fatalf("only %d connections installed; resume did not redial", tap.count())
	}
	if got := met.Counter("transport.reconnects").Value(); got < 2 {
		t.Fatalf("transport.reconnects = %d, want >= 2", got)
	}
	if got := met.Counter("transport.resumed_streams").Value(); got < 2 {
		t.Fatalf("transport.resumed_streams = %d, want >= 2", got)
	}

	// The reverse direction still works on the resumed session.
	if _, err := ss.Write([]byte("still here")); err != nil {
		t.Fatal(err)
	}
	rb := make([]byte, 16)
	n, err := cs.Read(rb)
	if err != nil || string(rb[:n]) != "still here" {
		t.Fatalf("client read after resume: %q, %v", rb[:n], err)
	}
}

func TestResumeWindowExpiryFailsStreamsTyped(t *testing.T) {
	tap := &connTap{}
	a := newTestPeerCfg(t, "a", true, func(cfg *Config) {
		cfg.ResumeWindow = 300 * time.Millisecond
		cfg.WrapData = tap.wrap
	})
	b := newTestPeer(t, "b", true)
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	recvStream(t, b)

	// Take the peer off the air entirely, then kill the connection: every
	// resume attempt fails to dial, and the window expires.
	b.ln.Close()
	b.mgr.Close()
	tap.killLatest()

	cs.SetDeadline(time.Now().Add(10 * time.Second))
	_, err = cs.Read(make([]byte, 1))
	if !errors.Is(err, ErrTransportLost) {
		t.Fatalf("read error = %v, want ErrTransportLost", err)
	}
	if _, err := cs.Write([]byte("x")); !errors.Is(err, ErrTransportLost) {
		t.Fatalf("write error = %v, want ErrTransportLost", err)
	}
}

func TestResumeDeniedFailsPromptly(t *testing.T) {
	tap := &connTap{}
	a := newTestPeerCfg(t, "a", true, func(cfg *Config) {
		cfg.ResumeWindow = 30 * time.Second
		cfg.WrapData = tap.wrap
	})
	b := newTestPeer(t, "b", true)
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	recvStream(t, b)

	// The acceptor forgets the session (as a restarted host would); the
	// dialer's resume must be denied and fail the streams long before the
	// 30s window — a denial is final.
	b.mgr.CloseTransports()
	cs.SetDeadline(time.Now().Add(10 * time.Second))
	start := time.Now()
	_, err = cs.Read(make([]byte, 1))
	if !errors.Is(err, ErrTransportLost) {
		t.Fatalf("read error = %v, want ErrTransportLost", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("denied resume took %v to fail; should be prompt", elapsed)
	}
}

// stallConn emulates a half-open connection: once stalled, inbound bytes
// are swallowed (reads hang) while the peer still believes it is writing
// into a live socket. Close unblocks any hung read.
type stallConn struct {
	net.Conn
	stalled atomic.Bool
	once    sync.Once
	unblock chan struct{}
}

func newStallConn(c net.Conn) *stallConn {
	return &stallConn{Conn: c, unblock: make(chan struct{})}
}

func (c *stallConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if err == nil && c.stalled.Load() {
		<-c.unblock
		return 0, io.EOF
	}
	return n, err
}

func (c *stallConn) Close() error {
	c.once.Do(func() { close(c.unblock) })
	return c.Conn.Close()
}

func TestKeepaliveDetectsHalfOpenTransport(t *testing.T) {
	var mu sync.Mutex
	var stalls []*stallConn
	met := obs.NewRegistry()
	a := newTestPeerCfg(t, "a", true, func(cfg *Config) {
		cfg.KeepaliveInterval = 50 * time.Millisecond
		cfg.KeepaliveTimeout = 250 * time.Millisecond
		cfg.ResumeWindow = 10 * time.Second
		cfg.Metrics = met
		cfg.WrapData = func(c net.Conn) net.Conn {
			sc := newStallConn(c)
			mu.Lock()
			stalls = append(stalls, sc)
			mu.Unlock()
			return sc
		}
	})
	b := newTestPeerCfg(t, "b", true, resumable(10*time.Second))
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)
	if _, err := cs.Write([]byte("before")); err != nil {
		t.Fatal(err)
	}
	rb := make([]byte, 16)
	if n, err := ss.Read(rb); err != nil || string(rb[:n]) != "before" {
		t.Fatalf("pre-stall read %q, %v", rb[:n], err)
	}

	// Go half-open: the dialer's inbound direction dies silently. Only the
	// keepalive can notice — the socket never errors.
	mu.Lock()
	stalls[0].stalled.Store(true)
	mu.Unlock()

	// The keepalive must declare the transport dead and resume it; the
	// stream then works again without ever surfacing an error.
	if _, err := ss.Write([]byte("through the outage")); err != nil {
		t.Fatal(err)
	}
	cs.SetReadDeadline(time.Now().Add(10 * time.Second))
	n, err := cs.Read(rb)
	if err != nil || string(rb[:n]) != "through the " {
		// Read returns at most len(rb) bytes; accept any prefix.
		if err != nil {
			t.Fatalf("post-stall read: %v", err)
		}
	}
	if got := met.Counter("transport.keepalive_timeouts").Value(); got < 1 {
		t.Fatalf("transport.keepalive_timeouts = %d, want >= 1", got)
	}
	if got := met.Counter("transport.reconnects").Value(); got < 1 {
		t.Fatalf("transport.reconnects = %d, want >= 1", got)
	}
}

func TestErrTransportLostWrapsCause(t *testing.T) {
	s := newStream(&Transport{}, 1, true)
	s.transportFailed(io.ErrUnexpectedEOF)
	_, err := s.Read(make([]byte, 1))
	if !errors.Is(err, ErrTransportLost) {
		t.Fatalf("errors.Is(err, ErrTransportLost) = false for %v", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("cause not preserved: %v", err)
	}
	// An already-typed cause is not double-wrapped.
	s2 := newStream(&Transport{}, 3, true)
	s2.transportFailed(ErrTransportLost)
	if _, err := s2.Read(make([]byte, 1)); err != ErrTransportLost {
		t.Fatalf("typed cause rewrapped: %v", err)
	}
}

func TestManagerCloseCancelsInflightDial(t *testing.T) {
	dialStarted := make(chan struct{}, 1)
	dialRelease := make(chan struct{})
	var dialExited atomic.Bool
	a := newTestPeerCfg(t, "a", true, func(cfg *Config) {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			select {
			case dialStarted <- struct{}{}:
			default:
			}
			<-dialRelease
			dialExited.Store(true)
			return nil, errors.New("dial released")
		}
	})
	opened := make(chan error, 1)
	go func() {
		_, err := a.mgr.OpenStream("203.0.113.1:9", testHeader(t), 30*time.Second)
		opened <- err
	}()
	<-dialStarted
	start := time.Now()
	a.mgr.Close()
	select {
	case err := <-opened:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("open returned %v, want ErrClosed", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("open took %v to fail after Close", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("open still blocked after manager close")
	}
	// The dial goroutine is not leaked mid-call: it finishes once the
	// (bounded) dial itself returns.
	close(dialRelease)
	deadline := time.Now().Add(2 * time.Second)
	for !dialExited.Load() {
		if time.Now().After(deadline) {
			t.Fatal("dial goroutine never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestManagerCloseCancelsInflightHandshake(t *testing.T) {
	// A listener that accepts and then says nothing: the dial succeeds and
	// the handshake blocks until Close cuts the connection under it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	a := newTestPeerCfg(t, "a", true, func(cfg *Config) {
		cfg.HandshakeTimeout = 30 * time.Second
	})
	opened := make(chan error, 1)
	go func() {
		_, err := a.mgr.Transport(ln.Addr().String(), 30*time.Second)
		opened <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the dial land in the handshake
	start := time.Now()
	a.mgr.Close()
	select {
	case err := <-opened:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("transport returned %v, want ErrClosed", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("handshake took %v to fail after Close", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handshake still blocked after manager close")
	}
}

func TestTransportInfoStates(t *testing.T) {
	tap := &connTap{}
	dialGate := make(chan struct{})
	var gated atomic.Bool
	a := newTestPeerCfg(t, "a", true, func(cfg *Config) {
		cfg.ResumeWindow = 10 * time.Second
		cfg.WrapData = tap.wrap
		base := cfg.Dial
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			if gated.Load() {
				<-dialGate
			}
			return base(addr, timeout)
		}
	})
	defer close(dialGate)
	b := newTestPeer(t, "b", true)
	if _, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	recvStream(t, b)
	infos := a.mgr.Infos()
	if len(infos) != 1 || infos[0].State != "connected" {
		t.Fatalf("infos = %+v, want one connected transport", infos)
	}

	// Break the connection with redials gated: the transport must report
	// reconnecting while the outage lasts.
	gated.Store(true)
	tap.killLatest()
	deadline := time.Now().Add(5 * time.Second)
	for {
		infos = a.mgr.Infos()
		if len(infos) == 1 && len(infos[0].State) >= len("reconnecting") && infos[0].State[:len("reconnecting")] == "reconnecting" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("transport never reported reconnecting: %+v", infos)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
