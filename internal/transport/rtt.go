package transport

import (
	"time"
)

// RTT-adaptive tuning. Every timeout in this layer was originally
// calibrated for the paper's single-LAN testbed; on a 300 ms WAN path the
// same constants declare healthy connections half-open and redial faster
// than a round trip can complete. Instead of asking operators to retune
// per deployment, each transport measures its own path: the keepalive
// ping/pong exchange doubles as an RTT probe, smoothed with the RFC 6298
// estimator (srtt, rttvar), and seeded from the handshake duration so an
// estimate exists before the first pong. Everything latency-sensitive —
// keepalive timeout, redial backoff, resume window, ack cadence, and the
// failure detector's probe timeout (via Manager.MaxRTT) — then scales
// from the estimate, with the configured values acting as floors: a LAN
// deployment behaves exactly as before, a WAN deployment stretches.

// rttSampleCap bounds one sample: a pong measured across a dropped ping
// or a resume gap would otherwise poison the estimate with minutes.
const rttSampleCap = 30 * time.Second

// seedRTT installs the first RTT estimate (from the handshake duration)
// unless samples already exist. The estimate survives resumes: the path
// is the same even when the connection is new.
func (t *Transport) seedRTT(sample time.Duration) {
	if sample <= 0 || t.srttNanos.Load() != 0 {
		return
	}
	t.srttNanos.Store(int64(sample))
	t.rttvarNanos.Store(int64(sample / 2))
}

// observeRTT folds one ping→pong sample into the smoothed estimate
// (RFC 6298: alpha 1/8, beta 1/4). Only the read loop calls it, so the
// read-modify-write needs no lock; the atomics publish to other readers.
func (t *Transport) observeRTT(sample time.Duration) {
	if sample <= 0 {
		return
	}
	if sample > rttSampleCap {
		sample = rttSampleCap
	}
	srtt := time.Duration(t.srttNanos.Load())
	if srtt == 0 {
		t.srttNanos.Store(int64(sample))
		t.rttvarNanos.Store(int64(sample / 2))
		return
	}
	rttvar := time.Duration(t.rttvarNanos.Load())
	diff := srtt - sample
	if diff < 0 {
		diff = -diff
	}
	rttvar += (diff - rttvar) / 4
	srtt += (sample - srtt) / 8
	t.srttNanos.Store(int64(srtt))
	t.rttvarNanos.Store(int64(rttvar))
}

// SRTT returns the smoothed round-trip estimate (zero before any sample).
func (t *Transport) SRTT() time.Duration {
	return time.Duration(t.srttNanos.Load())
}

// rttBound returns srtt + 4·rttvar — the RFC 6298 RTO shape: the time by
// which a healthy peer's response has almost certainly arrived. Zero when
// no estimate exists.
func (t *Transport) rttBound() time.Duration {
	srtt := t.srttNanos.Load()
	if srtt == 0 {
		return 0
	}
	return time.Duration(srtt + 4*t.rttvarNanos.Load())
}

// notePingSent stamps an outbound keepalive ping for RTT measurement. The
// stamp is only taken when no ping is outstanding, so a pong always
// measures against the oldest unanswered ping — an ambiguous sample can
// only overestimate, which errs toward longer (safer) timeouts.
func (t *Transport) notePingSent() {
	t.pingSentAt.CompareAndSwap(0, time.Now().UnixNano())
}

// notePongReceived resolves an outstanding ping into an RTT sample.
func (t *Transport) notePongReceived() {
	sent := t.pingSentAt.Swap(0)
	if sent == 0 {
		return
	}
	t.observeRTT(time.Since(time.Unix(0, sent)))
}

// adaptiveKeepaliveTimeout is the inbound-silence threshold past which
// this generation is declared half-open: the configured timeout, floored
// by interval + 4·(srtt + 4·rttvar) so that on a slow path a pong that is
// merely in flight — plus jitter — is never mistaken for a dead peer.
func (t *Transport) adaptiveKeepaliveTimeout(interval time.Duration) time.Duration {
	timeout := t.mgr.cfg.KeepaliveTimeout
	if b := t.rttBound(); b > 0 {
		if adaptive := interval + 4*b; adaptive > timeout {
			return adaptive
		}
	}
	return timeout
}

// redialBackoffBounds returns the resume redial backoff's initial delay
// and cap: the configured values, scaled up when the measured path is
// slower than they assume — redialing a 300 ms-away peer every 25 ms
// only burns the resume window on connections that cannot complete.
func (t *Transport) redialBackoffBounds() (base, max time.Duration) {
	base, max = t.mgr.cfg.RedialBackoffBase, t.mgr.cfg.RedialBackoffCap
	if b := t.rttBound(); b > 0 {
		if b > base {
			base = b
		}
		if c := 8 * b; c > max {
			max = c
		}
	}
	if base > max {
		base = max
	}
	return base, max
}

// adaptiveResumeWindow is how long a broken transport holds stream state
// for resumption: the configured window, stretched (up to 4×) when the
// path is slow enough that the configured window covers too few redial
// round trips to be a fair chance.
func (t *Transport) adaptiveResumeWindow() time.Duration {
	window := t.mgr.cfg.ResumeWindow
	if b := t.rttBound(); b > 0 {
		if a := 32 * b; a > window {
			window = a
			if cap := 4 * t.mgr.cfg.ResumeWindow; window > cap {
				window = cap
			}
		}
	}
	return window
}

// adaptiveAckCadence is the reliable-frame ack cadence for the current
// path: the negotiated cadence, tightened on slow paths. The send log
// holds every unacked reliable frame; at WAN RTTs the bandwidth-delay
// product inflates how much sits unacked under a fixed cadence, so acking
// more often bounds both the replay log and the replay burst a resume
// must push through the recovering connection.
func (t *Transport) adaptiveAckCadence() (frames, bytes int) {
	frames, bytes = t.ackCadence()
	switch srtt := t.SRTT(); {
	case srtt >= 200*time.Millisecond:
		frames, bytes = frames/4, bytes/4
	case srtt >= 50*time.Millisecond:
		frames, bytes = frames/2, bytes/2
	}
	if frames < 8 {
		frames = 8
	}
	if min := 32 << 10; bytes < min {
		bytes = min
	}
	return frames, bytes
}

// MaxRTT returns the largest smoothed RTT estimate across live
// transports — the conservative path-latency hint the failure detector's
// probe timeout scales from (a probe may cross any of these paths).
func (m *Manager) MaxRTT() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max time.Duration
	for t := range m.all {
		if rtt := t.SRTT(); rtt > max {
			max = rtt
		}
	}
	return max
}
