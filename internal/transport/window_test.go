package transport

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"naplet/internal/wire"
)

// TestZeroWindowStallThenGrant pins the credit-window edge: a writer that
// exhausts the peer's receive window must stall (not error, not drop), and
// the first window grant after the reader drains must wake it. The full
// payload arrives byte-exact.
func TestZeroWindowStallThenGrant(t *testing.T) {
	a := newTestPeer(t, "a", true)
	b := newTestPeer(t, "b", true)
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)

	// More than a full credit window, so the writer must block on credit
	// at least once before the reader consumes anything.
	payload := make([]byte, initialWindow+256<<10)
	for i := range payload {
		payload[i] = byte(i*13 + i>>10)
	}
	wrote := make(chan error, 1)
	go func() {
		_, err := cs.Write(payload)
		wrote <- err
	}()

	// The writer must be stalled: the window is exhausted and nothing has
	// been read, so Write cannot have returned.
	select {
	case err := <-wrote:
		t.Fatalf("write past a zero window returned early (err=%v)", err)
	case <-time.After(300 * time.Millisecond):
	}
	cs.mu.Lock()
	win := cs.sendWindow
	cs.mu.Unlock()
	if win != 0 {
		t.Fatalf("writer blocked with sendWindow = %d, want 0", win)
	}

	// Draining the reader issues grants and unsticks the writer.
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(ss, got); err != nil {
		t.Fatal(err)
	}
	if err := <-wrote; err != nil {
		t.Fatalf("write after grant: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted across a zero-window stall")
	}
}

// TestWindowGrantRacingClose races window grants against Close on both
// ends of a stream whose writer is parked on zero credit: the writer must
// return promptly with a stream error (never hang), and grants landing on
// the closing stream must not panic or deadlock.
func TestWindowGrantRacingClose(t *testing.T) {
	a := newTestPeer(t, "a", true)
	b := newTestPeer(t, "b", true)
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)

	wrote := make(chan error, 1)
	go func() {
		_, err := cs.Write(make([]byte, initialWindow+64<<10))
		wrote <- err
	}()
	// Wait until the writer is actually parked on credit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cs.mu.Lock()
		win := cs.sendWindow
		cs.mu.Unlock()
		if win == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writer never exhausted the window")
		}
		time.Sleep(time.Millisecond)
	}

	// Race: the peer drains (emitting grants toward cs) while cs closes.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		io.Copy(io.Discard, ss)
	}()
	go func() {
		defer wg.Done()
		cs.Close()
	}()
	select {
	case err := <-wrote:
		if err == nil {
			// The grants won the race and the write completed — also legal.
			break
		}
		if err != ErrStreamClosed {
			t.Logf("write ended with %v (closed mid-write)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked writer hung across close racing a window grant")
	}
	ss.Close()
	wg.Wait()

	// A late grant on the closed stream must be harmless.
	cs.addSendWindow(1 << 16)
}

// TestFinWithUndeliveredSegmentsRecyclesPool closes a receiving stream
// that still holds queued pooled segments behind a received FIN: every
// segment must go back to the payload pool, not leak with the stream.
func TestFinWithUndeliveredSegmentsRecyclesPool(t *testing.T) {
	a := newTestPeer(t, "a", true)
	b := newTestPeer(t, "b", true)
	cs, err := a.mgr.OpenStream(b.addr(), testHeader(t), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss := recvStream(t, b)

	// Send a burst and half-close; the receiver never reads, so the
	// segments sit queued behind finSeen.
	const chunk = 8 << 10
	const chunks = 16
	for i := 0; i < chunks; i++ {
		if _, err := cs.Write(make([]byte, chunk)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	// Wait for everything (data then FIN) to land in the receive queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ss.mu.Lock()
		buffered, fin := len(ss.segs), ss.finSeen
		ss.mu.Unlock()
		if fin && buffered > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("undelivered data never queued (segs=%d fin=%v)", buffered, fin)
		}
		time.Sleep(time.Millisecond)
	}

	ss.mu.Lock()
	queued := len(ss.segs)
	ss.mu.Unlock()
	before := wire.PoolReturns()
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	returned := wire.PoolReturns() - before
	if returned < uint64(queued) {
		t.Fatalf("close recycled %d pooled segments, want >= %d queued", returned, queued)
	}
	ss.mu.Lock()
	leaked := len(ss.segs)
	ss.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d segments still attached after close", leaked)
	}
	// The writer side learns of the close via reset or completes cleanly;
	// either way a follow-up write must not succeed indefinitely.
	cs.SetWriteDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < 64; i++ {
		if _, err := cs.Write(make([]byte, chunk)); err != nil {
			return
		}
	}
	t.Fatal("writes kept succeeding long after the peer closed with queued data")
}
