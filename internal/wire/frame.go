package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame flag bits.
const (
	// FlagData marks an ordinary application data frame.
	FlagData uint8 = 1 << iota
	// FlagFlush marks the final frame a peer writes before suspending; its
	// Seq field carries the writer's last data sequence number so the reader
	// can verify it drained everything before the socket closes.
	FlagFlush
	// FlagProbe marks a liveness probe frame used by the failure detector.
	FlagProbe
)

// frameMagic guards against desynchronized streams and foreign peers.
const frameMagic = 0x4e53 // "NS"

// frameVersion is the data-stream protocol version.
const frameVersion = 1

// MaxFramePayload bounds a single frame's payload; larger writes are split
// by the socket layer.
const MaxFramePayload = 1 << 20

// Frame is the unit of transfer on the data socket. Every application write
// becomes one or more data frames, each tagged with a monotonically
// increasing per-direction sequence number. Sequence numbers are what make
// redelivery after a migration idempotent: a receiver discards any frame
// whose Seq it has already delivered, which upgrades the transport's
// at-least-once behaviour across migrations to exactly-once.
type Frame struct {
	Seq     uint64
	Flags   uint8
	Payload []byte
}

// IsFlush reports whether the frame is a pre-suspend flush marker.
func (f Frame) IsFlush() bool { return f.Flags&FlagFlush != 0 }

// IsData reports whether the frame carries application payload.
func (f Frame) IsData() bool { return f.Flags&FlagData != 0 }

// frame header layout:
//
//	magic   uint16
//	version uint8
//	flags   uint8
//	seq     uint64
//	length  uint32
//	payload [length]byte
const frameHeaderSize = 2 + 1 + 1 + 8 + 4

// ErrBadFrame reports a malformed or foreign frame header.
var ErrBadFrame = errors.New("wire: malformed frame")

// WriteFrame encodes f to w in canonical form.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFramePayload {
		return fmt.Errorf("wire: frame payload %d exceeds limit %d", len(f.Payload), MaxFramePayload)
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:2], frameMagic)
	hdr[2] = frameVersion
	hdr[3] = f.Flags
	binary.BigEndian.PutUint64(hdr[4:12], f.Seq)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame decodes the next frame from r. It returns io.EOF cleanly when
// the stream ends on a frame boundary, and io.ErrUnexpectedEOF when it ends
// mid-frame.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if binary.BigEndian.Uint16(hdr[0:2]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: bad magic %#04x", ErrBadFrame, binary.BigEndian.Uint16(hdr[0:2]))
	}
	if hdr[2] != frameVersion {
		return Frame{}, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, hdr[2])
	}
	f := Frame{Flags: hdr[3], Seq: binary.BigEndian.Uint64(hdr[4:12])}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds limit", ErrBadFrame, n)
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
	}
	return f, nil
}

// FrameWriter writes frames through a buffered writer, assigning sequence
// numbers. It is not safe for concurrent use; the socket layer serializes
// writers.
type FrameWriter struct {
	w       *bufio.Writer
	nextSeq uint64
}

// NewFrameWriter returns a FrameWriter whose first data frame will carry
// sequence number next.
func NewFrameWriter(w io.Writer, next uint64) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriter(w), nextSeq: next}
}

// NextSeq returns the sequence number the next data frame will carry.
func (fw *FrameWriter) NextSeq() uint64 { return fw.nextSeq }

// LastSeq returns the sequence number of the most recently written data
// frame, or 0 if none has been written on this writer (sequence numbers
// start at 1).
func (fw *FrameWriter) LastSeq() uint64 { return fw.nextSeq - 1 }

// WriteData writes payload as a single data frame and flushes it.
func (fw *FrameWriter) WriteData(payload []byte) (uint64, error) {
	seq := fw.nextSeq
	if err := WriteFrame(fw.w, Frame{Seq: seq, Flags: FlagData, Payload: payload}); err != nil {
		return 0, err
	}
	fw.nextSeq++
	return seq, fw.w.Flush()
}

// WriteFlush writes the pre-suspend flush marker carrying the last data
// sequence number written on this stream, then flushes.
func (fw *FrameWriter) WriteFlush() error {
	if err := WriteFrame(fw.w, Frame{Seq: fw.LastSeq(), Flags: FlagFlush}); err != nil {
		return err
	}
	return fw.w.Flush()
}
