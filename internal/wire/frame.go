package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame flag bits.
const (
	// FlagData marks an ordinary application data frame.
	FlagData uint8 = 1 << iota
	// FlagFlush marks the final frame a peer writes before suspending; its
	// Seq field carries the writer's last data sequence number so the reader
	// can verify it drained everything before the socket closes.
	FlagFlush
	// FlagProbe marks a liveness probe frame used by the failure detector.
	FlagProbe
)

// frameMagic guards against desynchronized streams and foreign peers.
const frameMagic = 0x4e53 // "NS"

// frameVersion is the data-stream protocol version.
const frameVersion = 1

// MaxFramePayload bounds a single frame's payload; larger writes are split
// by the socket layer.
const MaxFramePayload = 1 << 20

// Frame is the unit of transfer on the data socket. Every application write
// becomes one or more data frames, each tagged with a monotonically
// increasing per-direction sequence number. Sequence numbers are what make
// redelivery after a migration idempotent: a receiver discards any frame
// whose Seq it has already delivered, which upgrades the transport's
// at-least-once behaviour across migrations to exactly-once.
type Frame struct {
	Seq     uint64
	Flags   uint8
	Payload []byte
}

// IsFlush reports whether the frame is a pre-suspend flush marker.
func (f Frame) IsFlush() bool { return f.Flags&FlagFlush != 0 }

// IsData reports whether the frame carries application payload.
func (f Frame) IsData() bool { return f.Flags&FlagData != 0 }

// frame header layout:
//
//	magic   uint16
//	version uint8
//	flags   uint8
//	seq     uint64
//	length  uint32
//	payload [length]byte
const frameHeaderSize = 2 + 1 + 1 + 8 + 4

// ErrBadFrame reports a malformed or foreign frame header.
var ErrBadFrame = errors.New("wire: malformed frame")

// WriteFrame encodes f to w in canonical form.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFramePayload {
		return fmt.Errorf("wire: frame payload %d exceeds limit %d", len(f.Payload), MaxFramePayload)
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:2], frameMagic)
	hdr[2] = frameVersion
	hdr[3] = f.Flags
	binary.BigEndian.PutUint64(hdr[4:12], f.Seq)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// appendFrame encodes f onto buf in canonical form.
func appendFrame(buf []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > MaxFramePayload {
		return buf, fmt.Errorf("wire: frame payload %d exceeds limit %d", len(f.Payload), MaxFramePayload)
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:2], frameMagic)
	hdr[2] = frameVersion
	hdr[3] = f.Flags
	binary.BigEndian.PutUint64(hdr[4:12], f.Seq)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(f.Payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, f.Payload...), nil
}

// ReadFrame decodes the next frame from r with a freshly allocated payload
// buffer. It returns io.EOF cleanly when the stream ends on a frame
// boundary, and io.ErrUnexpectedEOF when it ends mid-frame.
func ReadFrame(r io.Reader) (Frame, error) {
	return readFrame(r, func(n int) []byte { return make([]byte, n) })
}

// ReadFramePooled decodes like ReadFrame but draws the payload buffer from
// the package payload pool. The caller takes ownership of Payload and
// returns it with PutPayload once no reference to it remains.
func ReadFramePooled(r io.Reader) (Frame, error) {
	return readFrame(r, GetPayload)
}

// PeekReader is the read-ahead view the batched decode check needs: a
// byte source that can expose already-received bytes without consuming
// them. *bufio.Reader implements it, and so does the transport layer's
// Stream (over its queue of received segments), which lets the socket
// reader decode frames straight off a stream with no intermediate
// buffered reader — one copy, received segment to frame payload.
type PeekReader interface {
	Peek(n int) ([]byte, error)
	Buffered() int
}

// FrameBuffered reports whether br already holds one complete frame, so a
// batching reader can keep decoding without risking a block mid-batch. A
// frame larger than br's buffer always reports false.
func FrameBuffered(br PeekReader) bool {
	if br.Buffered() < frameHeaderSize {
		return false
	}
	hdr, err := br.Peek(frameHeaderSize)
	if err != nil {
		return false
	}
	n := binary.BigEndian.Uint32(hdr[12:16])
	return n <= MaxFramePayload && br.Buffered() >= frameHeaderSize+int(n)
}

// PeekSource is the byte source an incremental decoder drains: reads of
// at most Buffered() bytes complete without blocking.
type PeekSource interface {
	io.Reader
	PeekReader
}

// FrameDecoder decodes frames incrementally from a non-blocking source,
// carrying partial header and payload state across calls. Unlike the
// FrameBuffered/ReadFramePooled pair — which only advances on frames the
// source holds in full — the decoder consumes a frame's bytes as they
// arrive, so an event-driven reader makes progress on frames larger than
// the source's buffering or flow-control window: draining the partial
// payload is exactly what frees window for the sender to push the rest.
// The zero value is ready to use. Not safe for concurrent use.
type FrameDecoder struct {
	hdr     [frameHeaderSize]byte
	hdrN    int
	haveHdr bool
	// payload is the pooled in-progress payload buffer; payN bytes of it
	// are filled. fr carries the decoded header fields until the payload
	// completes.
	payload []byte
	payN    int
	fr      Frame
}

// Next returns the next complete frame assembled from src's buffered
// bytes. ok=false with a nil error means src ran dry mid-frame: call
// again when more bytes arrive. Payload buffers come from the payload
// pool, exactly like ReadFramePooled; the caller takes ownership.
func (d *FrameDecoder) Next(src PeekSource) (Frame, bool, error) {
	for d.hdrN < frameHeaderSize {
		avail := src.Buffered()
		if avail == 0 {
			return Frame{}, false, nil
		}
		if avail > frameHeaderSize-d.hdrN {
			avail = frameHeaderSize - d.hdrN
		}
		m, err := src.Read(d.hdr[d.hdrN : d.hdrN+avail])
		d.hdrN += m
		if err != nil {
			return Frame{}, false, err
		}
	}
	if !d.haveHdr {
		if binary.BigEndian.Uint16(d.hdr[0:2]) != frameMagic {
			return Frame{}, false, fmt.Errorf("%w: bad magic %#04x", ErrBadFrame, binary.BigEndian.Uint16(d.hdr[0:2]))
		}
		if d.hdr[2] != frameVersion {
			return Frame{}, false, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, d.hdr[2])
		}
		n := binary.BigEndian.Uint32(d.hdr[12:16])
		if n > MaxFramePayload {
			return Frame{}, false, fmt.Errorf("%w: payload length %d exceeds limit", ErrBadFrame, n)
		}
		d.haveHdr = true
		d.fr = Frame{Flags: d.hdr[3], Seq: binary.BigEndian.Uint64(d.hdr[4:12])}
		if n > 0 {
			d.payload = GetPayload(int(n))
			d.payN = 0
		}
	}
	for d.payN < len(d.payload) {
		avail := src.Buffered()
		if avail == 0 {
			return Frame{}, false, nil
		}
		if avail > len(d.payload)-d.payN {
			avail = len(d.payload) - d.payN
		}
		m, err := src.Read(d.payload[d.payN : d.payN+avail])
		d.payN += m
		if err != nil {
			return Frame{}, false, err
		}
	}
	f := d.fr
	f.Payload = d.payload
	d.reset()
	return f, true, nil
}

// Partial reports whether the decoder sits mid-frame — a source that ends
// now ends on a truncated frame, not a frame boundary.
func (d *FrameDecoder) Partial() bool {
	return d.hdrN > 0 || d.payload != nil
}

// Release returns an abandoned in-progress payload buffer to the pool and
// resets the decoder; for teardown paths that stop decoding mid-frame.
func (d *FrameDecoder) Release() {
	if d.payload != nil {
		PutPayload(d.payload)
	}
	d.reset()
}

func (d *FrameDecoder) reset() {
	d.hdrN = 0
	d.haveHdr = false
	d.payload = nil
	d.payN = 0
	d.fr = Frame{}
}

func readFrame(r io.Reader, alloc func(int) []byte) (Frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if binary.BigEndian.Uint16(hdr[0:2]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: bad magic %#04x", ErrBadFrame, binary.BigEndian.Uint16(hdr[0:2]))
	}
	if hdr[2] != frameVersion {
		return Frame{}, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, hdr[2])
	}
	f := Frame{Flags: hdr[3], Seq: binary.BigEndian.Uint64(hdr[4:12])}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds limit", ErrBadFrame, n)
	}
	if n > 0 {
		f.Payload = alloc(int(n))
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
	}
	return f, nil
}

// FrameWriter encodes frames into an in-memory coalescing buffer, assigning
// sequence numbers: small writes accumulate and reach the kernel in one
// syscall per Flush (or Take) rather than one per frame. It is not safe for
// concurrent use; the socket layer serializes writers, and Take lets a
// background flusher detach a filled buffer and perform the socket write
// outside the writer's critical section.
type FrameWriter struct {
	w       io.Writer
	buf     []byte
	nextSeq uint64
}

// NewFrameWriter returns a FrameWriter whose first data frame will carry
// sequence number next.
func NewFrameWriter(w io.Writer, next uint64) *FrameWriter {
	return &FrameWriter{w: w, nextSeq: next}
}

// NextSeq returns the sequence number the next data frame will carry.
func (fw *FrameWriter) NextSeq() uint64 { return fw.nextSeq }

// LastSeq returns the sequence number of the most recently written data
// frame, or 0 if none has been written on this writer (sequence numbers
// start at 1).
func (fw *FrameWriter) LastSeq() uint64 { return fw.nextSeq - 1 }

// WriteData writes payload as a single data frame and flushes it — the
// one-frame-per-syscall path, kept for callers that need the frame on the
// wire before returning. The hot path uses WriteDataBuffered + Flush.
func (fw *FrameWriter) WriteData(payload []byte) (uint64, error) {
	seq, err := fw.WriteDataBuffered(payload)
	if err != nil {
		return 0, err
	}
	return seq, fw.Flush()
}

// WriteDataBuffered encodes payload as a single data frame into the
// coalescing buffer without flushing. The frame reaches the wire at the
// next Flush or Take. Callers that need a write barrier — the pre-suspend
// flush, retransmission — call Flush (or WriteFlush) explicitly.
func (fw *FrameWriter) WriteDataBuffered(payload []byte) (uint64, error) {
	seq := fw.nextSeq
	buf, err := appendFrame(fw.buf, Frame{Seq: seq, Flags: FlagData, Payload: payload})
	if err != nil {
		return 0, err
	}
	fw.buf = buf
	fw.nextSeq++
	return seq, nil
}

// Flush writes the coalescing buffer to the underlying writer in one call.
func (fw *FrameWriter) Flush() error {
	if len(fw.buf) == 0 {
		return nil
	}
	_, err := fw.w.Write(fw.buf)
	fw.buf = fw.buf[:0]
	return err
}

// Take detaches the filled coalescing buffer — the caller becomes
// responsible for writing it to the stream — and installs spare (which may
// be nil) as the empty replacement. This is the double-buffering hook: a
// background flusher takes the batch inside the writer's lock but performs
// the socket write outside it, so frame encoding and the flush syscall
// overlap.
func (fw *FrameWriter) Take(spare []byte) []byte {
	b := fw.buf
	fw.buf = spare[:0]
	return b
}

// Buffered returns the number of encoded bytes waiting in the coalescing
// buffer.
func (fw *FrameWriter) Buffered() int { return len(fw.buf) }

// WriteFlush writes the pre-suspend flush marker carrying the last data
// sequence number written on this stream, then flushes.
func (fw *FrameWriter) WriteFlush() error {
	buf, err := appendFrame(fw.buf, Frame{Seq: fw.LastSeq(), Flags: FlagFlush})
	if err != nil {
		return err
	}
	fw.buf = buf
	return fw.Flush()
}
