package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType enumerates the control messages of the NapletSocket protocol
// (Figure 3 of the paper). Requests travel from the initiating controller to
// its peer; verdicts travel back as the reply of the reliable-UDP exchange.
type MsgType uint8

const (
	// MsgInvalid is the zero value and never legal on the wire.
	MsgInvalid MsgType = iota

	// MsgConnect asks the peer controller to establish a new connection to
	// a resident agent (CONNECT in the paper). Its payload carries the
	// initiator's DH public key; the ACK carries the responder's.
	MsgConnect
	// MsgIDExchange completes establishment: the client reports its own
	// socket id after receiving the server's ACK+id.
	MsgIDExchange
	// MsgSuspend asks the peer to suspend the connection (SUS).
	MsgSuspend
	// MsgSusRes tells a peer whose suspend was parked with ACK_WAIT that the
	// high-priority migration finished and its blocked suspend may complete
	// (SUS_RES).
	MsgSusRes
	// MsgResume asks the peer to resume a suspended connection (RES). The
	// DataAddr field carries the mover's new redirector address.
	MsgResume
	// MsgClose asks the peer to close the connection (CLS).
	MsgClose
	// MsgHeartbeat probes peer liveness on the control channel; part of the
	// fault-tolerance extension, not the original paper protocol.
	MsgHeartbeat
)

// String returns the paper's name for the message type.
func (t MsgType) String() string {
	switch t {
	case MsgConnect:
		return "CONNECT"
	case MsgIDExchange:
		return "ID"
	case MsgSuspend:
		return "SUS"
	case MsgSusRes:
		return "SUS_RES"
	case MsgResume:
		return "RES"
	case MsgClose:
		return "CLS"
	case MsgHeartbeat:
		return "HEARTBEAT"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Verdict is the peer controller's reply to a control request.
type Verdict uint8

const (
	// VerdictInvalid is the zero value and never legal on the wire.
	VerdictInvalid Verdict = iota
	// VerdictAck grants the request (ACK).
	VerdictAck
	// VerdictAckWait grants a suspend but tells the low-priority requester
	// to wait until the high-priority peer finishes migrating (ACK_WAIT,
	// overlapped concurrent migration).
	VerdictAckWait
	// VerdictResumeWait parks a resume because the replier has a blocked
	// suspend of its own to finish first (RESUME_WAIT, non-overlapped
	// concurrent migration).
	VerdictResumeWait
	// VerdictReject denies the request (bad authentication, unknown
	// connection, policy denial, or illegal state).
	VerdictReject
)

// String returns the paper's name for the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAck:
		return "ACK"
	case VerdictAckWait:
		return "ACK_WAIT"
	case VerdictResumeWait:
		return "RESUME_WAIT"
	case VerdictReject:
		return "REJECT"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// TagSize is the length of the HMAC-SHA256 authentication tag on control
// messages.
const TagSize = 32

// ControlMsg is a control-channel request. Every message names the
// connection it operates on and the agents at both ends; messages past
// establishment are authenticated with an HMAC keyed by the connection's
// secret session key (Section 3.3 of the paper).
type ControlMsg struct {
	Type   MsgType
	ConnID ConnID
	// From and To are the agent ids of the sender and intended receiver.
	From, To string
	// Nonce is a strictly increasing per-connection counter used for replay
	// protection of authenticated operations.
	Nonce uint64
	// DataAddr is the redirector address the receiver should use to reach
	// the sender's data plane (set on MsgResume, and on MsgConnect for the
	// client's own redirector).
	DataAddr string
	// ControlAddr is the sender's control-channel address; a mover includes
	// it on MsgResume and MsgSusRes so the peer can reach it at its new
	// host.
	ControlAddr string
	// LastSeq carries a data-stream high-water mark where relevant.
	LastSeq uint64
	// TransportID names the shared per-host-pair transport the sender
	// reached the receiver's host through (set on MsgConnect): both sides
	// derive the connection's session key from that transport's secret,
	// amortising the Diffie-Hellman exchange across every stream the
	// transport carries. Zero in insecure mode.
	TransportID ConnID
	// TraceID and SpanID propagate the sender's tracing context so the
	// suspend/resume exchanges of one migration form a single cross-host
	// trace (observability extension, not part of the paper protocol).
	// All-zero when the sender is not tracing; covered by the HMAC like
	// every other field.
	TraceID [16]byte
	SpanID  [8]byte
	// LocEpoch is the sender's location epoch in the naming service: a
	// mover stamps its post-migration epoch on MsgResume and MsgSusRes so
	// the peer can advance (or epoch-guard-invalidate) its location cache
	// without re-consulting the registry. Zero when unknown, which peers
	// must treat as "invalidate unconditionally".
	LocEpoch uint64
	// Payload carries message-specific bytes.
	Payload []byte
	// Tag authenticates the message; all-zero for messages sent before a
	// session key exists (connect and id-exchange).
	Tag [TagSize]byte
}

// ControlReply is the response half of a control exchange.
type ControlReply struct {
	Verdict Verdict
	ConnID  ConnID
	// Reason is a human-readable explanation for VerdictReject.
	Reason string
	// LastSeq carries the replier's delivered data high-water mark on
	// resume acks, so the mover can retransmit anything the replier never
	// received (failure-recovery extension).
	LastSeq uint64
	// Payload carries reply-specific bytes.
	Payload []byte
	// Tag authenticates the reply under the session key, mirroring the
	// request tag.
	Tag [TagSize]byte
}

const controlMagic = 0x4e43 // "NC"

var (
	// ErrBadControl reports a malformed control message or reply.
	ErrBadControl = errors.New("wire: malformed control message")
	// errShort reports truncated input during decoding.
	errShort = fmt.Errorf("%w: truncated", ErrBadControl)
)

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// appendBytes appends a length-prefixed byte slice.
func appendBytes(b []byte, p []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errShort
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, errShort
	}
	return string(b[:n]), b[n:], nil
}

func takeBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, errShort
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return nil, nil, errShort
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out, b[n:], nil
}

// SigningBytes returns the canonical encoding of m with a zeroed tag; it is
// the input to the session HMAC.
func (m *ControlMsg) SigningBytes() []byte {
	saved := m.Tag
	m.Tag = [TagSize]byte{}
	b := m.Encode()
	m.Tag = saved
	return b
}

// Encode returns the canonical wire encoding of m.
func (m *ControlMsg) Encode() []byte {
	b := make([]byte, 0, 64+len(m.From)+len(m.To)+len(m.DataAddr)+len(m.Payload))
	b = binary.BigEndian.AppendUint16(b, controlMagic)
	b = append(b, byte(m.Type))
	b = append(b, m.ConnID[:]...)
	b = appendString(b, m.From)
	b = appendString(b, m.To)
	b = binary.BigEndian.AppendUint64(b, m.Nonce)
	b = appendString(b, m.DataAddr)
	b = appendString(b, m.ControlAddr)
	b = binary.BigEndian.AppendUint64(b, m.LastSeq)
	b = append(b, m.TransportID[:]...)
	b = append(b, m.TraceID[:]...)
	b = append(b, m.SpanID[:]...)
	b = binary.BigEndian.AppendUint64(b, m.LocEpoch)
	b = appendBytes(b, m.Payload)
	b = append(b, m.Tag[:]...)
	return b
}

// DecodeControlMsg parses a canonical control message.
func DecodeControlMsg(b []byte) (*ControlMsg, error) {
	if len(b) < 2 || binary.BigEndian.Uint16(b) != controlMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadControl)
	}
	b = b[2:]
	if len(b) < 1+16 {
		return nil, errShort
	}
	m := &ControlMsg{Type: MsgType(b[0])}
	copy(m.ConnID[:], b[1:17])
	b = b[17:]
	var err error
	if m.From, b, err = takeString(b); err != nil {
		return nil, err
	}
	if m.To, b, err = takeString(b); err != nil {
		return nil, err
	}
	if len(b) < 8 {
		return nil, errShort
	}
	m.Nonce = binary.BigEndian.Uint64(b)
	b = b[8:]
	if m.DataAddr, b, err = takeString(b); err != nil {
		return nil, err
	}
	if m.ControlAddr, b, err = takeString(b); err != nil {
		return nil, err
	}
	if len(b) < 8 {
		return nil, errShort
	}
	m.LastSeq = binary.BigEndian.Uint64(b)
	b = b[8:]
	if len(b) < 16 {
		return nil, errShort
	}
	copy(m.TransportID[:], b[:16])
	b = b[16:]
	if len(b) < 16+8 {
		return nil, errShort
	}
	copy(m.TraceID[:], b[:16])
	copy(m.SpanID[:], b[16:24])
	b = b[24:]
	if len(b) < 8 {
		return nil, errShort
	}
	m.LocEpoch = binary.BigEndian.Uint64(b)
	b = b[8:]
	if m.Payload, b, err = takeBytes(b); err != nil {
		return nil, err
	}
	if len(b) != TagSize {
		return nil, fmt.Errorf("%w: bad tag length %d", ErrBadControl, len(b))
	}
	copy(m.Tag[:], b)
	if m.Type == MsgInvalid || m.Type > MsgHeartbeat {
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadControl, m.Type)
	}
	return m, nil
}

// SigningBytes returns the canonical encoding of r with a zeroed tag.
func (r *ControlReply) SigningBytes() []byte {
	saved := r.Tag
	r.Tag = [TagSize]byte{}
	b := r.Encode()
	r.Tag = saved
	return b
}

// Encode returns the canonical wire encoding of r.
func (r *ControlReply) Encode() []byte {
	b := make([]byte, 0, 64+len(r.Reason)+len(r.Payload))
	b = binary.BigEndian.AppendUint16(b, controlMagic)
	b = append(b, byte(r.Verdict))
	b = append(b, r.ConnID[:]...)
	b = appendString(b, r.Reason)
	b = binary.BigEndian.AppendUint64(b, r.LastSeq)
	b = appendBytes(b, r.Payload)
	b = append(b, r.Tag[:]...)
	return b
}

// DecodeControlReply parses a canonical control reply.
func DecodeControlReply(b []byte) (*ControlReply, error) {
	if len(b) < 2 || binary.BigEndian.Uint16(b) != controlMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadControl)
	}
	b = b[2:]
	if len(b) < 1+16 {
		return nil, errShort
	}
	r := &ControlReply{Verdict: Verdict(b[0])}
	copy(r.ConnID[:], b[1:17])
	b = b[17:]
	var err error
	if r.Reason, b, err = takeString(b); err != nil {
		return nil, err
	}
	if len(b) < 8 {
		return nil, errShort
	}
	r.LastSeq = binary.BigEndian.Uint64(b)
	b = b[8:]
	if r.Payload, b, err = takeBytes(b); err != nil {
		return nil, err
	}
	if len(b) != TagSize {
		return nil, fmt.Errorf("%w: bad tag length %d", ErrBadControl, len(b))
	}
	copy(r.Tag[:], b)
	if r.Verdict == VerdictInvalid || r.Verdict > VerdictReject {
		return nil, fmt.Errorf("%w: unknown verdict %d", ErrBadControl, r.Verdict)
	}
	return r, nil
}
