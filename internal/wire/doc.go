// Package wire defines the on-the-wire formats shared by every layer of the
// NapletSocket stack: sequence-numbered data frames carried on the TCP data
// socket, and the control messages exchanged on the reliable-UDP control
// channel during connection setup, suspend, resume, and close.
//
// All encodings are deterministic (big-endian, length-prefixed) so that
// control messages can be authenticated with an HMAC computed over their
// canonical bytes.
package wire
