package wire

import (
	"sync"
	"sync/atomic"
)

// Frame payload buffers cycle at data-plane rate: one per received frame and
// one per send-log copy. Allocating each from the heap makes the garbage
// collector a per-message cost, so the data plane draws them from a small
// set of size-classed pools instead.
//
// Ownership protocol: GetPayload hands the caller an exclusively owned
// buffer; ownership then travels with the slice (receive buffer, send log,
// application via ReadMsg). Whoever drains the last reference — and is sure
// no snapshot, retransmit, or application alias is still reading it — calls
// PutPayload. A buffer that escapes to a component outside the protocol
// (e.g. a slice returned to the application by ReadMsg) is simply never
// returned; the pool refills itself through GetPayload misses.

// payloadClasses are the pooled capacity classes. A request is served from
// the smallest class that fits; anything above MaxFramePayload cannot occur
// (frames are bounded).
var payloadClasses = [...]int{1 << 10, 8 << 10, 64 << 10, MaxFramePayload}

var payloadPools [len(payloadClasses)]sync.Pool

// Pool effectiveness counters, exported to the observability layer through
// PoolStats (registered as /metrics gauges by the core controller).
var (
	poolHits    atomic.Uint64
	poolMisses  atomic.Uint64
	poolReturns atomic.Uint64
)

// PoolStats reports the cumulative payload-pool hits (Get served from a
// recycled buffer) and misses (Get fell through to a fresh allocation).
func PoolStats() (hits, misses uint64) {
	return poolHits.Load(), poolMisses.Load()
}

// PoolReturns reports the cumulative count of buffers returned through
// PutPayload — paired with PoolStats it lets leak tests assert that every
// pooled segment a component took ownership of eventually came back.
func PoolReturns() uint64 { return poolReturns.Load() }

// classFor returns the index of the smallest class with capacity >= n, or
// -1 when n exceeds the largest class.
func classFor(n int) int {
	for i, c := range payloadClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// GetPayload returns a buffer of length n, drawn from the pool when a
// recycled buffer of a suitable class is available. The caller owns the
// buffer exclusively until it passes ownership on or returns it with
// PutPayload.
func GetPayload(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		poolMisses.Add(1)
		return make([]byte, n)
	}
	if v := payloadPools[ci].Get(); v != nil {
		poolHits.Add(1)
		return (*(v.(*[]byte)))[:n]
	}
	poolMisses.Add(1)
	return make([]byte, payloadClasses[ci])[:n]
}

// PutPayload returns a buffer to the pool. It accepts any slice — including
// buffers that did not originate here (e.g. gob-decoded checkpoint state):
// the buffer is filed under the largest class its capacity satisfies, and
// dropped when it is smaller than every class. Callers must not retain any
// alias to b after the call.
func PutPayload(b []byte) {
	c := cap(b)
	for i := len(payloadClasses) - 1; i >= 0; i-- {
		if c >= payloadClasses[i] {
			b = b[:payloadClasses[i]]
			payloadPools[i].Put(&b)
			poolReturns.Add(1)
			return
		}
	}
}
