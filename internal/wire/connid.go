package wire

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
)

// ConnID uniquely identifies a NapletSocket connection for its whole
// lifetime, across any number of migrations of either endpoint. It plays the
// role of the "socket ID" exchanged during connection establishment in the
// paper (Section 2.2).
type ConnID [16]byte

// ZeroConnID is the invalid, all-zero connection id.
var ZeroConnID ConnID

// NewConnID returns a fresh random connection id.
func NewConnID() (ConnID, error) {
	var id ConnID
	if _, err := rand.Read(id[:]); err != nil {
		return ZeroConnID, fmt.Errorf("wire: generating conn id: %w", err)
	}
	return id, nil
}

// IsZero reports whether id is the invalid all-zero id.
func (id ConnID) IsZero() bool { return id == ZeroConnID }

// String renders the id as lowercase hex.
func (id ConnID) String() string { return hex.EncodeToString(id[:]) }

// ParseConnID parses the hex form produced by String.
func ParseConnID(s string) (ConnID, error) {
	var id ConnID
	b, err := hex.DecodeString(s)
	if err != nil {
		return ZeroConnID, fmt.Errorf("wire: parsing conn id %q: %w", s, err)
	}
	if len(b) != len(id) {
		return ZeroConnID, errors.New("wire: conn id must be 16 bytes")
	}
	copy(id[:], b)
	return id, nil
}
