package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file defines the stream-multiplexing vocabulary of the shared
// per-host-pair transport: the hello exchanged when two hosts first meet,
// and the frames that carry many logical NapletSocket data streams over the
// one TCP connection between them. The mux layer is deliberately dumb — it
// knows streams, credits, and opaque payloads; which NapletSocket a stream
// belongs to is carried by the HandoffHeader riding inside MuxOpen, so the
// controller's handoff authorization (Section 3.4 of the paper) is unchanged.

// transportMagic are the first two bytes a transport dialer writes, letting
// the redirector tell a transport hello from a legacy handoff header (whose
// 4-byte length prefix always starts 0x00).
const transportMagic = 0x4e54 // "NT"

// Transport protocol versions. Version 1 is the original mux protocol:
// cleartext frames, compile-time limits. Version 2 adds the negotiation
// section to the hello — a supported-version list, a cipher-suite
// preference list, and a Limits block — and, when a cipher is agreed, the
// sealed-record framing that encrypts every mux payload. Both sides send
// the highest version they speak plus the full list; the effective version
// is the highest one both lists contain (see Negotiate). Downgrade
// protection is inherited from the handshake: the transcript tags cover the
// raw hello bytes, so a middlebox that rewrites either list breaks the tag
// on both sides.
const (
	TransportVersion1 = 1
	TransportVersion2 = 2
	transportVersion  = TransportVersion2
)

// SupportedVersions is the version list a hello advertises by default.
func SupportedVersions() []uint8 { return []uint8{TransportVersion1, TransportVersion2} }

// Cipher suites negotiable in a version-2 hello, in wire form. Cleartext
// (0) is never sent in a cipher list; it is the result of negotiation when
// either side offers no suites (legacy peers, insecure mode, or encryption
// explicitly disabled).
const (
	CipherCleartext uint16 = 0
	// CipherAES256GCM seals every mux frame payload with AES-256-GCM under
	// per-direction keys derived from the transport secret (the stdlib
	// AEAD; hardware-accelerated on amd64/arm64).
	CipherAES256GCM uint16 = 1
)

// CipherName renders a cipher suite for the debug surface.
func CipherName(c uint16) string {
	switch c {
	case CipherCleartext:
		return "cleartext"
	case CipherAES256GCM:
		return "aes256gcm"
	default:
		return fmt.Sprintf("cipher(%d)", c)
	}
}

// Limits is the tunable-protocol block of a version-2 hello: every value
// the transport used to fix at compile time, advertised per hop so the
// effective limit is the minimum both ends accept. All bounds are
// validated at decode — a zero or overflowing limit from the network is a
// malformed hello, never a divide-by-zero or an unbounded allocation.
type Limits struct {
	// MaxPayload caps one mux frame's on-wire payload bytes (sealed
	// length when a cipher is active), within [1 KiB, MaxMuxPayload].
	MaxPayload uint32
	// InitialWindow is the per-stream credit window in each direction,
	// within [4 KiB, 1 GiB].
	InitialWindow uint32
	// AckFrames / AckBytes set the reliable-frame ack cadence: the
	// receiver confirms its cumulative count after this many frames or
	// payload bytes, whichever comes first.
	AckFrames uint32
	AckBytes  uint32
	// KeepaliveMs is the advertised keepalive probe interval in
	// milliseconds; 0 means the sender does not probe.
	KeepaliveMs uint32
}

// DefaultLimits are the pre-negotiation constants of the version-1
// protocol, advertised when the caller sets nothing else.
func DefaultLimits() Limits {
	return Limits{
		MaxPayload:    MaxMuxPayload,
		InitialWindow: 1 << 20,
		AckFrames:     64,
		AckBytes:      256 << 10,
		KeepaliveMs:   15_000,
	}
}

// Limit bounds enforced at decode.
const (
	minLimitPayload = 1 << 10
	minLimitWindow  = 4 << 10
	maxLimitWindow  = 1 << 30
	maxLimitFrames  = 1 << 20
	minLimitAckB    = 1 << 10
	maxLimitAckB    = 1 << 30
	maxKeepaliveMs  = 24 * 60 * 60 * 1000
)

// Validate checks every limit against its protocol bounds.
func (l Limits) Validate() error {
	switch {
	case l.MaxPayload < minLimitPayload || l.MaxPayload > MaxMuxPayload:
		return fmt.Errorf("%w: max payload %d outside [%d, %d]", ErrBadTransport, l.MaxPayload, minLimitPayload, MaxMuxPayload)
	case l.InitialWindow < minLimitWindow || l.InitialWindow > maxLimitWindow:
		return fmt.Errorf("%w: initial window %d outside [%d, %d]", ErrBadTransport, l.InitialWindow, minLimitWindow, maxLimitWindow)
	case l.AckFrames < 1 || l.AckFrames > maxLimitFrames:
		return fmt.Errorf("%w: ack frame cadence %d outside [1, %d]", ErrBadTransport, l.AckFrames, maxLimitFrames)
	case l.AckBytes < minLimitAckB || l.AckBytes > maxLimitAckB:
		return fmt.Errorf("%w: ack byte cadence %d outside [%d, %d]", ErrBadTransport, l.AckBytes, minLimitAckB, maxLimitAckB)
	case l.KeepaliveMs > maxKeepaliveMs:
		return fmt.Errorf("%w: keepalive interval %dms above %dms", ErrBadTransport, l.KeepaliveMs, maxKeepaliveMs)
	}
	return nil
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Merge combines two advertised limit blocks into the effective set: the
// minimum of each bound, so neither side is ever pushed past what it
// offered. Keepalive merges to the smaller non-zero interval (a side that
// does not probe still answers pings, so the eager side's cadence wins).
func (l Limits) Merge(o Limits) Limits {
	ka := minU32(l.KeepaliveMs, o.KeepaliveMs)
	if ka == 0 {
		ka = l.KeepaliveMs + o.KeepaliveMs // one of them is zero
	}
	return Limits{
		MaxPayload:    minU32(l.MaxPayload, o.MaxPayload),
		InitialWindow: minU32(l.InitialWindow, o.InitialWindow),
		AckFrames:     minU32(l.AckFrames, o.AckFrames),
		AckBytes:      minU32(l.AckBytes, o.AckBytes),
		KeepaliveMs:   ka,
	}
}

// transportFlagInsecure marks a hello from a host running the paper's
// "w/o security" configuration; both sides must agree.
const transportFlagInsecure = 0x01

// transportFlagResume marks a hello that resumes a previously established
// transport session instead of creating a fresh one: ID names the prior
// transport, ResumeTag proves possession of its secret, and RecvSeq tells
// the peer which reliable mux frames were already received so it can replay
// only the gap.
const transportFlagResume = 0x02

// transportFlagResumeDenied marks an acceptor's reply to a resume hello it
// cannot honour (unknown or expired transport id). The denial is
// necessarily unauthenticated — the acceptor has no secret for the id — so
// the dialer treats it as final and falls back to the connection-level
// recovery path.
const transportFlagResumeDenied = 0x04

// maxTransportHello bounds a hello read so a garbage peer cannot make the
// acceptor allocate unbounded memory (the DH public value dominates).
const maxTransportHello = 4096

// TransportHello is the first message each side sends on a fresh transport
// connection. The dialer picks the transport id; the acceptor echoes it.
// Public carries the sender's ephemeral DH value (empty in insecure mode),
// and Addr advertises the sender's redirector address so the acceptor can
// reuse this transport for its own future dials to that host.
type TransportHello struct {
	ID       ConnID
	Insecure bool
	// Resume marks a session-resumption hello: ID names the prior
	// transport whose streams are being resurrected in place.
	Resume bool
	// ResumeDenied marks an acceptor's refusal of a resume hello.
	ResumeDenied bool
	// Host is the sender's host name (diagnostics only).
	Host string
	// Addr is the sender's redirector address ("" when not listening).
	Addr string
	// Public is the sender's ephemeral DH public value.
	Public []byte
	// RecvSeq is the count of reliable mux frames the sender had received
	// on the prior connection (resume hellos only); the peer replays its
	// unacked frames above this point and discards the rest.
	RecvSeq uint64
	// ResumeTag authenticates a resume hello: an HMAC under the prior
	// transport secret over the transport id and RecvSeq, proving the
	// dialer held the session being resumed before the acceptor commits
	// any state to it.
	ResumeTag []byte
	// Trace is the dialer's marshaled tracing span context (empty when
	// not tracing): a dial performed on behalf of a migration carries the
	// migration's trace so the acceptor's handshake span joins it.
	Trace []byte
	// Versions lists every protocol version the sender speaks (version-2
	// hellos; a decoded version-1 hello reports [1]). Negotiation picks
	// the highest version present in both lists.
	Versions []uint8
	// Ciphers lists the sender's acceptable cipher suites in preference
	// order. Empty means the sender cannot (insecure mode) or will not
	// (encryption disabled) seal records, and negotiation yields
	// CipherCleartext.
	Ciphers []uint16
	// Limits advertises the sender's protocol limits; the effective set
	// is the field-wise minimum of both sides (Limits.Merge).
	Limits Limits
}

// ErrBadTransport reports a malformed transport hello or mux frame.
var ErrBadTransport = errors.New("wire: malformed transport message")

// encode returns the canonical hello bytes (without the length prefix).
func (h *TransportHello) encode() []byte {
	b := make([]byte, 0, 32+len(h.Host)+len(h.Addr)+len(h.Public))
	b = binary.BigEndian.AppendUint16(b, transportMagic)
	b = append(b, transportVersion)
	var flags byte
	if h.Insecure {
		flags |= transportFlagInsecure
	}
	if h.Resume {
		flags |= transportFlagResume
	}
	if h.ResumeDenied {
		flags |= transportFlagResumeDenied
	}
	b = append(b, flags)
	b = append(b, h.ID[:]...)
	b = appendString(b, h.Host)
	b = appendString(b, h.Addr)
	b = appendBytes(b, h.Public)
	b = binary.BigEndian.AppendUint64(b, h.RecvSeq)
	b = appendBytes(b, h.ResumeTag)
	b = appendBytes(b, h.Trace)

	// Version-2 negotiation section. A zero-value hello still encodes a
	// valid advertisement: full version list, no ciphers, default limits.
	versions := h.Versions
	if len(versions) == 0 {
		versions = SupportedVersions()
	}
	b = append(b, byte(len(versions)))
	b = append(b, versions...)
	b = append(b, byte(len(h.Ciphers)))
	for _, c := range h.Ciphers {
		b = binary.BigEndian.AppendUint16(b, c)
	}
	limits := h.Limits
	if limits == (Limits{}) {
		limits = DefaultLimits()
	}
	b = binary.BigEndian.AppendUint32(b, limits.MaxPayload)
	b = binary.BigEndian.AppendUint32(b, limits.InitialWindow)
	b = binary.BigEndian.AppendUint32(b, limits.AckFrames)
	b = binary.BigEndian.AppendUint32(b, limits.AckBytes)
	b = binary.BigEndian.AppendUint32(b, limits.KeepaliveMs)
	return b
}

// WriteTransportHello writes the hello: the transport magic, a 4-byte body
// length, then the body. It returns the exact bytes written, which both
// sides feed into the handshake authentication tag.
func WriteTransportHello(w io.Writer, h *TransportHello) ([]byte, error) {
	body := h.encode()
	msg := make([]byte, 0, 6+len(body))
	msg = binary.BigEndian.AppendUint16(msg, transportMagic)
	msg = binary.BigEndian.AppendUint32(msg, uint32(len(body)))
	msg = append(msg, body...)
	if _, err := w.Write(msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// ReadTransportHello reads a hello written by WriteTransportHello. It
// returns the decoded hello and the raw bytes read (for tag computation).
func ReadTransportHello(r io.Reader) (*TransportHello, []byte, error) {
	var pre [6]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, nil, err
	}
	if binary.BigEndian.Uint16(pre[:2]) != transportMagic {
		return nil, nil, fmt.Errorf("%w: bad hello magic %#04x", ErrBadTransport, binary.BigEndian.Uint16(pre[:2]))
	}
	n := binary.BigEndian.Uint32(pre[2:6])
	if n > maxTransportHello {
		return nil, nil, fmt.Errorf("%w: hello of %d bytes", ErrBadTransport, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, nil, err
	}
	h, err := decodeTransportHello(body)
	if err != nil {
		return nil, nil, err
	}
	raw := make([]byte, 0, 6+len(body))
	raw = append(raw, pre[:]...)
	raw = append(raw, body...)
	return h, raw, nil
}

func decodeTransportHello(b []byte) (*TransportHello, error) {
	if len(b) < 2 || binary.BigEndian.Uint16(b) != transportMagic {
		return nil, fmt.Errorf("%w: bad hello body magic", ErrBadTransport)
	}
	b = b[2:]
	if len(b) < 2+16 {
		return nil, fmt.Errorf("%w: truncated hello", ErrBadTransport)
	}
	version := b[0]
	if version != TransportVersion1 && version != TransportVersion2 {
		return nil, fmt.Errorf("%w: unsupported transport version %d", ErrBadTransport, version)
	}
	h := &TransportHello{
		Insecure:     b[1]&transportFlagInsecure != 0,
		Resume:       b[1]&transportFlagResume != 0,
		ResumeDenied: b[1]&transportFlagResumeDenied != 0,
	}
	copy(h.ID[:], b[2:18])
	b = b[18:]
	var err error
	if h.Host, b, err = takeString(b); err != nil {
		return nil, err
	}
	if h.Addr, b, err = takeString(b); err != nil {
		return nil, err
	}
	if h.Public, b, err = takeBytes(b); err != nil {
		return nil, err
	}
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: truncated hello recv-seq", ErrBadTransport)
	}
	h.RecvSeq = binary.BigEndian.Uint64(b)
	b = b[8:]
	if h.ResumeTag, b, err = takeBytes(b); err != nil {
		return nil, err
	}
	if h.Trace, b, err = takeBytes(b); err != nil {
		return nil, err
	}
	if version == TransportVersion1 {
		// Legacy hello: no negotiation section. Report the implied
		// capabilities — version 1 only, cleartext, compile-time limits.
		if len(b) != 0 {
			return nil, fmt.Errorf("%w: %d trailing hello bytes", ErrBadTransport, len(b))
		}
		h.Versions = []uint8{TransportVersion1}
		h.Limits = DefaultLimits()
		return h, nil
	}
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: truncated hello version list", ErrBadTransport)
	}
	nv := int(b[0])
	b = b[1:]
	if nv == 0 {
		return nil, fmt.Errorf("%w: empty hello version list", ErrBadTransport)
	}
	if len(b) < nv {
		return nil, fmt.Errorf("%w: truncated hello version list", ErrBadTransport)
	}
	h.Versions = append([]uint8(nil), b[:nv]...)
	b = b[nv:]
	for _, v := range h.Versions {
		if v == 0 {
			return nil, fmt.Errorf("%w: version 0 in hello version list", ErrBadTransport)
		}
	}
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: truncated hello cipher list", ErrBadTransport)
	}
	nc := int(b[0])
	b = b[1:]
	if len(b) < 2*nc {
		return nil, fmt.Errorf("%w: truncated hello cipher list", ErrBadTransport)
	}
	if nc > 0 {
		h.Ciphers = make([]uint16, nc)
		for i := range h.Ciphers {
			c := binary.BigEndian.Uint16(b[2*i:])
			if c == CipherCleartext {
				return nil, fmt.Errorf("%w: cleartext offered as a cipher suite", ErrBadTransport)
			}
			h.Ciphers[i] = c
		}
	}
	b = b[2*nc:]
	if len(b) < 20 {
		return nil, fmt.Errorf("%w: truncated hello limits", ErrBadTransport)
	}
	h.Limits = Limits{
		MaxPayload:    binary.BigEndian.Uint32(b[0:]),
		InitialWindow: binary.BigEndian.Uint32(b[4:]),
		AckFrames:     binary.BigEndian.Uint32(b[8:]),
		AckBytes:      binary.BigEndian.Uint32(b[12:]),
		KeepaliveMs:   binary.BigEndian.Uint32(b[16:]),
	}
	if err := h.Limits.Validate(); err != nil {
		return nil, err
	}
	b = b[20:]
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing hello bytes", ErrBadTransport, len(b))
	}
	return h, nil
}

// Negotiated is the protocol agreement two hellos resolve to.
type Negotiated struct {
	Version uint8
	Cipher  uint16
	Limits  Limits
}

// Negotiate resolves the local and remote hellos into the effective
// protocol: the highest version both sides speak, the highest-numbered
// cipher suite both offer (cleartext when either offers none or either
// side is insecure), and the field-wise minimum of both limit blocks.
// The function is symmetric — both ends compute the identical result —
// and the handshake transcript tags cover both raw hellos, so a
// middlebox that edits either side's advertisement breaks the handshake
// rather than steering the negotiation.
func Negotiate(local, remote *TransportHello) (Negotiated, error) {
	version := uint8(0)
	for _, lv := range local.Versions {
		if lv <= version || lv > TransportVersion2 {
			continue
		}
		for _, rv := range remote.Versions {
			if rv == lv {
				version = lv
				break
			}
		}
	}
	if version == 0 {
		return Negotiated{}, fmt.Errorf("%w: no common protocol version (local %v, remote %v)",
			ErrBadTransport, local.Versions, remote.Versions)
	}
	n := Negotiated{Version: version, Limits: DefaultLimits()}
	if version < TransportVersion2 {
		// A version-1 session has no negotiation semantics: cleartext
		// frames and the compile-time limits on both sides.
		return n, nil
	}
	n.Limits = local.Limits.Merge(remote.Limits)
	if err := n.Limits.Validate(); err != nil {
		return Negotiated{}, err
	}
	if local.Insecure || remote.Insecure {
		return n, nil
	}
	for _, lc := range local.Ciphers {
		if lc <= n.Cipher {
			continue
		}
		for _, rc := range remote.Ciphers {
			if rc == lc {
				n.Cipher = lc
				break
			}
		}
	}
	return n, nil
}

// SniffTransport reports whether the two sniffed bytes open a transport
// hello (as opposed to a legacy length-prefixed handoff header).
func SniffTransport(b []byte) bool {
	return len(b) >= 2 && binary.BigEndian.Uint16(b) == transportMagic
}

// Mux frame types. Stream ids are chosen by the side opening the stream:
// the transport dialer uses odd ids, the acceptor even ids, so the two
// sides never collide without coordination.
const (
	// MuxOpen opens a stream; the payload is the length-prefixed
	// HandoffHeader naming and authenticating the logical connection.
	MuxOpen uint8 = 1 + iota
	// MuxAccept confirms a MuxOpen; the opener may use the stream.
	MuxAccept
	// MuxReset kills a stream in either direction; the payload is an
	// optional reason string. A reset answering MuxOpen is a refusal.
	MuxReset
	// MuxData carries stream payload bytes, bounded by the receiver's
	// credit window.
	MuxData
	// MuxFin half-closes the sender's direction of the stream.
	MuxFin
	// MuxWindow grants the peer more send credit; the payload is a 4-byte
	// big-endian byte count.
	MuxWindow
	// MuxPing probes transport liveness; the payload is the sender's
	// 8-byte reliable-frame receive count, so keepalives double as acks.
	// Pings are unreliable: they are neither counted nor replayed.
	MuxPing
	// MuxPong answers a ping, carrying the responder's receive count.
	MuxPong
	// MuxAck acknowledges reliable frames without a ping: the payload is
	// the 8-byte cumulative count of reliable frames received, letting the
	// sender trim its resume replay log. Unreliable, like ping/pong.
	MuxAck
	// MuxSealed wraps one AEAD record on encrypted sessions: the payload
	// is a sealed container whose plaintext is a sequence of complete mux
	// frames (header + payload), so one GCM pass amortises over many
	// small frames. Only the inner frames carry reliable sequence
	// numbers; the container itself is transparent to the resume
	// contract. Never valid inside another container (DecodeMuxHeader
	// rejects it) and never valid on a cleartext session.
	MuxSealed
)

// ReliableMuxFrame reports whether a frame type participates in the
// session-resumption contract: reliable frames are sequence-counted by the
// receiver and retained by the sender until acked, so a resumed transport
// can replay exactly the gap. Keepalives and acks themselves are exempt.
func ReliableMuxFrame(typ uint8) bool {
	return typ >= MuxOpen && typ <= MuxWindow
}

// MaxMuxPayload bounds one mux frame's payload; stream writes larger than
// this are split by the transport layer. It matches the payload pool's
// 64 KiB class so inbound data segments recycle through the pool instead
// of falling into the top class and allocating a fresh top-class buffer
// on every miss; it also bounds how long one bulk stream's frame can
// occupy the shared wire ahead of its siblings.
const MaxMuxPayload = 64 << 10

// MuxHeaderSize is the fixed mux frame header length:
//
//	type   uint8
//	stream uint64
//	length uint32
//
// No per-frame magic: frames follow the authenticated hello exchange on a
// trusted byte stream, and any desynchronization kills the whole transport.
const MuxHeaderSize = 1 + 8 + 4

// MuxHeader is a decoded mux frame header; the payload follows on the wire.
type MuxHeader struct {
	Type   uint8
	Stream uint64
	Length uint32
}

// AppendMuxHeader encodes a mux frame header onto b.
func AppendMuxHeader(b []byte, typ uint8, stream uint64, length int) []byte {
	b = append(b, typ)
	b = binary.BigEndian.AppendUint64(b, stream)
	return binary.BigEndian.AppendUint32(b, uint32(length))
}

// ReadMuxHeader decodes the next mux frame header from r, validating the
// type and payload bound.
func ReadMuxHeader(r io.Reader) (MuxHeader, error) {
	var hdr [MuxHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return MuxHeader{}, err
	}
	h := MuxHeader{
		Type:   hdr[0],
		Stream: binary.BigEndian.Uint64(hdr[1:9]),
		Length: binary.BigEndian.Uint32(hdr[9:13]),
	}
	if h.Type < MuxOpen || h.Type > MuxSealed {
		return MuxHeader{}, fmt.Errorf("%w: unknown mux frame type %d", ErrBadTransport, h.Type)
	}
	if h.Length > MaxMuxPayload {
		return MuxHeader{}, fmt.Errorf("%w: mux payload %d exceeds limit %d", ErrBadTransport, h.Length, MaxMuxPayload)
	}
	return h, nil
}

// DecodeMuxHeader decodes a mux frame header from the front of an opened
// MuxSealed container. Containers never nest, so MuxSealed itself is
// rejected here along with unknown types and oversized payloads.
func DecodeMuxHeader(b []byte) (MuxHeader, error) {
	if len(b) < MuxHeaderSize {
		return MuxHeader{}, fmt.Errorf("%w: truncated inner mux header (%d bytes)", ErrBadTransport, len(b))
	}
	h := MuxHeader{
		Type:   b[0],
		Stream: binary.BigEndian.Uint64(b[1:9]),
		Length: binary.BigEndian.Uint32(b[9:13]),
	}
	if h.Type < MuxOpen || h.Type > MuxAck {
		return MuxHeader{}, fmt.Errorf("%w: unknown inner mux frame type %d", ErrBadTransport, h.Type)
	}
	if h.Length > MaxMuxPayload {
		return MuxHeader{}, fmt.Errorf("%w: inner mux payload %d exceeds limit %d", ErrBadTransport, h.Length, MaxMuxPayload)
	}
	return h, nil
}
