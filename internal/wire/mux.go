package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file defines the stream-multiplexing vocabulary of the shared
// per-host-pair transport: the hello exchanged when two hosts first meet,
// and the frames that carry many logical NapletSocket data streams over the
// one TCP connection between them. The mux layer is deliberately dumb — it
// knows streams, credits, and opaque payloads; which NapletSocket a stream
// belongs to is carried by the HandoffHeader riding inside MuxOpen, so the
// controller's handoff authorization (Section 3.4 of the paper) is unchanged.

// transportMagic are the first two bytes a transport dialer writes, letting
// the redirector tell a transport hello from a legacy handoff header (whose
// 4-byte length prefix always starts 0x00).
const transportMagic = 0x4e54 // "NT"

// transportVersion is the transport protocol version.
const transportVersion = 1

// transportFlagInsecure marks a hello from a host running the paper's
// "w/o security" configuration; both sides must agree.
const transportFlagInsecure = 0x01

// transportFlagResume marks a hello that resumes a previously established
// transport session instead of creating a fresh one: ID names the prior
// transport, ResumeTag proves possession of its secret, and RecvSeq tells
// the peer which reliable mux frames were already received so it can replay
// only the gap.
const transportFlagResume = 0x02

// transportFlagResumeDenied marks an acceptor's reply to a resume hello it
// cannot honour (unknown or expired transport id). The denial is
// necessarily unauthenticated — the acceptor has no secret for the id — so
// the dialer treats it as final and falls back to the connection-level
// recovery path.
const transportFlagResumeDenied = 0x04

// maxTransportHello bounds a hello read so a garbage peer cannot make the
// acceptor allocate unbounded memory (the DH public value dominates).
const maxTransportHello = 4096

// TransportHello is the first message each side sends on a fresh transport
// connection. The dialer picks the transport id; the acceptor echoes it.
// Public carries the sender's ephemeral DH value (empty in insecure mode),
// and Addr advertises the sender's redirector address so the acceptor can
// reuse this transport for its own future dials to that host.
type TransportHello struct {
	ID       ConnID
	Insecure bool
	// Resume marks a session-resumption hello: ID names the prior
	// transport whose streams are being resurrected in place.
	Resume bool
	// ResumeDenied marks an acceptor's refusal of a resume hello.
	ResumeDenied bool
	// Host is the sender's host name (diagnostics only).
	Host string
	// Addr is the sender's redirector address ("" when not listening).
	Addr string
	// Public is the sender's ephemeral DH public value.
	Public []byte
	// RecvSeq is the count of reliable mux frames the sender had received
	// on the prior connection (resume hellos only); the peer replays its
	// unacked frames above this point and discards the rest.
	RecvSeq uint64
	// ResumeTag authenticates a resume hello: an HMAC under the prior
	// transport secret over the transport id and RecvSeq, proving the
	// dialer held the session being resumed before the acceptor commits
	// any state to it.
	ResumeTag []byte
	// Trace is the dialer's marshaled tracing span context (empty when
	// not tracing): a dial performed on behalf of a migration carries the
	// migration's trace so the acceptor's handshake span joins it.
	Trace []byte
}

// ErrBadTransport reports a malformed transport hello or mux frame.
var ErrBadTransport = errors.New("wire: malformed transport message")

// encode returns the canonical hello bytes (without the length prefix).
func (h *TransportHello) encode() []byte {
	b := make([]byte, 0, 32+len(h.Host)+len(h.Addr)+len(h.Public))
	b = binary.BigEndian.AppendUint16(b, transportMagic)
	b = append(b, transportVersion)
	var flags byte
	if h.Insecure {
		flags |= transportFlagInsecure
	}
	if h.Resume {
		flags |= transportFlagResume
	}
	if h.ResumeDenied {
		flags |= transportFlagResumeDenied
	}
	b = append(b, flags)
	b = append(b, h.ID[:]...)
	b = appendString(b, h.Host)
	b = appendString(b, h.Addr)
	b = appendBytes(b, h.Public)
	b = binary.BigEndian.AppendUint64(b, h.RecvSeq)
	b = appendBytes(b, h.ResumeTag)
	b = appendBytes(b, h.Trace)
	return b
}

// WriteTransportHello writes the hello: the transport magic, a 4-byte body
// length, then the body. It returns the exact bytes written, which both
// sides feed into the handshake authentication tag.
func WriteTransportHello(w io.Writer, h *TransportHello) ([]byte, error) {
	body := h.encode()
	msg := make([]byte, 0, 6+len(body))
	msg = binary.BigEndian.AppendUint16(msg, transportMagic)
	msg = binary.BigEndian.AppendUint32(msg, uint32(len(body)))
	msg = append(msg, body...)
	if _, err := w.Write(msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// ReadTransportHello reads a hello written by WriteTransportHello. It
// returns the decoded hello and the raw bytes read (for tag computation).
func ReadTransportHello(r io.Reader) (*TransportHello, []byte, error) {
	var pre [6]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, nil, err
	}
	if binary.BigEndian.Uint16(pre[:2]) != transportMagic {
		return nil, nil, fmt.Errorf("%w: bad hello magic %#04x", ErrBadTransport, binary.BigEndian.Uint16(pre[:2]))
	}
	n := binary.BigEndian.Uint32(pre[2:6])
	if n > maxTransportHello {
		return nil, nil, fmt.Errorf("%w: hello of %d bytes", ErrBadTransport, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, nil, err
	}
	h, err := decodeTransportHello(body)
	if err != nil {
		return nil, nil, err
	}
	raw := make([]byte, 0, 6+len(body))
	raw = append(raw, pre[:]...)
	raw = append(raw, body...)
	return h, raw, nil
}

func decodeTransportHello(b []byte) (*TransportHello, error) {
	if len(b) < 2 || binary.BigEndian.Uint16(b) != transportMagic {
		return nil, fmt.Errorf("%w: bad hello body magic", ErrBadTransport)
	}
	b = b[2:]
	if len(b) < 2+16 {
		return nil, fmt.Errorf("%w: truncated hello", ErrBadTransport)
	}
	if b[0] != transportVersion {
		return nil, fmt.Errorf("%w: unsupported transport version %d", ErrBadTransport, b[0])
	}
	h := &TransportHello{
		Insecure:     b[1]&transportFlagInsecure != 0,
		Resume:       b[1]&transportFlagResume != 0,
		ResumeDenied: b[1]&transportFlagResumeDenied != 0,
	}
	copy(h.ID[:], b[2:18])
	b = b[18:]
	var err error
	if h.Host, b, err = takeString(b); err != nil {
		return nil, err
	}
	if h.Addr, b, err = takeString(b); err != nil {
		return nil, err
	}
	if h.Public, b, err = takeBytes(b); err != nil {
		return nil, err
	}
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: truncated hello recv-seq", ErrBadTransport)
	}
	h.RecvSeq = binary.BigEndian.Uint64(b)
	b = b[8:]
	if h.ResumeTag, b, err = takeBytes(b); err != nil {
		return nil, err
	}
	if h.Trace, b, err = takeBytes(b); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing hello bytes", ErrBadTransport, len(b))
	}
	return h, nil
}

// SniffTransport reports whether the two sniffed bytes open a transport
// hello (as opposed to a legacy length-prefixed handoff header).
func SniffTransport(b []byte) bool {
	return len(b) >= 2 && binary.BigEndian.Uint16(b) == transportMagic
}

// Mux frame types. Stream ids are chosen by the side opening the stream:
// the transport dialer uses odd ids, the acceptor even ids, so the two
// sides never collide without coordination.
const (
	// MuxOpen opens a stream; the payload is the length-prefixed
	// HandoffHeader naming and authenticating the logical connection.
	MuxOpen uint8 = 1 + iota
	// MuxAccept confirms a MuxOpen; the opener may use the stream.
	MuxAccept
	// MuxReset kills a stream in either direction; the payload is an
	// optional reason string. A reset answering MuxOpen is a refusal.
	MuxReset
	// MuxData carries stream payload bytes, bounded by the receiver's
	// credit window.
	MuxData
	// MuxFin half-closes the sender's direction of the stream.
	MuxFin
	// MuxWindow grants the peer more send credit; the payload is a 4-byte
	// big-endian byte count.
	MuxWindow
	// MuxPing probes transport liveness; the payload is the sender's
	// 8-byte reliable-frame receive count, so keepalives double as acks.
	// Pings are unreliable: they are neither counted nor replayed.
	MuxPing
	// MuxPong answers a ping, carrying the responder's receive count.
	MuxPong
	// MuxAck acknowledges reliable frames without a ping: the payload is
	// the 8-byte cumulative count of reliable frames received, letting the
	// sender trim its resume replay log. Unreliable, like ping/pong.
	MuxAck
)

// ReliableMuxFrame reports whether a frame type participates in the
// session-resumption contract: reliable frames are sequence-counted by the
// receiver and retained by the sender until acked, so a resumed transport
// can replay exactly the gap. Keepalives and acks themselves are exempt.
func ReliableMuxFrame(typ uint8) bool {
	return typ >= MuxOpen && typ <= MuxWindow
}

// MaxMuxPayload bounds one mux frame's payload; stream writes larger than
// this are split by the transport layer. It matches the payload pool's
// 64 KiB class so inbound data segments recycle through the pool instead
// of falling into the top class and allocating a fresh top-class buffer
// on every miss; it also bounds how long one bulk stream's frame can
// occupy the shared wire ahead of its siblings.
const MaxMuxPayload = 64 << 10

// MuxHeaderSize is the fixed mux frame header length:
//
//	type   uint8
//	stream uint64
//	length uint32
//
// No per-frame magic: frames follow the authenticated hello exchange on a
// trusted byte stream, and any desynchronization kills the whole transport.
const MuxHeaderSize = 1 + 8 + 4

// MuxHeader is a decoded mux frame header; the payload follows on the wire.
type MuxHeader struct {
	Type   uint8
	Stream uint64
	Length uint32
}

// AppendMuxHeader encodes a mux frame header onto b.
func AppendMuxHeader(b []byte, typ uint8, stream uint64, length int) []byte {
	b = append(b, typ)
	b = binary.BigEndian.AppendUint64(b, stream)
	return binary.BigEndian.AppendUint32(b, uint32(length))
}

// ReadMuxHeader decodes the next mux frame header from r, validating the
// type and payload bound.
func ReadMuxHeader(r io.Reader) (MuxHeader, error) {
	var hdr [MuxHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return MuxHeader{}, err
	}
	h := MuxHeader{
		Type:   hdr[0],
		Stream: binary.BigEndian.Uint64(hdr[1:9]),
		Length: binary.BigEndian.Uint32(hdr[9:13]),
	}
	if h.Type < MuxOpen || h.Type > MuxAck {
		return MuxHeader{}, fmt.Errorf("%w: unknown mux frame type %d", ErrBadTransport, h.Type)
	}
	if h.Length > MaxMuxPayload {
		return MuxHeader{}, fmt.Errorf("%w: mux payload %d exceeds limit %d", ErrBadTransport, h.Length, MaxMuxPayload)
	}
	return h, nil
}
