package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleMsg() *ControlMsg {
	var id ConnID
	for i := range id {
		id[i] = byte(i)
	}
	m := &ControlMsg{
		Type:        MsgSuspend,
		ConnID:      id,
		From:        "agent-a",
		To:          "agent-b",
		Nonce:       7,
		DataAddr:    "127.0.0.1:9000",
		ControlAddr: "127.0.0.1:9001",
		LastSeq:     12345,
		LocEpoch:    42,
		Payload:     []byte{1, 2, 3},
	}
	for i := range m.TraceID {
		m.TraceID[i] = byte(0xA0 + i)
	}
	for i := range m.SpanID {
		m.SpanID[i] = byte(0xB0 + i)
	}
	for i := range m.Tag {
		m.Tag[i] = byte(255 - i)
	}
	return m
}

func TestControlMsgRoundTrip(t *testing.T) {
	want := sampleMsg()
	got, err := DecodeControlMsg(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestControlMsgRoundTripProperty(t *testing.T) {
	f := func(typ uint8, id [16]byte, from, to, addr, caddr string, nonce, lastSeq, locEpoch uint64, payload []byte, tag [32]byte) bool {
		mt := MsgType(typ%uint8(MsgHeartbeat)) + 1
		in := &ControlMsg{
			Type: mt, ConnID: ConnID(id), From: from, To: to,
			Nonce: nonce, DataAddr: addr, ControlAddr: caddr, LastSeq: lastSeq, LocEpoch: locEpoch, Payload: payload, Tag: tag,
		}
		if len(from) > 65535 || len(to) > 65535 || len(addr) > 65535 || len(caddr) > 65535 {
			return true // encoder length prefix is uint16; core never sends such names
		}
		out, err := DecodeControlMsg(in.Encode())
		if err != nil {
			return false
		}
		// Decode normalizes empty payload to nil.
		if len(in.Payload) == 0 {
			in.Payload = nil
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestControlReplyRoundTrip(t *testing.T) {
	var id ConnID
	id[0] = 9
	want := &ControlReply{
		Verdict: VerdictAckWait,
		ConnID:  id,
		Reason:  "busy",
		LastSeq: 77,
		Payload: []byte("pubkey"),
	}
	want.Tag[31] = 0x5a
	got, err := DecodeControlReply(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestSigningBytesExcludesTag(t *testing.T) {
	m := sampleMsg()
	withTag := m.SigningBytes()
	tagSaved := m.Tag
	m.Tag = [TagSize]byte{}
	withoutTag := m.SigningBytes()
	m.Tag = tagSaved
	if !bytes.Equal(withTag, withoutTag) {
		t.Error("SigningBytes depends on the tag value")
	}
	// And the tag must still be in place afterwards.
	if m.Tag != tagSaved {
		t.Error("SigningBytes clobbered the tag")
	}
}

func TestSigningBytesCoversAllFields(t *testing.T) {
	base := sampleMsg()
	mutations := []func(*ControlMsg){
		func(m *ControlMsg) { m.Type = MsgResume },
		func(m *ControlMsg) { m.ConnID[0] ^= 1 },
		func(m *ControlMsg) { m.From = "other" },
		func(m *ControlMsg) { m.To = "other" },
		func(m *ControlMsg) { m.Nonce++ },
		func(m *ControlMsg) { m.DataAddr = "10.0.0.1:1" },
		func(m *ControlMsg) { m.ControlAddr = "10.0.0.1:2" },
		func(m *ControlMsg) { m.LastSeq++ },
		func(m *ControlMsg) { m.LocEpoch++ },
		func(m *ControlMsg) { m.Payload = append([]byte(nil), 9) },
	}
	ref := base.SigningBytes()
	for i, mutate := range mutations {
		m := sampleMsg()
		mutate(m)
		if bytes.Equal(m.SigningBytes(), ref) {
			t.Errorf("mutation %d not covered by SigningBytes", i)
		}
	}
}

func TestDecodeControlErrors(t *testing.T) {
	good := sampleMsg().Encode()
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 0
		if _, err := DecodeControlMsg(b); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for n := 0; n < len(good); n++ {
			if _, err := DecodeControlMsg(good[:n]); err == nil {
				t.Fatalf("truncation at %d accepted", n)
			}
		}
	})
	t.Run("bad type", func(t *testing.T) {
		m := sampleMsg()
		m.Type = MsgType(200)
		if _, err := DecodeControlMsg(m.Encode()); err == nil {
			t.Error("unknown type accepted")
		}
	})
	t.Run("bad verdict", func(t *testing.T) {
		r := &ControlReply{Verdict: Verdict(200)}
		if _, err := DecodeControlReply(r.Encode()); err == nil {
			t.Error("unknown verdict accepted")
		}
	})
}

func TestMsgTypeStrings(t *testing.T) {
	names := map[MsgType]string{
		MsgConnect: "CONNECT", MsgIDExchange: "ID", MsgSuspend: "SUS",
		MsgSusRes: "SUS_RES", MsgResume: "RES", MsgClose: "CLS", MsgHeartbeat: "HEARTBEAT",
	}
	for typ, want := range names {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	verdicts := map[Verdict]string{
		VerdictAck: "ACK", VerdictAckWait: "ACK_WAIT",
		VerdictResumeWait: "RESUME_WAIT", VerdictReject: "REJECT",
	}
	for v, want := range verdicts {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", v, got, want)
		}
	}
}
