package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

func sampleHandoff() *HandoffHeader {
	var id ConnID
	id[3] = 7
	h := &HandoffHeader{
		Purpose:     HandoffResume,
		ConnID:      id,
		TargetAgent: "agent-b",
		FromAgent:   "agent-a",
		Nonce:       99,
	}
	h.Token[0] = 0xde
	return h
}

func TestHandoffRoundTrip(t *testing.T) {
	want := sampleHandoff()
	var buf bytes.Buffer
	if err := want.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHandoffHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestHandoffSigningBytes(t *testing.T) {
	h := sampleHandoff()
	ref := h.SigningBytes()
	h2 := sampleHandoff()
	h2.Token = [TagSize]byte{}
	if !bytes.Equal(ref, h2.SigningBytes()) {
		t.Error("SigningBytes depends on token")
	}
	h3 := sampleHandoff()
	h3.Nonce++
	if bytes.Equal(ref, h3.SigningBytes()) {
		t.Error("nonce not covered by SigningBytes")
	}
	h4 := sampleHandoff()
	h4.Purpose = HandoffConnect
	if bytes.Equal(ref, h4.SigningBytes()) {
		t.Error("purpose not covered by SigningBytes")
	}
}

func TestHandoffErrors(t *testing.T) {
	t.Run("oversize", func(t *testing.T) {
		var buf bytes.Buffer
		buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
		if _, err := ReadHandoffHeader(&buf); err == nil {
			t.Error("oversize header accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		var buf bytes.Buffer
		if err := sampleHandoff().Write(&buf); err != nil {
			t.Fatal(err)
		}
		b := buf.Bytes()[:buf.Len()-5]
		if _, err := ReadHandoffHeader(bytes.NewReader(b)); err != io.ErrUnexpectedEOF {
			t.Fatalf("err = %v, want unexpected EOF", err)
		}
	})
	t.Run("bad purpose", func(t *testing.T) {
		h := sampleHandoff()
		h.Purpose = HandoffPurpose(9)
		var buf bytes.Buffer
		if err := h.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadHandoffHeader(&buf); err == nil {
			t.Error("bad purpose accepted")
		}
	})
}

func TestHandoffStatus(t *testing.T) {
	for _, s := range []HandoffStatus{HandoffOK, HandoffDenied} {
		var buf bytes.Buffer
		if err := WriteHandoffStatus(&buf, s); err != nil {
			t.Fatal(err)
		}
		got, err := ReadHandoffStatus(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("status round trip: got %d want %d", got, s)
		}
	}
	if _, err := ReadHandoffStatus(bytes.NewReader([]byte{0})); err == nil {
		t.Error("unknown status accepted")
	}
}
