package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Fuzz targets: the decoders face bytes from the network, so they must
// never panic or over-allocate, and anything they accept must re-encode to
// an equivalent value. Run longer with `go test -fuzz=FuzzDecodeControlMsg
// ./internal/wire`; in normal test runs the seed corpus executes.

func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	WriteFrame(&good, Frame{Seq: 7, Flags: FlagData, Payload: []byte("seed")})
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x4e, 0x53, 1, 1, 0, 0, 0, 0, 0, 0, 0, 9, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Re-encode and re-decode: must round-trip.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("accepted frame failed to encode: %v", err)
		}
		fr2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr2.Seq != fr.Seq || fr2.Flags != fr.Flags || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatal("frame round-trip mismatch")
		}
	})
}

func FuzzDecodeControlMsg(f *testing.F) {
	m := &ControlMsg{Type: MsgResume, From: "a", To: "b", Nonce: 3, DataAddr: "x:1", ControlAddr: "y:2"}
	f.Add(m.Encode())
	f.Add([]byte{})
	f.Add([]byte{0x4e, 0x43})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeControlMsg(data)
		if err != nil {
			return
		}
		re, err := DecodeControlMsg(msg.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Type != msg.Type || re.Nonce != msg.Nonce || re.From != msg.From || re.To != msg.To {
			t.Fatal("control message round-trip mismatch")
		}
	})
}

func FuzzDecodeControlReply(f *testing.F) {
	r := &ControlReply{Verdict: VerdictAck, Reason: "x", LastSeq: 9}
	f.Add(r.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeControlReply(data)
		if err != nil {
			return
		}
		re, err := DecodeControlReply(rep.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Verdict != rep.Verdict || re.Reason != rep.Reason || re.LastSeq != rep.LastSeq {
			t.Fatal("reply round-trip mismatch")
		}
	})
}

func FuzzReadTransportHello(f *testing.F) {
	id, _ := NewConnID()
	var seed bytes.Buffer
	WriteTransportHello(&seed, &TransportHello{
		ID:       id,
		Host:     "h",
		Addr:     "a:1",
		Public:   []byte{1, 2, 3},
		Versions: []uint8{1, 2},
		Ciphers:  []uint16{CipherAES256GCM},
		Limits:   DefaultLimits(),
	})
	f.Add(seed.Bytes())
	// A raw version-1 body under its prefix (back-compat decode path).
	v1 := encodeV1Hello(&TransportHello{ID: id, Host: "legacy"})
	var v1msg bytes.Buffer
	v1msg.Write([]byte{0x4e, 0x54})
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(v1)))
	v1msg.Write(lenb[:])
	v1msg.Write(v1)
	f.Add(v1msg.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x4e, 0x54, 0, 0, 0, 4, 0x4e, 0x54, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, _, err := ReadTransportHello(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted has validated limits and a non-empty version
		// list, and (for version-2 hellos) re-encodes losslessly.
		if len(h.Versions) == 0 {
			t.Fatal("accepted hello with empty version list")
		}
		if err := h.Limits.Validate(); err != nil {
			t.Fatalf("accepted hello with invalid limits: %v", err)
		}
		var buf bytes.Buffer
		if _, err := WriteTransportHello(&buf, h); err != nil {
			t.Fatalf("accepted hello failed to encode: %v", err)
		}
		h2, _, err := ReadTransportHello(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if h2.ID != h.ID || h2.Host != h.Host || h2.RecvSeq != h.RecvSeq ||
			!bytes.Equal(h2.Versions, h.Versions) || h2.Limits != h.Limits ||
			len(h2.Ciphers) != len(h.Ciphers) {
			t.Fatal("hello round-trip mismatch")
		}
	})
}

func FuzzReadHandoffHeader(f *testing.F) {
	var buf bytes.Buffer
	h := &HandoffHeader{Purpose: HandoffConnect, TargetAgent: "t", FromAgent: "f", Nonce: 1}
	h.Write(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 2, 0x4e, 0x48})
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, err := ReadHandoffHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := hdr.Write(&out); err != nil {
			t.Fatalf("accepted header failed to encode: %v", err)
		}
		hdr2, err := ReadHandoffHeader(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if hdr2.Purpose != hdr.Purpose || hdr2.TargetAgent != hdr.TargetAgent || hdr2.Nonce != hdr.Nonce {
			t.Fatal("handoff round-trip mismatch")
		}
	})
}
