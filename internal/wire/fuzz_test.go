package wire

import (
	"bytes"
	"testing"
)

// Fuzz targets: the decoders face bytes from the network, so they must
// never panic or over-allocate, and anything they accept must re-encode to
// an equivalent value. Run longer with `go test -fuzz=FuzzDecodeControlMsg
// ./internal/wire`; in normal test runs the seed corpus executes.

func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	WriteFrame(&good, Frame{Seq: 7, Flags: FlagData, Payload: []byte("seed")})
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x4e, 0x53, 1, 1, 0, 0, 0, 0, 0, 0, 0, 9, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Re-encode and re-decode: must round-trip.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("accepted frame failed to encode: %v", err)
		}
		fr2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr2.Seq != fr.Seq || fr2.Flags != fr.Flags || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatal("frame round-trip mismatch")
		}
	})
}

func FuzzDecodeControlMsg(f *testing.F) {
	m := &ControlMsg{Type: MsgResume, From: "a", To: "b", Nonce: 3, DataAddr: "x:1", ControlAddr: "y:2"}
	f.Add(m.Encode())
	f.Add([]byte{})
	f.Add([]byte{0x4e, 0x43})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeControlMsg(data)
		if err != nil {
			return
		}
		re, err := DecodeControlMsg(msg.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Type != msg.Type || re.Nonce != msg.Nonce || re.From != msg.From || re.To != msg.To {
			t.Fatal("control message round-trip mismatch")
		}
	})
}

func FuzzDecodeControlReply(f *testing.F) {
	r := &ControlReply{Verdict: VerdictAck, Reason: "x", LastSeq: 9}
	f.Add(r.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeControlReply(data)
		if err != nil {
			return
		}
		re, err := DecodeControlReply(rep.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Verdict != rep.Verdict || re.Reason != rep.Reason || re.LastSeq != rep.LastSeq {
			t.Fatal("reply round-trip mismatch")
		}
	})
}

func FuzzReadHandoffHeader(f *testing.F) {
	var buf bytes.Buffer
	h := &HandoffHeader{Purpose: HandoffConnect, TargetAgent: "t", FromAgent: "f", Nonce: 1}
	h.Write(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 2, 0x4e, 0x48})
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, err := ReadHandoffHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := hdr.Write(&out); err != nil {
			t.Fatalf("accepted header failed to encode: %v", err)
		}
		hdr2, err := ReadHandoffHeader(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if hdr2.Purpose != hdr.Purpose || hdr2.TargetAgent != hdr.TargetAgent || hdr2.Nonce != hdr.Nonce {
			t.Fatal("handoff round-trip mismatch")
		}
	})
}
