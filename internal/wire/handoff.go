package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// HandoffPurpose says why a data-plane TCP connection is arriving at a
// redirector (Section 3.4 of the paper).
type HandoffPurpose uint8

const (
	// HandoffInvalid is the zero value and never legal on the wire.
	HandoffInvalid HandoffPurpose = iota
	// HandoffConnect hands a brand-new data socket to the NapletServerSocket
	// of the target agent during connection setup.
	HandoffConnect
	// HandoffResume hands a replacement data socket to a suspended
	// NapletSocket during connection resume.
	HandoffResume
)

// String names the purpose.
func (p HandoffPurpose) String() string {
	switch p {
	case HandoffConnect:
		return "connect"
	case HandoffResume:
		return "resume"
	default:
		return fmt.Sprintf("HandoffPurpose(%d)", uint8(p))
	}
}

// HandoffHeader is the first thing written on a freshly dialed data socket,
// telling the redirector where to deliver the connection. For a resume the
// Token authenticates the caller under the connection's session key, so a
// third party cannot steal a suspended connection.
type HandoffHeader struct {
	Purpose HandoffPurpose
	// ConnID identifies the connection (both purposes).
	ConnID ConnID
	// TargetAgent is the resident agent being connected to (connect only).
	TargetAgent string
	// FromAgent is the dialing agent (connect only; resume identity is
	// established by the token).
	FromAgent string
	// Nonce feeds the resume token to prevent replay.
	Nonce uint64
	// Token = HMAC(sessionKey, canonical header bytes with zero token).
	Token [TagSize]byte
}

const handoffMagic = 0x4e48 // "NH"

// SigningBytes returns the canonical encoding of h with a zeroed token.
func (h *HandoffHeader) SigningBytes() []byte {
	saved := h.Token
	h.Token = [TagSize]byte{}
	b := h.encode()
	h.Token = saved
	return b
}

func (h *HandoffHeader) encode() []byte {
	b := make([]byte, 0, 64+len(h.TargetAgent)+len(h.FromAgent))
	b = binary.BigEndian.AppendUint16(b, handoffMagic)
	b = append(b, byte(h.Purpose))
	b = append(b, h.ConnID[:]...)
	b = appendString(b, h.TargetAgent)
	b = appendString(b, h.FromAgent)
	b = binary.BigEndian.AppendUint64(b, h.Nonce)
	b = append(b, h.Token[:]...)
	return b
}

// Write writes the header, length-prefixed, to w.
func (h *HandoffHeader) Write(w io.Writer) error {
	body := h.encode()
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(body)))
	if _, err := w.Write(lenb[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// maxHandoffSize bounds a handoff header read so a garbage peer cannot make
// the redirector allocate unbounded memory.
const maxHandoffSize = 4096

// ReadHandoffHeader reads a length-prefixed handoff header from r.
func ReadHandoffHeader(r io.Reader) (*HandoffHeader, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n > maxHandoffSize {
		return nil, fmt.Errorf("%w: handoff header %d bytes", ErrBadControl, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return decodeHandoff(body)
}

func decodeHandoff(b []byte) (*HandoffHeader, error) {
	if len(b) < 2 || binary.BigEndian.Uint16(b) != handoffMagic {
		return nil, fmt.Errorf("%w: bad handoff magic", ErrBadControl)
	}
	b = b[2:]
	if len(b) < 1+16 {
		return nil, errShort
	}
	h := &HandoffHeader{Purpose: HandoffPurpose(b[0])}
	copy(h.ConnID[:], b[1:17])
	b = b[17:]
	var err error
	if h.TargetAgent, b, err = takeString(b); err != nil {
		return nil, err
	}
	if h.FromAgent, b, err = takeString(b); err != nil {
		return nil, err
	}
	if len(b) < 8 {
		return nil, errShort
	}
	h.Nonce = binary.BigEndian.Uint64(b)
	b = b[8:]
	if len(b) != TagSize {
		return nil, fmt.Errorf("%w: bad token length %d", ErrBadControl, len(b))
	}
	copy(h.Token[:], b)
	if h.Purpose != HandoffConnect && h.Purpose != HandoffResume {
		return nil, fmt.Errorf("%w: unknown purpose %d", ErrBadControl, h.Purpose)
	}
	return h, nil
}

// HandoffStatus is the redirector's one-byte reply on the data socket.
type HandoffStatus uint8

const (
	// HandoffOK means the socket was delivered to its target.
	HandoffOK HandoffStatus = 1
	// HandoffDenied means authentication or lookup failed; the socket will
	// be closed by the redirector.
	HandoffDenied HandoffStatus = 2
)

// WriteHandoffStatus writes the status byte.
func WriteHandoffStatus(w io.Writer, s HandoffStatus) error {
	_, err := w.Write([]byte{byte(s)})
	return err
}

// ReadHandoffStatus reads the status byte.
func ReadHandoffStatus(r io.Reader) (HandoffStatus, error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	s := HandoffStatus(b[0])
	if s != HandoffOK && s != HandoffDenied {
		return 0, fmt.Errorf("%w: unknown handoff status %d", ErrBadControl, b[0])
	}
	return s, nil
}
