package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Seq: 0, Flags: FlagData, Payload: nil},
		{Seq: 1, Flags: FlagData, Payload: []byte("hello")},
		{Seq: 1<<64 - 1, Flags: FlagFlush, Payload: nil},
		{Seq: 42, Flags: FlagData | FlagProbe, Payload: bytes.Repeat([]byte{0xab}, 4096)},
	}
	for _, want := range cases {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, want); err != nil {
			t.Fatalf("WriteFrame(%v): %v", want, err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if got.Seq != want.Seq || got.Flags != want.Flags || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seq uint64, flags uint8, payload []byte) bool {
		if len(payload) > MaxFramePayload {
			payload = payload[:MaxFramePayload]
		}
		in := Frame{Seq: seq, Flags: flags, Payload: payload}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return out.Seq == in.Seq && out.Flags == in.Flags && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameStreamSequence(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, 1)
	if fw.LastSeq() != 0 {
		t.Fatalf("LastSeq before writes = %d, want 0", fw.LastSeq())
	}
	msgs := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	for i, m := range msgs {
		seq, err := fw.WriteData(m)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := fw.WriteFlush(); err != nil {
		t.Fatal(err)
	}
	for i := range msgs {
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !f.IsData() || f.Seq != uint64(i+1) || !bytes.Equal(f.Payload, msgs[i]) {
			t.Fatalf("frame %d: %+v", i, f)
		}
	}
	fl, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !fl.IsFlush() || fl.Seq != 3 {
		t.Fatalf("flush frame = %+v, want flush seq 3", fl)
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("past end: err = %v, want io.EOF", err)
	}
}

func TestReadFrameErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
			t.Fatalf("err = %v, want io.EOF", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := ReadFrame(bytes.NewReader([]byte{0x4e, 0x53, 1})); err != io.ErrUnexpectedEOF {
			t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Frame{Flags: FlagData}); err != nil {
			t.Fatal(err)
		}
		b := buf.Bytes()
		b[0] = 0xff
		if _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Frame{Flags: FlagData}); err != nil {
			t.Fatal(err)
		}
		b := buf.Bytes()
		b[2] = 99
		if _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Frame{Flags: FlagData, Payload: []byte("abcdef")}); err != nil {
			t.Fatal(err)
		}
		b := buf.Bytes()[:buf.Len()-3]
		if _, err := ReadFrame(bytes.NewReader(b)); err != io.ErrUnexpectedEOF {
			t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
		}
	})
	t.Run("oversize write rejected", func(t *testing.T) {
		err := WriteFrame(io.Discard, Frame{Payload: make([]byte, MaxFramePayload+1)})
		if err == nil {
			t.Fatal("oversize frame accepted")
		}
	})
}

func TestConnIDRoundTrip(t *testing.T) {
	id, err := NewConnID()
	if err != nil {
		t.Fatal(err)
	}
	if id.IsZero() {
		t.Fatal("NewConnID returned zero id")
	}
	parsed, err := ParseConnID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != id {
		t.Fatalf("parsed %v != original %v", parsed, id)
	}
}

func TestParseConnIDErrors(t *testing.T) {
	if _, err := ParseConnID("zz"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := ParseConnID("abcd"); err == nil {
		t.Error("short id accepted")
	}
}
