package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestTransportHelloRoundTrip(t *testing.T) {
	id, err := NewConnID()
	if err != nil {
		t.Fatal(err)
	}
	h := &TransportHello{
		ID:     id,
		Host:   "alpha",
		Addr:   "127.0.0.1:4410",
		Public: bytes.Repeat([]byte{0xAB}, 256),
		Trace:  bytes.Repeat([]byte{0xC3}, 24),
	}
	var buf bytes.Buffer
	raw, err := WriteTransportHello(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatal("returned raw bytes differ from written bytes")
	}
	got, raw2, err := ReadTransportHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("reader raw bytes differ from writer raw bytes")
	}
	if got.ID != h.ID || got.Host != h.Host || got.Addr != h.Addr || got.Insecure {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, h)
	}
	if !bytes.Equal(got.Public, h.Public) {
		t.Fatal("public value mismatch")
	}
}

func TestTransportHelloInsecureFlag(t *testing.T) {
	id, _ := NewConnID()
	var buf bytes.Buffer
	if _, err := WriteTransportHello(&buf, &TransportHello{ID: id, Insecure: true, Host: "h"}); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadTransportHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Insecure {
		t.Fatal("insecure flag lost in roundtrip")
	}
	if len(got.Public) != 0 {
		t.Fatal("unexpected public value on insecure hello")
	}
}

func TestTransportHelloResumeRoundTrip(t *testing.T) {
	id, _ := NewConnID()
	h := &TransportHello{
		ID:        id,
		Resume:    true,
		Host:      "beta",
		RecvSeq:   0xDEADBEEF01,
		ResumeTag: bytes.Repeat([]byte{0x5A}, 32),
	}
	var buf bytes.Buffer
	if _, err := WriteTransportHello(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadTransportHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Resume || got.ResumeDenied || got.RecvSeq != h.RecvSeq || !bytes.Equal(got.ResumeTag, h.ResumeTag) {
		t.Fatalf("resume roundtrip mismatch: %+v", got)
	}

	buf.Reset()
	if _, err := WriteTransportHello(&buf, &TransportHello{ID: id, ResumeDenied: true}); err != nil {
		t.Fatal(err)
	}
	if got, _, err = ReadTransportHello(&buf); err != nil || !got.ResumeDenied {
		t.Fatalf("denied roundtrip: %+v, %v", got, err)
	}
}

func TestReliableMuxFrame(t *testing.T) {
	for _, typ := range []uint8{MuxOpen, MuxAccept, MuxReset, MuxData, MuxFin, MuxWindow} {
		if !ReliableMuxFrame(typ) {
			t.Fatalf("type %d should be reliable", typ)
		}
	}
	for _, typ := range []uint8{MuxPing, MuxPong, MuxAck, 0, 99} {
		if ReliableMuxFrame(typ) {
			t.Fatalf("type %d should not be reliable", typ)
		}
	}
}

func TestReadTransportHelloRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0x4e, 0x54, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadTransportHello(&buf); !errors.Is(err, ErrBadTransport) {
		t.Fatalf("want ErrBadTransport, got %v", err)
	}
}

func TestSniffTransport(t *testing.T) {
	if !SniffTransport([]byte{0x4e, 0x54}) {
		t.Fatal("transport magic not sniffed")
	}
	// A legacy handoff header starts with a 4-byte big-endian length whose
	// first byte is always zero for any sane header size.
	if SniffTransport([]byte{0x00, 0x30}) {
		t.Fatal("legacy handoff prefix misidentified as transport")
	}
	if SniffTransport([]byte{0x4e}) {
		t.Fatal("single byte sniffed as transport")
	}
}

func TestMuxHeaderRoundTrip(t *testing.T) {
	for _, typ := range []uint8{MuxOpen, MuxAccept, MuxReset, MuxData, MuxFin, MuxWindow, MuxPing, MuxPong, MuxAck} {
		b := AppendMuxHeader(nil, typ, 0x0102030405060708, 77)
		if len(b) != MuxHeaderSize {
			t.Fatalf("header length %d, want %d", len(b), MuxHeaderSize)
		}
		h, err := ReadMuxHeader(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("type %d: %v", typ, err)
		}
		if h.Type != typ || h.Stream != 0x0102030405060708 || h.Length != 77 {
			t.Fatalf("roundtrip mismatch: %+v", h)
		}
	}
}

func TestReadMuxHeaderRejects(t *testing.T) {
	bad := AppendMuxHeader(nil, 99, 1, 0)
	if _, err := ReadMuxHeader(bytes.NewReader(bad)); !errors.Is(err, ErrBadTransport) {
		t.Fatalf("unknown type: want ErrBadTransport, got %v", err)
	}
	big := AppendMuxHeader(nil, MuxData, 1, MaxMuxPayload+1)
	if _, err := ReadMuxHeader(bytes.NewReader(big)); !errors.Is(err, ErrBadTransport) {
		t.Fatalf("oversize payload: want ErrBadTransport, got %v", err)
	}
	if _, err := ReadMuxHeader(bytes.NewReader([]byte{MuxData, 0})); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestControlMsgTransportIDRoundTrip(t *testing.T) {
	id, _ := NewConnID()
	tid, _ := NewConnID()
	m := &ControlMsg{
		Type:        MsgConnect,
		ConnID:      id,
		From:        "a",
		To:          "b",
		TransportID: tid,
		Payload:     []byte("hello"),
	}
	got, err := DecodeControlMsg(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.TransportID != tid {
		t.Fatalf("TransportID mismatch: %v vs %v", got.TransportID, tid)
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Fatal("payload mismatch after TransportID field")
	}
}

func TestMuxHeaderReaderEOF(t *testing.T) {
	if _, err := ReadMuxHeader(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF on empty reader, got %v", err)
	}
}
