package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestTransportHelloRoundTrip(t *testing.T) {
	id, err := NewConnID()
	if err != nil {
		t.Fatal(err)
	}
	h := &TransportHello{
		ID:     id,
		Host:   "alpha",
		Addr:   "127.0.0.1:4410",
		Public: bytes.Repeat([]byte{0xAB}, 256),
		Trace:  bytes.Repeat([]byte{0xC3}, 24),
	}
	var buf bytes.Buffer
	raw, err := WriteTransportHello(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatal("returned raw bytes differ from written bytes")
	}
	got, raw2, err := ReadTransportHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("reader raw bytes differ from writer raw bytes")
	}
	if got.ID != h.ID || got.Host != h.Host || got.Addr != h.Addr || got.Insecure {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, h)
	}
	if !bytes.Equal(got.Public, h.Public) {
		t.Fatal("public value mismatch")
	}
}

func TestTransportHelloInsecureFlag(t *testing.T) {
	id, _ := NewConnID()
	var buf bytes.Buffer
	if _, err := WriteTransportHello(&buf, &TransportHello{ID: id, Insecure: true, Host: "h"}); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadTransportHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Insecure {
		t.Fatal("insecure flag lost in roundtrip")
	}
	if len(got.Public) != 0 {
		t.Fatal("unexpected public value on insecure hello")
	}
}

func TestTransportHelloResumeRoundTrip(t *testing.T) {
	id, _ := NewConnID()
	h := &TransportHello{
		ID:        id,
		Resume:    true,
		Host:      "beta",
		RecvSeq:   0xDEADBEEF01,
		ResumeTag: bytes.Repeat([]byte{0x5A}, 32),
	}
	var buf bytes.Buffer
	if _, err := WriteTransportHello(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadTransportHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Resume || got.ResumeDenied || got.RecvSeq != h.RecvSeq || !bytes.Equal(got.ResumeTag, h.ResumeTag) {
		t.Fatalf("resume roundtrip mismatch: %+v", got)
	}

	buf.Reset()
	if _, err := WriteTransportHello(&buf, &TransportHello{ID: id, ResumeDenied: true}); err != nil {
		t.Fatal(err)
	}
	if got, _, err = ReadTransportHello(&buf); err != nil || !got.ResumeDenied {
		t.Fatalf("denied roundtrip: %+v, %v", got, err)
	}
}

func TestReliableMuxFrame(t *testing.T) {
	for _, typ := range []uint8{MuxOpen, MuxAccept, MuxReset, MuxData, MuxFin, MuxWindow} {
		if !ReliableMuxFrame(typ) {
			t.Fatalf("type %d should be reliable", typ)
		}
	}
	for _, typ := range []uint8{MuxPing, MuxPong, MuxAck, 0, 99} {
		if ReliableMuxFrame(typ) {
			t.Fatalf("type %d should not be reliable", typ)
		}
	}
}

func TestReadTransportHelloRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0x4e, 0x54, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadTransportHello(&buf); !errors.Is(err, ErrBadTransport) {
		t.Fatalf("want ErrBadTransport, got %v", err)
	}
}

func TestSniffTransport(t *testing.T) {
	if !SniffTransport([]byte{0x4e, 0x54}) {
		t.Fatal("transport magic not sniffed")
	}
	// A legacy handoff header starts with a 4-byte big-endian length whose
	// first byte is always zero for any sane header size.
	if SniffTransport([]byte{0x00, 0x30}) {
		t.Fatal("legacy handoff prefix misidentified as transport")
	}
	if SniffTransport([]byte{0x4e}) {
		t.Fatal("single byte sniffed as transport")
	}
}

func TestMuxHeaderRoundTrip(t *testing.T) {
	for _, typ := range []uint8{MuxOpen, MuxAccept, MuxReset, MuxData, MuxFin, MuxWindow, MuxPing, MuxPong, MuxAck} {
		b := AppendMuxHeader(nil, typ, 0x0102030405060708, 77)
		if len(b) != MuxHeaderSize {
			t.Fatalf("header length %d, want %d", len(b), MuxHeaderSize)
		}
		h, err := ReadMuxHeader(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("type %d: %v", typ, err)
		}
		if h.Type != typ || h.Stream != 0x0102030405060708 || h.Length != 77 {
			t.Fatalf("roundtrip mismatch: %+v", h)
		}
	}
}

func TestReadMuxHeaderRejects(t *testing.T) {
	bad := AppendMuxHeader(nil, 99, 1, 0)
	if _, err := ReadMuxHeader(bytes.NewReader(bad)); !errors.Is(err, ErrBadTransport) {
		t.Fatalf("unknown type: want ErrBadTransport, got %v", err)
	}
	big := AppendMuxHeader(nil, MuxData, 1, MaxMuxPayload+1)
	if _, err := ReadMuxHeader(bytes.NewReader(big)); !errors.Is(err, ErrBadTransport) {
		t.Fatalf("oversize payload: want ErrBadTransport, got %v", err)
	}
	if _, err := ReadMuxHeader(bytes.NewReader([]byte{MuxData, 0})); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestControlMsgTransportIDRoundTrip(t *testing.T) {
	id, _ := NewConnID()
	tid, _ := NewConnID()
	m := &ControlMsg{
		Type:        MsgConnect,
		ConnID:      id,
		From:        "a",
		To:          "b",
		TransportID: tid,
		Payload:     []byte("hello"),
	}
	got, err := DecodeControlMsg(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.TransportID != tid {
		t.Fatalf("TransportID mismatch: %v vs %v", got.TransportID, tid)
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Fatal("payload mismatch after TransportID field")
	}
}

func TestMuxHeaderReaderEOF(t *testing.T) {
	if _, err := ReadMuxHeader(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF on empty reader, got %v", err)
	}
}

func TestTransportHelloNegotiationRoundTrip(t *testing.T) {
	id, _ := NewConnID()
	h := &TransportHello{
		ID:       id,
		Host:     "gamma",
		Versions: []uint8{1, 2},
		Ciphers:  []uint16{CipherAES256GCM, 7},
		Limits: Limits{
			MaxPayload:    32 << 10,
			InitialWindow: 512 << 10,
			AckFrames:     32,
			AckBytes:      128 << 10,
			KeepaliveMs:   5000,
		},
	}
	var buf bytes.Buffer
	if _, err := WriteTransportHello(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadTransportHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Versions, h.Versions) {
		t.Fatalf("versions mismatch: %v vs %v", got.Versions, h.Versions)
	}
	if len(got.Ciphers) != 2 || got.Ciphers[0] != CipherAES256GCM || got.Ciphers[1] != 7 {
		t.Fatalf("ciphers mismatch: %v", got.Ciphers)
	}
	if got.Limits != h.Limits {
		t.Fatalf("limits mismatch: %+v vs %+v", got.Limits, h.Limits)
	}
}

func TestTransportHelloDefaultsNegotiationSection(t *testing.T) {
	// A hello built without negotiation fields (every call site before
	// version 2) still advertises the full version list and the default
	// limits on the wire.
	id, _ := NewConnID()
	var buf bytes.Buffer
	if _, err := WriteTransportHello(&buf, &TransportHello{ID: id, Host: "d"}); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadTransportHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Versions, SupportedVersions()) {
		t.Fatalf("default versions = %v", got.Versions)
	}
	if len(got.Ciphers) != 0 {
		t.Fatalf("default ciphers = %v", got.Ciphers)
	}
	if got.Limits != DefaultLimits() {
		t.Fatalf("default limits = %+v", got.Limits)
	}
}

// encodeV1Hello reproduces the version-1 hello body wire format (before the
// negotiation section existed) so decode back-compat stays pinned.
func encodeV1Hello(h *TransportHello) []byte {
	b := binary.BigEndian.AppendUint16(nil, 0x4e54)
	b = append(b, TransportVersion1)
	var flags byte
	if h.Insecure {
		flags |= 0x01
	}
	b = append(b, flags)
	b = append(b, h.ID[:]...)
	b = appendString(b, h.Host)
	b = appendString(b, h.Addr)
	b = appendBytes(b, h.Public)
	b = binary.BigEndian.AppendUint64(b, h.RecvSeq)
	b = appendBytes(b, h.ResumeTag)
	b = appendBytes(b, h.Trace)
	return b
}

func TestTransportHelloV1Decode(t *testing.T) {
	id, _ := NewConnID()
	h := &TransportHello{ID: id, Host: "legacy", Addr: "127.0.0.1:1", Public: []byte{1, 2, 3}}
	got, err := decodeTransportHello(encodeV1Hello(h))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != id || got.Host != "legacy" {
		t.Fatalf("v1 decode mismatch: %+v", got)
	}
	if !bytes.Equal(got.Versions, []uint8{TransportVersion1}) {
		t.Fatalf("v1 implied versions = %v", got.Versions)
	}
	if len(got.Ciphers) != 0 || got.Limits != DefaultLimits() {
		t.Fatalf("v1 implied capabilities: ciphers=%v limits=%+v", got.Ciphers, got.Limits)
	}
	// Trailing bytes after a v1 body remain an error.
	if _, err := decodeTransportHello(append(encodeV1Hello(h), 0)); !errors.Is(err, ErrBadTransport) {
		t.Fatalf("v1 trailing bytes: %v", err)
	}
}

func TestDecodeHelloRejectsMalformedNegotiation(t *testing.T) {
	id, _ := NewConnID()
	base := func() []byte {
		var buf bytes.Buffer
		if _, err := WriteTransportHello(&buf, &TransportHello{ID: id, Host: "x"}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()[6:] // strip magic + length prefix: raw body
	}
	valid := base()
	if _, err := decodeTransportHello(valid); err != nil {
		t.Fatal(err)
	}
	// The negotiation section is the final 2 + len(versions) + 20 bytes.
	tail := 2 + len(SupportedVersions()) + 20

	mutate := func(name string, f func(b []byte) []byte) {
		b := append([]byte(nil), valid...)
		if _, err := decodeTransportHello(f(b)); !errors.Is(err, ErrBadTransport) {
			t.Fatalf("%s: want ErrBadTransport, got %v", name, err)
		}
	}
	mutate("truncated version list", func(b []byte) []byte { return b[:len(b)-tail] })
	mutate("empty version list", func(b []byte) []byte {
		b[len(b)-tail] = 0
		return b[:len(b)-tail+1+1+20] // count byte, cipher count, limits
	})
	mutate("version zero", func(b []byte) []byte {
		b[len(b)-tail+1] = 0
		return b
	})
	mutate("truncated limits", func(b []byte) []byte { return b[:len(b)-1] })
	mutate("zero max payload", func(b []byte) []byte {
		copy(b[len(b)-20:], []byte{0, 0, 0, 0})
		return b
	})
	mutate("overflow window", func(b []byte) []byte {
		copy(b[len(b)-16:], []byte{0xFF, 0xFF, 0xFF, 0xFF})
		return b
	})
	mutate("zero ack cadence", func(b []byte) []byte {
		copy(b[len(b)-12:], []byte{0, 0, 0, 0})
		return b
	})
	mutate("cleartext in cipher list", func(b []byte) []byte {
		// Rebuild with one cipher whose id is 0.
		head := b[:len(b)-tail+1+len(SupportedVersions())]
		out := append([]byte(nil), head...)
		out = append(out, 1, 0, 0) // 1 cipher: 0x0000
		return append(out, b[len(b)-20:]...)
	})
}

func TestLimitsValidate(t *testing.T) {
	if err := DefaultLimits().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Limits{
		{MaxPayload: 0, InitialWindow: 1 << 20, AckFrames: 64, AckBytes: 256 << 10},
		{MaxPayload: MaxMuxPayload + 1, InitialWindow: 1 << 20, AckFrames: 64, AckBytes: 256 << 10},
		{MaxPayload: MaxMuxPayload, InitialWindow: 0, AckFrames: 64, AckBytes: 256 << 10},
		{MaxPayload: MaxMuxPayload, InitialWindow: 1 << 31, AckFrames: 64, AckBytes: 256 << 10},
		{MaxPayload: MaxMuxPayload, InitialWindow: 1 << 20, AckFrames: 0, AckBytes: 256 << 10},
		{MaxPayload: MaxMuxPayload, InitialWindow: 1 << 20, AckFrames: 64, AckBytes: 0},
		{MaxPayload: MaxMuxPayload, InitialWindow: 1 << 20, AckFrames: 64, AckBytes: 256 << 10, KeepaliveMs: 1 << 31},
	}
	for i, l := range bad {
		if err := l.Validate(); !errors.Is(err, ErrBadTransport) {
			t.Fatalf("case %d: want ErrBadTransport, got %v", i, err)
		}
	}
}

func TestNegotiate(t *testing.T) {
	v2 := func(ciphers []uint16, l Limits) *TransportHello {
		return &TransportHello{Versions: []uint8{1, 2}, Ciphers: ciphers, Limits: l}
	}
	small := Limits{MaxPayload: 16 << 10, InitialWindow: 256 << 10, AckFrames: 16, AckBytes: 64 << 10, KeepaliveMs: 4000}
	big := DefaultLimits()

	n, err := Negotiate(v2([]uint16{CipherAES256GCM}, big), v2([]uint16{CipherAES256GCM}, small))
	if err != nil {
		t.Fatal(err)
	}
	if n.Version != TransportVersion2 || n.Cipher != CipherAES256GCM {
		t.Fatalf("negotiated %+v", n)
	}
	if n.Limits != small {
		t.Fatalf("min-of-both limits: %+v", n.Limits)
	}

	// Highest common cipher wins, regardless of list order.
	n, _ = Negotiate(v2([]uint16{CipherAES256GCM, 9}, big), v2([]uint16{9, CipherAES256GCM}, big))
	if n.Cipher != 9 {
		t.Fatalf("highest common cipher: got %d", n.Cipher)
	}

	// Either side offering no ciphers yields cleartext.
	n, _ = Negotiate(v2(nil, big), v2([]uint16{CipherAES256GCM}, big))
	if n.Cipher != CipherCleartext {
		t.Fatalf("empty-list negotiation: got cipher %d", n.Cipher)
	}

	// Insecure mode can never negotiate a cipher.
	ins := v2([]uint16{CipherAES256GCM}, big)
	ins.Insecure = true
	n, _ = Negotiate(ins, v2([]uint16{CipherAES256GCM}, big))
	if n.Cipher != CipherCleartext {
		t.Fatalf("insecure negotiation: got cipher %d", n.Cipher)
	}

	// A version-1 peer pins the session to version-1 semantics: cleartext
	// and the default limits even if the v2 side advertised smaller ones.
	v1 := &TransportHello{Versions: []uint8{1}}
	n, err = Negotiate(v2([]uint16{CipherAES256GCM}, small), v1)
	if err != nil {
		t.Fatal(err)
	}
	if n.Version != TransportVersion1 || n.Cipher != CipherCleartext || n.Limits != DefaultLimits() {
		t.Fatalf("v1 peer negotiation: %+v", n)
	}

	// No common version is a handshake failure.
	if _, err := Negotiate(v2(nil, big), &TransportHello{Versions: []uint8{7}}); !errors.Is(err, ErrBadTransport) {
		t.Fatalf("no common version: %v", err)
	}

	// Symmetry: both ends compute the identical agreement.
	a, b := v2([]uint16{9, CipherAES256GCM}, small), v2([]uint16{CipherAES256GCM, 9}, big)
	na, _ := Negotiate(a, b)
	nb, _ := Negotiate(b, a)
	if na != nb {
		t.Fatalf("asymmetric negotiation: %+v vs %+v", na, nb)
	}
}

func TestLimitsMergeKeepalive(t *testing.T) {
	a := DefaultLimits()
	a.KeepaliveMs = 0
	b := DefaultLimits()
	b.KeepaliveMs = 9000
	if got := a.Merge(b).KeepaliveMs; got != 9000 {
		t.Fatalf("zero keepalive merged to %d", got)
	}
	a.KeepaliveMs = 3000
	if got := a.Merge(b).KeepaliveMs; got != 3000 {
		t.Fatalf("min keepalive merged to %d", got)
	}
}
