package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// BenchmarkWriteDataCoalesced measures the encode-only cost of the
// coalescing path: frames accumulate in the writer's buffer and reach the
// (discarded) stream in 32 KiB batches, the socket layer's inline-flush
// threshold.
func BenchmarkWriteDataCoalesced(b *testing.B) {
	for _, size := range []int{16, 100, 1000} {
		b.Run(sizeName(size), func(b *testing.B) {
			fw := NewFrameWriter(io.Discard, 1)
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fw.WriteDataBuffered(payload); err != nil {
					b.Fatal(err)
				}
				if fw.Buffered() >= 32<<10 {
					if err := fw.Flush(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkReadFramePooled measures decode cost with pooled payload
// buffers, recycling each frame the way the socket reader does.
func BenchmarkReadFramePooled(b *testing.B) {
	for _, size := range []int{16, 100, 1000} {
		b.Run(sizeName(size), func(b *testing.B) {
			var stream bytes.Buffer
			fw := NewFrameWriter(&stream, 1)
			payload := make([]byte, size)
			for i := 0; i < 64; i++ {
				if _, err := fw.WriteDataBuffered(payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := fw.Flush(); err != nil {
				b.Fatal(err)
			}
			encoded := stream.Bytes()
			br := bufio.NewReaderSize(nil, 128<<10)
			b.SetBytes(int64(size))
			b.ResetTimer()
			frames := 0
			for frames < b.N {
				br.Reset(bytes.NewReader(encoded))
				// Prime the buffer; FrameBuffered only peeks at what a
				// previous read already pulled in.
				if _, err := br.Peek(frameHeaderSize); err != nil {
					b.Fatal(err)
				}
				for FrameBuffered(br) {
					f, err := ReadFramePooled(br)
					if err != nil {
						b.Fatal(err)
					}
					if f.Payload != nil {
						PutPayload(f.Payload)
					}
					frames++
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000:
		return "1000B"
	case n >= 100:
		return "100B"
	default:
		return "16B"
	}
}
