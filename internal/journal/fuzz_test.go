package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the journal's on-disk parser: replay
// faces whatever a crash left behind, so it must never panic, must treat
// any undecodable tail as a torn write (truncate and carry on), and
// whatever state it does accept must survive an append + reopen cycle.
func FuzzReplay(f *testing.F) {
	// Seeds: a healthy journal with live and deleted records, its torn
	// prefixes, and some degenerate files.
	seedDir := f.TempDir()
	j, err := Open(seedDir, Options{Sync: SyncNever})
	if err != nil {
		f.Fatal(err)
	}
	if err := j.Put(KindAgent, "a1", []byte("state")); err != nil {
		f.Fatal(err)
	}
	if err := j.Append(
		Record{Kind: KindConn, Key: "c1", Data: []byte("conn")},
		Record{Kind: KindListener, Key: "a1"},
	); err != nil {
		f.Fatal(err)
	}
	if err := j.Delete(KindConn, "c1"); err != nil {
		f.Fatal(err)
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	healthy, err := os.ReadFile(filepath.Join(seedDir, fileName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3])
	f.Add(healthy[:len(healthy)/2])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, fileName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			// Unreadable journals may be rejected, but never with a panic.
			return
		}
		// Whatever replayed must be a usable store: appends and a clean
		// reopen must both work on top of it.
		live := j.Entries(KindConn)
		if err := j.Put(KindAgent, "post-replay", []byte("x")); err != nil {
			t.Fatalf("append after replay: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close after replay: %v", err)
		}
		j2, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("reopen after replay+append: %v", err)
		}
		defer j2.Close()
		if _, ok := j2.Get(KindAgent, "post-replay"); !ok {
			t.Fatal("record appended after replay lost on reopen")
		}
		for key, data := range live {
			got, ok := j2.Get(KindConn, key)
			if !ok {
				t.Fatalf("replayed record %q lost on reopen", key)
			}
			if string(got) != string(data) {
				t.Fatalf("replayed record %q changed on reopen", key)
			}
		}
	})
}
