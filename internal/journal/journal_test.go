package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"naplet/internal/obs"
)

func open(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

func TestPutGetReplay(t *testing.T) {
	dir := t.TempDir()
	j := open(t, dir, Options{Sync: SyncAlways})
	if err := j.Put(KindAgent, "a1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := j.Put(KindAgent, "a1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := j.Put(KindConn, "c1", []byte("conn")); err != nil {
		t.Fatal(err)
	}
	if err := j.Delete(KindConn, "c1"); err != nil {
		t.Fatal(err)
	}
	if got, ok := j.Get(KindAgent, "a1"); !ok || string(got) != "v2" {
		t.Fatalf("Get = %q, %v; want v2", got, ok)
	}
	if _, ok := j.Get(KindConn, "c1"); ok {
		t.Fatal("tombstoned record still live")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the replica must rebuild from disk, latest record winning
	// and the tombstone applied.
	j2 := open(t, dir, Options{})
	defer j2.Close()
	if j2.Replayed() != 4 {
		t.Fatalf("Replayed = %d, want 4", j2.Replayed())
	}
	if got, ok := j2.Get(KindAgent, "a1"); !ok || string(got) != "v2" {
		t.Fatalf("after replay Get = %q, %v; want v2", got, ok)
	}
	if _, ok := j2.Get(KindConn, "c1"); ok {
		t.Fatal("tombstone lost across replay")
	}
}

func TestAppendBatchAtomic(t *testing.T) {
	dir := t.TempDir()
	j := open(t, dir, Options{Sync: SyncAlways})
	err := j.Append(
		Record{Kind: KindAgent, Key: "a", Data: []byte("behavior")},
		Record{Kind: KindConn, Key: "a/c1", Data: []byte("state")},
	)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Corrupt the last byte of the file: the whole batch must be dropped
	// on replay — never just its second record.
	path := filepath.Join(dir, fileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := open(t, dir, Options{})
	defer j2.Close()
	if j2.Replayed() != 0 {
		t.Fatalf("Replayed = %d after corrupt batch, want 0", j2.Replayed())
	}
	if _, ok := j2.Get(KindAgent, "a"); ok {
		t.Fatal("first record of corrupt batch survived")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j := open(t, dir, Options{Sync: SyncAlways})
	if err := j.Put(KindAgent, "a", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a torn write: a partial batch frame at the tail.
	path := filepath.Join(dir, fileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xde, 0xad}) // header fragment
	f.Close()
	before, _ := os.Stat(path)

	j2 := open(t, dir, Options{Sync: SyncAlways})
	if got, ok := j2.Get(KindAgent, "a"); !ok || string(got) != "ok" {
		t.Fatalf("good prefix lost: %q, %v", got, ok)
	}
	after, _ := os.Stat(path)
	if after.Size() != before.Size()-6 {
		t.Fatalf("torn tail not truncated: %d -> %d", before.Size(), after.Size())
	}
	// Appending after truncation must produce a readable journal.
	if err := j2.Put(KindAgent, "b", []byte("new")); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3 := open(t, dir, Options{})
	defer j3.Close()
	if _, ok := j3.Get(KindAgent, "b"); !ok {
		t.Fatal("post-truncation append lost")
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	met := obs.NewRegistry()
	j := open(t, dir, Options{Sync: SyncAlways, Metrics: met})
	for i := 0; i < 50; i++ {
		if err := j.Put(KindConn, "c", bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
			t.Fatal(err)
		}
	}
	j.Put(KindConn, "gone", []byte("x"))
	j.Delete(KindConn, "gone")
	path := filepath.Join(dir, fileName)
	before, _ := os.Stat(path)
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink: %d -> %d", before.Size(), after.Size())
	}
	// Journal stays appendable and correct after compaction.
	if err := j.Put(KindAgent, "a", []byte("post")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := open(t, dir, Options{})
	defer j2.Close()
	if got, _ := j2.Get(KindConn, "c"); !bytes.Equal(got, bytes.Repeat([]byte{49}, 128)) {
		t.Fatalf("latest value lost across compaction: %v", got[:4])
	}
	if _, ok := j2.Get(KindConn, "gone"); ok {
		t.Fatal("tombstoned key resurrected by compaction")
	}
	if _, ok := j2.Get(KindAgent, "a"); !ok {
		t.Fatal("post-compaction append lost")
	}
	snap := met.Snapshot()
	if snap.Counters["journal.compactions"] != 1 {
		t.Fatalf("journal.compactions = %d", snap.Counters["journal.compactions"])
	}
	if snap.Counters["journal.appends"] == 0 || snap.Counters["journal.fsyncs"] == 0 {
		t.Fatalf("journal metrics missing: %v", snap.Counters)
	}
}

func TestEntries(t *testing.T) {
	dir := t.TempDir()
	j := open(t, dir, Options{})
	defer j.Close()
	for i := 0; i < 5; i++ {
		j.Put(KindConn, fmt.Sprintf("c%d", i), []byte{byte(i)})
	}
	j.Delete(KindConn, "c3")
	got := j.Entries(KindConn)
	if len(got) != 4 {
		t.Fatalf("Entries = %d keys, want 4", len(got))
	}
	if _, ok := got["c3"]; ok {
		t.Fatal("deleted key listed")
	}
}

func TestClosedErrors(t *testing.T) {
	j := open(t, t.TempDir(), Options{})
	j.Close()
	if err := j.Put(KindAgent, "a", nil); err != ErrClosed {
		t.Fatalf("Put after close = %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	var nilJ *Journal
	if err := nilJ.Append(Record{Kind: KindAgent, Key: "x"}); err != nil {
		t.Fatalf("nil journal Append: %v", err)
	}
	if nilJ.Replayed() != 0 || nilJ.Entries(KindAgent) != nil {
		t.Fatal("nil journal accessors")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
