// Package journal is the write-ahead journal of the fault-tolerance
// subsystem: an append-only file of gob-encoded records mirrored by an
// in-memory replica. The socket controller and agent host checkpoint
// connection FSM state, unacked send-buffer frames, and agent dock state
// at each lifecycle edge; after a crash, a restarted napletd replays the
// journal to rebuild that state and drive stranded connections through
// the normal resume handshake.
//
// On disk the journal is a sequence of batches. Each batch is framed as
//
//	uint32 length | uint32 CRC-32 (IEEE) of body | body
//
// where body is the gob encoding of a []Record. A batch is appended with
// a single write, so the records of one Append are atomic with respect
// to a process crash: replay either sees all of them or none (a torn
// tail fails the CRC and is truncated away). This matters for callers
// that must persist two facts together — e.g. an agent's progress
// counter and the connection's send-sequence cursor, whose coherence is
// what preserves exactly-once delivery across a restart.
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"naplet/internal/obs"
)

// Kind partitions the key space of the journal. The well-known kinds are
// defined here so the agent host and the socket controller can share one
// journal without coordinating key formats.
type Kind uint8

const (
	// KindAgent records a docked agent: its behavior gob and epoch.
	KindAgent Kind = 1
	// KindConn records one connection endpoint's serialized state.
	KindConn Kind = 2
	// KindListener records that an agent had a passive (listening) socket.
	KindListener Kind = 3
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindAgent:
		return "agent"
	case KindConn:
		return "conn"
	case KindListener:
		return "listener"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one journal entry: the latest non-tombstone record per
// (Kind, Key) is the live state; a tombstone erases the pair.
type Record struct {
	Kind Kind
	Key  string
	// Data is the opaque (conventionally gob-encoded) payload. Ignored on
	// tombstones.
	Data []byte
	// Tombstone marks the (Kind, Key) pair as deleted.
	Tombstone bool
	// When is the append time, retained for debugging.
	When time.Time
}

// SyncPolicy selects when appended batches are fsynced to disk.
type SyncPolicy int

const (
	// SyncInterval fsyncs dirty data on a background ticker (the default).
	// It bounds the loss window after a machine crash; a plain process
	// crash (SIGKILL) loses nothing under any policy, because written
	// data survives in the OS page cache.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append.
	SyncAlways
	// SyncNever leaves flushing entirely to the OS.
	SyncNever
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses "always", "interval", or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("journal: unknown sync policy %q (want always, interval, or never)", s)
	}
}

// Options tunes a journal. The zero value selects the defaults.
type Options struct {
	// Sync selects the fsync policy. Default SyncInterval.
	Sync SyncPolicy
	// SyncEvery is the flush period under SyncInterval. Default 100ms.
	SyncEvery time.Duration
	// Metrics receives journal.* instruments when non-nil.
	Metrics *obs.Registry
	// Logger receives replay/compaction events when non-nil.
	Logger *obs.Logger
}

// fileName is the journal file inside the journal directory.
const fileName = "naplet.journal"

// ErrClosed reports use of a closed journal.
var ErrClosed = errors.New("journal: closed")

// Journal is an append-only write-ahead log with an in-memory replica of
// the live (latest, non-tombstoned) records. It is safe for concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	size   int64 // current file size
	live   map[Kind]map[string][]byte
	dirty  bool // appended since last fsync
	closed bool

	// replayed is how many records the opening replay recovered.
	replayed int
	// truncated is how many trailing bytes the opening replay discarded.
	truncated int64

	done chan struct{}
	wg   sync.WaitGroup

	ins struct {
		appends     *obs.Counter
		records     *obs.Counter
		fsyncs      *obs.Counter
		replays     *obs.Counter
		replayed    *obs.Counter
		truncations *obs.Counter
		compactions *obs.Counter
		appendMS    *obs.Histogram
	}
}

// Open opens (creating if needed) the journal in dir, replays any
// existing records into the in-memory replica, and truncates a torn tail.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, fileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	j := &Journal{
		dir:  dir,
		opts: opts,
		f:    f,
		live: make(map[Kind]map[string][]byte),
		done: make(chan struct{}),
	}
	met := opts.Metrics
	j.ins.appends = met.Counter("journal.appends")
	j.ins.records = met.Counter("journal.records")
	j.ins.fsyncs = met.Counter("journal.fsyncs")
	j.ins.replays = met.Counter("journal.replays")
	j.ins.replayed = met.Counter("journal.replayed_records")
	j.ins.truncations = met.Counter("journal.truncations")
	j.ins.compactions = met.Counter("journal.compactions")
	j.ins.appendMS = met.Histogram("journal.append_ms")
	met.Func("journal.size_bytes", func() float64 {
		j.mu.Lock()
		defer j.mu.Unlock()
		return float64(j.size)
	})
	met.Func("journal.live_records", func() float64 {
		j.mu.Lock()
		defer j.mu.Unlock()
		n := 0
		for _, m := range j.live {
			n += len(m)
		}
		return float64(n)
	})

	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	j.ins.replays.Inc()
	j.ins.replayed.Add(uint64(j.replayed))
	if j.truncated > 0 {
		j.ins.truncations.Inc()
		opts.Logger.Warnf("journal: truncated %d-byte torn tail", j.truncated)
	}
	if j.replayed > 0 {
		opts.Logger.Infof("journal: replayed %d records (%d bytes)", j.replayed, j.size)
	}

	if opts.Sync == SyncInterval {
		j.wg.Add(1)
		go j.flusher()
	}
	return j, nil
}

// replay scans the file, rebuilding the replica and truncating a corrupt
// or torn tail so subsequent appends start from a consistent point.
func (j *Journal) replay() error {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: seeking: %w", err)
	}
	var (
		offset int64
		hdr    [8]byte
	)
	for {
		if _, err := io.ReadFull(j.f, hdr[:]); err != nil {
			break // clean EOF or short header: tail ends here
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length == 0 || length > 64<<20 {
			break // implausible length: corrupt tail
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(j.f, body); err != nil {
			break // torn batch
		}
		if crc32.ChecksumIEEE(body) != sum {
			break // corrupt batch
		}
		var recs []Record
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&recs); err != nil {
			break // undecodable batch
		}
		for _, r := range recs {
			j.applyLocked(r)
			j.replayed++
		}
		offset += int64(len(hdr)) + int64(length)
	}
	end, err := j.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("journal: seeking end: %w", err)
	}
	if end > offset {
		j.truncated = end - offset
		if err := j.f.Truncate(offset); err != nil {
			return fmt.Errorf("journal: truncating torn tail: %w", err)
		}
		if _, err := j.f.Seek(offset, io.SeekStart); err != nil {
			return fmt.Errorf("journal: seeking: %w", err)
		}
	}
	j.size = offset
	return nil
}

// applyLocked folds one record into the replica.
func (j *Journal) applyLocked(r Record) {
	m := j.live[r.Kind]
	if r.Tombstone {
		delete(m, r.Key)
		return
	}
	if m == nil {
		m = make(map[string][]byte)
		j.live[r.Kind] = m
	}
	m[r.Key] = r.Data
}

// Put appends a single live record.
func (j *Journal) Put(kind Kind, key string, data []byte) error {
	return j.Append(Record{Kind: kind, Key: key, Data: data})
}

// Delete appends a tombstone for (kind, key).
func (j *Journal) Delete(kind Kind, key string) error {
	return j.Append(Record{Kind: kind, Key: key, Tombstone: true})
}

// Append atomically appends a batch of records: after a crash, replay
// sees either all of them or none.
func (j *Journal) Append(recs ...Record) error {
	if j == nil || len(recs) == 0 {
		return nil
	}
	start := time.Now()
	for i := range recs {
		recs[i].When = start
	}
	body, err := encodeBatch(recs)
	if err != nil {
		return err
	}
	frame := make([]byte, 8+len(body))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: appending: %w", err)
	}
	j.size += int64(len(frame))
	for _, r := range recs {
		j.applyLocked(r)
	}
	j.dirty = true
	if j.opts.Sync == SyncAlways {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
		j.dirty = false
		j.ins.fsyncs.Inc()
	}
	j.ins.appends.Inc()
	j.ins.records.Add(uint64(len(recs)))
	j.ins.appendMS.ObserveDuration(time.Since(start))
	return nil
}

func encodeBatch(recs []Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return nil, fmt.Errorf("journal: encoding batch: %w", err)
	}
	return buf.Bytes(), nil
}

// Get returns the live record data for (kind, key).
func (j *Journal) Get(kind Kind, key string) ([]byte, bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	data, ok := j.live[kind][key]
	return data, ok
}

// Entries returns a copy of all live records of the given kind.
func (j *Journal) Entries(kind Kind) map[string][]byte {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string][]byte, len(j.live[kind]))
	for k, v := range j.live[kind] {
		out[k] = v
	}
	return out
}

// Replayed returns how many records the opening replay recovered.
func (j *Journal) Replayed() int {
	if j == nil {
		return 0
	}
	return j.replayed
}

// Sync forces dirty appends to disk.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.closed || !j.dirty {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.dirty = false
	j.ins.fsyncs.Inc()
	return nil
}

// Compact rewrites the journal to contain exactly the live replica,
// reclaiming space from superseded records and tombstones. The rewrite
// goes through a temp file and an atomic rename.
func (j *Journal) Compact() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	var recs []Record
	now := time.Now()
	for kind, m := range j.live {
		for key, data := range m {
			recs = append(recs, Record{Kind: kind, Key: key, Data: data, When: now})
		}
	}
	path := filepath.Join(j.dir, fileName)
	tmp := path + ".compact"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compacting: %w", err)
	}
	var size int64
	if len(recs) > 0 {
		body, err := encodeBatch(recs)
		if err != nil {
			nf.Close()
			os.Remove(tmp)
			return err
		}
		frame := make([]byte, 8+len(body))
		binary.BigEndian.PutUint32(frame[0:4], uint32(len(body)))
		binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
		copy(frame[8:], body)
		if _, err := nf.Write(frame); err != nil {
			nf.Close()
			os.Remove(tmp)
			return fmt.Errorf("journal: compacting: %w", err)
		}
		size = int64(len(frame))
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: compacting: %w", err)
	}
	old := j.f
	j.f = nf
	j.size = size
	j.dirty = false
	old.Close()
	j.ins.compactions.Inc()
	j.opts.Logger.Infof("journal: compacted to %d records (%d bytes)", len(recs), size)
	return nil
}

// flusher services SyncInterval.
func (j *Journal) flusher() {
	defer j.wg.Done()
	tick := time.NewTicker(j.opts.SyncEvery)
	defer tick.Stop()
	for {
		select {
		case <-j.done:
			return
		case <-tick.C:
			j.mu.Lock()
			j.syncLocked()
			j.mu.Unlock()
		}
	}
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	err := j.syncLocked()
	j.closed = true
	close(j.done)
	cerr := j.f.Close()
	j.mu.Unlock()
	j.wg.Wait()
	if err != nil {
		return err
	}
	return cerr
}
