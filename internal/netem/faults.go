package netem

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault injection. Faults is a seedable, runtime-adjustable fault plan
// shared by everything that emulates a bad network: the TCP fault Proxy
// (transport-layer chaos), the Wrap conn wrapper (endpoint-side stalls and
// bandwidth caps), and the DropFn hook the RUDP control plane accepts
// (probabilistic datagram loss). One Faults value scripted by a test gives
// a single coherent fault schedule across both planes.
//
// Fault semantics respect what each layer can survive: datagram paths get
// probabilistic loss (RUDP retransmits); byte-stream paths get abrupt
// resets, directional write stalls (one-way partitions), and bandwidth
// caps — never silent byte removal, which no stream protocol distinguishes
// from corruption.

// Direction names one flow direction through a Proxy or Wrap: Up is
// client-to-server (the dial direction), Down is server-to-client.
type Direction int

const (
	Up Direction = iota
	Down
)

// Faults is a shared fault plan. The zero value is unusable; use NewFaults.
// All knobs may be flipped concurrently with traffic.
type Faults struct {
	mu   sync.Mutex
	cond *sync.Cond
	rng  *rand.Rand
	// lossP is the probabilistic datagram drop rate in [0,1].
	lossP float64
	// bandwidth caps paced writes in bytes/second; 0 means unlimited.
	bandwidth float64
	nextFree  time.Time
	// stall[dir] holds that direction's writes (a one-way partition when
	// only one is set, a full partition when both are).
	stall [2]bool
}

// NewFaults returns a fault plan whose probabilistic decisions come from
// the given seed, so a chaos schedule replays identically.
func NewFaults(seed int64) *Faults {
	f := &Faults{rng: rand.New(rand.NewSource(seed))}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// SetLoss sets the probabilistic datagram drop rate in [0,1].
func (f *Faults) SetLoss(p float64) {
	f.mu.Lock()
	f.lossP = p
	f.mu.Unlock()
}

// SetBandwidth caps paced traffic at bytesPerSec; 0 removes the cap.
func (f *Faults) SetBandwidth(bytesPerSec float64) {
	f.mu.Lock()
	f.bandwidth = bytesPerSec
	f.nextFree = time.Time{}
	f.mu.Unlock()
}

// Stall holds or releases one direction's writes. Stalled bytes are
// delayed, never lost: writers block until the stall lifts.
func (f *Faults) Stall(dir Direction, stalled bool) {
	f.mu.Lock()
	f.stall[dir] = stalled
	f.mu.Unlock()
	f.cond.Broadcast()
}

// StallAll holds or releases both directions (a full partition).
func (f *Faults) StallAll(stalled bool) {
	f.mu.Lock()
	f.stall[Up] = stalled
	f.stall[Down] = stalled
	f.mu.Unlock()
	f.cond.Broadcast()
}

// drop makes one seeded loss decision.
func (f *Faults) drop() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lossP > 0 && f.rng.Float64() < f.lossP
}

// DropFn returns a drop decision function in the shape the RUDP control
// plane's Config.DropFn / core Config.ControlDropFn expect: it reports
// whether to silently discard one outgoing datagram.
func (f *Faults) DropFn() func([]byte) bool {
	return func([]byte) bool { return f.drop() }
}

// waitClear blocks while dir is stalled.
func (f *Faults) waitClear(dir Direction) {
	f.mu.Lock()
	for f.stall[dir] {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// pace delays the caller according to the bandwidth cap, attributing n
// bytes to the shared budget.
func (f *Faults) pace(n int) {
	f.mu.Lock()
	bw := f.bandwidth
	if bw <= 0 {
		f.mu.Unlock()
		return
	}
	now := time.Now()
	if f.nextFree.Before(now) {
		f.nextFree = now
	}
	wait := f.nextFree.Sub(now)
	f.nextFree = f.nextFree.Add(time.Duration(float64(n) / bw * float64(time.Second)))
	f.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// faultConn applies a Faults plan to one endpoint connection's writes.
type faultConn struct {
	net.Conn
	f   *Faults
	dir Direction
}

// Wrap returns conn with its writes subject to the plan's dir-direction
// stalls and bandwidth cap (shape for transport.Config.WrapData /
// core.Config.WrapData). Reads pass through untouched; CloseWrite is
// preserved when the underlying connection supports it.
func (f *Faults) Wrap(conn net.Conn, dir Direction) net.Conn {
	return &faultConn{Conn: conn, f: f, dir: dir}
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.f.waitClear(c.dir)
	c.f.pace(len(p))
	return c.Conn.Write(p)
}

func (c *faultConn) CloseWrite() error {
	if cw, ok := c.Conn.(closeWriter); ok {
		return cw.CloseWrite()
	}
	return nil
}
