package netem

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault injection. Faults is a seedable, runtime-adjustable fault plan
// shared by everything that emulates a bad network: the TCP fault Proxy
// (transport-layer chaos), the Wrap conn wrapper (endpoint-side stalls and
// bandwidth caps), and the DropFn hook the RUDP control plane accepts
// (probabilistic datagram loss). One Faults value scripted by a test gives
// a single coherent fault schedule across both planes.
//
// Fault semantics respect what each layer can survive: datagram paths get
// probabilistic loss (RUDP retransmits); byte-stream paths get abrupt
// resets, directional write stalls (one-way partitions), seeded
// per-direction latency/jitter, and bandwidth caps — never silent byte
// removal, which no stream protocol distinguishes from corruption. WAN
// latency on stream paths is modelled as an ordered delay queue (see
// DelayFunc), so delayed bytes arrive late but intact, exactly like
// propagation delay on a real path.

// Direction names one flow direction through a Proxy or Wrap: Up is
// client-to-server (the dial direction), Down is server-to-client.
type Direction int

const (
	Up Direction = iota
	Down
)

// Faults is a shared fault plan. The zero value is unusable; use NewFaults.
// All knobs may be flipped concurrently with traffic.
type Faults struct {
	mu   sync.Mutex
	cond *sync.Cond
	rng  *rand.Rand
	// lossP is the probabilistic datagram drop rate in [0,1].
	lossP float64
	// bandwidth caps paced writes in bytes/second; 0 means unlimited.
	bandwidth float64
	nextFree  time.Time
	// bwDir caps each direction independently (asymmetric links, e.g. a
	// cell uplink); 0 means that direction is unlimited. Both the shared
	// and the per-direction cap apply when both are set.
	bwDir       [2]float64
	nextFreeDir [2]time.Time
	// delay/jitter model one-way propagation latency per direction. Each
	// write's delay is delay[dir] + uniform(-jitter[dir], +jitter[dir]),
	// clamped at zero, drawn from that direction's own seeded stream so the
	// schedule is deterministic and independent of loss decisions.
	delay    [2]time.Duration
	jitter   [2]time.Duration
	delayRng [2]*rand.Rand
	// stall[dir] holds that direction's writes (a one-way partition when
	// only one is set, a full partition when both are).
	stall [2]bool
}

// NewFaults returns a fault plan whose probabilistic decisions come from
// the given seed, so a chaos schedule replays identically. The loss stream
// and each direction's jitter stream are derived from the seed but
// independent: adding loss never perturbs the delay schedule.
func NewFaults(seed int64) *Faults {
	f := &Faults{rng: rand.New(rand.NewSource(seed))}
	f.delayRng[Up] = rand.New(rand.NewSource(seed ^ 0x55AA55AA))
	f.delayRng[Down] = rand.New(rand.NewSource(seed ^ 0x33CC33CC))
	f.cond = sync.NewCond(&f.mu)
	return f
}

// SetLoss sets the probabilistic datagram drop rate in [0,1].
func (f *Faults) SetLoss(p float64) {
	f.mu.Lock()
	f.lossP = p
	f.mu.Unlock()
}

// SetBandwidth caps paced traffic at bytesPerSec; 0 removes the cap.
func (f *Faults) SetBandwidth(bytesPerSec float64) {
	f.mu.Lock()
	f.bandwidth = bytesPerSec
	f.nextFree = time.Time{}
	f.mu.Unlock()
}

// SetBandwidthDir caps one direction's paced traffic at bytesPerSec
// independently of the shared cap; 0 removes that direction's cap.
func (f *Faults) SetBandwidthDir(dir Direction, bytesPerSec float64) {
	f.mu.Lock()
	f.bwDir[dir] = bytesPerSec
	f.nextFreeDir[dir] = time.Time{}
	f.mu.Unlock()
}

// SetDelay sets one direction's one-way propagation delay and jitter
// half-width. Zero for both removes latency emulation on that direction.
func (f *Faults) SetDelay(dir Direction, oneWay, jitter time.Duration) {
	f.mu.Lock()
	f.delay[dir] = oneWay
	f.jitter[dir] = jitter
	f.mu.Unlock()
}

// SetDelayAll sets both directions to the same one-way delay and jitter
// (a symmetric path with RTT 2×oneWay).
func (f *Faults) SetDelayAll(oneWay, jitter time.Duration) {
	f.SetDelay(Up, oneWay, jitter)
	f.SetDelay(Down, oneWay, jitter)
}

// SampleDelay draws the next delay for one write in dir from that
// direction's seeded jitter stream. With the same seed and the same call
// sequence the schedule replays identically. A direction with no delay
// configured samples zero without consuming randomness, so enabling delay
// mid-run doesn't shift an already-replayed schedule.
func (f *Faults) SampleDelay(dir Direction) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	base, jit := f.delay[dir], f.jitter[dir]
	if base <= 0 && jit <= 0 {
		return 0
	}
	d := base
	if jit > 0 {
		d += time.Duration((2*f.delayRng[dir].Float64() - 1) * float64(jit))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Stall holds or releases one direction's writes. Stalled bytes are
// delayed, never lost: writers block until the stall lifts.
func (f *Faults) Stall(dir Direction, stalled bool) {
	f.mu.Lock()
	f.stall[dir] = stalled
	f.mu.Unlock()
	f.cond.Broadcast()
}

// StallAll holds or releases both directions (a full partition).
func (f *Faults) StallAll(stalled bool) {
	f.mu.Lock()
	f.stall[Up] = stalled
	f.stall[Down] = stalled
	f.mu.Unlock()
	f.cond.Broadcast()
}

// drop makes one seeded loss decision.
func (f *Faults) drop() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lossP > 0 && f.rng.Float64() < f.lossP
}

// DropFn returns a drop decision function in the shape the RUDP control
// plane's Config.DropFn / core Config.ControlDropFn expect: it reports
// whether to silently discard one outgoing datagram.
func (f *Faults) DropFn() func([]byte) bool {
	return func([]byte) bool { return f.drop() }
}

// waitClear blocks while dir is stalled.
func (f *Faults) waitClear(dir Direction) {
	f.mu.Lock()
	for f.stall[dir] {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// pace delays the caller according to the bandwidth caps, attributing n
// bytes to the shared budget and to dir's own budget; the longer of the
// two waits applies (serialization happens at the slower token bucket).
func (f *Faults) pace(dir Direction, n int) {
	f.mu.Lock()
	now := time.Now()
	var wait time.Duration
	if bw := f.bandwidth; bw > 0 {
		if f.nextFree.Before(now) {
			f.nextFree = now
		}
		wait = f.nextFree.Sub(now)
		f.nextFree = f.nextFree.Add(time.Duration(float64(n) / bw * float64(time.Second)))
	}
	if bw := f.bwDir[dir]; bw > 0 {
		if f.nextFreeDir[dir].Before(now) {
			f.nextFreeDir[dir] = now
		}
		if w := f.nextFreeDir[dir].Sub(now); w > wait {
			wait = w
		}
		f.nextFreeDir[dir] = f.nextFreeDir[dir].Add(time.Duration(float64(n) / bw * float64(time.Second)))
	}
	f.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// faultConn applies a Faults plan to one endpoint connection's writes.
// Its inner conn is a DelayFunc wrapper sampling the plan's dir-direction
// latency, so the write path is stall → pace → delay queue: stalls and
// bandwidth model the sender's serialization (blocking the writer), the
// delay queue models propagation (bytes in flight, writer not blocked).
type faultConn struct {
	net.Conn
	f   *Faults
	dir Direction
}

// Wrap returns conn with its writes subject to the plan's dir-direction
// stalls, bandwidth caps, and latency/jitter (shape for
// transport.Config.WrapData / core.Config.WrapData). Reads pass through
// untouched; CloseWrite is preserved when the underlying connection
// supports it, flushing any delayed bytes first.
func (f *Faults) Wrap(conn net.Conn, dir Direction) net.Conn {
	inner := DelayFunc(conn, func() time.Duration { return f.SampleDelay(dir) })
	return &faultConn{Conn: inner, f: f, dir: dir}
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.f.waitClear(c.dir)
	c.f.pace(c.dir, len(p))
	return c.Conn.Write(p)
}

func (c *faultConn) CloseWrite() error {
	if cw, ok := c.Conn.(closeWriter); ok {
		return cw.CloseWrite()
	}
	return nil
}
