package netem

import (
	"fmt"
	"time"
)

// WAN profiles. A Profile names one point in the latency/jitter/loss/
// bandwidth space, calibrated to a class of real path (ROADMAP item 5).
// Applying a profile to a Faults plan configures every layer that shares
// the plan at once: the TCP Proxy and Wrap get the delay queue and
// bandwidth caps, the RUDP control plane's DropFn gets the loss rate.
//
// Loss is a datagram-plane knob only. The stream plane never sees silent
// byte removal (TCP retransmits below the emulation's abstraction level);
// what a lossy path does to a TCP stream — latency inflation, stalls,
// resets — is modelled by the delay/jitter/stall/reset knobs instead.

// Profile is a named WAN condition.
type Profile struct {
	Name string
	// OneWayUp/Down are the base one-way propagation delays per direction;
	// RTT is their sum.
	OneWayUp, OneWayDown time.Duration
	// Jitter is the half-width of the uniform per-write delay variation,
	// applied to both directions.
	Jitter time.Duration
	// Loss is the probabilistic datagram drop rate in [0,1], applied to
	// the control plane (RUDP retransmits around it).
	Loss float64
	// BandwidthUp/Down cap each direction in bytes/second; 0 is unlimited.
	BandwidthUp, BandwidthDown float64
}

// RTT returns the profile's base round-trip time.
func (p Profile) RTT() time.Duration { return p.OneWayUp + p.OneWayDown }

// Apply configures f with the profile's delay, jitter, loss, and
// bandwidth. The plan's seed (and thus its jitter schedule) is untouched.
func (p Profile) Apply(f *Faults) {
	f.SetDelay(Up, p.OneWayUp, p.Jitter)
	f.SetDelay(Down, p.OneWayDown, p.Jitter)
	f.SetLoss(p.Loss)
	f.SetBandwidthDir(Up, p.BandwidthUp)
	f.SetBandwidthDir(Down, p.BandwidthDown)
}

// String renders the profile for experiment tables.
func (p Profile) String() string {
	return fmt.Sprintf("%s(rtt=%s jitter=%s loss=%.1f%%)", p.Name, p.RTT(), p.Jitter, p.Loss*100)
}

// The named matrix. RTTs land on the classes the issue calls out: LAN
// (sub-ms), metro (~5 ms), continental (~80 ms), intercontinental
// (~250 ms + 1% loss), lossy-cell (~150 ms, 3% loss, heavy jitter,
// asymmetric bandwidth).
var (
	// ProfileLAN is the paper's own regime: one switch, sub-millisecond.
	ProfileLAN = Profile{Name: "lan", OneWayUp: 100 * time.Microsecond, OneWayDown: 100 * time.Microsecond}

	// ProfileMetro is a same-city path: ~5 ms RTT, slight jitter.
	ProfileMetro = Profile{
		Name: "metro", OneWayUp: 2500 * time.Microsecond, OneWayDown: 2500 * time.Microsecond,
		Jitter: 500 * time.Microsecond,
	}

	// ProfileContinental is a cross-country path: ~80 ms RTT, mild jitter,
	// occasional datagram loss.
	ProfileContinental = Profile{
		Name: "continental", OneWayUp: 40 * time.Millisecond, OneWayDown: 40 * time.Millisecond,
		Jitter: 3 * time.Millisecond, Loss: 0.001,
	}

	// ProfileIntercontinental is a trans-oceanic path: ~250 ms RTT with 1%
	// datagram loss.
	ProfileIntercontinental = Profile{
		Name: "intercontinental", OneWayUp: 125 * time.Millisecond, OneWayDown: 125 * time.Millisecond,
		Jitter: 8 * time.Millisecond, Loss: 0.01,
	}

	// ProfileLossyCell is a congested cellular link: ~150 ms RTT, heavy
	// jitter, 3% datagram loss, and asymmetric bandwidth (slow uplink).
	ProfileLossyCell = Profile{
		Name: "lossy-cell", OneWayUp: 75 * time.Millisecond, OneWayDown: 75 * time.Millisecond,
		Jitter: 25 * time.Millisecond, Loss: 0.03,
		BandwidthUp: 1.5e6, BandwidthDown: 6e6,
	}
)

// WANProfiles returns the full matrix in increasing-severity order.
func WANProfiles() []Profile {
	return []Profile{ProfileLAN, ProfileMetro, ProfileContinental, ProfileIntercontinental, ProfileLossyCell}
}

// ProfileNamed looks a profile up by name.
func ProfileNamed(name string) (Profile, bool) {
	for _, p := range WANProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
