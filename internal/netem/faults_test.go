package netem

import (
	"bytes"
	"io"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestDropFnSeededDeterminism(t *testing.T) {
	a, b := NewFaults(42), NewFaults(42)
	a.SetLoss(0.3)
	b.SetLoss(0.3)
	da, db := a.DropFn(), b.DropFn()
	drops := 0
	for i := 0; i < 1000; i++ {
		x, y := da(nil), db(nil)
		if x != y {
			t.Fatalf("decision %d diverged between same-seed plans", i)
		}
		if x {
			drops++
		}
	}
	if drops < 200 || drops > 400 {
		t.Fatalf("%d/1000 drops at p=0.3; seeding or probability broken", drops)
	}
	// Zero loss never drops.
	a.SetLoss(0)
	for i := 0; i < 100; i++ {
		if da(nil) {
			t.Fatal("dropped at loss 0")
		}
	}
}

// TestLossRateMatchesKnob sweeps the loss model at an environment-chosen
// operating point: NETEM_SEED and NETEM_LOSS (wired through `make test`)
// pick the plan, and the observed drop rate over a large sample must sit
// within a few points of the configured probability.
func TestLossRateMatchesKnob(t *testing.T) {
	seed := int64(42)
	if v := os.Getenv("NETEM_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("NETEM_SEED = %q: %v", v, err)
		}
		seed = n
	}
	loss := 0.3
	if v := os.Getenv("NETEM_LOSS"); v != "" {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 || p > 1 {
			t.Fatalf("NETEM_LOSS = %q: want a probability in [0,1] (%v)", v, err)
		}
		loss = p
	}
	f := NewFaults(seed)
	f.SetLoss(loss)
	drop := f.DropFn()
	const samples = 20_000
	drops := 0
	for i := 0; i < samples; i++ {
		if drop(nil) {
			drops++
		}
	}
	got := float64(drops) / samples
	if got < loss-0.03 || got > loss+0.03 {
		t.Fatalf("seed %d loss %.2f: observed drop rate %.4f", seed, loss, got)
	}
	t.Logf("seed %d loss %.2f: observed %.4f over %d samples", seed, loss, got, samples)
}

// echoServer accepts one-shot echo connections for proxy tests.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestProxyPassThrough(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), NewFaults(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := bytes.Repeat([]byte("chaos"), 10_000)
	go conn.Write(payload)
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted through clean proxy")
	}
	if p.FlowCount() != 1 {
		t.Fatalf("FlowCount = %d, want 1", p.FlowCount())
	}
}

func TestProxyResetAllBreaksFlows(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), NewFaults(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conns := make([]net.Conn, 3)
	for i := range conns {
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		// Prove each flow is live before the reset.
		if _, err := c.Write([]byte("hi")); err != nil {
			t.Fatal(err)
		}
		b := make([]byte, 2)
		if _, err := io.ReadFull(c, b); err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	if n := p.ResetAll(); n != 3 {
		t.Fatalf("ResetAll killed %d flows, want 3", n)
	}
	if p.Resets() != 3 {
		t.Fatalf("Resets() = %d, want 3", p.Resets())
	}
	for i, c := range conns {
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatalf("conn %d survived ResetAll", i)
		}
	}
	// The proxy still accepts new flows after a reset.
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 2)
	if _, err := io.ReadFull(c, b); err != nil {
		t.Fatalf("echo after reset: %v", err)
	}
}

func TestProxyOneWayPartition(t *testing.T) {
	ln := echoServer(t)
	f := NewFaults(1)
	p, err := NewProxy(ln.Addr().String(), f)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Stall the client-to-server direction: writes vanish into the stall
	// (delayed, not lost) and no echo comes back while it holds.
	f.Stall(Up, true)
	if _, err := conn.Write([]byte("delayed")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := conn.Read(make([]byte, 8)); err == nil {
		t.Fatal("bytes crossed a stalled direction")
	}
	// Lifting the stall delivers the held bytes — nothing was dropped.
	f.Stall(Up, false)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got := make([]byte, 7)
	if _, err := io.ReadFull(conn, got); err != nil || string(got) != "delayed" {
		t.Fatalf("post-stall read %q, %v", got, err)
	}
}

func TestBandwidthCapPaces(t *testing.T) {
	ln := echoServer(t)
	f := NewFaults(1)
	f.SetBandwidth(256 << 10) // 256 KiB/s
	p, err := NewProxy(ln.Addr().String(), f)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 128<<10) // 128 KiB at 256 KiB/s: >= ~250ms one way
	start := time.Now()
	go conn.Write(payload)
	if _, err := io.ReadFull(conn, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	// Both directions cross the shared budget: 256 KiB total through a
	// 256 KiB/s cap is at least ~1s minus scheduling slop.
	if elapsed := time.Since(start); elapsed < 500*time.Millisecond {
		t.Fatalf("128 KiB echoed in %v through a 256 KiB/s cap", elapsed)
	}
}

func TestWrapStallsAndPreservesCloseWrite(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	f := NewFaults(1)
	wrapped := f.Wrap(client, Up)

	f.Stall(Up, true)
	wrote := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrapped.Write([]byte("x"))
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("write crossed a stalled wrapper")
	case <-time.After(100 * time.Millisecond):
	}
	go server.Read(make([]byte, 1))
	f.Stall(Up, false)
	select {
	case <-wrote:
	case <-time.After(5 * time.Second):
		t.Fatal("write never completed after stall lifted")
	}
	wg.Wait()

	// CloseWrite on a wrapper over a conn without half-close is a no-op,
	// not a panic.
	if cw, ok := wrapped.(interface{ CloseWrite() error }); !ok {
		t.Fatal("wrapper lost CloseWrite")
	} else if err := cw.CloseWrite(); err != nil {
		t.Fatal(err)
	}
}
