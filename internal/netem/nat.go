package netem

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// NAT models an address-restricted NAT boundary for outbound dials: a host
// behind the NAT can only reach addresses on its allow list (in practice,
// a public relay), and every other dial fails the way a filtered path
// does — an immediate refusal here, standing in for the real world's
// silent timeout. Wrapping a transport's dial function with WrapDial
// makes two hosts mutually un-dialable while leaving their outbound
// connections to a relay intact, which is exactly the topology the relay
// fallback exists for.

// ErrNATBlocked reports a dial the NAT model refused.
var ErrNATBlocked = errors.New("netem: dial blocked by NAT model")

// DialFn is the dial shape transport.Config.Dial / core.Config.DialData
// use.
type DialFn func(addr string, timeout time.Duration) (net.Conn, error)

// NAT is a runtime-adjustable allow list. The zero value blocks
// everything; Allow punches holes.
type NAT struct {
	mu      sync.Mutex
	allowed map[string]bool
}

// NewNAT returns a NAT model that blocks every dial until Allow is called.
func NewNAT() *NAT { return &NAT{allowed: make(map[string]bool)} }

// Allow permits outbound dials to addr.
func (n *NAT) Allow(addr string) {
	n.mu.Lock()
	n.allowed[addr] = true
	n.mu.Unlock()
}

// Block revokes a previously allowed addr.
func (n *NAT) Block(addr string) {
	n.mu.Lock()
	delete(n.allowed, addr)
	n.mu.Unlock()
}

// Allowed reports whether addr is dialable through the NAT.
func (n *NAT) Allowed(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.allowed[addr]
}

// WrapDial returns a dial function that refuses addresses outside the
// allow list and delegates the rest to dial.
func (n *NAT) WrapDial(dial DialFn) DialFn {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		if !n.Allowed(addr) {
			return nil, fmt.Errorf("%w: %s", ErrNATBlocked, addr)
		}
		return dial(addr, timeout)
	}
}
