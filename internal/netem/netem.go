// Package netem provides network emulation for experiments: wrapping a
// connection so every write is delivered after a configurable one-way
// delay. Wrapping both endpoints of a loopback connection with delay d
// emulates a network with RTT 2d, which lets the latency experiments run
// in the paper's absolute regime (their Fast Ethernet testbed) instead of
// loopback's microseconds.
package netem

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrClosed reports a write on a closed delayed connection.
var ErrClosed = errors.New("netem: connection closed")

// closeWriter is the half-close capability the suspend drain needs.
type closeWriter interface {
	CloseWrite() error
}

// delayed is one queued write.
type delayed struct {
	due  time.Time
	data []byte
	// closeWrite marks the end-of-stream marker instead of data.
	closeWrite bool
}

// Conn delays every write by a sampled duration while passing reads
// through. Writes retain their order: a short delay sampled after a long
// one still delivers after it (FIFO queue), which is how jitter on a
// single TCP path behaves — reordering happens across paths, not within
// one. Close and CloseWrite flush queued writes first, so no bytes are
// lost to the emulation itself.
type Conn struct {
	net.Conn
	sample func() time.Duration

	mu     sync.Mutex
	queue  []delayed
	kick   chan struct{}
	werr   error
	closed bool
	// drained is signalled whenever the queue empties.
	drained *sync.Cond

	wg sync.WaitGroup
}

// Delay wraps conn so its writes are delivered after d. A non-positive d
// returns conn unchanged.
func Delay(conn net.Conn, d time.Duration) net.Conn {
	if d <= 0 {
		return conn
	}
	return DelayFunc(conn, func() time.Duration { return d })
}

// DelayFunc wraps conn so each write is delivered after a per-write delay
// drawn from sample (jittered links sample a seeded distribution). A zero
// sample delivers on the next pump pass, still in order, so a wrapper
// whose plan has no delay configured stays effectively transparent.
func DelayFunc(conn net.Conn, sample func() time.Duration) *Conn {
	c := &Conn{Conn: conn, sample: sample, kick: make(chan struct{}, 1)}
	c.drained = sync.NewCond(&c.mu)
	c.wg.Add(1)
	go c.pump()
	return c
}

// Write queues p for delivery after the sampled delay.
func (c *Conn) Write(p []byte) (int, error) {
	d := c.sample()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	if c.werr != nil {
		return 0, c.werr
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	c.queue = append(c.queue, delayed{due: time.Now().Add(d), data: cp})
	select {
	case c.kick <- struct{}{}:
	default:
	}
	return len(p), nil
}

// CloseWrite flushes queued writes (after their delays) and then
// half-closes the underlying connection.
func (c *Conn) CloseWrite() error {
	d := c.sample()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.queue = append(c.queue, delayed{due: time.Now().Add(d), closeWrite: true})
	select {
	case c.kick <- struct{}{}:
	default:
	}
	c.mu.Unlock()
	return nil
}

// Close flushes queued writes, then closes the underlying connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	// Wait for the queue to drain (bounded by delay × queue length, which
	// the pump works through on its own schedule).
	for len(c.queue) > 0 && c.werr == nil {
		c.drained.Wait()
	}
	c.mu.Unlock()
	err := c.Conn.Close()
	select {
	case c.kick <- struct{}{}:
	default:
	}
	c.wg.Wait()
	return err
}

// pump delivers queued writes at their due times, in order.
func (c *Conn) pump() {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		for len(c.queue) == 0 {
			if c.closed {
				c.mu.Unlock()
				return
			}
			c.mu.Unlock()
			<-c.kick
			c.mu.Lock()
		}
		item := c.queue[0]
		c.mu.Unlock()

		if wait := time.Until(item.due); wait > 0 {
			time.Sleep(wait)
		}

		var err error
		if item.closeWrite {
			if cw, ok := c.Conn.(closeWriter); ok {
				err = cw.CloseWrite()
			}
		} else {
			_, err = c.Conn.Write(item.data)
		}

		c.mu.Lock()
		c.queue = c.queue[1:]
		if err != nil && c.werr == nil {
			c.werr = err
		}
		if len(c.queue) == 0 {
			c.drained.Broadcast()
		}
		closedAndDone := c.closed && len(c.queue) == 0
		c.mu.Unlock()
		if closedAndDone {
			return
		}
	}
}
