package netem

import (
	"net"
	"testing"
	"time"
)

// Two same-seed plans must produce byte-identical delay schedules, and
// the schedules must be independent per direction and of loss decisions.
func TestDelayScheduleSeededDeterminism(t *testing.T) {
	a, b := NewFaults(7), NewFaults(7)
	for _, f := range []*Faults{a, b} {
		f.SetDelay(Up, 40*time.Millisecond, 10*time.Millisecond)
		f.SetDelay(Down, 80*time.Millisecond, 5*time.Millisecond)
	}
	// Burning loss decisions on one plan must not perturb its schedule.
	a.SetLoss(0.5)
	da := a.DropFn()
	for i := 0; i < 100; i++ {
		da(nil)
	}
	for i := 0; i < 500; i++ {
		if x, y := a.SampleDelay(Up), b.SampleDelay(Up); x != y {
			t.Fatalf("up sample %d diverged: %s vs %s", i, x, y)
		}
		if x, y := a.SampleDelay(Down), b.SampleDelay(Down); x != y {
			t.Fatalf("down sample %d diverged: %s vs %s", i, x, y)
		}
	}
	// A different seed gives a different schedule.
	c := NewFaults(8)
	c.SetDelay(Up, 40*time.Millisecond, 10*time.Millisecond)
	same := 0
	for i := 0; i < 100; i++ {
		if c.SampleDelay(Up) == b.SampleDelay(Up) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Samples must stay inside [base-jitter, base+jitter] (clamped at 0) and
// actually use the jitter range rather than collapsing to the base.
func TestDelaySamplesWithinJitterBounds(t *testing.T) {
	f := NewFaults(42)
	base, jit := 50*time.Millisecond, 20*time.Millisecond
	f.SetDelay(Up, base, jit)
	var lo, hi time.Duration = base, base
	for i := 0; i < 2000; i++ {
		d := f.SampleDelay(Up)
		if d < base-jit || d > base+jit {
			t.Fatalf("sample %s outside [%s, %s]", d, base-jit, base+jit)
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	// The uniform distribution should visit both halves of the range.
	if lo > base-jit/2 || hi < base+jit/2 {
		t.Fatalf("samples span only [%s, %s]; jitter not applied", lo, hi)
	}
	// Unconfigured direction samples zero; jitter larger than base clamps.
	if d := f.SampleDelay(Down); d != 0 {
		t.Fatalf("unconfigured direction sampled %s", d)
	}
	f.SetDelay(Down, time.Millisecond, 10*time.Millisecond)
	for i := 0; i < 200; i++ {
		if d := f.SampleDelay(Down); d < 0 {
			t.Fatalf("negative sample %s", d)
		}
	}
}

// End-to-end: traffic through a profile-configured pipe measures added
// latency consistent with the configured one-way delay and jitter bounds.
func TestWrapAddsConfiguredLatency(t *testing.T) {
	f := NewFaults(3)
	base, jit := 30*time.Millisecond, 5*time.Millisecond
	f.SetDelay(Up, base, jit)

	cli, srv := net.Pipe()
	defer srv.Close()
	wrapped := f.Wrap(cli, Up)
	defer wrapped.Close()

	type arrival struct {
		n  int
		at time.Time
	}
	got := make(chan arrival, 16)
	go func() {
		buf := make([]byte, 64)
		for {
			n, err := srv.Read(buf)
			if n > 0 {
				got <- arrival{n, time.Now()}
			}
			if err != nil {
				close(got)
				return
			}
		}
	}()

	const rounds = 10
	for i := 0; i < rounds; i++ {
		sent := time.Now()
		if _, err := wrapped.Write([]byte("ping")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		a := <-got
		elapsed := a.at.Sub(sent)
		// Lower bound is strict (the queue never delivers early beyond the
		// jitter floor); upper bound is generous for scheduler noise.
		if elapsed < base-jit {
			t.Fatalf("round %d delivered after %s, below floor %s", i, elapsed, base-jit)
		}
		if elapsed > base+jit+200*time.Millisecond {
			t.Fatalf("round %d delivered after %s, way past ceiling", i, elapsed)
		}
	}
}

// The profile matrix must cover the issue's named conditions and apply
// cleanly onto a plan.
func TestProfileMatrix(t *testing.T) {
	want := []string{"lan", "metro", "continental", "intercontinental", "lossy-cell"}
	ps := WANProfiles()
	if len(ps) != len(want) {
		t.Fatalf("matrix has %d profiles, want %d", len(ps), len(want))
	}
	for i, name := range want {
		if ps[i].Name != name {
			t.Fatalf("profile %d is %q, want %q", i, ps[i].Name, name)
		}
		p, ok := ProfileNamed(name)
		if !ok || p.Name != name {
			t.Fatalf("ProfileNamed(%q) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := ProfileNamed("dialup"); ok {
		t.Fatal("unknown profile resolved")
	}
	if rtt := ProfileIntercontinental.RTT(); rtt < 200*time.Millisecond {
		t.Fatalf("intercontinental RTT %s below 200ms", rtt)
	}
	f := NewFaults(1)
	ProfileLossyCell.Apply(f)
	if d := f.SampleDelay(Up); d <= 0 {
		t.Fatal("applied profile produced zero delay")
	}
	if !f.drop() && !f.drop() {
		// 3% loss: two decisions rarely both drop; just exercise the path.
		_ = f.DropFn()
	}
	f2 := NewFaults(1)
	ProfileLAN.Apply(f2)
	if ProfileLAN.Loss != 0 {
		t.Fatal("lan profile has loss")
	}
}

// NAT model: blocked by default, allow punches through, wrapped dials
// refuse everything else.
func TestNATWrapDial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	nat := NewNAT()
	dial := nat.WrapDial(func(addr string, timeout time.Duration) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, timeout)
	})
	if _, err := dial(ln.Addr().String(), time.Second); err == nil {
		t.Fatal("dial through default-deny NAT succeeded")
	}
	nat.Allow(ln.Addr().String())
	c, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("allowed dial failed: %v", err)
	}
	c.Close()
	nat.Block(ln.Addr().String())
	if _, err := dial(ln.Addr().String(), time.Second); err == nil {
		t.Fatal("dial after Block succeeded")
	}
}
