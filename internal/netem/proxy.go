package netem

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a TCP fault-injection proxy: it accepts connections on its own
// address and pipes each to a fixed target, with every byte crossing the
// shared Faults plan. Pointing a host's advertised data address at a Proxy
// puts the whole shared transport — including its resume redials — under
// the fault schedule, without the endpoints knowing.
type Proxy struct {
	f      *Faults
	ln     net.Listener
	target string
	resets atomic.Uint64

	mu     sync.Mutex
	flows  map[*flow]struct{}
	closed bool
	wg     sync.WaitGroup
}

// flow is one proxied connection pair.
type flow struct {
	client net.Conn
	server net.Conn
}

// abort kills both legs abruptly. SetLinger(0) makes the close a genuine
// TCP RST rather than an orderly FIN, which is the failure mode a crashed
// or NATed-out peer actually produces.
func (fl *flow) abort() {
	for _, c := range []net.Conn{fl.client, fl.server} {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		c.Close()
	}
}

// NewProxy returns a running proxy in front of target, injecting faults
// from plan f (which must not be nil).
func NewProxy(target string, f *Faults) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{f: f, ln: ln, target: target, flows: make(map[*flow]struct{})}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listening address; dial this instead of the
// target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// FlowCount returns the number of live proxied connections.
func (p *Proxy) FlowCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.flows)
}

// Resets returns how many connections ResetAll has aborted in total.
func (p *Proxy) Resets() uint64 { return p.resets.Load() }

// ResetAll aborts every live proxied connection with a TCP RST, returning
// how many it killed. New connections are still accepted — exactly the
// blip-then-recover regime session resumption must survive.
func (p *Proxy) ResetAll() int {
	p.mu.Lock()
	flows := make([]*flow, 0, len(p.flows))
	for fl := range p.flows {
		flows = append(flows, fl)
	}
	p.mu.Unlock()
	for _, fl := range flows {
		fl.abort()
	}
	p.resets.Add(uint64(len(flows)))
	return len(flows)
}

// Close stops accepting, aborts every flow, and waits for the pumps.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.ResetAll()
	p.wg.Wait()
	return err
}

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.handle(client)
	}
}

func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	fl := &flow{client: client, server: server}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		fl.abort()
		return
	}
	p.flows[fl] = struct{}{}
	p.mu.Unlock()

	// Each direction writes through its own ordered delay queue sampling
	// the plan's latency/jitter, so a WAN profile's propagation delay
	// applies mid-path without head-of-line blocking the reader. The raw
	// conns stay in the flow for abort's RST semantics.
	toServer := DelayFunc(server, func() time.Duration { return p.f.SampleDelay(Up) })
	toClient := DelayFunc(client, func() time.Duration { return p.f.SampleDelay(Down) })

	var pumps sync.WaitGroup
	pumps.Add(2)
	go p.pump(&pumps, fl, toServer, client, Up)
	go p.pump(&pumps, fl, toClient, server, Down)
	pumps.Wait()

	// Both pumps are done (flushed or aborted); closing the delay wrappers
	// drains their queues and stops their goroutines.
	toServer.Close()
	toClient.Close()

	p.mu.Lock()
	delete(p.flows, fl)
	p.mu.Unlock()
}

// pump copies one direction of a flow through the fault plan. A stalled
// direction holds bytes (delaying, never dropping); an error on either
// side aborts the whole flow, mirroring how a mid-path RST kills both
// directions at once.
func (p *Proxy) pump(wg *sync.WaitGroup, fl *flow, dst net.Conn, src net.Conn, dir Direction) {
	defer wg.Done()
	buf := make([]byte, 32<<10)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			p.f.waitClear(dir)
			p.f.pace(dir, n)
			if _, werr := dst.Write(buf[:n]); werr != nil {
				fl.abort()
				return
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				// Propagate the half-close; the other pump keeps running.
				if cw, ok := dst.(closeWriter); ok {
					cw.CloseWrite()
					return
				}
			}
			fl.abort()
			return
		}
	}
}
