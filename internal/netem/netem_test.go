package netem

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

func pipePair(t *testing.T, delay time.Duration) (a, b net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acc := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acc <- c
		}
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	accepted := <-acc
	a, b = Delay(dialed, delay), Delay(accepted, delay)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestDelayAddsLatency(t *testing.T) {
	const d = 30 * time.Millisecond
	a, b := pipePair(t, d)
	start := time.Now()
	if _, err := a.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("one-way latency %v, want >= %v", elapsed, d)
	}
	// Round trip takes ~2d.
	start = time.Now()
	if _, err := b.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(a, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("pin2")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*d {
		t.Fatalf("round trip %v, want >= %v", elapsed, 2*d)
	}
}

func TestDelayPreservesOrderAndContent(t *testing.T) {
	a, b := pipePair(t, 5*time.Millisecond)
	var want bytes.Buffer
	for i := 0; i < 50; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, 1+i%7)
		want.Write(chunk)
		if _, err := a.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, want.Len())
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("delayed stream reordered or corrupted")
	}
}

func TestCloseFlushesQueuedWrites(t *testing.T) {
	a, b := pipePair(t, 20*time.Millisecond)
	if _, err := a.Write([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatalf("queued write lost at close: %v", err)
	}
	if string(got) != "last words" {
		t.Fatalf("got %q", got)
	}
}

func TestCloseWriteDeliversEOFAfterData(t *testing.T) {
	a, b := pipePair(t, 15*time.Millisecond)
	if _, err := a.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	cw, ok := a.(interface{ CloseWrite() error })
	if !ok {
		t.Fatal("delayed conn lost CloseWrite")
	}
	if err := cw.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "bye" {
		t.Fatalf("got %q", data)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	a, _ := pipePair(t, 5*time.Millisecond)
	a.Close()
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroDelayPassthrough(t *testing.T) {
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	go func() {
		c, _ := ln.Accept()
		if c != nil {
			c.Close()
		}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if got := Delay(raw, 0); got != raw {
		t.Fatal("zero delay should return the original connection")
	}
}
