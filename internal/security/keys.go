package security

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
)

// This file is the transport key schedule for version-2 (negotiated)
// transport sessions. Version 1 fed the raw DH-derived session key into
// every consumer — the handshake authenticator, the resume tag, and (had
// it encrypted) the cipher — which is exactly the key-reuse hygiene
// problem HKDF labels exist to prevent. Version 2 extracts one PRK from
// the DH shared secret and expands it under a distinct label per purpose:
//
//	session auth   → HMAC key for handshake transcript tags and control
//	                 message authentication
//	resume tag     → HMAC key proving session possession on resume
//	seal dialer    → AEAD key for records the transport dialer sends
//	seal acceptor  → AEAD key for records the acceptor sends
//
// The seal keys additionally mix in the transcript hash of the handshake
// (or resume handshake) that installed the current connection, so every
// resumed generation runs fresh AEAD keys and nonce counters restart
// safely from zero — a replayed record from a prior generation can never
// authenticate.

// KeySize is the size of every derived key.
const KeySize = 32

// HKDF labels; distinct per purpose, versioned with the protocol.
const (
	hkdfSalt          = "naplet-transport-v2 key extract"
	labelSession      = "naplet-transport-v2 session auth"
	labelResumeTag    = "naplet-transport-v2 resume tag"
	labelSealDialer   = "naplet-transport-v2 seal dialer"
	labelSealAcceptor = "naplet-transport-v2 seal acceptor"
)

// KeySchedule derives every per-purpose transport key from one DH shared
// secret, bound to the transport's connection id.
type KeySchedule struct {
	prk    []byte
	connID []byte
}

// NewKeySchedule extracts the pseudorandom key from the raw DH shared
// secret under the fixed protocol salt (HKDF-Extract, RFC 5869 with
// HMAC-SHA256), bound to connID at expansion.
func NewKeySchedule(dhSecret, connID []byte) *KeySchedule {
	ext := hmac.New(sha256.New, []byte(hkdfSalt))
	ext.Write(dhSecret)
	return &KeySchedule{prk: ext.Sum(nil), connID: append([]byte(nil), connID...)}
}

// expand is HKDF-Expand for a single ≤32-byte block: info is the purpose
// label, the connection id, and any extra context.
func (ks *KeySchedule) expand(label string, context []byte) []byte {
	exp := hmac.New(sha256.New, ks.prk)
	exp.Write([]byte(label))
	exp.Write(ks.connID)
	exp.Write(context)
	exp.Write([]byte{1})
	return exp.Sum(nil)[:KeySize]
}

// SessionKey is the HMAC key authenticating the handshake transcript and
// control messages for this transport session.
func (ks *KeySchedule) SessionKey() []byte { return ks.expand(labelSession, nil) }

// ResumeTagKey is the HMAC key under which resume hellos prove possession
// of the session being resumed.
func (ks *KeySchedule) ResumeTagKey() []byte { return ks.expand(labelResumeTag, nil) }

// SealKeys derives the per-direction AEAD keys for one connection
// generation, bound to the transcript hash of the handshake that
// installed it. The dialer seals under dialerKey and opens under
// acceptorKey; the acceptor does the reverse. Roles are fixed by who
// originally dialed the transport and do not flip on resume.
func (ks *KeySchedule) SealKeys(transcriptHash []byte) (dialerKey, acceptorKey []byte) {
	return ks.expand(labelSealDialer, transcriptHash), ks.expand(labelSealAcceptor, transcriptHash)
}

// TranscriptHash digests a handshake transcript — the raw hello bytes a
// side sent and received — into the rekey context for SealKeys. Each side
// passes its own sent/received order, so the two ends hash different
// byte orders; Transcripts pins the order to the dialer's view to keep
// the derivation symmetric.
func TranscriptHash(dialerHello, acceptorHello []byte) []byte {
	h := sha256.New()
	var len4 [4]byte
	for _, part := range [][]byte{dialerHello, acceptorHello} {
		len4[0] = byte(len(part) >> 24)
		len4[1] = byte(len(part) >> 16)
		len4[2] = byte(len(part) >> 8)
		len4[3] = byte(len(part))
		h.Write(len4[:])
		h.Write(part)
	}
	return h.Sum(nil)
}

// CheckKeySize validates a derived key length before use.
func CheckKeySize(key []byte) error {
	if len(key) != KeySize {
		return fmt.Errorf("security: key must be %d bytes, got %d", KeySize, len(key))
	}
	return nil
}
