package security

import (
	"encoding/hex"
	"testing"
)

func TestKeyScheduleSeparation(t *testing.T) {
	secret := []byte("some dh shared secret bytes")
	connID := []byte("0123456789abcdef")
	ks := NewKeySchedule(secret, connID)
	th := TranscriptHash([]byte("hello a"), []byte("hello b"))
	dk, ak := ks.SealKeys(th)

	keys := map[string][]byte{
		"session":       ks.SessionKey(),
		"resume-tag":    ks.ResumeTagKey(),
		"seal-dialer":   dk,
		"seal-acceptor": ak,
	}
	for name, k := range keys {
		if len(k) != KeySize {
			t.Fatalf("%s key is %d bytes", name, len(k))
		}
	}
	// Pairwise distinct: no label collision may ever alias two purposes.
	for a, ka := range keys {
		for b, kb := range keys {
			if a != b && hex.EncodeToString(ka) == hex.EncodeToString(kb) {
				t.Fatalf("keys %q and %q are identical", a, b)
			}
		}
	}
	// None may equal the raw secret material.
	for name, k := range keys {
		if hex.EncodeToString(k) == hex.EncodeToString(secret) {
			t.Fatalf("%s key equals raw secret", name)
		}
	}
}

func TestKeyScheduleStable(t *testing.T) {
	// Golden values pin the derivation: a refactor that silently changes
	// any label, salt, or hash order breaks live resumed sessions, so it
	// must break this test first.
	secret := []byte("golden dh shared secret for key schedule stability")
	connID := []byte("0123456789abcdef")
	ks := NewKeySchedule(secret, connID)
	th := TranscriptHash([]byte("dialer hello"), []byte("acceptor hello"))
	dk, ak := ks.SealKeys(th)

	want := map[string]string{
		"session":    "f86ed23165e362b76790fcc493bd786dca27cb286c2ab5cba84ece5aad3236b8",
		"resume-tag": "4a5bc2d83dbfa8954e322cb81c91def26a792631f6143fc51484237298c091fb",
		"seal-dial":  "53bdab7e530b3daad95b27b6372eec72492807c992a15db14717c70f3eaf73cb",
		"seal-acc":   "38d9ed6553e11c7d1de6fed33cd85e3603d400876d7ccedf7c4fc94dc3b9e1df",
		"transcript": "36c6cfc6199173eb12b7a26d9c70e8c2a898f50b51f9a6aa6c5b2ae7c4c4b147",
	}
	got := map[string]string{
		"session":    hex.EncodeToString(ks.SessionKey()),
		"resume-tag": hex.EncodeToString(ks.ResumeTagKey()),
		"seal-dial":  hex.EncodeToString(dk),
		"seal-acc":   hex.EncodeToString(ak),
		"transcript": hex.EncodeToString(th),
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s key drifted:\n got %s\nwant %s", name, got[name], w)
		}
	}
}

func TestKeyScheduleBindings(t *testing.T) {
	secret := []byte("secret")
	ksA := NewKeySchedule(secret, []byte("conn-a"))
	ksB := NewKeySchedule(secret, []byte("conn-b"))
	if hex.EncodeToString(ksA.SessionKey()) == hex.EncodeToString(ksB.SessionKey()) {
		t.Fatal("session keys not bound to connection id")
	}
	// Seal keys must change with the transcript (rekey-on-resume).
	th1 := TranscriptHash([]byte("gen1 dial"), []byte("gen1 accept"))
	th2 := TranscriptHash([]byte("gen2 dial"), []byte("gen2 accept"))
	d1, a1 := ksA.SealKeys(th1)
	d2, a2 := ksA.SealKeys(th2)
	if hex.EncodeToString(d1) == hex.EncodeToString(d2) || hex.EncodeToString(a1) == hex.EncodeToString(a2) {
		t.Fatal("seal keys not bound to handshake transcript")
	}
	// Transcript hashing is length-prefixed: shifting bytes between the
	// two hellos must change the hash.
	if hex.EncodeToString(TranscriptHash([]byte("ab"), []byte("c"))) ==
		hex.EncodeToString(TranscriptHash([]byte("a"), []byte("bc"))) {
		t.Fatal("transcript hash not length-delimited")
	}
}
