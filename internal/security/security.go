// Package security implements the agent-oriented access control of the
// Naplet system (Section 3.3 of the paper, and the Naplet privilege
// delegation model it references).
//
// The model mirrors the paper's use of user-based (subject-based) access
// control: permissions attach to *who is executing* — a mobile agent subject
// versus the NapletSocket system subject — rather than to where code came
// from. Agent subjects are denied direct socket permissions; the only way an
// agent obtains a NapletSocket is through the controller proxy, which
// authenticates the agent and consults the policy store before allocating
// the socket on the agent's behalf.
package security

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"sync"
	"time"
)

// SubjectKind classifies the source of a request.
type SubjectKind uint8

const (
	// KindAgent is a mobile agent subject; denied raw socket permissions.
	KindAgent SubjectKind = iota + 1
	// KindSystem is the NapletSocket system itself (controller, redirector);
	// granted socket permissions.
	KindSystem
	// KindAdmin is a local administrator subject.
	KindAdmin
)

// String names the kind.
func (k SubjectKind) String() string {
	switch k {
	case KindAgent:
		return "agent"
	case KindSystem:
		return "system"
	case KindAdmin:
		return "admin"
	default:
		return fmt.Sprintf("SubjectKind(%d)", uint8(k))
	}
}

// Subject is the authenticated source of a request.
type Subject struct {
	Kind SubjectKind
	// Name is the agent id for KindAgent, or a role name otherwise.
	Name string
}

// String renders kind:name.
func (s Subject) String() string { return s.Kind.String() + ":" + s.Name }

// Action enumerates the access-controlled operations.
type Action string

// The access-controlled actions of the NapletSocket system.
const (
	// ActionRawSocket is direct creation of a TCP/UDP socket. Always denied
	// to agent subjects; the proxy service holds this permission.
	ActionRawSocket Action = "socket.raw"
	// ActionConnect is opening a NapletSocket to another agent via the
	// proxy.
	ActionConnect Action = "naplet.connect"
	// ActionListen is creating a NapletServerSocket via the proxy.
	ActionListen Action = "naplet.listen"
	// ActionMigrate is departing the host with live connections.
	ActionMigrate Action = "naplet.migrate"
)

// Permission pairs an action with the resource it targets. Resource is an
// agent id for connect ("which agent may I dial"), or "*".
type Permission struct {
	Action   Action
	Resource string
}

// Effect is a policy rule outcome.
type Effect uint8

const (
	// Allow grants the permission.
	Allow Effect = iota + 1
	// Deny refuses the permission; deny rules dominate allow rules.
	Deny
)

// Rule matches a subject and permission pattern. Empty fields and "*" act
// as wildcards.
type Rule struct {
	SubjectKind SubjectKind // 0 matches any kind
	SubjectName string      // "" or "*" matches any name
	Action      Action      // "" matches any action
	Resource    string      // "" or "*" matches any resource
	Effect      Effect
}

func (r Rule) matches(s Subject, p Permission) bool {
	if r.SubjectKind != 0 && r.SubjectKind != s.Kind {
		return false
	}
	if r.SubjectName != "" && r.SubjectName != "*" && r.SubjectName != s.Name {
		return false
	}
	if r.Action != "" && r.Action != p.Action {
		return false
	}
	if r.Resource != "" && r.Resource != "*" && r.Resource != p.Resource {
		return false
	}
	return true
}

// Decision records one access-control check for the audit log.
type Decision struct {
	When       time.Time
	Subject    Subject
	Permission Permission
	Allowed    bool
	Reason     string
}

// Policy decides whether a subject holds a permission.
type Policy interface {
	Grants(s Subject, p Permission) (bool, string)
}

// Store is a rule-based Policy with the paper's defaults baked in:
// system subjects hold all socket permissions, agent subjects hold none
// until explicitly granted NapletSocket-level permissions, and raw socket
// access is never grantable to agents.
type Store struct {
	mu    sync.RWMutex
	rules []Rule
}

// NewStore returns a Store holding the given additional rules.
func NewStore(rules ...Rule) *Store {
	s := &Store{}
	s.rules = append(s.rules, rules...)
	return s
}

// AddRule appends a rule to the store.
func (s *Store) AddRule(r Rule) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, r)
}

// Grants implements Policy. Evaluation order: the hard invariant (agents
// never get raw sockets), then explicit deny rules, then explicit allow
// rules, then kind defaults (system/admin allowed, agents denied).
func (s *Store) Grants(subj Subject, p Permission) (bool, string) {
	if subj.Kind == KindAgent && p.Action == ActionRawSocket {
		return false, "agents may never create raw sockets"
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, r := range s.rules {
		if r.Effect == Deny && r.matches(subj, p) {
			return false, "explicit deny rule"
		}
	}
	for _, r := range s.rules {
		if r.Effect == Allow && r.matches(subj, p) {
			return true, "explicit allow rule"
		}
	}
	switch subj.Kind {
	case KindSystem, KindAdmin:
		return true, "default allow for " + subj.Kind.String()
	default:
		return false, "default deny for agent subjects"
	}
}

// AllowAgentAll is a convenience rule set granting every agent the proxy
// level permissions (connect/listen/migrate) while keeping raw sockets
// system-only. It models the paper's experimental configuration, where all
// resident agents may use the NapletSocket service.
func AllowAgentAll() []Rule {
	return []Rule{
		{SubjectKind: KindAgent, Action: ActionConnect, Effect: Allow},
		{SubjectKind: KindAgent, Action: ActionListen, Effect: Allow},
		{SubjectKind: KindAgent, Action: ActionMigrate, Effect: Allow},
	}
}

// Errors returned by the guard.
var (
	// ErrAuthentication reports a bad or missing agent credential.
	ErrAuthentication = errors.New("security: authentication failed")
	// ErrDenied reports a policy denial.
	ErrDenied = errors.New("security: permission denied")
)

// CredentialSize is the byte length of an agent credential.
const CredentialSize = sha256.Size

// Guard authenticates agents and enforces policy for one host. Each host
// has its own secret; credentials are HMACs of the agent id under that
// secret, issued when an agent is launched on or docks at the host, and are
// therefore worthless on any other host.
type Guard struct {
	policy Policy
	secret []byte

	mu    sync.Mutex
	audit []Decision
	// maxAudit bounds the audit log.
	maxAudit int
}

// NewGuard creates a Guard with a fresh random host secret.
func NewGuard(policy Policy) (*Guard, error) {
	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		return nil, fmt.Errorf("security: generating host secret: %w", err)
	}
	return &Guard{policy: policy, secret: secret, maxAudit: 1024}, nil
}

// IssueCredential mints the credential for an agent resident on this host.
func (g *Guard) IssueCredential(agentID string) [CredentialSize]byte {
	m := hmac.New(sha256.New, g.secret)
	m.Write([]byte("naplet agent credential"))
	m.Write([]byte(agentID))
	var cred [CredentialSize]byte
	copy(cred[:], m.Sum(nil))
	return cred
}

// Authenticate verifies that cred is the credential this host issued for
// agentID.
func (g *Guard) Authenticate(agentID string, cred [CredentialSize]byte) error {
	want := g.IssueCredential(agentID)
	if subtle.ConstantTimeCompare(want[:], cred[:]) != 1 {
		return fmt.Errorf("%w: bad credential for agent %q", ErrAuthentication, agentID)
	}
	return nil
}

// Check authenticates the agent and verifies the permission, recording the
// decision in the audit log. A nil error means the operation may proceed.
func (g *Guard) Check(agentID string, cred [CredentialSize]byte, p Permission) error {
	subj := Subject{Kind: KindAgent, Name: agentID}
	if err := g.Authenticate(agentID, cred); err != nil {
		g.record(subj, p, false, "authentication failed")
		return err
	}
	allowed, reason := g.policy.Grants(subj, p)
	g.record(subj, p, allowed, reason)
	if !allowed {
		return fmt.Errorf("%w: %s lacks %s on %q (%s)", ErrDenied, subj, p.Action, p.Resource, reason)
	}
	return nil
}

// CheckSystem verifies a system-subject permission (no credential needed;
// system code runs in-process).
func (g *Guard) CheckSystem(p Permission) error {
	subj := Subject{Kind: KindSystem, Name: "napletsocket"}
	allowed, reason := g.policy.Grants(subj, p)
	g.record(subj, p, allowed, reason)
	if !allowed {
		return fmt.Errorf("%w: %s lacks %s (%s)", ErrDenied, subj, p.Action, reason)
	}
	return nil
}

func (g *Guard) record(s Subject, p Permission, allowed bool, reason string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.audit = append(g.audit, Decision{
		When: time.Now(), Subject: s, Permission: p, Allowed: allowed, Reason: reason,
	})
	if len(g.audit) > g.maxAudit {
		g.audit = g.audit[len(g.audit)-g.maxAudit:]
	}
}

// Audit returns a copy of the recorded decisions, oldest first.
func (g *Guard) Audit() []Decision {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Decision, len(g.audit))
	copy(out, g.audit)
	return out
}
