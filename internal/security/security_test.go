package security

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAgentNeverGetsRawSocket(t *testing.T) {
	// Even with an explicit allow-everything rule, raw sockets stay denied
	// to agents: the invariant dominates the rule set.
	store := NewStore(Rule{SubjectKind: KindAgent, Effect: Allow})
	ok, reason := store.Grants(Subject{Kind: KindAgent, Name: "a"}, Permission{Action: ActionRawSocket})
	if ok {
		t.Fatalf("agent granted raw socket (%s)", reason)
	}
}

func TestSystemDefaultAllow(t *testing.T) {
	store := NewStore()
	for _, act := range []Action{ActionRawSocket, ActionConnect, ActionListen} {
		ok, _ := store.Grants(Subject{Kind: KindSystem, Name: "napletsocket"}, Permission{Action: act})
		if !ok {
			t.Errorf("system denied %s", act)
		}
	}
}

func TestAgentDefaultDeny(t *testing.T) {
	store := NewStore()
	ok, _ := store.Grants(Subject{Kind: KindAgent, Name: "a"}, Permission{Action: ActionConnect, Resource: "b"})
	if ok {
		t.Fatal("agent allowed by default")
	}
}

func TestExplicitAllowAndDenyOrdering(t *testing.T) {
	store := NewStore(
		Rule{SubjectKind: KindAgent, Action: ActionConnect, Effect: Allow},
		Rule{SubjectKind: KindAgent, SubjectName: "evil", Action: ActionConnect, Effect: Deny},
	)
	if ok, _ := store.Grants(Subject{Kind: KindAgent, Name: "good"}, Permission{Action: ActionConnect, Resource: "b"}); !ok {
		t.Error("allowed agent denied")
	}
	if ok, _ := store.Grants(Subject{Kind: KindAgent, Name: "evil"}, Permission{Action: ActionConnect, Resource: "b"}); ok {
		t.Error("deny rule did not dominate allow rule")
	}
}

func TestResourceScopedRules(t *testing.T) {
	store := NewStore(
		Rule{SubjectKind: KindAgent, SubjectName: "a", Action: ActionConnect, Resource: "b", Effect: Allow},
	)
	if ok, _ := store.Grants(Subject{Kind: KindAgent, Name: "a"}, Permission{Action: ActionConnect, Resource: "b"}); !ok {
		t.Error("scoped allow failed")
	}
	if ok, _ := store.Grants(Subject{Kind: KindAgent, Name: "a"}, Permission{Action: ActionConnect, Resource: "c"}); ok {
		t.Error("allow leaked to other resource")
	}
	if ok, _ := store.Grants(Subject{Kind: KindAgent, Name: "x"}, Permission{Action: ActionConnect, Resource: "b"}); ok {
		t.Error("allow leaked to other subject")
	}
}

func TestAllowAgentAll(t *testing.T) {
	store := NewStore(AllowAgentAll()...)
	subj := Subject{Kind: KindAgent, Name: "a"}
	for _, act := range []Action{ActionConnect, ActionListen, ActionMigrate} {
		if ok, _ := store.Grants(subj, Permission{Action: act, Resource: "*"}); !ok {
			t.Errorf("AllowAgentAll did not grant %s", act)
		}
	}
	if ok, _ := store.Grants(subj, Permission{Action: ActionRawSocket}); ok {
		t.Error("AllowAgentAll granted raw sockets")
	}
}

func TestGuardCredentialLifecycle(t *testing.T) {
	g, err := NewGuard(NewStore(AllowAgentAll()...))
	if err != nil {
		t.Fatal(err)
	}
	cred := g.IssueCredential("agent-a")
	if err := g.Authenticate("agent-a", cred); err != nil {
		t.Fatalf("valid credential rejected: %v", err)
	}
	// Credential for one agent is useless for another.
	if err := g.Authenticate("agent-b", cred); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("cross-agent credential accepted: %v", err)
	}
	// Tampered credential fails.
	bad := cred
	bad[0] ^= 1
	if err := g.Authenticate("agent-a", bad); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("tampered credential accepted: %v", err)
	}
}

func TestCredentialsHostScoped(t *testing.T) {
	g1, _ := NewGuard(NewStore())
	g2, _ := NewGuard(NewStore())
	cred := g1.IssueCredential("agent-a")
	if err := g2.Authenticate("agent-a", cred); !errors.Is(err, ErrAuthentication) {
		t.Fatal("credential from host 1 accepted on host 2")
	}
}

func TestGuardCheck(t *testing.T) {
	g, err := NewGuard(NewStore(AllowAgentAll()...))
	if err != nil {
		t.Fatal(err)
	}
	cred := g.IssueCredential("agent-a")
	if err := g.Check("agent-a", cred, Permission{Action: ActionConnect, Resource: "agent-b"}); err != nil {
		t.Fatalf("allowed op denied: %v", err)
	}
	if err := g.Check("agent-a", cred, Permission{Action: ActionRawSocket}); !errors.Is(err, ErrDenied) {
		t.Fatalf("raw socket check: err = %v, want ErrDenied", err)
	}
	var zero [CredentialSize]byte
	if err := g.Check("agent-a", zero, Permission{Action: ActionConnect}); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("zero credential: err = %v, want ErrAuthentication", err)
	}
}

func TestGuardAudit(t *testing.T) {
	g, err := NewGuard(NewStore(AllowAgentAll()...))
	if err != nil {
		t.Fatal(err)
	}
	cred := g.IssueCredential("agent-a")
	g.Check("agent-a", cred, Permission{Action: ActionConnect, Resource: "agent-b"})
	g.Check("agent-a", cred, Permission{Action: ActionRawSocket})
	log := g.Audit()
	if len(log) != 2 {
		t.Fatalf("audit entries = %d, want 2", len(log))
	}
	if !log[0].Allowed || log[1].Allowed {
		t.Fatalf("audit outcomes = %v,%v want allow,deny", log[0].Allowed, log[1].Allowed)
	}
	if log[0].Subject.Name != "agent-a" {
		t.Errorf("audit subject = %v", log[0].Subject)
	}
}

func TestGuardAuditBounded(t *testing.T) {
	g, err := NewGuard(NewStore())
	if err != nil {
		t.Fatal(err)
	}
	g.maxAudit = 10
	cred := g.IssueCredential("a")
	for i := 0; i < 50; i++ {
		g.Check("a", cred, Permission{Action: ActionConnect})
	}
	if n := len(g.Audit()); n > 10 {
		t.Fatalf("audit grew to %d entries, cap 10", n)
	}
}

func TestCheckSystem(t *testing.T) {
	g, err := NewGuard(NewStore())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckSystem(Permission{Action: ActionRawSocket}); err != nil {
		t.Fatalf("system denied raw socket: %v", err)
	}
	g2, _ := NewGuard(NewStore(Rule{SubjectKind: KindSystem, Action: ActionRawSocket, Effect: Deny}))
	if err := g2.CheckSystem(Permission{Action: ActionRawSocket}); !errors.Is(err, ErrDenied) {
		t.Fatalf("explicit system deny ignored: %v", err)
	}
}

func TestCredentialUnforgeabilityProperty(t *testing.T) {
	g, err := NewGuard(NewStore())
	if err != nil {
		t.Fatal(err)
	}
	f := func(agentID string, forged [CredentialSize]byte) bool {
		real := g.IssueCredential(agentID)
		if forged == real {
			return true // astronomically unlikely; quick won't find it
		}
		return g.Authenticate(agentID, forged) != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubjectString(t *testing.T) {
	s := Subject{Kind: KindAgent, Name: "a1"}
	if s.String() != "agent:a1" {
		t.Errorf("String() = %q", s.String())
	}
}
