package security

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
)

// Sealed-record framing for the negotiated transport: when a version-2
// handshake agrees on a cipher suite, every mux frame payload on the wire
// is an AEAD-sealed record. The 13-byte mux header stays cleartext — the
// reader needs the type and length to frame the stream — but it is bound
// into the seal as associated data, so a tampered header fails
// authentication just like tampered ciphertext. The nonce is an implicit
// 64-bit counter per direction per connection generation: records are
// sealed and opened strictly in wire order on a TCP stream, both ends
// count, and nothing is transmitted. Resume installs fresh keys
// (KeySchedule.SealKeys with the new transcript) and restarts the
// counters, so a record captured from a dead connection can never be
// replayed into its successor.

// RecordOverhead is the bytes a sealed record adds to its plaintext (the
// AEAD tag). A transport negotiating MaxPayload must cap plaintext chunks
// at MaxPayload-RecordOverhead so sealed frames still honour the wire
// limit.
const RecordOverhead = 16

// nonceSize is the AES-GCM standard nonce length.
const nonceSize = 12

// ErrRecordAuth reports a record that failed AEAD authentication — a
// tampered, truncated, reordered, or replayed record. The transport must
// treat it as fatal for the connection.
var ErrRecordAuth = errors.New("security: record authentication failed")

// ErrNonceExhausted reports a direction that sealed 2^64-1 records; the
// connection must be rekeyed or closed rather than reuse a nonce.
var ErrNonceExhausted = errors.New("security: record nonce space exhausted")

func newAEAD(key []byte) (cipher.AEAD, error) {
	if err := CheckKeySize(key); err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	return aead, nil
}

// Sealer seals outbound records under one direction's AEAD key. Not safe
// for concurrent use: the caller must serialize Seal calls in wire order
// (the transport seals under its write lock, preserving the counter ==
// wire-order invariant the implicit nonce depends on).
type Sealer struct {
	aead    cipher.AEAD
	counter uint64
}

// NewSealer builds a sealer over a 32-byte AES-256-GCM key with its nonce
// counter at zero.
func NewSealer(key []byte) (*Sealer, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	return &Sealer{aead: aead}, nil
}

// Seal appends the sealed record for plaintext to dst and returns the
// extended slice. aad is authenticated but not encrypted (the mux frame
// header). The sealed length is len(plaintext)+RecordOverhead.
func (s *Sealer) Seal(dst, plaintext, aad []byte) ([]byte, error) {
	if s.counter == ^uint64(0) {
		return nil, ErrNonceExhausted
	}
	var nonce [nonceSize]byte
	binary.BigEndian.PutUint64(nonce[4:], s.counter)
	s.counter++
	return s.aead.Seal(dst, nonce[:], plaintext, aad), nil
}

// Opener opens inbound records sealed by the peer's Sealer. Not safe for
// concurrent use: the transport's single read loop opens records in wire
// order.
type Opener struct {
	aead    cipher.AEAD
	counter uint64
}

// NewOpener builds an opener over a 32-byte AES-256-GCM key with its
// nonce counter at zero.
func NewOpener(key []byte) (*Opener, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	return &Opener{aead: aead}, nil
}

// Open authenticates and decrypts one record, appending the plaintext to
// dst. Opening in place (dst = record[:0]) is permitted, letting the
// transport decrypt into the pooled buffer the ciphertext arrived in.
// Any failure is ErrRecordAuth; the counter advances only on success.
func (o *Opener) Open(dst, record, aad []byte) ([]byte, error) {
	if o.counter == ^uint64(0) {
		return nil, ErrNonceExhausted
	}
	var nonce [nonceSize]byte
	binary.BigEndian.PutUint64(nonce[4:], o.counter)
	out, err := o.aead.Open(dst, nonce[:], record, aad)
	if err != nil {
		return nil, ErrRecordAuth
	}
	o.counter++
	return out, nil
}
