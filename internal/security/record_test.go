package security

import (
	"bytes"
	"errors"
	"testing"
)

func testKeys(t testing.TB) (*Sealer, *Opener) {
	t.Helper()
	ks := NewKeySchedule([]byte("record test secret"), []byte("record test conn"))
	dk, _ := ks.SealKeys(TranscriptHash([]byte("d"), []byte("a")))
	s, err := NewSealer(dk)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOpener(dk)
	if err != nil {
		t.Fatal(err)
	}
	return s, o
}

func TestRecordRoundTrip(t *testing.T) {
	s, o := testKeys(t)
	aad := []byte{4, 0, 0, 0, 0, 0, 0, 0, 1}
	for i, msg := range [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xA5}, 64<<10-RecordOverhead)} {
		rec, err := s.Seal(nil, msg, aad)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec) != len(msg)+RecordOverhead {
			t.Fatalf("record %d: sealed %d bytes for %d plaintext", i, len(rec), len(msg))
		}
		got, err := o.Open(nil, rec, aad)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("record %d: plaintext mismatch", i)
		}
	}
}

func TestRecordOpenInPlace(t *testing.T) {
	s, o := testKeys(t)
	msg := bytes.Repeat([]byte{7}, 1000)
	rec, _ := s.Seal(nil, msg, nil)
	got, err := o.Open(rec[:0], rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("in-place open corrupted plaintext")
	}
}

func TestRecordRejects(t *testing.T) {
	s, o := testKeys(t)
	aad := []byte("hdr")
	rec, _ := s.Seal(nil, []byte("payload"), aad)

	flipped := append([]byte(nil), rec...)
	flipped[0] ^= 1
	if _, err := o.Open(nil, flipped, aad); !errors.Is(err, ErrRecordAuth) {
		t.Fatalf("tampered ciphertext: %v", err)
	}
	if _, err := o.Open(nil, rec[:len(rec)-1], aad); !errors.Is(err, ErrRecordAuth) {
		t.Fatalf("truncated tag: %v", err)
	}
	if _, err := o.Open(nil, rec, []byte("HDR")); !errors.Is(err, ErrRecordAuth) {
		t.Fatalf("tampered aad: %v", err)
	}
	// Counter did not advance on failures: the genuine record still opens.
	if _, err := o.Open(nil, rec, aad); err != nil {
		t.Fatalf("genuine record after failed opens: %v", err)
	}
	// Replay: the same record cannot open twice (counter advanced).
	if _, err := o.Open(nil, rec, aad); !errors.Is(err, ErrRecordAuth) {
		t.Fatalf("replayed record: %v", err)
	}
}

func TestRecordOrderEnforced(t *testing.T) {
	s, o := testKeys(t)
	r1, _ := s.Seal(nil, []byte("one"), nil)
	r2, _ := s.Seal(nil, []byte("two"), nil)
	if _, err := o.Open(nil, r2, nil); !errors.Is(err, ErrRecordAuth) {
		t.Fatalf("out-of-order record: %v", err)
	}
	if _, err := o.Open(nil, r1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Open(nil, r2, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordDirectionSeparation(t *testing.T) {
	ks := NewKeySchedule([]byte("s"), []byte("c"))
	dk, ak := ks.SealKeys(TranscriptHash([]byte("d"), []byte("a")))
	s, _ := NewSealer(dk)
	wrong, _ := NewOpener(ak)
	rec, _ := s.Seal(nil, []byte("x"), nil)
	if _, err := wrong.Open(nil, rec, nil); !errors.Is(err, ErrRecordAuth) {
		t.Fatalf("cross-direction record: %v", err)
	}
}

func TestRecordBadKeySizes(t *testing.T) {
	if _, err := NewSealer(make([]byte, 16)); err == nil {
		t.Fatal("16-byte key accepted")
	}
	if _, err := NewOpener(nil); err == nil {
		t.Fatal("nil key accepted")
	}
}

func FuzzOpenRecord(f *testing.F) {
	ks := NewKeySchedule([]byte("fuzz secret"), []byte("fuzz conn"))
	dk, _ := ks.SealKeys(TranscriptHash([]byte("d"), []byte("a")))
	s, _ := NewSealer(dk)
	genuine, _ := s.Seal(nil, []byte("fuzz seed payload"), []byte("aad"))
	f.Add(genuine, []byte("aad"))
	f.Add([]byte{}, []byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, RecordOverhead), []byte("aad"))
	f.Fuzz(func(t *testing.T, record, aad []byte) {
		o, err := NewOpener(dk)
		if err != nil {
			t.Fatal(err)
		}
		got, err := o.Open(nil, record, aad)
		if err != nil {
			if !errors.Is(err, ErrRecordAuth) {
				t.Fatalf("open failed with %v, want ErrRecordAuth", err)
			}
			return
		}
		// The only openable record under a fresh opener is the genuine
		// first record with its genuine aad.
		if !bytes.Equal(record, genuine) || !bytes.Equal(aad, []byte("aad")) {
			t.Fatalf("forged record authenticated: %d plaintext bytes", len(got))
		}
	})
}
