package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"naplet/internal/obs"
)

// ---- coalescing ----

// TestCoalescedWritesFlushBeforeSuspendDrain proves the write-coalescing
// barrier: frames sitting in the coalescing buffer when a suspend starts
// must reach the wire ahead of the flush marker, so the drain handshake
// still proves complete delivery. A burst of small writes is followed
// immediately by Suspend — no sleep, so frames are still buffered when the
// drain begins — and the peer must observe every message exactly once, in
// order, with the drain recorded as graceful.
func TestCoalescedWritesFlushBeforeSuspendDrain(t *testing.T) {
	regs := make(map[string]*obs.Registry)
	env := newEnv(t, []string{"h1", "h2"}, withMetrics(regs))
	client, server := env.pair("burster", "h1", "sink", "h2")
	defer client.Close()

	const burst = 500
	done := readCounters(server, burst+1)
	var seqs []uint64
	server.SetObserver(func(seq uint64, payload []byte, fromBuffer bool) {
		seqs = append(seqs, seq)
	})

	for i := 0; i < burst; i++ {
		writeCounter(t, client, i)
	}
	// Suspend immediately: the coalescing buffer almost certainly still
	// holds the tail of the burst. WriteFlush shares the buffer, so the
	// marker cannot overtake the frames.
	if err := client.Suspend(); err != nil {
		t.Fatalf("suspend: %v", err)
	}
	if err := client.Resume(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	writeCounter(t, client, burst)

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("receiver timed out; coalesced frames lost across suspend")
	}

	server.mu.Lock()
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("delivery %d carried seq %d; coalesced frames reordered or lost", i, seq)
		}
	}
	server.mu.Unlock()

	if g := regs["h1"].Snapshot().Counters["conn.drains.graceful"]; g < 1 {
		t.Fatalf("suspend drain was not graceful (graceful drains = %d): barrier flush missing", g)
	}
	if f := regs["h1"].Snapshot().Counters["data.frames"]; f != burst+1 {
		t.Fatalf("data.frames = %d, want %d", f, burst+1)
	}
	// The whole point of coalescing: far fewer flushes than frames.
	if fl := regs["h1"].Snapshot().Counters["data.flushes"]; fl >= burst {
		t.Fatalf("data.flushes = %d for %d frames; coalescing is not batching", fl, burst)
	}
}

// ---- event-driven waits ----

// TestIdleConnectionsNoPeriodicWakeups pins the thundering-herd fix: an
// idle node full of established connections must perform zero
// condition-variable timer wakeups. Before the fix, every blocked wait woke
// every 20 ms and Broadcast every waiter on the socket.
func TestIdleConnectionsNoPeriodicWakeups(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"}, insecure())
	const pairs = 25 // 50 connection endpoints across the two nodes
	sockets := make([]*Socket, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		c, s := env.pair(fmt.Sprintf("c%d", i), "h1", fmt.Sprintf("s%d", i), "h2")
		sockets = append(sockets, c, s)
	}
	waitEstablished(t, sockets...)

	// Park a reader on every connection so each socket has a blocked
	// waiter — the population the old code woke 50 times per tick.
	var wg sync.WaitGroup
	for _, s := range sockets[:pairs] {
		wg.Add(1)
		go func(s *Socket) {
			defer wg.Done()
			s.ReadMsg()
		}(s)
	}

	before := condTimerFires.Load()
	time.Sleep(500 * time.Millisecond)
	if delta := condTimerFires.Load() - before; delta != 0 {
		t.Fatalf("%d cond timer wakeups on an idle %d-connection node, want 0", delta, 2*pairs)
	}

	// A wait that actually reaches its deadline fires its timer exactly
	// once — the one wakeup the design budgets for.
	before = condTimerFires.Load()
	if _, err := sockets[0].waitState(100 * time.Millisecond /* no states */); err == nil {
		t.Fatal("waitState with no wanted states should time out")
	}
	if delta := condTimerFires.Load() - before; delta < 1 || delta > 2 {
		t.Fatalf("deadline wait fired timer %d times, want 1", delta)
	}

	for _, s := range sockets[:pairs] {
		s.Close()
	}
	wg.Wait()
}

// ---- send log memory ----

// TestSendLogEvictionReleasesMemory is the regression test for the
// send-log pinning bug: eviction used to re-slice s.sendLog forward,
// leaving every evicted payload reachable through the backing array for
// the life of the connection.
func TestSendLogEvictionReleasesMemory(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	defer client.Close()

	// Direct check: force evictions and inspect the backing array — the
	// vacated slots must hold no payload references.
	payload := make([]byte, 1<<20)
	client.writeMu.Lock()
	client.mu.Lock()
	for i := 1; i <= 10; i++ {
		client.appendSendLogLocked(uint64(i), payload)
	}
	if client.sendLogSize > maxSendLog {
		t.Fatalf("send log size %d exceeds cap %d after eviction", client.sendLogSize, maxSendLog)
	}
	back := client.sendLog[:cap(client.sendLog)]
	for i := len(client.sendLog); i < len(back); i++ {
		if back[i].Payload != nil {
			t.Fatalf("evicted slot %d still pins a %d-byte payload", i, len(back[i].Payload))
		}
	}
	// Reset the log so the connection is usable again below.
	client.releaseSendLogLocked()
	client.mu.Unlock()
	client.writeMu.Unlock()

	// End-to-end heap bound: stream far more than maxSendLog through the
	// connection; with eviction recycling (and the backing array compacted)
	// the heap must not grow anywhere near the volume written.
	go io.Copy(io.Discard, server)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	const total = 64 << 20
	chunk := make([]byte, 1<<20)
	for sent := 0; sent < total; sent += len(chunk) {
		if _, err := client.Write(chunk); err != nil {
			t.Fatalf("write at %d: %v", sent, err)
		}
	}

	runtime.GC()
	runtime.GC() // second cycle lets sync.Pool victims go too
	runtime.ReadMemStats(&after)
	growth := int64(after.HeapInuse) - int64(before.HeapInuse)
	if growth > 32<<20 {
		t.Fatalf("heap grew %d MiB after streaming %d MiB; evicted send-log payloads are pinned",
			growth>>20, total>>20)
	}
}

// ---- leftover provenance ----

// TestLeftoverProvenanceSurvivesMigration pins the leftoverBuf fix: the
// tail of a partially read message that crosses a migration inside the
// buffer must keep its identity — Info reports it as buffer-resident, and
// its eventual delivery is announced to the observer as a from-buffer
// event, so Fig 7's socket-vs-buffer accounting covers leftover bytes.
func TestLeftoverProvenanceSurvivesMigration(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3"})
	client, server := env.pair("mover", "h1", "anchor", "h2")

	if _, err := server.Write([]byte("12345678")); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 3)
	if _, err := io.ReadFull(client, small); err != nil {
		t.Fatal(err)
	}

	env.migrate("mover", "h1", "h3", 2)
	moved, err := env.hosts["h3"].ctrl.AgentSocket("mover", client.ID())
	if err != nil {
		t.Fatal(err)
	}

	if info := moved.Info(); !info.LeftoverFromBuffer {
		t.Fatalf("restored leftover tail lost its buffer provenance: %+v", info)
	}

	type delivery struct {
		seq        uint64
		payload    []byte
		fromBuffer bool
	}
	var deliveries []delivery
	var mu sync.Mutex
	moved.SetObserver(func(seq uint64, payload []byte, fromBuffer bool) {
		mu.Lock()
		deliveries = append(deliveries, delivery{seq, append([]byte(nil), payload...), fromBuffer})
		mu.Unlock()
	})

	rest := make([]byte, 5)
	if _, err := io.ReadFull(moved, rest); err != nil {
		t.Fatal(err)
	}
	if string(rest) != "45678" {
		t.Fatalf("leftover after migration = %q", rest)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(deliveries) != 1 {
		t.Fatalf("observer saw %d deliveries for the restored tail, want 1", len(deliveries))
	}
	d := deliveries[0]
	if d.seq != 1 || !d.fromBuffer || !bytes.Equal(d.payload, []byte("45678")) {
		t.Fatalf("restored tail delivery = seq %d fromBuffer %v payload %q; want seq 1, from buffer, %q",
			d.seq, d.fromBuffer, d.payload, "45678")
	}
}

// ---- pooled-buffer stress ----

// TestDataPlaneStressConcurrent hammers the pooled data plane from every
// side at once: a message stream with suspend/resume cycles and data-socket
// kills in both directions, plus a byte stream exercising the leftover
// path with tiny reads. Run under -race, this is the ownership/aliasing
// test for the buffer pool: any recycled-while-referenced buffer shows up
// as a data race or a corrupted counter sequence.
func TestDataPlaneStressConcurrent(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"}, quickOps())
	client, server := env.pair("chaosA", "h1", "chaosB", "h2")
	defer client.Close()

	const msgs = 4000
	var wg sync.WaitGroup

	// Direction 1: counter messages client -> server via ReadMsg, verified
	// exactly-once in order.
	readErr := make(chan error, 1)
	go func() {
		next := uint64(0)
		for n := 0; n < msgs; n++ {
			m, err := server.ReadMsg()
			if err != nil {
				readErr <- fmt.Errorf("read %d: %w", n, err)
				return
			}
			if got := binary.BigEndian.Uint64(m); got != next {
				readErr <- fmt.Errorf("delivery %d carried counter %d, want %d", n, got, next)
				return
			}
			next++
		}
		readErr <- nil
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		var payload [8]byte
		for i := 0; i < msgs; i++ {
			binary.BigEndian.PutUint64(payload[:], uint64(i))
			if err := client.WriteMsg(payload[:]); err != nil {
				t.Errorf("sending %d: %v", i, err)
				return
			}
		}
	}()

	// Direction 2: a byte stream server -> client drained through tiny
	// reads, keeping the leftover/pool recycling path hot.
	const streamBytes = 1 << 20
	streamErr := make(chan error, 1)
	go func() {
		var got int
		buf := make([]byte, 7) // never frame-aligned: every read leaves a tail
		for got < streamBytes {
			n, err := client.Read(buf)
			if err != nil {
				streamErr <- fmt.Errorf("stream read at %d: %w", got, err)
				return
			}
			got += n
		}
		streamErr <- nil
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		chunk := make([]byte, 997)
		var sent int
		for sent < streamBytes {
			if len(chunk) > streamBytes-sent {
				chunk = chunk[:streamBytes-sent]
			}
			n, err := server.Write(chunk)
			if err != nil {
				t.Errorf("stream write at %d: %v", sent, err)
				return
			}
			sent += n
		}
	}()

	// Chaos: suspend/resume cycles from the client side, data-socket kills
	// from both, all while the streams run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			time.Sleep(60 * time.Millisecond)
			if err := client.Suspend(); err != nil {
				return // connection wound down under us; streams will report
			}
			time.Sleep(20 * time.Millisecond)
			if err := client.Resume(); err != nil {
				return
			}
			time.Sleep(60 * time.Millisecond)
			if i%2 == 0 {
				client.KillDataSocket()
			} else {
				server.KillDataSocket()
			}
		}
	}()

	deadline := time.After(60 * time.Second)
	for _, ch := range []<-chan error{readErr, streamErr} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("stress streams timed out")
		}
	}
	wg.Wait()
}
