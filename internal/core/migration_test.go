package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// ---- single migration (Section 3.1) ----

func TestSingleMigrationStationaryPeer(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3"})
	client, server := env.pair("mover", "h1", "anchor", "h2")

	if _, err := client.Write([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	env.migrate("mover", "h1", "h3", 2)

	// The mover's endpoint now lives in h3's controller.
	moved, err := env.hosts["h3"].ctrl.AgentSocket("mover", client.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, moved, server)
	if _, err := moved.Write([]byte("-post")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len("pre-post"))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "pre-post" {
		t.Fatalf("read %q", got)
	}
	// And the reverse direction works on the resumed socket.
	if _, err := server.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	got = make([]byte, 4)
	if _, err := io.ReadFull(moved, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "back" {
		t.Fatalf("mover read %q", got)
	}
	// The old host no longer knows the connection.
	if _, err := env.hosts["h1"].ctrl.AgentSocket("mover", client.ID()); err == nil {
		t.Fatal("old host still holds the connection")
	}
}

func TestMigrationCarriesUndeliveredData(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3"})
	client, server := env.pair("mover", "h1", "anchor", "h2")
	_ = server

	// The anchor sends a burst the mover never reads before migrating: it
	// must arrive from the buffer after landing, in order, exactly once.
	const n = 100
	for i := 0; i < n; i++ {
		if err := server.WriteMsg([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	env.migrate("mover", "h1", "h3", 2)
	moved, err := env.hosts["h3"].ctrl.AgentSocket("mover", client.ID())
	if err != nil {
		t.Fatal(err)
	}
	var buffered int
	moved.SetObserver(func(seq uint64, payload []byte, fromBuffer bool) {
		if fromBuffer {
			buffered++
		}
	})
	for i := 0; i < n; i++ {
		m, err := moved.ReadMsg()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if m[0] != byte(i) {
			t.Fatalf("msg %d: got %d", i, m[0])
		}
	}
	if buffered == 0 {
		t.Fatal("no messages attributed to the migrated buffer (Fig 7 light dots)")
	}
	t.Logf("delivered %d messages, %d via migrated buffer", n, buffered)
}

func TestChainedMigrations(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3", "h4"})
	client, server := env.pair("mover", "h1", "anchor", "h2")

	hosts := []string{"h3", "h4", "h1", "h3"}
	from := "h1"
	id := client.ID()
	for hop, to := range hosts {
		epoch := uint64(hop + 2)
		env.migrate("mover", from, to, epoch)
		moved, err := env.hosts[to].ctrl.AgentSocket("mover", id)
		if err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		waitEstablished(t, moved)
		msg := fmt.Sprintf("hop-%d", hop)
		if err := moved.WriteMsg([]byte(msg)); err != nil {
			t.Fatalf("hop %d write: %v", hop, err)
		}
		got, err := server.ReadMsg()
		if err != nil {
			t.Fatalf("hop %d read: %v", hop, err)
		}
		if string(got) != msg {
			t.Fatalf("hop %d: got %q want %q", hop, got, msg)
		}
		from = to
	}
}

func TestMigrationOfServerSideAgent(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3"})
	client, server := env.pair("stationary", "h1", "mover", "h2")

	if err := client.WriteMsg([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if m, _ := server.ReadMsg(); string(m) != "before" {
		t.Fatal("pre-migration message lost")
	}

	env.migrate("mover", "h2", "h3", 2)
	moved, err := env.hosts["h3"].ctrl.AgentSocket("mover", server.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, moved, client)
	if err := client.WriteMsg([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if m, err := moved.ReadMsg(); err != nil || string(m) != "after" {
		t.Fatalf("post-migration: %q, %v", m, err)
	}
}

// ---- concurrent migration (Sections 3.1–3.2) ----

func TestConcurrentMigrationBothEndpoints(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3", "h4"})
	client, server := env.pair("left", "h1", "right", "h2")

	if err := client.WriteMsg([]byte("pre-l")); err != nil {
		t.Fatal(err)
	}
	if err := server.WriteMsg([]byte("pre-r")); err != nil {
		t.Fatal(err)
	}

	// Both agents migrate at the same time: the overlapped/non-overlapped
	// machinery must serialize the two connection migrations.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		env.migrate("left", "h1", "h3", 2)
	}()
	go func() {
		defer wg.Done()
		env.migrate("right", "h2", "h4", 2)
	}()
	wg.Wait()

	movedL, err := env.hosts["h3"].ctrl.AgentSocket("left", client.ID())
	if err != nil {
		t.Fatal(err)
	}
	movedR, err := env.hosts["h4"].ctrl.AgentSocket("right", server.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, movedL, movedR)

	// Pre-migration messages survived.
	if m, err := movedR.ReadMsg(); err != nil || string(m) != "pre-l" {
		t.Fatalf("right pre msg: %q, %v", m, err)
	}
	if m, err := movedL.ReadMsg(); err != nil || string(m) != "pre-r" {
		t.Fatalf("left pre msg: %q, %v", m, err)
	}
	// And the resumed connection carries new traffic both ways.
	if err := movedL.WriteMsg([]byte("post-l")); err != nil {
		t.Fatal(err)
	}
	if err := movedR.WriteMsg([]byte("post-r")); err != nil {
		t.Fatal(err)
	}
	if m, err := movedR.ReadMsg(); err != nil || string(m) != "post-l" {
		t.Fatalf("right post msg: %q, %v", m, err)
	}
	if m, err := movedL.ReadMsg(); err != nil || string(m) != "post-r" {
		t.Fatalf("left post msg: %q, %v", m, err)
	}
}

func TestRepeatedConcurrentMigrations(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3", "h4"})
	client, server := env.pair("left", "h1", "right", "h2")

	locL, locR := "h1", "h2"
	destsL := []string{"h3", "h1", "h3"}
	destsR := []string{"h4", "h2", "h4"}
	for round := 0; round < 3; round++ {
		epoch := uint64(round + 2)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			env.migrate("left", locL, destsL[round], epoch)
		}()
		go func() {
			defer wg.Done()
			env.migrate("right", locR, destsR[round], epoch)
		}()
		wg.Wait()
		locL, locR = destsL[round], destsR[round]

		movedL, err := env.hosts[locL].ctrl.AgentSocket("left", client.ID())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		movedR, err := env.hosts[locR].ctrl.AgentSocket("right", server.ID())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		waitEstablished(t, movedL, movedR)
		msg := fmt.Sprintf("round-%d", round)
		if err := movedL.WriteMsg([]byte(msg)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if m, err := movedR.ReadMsg(); err != nil || string(m) != msg {
			t.Fatalf("round %d: %q, %v", round, m, err)
		}
	}
}

// TestNonOverlappedConcurrentMigration reproduces Fig 4(b): the second
// agent decides to migrate while the first is mid-flight.
func TestNonOverlappedConcurrentMigration(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3", "h4"})
	client, server := env.pair("first", "h1", "second", "h2")

	// Suspend phase of agent "first" completes, but it has not landed yet.
	blobFirst, err := env.hosts["h1"].ctrl.PreDepart("first")
	if err != nil {
		t.Fatal(err)
	}

	// Meanwhile the peer starts its own migration; its suspend finds the
	// connection remotely suspended.
	secondDone := make(chan []byte, 1)
	go func() {
		blob, err := env.hosts["h2"].ctrl.PreDepart("second")
		if err != nil {
			t.Error(err)
			secondDone <- nil
			return
		}
		secondDone <- blob
	}()

	// "first" lands; its resume finds "second" migrating and parks or
	// retries until "second" lands too.
	if err := env.svc.Update("first", env.hosts["h3"].loc(), 2); err != nil {
		t.Fatal(err)
	}
	if err := env.hosts["h3"].ctrl.PostArrive("first", blobFirst); err != nil {
		t.Fatal(err)
	}

	blobSecond := <-secondDone
	if blobSecond == nil {
		t.Fatal("second PreDepart failed")
	}
	if err := env.svc.Update("second", env.hosts["h4"].loc(), 2); err != nil {
		t.Fatal(err)
	}
	if err := env.hosts["h4"].ctrl.PostArrive("second", blobSecond); err != nil {
		t.Fatal(err)
	}

	movedA, err := env.hosts["h3"].ctrl.AgentSocket("first", client.ID())
	if err != nil {
		t.Fatal(err)
	}
	movedB, err := env.hosts["h4"].ctrl.AgentSocket("second", server.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, movedA, movedB)
	if err := movedA.WriteMsg([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if m, err := movedB.ReadMsg(); err != nil || string(m) != "hello" {
		t.Fatalf("got %q, %v", m, err)
	}
}

// ---- multiple connections (Section 3.2) ----

func TestConcurrentMigrationWithMultipleConnections(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3", "h4"})

	// Two connections between the same pair of agents (Fig 5's #1 and #2):
	// one opened by each side.
	c1, s1 := env.pair("alpha", "h1", "beta", "h2")
	// Second connection, opened in the other direction.
	hb, ha := env.hosts["h2"], env.hosts["h1"]
	ssA, err := ha.ctrl.ListenAs("alpha", ha.cred("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	acceptCh := make(chan *Socket, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s, err := ssA.Accept(ctx)
		if err == nil {
			acceptCh <- s
		}
	}()
	c2, err := hb.ctrl.OpenAs("beta", hb.cred("beta"), "alpha")
	if err != nil {
		t.Fatal(err)
	}
	s2 := <-acceptCh

	// Seed data on both connections.
	if err := c1.WriteMsg([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteMsg([]byte("two")); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		env.migrate("alpha", "h1", "h3", 2)
	}()
	go func() {
		defer wg.Done()
		env.migrate("beta", "h2", "h4", 2)
	}()
	wg.Wait()

	a1, err := env.hosts["h3"].ctrl.AgentSocket("alpha", c1.ID())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := env.hosts["h3"].ctrl.AgentSocket("alpha", s2.ID())
	if err != nil {
		t.Fatal(err)
	}
	b1, err := env.hosts["h4"].ctrl.AgentSocket("beta", s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := env.hosts["h4"].ctrl.AgentSocket("beta", c2.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, a1, a2, b1, b2)

	// Seeded data arrived across the double migration.
	if m, err := b1.ReadMsg(); err != nil || string(m) != "one" {
		t.Fatalf("conn1 seed: %q, %v", m, err)
	}
	if m, err := a2.ReadMsg(); err != nil || string(m) != "two" {
		t.Fatalf("conn2 seed: %q, %v", m, err)
	}
	// Both connections still work in both directions.
	for i, pair := range []struct{ w, r *Socket }{{a1, b1}, {b1, a1}, {a2, b2}, {b2, a2}} {
		msg := fmt.Sprintf("m%d", i)
		if err := pair.w.WriteMsg([]byte(msg)); err != nil {
			t.Fatalf("pair %d write: %v", i, err)
		}
		if m, err := pair.r.ReadMsg(); err != nil || string(m) != msg {
			t.Fatalf("pair %d read: %q, %v", i, m, err)
		}
	}
}

// ---- listener migration ----

func TestListenerMigratesWithAgent(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3"})
	env.place("srv", "h1")
	env.place("cli", "h2")
	h1 := env.hosts["h1"]
	if _, err := h1.ctrl.ListenAs("srv", h1.cred("srv")); err != nil {
		t.Fatal(err)
	}

	env.migrate("srv", "h1", "h3", 2)

	// A dial after the migration reaches the restored listener on h3.
	h2 := env.hosts["h2"]
	acceptCh := make(chan *Socket, 1)
	go func() {
		h3 := env.hosts["h3"]
		ss, err := h3.ctrl.ListenAs("srv", h3.cred("srv"))
		if err != nil {
			t.Error(err)
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s, err := ss.Accept(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		acceptCh <- s
	}()
	client, err := h2.ctrl.DialAs("cli", h2.cred("cli"), "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-acceptCh
	if err := client.WriteMsg([]byte("post-move dial")); err != nil {
		t.Fatal(err)
	}
	if m, err := server.ReadMsg(); err != nil || string(m) != "post-move dial" {
		t.Fatalf("got %q, %v", m, err)
	}
}

// ---- failure recovery (extension) ----

func TestDataSocketFailureRecovers(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	defer client.Close()

	if err := client.WriteMsg([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if m, _ := server.ReadMsg(); string(m) != "before" {
		t.Fatal("pre-failure message lost")
	}

	// Kill the raw TCP socket out from under the connection.
	client.mu.Lock()
	raw := client.sock
	client.mu.Unlock()
	raw.Close()

	// Both endpoints should degrade and auto-resume; traffic flows again.
	deadline := time.Now().Add(15 * time.Second)
	if err := client.WriteMsg([]byte("after")); err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	go func() {
		m, err := server.ReadMsg()
		if err == nil {
			got <- m
		}
	}()
	select {
	case m := <-got:
		if string(m) != "after" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(time.Until(deadline)):
		t.Fatalf("recovery never delivered (client %s server %s)", client.State(), server.State())
	}
}

func TestFailureRecoveryRetransmitsInFlight(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	defer client.Close()

	// Write a burst, then kill the socket before the peer reads: frames
	// that died in the kernel buffers must be retransmitted from the send
	// log on resume.
	const n = 50
	for i := 0; i < n; i++ {
		if err := client.WriteMsg([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	client.mu.Lock()
	raw := client.sock
	client.mu.Unlock()
	raw.Close()

	for i := 0; i < n; i++ {
		m, err := server.ReadMsg()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if m[0] != byte(i) {
			t.Fatalf("msg %d: got %d (duplicate or loss)", i, m[0])
		}
	}
}

// ---- exactly-once under continuous traffic with migration ----

func TestExactlyOnceUnderContinuousTrafficAndMigration(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3", "h4"})
	client, server := env.pair("mover", "h1", "anchor", "h2")

	const total = 2000
	// The anchor streams numbered messages as fast as possible.
	go func() {
		for i := 0; i < total; i++ {
			msg := []byte{byte(i), byte(i >> 8)}
			if err := server.WriteMsg(msg); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	}()

	// The mover migrates three times mid-stream while reading; when a read
	// hits ErrMigrated the reader re-attaches at the agent's new host, the
	// way a behaviour would after landing.
	recvDone := make(chan error, 1)
	hops := []string{"h3", "h4", "h1"}
	var mu sync.Mutex
	sock := client
	go func() {
		i := 0
		for i < total {
			mu.Lock()
			s := sock
			mu.Unlock()
			m, err := s.ReadMsg()
			if errors.Is(err, ErrMigrated) {
				time.Sleep(2 * time.Millisecond) // wait for the swap
				continue
			}
			if err != nil {
				recvDone <- fmt.Errorf("read %d: %w", i, err)
				return
			}
			if got := int(m[0]) | int(m[1])<<8; got != i {
				recvDone <- fmt.Errorf("message %d: got %d (order/duplication broken)", i, got)
				return
			}
			i++
		}
		recvDone <- nil
	}()

	from := "h1"
	for hop, to := range hops {
		time.Sleep(30 * time.Millisecond)
		env.migrate("mover", from, to, uint64(hop+2))
		moved, err := env.hosts[to].ctrl.AgentSocket("mover", client.ID())
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		sock = moved
		mu.Unlock()
		from = to
	}

	select {
	case err := <-recvDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("receiver never finished")
	}
}
