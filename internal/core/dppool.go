package core

import (
	"runtime"
	"sync"
)

// dpPool is the shared data-plane worker pool: a fixed set of goroutines
// that run the per-connection pump (decode inbound frames off the
// transport stream) and flush (push coalesced outbound frames) steps on
// demand. Connections on the shared-transport path have no goroutines of
// their own — a readable/writable event enqueues the socket here, so the
// process runs O(workers) data-plane goroutines instead of two per
// connection. Work items must not block: the pump only decodes frames
// the stream has fully buffered, and the flush hands a credit-stalled
// batch off to a transient goroutine rather than waiting on the worker.
type dpPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Socket
	closed bool
	wg     sync.WaitGroup
}

// dpWorkers sizes the pool: enough to keep every core busy during a
// migration wave, capped so an over-provisioned GOMAXPROCS does not turn
// into idle goroutines.
func dpWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 2 {
		n = 2
	}
	return n
}

func newDPPool() *dpPool {
	p := &dpPool{}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < dpWorkers(); i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// enqueue queues the socket for one pump/flush pass. The dpQueued flag
// dedups: a socket already waiting in the queue absorbs new events into
// its pending pass. Safe to call from any goroutine, including the
// transport read loop and under a socket's mu.
func (p *dpPool) enqueue(s *Socket) {
	if !s.dpQueued.CompareAndSwap(false, true) {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		s.dpQueued.Store(false)
		return
	}
	p.queue = append(p.queue, s)
	p.cond.Signal()
	p.mu.Unlock()
}

// close stops the workers after the queued backlog drains.
func (p *dpPool) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *dpPool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		s := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		p.mu.Unlock()

		// Clear dpQueued BEFORE consuming the request flags: an event
		// arriving after a flag is consumed re-enqueues the socket, so no
		// wakeup is ever lost; an event arriving before just rides along.
		s.dpQueued.Store(false)
		if s.pumpReq.Swap(false) {
			s.pumpEvent()
		}
		if s.flushReq.Swap(false) {
			s.flushEvent()
		}
	}
}
