package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"naplet/internal/metrics"
	"naplet/internal/obs"
)

// This file makes the Controller an agent migration hook (agent.Hook,
// satisfied structurally): before an agent departs, all of its connections
// are suspended — per the multi-connection rules of Section 3.2 — and
// serialized, including every buffered undelivered byte; after it lands,
// the connections are reconstructed and resumed from the new host.

// connState is the serialized form of one connection endpoint. The
// buffered data inside RecvBuf is the migrating NapletInputStream of
// Section 3.1 — the paper's guarantee that data in transmission moves with
// the agent.
type connState struct {
	ID                        [16]byte
	LocalAgent, RemoteAgent   string
	SessionKey                []byte
	NextSendSeq, LastEnqueued uint64
	RecvBuf                   []bufEntry
	Leftover                  []byte
	// LeftoverSeq and LeftoverBuf carry the provenance of the partially
	// read message whose tail sits in Leftover: the sequence number it was
	// delivered under and whether it had already crossed a migration in
	// the buffer. Restores preserve them so Fig 7's socket-vs-buffer
	// accounting stays correct for the tail's remaining bytes.
	LeftoverSeq              uint64
	LeftoverBuf              bool
	SendLog                  []bufEntry
	PeerControlAddr          string
	PeerDataAddr             string
	SendNonce, LastPeerNonce uint64
	OwesSusRes               bool
	Accepted                 bool
}

// hookBlob is the controller's contribution to a migration bundle.
type hookBlob struct {
	Conns       []connState
	HasListener bool
	// Backlog lists queued-but-unaccepted connection ids, to repopulate
	// the restored server socket's accept queue.
	Backlog [][16]byte
	// Trace is the marshaled span context of the origin's depart span, so
	// the destination's arrival spans join the same migration trace.
	Trace []byte
	// DepartedAt is the origin's clock when the blob was sealed; the
	// arrival side uses it to attribute the in-flight gap.
	DepartedAt time.Time
}

// HookName keys the controller's blob in migration bundles.
func (ctrl *Controller) HookName() string { return "napletsocket" }

// PreDepart suspends and serializes all of the departing agent's
// connections. Connections whose suspend cannot complete are closed rather
// than blocking the migration forever.
func (ctrl *Controller) PreDepart(agentID string) ([]byte, error) {
	conns := ctrl.tab.setMigrating(agentID, true)
	ctrl.mu.Lock()
	ss := ctrl.listeners[agentID]
	ctrl.mu.Unlock()
	defer ctrl.tab.setMigrating(agentID, false)

	// Deterministic suspend order, so multi-connection concurrent
	// migrations interleave the way Section 3.2 analyzes.
	sort.Slice(conns, func(i, j int) bool {
		return bytes.Compare(conns[i].id[:], conns[j].id[:]) < 0
	})

	o := ctrl.obs
	o.departs.Inc()

	// Join the migration trace the agent layer rooted (published under the
	// agent id), or root one here when the hook is driven directly.
	var depart *obs.Span
	if tc := o.tr.Active(agentID); tc.Valid() {
		depart = o.tr.StartSpan(tc, "depart")
	} else {
		depart = o.tr.StartTrace("migrate " + agentID)
	}
	defer depart.End()

	blob := hookBlob{}
	for _, s := range conns {
		susSp := depart.Child("suspend")
		susSp.Annotate("conn=" + s.id.String())
		s.setTraceSpan(susSp)
		if err := s.Suspend(); err != nil {
			susSp.Annotate("failed: " + err.Error())
			susSp.End()
			if err == ErrClosed {
				ctrl.dropConn(s)
				continue
			}
			ctrl.logf("conn %s: suspend for migration of %s failed (%v); dropping connection", s.id, agentID, err)
			s.Close()
			continue
		}
		susSp.End()
		ckSp := depart.Child("checkpoint")
		szStart := time.Now()
		st := s.serialize()
		o.suspendBD.Add(metrics.PhaseSerialize, time.Since(szStart))
		ckSp.End()
		blob.Conns = append(blob.Conns, st)
		o.connsShipped.Inc()
		ctrl.dropConn(s)
	}

	if ss != nil && !ss.isClosed() {
		blob.HasListener = true
		ss.mu.Lock()
		for _, pending := range ss.queue {
			blob.Backlog = append(blob.Backlog, pending.id)
		}
		ss.mu.Unlock()
		// The listener itself stays behind only as a tombstone; remove it
		// so new CONNECTs are answered with a retry verdict until the
		// agent lands.
		ctrl.mu.Lock()
		if ctrl.listeners[agentID] == ss {
			delete(ctrl.listeners, agentID)
		}
		ctrl.mu.Unlock()
	}

	blob.Trace = depart.Context().Marshal()
	blob.DepartedAt = time.Now()
	szStart := time.Now()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&blob); err != nil {
		return nil, fmt.Errorf("napletsocket: serializing connections of %s: %w", agentID, err)
	}
	o.suspendBD.Add(metrics.PhaseSerialize, time.Since(szStart))
	ctrl.olog(obs.LevelInfo, "agent %s departing with %d connections (%d bytes serialized)",
		agentID, len(blob.Conns), buf.Len())
	return buf.Bytes(), nil
}

// snapshotLocked captures the connection's full state without disturbing
// the live object — the form journaled at lifecycle edges and shipped in
// migration bundles. Caller holds mu.
func (s *Socket) snapshotLocked() connState {
	st := connState{
		ID:              s.id,
		LocalAgent:      s.localAgent,
		RemoteAgent:     s.remoteAgent,
		SessionKey:      append([]byte(nil), s.sessionKey...),
		NextSendSeq:     s.nextSendSeq,
		LastEnqueued:    s.lastEnqueued,
		Leftover:        append([]byte(nil), s.leftover...),
		LeftoverSeq:     s.leftoverSeq,
		LeftoverBuf:     s.leftoverBuf,
		PeerControlAddr: s.peerControlAddr,
		PeerDataAddr:    s.peerDataAddr,
		SendNonce:       s.sendNonce,
		LastPeerNonce:   s.lastPeerNonce,
		OwesSusRes:      s.owesSusRes,
		Accepted:        s.accepted,
	}
	// Everything still in the buffer crosses the migration (or restart) in
	// the buffer: mark it so post-resume deliveries are attributed
	// correctly (Fig 7).
	st.RecvBuf = make([]bufEntry, len(s.recvBuf))
	for i, e := range s.recvBuf {
		st.RecvBuf[i] = bufEntry{Seq: e.Seq, Payload: e.Payload, ViaBuffer: true}
	}
	st.SendLog = append([]bufEntry(nil), s.sendLog...)
	return st
}

// serialize captures the suspended connection's full state and detaches
// the local object: its buffers are handed over to the serialized form and
// the object is marked with ErrMigrated, so a stray reader can neither
// hang on the dead handle nor double-deliver buffered data.
func (s *Socket) serialize() connState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.snapshotLocked()
	// The snapshot deep-copied the leftover tail, so its pooled backing
	// buffer can be recycled here. RecvBuf and SendLog payloads, by
	// contrast, are shared with the snapshot — their ownership transfers
	// to the serialized form and they are never recycled.
	s.releaseLeftoverLocked()
	s.recvBuf = nil
	s.recvBytes = 0
	s.sendLog = nil
	s.sendLogSize = 0
	s.markClosedLocked(ErrMigrated)
	return st
}

// PostArrive reconstructs the arriving agent's connections and kicks off
// their resumption: a normal RESUME for most, a SUS_RES release for
// connections whose low-priority peer is parked behind our migration
// (overlapped concurrent migration, Fig 4(a)).
func (ctrl *Controller) PostArrive(agentID string, blob []byte) error {
	if len(blob) == 0 {
		return nil
	}
	var hb hookBlob
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&hb); err != nil {
		return fmt.Errorf("napletsocket: restoring connections of %s: %w", agentID, err)
	}
	ctrl.obs.arrivals.Inc()
	ctrl.olog(obs.LevelInfo, "agent %s arrived with %d connections", agentID, len(hb.Conns))

	// Join the migration trace the origin sealed into the blob; arrival
	// work (restore, resume) lands under it on this host's tracer.
	var arrive *obs.Span
	if tc, ok := obs.UnmarshalSpanContext(hb.Trace); ok {
		arrive = ctrl.obs.tr.StartSpan(tc, "arrive")
		if !hb.DepartedAt.IsZero() {
			arrive.Annotate(fmt.Sprintf("in-flight=%v", time.Since(hb.DepartedAt).Round(time.Microsecond)))
		}
	}
	defer arrive.End()

	var ss *ServerSocket
	if hb.HasListener {
		var err error
		ss, err = ctrl.ListenAs(agentID, ctrl.cfg.Guard.IssueCredential(agentID))
		if err != nil {
			return fmt.Errorf("napletsocket: restoring listener of %s: %w", agentID, err)
		}
	}
	backlog := make(map[[16]byte]bool, len(hb.Backlog))
	for _, id := range hb.Backlog {
		backlog[id] = true
	}

	for _, st := range hb.Conns {
		restSp := arrive.Child("restore")
		s, err := ctrl.restoreConn(st, 0)
		if err != nil {
			restSp.Annotate("failed: " + err.Error())
			restSp.End()
			return err
		}
		// The connection now lives here: journal it so a crash before the
		// post-arrival resume completes still recovers it.
		ctrl.checkpointConn(s)
		restSp.End()

		if ss != nil && !st.Accepted && backlog[st.ID] {
			ss.push(s)
		}

		resSp := arrive.Child("resume")
		resSp.Annotate("conn=" + s.id.String())
		s.setTraceSpan(resSp)
		go func(s *Socket, owes bool, sp *obs.Span) {
			defer sp.End()
			defer s.setTraceSpan(nil)
			if owes {
				// Release the parked peer; it migrates next and will
				// resume toward us (Fig 4(a)).
				if err := s.sendSusRes(); err != nil {
					ctrl.logf("conn %s: SUS_RES after migration: %v", s.id, err)
				}
				return
			}
			if err := s.Resume(); err != nil && err != ErrClosed {
				sp.Annotate("failed: " + err.Error())
				ctrl.logf("conn %s: resume after migration: %v", s.id, err)
			}
		}(s, st.OwesSusRes, resSp)
	}
	return nil
}

// OnTerminate closes a finished agent's connections and listener.
func (ctrl *Controller) OnTerminate(agentID string) {
	ctrl.NoteLocationEpoch(agentID, 0)
	conns := ctrl.tab.agentSockets(agentID)
	ctrl.mu.Lock()
	ss := ctrl.listeners[agentID]
	ctrl.mu.Unlock()
	for _, s := range conns {
		s.Close()
	}
	if ss != nil {
		ss.Close()
	}
}
