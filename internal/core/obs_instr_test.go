package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"naplet/internal/obs"
)

// withMetrics gives every host its own registry (shared registries would
// collide on the per-controller gauge names) and records them by host name.
func withMetrics(regs map[string]*obs.Registry) envOption {
	return func(c *Config) {
		r := obs.NewRegistry()
		regs[c.HostName] = r
		c.Metrics = r
	}
}

// TestMetricsAcrossMigration drives a scripted open + migrate + close and
// checks that the lifecycle counters, FSM transition counters, latency
// histograms, and per-phase suspend/resume gauges all move.
func TestMetricsAcrossMigration(t *testing.T) {
	regs := make(map[string]*obs.Registry)
	env := newEnv(t, []string{"h1", "h2"}, withMetrics(regs))
	client, server := env.pair("walker", "h1", "echoer", "h2")

	if err := client.WriteMsg([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if msg, err := server.ReadMsg(); err != nil || !bytes.Equal(msg, []byte("before")) {
		t.Fatalf("ReadMsg = %q, %v", msg, err)
	}

	env.migrate("walker", "h1", "h2", 2)
	moved, err := env.hosts["h2"].ctrl.AgentSocket("walker", client.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, moved, server)
	if err := moved.WriteMsg([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if msg, err := server.ReadMsg(); err != nil || !bytes.Equal(msg, []byte("after")) {
		t.Fatalf("ReadMsg after migration = %q, %v", msg, err)
	}
	moved.Close()

	s1 := regs["h1"].Snapshot()
	s2 := regs["h2"].Snapshot()

	// Origin host: the open, the pre-depart suspend, and the departure.
	for name, want := range map[string]uint64{
		"conn.opens":            1,
		"conn.suspends":         1,
		"migrate.departs":       1,
		"migrate.conns_shipped": 1,
	} {
		if got := s1.Counters[name]; got != want {
			t.Errorf("h1 %s = %d, want %d", name, got, want)
		}
	}
	if s1.Counters["fsm.transitions"] == 0 {
		t.Error("h1 recorded no FSM transitions")
	}
	if s1.Counters["fsm.transition.ESTABLISHED->SUS_SENT"] == 0 {
		t.Errorf("h1 missing suspend edge; counters = %v", s1.Counters)
	}
	if h := s1.Histograms["conn.suspend_ms"]; h.Count != 1 || h.P50 <= 0 {
		t.Errorf("h1 conn.suspend_ms = %+v", h)
	}
	if h := s1.Histograms["conn.open_ms"]; h.Count != 1 {
		t.Errorf("h1 conn.open_ms = %+v", h)
	}
	for _, g := range []string{"phase.suspend.handshaking_ms", "phase.suspend.drain_ms", "phase.suspend.serialize_ms"} {
		if s1.Gauges[g] <= 0 {
			t.Errorf("h1 %s = %v, want > 0", g, s1.Gauges[g])
		}
	}
	if s1.Gauges["rudp.requests_sent"] <= 0 {
		t.Errorf("h1 rudp.requests_sent = %v", s1.Gauges["rudp.requests_sent"])
	}

	// Destination host: the accept, the arrival, and the resume.
	if s2.Counters["conn.accepts"] != 1 {
		t.Errorf("h2 conn.accepts = %d, want 1", s2.Counters["conn.accepts"])
	}
	if s2.Counters["migrate.arrivals"] != 1 {
		t.Errorf("h2 migrate.arrivals = %d, want 1", s2.Counters["migrate.arrivals"])
	}
	if s2.Counters["conn.resumes"] == 0 {
		t.Error("h2 recorded no resumes")
	}
	if h := s2.Histograms["conn.resume_ms"]; h.Count == 0 {
		t.Errorf("h2 conn.resume_ms = %+v", h)
	}
	for _, g := range []string{"phase.resume.handshaking_ms", "phase.resume.open-socket_ms"} {
		if s2.Gauges[g] <= 0 {
			t.Errorf("h2 %s = %v, want > 0", g, s2.Gauges[g])
		}
	}
}

// TestConnInfos checks the /connz data source: resident connections are
// reported sorted by id with live state.
func TestConnInfos(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	env.pair("a", "h1", "b", "h2")
	env.pair("c", "h1", "d", "h2")
	infos := env.hosts["h1"].ctrl.ConnInfos()
	if len(infos) != 2 {
		t.Fatalf("ConnInfos = %d entries, want 2", len(infos))
	}
	if bytes.Compare(infos[0].ID[:], infos[1].ID[:]) >= 0 {
		t.Error("ConnInfos not sorted by id")
	}
	for _, in := range infos {
		if in.State != "ESTABLISHED" {
			t.Errorf("conn %s state = %s, want ESTABLISHED", in.ID, in.State)
		}
	}
}

// TestLeveledLoggerCarriesConnContext checks that lifecycle lines flow
// through a configured obs.Logger with conn id and state fields attached.
func TestLeveledLoggerCarriesConnContext(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	sink := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	withLogger := func(c *Config) {
		c.Logf = nil
		c.Logger = obs.NewLogger(sink, obs.LevelInfo)
	}
	env := newEnv(t, []string{"h1", "h2"}, withLogger)
	client, _ := env.pair("a", "h1", "b", "h2")
	id := client.ID().String()

	mu.Lock()
	defer mu.Unlock()
	var opened bool
	for _, ln := range lines {
		if strings.HasPrefix(ln, "INFO") && strings.Contains(ln, "opened in") &&
			strings.Contains(ln, "conn="+id) && strings.Contains(ln, "host=h1") {
			opened = true
		}
	}
	if !opened {
		t.Fatalf("no INFO opened line with conn context; lines = %q", lines)
	}
}
