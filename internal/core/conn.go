package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"naplet/internal/dhkx"
	"naplet/internal/fsm"
	"naplet/internal/obs"
	"naplet/internal/transport"
	"naplet/internal/wire"
)

// This file holds the Socket's identity, state, and lifecycle bookkeeping.
// The data plane (reader/flusher goroutines, receive buffer, send log,
// drain) lives in dataplane.go; the control-plane suspend/resume/close
// exchanges live in ops.go.

// Errors returned by Socket operations.
var (
	// ErrClosed reports use of a closed connection.
	ErrClosed = errors.New("napletsocket: connection closed")
	// ErrUnrecoverable reports a failure-recovery gap: frames needed for
	// retransmission were evicted from the bounded send log.
	ErrUnrecoverable = errors.New("napletsocket: unrecoverable data loss after failure")
	// ErrMigrated reports use of a Socket object whose agent has migrated
	// away: the connection lives on, but this handle is dead — re-attach at
	// the new host with Controller.AgentSocket.
	ErrMigrated = errors.New("napletsocket: connection migrated with its agent; re-attach via AgentSocket")
)

// bufEntry is one frame held in the receive buffer or send log.
type bufEntry struct {
	Seq     uint64
	Payload []byte
	// ViaBuffer marks receive-buffer entries that crossed a migration in
	// the buffer (the light dots of Figure 7).
	ViaBuffer bool
}

// Observer receives a callback for every message delivered to the
// application, for the Figure 7 instrumentation. fromBuffer is true when
// the message was served from the migrated NapletInputStream buffer.
//
// The payload slice may come from the data plane's buffer pool and be
// recycled as soon as the callback returns: observers must copy anything
// they keep. A message partially read by stream Read whose tail then
// crosses a migration or crash restore produces one extra callback for the
// remainder (same seq, fromBuffer=true) when the tail is finally served.
type Observer func(seq uint64, payload []byte, fromBuffer bool)

// Socket is one endpoint of a NapletSocket connection: the agent-oriented,
// location-independent socket of the paper. It is created by
// Controller.Open (client side) or ServerSocket.Accept (server side), and
// remains usable across any number of migrations of either agent.
//
// Read and Write are safe for one reader and one writer concurrently (plus
// the control plane); both block transparently while the connection is
// suspended for a migration.
type Socket struct {
	ctrl *Controller
	id   wire.ConnID
	// localAgent and remoteAgent are fixed for the connection's lifetime.
	localAgent, remoteAgent string
	// highPriority is true when the local agent wins the hash-based
	// migration priority of Section 3.1.
	highPriority bool
	sessionKey   []byte
	auth         *dhkx.Authenticator
	m            *fsm.Machine

	// suspendOpMu serializes local suspend/resume/close operations.
	suspendOpMu sync.Mutex
	// drainMu makes drainAndClose single-entry: a second caller blocks
	// until the first teardown finishes, then sees the socket gone.
	drainMu sync.Mutex
	// writeMu serializes frame writes (application data, retransmits, and
	// the pre-suspend flush).
	writeMu sync.Mutex
	// flushMu serializes the actual socket writes of coalesced batches. The
	// background flusher detaches a batch under writeMu but performs the
	// write syscall under flushMu only, so writers keep encoding frames
	// while a flush is in flight. Lock order: writeMu, then flushMu; never
	// while holding mu.
	flushMu sync.Mutex

	// mu guards everything below; cond is signalled on any change readers,
	// writers, or waiters might care about.
	mu   sync.Mutex
	cond *sync.Cond

	sock net.Conn
	fw   *wire.FrameWriter
	// gen counts data-socket generations, so a stale reader goroutine's
	// exit is ignored.
	gen int
	// flushCh signals the generation's background flusher that buffered
	// frames are waiting; nil when no data socket is installed. Closed
	// (under mu) when the generation ends, which terminates the flusher.
	flushCh chan struct{}
	// retxPending is true while installSocket is writing the send log to a
	// fresh socket outside mu: send-log payload buffers must not be
	// recycled to the pool while the retransmitter may still read them.
	retxPending bool

	// Event-driven data plane (transport-stream path). pumpSrc is the
	// current generation's stream when the connection runs goroutine-free:
	// readable/writable callbacks enqueue the socket on the controller's
	// shared worker pool instead of waking dedicated loops. pumpPaused
	// marks the pump stopped for receive-buffer backpressure; the reader
	// restarts it when the application catches up. All three are guarded
	// by mu; pumpMu (taken without mu) single-flights pump passes.
	pumpMu     sync.Mutex
	pumpSrc    *transport.Stream
	pumpPaused bool
	// pumpDec is the generation's incremental frame decoder (one per
	// installed stream, swapped under mu, used under pumpMu): it carries
	// partial-frame state across pump passes, so frames larger than the
	// stream's flow-control window decode as their bytes arrive.
	pumpDec *wire.FrameDecoder
	// dpQueued dedups pool entries; pumpReq/flushReq are the level-triggered
	// event flags a pool pass consumes. flushSpare is the flush batch's
	// recycled backing buffer, guarded by flushMu.
	dpQueued, pumpReq, flushReq atomic.Bool
	flushSpare                  []byte

	// traceSpan is the span of the in-flight traced operation on this
	// socket (a migration's suspend or resume); while set, every outgoing
	// control message carries its context so the peer's handling joins
	// the same trace, and FSM edges are annotated onto it.
	traceSpan *obs.Span

	// Receive side (the NapletInputStream of Section 3.1).
	recvBuf   []bufEntry
	recvBytes int
	// leftover is the undelivered tail of the last partially-read message
	// (stream Read only); leftoverBack is its full backing buffer, returned
	// to the payload pool once the tail is drained. leftoverSeq and
	// leftoverBuf carry the message's identity and buffer provenance across
	// checkpoints, and leftoverRestored marks a tail that crossed a
	// migration or crash restore — its delivery is re-announced to the
	// observer as a from-buffer event (Fig 7 accounting).
	leftover         []byte
	leftoverBack     []byte
	leftoverSeq      uint64
	leftoverBuf      bool
	leftoverRestored bool
	lastEnqueued     uint64
	// Drain bookkeeping during suspend.
	suspending    bool
	peerFlushSeen bool
	peerFlushSeq  uint64
	drained       bool

	// Send side.
	nextSendSeq uint64
	sendLog     []bufEntry
	sendLogSize int

	// Peer addressing; updated by RESUME/SUS_RES messages when the peer
	// moves.
	peerControlAddr string
	peerDataAddr    string

	// Authentication counters.
	sendNonce     uint64
	lastPeerNonce uint64

	// Concurrent-migration bookkeeping (Sections 3.1–3.2).
	remoteSuspended bool
	localSuspended  bool
	owesSusRes      bool
	parkedSuspend   bool
	// susResReceived latches a SUS_RES that arrives before the local
	// suspend has parked, so the release cannot be lost to the race.
	susResReceived bool
	// peerResumeParked records that we answered the peer's RESUME with
	// RESUME_WAIT: the peer is pinned in RESUME_WAIT until we land and
	// resume toward it, so a local suspend on this connection is already
	// satisfied (Fig 5).
	peerResumeParked bool

	// Establishment bookkeeping (server side).
	idReceived    bool
	sockInstalled bool
	accepted      bool

	closed   bool
	closeErr error
	failing  bool
	// failedAt opens a failure episode (data-socket failure, confirmed peer
	// failure, or a crash restore); cleared when the connection resumes,
	// recording the recovery latency.
	failedAt time.Time

	observer Observer
}

// agentPriority computes the deadlock-breaking migration priority of
// Section 3.1: FNV-64a over the agent id, ties broken lexicographically.
func agentPriority(local, remote string) bool {
	hl, hr := fnv.New64a(), fnv.New64a()
	hl.Write([]byte(local))
	hr.Write([]byte(remote))
	a, b := hl.Sum64(), hr.Sum64()
	if a != b {
		return a > b
	}
	return local > remote
}

func newSocket(ctrl *Controller, id wire.ConnID, local, remote string, key []byte, start fsm.State) (*Socket, error) {
	auth, err := dhkx.NewAuthenticator(key)
	if err != nil {
		return nil, err
	}
	s := &Socket{
		ctrl:         ctrl,
		id:           id,
		localAgent:   local,
		remoteAgent:  remote,
		highPriority: agentPriority(local, remote),
		sessionKey:   append([]byte(nil), key...),
		auth:         auth,
		m:            fsm.NewMachine(start),
		nextSendSeq:  1,
	}
	s.cond = sync.NewCond(&s.mu)
	s.observeFSM()
	return s, nil
}

// ID returns the connection id shared by both endpoints; it is the stable
// handle an agent can use to re-attach to the connection after a migration
// (Controller.AgentSocket).
func (s *Socket) ID() wire.ConnID { return s.id }

// LocalAgent returns the agent id of this endpoint.
func (s *Socket) LocalAgent() string { return s.localAgent }

// RemoteAgent returns the agent id of the peer endpoint.
func (s *Socket) RemoteAgent() string { return s.remoteAgent }

// State returns the connection's protocol state.
func (s *Socket) State() fsm.State { return s.m.State() }

// Info is a point-in-time snapshot of a connection endpoint, for
// monitoring, debugging, and tests.
type Info struct {
	ID                      wire.ConnID
	LocalAgent, RemoteAgent string
	// State is the protocol state name (Table 1 of the paper).
	State string
	// HighPriority reports whether the local agent wins the migration
	// priority (Section 3.1).
	HighPriority bool
	// NextSendSeq and LastEnqueued are the data-stream cursors: the next
	// outgoing frame number and the highest received frame number.
	NextSendSeq, LastEnqueued uint64
	// RecvBufferedBytes and RecvBufferedMsgs describe the NapletInputStream
	// buffer contents.
	RecvBufferedBytes, RecvBufferedMsgs int
	// LeftoverFromBuffer reports whether the partially-read message tail
	// (counted in RecvBufferedBytes) was served from the migrated buffer —
	// the Fig 7 socket-vs-buffer provenance of leftover bytes.
	LeftoverFromBuffer bool
	// SendLogBytes is the retained retransmission log size.
	SendLogBytes int
	// PeerControlAddr and PeerDataAddr are the last known peer endpoints.
	PeerControlAddr, PeerDataAddr string
	// Transport is the id of the shared per-host-pair transport currently
	// carrying the connection's data stream ("" when the data socket is
	// down or on the legacy raw-TCP path) — the stream→transport mapping
	// shown by /connz.
	Transport string
	// Closed reports a finalized connection.
	Closed bool
}

// Info returns a snapshot of the endpoint.
func (s *Socket) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := Info{
		ID:                 s.id,
		LocalAgent:         s.localAgent,
		RemoteAgent:        s.remoteAgent,
		State:              s.m.State().String(),
		HighPriority:       s.highPriority,
		NextSendSeq:        s.nextSendSeq,
		LastEnqueued:       s.lastEnqueued,
		RecvBufferedBytes:  s.recvBytes + len(s.leftover),
		RecvBufferedMsgs:   len(s.recvBuf),
		LeftoverFromBuffer: len(s.leftover) > 0 && s.leftoverBuf,
		SendLogBytes:       s.sendLogSize,
		PeerControlAddr:    s.peerControlAddr,
		PeerDataAddr:       s.peerDataAddr,
		Closed:             s.closed,
	}
	if tp, ok := s.sock.(interface{ TransportID() wire.ConnID }); ok {
		info.Transport = tp.TransportID().String()
	}
	return info
}

// KillDataSocket forcibly closes the underlying data socket without any
// protocol exchange — fault injection for the failure-recovery extension
// (tests, ablations). The connection degrades to SUSPENDED and, unless
// failure resume is disabled, heals automatically.
func (s *Socket) KillDataSocket() {
	s.mu.Lock()
	sock := s.sock
	s.mu.Unlock()
	if sock != nil {
		sock.Close()
	}
}

// SetObserver installs a delivery observer (Figure 7 instrumentation).
func (s *Socket) SetObserver(o Observer) {
	s.mu.Lock()
	s.observer = o
	s.mu.Unlock()
}

// step drives the state machine, logging illegal transitions; callers pass
// events they have already validated against the current state under mu.
// Every transition broadcasts on cond: the timed waits throughout this
// package are event-driven (they sleep until their full deadline), so any
// state change a waiter might be watching for must wake it here rather
// than rely on a polling interval.
func (s *Socket) step(e fsm.Event) error {
	_, err := s.m.Step(e)
	if err != nil {
		s.ctrl.logf("conn %s (%s<->%s): %v", s.id, s.localAgent, s.remoteAgent, err)
	}
	s.cond.Broadcast()
	return err
}

// closedErrLocked reports why the connection is unusable. Caller holds mu.
func (s *Socket) closedErrLocked() error {
	if s.closeErr != nil {
		return s.closeErr
	}
	return ErrClosed
}

// markClosedLocked finalizes the connection. Caller holds mu.
func (s *Socket) markClosedLocked(err error) {
	if s.closed {
		return
	}
	s.closed = true
	s.closeErr = err
	s.stopFlusherLocked()
	s.pumpSrc = nil
	if s.sock != nil {
		s.sock.Close()
		s.sock = nil
		s.fw = nil
	}
	s.cond.Broadcast()
}

// setTraceSpan installs (or, with nil, clears) the span whose context is
// stamped onto this socket's outgoing control messages and onto which FSM
// lifecycle edges are annotated.
func (s *Socket) setTraceSpan(sp *obs.Span) {
	s.mu.Lock()
	s.traceSpan = sp
	s.mu.Unlock()
}

// curTraceSpan returns the socket's in-flight traced-operation span, if any.
func (s *Socket) curTraceSpan() *obs.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traceSpan
}

// waitState blocks until the machine is in one of the wanted states, the
// connection closes, or the timeout passes. It reports the final state.
func (s *Socket) waitState(timeout time.Duration, wanted ...fsm.State) (fsm.State, error) {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		cur := s.m.State()
		for _, w := range wanted {
			if cur == w {
				return cur, nil
			}
		}
		if s.closed {
			return cur, ErrClosed
		}
		if !waitCond(s.cond, time.Until(deadline)) {
			return cur, fmt.Errorf("napletsocket: timeout waiting for state %v (at %s)", wanted, cur)
		}
	}
}
