package core

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"time"

	"naplet/internal/dhkx"
	"naplet/internal/fsm"
	"naplet/internal/wire"
)

// Limits of the per-connection buffers.
const (
	// maxRecvBuffer bounds the receive-side message buffer; when full, the
	// reader goroutine stops pulling from the socket so TCP flow control
	// pushes back on the sender. The bound is ignored while draining for a
	// suspend — everything in flight must be captured.
	maxRecvBuffer = 4 << 20
	// maxSendLog bounds the retransmission log kept for failure recovery.
	// A graceful suspend clears the log (the drain handshake proves
	// delivery); the cap only matters between suspends.
	maxSendLog = 4 << 20
)

// Errors returned by Socket operations.
var (
	// ErrClosed reports use of a closed connection.
	ErrClosed = errors.New("napletsocket: connection closed")
	// ErrUnrecoverable reports a failure-recovery gap: frames needed for
	// retransmission were evicted from the bounded send log.
	ErrUnrecoverable = errors.New("napletsocket: unrecoverable data loss after failure")
	// ErrMigrated reports use of a Socket object whose agent has migrated
	// away: the connection lives on, but this handle is dead — re-attach at
	// the new host with Controller.AgentSocket.
	ErrMigrated = errors.New("napletsocket: connection migrated with its agent; re-attach via AgentSocket")
)

// bufEntry is one frame held in the receive buffer or send log.
type bufEntry struct {
	Seq     uint64
	Payload []byte
	// ViaBuffer marks receive-buffer entries that crossed a migration in
	// the buffer (the light dots of Figure 7).
	ViaBuffer bool
}

// Observer receives a callback for every message delivered to the
// application, for the Figure 7 instrumentation. fromBuffer is true when
// the message was served from the migrated NapletInputStream buffer.
type Observer func(seq uint64, payload []byte, fromBuffer bool)

// Socket is one endpoint of a NapletSocket connection: the agent-oriented,
// location-independent socket of the paper. It is created by
// Controller.Open (client side) or ServerSocket.Accept (server side), and
// remains usable across any number of migrations of either agent.
//
// Read and Write are safe for one reader and one writer concurrently (plus
// the control plane); both block transparently while the connection is
// suspended for a migration.
type Socket struct {
	ctrl *Controller
	id   wire.ConnID
	// localAgent and remoteAgent are fixed for the connection's lifetime.
	localAgent, remoteAgent string
	// highPriority is true when the local agent wins the hash-based
	// migration priority of Section 3.1.
	highPriority bool
	sessionKey   []byte
	auth         *dhkx.Authenticator
	m            *fsm.Machine

	// suspendOpMu serializes local suspend/resume/close operations.
	suspendOpMu sync.Mutex
	// drainMu makes drainAndClose single-entry: a second caller blocks
	// until the first teardown finishes, then sees the socket gone.
	drainMu sync.Mutex
	// writeMu serializes frame writes (application data, retransmits, and
	// the pre-suspend flush).
	writeMu sync.Mutex

	// mu guards everything below; cond is signalled on any change readers,
	// writers, or waiters might care about.
	mu   sync.Mutex
	cond *sync.Cond

	sock net.Conn
	fw   *wire.FrameWriter
	// gen counts data-socket generations, so a stale reader goroutine's
	// exit is ignored.
	gen int

	// Receive side (the NapletInputStream of Section 3.1).
	recvBuf      []bufEntry
	recvBytes    int
	leftover     []byte
	leftoverBuf  bool // provenance of leftover bytes
	lastEnqueued uint64
	// Drain bookkeeping during suspend.
	suspending    bool
	peerFlushSeen bool
	peerFlushSeq  uint64
	drained       bool

	// Send side.
	nextSendSeq uint64
	sendLog     []bufEntry
	sendLogSize int

	// Peer addressing; updated by RESUME/SUS_RES messages when the peer
	// moves.
	peerControlAddr string
	peerDataAddr    string

	// Authentication counters.
	sendNonce     uint64
	lastPeerNonce uint64

	// Concurrent-migration bookkeeping (Sections 3.1–3.2).
	remoteSuspended bool
	localSuspended  bool
	owesSusRes      bool
	parkedSuspend   bool
	// susResReceived latches a SUS_RES that arrives before the local
	// suspend has parked, so the release cannot be lost to the race.
	susResReceived bool
	// peerResumeParked records that we answered the peer's RESUME with
	// RESUME_WAIT: the peer is pinned in RESUME_WAIT until we land and
	// resume toward it, so a local suspend on this connection is already
	// satisfied (Fig 5).
	peerResumeParked bool

	// Establishment bookkeeping (server side).
	idReceived    bool
	sockInstalled bool
	accepted      bool

	closed   bool
	closeErr error
	failing  bool
	// failedAt opens a failure episode (data-socket failure, confirmed peer
	// failure, or a crash restore); cleared when the connection resumes,
	// recording the recovery latency.
	failedAt time.Time

	observer Observer
}

// agentPriority computes the deadlock-breaking migration priority of
// Section 3.1: FNV-64a over the agent id, ties broken lexicographically.
func agentPriority(local, remote string) bool {
	hl, hr := fnv.New64a(), fnv.New64a()
	hl.Write([]byte(local))
	hr.Write([]byte(remote))
	a, b := hl.Sum64(), hr.Sum64()
	if a != b {
		return a > b
	}
	return local > remote
}

func newSocket(ctrl *Controller, id wire.ConnID, local, remote string, key []byte, start fsm.State) (*Socket, error) {
	auth, err := dhkx.NewAuthenticator(key)
	if err != nil {
		return nil, err
	}
	s := &Socket{
		ctrl:         ctrl,
		id:           id,
		localAgent:   local,
		remoteAgent:  remote,
		highPriority: agentPriority(local, remote),
		sessionKey:   append([]byte(nil), key...),
		auth:         auth,
		m:            fsm.NewMachine(start),
		nextSendSeq:  1,
	}
	s.cond = sync.NewCond(&s.mu)
	s.observeFSM()
	return s, nil
}

// ID returns the connection id shared by both endpoints; it is the stable
// handle an agent can use to re-attach to the connection after a migration
// (Controller.AgentSocket).
func (s *Socket) ID() wire.ConnID { return s.id }

// LocalAgent returns the agent id of this endpoint.
func (s *Socket) LocalAgent() string { return s.localAgent }

// RemoteAgent returns the agent id of the peer endpoint.
func (s *Socket) RemoteAgent() string { return s.remoteAgent }

// State returns the connection's protocol state.
func (s *Socket) State() fsm.State { return s.m.State() }

// Info is a point-in-time snapshot of a connection endpoint, for
// monitoring, debugging, and tests.
type Info struct {
	ID                      wire.ConnID
	LocalAgent, RemoteAgent string
	// State is the protocol state name (Table 1 of the paper).
	State string
	// HighPriority reports whether the local agent wins the migration
	// priority (Section 3.1).
	HighPriority bool
	// NextSendSeq and LastEnqueued are the data-stream cursors: the next
	// outgoing frame number and the highest received frame number.
	NextSendSeq, LastEnqueued uint64
	// RecvBufferedBytes and RecvBufferedMsgs describe the NapletInputStream
	// buffer contents.
	RecvBufferedBytes, RecvBufferedMsgs int
	// SendLogBytes is the retained retransmission log size.
	SendLogBytes int
	// PeerControlAddr and PeerDataAddr are the last known peer endpoints.
	PeerControlAddr, PeerDataAddr string
	// Closed reports a finalized connection.
	Closed bool
}

// Info returns a snapshot of the endpoint.
func (s *Socket) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Info{
		ID:                s.id,
		LocalAgent:        s.localAgent,
		RemoteAgent:       s.remoteAgent,
		State:             s.m.State().String(),
		HighPriority:      s.highPriority,
		NextSendSeq:       s.nextSendSeq,
		LastEnqueued:      s.lastEnqueued,
		RecvBufferedBytes: s.recvBytes + len(s.leftover),
		RecvBufferedMsgs:  len(s.recvBuf),
		SendLogBytes:      s.sendLogSize,
		PeerControlAddr:   s.peerControlAddr,
		PeerDataAddr:      s.peerDataAddr,
		Closed:            s.closed,
	}
}

// KillDataSocket forcibly closes the underlying data socket without any
// protocol exchange — fault injection for the failure-recovery extension
// (tests, ablations). The connection degrades to SUSPENDED and, unless
// failure resume is disabled, heals automatically.
func (s *Socket) KillDataSocket() {
	s.mu.Lock()
	sock := s.sock
	s.mu.Unlock()
	if sock != nil {
		sock.Close()
	}
}

// SetObserver installs a delivery observer (Figure 7 instrumentation).
func (s *Socket) SetObserver(o Observer) {
	s.mu.Lock()
	s.observer = o
	s.mu.Unlock()
}

// step drives the state machine, logging illegal transitions; callers pass
// events they have already validated against the current state under mu.
func (s *Socket) step(e fsm.Event) error {
	_, err := s.m.Step(e)
	if err != nil {
		s.ctrl.logf("conn %s (%s<->%s): %v", s.id, s.localAgent, s.remoteAgent, err)
	}
	return err
}

// ---- data plane ----

// installSocket adopts a fresh data socket: retransmits anything the peer
// reports missing, recreates the framed streams, and starts the reader.
// Callers transition the state machine afterwards.
func (s *Socket) installSocket(sock net.Conn, peerHasUpTo uint64) error {
	if wrap := s.ctrl.cfg.WrapData; wrap != nil {
		sock = wrap(sock)
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()

	s.mu.Lock()
	// Trim acknowledged frames, then collect what the peer is missing.
	s.trimSendLogLocked(peerHasUpTo)
	var missing []bufEntry
	if len(s.sendLog) > 0 && s.sendLog[0].Seq > peerHasUpTo+1 {
		s.mu.Unlock()
		sock.Close()
		return fmt.Errorf("%w: peer has up to %d, log starts at %d",
			ErrUnrecoverable, peerHasUpTo, s.sendLog[0].Seq)
	}
	missing = append(missing, s.sendLog...)
	s.mu.Unlock()

	bw := bufio.NewWriter(sock)
	for _, e := range missing {
		if err := wire.WriteFrame(bw, wire.Frame{Seq: e.Seq, Flags: wire.FlagData, Payload: e.Payload}); err != nil {
			sock.Close()
			return fmt.Errorf("napletsocket: retransmitting frame %d: %w", e.Seq, err)
		}
	}
	if err := bw.Flush(); err != nil {
		sock.Close()
		return fmt.Errorf("napletsocket: flushing retransmits: %w", err)
	}

	s.mu.Lock()
	s.sock = sock
	s.gen++
	gen := s.gen
	s.fw = wire.NewFrameWriter(sock, s.nextSendSeq)
	s.suspending = false
	s.peerFlushSeen = false
	s.drained = false
	s.failing = false
	s.localSuspended = false
	s.remoteSuspended = false
	s.susResReceived = false
	s.peerResumeParked = false
	s.sockInstalled = true
	s.cond.Broadcast()
	s.mu.Unlock()

	go s.readerLoop(sock, gen)
	return nil
}

// readerLoop pulls frames off one data-socket generation into the receive
// buffer until the socket ends — gracefully (peer flushed for a suspend) or
// not (failure).
func (s *Socket) readerLoop(sock net.Conn, gen int) {
	br := bufio.NewReader(sock)
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			s.readerExit(gen, err)
			return
		}
		switch {
		case f.IsFlush():
			s.mu.Lock()
			if gen == s.gen {
				s.peerFlushSeen = true
				s.peerFlushSeq = f.Seq
			}
			s.mu.Unlock()
		case f.IsData():
			s.mu.Lock()
			if gen != s.gen {
				s.mu.Unlock()
				return
			}
			// Flow control: hold off when the application is behind —
			// except while draining for a suspend, when everything in
			// flight must be captured into the buffer.
			for s.recvBytes > maxRecvBuffer && !s.suspending && !s.closed && gen == s.gen {
				s.cond.Wait()
			}
			if gen != s.gen || s.closed {
				s.mu.Unlock()
				return
			}
			// Sequence-number dedup makes redelivery idempotent.
			if f.Seq > s.lastEnqueued {
				s.recvBuf = append(s.recvBuf, bufEntry{Seq: f.Seq, Payload: f.Payload, ViaBuffer: s.suspending})
				s.recvBytes += len(f.Payload)
				s.lastEnqueued = f.Seq
				s.cond.Broadcast()
			}
			s.mu.Unlock()
		}
	}
}

// readerExit classifies the end of a socket generation: a completed
// suspend drain, a close, or a failure.
func (s *Socket) readerExit(gen int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen != s.gen || s.closed {
		return
	}
	st := s.m.State()
	// The peer's orderly teardown (flush marker then half-close) during any
	// suspend or close in progress is a completed drain — even if our own
	// drainAndClose has not started yet (its ACK may still be in flight).
	orderly := s.peerFlushSeen && s.lastEnqueued >= s.peerFlushSeq
	tearingDown := s.suspending || st != fsm.Established
	if orderly && tearingDown {
		s.drained = true
		s.cond.Broadcast()
		return
	}
	if st == fsm.CloseSent || st == fsm.CloseAcked || st == fsm.Closed {
		// A close is in progress; EOF is expected, not a failure.
		s.drained = true
		s.cond.Broadcast()
		return
	}
	// Unexpected end while established (or a botched drain): degrade to
	// SUSPENDED and let failure recovery re-resume (extension; fsm Fail).
	s.failLocked(err)
}

// failLocked moves an established connection to SUSPENDED after a data
// socket failure and schedules recovery. Caller holds mu.
func (s *Socket) failLocked(cause error) {
	if s.failing || s.closed {
		return
	}
	if s.m.State() != fsm.Established {
		// Failures in other states are handled by the ops that own them.
		s.cond.Broadcast()
		return
	}
	s.failing = true
	if s.failedAt.IsZero() {
		s.failedAt = time.Now()
	}
	s.step(fsm.Fail)
	if s.sock != nil {
		s.sock.Close()
		s.sock = nil
		s.fw = nil
	}
	s.sockInstalled = false
	s.cond.Broadcast()
	s.ctrl.obs.failures.Inc()
	s.ctrl.logf("conn %s: data socket failed (%v); degraded to SUSPENDED", s.id, cause)
	if s.ctrl.cfg.DisableFailureResume {
		return
	}
	delay := s.ctrl.cfg.failureResumeDelay(s.highPriority)
	go s.failureResume(delay)
}

// failureResume re-resumes a connection that degraded to SUSPENDED. The
// high-priority side fires first; the low-priority side is a late fallback,
// and the resume-race rules sort out collisions. While the peer stays
// unreachable (crashed and not yet restarted, or partitioned away) attempts
// are retried with capped exponential backoff, so the connection heals as
// soon as the peer returns rather than stranding after one failed try.
func (s *Socket) failureResume(delay time.Duration) {
	const maxDelay = 5 * time.Second
	for {
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-s.ctrl.done:
			timer.Stop()
			return
		}
		s.mu.Lock()
		stillDown := s.failing && !s.closed && s.m.State() == fsm.Suspended
		migrating := s.ctrl.isMigrating(s.localAgent)
		s.mu.Unlock()
		if !stillDown {
			return
		}
		if !migrating {
			err := s.Resume()
			if err == nil || errors.Is(err, ErrClosed) || errors.Is(err, ErrMigrated) {
				return
			}
			s.ctrl.logf("conn %s: failure resume: %v", s.id, err)
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

// Read reads application bytes, serving the migrated buffer before the live
// socket. It blocks transparently across suspensions and returns io.EOF
// once the connection is closed and the buffer is empty.
func (s *Socket) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.leftover) > 0 {
			n := copy(p, s.leftover)
			s.leftover = s.leftover[n:]
			return n, nil
		}
		if len(s.recvBuf) > 0 {
			e := s.recvBuf[0]
			s.recvBuf = s.recvBuf[1:]
			s.recvBytes -= len(e.Payload)
			s.cond.Broadcast() // reader may be flow-controlled
			if obs := s.observer; obs != nil {
				obs(e.Seq, e.Payload, e.ViaBuffer)
			}
			n := copy(p, e.Payload)
			s.leftover = e.Payload[n:]
			s.leftoverBuf = e.ViaBuffer
			return n, nil
		}
		if s.closed {
			if s.closeErr != nil {
				return 0, s.closeErr
			}
			return 0, io.EOF
		}
		s.cond.Wait()
	}
}

// ReadMsg reads one whole message (one writer-side WriteMsg / Write call's
// frame), preserving message boundaries. It must not be mixed with Read on
// the same socket.
func (s *Socket) ReadMsg() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.recvBuf) > 0 {
			e := s.recvBuf[0]
			s.recvBuf = s.recvBuf[1:]
			s.recvBytes -= len(e.Payload)
			s.cond.Broadcast()
			if obs := s.observer; obs != nil {
				obs(e.Seq, e.Payload, e.ViaBuffer)
			}
			return e.Payload, nil
		}
		if s.closed {
			if s.closeErr != nil {
				return nil, s.closeErr
			}
			return nil, io.EOF
		}
		s.cond.Wait()
	}
}

// Write sends application bytes, splitting them into sequence-numbered
// frames. It blocks transparently while the connection is suspended and
// returns only after every frame is handed to the transport.
func (s *Socket) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > wire.MaxFramePayload {
			chunk = chunk[:wire.MaxFramePayload]
		}
		if err := s.writeFrame(chunk); err != nil {
			return total, err
		}
		total += len(chunk)
		p = p[len(chunk):]
	}
	return total, nil
}

// WriteMsg sends one payload as exactly one frame, preserving message
// boundaries for ReadMsg.
func (s *Socket) WriteMsg(p []byte) error {
	if len(p) > wire.MaxFramePayload {
		return fmt.Errorf("napletsocket: message of %d bytes exceeds frame limit %d", len(p), wire.MaxFramePayload)
	}
	return s.writeFrame(p)
}

// writeFrame sends one frame, waiting out suspensions and retrying across
// failures; the frame's sequence number is fixed on first attempt so a
// retry after a failure cannot duplicate delivery.
func (s *Socket) writeFrame(p []byte) error {
	for {
		// Wait until the connection is writable.
		s.mu.Lock()
		for !(s.m.State() == fsm.Established && s.sock != nil && !s.suspending) {
			if s.closed {
				err := s.closedErrLocked()
				s.mu.Unlock()
				return err
			}
			s.cond.Wait()
		}
		s.mu.Unlock()

		s.writeMu.Lock()
		s.mu.Lock()
		writable := s.m.State() == fsm.Established && s.sock != nil && !s.suspending
		if s.closed {
			err := s.closedErrLocked()
			s.mu.Unlock()
			s.writeMu.Unlock()
			return err
		}
		if !writable {
			s.mu.Unlock()
			s.writeMu.Unlock()
			continue
		}
		fw := s.fw
		s.mu.Unlock()

		seq, err := fw.WriteData(p)
		if err == nil {
			s.mu.Lock()
			s.nextSendSeq = seq + 1
			s.appendSendLogLocked(seq, p)
			s.mu.Unlock()
			s.writeMu.Unlock()
			return nil
		}
		s.writeMu.Unlock()
		// The socket died under us: degrade and retry after recovery. The
		// peer dedups by sequence number, so rewriting is safe.
		s.mu.Lock()
		s.failLocked(err)
		s.mu.Unlock()
	}
}

func (s *Socket) appendSendLogLocked(seq uint64, p []byte) {
	cp := make([]byte, len(p))
	copy(cp, p)
	s.sendLog = append(s.sendLog, bufEntry{Seq: seq, Payload: cp})
	s.sendLogSize += len(cp)
	for s.sendLogSize > maxSendLog && len(s.sendLog) > 1 {
		s.sendLogSize -= len(s.sendLog[0].Payload)
		s.sendLog = s.sendLog[1:]
	}
}

// trimSendLogLocked drops frames the peer confirmed receiving.
func (s *Socket) trimSendLogLocked(peerHasUpTo uint64) {
	i := 0
	for i < len(s.sendLog) && s.sendLog[i].Seq <= peerHasUpTo {
		s.sendLogSize -= len(s.sendLog[i].Payload)
		i++
	}
	s.sendLog = s.sendLog[i:]
}

// drainAndClose executes the suspend-side teardown of the data socket:
// flush marker, half-close, drain the inbound direction to EOF into the
// buffer, then close. It is idempotent; a second call while suspended is a
// no-op. On a drain timeout the socket is failed rather than suspended
// cleanly (the send log covers the gap at resume).
func (s *Socket) drainAndClose() {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	s.mu.Lock()
	if s.sock == nil {
		s.mu.Unlock()
		return
	}
	s.suspending = true
	sock := s.sock
	s.cond.Broadcast()
	s.mu.Unlock()

	// Write the flush marker after any in-flight application frame.
	s.writeMu.Lock()
	s.mu.Lock()
	fw := s.fw
	s.mu.Unlock()
	var flushErr error
	if fw != nil {
		flushErr = fw.WriteFlush()
	}
	s.writeMu.Unlock()
	if flushErr == nil {
		if cw, ok := sock.(interface{ CloseWrite() error }); ok {
			flushErr = cw.CloseWrite()
		}
	}

	// Wait for the reader to drain the peer's flush; bound the wait so a
	// dead peer cannot wedge a migration.
	deadline := time.Now().Add(s.ctrl.cfg.drainTimeout())
	s.mu.Lock()
	for !s.drained && !s.closed && s.sock != nil && flushErr == nil {
		if time.Now().After(deadline) {
			break
		}
		waitCond(s.cond, 20*time.Millisecond)
	}
	graceful := s.drained
	if s.sock != nil {
		s.sock.Close()
		s.sock = nil
		s.fw = nil
	}
	s.sockInstalled = false
	s.suspending = false
	s.drained = false
	s.peerFlushSeen = false
	if graceful {
		// Drain handshake proves the peer received everything we sent.
		s.sendLog = nil
		s.sendLogSize = 0
		s.ctrl.obs.drainsGraceful.Inc()
	} else {
		s.ctrl.obs.drainsUngraceful.Inc()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// waitCond waits on c with a timeout, implemented with a helper timer
// because sync.Cond has no native timed wait.
func waitCond(c *sync.Cond, d time.Duration) {
	done := make(chan struct{})
	t := time.AfterFunc(d, func() {
		c.L.Lock()
		select {
		case <-done:
		default:
			c.Broadcast()
		}
		c.L.Unlock()
	})
	c.Wait()
	close(done)
	t.Stop()
}

// closedErrLocked reports why the connection is unusable. Caller holds mu.
func (s *Socket) closedErrLocked() error {
	if s.closeErr != nil {
		return s.closeErr
	}
	return ErrClosed
}

// markClosedLocked finalizes the connection. Caller holds mu.
func (s *Socket) markClosedLocked(err error) {
	if s.closed {
		return
	}
	s.closed = true
	s.closeErr = err
	if s.sock != nil {
		s.sock.Close()
		s.sock = nil
		s.fw = nil
	}
	s.cond.Broadcast()
}

// waitState blocks until the machine is in one of the wanted states, the
// connection closes, or the timeout passes. It reports the final state.
func (s *Socket) waitState(timeout time.Duration, wanted ...fsm.State) (fsm.State, error) {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		cur := s.m.State()
		for _, w := range wanted {
			if cur == w {
				return cur, nil
			}
		}
		if s.closed {
			return cur, ErrClosed
		}
		if time.Now().After(deadline) {
			return cur, fmt.Errorf("napletsocket: timeout waiting for state %v (at %s)", wanted, cur)
		}
		waitCond(s.cond, 20*time.Millisecond)
	}
}
