package core

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"naplet/internal/wire"
)

// rendezvous pairs arriving data sockets with the NapletSocket endpoints
// waiting for them. Both sides — the redirector delivering a socket, and a
// connection arming itself to receive one — meet on a per-connection
// channel, whichever arrives first.
// connKey identifies a connection endpoint on a host: both endpoints of a
// connection can live on the same host, so the connection id alone is not
// unique.
type connKey struct {
	id    wire.ConnID
	agent string
}

type rendezvous struct {
	mu    sync.Mutex
	chans map[connKey]chan net.Conn
}

func newRendezvous() *rendezvous {
	return &rendezvous{chans: make(map[connKey]chan net.Conn)}
}

func (r *rendezvous) channel(id connKey) chan net.Conn {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch, ok := r.chans[id]
	if !ok {
		ch = make(chan net.Conn, 1)
		r.chans[id] = ch
	}
	return ch
}

// arm returns the channel a waiting endpoint receives its socket on.
func (r *rendezvous) arm(id connKey) <-chan net.Conn { return r.channel(id) }

// deliver hands a socket to the endpoint armed for id, waiting up to
// timeout for one to arm. It reports whether the socket was taken.
func (r *rendezvous) deliver(id connKey, sock net.Conn, timeout time.Duration) bool {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case r.channel(id) <- sock:
		return true
	case <-t.C:
		return false
	}
}

// disarm discards the channel for id (endpoint no longer waiting). Any
// socket already queued is closed.
func (r *rendezvous) disarm(id connKey) {
	r.mu.Lock()
	ch, ok := r.chans[id]
	delete(r.chans, id)
	r.mu.Unlock()
	if ok {
		select {
		case sock := <-ch:
			sock.Close()
		default:
		}
	}
}

// redirector is the host's data-plane listener (Section 3.4 of the paper):
// every data socket — for a new connection or a resume — arrives here with
// a handoff header naming its connection, is authenticated, and is handed
// to the right NapletSocket. One redirector is shared by all connections of
// the host.
type redirector struct {
	ctrl *Controller
	ln   net.Listener
	wg   sync.WaitGroup
	done chan struct{}
}

func newRedirector(ctrl *Controller, addr string) (*redirector, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r := &redirector{ctrl: ctrl, ln: ln, done: make(chan struct{})}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

func (r *redirector) addr() string { return r.ln.Addr().String() }

func (r *redirector) close() error {
	close(r.done)
	err := r.ln.Close()
	r.wg.Wait()
	return err
}

// Accept-error backoff bounds, net/http-Server style: transient errors
// (EMFILE, ECONNABORTED) back off exponentially instead of hot-looping,
// and any successful accept resets the delay.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 1 * time.Second
)

// rendezvousDeliverTimeout bounds how long a delivered socket waits for its
// endpoint to arm.
const rendezvousDeliverTimeout = 5 * time.Second

func (r *redirector) acceptLoop() {
	defer r.wg.Done()
	var backoff time.Duration
	for {
		sock, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			r.ctrl.logf("redirector %s: accept error: %v; retrying in %v",
				r.ctrl.cfg.HostName, err, backoff)
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-r.done:
				timer.Stop()
				return
			}
			continue
		}
		backoff = 0
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.handle(sock)
		}()
	}
}

// handle dispatches one arriving data-plane connection. The first two
// bytes tell a shared-transport hello ("NT" magic) from a legacy raw
// handoff (whose 4-byte length prefix starts 0x00); transport connections
// go to the transport manager, legacy ones through the original
// authenticate-and-deliver path, kept for mixed-version peers and the
// low-level protocol tests.
func (r *redirector) handle(sock net.Conn) {
	sock.SetDeadline(time.Now().Add(r.ctrl.cfg.handshakeTimeout()))
	var sniff [2]byte
	if _, err := io.ReadFull(sock, sniff[:]); err != nil {
		r.ctrl.logf("redirector %s: short read on new connection: %v", r.ctrl.cfg.HostName, err)
		sock.Close()
		return
	}
	pc := &prependConn{Conn: sock, head: sniff[:]}
	if wire.SniffTransport(sniff[:]) {
		sock.SetDeadline(time.Time{}) // HandleConn sets its own handshake deadline
		if err := r.ctrl.tm.HandleConn(pc); err != nil {
			r.ctrl.logf("redirector %s: transport handshake: %v", r.ctrl.cfg.HostName, err)
		}
		return
	}
	r.handleLegacy(pc)
}

// handleLegacy authenticates one raw (pre-transport) data socket and
// delivers it. On any failure the socket is refused and closed; on success
// ownership passes to the receiving NapletSocket.
func (r *redirector) handleLegacy(sock net.Conn) {
	hdr, err := wire.ReadHandoffHeader(sock)
	if err != nil {
		r.ctrl.logf("redirector %s: bad handoff: %v", r.ctrl.cfg.HostName, err)
		sock.Close()
		return
	}
	if err := r.ctrl.authorizeHandoff(hdr); err != nil {
		r.ctrl.logf("redirector %s: refused %s handoff for %s: %v",
			r.ctrl.cfg.HostName, hdr.Purpose, hdr.ConnID, err)
		wire.WriteHandoffStatus(sock, wire.HandoffDenied)
		sock.Close()
		return
	}
	if err := wire.WriteHandoffStatus(sock, wire.HandoffOK); err != nil {
		sock.Close()
		return
	}
	sock.SetDeadline(time.Time{})
	if !r.ctrl.rv.deliver(connKey{id: hdr.ConnID, agent: hdr.TargetAgent}, sock, rendezvousDeliverTimeout) {
		r.ctrl.logf("redirector %s: no endpoint claimed %s handoff for %s",
			r.ctrl.cfg.HostName, hdr.Purpose, hdr.ConnID)
		sock.Close()
	}
}

// prependConn replays sniffed bytes ahead of the wrapped connection's
// stream. CloseWrite passes through so the half-close drain semantics
// survive the sniffing wrapper on the legacy path.
type prependConn struct {
	net.Conn
	head []byte
}

func (p *prependConn) Read(b []byte) (int, error) {
	if len(p.head) > 0 {
		n := copy(b, p.head)
		p.head = p.head[n:]
		return n, nil
	}
	return p.Conn.Read(b)
}

func (p *prependConn) CloseWrite() error {
	if cw, ok := p.Conn.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}
