package core

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"naplet/internal/timerwheel"
	"naplet/internal/wire"
)

// rendezvous pairs arriving data sockets with the NapletSocket endpoints
// waiting for them. An endpoint arms a callback; the redirector (or the
// transport layer) delivers a socket; whichever side arrives first waits
// for the other. A waiting endpoint costs one map entry and one shared
// timer-wheel slot — not a parked goroutine with its own timer — so 10k
// in-flight opens or resumes add no goroutines.
// connKey identifies a connection endpoint on a host: both endpoints of a
// connection can live on the same host, so the connection id alone is not
// unique.
type connKey struct {
	id    wire.ConnID
	agent string
}

// rvWaiter is an endpoint armed for its socket: the claim callback plus
// the wheel entry that expires the wait.
type rvWaiter struct {
	onSock func(net.Conn)
	timer  *timerwheel.Timer
}

// rvParked is a socket that arrived before its endpoint armed. The
// delivering goroutine blocks on res (it is a per-delivery goroutine,
// entitled to wait); true means an endpoint claimed the socket.
type rvParked struct {
	sock net.Conn
	res  chan bool
}

type rendezvous struct {
	mu      sync.Mutex
	waiters map[connKey]*rvWaiter
	parked  map[connKey]*rvParked
}

func newRendezvous() *rendezvous {
	return &rendezvous{
		waiters: make(map[connKey]*rvWaiter),
		parked:  make(map[connKey]*rvParked),
	}
}

// armFunc registers onSock to receive id's data socket. If the socket is
// already parked, onSock runs immediately (on a fresh goroutine — arming
// happens on control-message handlers that must not block on socket
// installs). Otherwise the callback waits for a deliver; if none lands
// within timeout, onTimeout runs instead and the arm is forgotten. A
// later disarm cancels a still-pending arm without either callback.
func (r *rendezvous) armFunc(id connKey, timeout time.Duration, onSock func(net.Conn), onTimeout func()) {
	r.mu.Lock()
	if p, ok := r.parked[id]; ok {
		delete(r.parked, id)
		r.mu.Unlock()
		p.res <- true
		go onSock(p.sock)
		return
	}
	w := &rvWaiter{onSock: onSock}
	w.timer = timerwheel.AfterFunc(timeout, func() {
		r.mu.Lock()
		if r.waiters[id] != w {
			r.mu.Unlock()
			return
		}
		delete(r.waiters, id)
		r.mu.Unlock()
		if onTimeout != nil {
			// The wheel goroutine only expires the arm; the caller's
			// timeout handling (teardown, logging) gets its own goroutine.
			go onTimeout()
		}
	})
	r.waiters[id] = w
	r.mu.Unlock()
}

// deliver hands a socket to the endpoint armed for id, waiting up to
// timeout for one to arm. It reports whether the socket was taken. The
// claim callback runs on this goroutine when an endpoint is already
// armed — deliverers (redirector handlers, transport serveOpen) are
// per-socket goroutines that may block.
func (r *rendezvous) deliver(id connKey, sock net.Conn, timeout time.Duration) bool {
	r.mu.Lock()
	if w, ok := r.waiters[id]; ok {
		delete(r.waiters, id)
		r.mu.Unlock()
		w.timer.Stop()
		w.onSock(sock)
		return true
	}
	p := &rvParked{sock: sock, res: make(chan bool, 1)}
	r.parked[id] = p
	r.mu.Unlock()

	expired := make(chan struct{})
	t := timerwheel.AfterFunc(timeout, func() { close(expired) })
	select {
	case taken := <-p.res:
		t.Stop()
		return taken
	case <-expired:
		r.mu.Lock()
		if r.parked[id] == p {
			// Still unclaimed — and, removed under the lock, it can no
			// longer be claimed.
			delete(r.parked, id)
			r.mu.Unlock()
			return false
		}
		r.mu.Unlock()
		// A claim or disarm won the race; its verdict is imminent.
		return <-p.res
	}
}

// disarm cancels a pending arm for id (endpoint no longer waiting). A
// socket already parked for it is closed and its deliverer released.
func (r *rendezvous) disarm(id connKey) {
	r.mu.Lock()
	w, hadWaiter := r.waiters[id]
	delete(r.waiters, id)
	p, hadParked := r.parked[id]
	delete(r.parked, id)
	r.mu.Unlock()
	if hadWaiter {
		w.timer.Stop()
	}
	if hadParked {
		p.sock.Close()
		p.res <- false
	}
}

// redirector is the host's data-plane listener (Section 3.4 of the paper):
// every data socket — for a new connection or a resume — arrives here with
// a handoff header naming its connection, is authenticated, and is handed
// to the right NapletSocket. One redirector is shared by all connections of
// the host.
type redirector struct {
	ctrl *Controller
	ln   net.Listener
	wg   sync.WaitGroup
	done chan struct{}
}

func newRedirector(ctrl *Controller, addr string) (*redirector, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r := &redirector{ctrl: ctrl, ln: ln, done: make(chan struct{})}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

func (r *redirector) addr() string { return r.ln.Addr().String() }

func (r *redirector) close() error {
	close(r.done)
	err := r.ln.Close()
	r.wg.Wait()
	return err
}

// Accept-error backoff bounds, net/http-Server style: transient errors
// (EMFILE, ECONNABORTED) back off exponentially instead of hot-looping,
// and any successful accept resets the delay.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 1 * time.Second
)

// rendezvousDeliverTimeout bounds how long a delivered socket waits for its
// endpoint to arm.
const rendezvousDeliverTimeout = 5 * time.Second

func (r *redirector) acceptLoop() {
	defer r.wg.Done()
	var backoff time.Duration
	for {
		sock, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			r.ctrl.logf("redirector %s: accept error: %v; retrying in %v",
				r.ctrl.cfg.HostName, err, backoff)
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-r.done:
				timer.Stop()
				return
			}
			continue
		}
		backoff = 0
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.handle(sock)
		}()
	}
}

// handle dispatches one arriving data-plane connection. The first two
// bytes tell a shared-transport hello ("NT" magic) from a legacy raw
// handoff (whose 4-byte length prefix starts 0x00); transport connections
// go to the transport manager, legacy ones through the original
// authenticate-and-deliver path, kept for mixed-version peers and the
// low-level protocol tests.
func (r *redirector) handle(sock net.Conn) { r.dispatch(sock, false) }

// dispatch is the sniffing half of handle, shared with the relay client:
// a matched relay call-in leg carries exactly the bytes an accepted
// redirector socket would, so it enters here with relayed=true and is
// handed to the transport manager's relayed-accept path.
func (r *redirector) dispatch(sock net.Conn, relayed bool) {
	sock.SetDeadline(time.Now().Add(r.ctrl.cfg.handshakeTimeout()))
	var sniff [2]byte
	if _, err := io.ReadFull(sock, sniff[:]); err != nil {
		r.ctrl.logf("redirector %s: short read on new connection: %v", r.ctrl.cfg.HostName, err)
		sock.Close()
		return
	}
	pc := &prependConn{Conn: sock, head: sniff[:]}
	if wire.SniffTransport(sniff[:]) {
		sock.SetDeadline(time.Time{}) // HandleConn sets its own handshake deadline
		var err error
		if relayed {
			err = r.ctrl.tm.HandleRelayedConn(pc)
		} else {
			err = r.ctrl.tm.HandleConn(pc)
		}
		if err != nil {
			r.ctrl.logf("redirector %s: transport handshake: %v", r.ctrl.cfg.HostName, err)
		}
		return
	}
	r.handleLegacy(pc)
}

// handleLegacy authenticates one raw (pre-transport) data socket and
// delivers it. On any failure the socket is refused and closed; on success
// ownership passes to the receiving NapletSocket.
func (r *redirector) handleLegacy(sock net.Conn) {
	hdr, err := wire.ReadHandoffHeader(sock)
	if err != nil {
		r.ctrl.logf("redirector %s: bad handoff: %v", r.ctrl.cfg.HostName, err)
		sock.Close()
		return
	}
	if err := r.ctrl.authorizeHandoff(hdr); err != nil {
		r.ctrl.logf("redirector %s: refused %s handoff for %s: %v",
			r.ctrl.cfg.HostName, hdr.Purpose, hdr.ConnID, err)
		wire.WriteHandoffStatus(sock, wire.HandoffDenied)
		sock.Close()
		return
	}
	if err := wire.WriteHandoffStatus(sock, wire.HandoffOK); err != nil {
		sock.Close()
		return
	}
	sock.SetDeadline(time.Time{})
	if !r.ctrl.rv.deliver(connKey{id: hdr.ConnID, agent: hdr.TargetAgent}, sock, rendezvousDeliverTimeout) {
		r.ctrl.logf("redirector %s: no endpoint claimed %s handoff for %s",
			r.ctrl.cfg.HostName, hdr.Purpose, hdr.ConnID)
		sock.Close()
	}
}

// prependConn replays sniffed bytes ahead of the wrapped connection's
// stream. CloseWrite passes through so the half-close drain semantics
// survive the sniffing wrapper on the legacy path.
type prependConn struct {
	net.Conn
	head []byte
}

func (p *prependConn) Read(b []byte) (int, error) {
	if len(p.head) > 0 {
		n := copy(b, p.head)
		p.head = p.head[n:]
		return n, nil
	}
	return p.Conn.Read(b)
}

func (p *prependConn) CloseWrite() error {
	if cw, ok := p.Conn.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}
