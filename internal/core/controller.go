package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"naplet/internal/agent"
	"naplet/internal/dhkx"
	"naplet/internal/fault"
	"naplet/internal/fsm"
	"naplet/internal/journal"
	"naplet/internal/metrics"
	"naplet/internal/naming"
	"naplet/internal/obs"
	"naplet/internal/relay"
	"naplet/internal/rudp"
	"naplet/internal/security"
	"naplet/internal/transport"
	"naplet/internal/wire"
)

// Locator is the read side of the agent location service the controller
// needs: agent id to current location.
type Locator interface {
	Lookup(ctx context.Context, agentID string) (naming.Record, error)
}

// Config configures a Controller.
type Config struct {
	// HostName names the host this controller serves.
	HostName string
	// ControlAddr is the UDP control-channel bind address ("" for an
	// ephemeral loopback port); DataAddr likewise for the redirector.
	ControlAddr string
	DataAddr    string
	// Guard enforces agent-oriented access control (required).
	Guard *security.Guard
	// Locator resolves agents at connection setup (required).
	Locator Locator
	// DisableLocationCache turns off the controller's migration-aware
	// location cache, so every lookup consults Locator directly. The cache
	// is keyed by agent id, guarded by Record.Epoch, and invalidated by
	// the SUS/SUS_RES/RES control messages rather than by TTL expiry.
	DisableLocationCache bool
	// LocationCacheTTL overrides the cache's safety-net TTL (the expiry
	// for entries no migration notification ever touches). Zero picks the
	// naming package default (30s); negative disables expiry.
	LocationCacheTTL time.Duration
	// Insecure disables the Diffie-Hellman key exchange and the
	// authentication/authorization checks at setup — the paper's
	// "NapletSocket w/o security" configuration. Control messages are
	// still tagged under a connection-id-derived key so the protocol shape
	// is unchanged. Both hosts of a connection must agree on this setting.
	Insecure bool
	// DisableFailureResume turns off the fault-tolerance extension
	// (automatic re-resume after a data socket failure).
	DisableFailureResume bool
	// Journal, when non-nil, receives connection-state checkpoints at each
	// lifecycle edge and feeds RecoverConns after a restart.
	Journal *journal.Journal
	// HeartbeatInterval, when positive, enables the phi-accrual failure
	// detector: peers with established connections here are probed over the
	// control channel, and a confirmed-down peer fails its connections into
	// the recovery path. Zero disables detection (the default).
	HeartbeatInterval time.Duration
	// SuspicionThreshold and ConfirmFailures tune the detector; zero picks
	// the fault package defaults.
	SuspicionThreshold float64
	ConfirmFailures    int
	// ControlDropFn, when non-nil, can drop outgoing control packets
	// (returns true to drop) — fault injection for partition tests,
	// forwarded to the reliable-UDP endpoint.
	ControlDropFn func([]byte) bool
	// OpTimeout bounds each control exchange; ParkTimeout bounds waits on
	// peer migrations (SUSPEND_WAIT / RESUME_WAIT / resume retries).
	// Defaults: 5s and 60s.
	OpTimeout   time.Duration
	ParkTimeout time.Duration
	// HandshakeTimeout bounds the per-host-pair transport handshake and the
	// redirector's read of an arriving handoff header. Default 10s.
	HandshakeTimeout time.Duration
	// DialData, when non-nil, replaces net.DialTimeout for the shared
	// transport's kernel connection — tests count calls through it to prove
	// that logical connections share one transport per host pair.
	DialData func(addr string, timeout time.Duration) (net.Conn, error)
	// RelayVia, when non-empty, names a relay server (see internal/relay)
	// used two ways: the controller keeps a registration leg open so peers
	// that cannot dial this host's redirector directly can still reach it,
	// and the shared transport falls back to dialing peers through the
	// relay when the direct dial fails. The relay is untrusted — it sees
	// only transport hellos and AEAD ciphertext.
	RelayVia string
	// DrainTimeout bounds the pre-suspend drain. Default 5s.
	DrainTimeout time.Duration
	// TransportKeepaliveInterval / TransportKeepaliveTimeout tune the
	// shared transport's half-open detection (mux ping after interval of
	// inbound silence, declared dead after timeout). Zero picks the
	// transport defaults (15s / 3x interval); a negative interval disables
	// keepalive probing.
	TransportKeepaliveInterval time.Duration
	TransportKeepaliveTimeout  time.Duration
	// TransportResumeWindow bounds how long a broken shared transport
	// holds its streams stalled while resuming the session in place. Zero
	// picks the transport default (30s); negative disables resumption so
	// a broken transport fails streams immediately into the connection-
	// level recovery path.
	TransportResumeWindow time.Duration
	// DisableTransportEncryption keeps the negotiated shared transport's
	// frames cleartext: the version-2 hello advertises no cipher suites,
	// while the DH exchange, transcript tags, and resume tokens still run
	// in secure mode. Benchmarks use it to isolate the AEAD record
	// layer's cost; Insecure implies it.
	DisableTransportEncryption bool
	// TransportLimits overrides the advertised transport protocol limits
	// field by field (max frame payload, per-stream window, ack cadence);
	// zero fields keep the wire defaults. The effective limits of each
	// host pair are the field-wise minimum of both advertisements.
	TransportLimits wire.Limits
	// OpenBreakdown, when non-nil, accumulates the Figure 8 phase timings
	// of every Open issued through this controller.
	OpenBreakdown *metrics.Breakdown
	// SuspendBreakdown and ResumeBreakdown, when non-nil, accumulate the
	// per-phase timings of locally issued suspends and resumes, parallel to
	// the Figure 8 open breakdown. When Metrics is set and these are nil,
	// breakdowns are created internally so the phase gauges are always
	// populated.
	SuspendBreakdown *metrics.Breakdown
	ResumeBreakdown  *metrics.Breakdown
	// ControlSendDelay applies emulated one-way latency to outgoing control
	// packets (forwarded to the reliable-UDP endpoint).
	ControlSendDelay time.Duration
	// WrapData, when non-nil, wraps every data socket as it is installed —
	// the hook for network emulation (internal/netem) or transport
	// security. The wrapper should preserve CloseWrite when the underlying
	// connection supports it, or the pre-suspend drain degrades to the
	// ungraceful (send-log) path.
	WrapData func(net.Conn) net.Conn
	// Logf, when non-nil, receives diagnostics. It is the compatibility
	// shim predating Logger: when only Logf is set, it receives every
	// level through the leveled logger.
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives leveled diagnostics and takes
	// precedence over Logf.
	Logger *obs.Logger
	// Metrics, when non-nil, receives the controller's lifecycle counters,
	// latency histograms, FSM transition counts, and load gauges
	// (including the control channel's RUDP stats).
	Metrics *obs.Registry
	// Tracer, when non-nil, records distributed spans for connection
	// opens and migrations; the trace context propagates over the wire so
	// one migration yields one trace across every host involved.
	Tracer *obs.Tracer
}

func (c Config) opTimeout() time.Duration {
	if c.OpTimeout > 0 {
		return c.OpTimeout
	}
	return 5 * time.Second
}

func (c Config) parkTimeout() time.Duration {
	if c.ParkTimeout > 0 {
		return c.ParkTimeout
	}
	return 60 * time.Second
}

func (c Config) handshakeTimeout() time.Duration {
	if c.HandshakeTimeout > 0 {
		return c.HandshakeTimeout
	}
	return 10 * time.Second
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout > 0 {
		return c.DrainTimeout
	}
	return 5 * time.Second
}

func (c Config) failureResumeDelay(highPriority bool) time.Duration {
	if highPriority {
		return 50 * time.Millisecond
	}
	return time.Second
}

// Controller is the per-host NapletSocket manager of Section 2.1: it owns
// the control channel and redirector shared by all connections, performs
// the security-checked connection setup on behalf of agents (the proxy
// service of Section 3.3), executes the state machine for every resident
// connection, and acts as the migration hook that suspends and resumes an
// agent's connections around each hop.
type Controller struct {
	cfg Config
	obs *ctrlObs
	ep  *rudp.Endpoint
	red *redirector
	rv  *rendezvous
	// tm owns the shared per-host-pair transports every data stream rides.
	tm *transport.Manager
	// det is the peer failure detector; nil unless HeartbeatInterval is set.
	det *fault.Detector
	// relayCli keeps this host registered with the RelayVia relay so
	// un-dialable peers can still call in; nil unless RelayVia is set.
	relayCli *relay.Client
	// loc caches Locator results keyed by agent id, guarded by epoch and
	// proactively invalidated off the control-message path; nil when
	// disabled by config.
	loc *naming.Cache

	// epochMu guards locEpochs: the directory epoch each resident agent's
	// location entry carries, reported by the agent host after every
	// register/update and stamped onto outgoing SUS_RES/RES messages.
	epochMu   sync.Mutex
	locEpochs map[string]uint64

	// tab is the sharded resident-connection table (conns, per-agent
	// index, migrating flags), striped by agent hash so the per-conn hot
	// path never funnels through one controller-wide lock.
	tab *connTable

	// dp is the shared data-plane worker pool: connections riding a
	// transport stream have no pump/flush goroutines of their own, their
	// readable/writable events are serviced here.
	dp *dpPool

	// mu guards the listener map and the closed flag — control-plane
	// state touched at listen/accept/shutdown rate, not per connection.
	mu        sync.Mutex
	listeners map[string]*ServerSocket
	closed    bool

	// closing silences diagnostics once Close begins (the logger may be a
	// testing.T that must not be used after the test ends).
	closing atomic.Bool

	done chan struct{}
}

// NewController starts a controller: the control endpoint and redirector
// are live when it returns.
func NewController(cfg Config) (*Controller, error) {
	if cfg.Guard == nil || cfg.Locator == nil {
		return nil, errors.New("napletsocket: Config requires Guard and Locator")
	}
	ctrl := &Controller{
		cfg:       cfg,
		obs:       newCtrlObs(cfg),
		rv:        newRendezvous(),
		tab:       newConnTable(),
		dp:        newDPPool(),
		listeners: make(map[string]*ServerSocket),
		locEpochs: make(map[string]uint64),
		done:      make(chan struct{}),
	}
	if !cfg.DisableLocationCache {
		ctrl.loc = naming.NewCache(cfg.Locator, naming.CacheConfig{
			TTL:     cfg.LocationCacheTTL,
			Metrics: cfg.Metrics,
		})
	}
	rcfg := rudp.Config{SendDelay: cfg.ControlSendDelay, DropFn: cfg.ControlDropFn}
	if cfg.HeartbeatInterval > 0 {
		// Create the detector before the endpoint so the ActivityFn closure
		// never races the field write; probing only starts with Watch calls
		// from the reconciler below.
		ctrl.det = fault.NewDetector(fault.Config{
			Interval:        cfg.HeartbeatInterval,
			Threshold:       cfg.SuspicionThreshold,
			ConfirmFailures: cfg.ConfirmFailures,
			Probe:           ctrl.probePeer,
			OnEvent:         ctrl.onFaultEvent,
			Metrics:         cfg.Metrics,
			Logger:          ctrl.obs.log,
			// The transport manager does not exist yet (it needs the
			// redirector address), so the hint resolves it lazily; probing
			// only starts after NewController returns, when tm is set.
			RTTHint: func() time.Duration {
				if tm := ctrl.tm; tm != nil {
					return tm.MaxRTT()
				}
				return 0
			},
		})
		// Every valid control packet from a peer is piggybacked liveness
		// evidence, suppressing probes on busy connections.
		rcfg.ActivityFn = func(from *net.UDPAddr) { ctrl.det.Observe(from.String()) }
	}
	ep, err := rudp.Listen(cfg.ControlAddr, ctrl.handleControl, rcfg)
	if err != nil {
		ctrl.det.Close()
		ctrl.dp.close()
		return nil, err
	}
	ctrl.ep = ep
	red, err := newRedirector(ctrl, cfg.DataAddr)
	if err != nil {
		ctrl.det.Close()
		ep.Close()
		ctrl.dp.close()
		return nil, err
	}
	ctrl.red = red
	ctrl.tm = transport.NewManager(transport.Config{
		HostName:          cfg.HostName,
		AdvertiseAddr:     red.addr(),
		Insecure:          cfg.Insecure,
		Dial:              cfg.DialData,
		RelayAddr:         cfg.RelayVia,
		WrapData:          cfg.WrapData,
		HandshakeTimeout:  cfg.handshakeTimeout(),
		Authorize:         ctrl.authorizeHandoff,
		Deliver:           ctrl.deliverStream,
		Logf:              ctrl.logf,
		KeepaliveInterval: cfg.TransportKeepaliveInterval,
		KeepaliveTimeout:  cfg.TransportKeepaliveTimeout,
		ResumeWindow:      cfg.TransportResumeWindow,
		DisableEncryption: cfg.DisableTransportEncryption,
		Limits:            cfg.TransportLimits,
		Metrics:           cfg.Metrics,
		Tracer:            cfg.Tracer,
	})
	if cfg.RelayVia != "" {
		// Call-in legs delivered by the relay carry the same bytes an
		// accepted redirector socket would, so they go through the same
		// sniff-and-dispatch — marked relayed so the transport records how
		// the session reached us.
		ctrl.relayCli = relay.NewClient(relay.ClientConfig{
			RelayAddr: cfg.RelayVia,
			Advertise: red.addr(),
			Dial:      cfg.DialData,
			Handle:    func(conn net.Conn) { red.dispatch(conn, true) },
			Logf:      ctrl.logf,
		})
	}
	ctrl.registerGauges()
	if ctrl.det != nil {
		go ctrl.watchReconciler(cfg.HeartbeatInterval)
	}
	return ctrl, nil
}

// ControlAddr returns the control channel's UDP address.
func (ctrl *Controller) ControlAddr() string { return ctrl.ep.Addr().String() }

// DataAddr returns the redirector's TCP address.
func (ctrl *Controller) DataAddr() string { return ctrl.red.addr() }

// ControlStats exposes the control channel's counters.
func (ctrl *Controller) ControlStats() rudp.Stats { return ctrl.ep.Stats() }

// Stats is a snapshot of the controller's load.
type Stats struct {
	// Connections is the number of resident connection endpoints.
	Connections int
	// ByState counts resident connections per protocol state name.
	ByState map[string]int
	// Listeners is the number of open server sockets.
	Listeners int
	// MigratingAgents counts agents currently in their suspend phase.
	MigratingAgents int
}

// Stats returns a snapshot of the controller's load, for monitoring and
// tests.
func (ctrl *Controller) Stats() Stats {
	conns := ctrl.tab.all()
	ctrl.mu.Lock()
	listeners := len(ctrl.listeners)
	ctrl.mu.Unlock()
	st := Stats{
		Connections:     len(conns),
		ByState:         make(map[string]int),
		Listeners:       listeners,
		MigratingAgents: ctrl.tab.migratingCount(),
	}
	for _, s := range conns {
		st.ByState[s.State().String()]++
	}
	return st
}

// ConnInfos snapshots every resident connection endpoint, sorted by
// connection id — the data source of the /connz debug view.
func (ctrl *Controller) ConnInfos() []Info {
	conns := ctrl.tab.all()
	infos := make([]Info, 0, len(conns))
	for _, s := range conns {
		infos = append(infos, s.Info())
	}
	sort.Slice(infos, func(i, j int) bool {
		return bytes.Compare(infos[i].ID[:], infos[j].ID[:]) < 0
	})
	return infos
}

// Metrics returns the controller's registry (nil when not configured).
func (ctrl *Controller) Metrics() *obs.Registry { return ctrl.obs.met }

// Tracer returns the controller's tracer (nil when not configured); the
// /tracez debug endpoint reads recent traces through it.
func (ctrl *Controller) Tracer() *obs.Tracer { return ctrl.obs.tr }

// Close shuts the controller down; open connections are torn down locally.
func (ctrl *Controller) Close() error {
	ctrl.mu.Lock()
	if ctrl.closed {
		ctrl.mu.Unlock()
		return nil
	}
	ctrl.closed = true
	ctrl.closing.Store(true)
	ctrl.mu.Unlock()
	conns := ctrl.tab.all()
	close(ctrl.done)
	if ctrl.relayCli != nil {
		ctrl.relayCli.Close()
	}
	ctrl.det.Close()
	ctrl.tm.Close()
	for _, s := range conns {
		s.mu.Lock()
		s.markClosedLocked(nil)
		s.mu.Unlock()
	}
	ctrl.dp.close()
	err := ctrl.red.close()
	if eerr := ctrl.ep.Close(); err == nil {
		err = eerr
	}
	return err
}

// logf is the legacy diagnostics entry point; every historical call site
// reported a degraded or failed operation, so it maps to Warn on the
// leveled logger (which itself falls back to Logf, then log.Printf).
func (ctrl *Controller) logf(format string, args ...any) {
	ctrl.olog(obs.LevelWarn, format, args...)
}

func (ctrl *Controller) isMigrating(agentID string) bool {
	return ctrl.tab.isMigrating(agentID)
}

// registerConn adds a socket to the controller's tables.
func (ctrl *Controller) registerConn(s *Socket) {
	ctrl.tab.register(s)
}

// dropConn removes a socket from the tables. This is also the point a
// connection leaves the journal: it is either closed for good or departing
// inside a migration bundle, and either way a restarted host must not
// resurrect it. (Controller.Close deliberately does not drop connections,
// so a graceful shutdown stays recoverable like a crash.)
func (ctrl *Controller) dropConn(s *Socket) {
	ctrl.tab.drop(s)
	ctrl.rv.disarm(connKey{id: s.id, agent: s.localAgent})
	ctrl.dropConnJournal(s.localAgent, s.id)
}

// connByKey fetches a resident connection endpoint by id and local agent.
func (ctrl *Controller) connByKey(id wire.ConnID, localAgent string) (*Socket, bool) {
	return ctrl.tab.byKey(id, localAgent)
}

// AgentSocket re-attaches an agent to one of its connections by id — the
// post-migration handle, since live Socket values cannot travel inside a
// gob-encoded behaviour.
func (ctrl *Controller) AgentSocket(agentID string, id wire.ConnID) (*Socket, error) {
	s, ok := ctrl.tab.agentSocket(agentID, id)
	if !ok {
		return nil, fmt.Errorf("napletsocket: agent %s has no connection %s here", agentID, id)
	}
	return s, nil
}

// AgentSockets lists an agent's resident connections.
func (ctrl *Controller) AgentSockets(agentID string) []*Socket {
	return ctrl.tab.agentSockets(agentID)
}

// ---- migration-aware location cache ----

// lookupAgent resolves an agent's location, through the cache when one is
// enabled.
func (ctrl *Controller) lookupAgent(ctx context.Context, agentID string) (naming.Record, error) {
	if ctrl.loc != nil {
		return ctrl.loc.Lookup(ctx, agentID)
	}
	return ctrl.cfg.Locator.Lookup(ctx, agentID)
}

// invalidateLocation drops the agent's cached location: called when a
// connect against the cached addresses failed, or when a SUS announces
// the agent is about to move and its current entry is living on borrowed
// time.
func (ctrl *Controller) invalidateLocation(agentID string) {
	if ctrl.loc != nil {
		ctrl.loc.Invalidate(agentID)
	}
}

// advanceLocation moves the agent's cached location forward to the
// addresses a SUS_RES/RES announced, at the mover's stamped epoch — the
// piggyback path that keeps the cache fresh without re-consulting the
// registry. A zero epoch (mover predates the stamp, or its host never
// learned its epoch) degrades to unconditional invalidation.
func (ctrl *Controller) advanceLocation(agentID string, loc naming.Location, epoch uint64) {
	if ctrl.loc != nil {
		ctrl.loc.Advance(agentID, loc, epoch)
	}
}

// NoteLocationEpoch records the directory epoch this host's entry for a
// resident agent carries (reported by the agent host after each
// register/update; satisfied structurally as its optional hook
// extension). Outgoing SUS_RES/RES messages stamp it so peers can
// epoch-guard their caches. Epoch zero forgets the agent.
func (ctrl *Controller) NoteLocationEpoch(agentID string, epoch uint64) {
	ctrl.epochMu.Lock()
	defer ctrl.epochMu.Unlock()
	if epoch == 0 {
		delete(ctrl.locEpochs, agentID)
		return
	}
	if epoch > ctrl.locEpochs[agentID] {
		ctrl.locEpochs[agentID] = epoch
	}
}

// locationEpoch returns the last epoch noted for a resident agent (zero
// when unknown).
func (ctrl *Controller) locationEpoch(agentID string) uint64 {
	ctrl.epochMu.Lock()
	defer ctrl.epochMu.Unlock()
	return ctrl.locEpochs[agentID]
}

// LocationCacheStats reports the location cache's effectiveness; ok is
// false when the cache is disabled.
func (ctrl *Controller) LocationCacheStats() (naming.CacheStats, bool) {
	if ctrl.loc == nil {
		return naming.CacheStats{}, false
	}
	return ctrl.loc.Stats(), true
}

// sessionKeyFor derives the connection's session key: from the DH shared
// secret normally, or from the connection id alone in insecure mode (keeps
// the tagging machinery uniform without the key exchange cost).
func (ctrl *Controller) sessionKeyFor(id wire.ConnID, secret []byte) []byte {
	if ctrl.cfg.Insecure {
		return dhkx.DeriveSessionKey(id[:], id[:])
	}
	return dhkx.DeriveSessionKey(secret, id[:])
}

// ---- control-channel dispatch ----

func (ctrl *Controller) handleControl(_ *net.UDPAddr, req []byte) []byte {
	m, err := wire.DecodeControlMsg(req)
	if err != nil {
		ctrl.logf("control %s: %v", ctrl.cfg.HostName, err)
		return rejectReply(wire.ZeroConnID, "malformed control message")
	}
	switch m.Type {
	case wire.MsgConnect:
		return ctrl.handleConnect(m)
	case wire.MsgHeartbeat:
		return (&wire.ControlReply{Verdict: wire.VerdictAck, ConnID: m.ConnID}).Encode()
	}
	s, ok := ctrl.connByKey(m.ConnID, m.To)
	if !ok {
		return rejectReply(m.ConnID, reasonUnknownConn)
	}
	if err := s.checkAuth(m); err != nil {
		ctrl.logf("control %s: %v", ctrl.cfg.HostName, err)
		return rejectReply(m.ConnID, "authentication failed")
	}
	// A message stamped with a trace context gets its handling recorded as
	// a span of the sender's trace — this is how the stationary peer's side
	// of a migration (suspend grant, resume grant, redirector update) lands
	// in the same trace as the mover's.
	rtc := obs.SpanContext{Trace: obs.TraceID(m.TraceID), Span: obs.SpanID(m.SpanID)}
	if rtc.Valid() {
		sp := ctrl.obs.tr.StartSpan(rtc, "handle."+m.Type.String())
		sp.Annotate("from=" + m.From)
		defer sp.End()
	}
	// Location-cache maintenance piggybacks on the (authenticated)
	// migration messages: a SUS means the sender's cached location is about
	// to go stale; a SUS_RES or RES carries the sender's new addresses and
	// post-migration epoch, so the cache moves forward without a registry
	// round trip.
	switch m.Type {
	case wire.MsgSuspend:
		ctrl.invalidateLocation(m.From)
	case wire.MsgSusRes, wire.MsgResume:
		ctrl.advanceLocation(m.From, naming.Location{
			ControlAddr: m.ControlAddr,
			DataAddr:    m.DataAddr,
		}, m.LocEpoch)
	}
	switch m.Type {
	case wire.MsgIDExchange:
		return s.handleIDExchange(m)
	case wire.MsgSuspend:
		return s.handleSuspend(m)
	case wire.MsgSusRes:
		return s.handleSusRes(m)
	case wire.MsgResume:
		return s.handleResume(m)
	case wire.MsgClose:
		return s.handleClose(m)
	default:
		return rejectReply(m.ConnID, fmt.Sprintf("unsupported message %s", m.Type))
	}
}

// rejectReply builds an unsigned rejection (no session context).
func rejectReply(id wire.ConnID, reason string) []byte {
	return (&wire.ControlReply{Verdict: wire.VerdictReject, ConnID: id, Reason: reason}).Encode()
}

// authorizeHandoff validates an arriving data socket's handoff header
// against the connection it claims (Section 3.3: only the holders of the
// session key can attach a socket to a connection).
func (ctrl *Controller) authorizeHandoff(hdr *wire.HandoffHeader) error {
	s, ok := ctrl.connByKey(hdr.ConnID, hdr.TargetAgent)
	if !ok {
		return fmt.Errorf("unknown connection %s", hdr.ConnID)
	}
	if !s.auth.Verify(hdr.SigningBytes(), hdr.Token) {
		return errors.New("bad handoff token")
	}
	if hdr.FromAgent != s.remoteAgent {
		return errors.New("handoff agent mismatch")
	}
	return nil
}

// deliverStream hands an accepted transport stream to the endpoint waiting
// for it, through the same rendezvous the legacy raw-socket handoff uses.
func (ctrl *Controller) deliverStream(hdr *wire.HandoffHeader, st *transport.Stream) bool {
	return ctrl.rv.deliver(connKey{id: hdr.ConnID, agent: hdr.TargetAgent}, st, rendezvousDeliverTimeout)
}

// TransportInfos snapshots the live shared transports — the data source of
// the /connz transport section.
func (ctrl *Controller) TransportInfos() []transport.Info { return ctrl.tm.Infos() }

// CloseTransports tears down every warm shared transport without closing
// the controller; the next data-plane operation pays a cold dial and
// handshake again. Live streams on the transports fail. It exists for
// experiments and tests that need to measure or exercise the cold path.
func (ctrl *Controller) CloseTransports() { ctrl.tm.CloseTransports() }

// transportCounts feeds the transport.active / transport.streams gauges.
func (ctrl *Controller) transportCounts() (int, int) {
	if ctrl.tm == nil {
		return 0, 0
	}
	return ctrl.tm.Counts()
}

// ---- connection establishment (Sections 2.2 and 3.4) ----

// Open establishes a NapletSocket connection from a resident agent to the
// named remote agent, through the controller's proxy service: the agent is
// authenticated and checked against policy, the target located, a session
// key agreed, and the data socket delivered by the target's redirector
// (socket handoff, saving the port-query round trip of Section 3.4).
func (ctrl *Controller) Open(actx *agent.Context, target string) (*Socket, error) {
	return ctrl.OpenAs(actx.AgentID(), actx.Credential(), target)
}

// OpenAs is Open with explicit agent identity, for callers outside a
// behaviour context (tests, tools).
func (ctrl *Controller) OpenAs(agentID string, cred [security.CredentialSize]byte, target string) (*Socket, error) {
	start := time.Now()
	s, err := ctrl.openAs(agentID, cred, target)
	o := ctrl.obs
	if err != nil {
		o.openErrors.Inc()
		// Debug, not Warn: Dial retries failed opens routinely while the
		// target is launching or mid-migration.
		ctrl.olog(obs.LevelDebug, "open %s -> %s failed: %v", agentID, target, err)
		return nil, err
	}
	o.opens.Inc()
	o.openMs.ObserveDuration(time.Since(start))
	s.olog(obs.LevelInfo, "opened in %v", time.Since(start).Round(time.Microsecond))
	return s, nil
}

func (ctrl *Controller) openAs(agentID string, cred [security.CredentialSize]byte, target string) (*Socket, error) {
	bd := ctrl.obs.openBD
	ctx, cancel := context.WithTimeout(context.Background(), ctrl.cfg.opTimeout())
	defer cancel()

	// Each open is its own trace; the CONNECT stamp carries it to the
	// server so both halves of establishment share an id.
	sp := ctrl.obs.tr.StartTrace("connect " + agentID + "->" + target)
	defer sp.End()

	// Security check: authenticate the requesting agent and verify policy
	// (skipped in the paper's "w/o security" configuration).
	if !ctrl.cfg.Insecure {
		start := time.Now()
		err := ctrl.cfg.Guard.Check(agentID, cred, security.Permission{
			Action: security.ActionConnect, Resource: target,
		})
		bd.Add(metrics.PhaseSecurityCheck, time.Since(start))
		if err != nil {
			return nil, err
		}
	}

	// Management: allocate the connection id and locate the target agent.
	start := time.Now()
	id, err := wire.NewConnID()
	if err != nil {
		return nil, err
	}
	rec, err := ctrl.lookupAgent(ctx, target)
	bd.Add(metrics.PhaseManagement, time.Since(start))
	if err != nil {
		return nil, fmt.Errorf("napletsocket: locating agent %q: %w", target, err)
	}
	if rec.Loc.ControlAddr == "" || rec.Loc.DataAddr == "" {
		return nil, fmt.Errorf("napletsocket: agent %q's host has no NapletSocket service", target)
	}

	// Key exchange, client half: acquire the shared transport to the
	// target's host. A warm transport costs a map lookup; a cold one pays
	// the kernel dial and the per-host-pair DH handshake that used to be
	// paid per connection (Table 1 amortisation). In the "w/o security"
	// configuration the transport handshake does no DH, so its cost is
	// socket establishment, not key exchange.
	start = time.Now()
	tr, err := ctrl.tm.TransportTraced(rec.Loc.DataAddr, ctrl.cfg.opTimeout(), sp.Context())
	if ctrl.cfg.Insecure {
		bd.Add(metrics.PhaseOpenSocket, time.Since(start))
	} else {
		bd.Add(metrics.PhaseKeyExchange, time.Since(start))
	}
	if err != nil {
		// The cached location may be the reason the host is unreachable;
		// drop it so the retry path re-resolves.
		ctrl.invalidateLocation(target)
		return nil, fmt.Errorf("napletsocket: transport to %q's host: %w", target, err)
	}

	// Handshake: CONNECT names the transport whose secret keys the
	// connection, so the server derives the same key without a public-value
	// round trip.
	m := &wire.ControlMsg{
		Type:        wire.MsgConnect,
		ConnID:      id,
		From:        agentID,
		To:          target,
		DataAddr:    ctrl.DataAddr(),
		ControlAddr: ctrl.ControlAddr(),
		TraceID:     sp.Context().Trace,
		SpanID:      sp.Context().Span,
	}
	if !ctrl.cfg.Insecure {
		m.TransportID = tr.ID()
	}
	start = time.Now()
	raw, err := ctrl.ep.Request(ctx, rec.Loc.ControlAddr, m.Encode())
	bd.Add(metrics.PhaseHandshaking, time.Since(start))
	if err != nil {
		ctrl.invalidateLocation(target)
		return nil, fmt.Errorf("napletsocket: CONNECT to %q: %w", target, err)
	}
	reply, err := wire.DecodeControlReply(raw)
	if err != nil {
		return nil, err
	}
	if reply.Verdict != wire.VerdictAck {
		// "Not listening here" usually means the target migrated (or has not
		// landed); either way the cached record must not pin the retry loop
		// to this host until the TTL saves it.
		ctrl.invalidateLocation(target)
		return nil, fmt.Errorf("napletsocket: connection to %q refused: %s", target, reply.Reason)
	}

	// Key exchange, client half: derive the session key from the transport
	// secret bound to the connection id — no per-connection modular
	// exponentiation, and compromise of one connection's key reveals
	// nothing about its siblings on the same transport.
	var key []byte
	if ctrl.cfg.Insecure {
		key = ctrl.sessionKeyFor(id, nil)
	} else {
		start = time.Now()
		key = ctrl.sessionKeyFor(id, tr.Secret())
		bd.Add(metrics.PhaseKeyExchange, time.Since(start))
	}

	s, err := newSocket(ctrl, id, agentID, target, key, fsm.Closed)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.step(fsm.AppOpen) // -> CONNECT_SENT
	s.peerControlAddr = rec.Loc.ControlAddr
	s.peerDataAddr = rec.Loc.DataAddr
	s.mu.Unlock()
	ctrl.registerConn(s)

	fail := func(err error) (*Socket, error) {
		ctrl.dropConn(s)
		s.mu.Lock()
		s.markClosedLocked(err)
		s.mu.Unlock()
		return nil, err
	}

	// Open socket: a stream on the shared transport, handed off by the
	// target's controller.
	start = time.Now()
	err = s.dialConnect()
	bd.Add(metrics.PhaseOpenSocket, time.Since(start))
	if err != nil {
		return fail(err)
	}

	// Final handshake: report our socket id (the ID message of Fig 3).
	start = time.Now()
	idReply, err := s.request(ctx, wire.MsgIDExchange, nil)
	bd.Add(metrics.PhaseHandshaking, time.Since(start))
	if err != nil {
		return fail(fmt.Errorf("napletsocket: ID exchange with %q: %w", target, err))
	}
	if idReply.Verdict != wire.VerdictAck {
		return fail(fmt.Errorf("napletsocket: ID exchange with %q refused: %s", target, idReply.Reason))
	}
	s.mu.Lock()
	if s.m.State() == fsm.ConnectSent {
		s.step(fsm.RecvConnectAck) // -> ESTABLISHED
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	ctrl.checkpointConn(s)
	return s, nil
}

// dialConnect performs the connect-time socket handoff: a stream opened on
// the shared transport to the target's host, carrying the authenticated
// handoff header as its open payload.
func (s *Socket) dialConnect() error {
	stream, err := s.openDataStream(wire.HandoffConnect)
	if err != nil {
		return err
	}
	return s.installSocket(stream, 0)
}

// openDataStream opens a data stream to the peer's redirector over the
// shared transport (dialing and handshaking one only if no warm transport
// exists). The stream's MuxAccept doubles as the old handoff-OK status:
// the peer's controller authorizes the header before accepting.
func (s *Socket) openDataStream(purpose wire.HandoffPurpose) (net.Conn, error) {
	s.mu.Lock()
	addr := s.peerDataAddr
	s.sendNonce++
	hdr := &wire.HandoffHeader{
		Purpose:     purpose,
		ConnID:      s.id,
		TargetAgent: s.remoteAgent,
		FromAgent:   s.localAgent,
		Nonce:       s.sendNonce,
	}
	tc := s.traceSpan.Context()
	s.mu.Unlock()
	hdr.Token = s.auth.Sign(hdr.SigningBytes())
	return s.ctrl.tm.OpenStreamTraced(addr, hdr, s.ctrl.cfg.opTimeout(), tc)
}

// handleConnect serves a CONNECT request on the server side: policy check,
// key agreement (derived from the shared transport's secret), connection
// creation, and redirector arming. Establishment completes when both the
// data stream (via the transport) and the client's ID message arrive.
func (ctrl *Controller) handleConnect(m *wire.ControlMsg) []byte {
	if rtc := (obs.SpanContext{Trace: obs.TraceID(m.TraceID), Span: obs.SpanID(m.SpanID)}); rtc.Valid() {
		sp := ctrl.obs.tr.StartSpan(rtc, "handle.CONNECT")
		sp.Annotate("from=" + m.From)
		defer sp.End()
	}
	target := m.To
	ctrl.mu.Lock()
	ss := ctrl.listeners[target]
	closed := ctrl.closed
	ctrl.mu.Unlock()
	if closed {
		return rejectReply(m.ConnID, "host closing")
	}
	if ss == nil || ss.isClosed() {
		return rejectReply(m.ConnID, fmt.Sprintf("%s: agent %q is not listening here", reasonRetry, target))
	}
	if m.ConnID.IsZero() || m.From == "" {
		return rejectReply(m.ConnID, "malformed CONNECT")
	}
	if _, dup := ctrl.connByKey(m.ConnID, target); dup {
		return rejectReply(m.ConnID, "duplicate connection id")
	}

	// Server-side security check: the listening agent's policy must accept
	// connections (checked against the dialing agent as resource).
	bd := ctrl.obs.openBD
	if !ctrl.cfg.Insecure {
		start := time.Now()
		err := ctrl.cfg.Guard.Check(target, ss.cred, security.Permission{
			Action: security.ActionListen, Resource: m.From,
		})
		bd.Add(metrics.PhaseSecurityCheck, time.Since(start))
		if err != nil {
			return rejectReply(m.ConnID, "refused by policy")
		}
	}

	// Key agreement, server half: look up the named transport's secret and
	// bind it to the connection id — the DH work already happened once at
	// transport setup. The client finishes its transport handshake before
	// sending CONNECT, but this UDP message can outrun the final handshake
	// byte on the TCP path, so tolerate a short registration lag before
	// bouncing the client into a retry.
	var key []byte
	if ctrl.cfg.Insecure {
		key = ctrl.sessionKeyFor(m.ConnID, nil)
	} else {
		start := time.Now()
		secret, ok := ctrl.tm.SecretByID(m.TransportID)
		for !ok && time.Since(start) < ctrl.cfg.opTimeout()/2 {
			time.Sleep(5 * time.Millisecond)
			secret, ok = ctrl.tm.SecretByID(m.TransportID)
		}
		bd.Add(metrics.PhaseKeyExchange, time.Since(start))
		if !ok {
			return rejectReply(m.ConnID, reasonRetry+": unknown transport")
		}
		key = ctrl.sessionKeyFor(m.ConnID, secret)
	}

	s, err := newSocket(ctrl, m.ConnID, target, m.From, key, fsm.Listen)
	if err != nil {
		return rejectReply(m.ConnID, "internal error")
	}
	s.mu.Lock()
	s.step(fsm.RecvConnect) // -> CONNECT_ACKED
	s.peerControlAddr = m.ControlAddr
	s.peerDataAddr = m.DataAddr
	s.mu.Unlock()
	ctrl.registerConn(s)

	// Await the handoff socket; establishment completes in
	// completeEstablishment once the ID message has arrived too. The wait
	// is a rendezvous callback plus one timer-wheel entry, not a parked
	// goroutine: a connect storm of 10k concurrent opens adds nothing to
	// the goroutine count.
	ctrl.rv.armFunc(connKey{id: s.id, agent: s.localAgent}, ctrl.cfg.opTimeout(),
		func(sock net.Conn) {
			if ctrl.closing.Load() {
				sock.Close()
				return
			}
			if err := s.installSocket(sock, 0); err != nil {
				ctrl.logf("conn %s: installing accepted socket: %v", s.id, err)
				ctrl.dropConn(s)
				return
			}
			s.completeEstablishment(ss)
		},
		func() {
			if ctrl.closing.Load() {
				return
			}
			ctrl.dropConn(s)
			s.mu.Lock()
			s.markClosedLocked(errors.New("napletsocket: connect handoff never arrived"))
			s.mu.Unlock()
		})

	r := &wire.ControlReply{Verdict: wire.VerdictAck, ConnID: m.ConnID}
	r.Tag = s.auth.Sign(r.SigningBytes())
	return r.Encode()
}

// handleIDExchange completes establishment on the server side (the client's
// socket-id confirmation of Fig 3).
func (s *Socket) handleIDExchange(_ *wire.ControlMsg) []byte {
	s.mu.Lock()
	s.idReceived = true
	s.mu.Unlock()
	s.ctrl.mu.Lock()
	ss := s.ctrl.listeners[s.localAgent]
	s.ctrl.mu.Unlock()
	if ss == nil {
		return s.reply(wire.VerdictReject, func(r *wire.ControlReply) { r.Reason = reasonUnknownConn })
	}
	s.completeEstablishment(ss)
	return s.reply(wire.VerdictAck, nil)
}

// completeEstablishment fires when both the data socket and the ID message
// are in: the connection becomes ESTABLISHED and is queued for Accept.
func (s *Socket) completeEstablishment(ss *ServerSocket) {
	s.mu.Lock()
	ready := s.idReceived && s.sockInstalled && s.m.State() == fsm.ConnectAcked
	if ready {
		s.step(fsm.RecvID) // -> ESTABLISHED
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	if ready {
		s.ctrl.obs.accepts.Inc()
		s.olog(obs.LevelInfo, "accepted")
		s.ctrl.checkpointConn(s)
		ss.push(s)
	}
}

// ---- server sockets ----

// ServerSocket is the NapletServerSocket of the paper: the agent-oriented
// accept endpoint. An agent has at most one per host; connections arrive
// already established and security-checked.
type ServerSocket struct {
	ctrl    *Controller
	agentID string
	cred    [security.CredentialSize]byte

	mu      sync.Mutex
	queue   []*Socket
	arrival chan struct{}
	closed  bool
}

// Listen creates (or returns) the resident agent's server socket, after a
// security check through the proxy service.
func (ctrl *Controller) Listen(actx *agent.Context) (*ServerSocket, error) {
	return ctrl.ListenAs(actx.AgentID(), actx.Credential())
}

// ListenAs is Listen with explicit agent identity.
func (ctrl *Controller) ListenAs(agentID string, cred [security.CredentialSize]byte) (*ServerSocket, error) {
	if !ctrl.cfg.Insecure {
		if err := ctrl.cfg.Guard.Check(agentID, cred, security.Permission{
			Action: security.ActionListen, Resource: "*",
		}); err != nil {
			return nil, err
		}
	}
	ctrl.mu.Lock()
	if ss, ok := ctrl.listeners[agentID]; ok && !ss.isClosed() {
		ctrl.mu.Unlock()
		return ss, nil
	}
	ss := &ServerSocket{ctrl: ctrl, agentID: agentID, cred: cred, arrival: make(chan struct{})}
	ctrl.listeners[agentID] = ss
	ctrl.mu.Unlock()
	if j := ctrl.cfg.Journal; j != nil {
		// The credential is re-issued by the Guard at recovery, so the
		// record only marks that the agent was listening here.
		j.Put(journal.KindListener, agentID, nil)
	}
	return ss, nil
}

func (ss *ServerSocket) isClosed() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.closed
}

func (ss *ServerSocket) push(s *Socket) {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		s.Close()
		return
	}
	ss.queue = append(ss.queue, s)
	close(ss.arrival)
	ss.arrival = make(chan struct{})
	ss.mu.Unlock()
}

// Accept returns the next established connection, blocking until one
// arrives or ctx is done.
func (ss *ServerSocket) Accept(ctx context.Context) (*Socket, error) {
	for {
		ss.mu.Lock()
		if len(ss.queue) > 0 {
			s := ss.queue[0]
			ss.queue = ss.queue[1:]
			ss.mu.Unlock()
			s.mu.Lock()
			s.accepted = true
			s.mu.Unlock()
			return s, nil
		}
		if ss.closed {
			ss.mu.Unlock()
			return nil, ErrClosed
		}
		arrival := ss.arrival
		ss.mu.Unlock()
		select {
		case <-arrival:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ss.ctrl.done:
			return nil, ErrClosed
		}
	}
}

// Close stops accepting; queued, unaccepted connections are closed.
func (ss *ServerSocket) Close() error {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return nil
	}
	ss.closed = true
	pending := ss.queue
	ss.queue = nil
	close(ss.arrival)
	ss.arrival = make(chan struct{})
	ss.mu.Unlock()

	ss.ctrl.mu.Lock()
	removed := false
	if ss.ctrl.listeners[ss.agentID] == ss {
		delete(ss.ctrl.listeners, ss.agentID)
		removed = true
	}
	ss.ctrl.mu.Unlock()
	if removed {
		if j := ss.ctrl.cfg.Journal; j != nil {
			j.Delete(journal.KindListener, ss.agentID)
		}
	}
	for _, s := range pending {
		s.Close()
	}
	return nil
}

// AgentID returns the owning agent.
func (ss *ServerSocket) AgentID() string { return ss.agentID }

// openRetry wraps OpenAs with retries for targets that are still launching
// or mid-migration.
func (ctrl *Controller) openRetry(agentID string, cred [security.CredentialSize]byte, target string, deadline time.Time) (*Socket, error) {
	backoff := 10 * time.Millisecond
	for {
		s, err := ctrl.OpenAs(agentID, cred, target)
		if err == nil {
			return s, nil
		}
		retriable := errors.Is(err, naming.ErrNotFound) ||
			strings.Contains(err.Error(), reasonRetry) ||
			errors.Is(err, rudp.ErrTimeout)
		if !retriable || time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// Dial opens a connection to target, retrying while the target agent is
// launching or migrating, up to the park timeout.
func (ctrl *Controller) Dial(actx *agent.Context, target string) (*Socket, error) {
	return ctrl.openRetry(actx.AgentID(), actx.Credential(), target, time.Now().Add(ctrl.cfg.parkTimeout()))
}

// DialAs is Dial with explicit agent identity.
func (ctrl *Controller) DialAs(agentID string, cred [security.CredentialSize]byte, target string) (*Socket, error) {
	return ctrl.openRetry(agentID, cred, target, time.Now().Add(ctrl.cfg.parkTimeout()))
}
