// Package core implements NapletSocket, the paper's primary contribution: a
// session-layer connection migration mechanism giving mobile agents a
// synchronous transient communication channel that survives migration of
// either — or both — endpoints, with exactly-once in-order delivery of all
// transmitted data and agent-oriented security.
//
// # Architecture (Section 2.1 of the paper)
//
// Each host runs one Controller, which owns the reliable-UDP control channel
// and the redirector (the data-plane TCP listener that hands arriving
// sockets to the right NapletSocket). A Socket is one endpoint of a logical
// connection; under it sits a plain TCP "data socket" that is torn down
// before each migration and re-established afterwards. A per-connection
// buffered input stream (the NapletInputStream of Section 3.1) catches data
// drained at suspend time; its contents migrate with the agent and are
// served before any bytes from the new data socket, which — combined with
// per-frame sequence numbers — yields exactly-once delivery.
//
// # Protocol
//
// Connection state follows the fourteen-state machine of internal/fsm.
// Suspend/resume/close are request/verdict exchanges on the control channel,
// authenticated by an HMAC under a Diffie-Hellman session key established at
// setup (Section 3.3). Concurrent migrations of both endpoints are
// serialized with the ACK_WAIT / SUS_RES / RESUME_WAIT protocol of Sections
// 3.1–3.2, with deadlock freedom from a fixed hash-based agent priority.
//
// Beyond the paper, the implementation recovers from resume messages racing
// an agent's next hop (the mover re-resolves the peer through the location
// service and retries) and from data-socket failures while established (the
// connection degrades to SUSPENDED and is re-resumed, with lost in-flight
// frames retransmitted from a bounded send log) — the fault-tolerance
// extension the paper lists as future work.
package core
