// Package core implements NapletSocket, the paper's primary contribution: a
// session-layer connection migration mechanism giving mobile agents a
// synchronous transient communication channel that survives migration of
// either — or both — endpoints, with exactly-once in-order delivery of all
// transmitted data and agent-oriented security.
//
// # Architecture (Section 2.1 of the paper)
//
// Each host runs one Controller, which owns the reliable-UDP control channel,
// the redirector (the data-plane TCP listener), and a transport.Manager
// maintaining one authenticated TCP connection per peer host. A Socket is one
// endpoint of a logical connection; under it sits a data stream multiplexed
// onto the shared per-host-pair transport, torn down before each migration
// and re-established afterwards (a resume to an already-visited host rides
// the warm transport — no new kernel dial). A per-connection buffered input
// stream (the NapletInputStream of Section 3.1) catches data drained at
// suspend time; its contents migrate with the agent and are served before any
// bytes from the new data stream, which — combined with per-frame sequence
// numbers — yields exactly-once delivery.
//
// # Shared transport (internal/transport)
//
// All logical connections between two hosts share a single kernel TCP
// connection. Streams are framed with a 13-byte mux header and flow-controlled
// with per-stream credit windows (1 MiB each direction, replenished at the
// half-window mark), so a bulk stream cannot starve its siblings: the
// transport's read loop never blocks on any one stream, and a writer that
// exhausts its window parks without holding the shared write path. Stream
// open replaces the old per-connection handoff dial: the handoff header rides
// the MuxOpen frame, authorization runs on the accepting controller before
// MuxAccept, and a stream's CloseWrite maps to MuxFin so the pre-suspend
// FLUSH-then-half-close drain protocol works unchanged over the mux.
//
// The Diffie-Hellman exchange of Section 3.3 moves from per-connection to
// per-transport: the two hosts agree on a transport secret once (mutually
// authenticated by HMAC tags over the hello transcript), and each
// connection's session key is derived from that secret bound to the
// connection id. Key independence is preserved — compromising one
// connection's key reveals nothing about siblings — while the modular
// exponentiation cost is paid once per host pair instead of once per
// connection (the Table 1 amortisation).
//
// # Protocol
//
// Connection state follows the fourteen-state machine of internal/fsm.
// Suspend/resume/close are request/verdict exchanges on the control channel,
// authenticated by an HMAC under a Diffie-Hellman session key established at
// setup (Section 3.3). Concurrent migrations of both endpoints are
// serialized with the ACK_WAIT / SUS_RES / RESUME_WAIT protocol of Sections
// 3.1–3.2, with deadlock freedom from a fixed hash-based agent priority.
//
// Beyond the paper, the implementation recovers from resume messages racing
// an agent's next hop (the mover re-resolves the peer through the location
// service and retries) and from data-socket failures while established (the
// connection degrades to SUSPENDED and is re-resumed, with lost in-flight
// frames retransmitted from a bounded send log) — the fault-tolerance
// extension the paper lists as future work.
package core
