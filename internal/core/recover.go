package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"naplet/internal/fault"
	"naplet/internal/fsm"
	"naplet/internal/journal"
	"naplet/internal/obs"
	"naplet/internal/wire"
)

// This file is the fault-tolerance wiring of the controller: the
// phi-accrual failure detector riding the control channel (heartbeat
// probes plus piggybacked traffic evidence), the write-ahead journal
// checkpoints taken at every connection lifecycle edge, and the crash
// recovery path that rebuilds controller state from the journal after a
// napletd restart and drives the stranded connections back through the
// normal resume handshake.

// restartNonceSlack is added to a restored connection's send nonce. The
// journal checkpoint may predate control messages sent just before the
// crash, and the peer rejects non-increasing nonces as replays; the slack
// jumps past anything the dead process could plausibly have sent.
const restartNonceSlack = 1 << 20

// connJournalKey keys one connection endpoint in the journal. The local
// agent id participates because both endpoints of a loopback connection
// can be journaled by the same controller.
func connJournalKey(localAgent string, id wire.ConnID) string {
	return localAgent + "|" + id.String()
}

// ---- failure detector ----

// probePeer is the detector's liveness probe: one HEARTBEAT exchange with
// the peer controller. Any valid reply (even a rejection) proves the host
// is alive; only transport failure counts against it.
func (ctrl *Controller) probePeer(ctx context.Context, peer string) error {
	m := &wire.ControlMsg{Type: wire.MsgHeartbeat}
	_, err := ctrl.ep.Request(ctx, peer, m.Encode())
	return err
}

// watchReconciler keeps the detector's watch set equal to the set of peer
// controllers with established connections here. It runs on its own
// goroutine and takes ctrl.mu and each socket's mu separately, never
// nested, to stay out of the control plane's lock ordering.
func (ctrl *Controller) watchReconciler(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctrl.done:
			return
		case <-t.C:
		}
		ctrl.reconcileWatches()
	}
}

func (ctrl *Controller) reconcileWatches() {
	conns := ctrl.tab.all()
	want := make(map[string]bool)
	for _, s := range conns {
		s.mu.Lock()
		if !s.closed && s.m.State() == fsm.Established && s.peerControlAddr != "" {
			want[s.peerControlAddr] = true
		}
		s.mu.Unlock()
	}
	for _, peer := range ctrl.det.Watched() {
		if want[peer] {
			delete(want, peer)
		} else {
			ctrl.det.Unwatch(peer)
		}
	}
	for peer := range want {
		ctrl.det.Watch(peer)
	}
}

// onFaultEvent consumes detector transitions. A confirmed-down peer fails
// every established connection toward it: the connections degrade to
// SUSPENDED and the failure-resume path polls the location service with
// backoff until the peer (or its agents, re-homed elsewhere) answers a
// normal resume handshake.
func (ctrl *Controller) onFaultEvent(ev fault.Event) {
	if ev.Kind != fault.EventConfirm {
		return
	}
	for _, s := range ctrl.tab.all() {
		s.mu.Lock()
		if !s.closed && s.peerControlAddr == ev.Peer && s.m.State() == fsm.Established {
			s.failLocked(fmt.Errorf("napletsocket: peer controller %s confirmed down (phi %.1f after %d failed probes)",
				ev.Peer, ev.Phi, ev.Failures))
		}
		s.mu.Unlock()
	}
}

// noteRecovered closes a failure episode: if the connection carries a
// failure timestamp (set by failLocked or by a crash restore), the elapsed
// time is recorded as the recovery latency.
func (s *Socket) noteRecovered() {
	s.mu.Lock()
	at := s.failedAt
	s.failedAt = time.Time{}
	s.mu.Unlock()
	if at.IsZero() {
		return
	}
	o := s.ctrl.obs
	o.connRecoveries.Inc()
	o.recoveryMs.ObserveDuration(time.Since(at))
	s.olog(obs.LevelInfo, "recovered %v after failure", time.Since(at).Round(time.Millisecond))
}

// ---- journal checkpoints ----

// journalRecord captures the connection as one journal record. The gob
// encode happens under mu: the snapshot shares payload slices with the live
// receive buffer and send log, whose pooled buffers may be recycled the
// moment the lock is released.
func (s *Socket) journalRecord() (journal.Record, error) {
	var buf bytes.Buffer
	s.mu.Lock()
	st := s.snapshotLocked()
	err := gob.NewEncoder(&buf).Encode(&st)
	s.mu.Unlock()
	if err != nil {
		return journal.Record{}, fmt.Errorf("napletsocket: encoding conn %s for journal: %w", wire.ConnID(st.ID), err)
	}
	return journal.Record{
		Kind: journal.KindConn,
		Key:  connJournalKey(st.LocalAgent, wire.ConnID(st.ID)),
		Data: buf.Bytes(),
	}, nil
}

// checkpointConn journals the connection's current state. Called at every
// lifecycle edge (established, suspended, resumed, restored); a crash at
// any point replays the latest checkpoint, and the sequence-numbered frame
// protocol absorbs whatever the checkpoint is behind on.
func (ctrl *Controller) checkpointConn(s *Socket) {
	j := ctrl.cfg.Journal
	if j == nil {
		return
	}
	rec, err := s.journalRecord()
	if err != nil {
		ctrl.logf("journal: %v", err)
		return
	}
	if err := j.Append(rec); err != nil && !errors.Is(err, journal.ErrClosed) {
		ctrl.logf("journal: checkpointing conn %s: %v", s.id, err)
	}
}

// dropConnJournal removes a connection's journal entry; the point a
// connection leaves this host for good (closed, or migrated away).
func (ctrl *Controller) dropConnJournal(localAgent string, id wire.ConnID) {
	if j := ctrl.cfg.Journal; j != nil {
		j.Delete(journal.KindConn, connJournalKey(localAgent, id))
	}
}

// CheckpointRecords returns journal records capturing every live
// connection of the agent, for the agent host to batch atomically with its
// own behaviour checkpoint: journaling application progress and the
// connections' send cursors in one batch is what preserves exactly-once
// delivery across a crash (neither ordering of separate writes survives a
// crash between them).
func (ctrl *Controller) CheckpointRecords(agentID string) []journal.Record {
	var recs []journal.Record
	for _, s := range ctrl.AgentSockets(agentID) {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			continue
		}
		rec, err := s.journalRecord()
		if err != nil {
			ctrl.logf("journal: %v", err)
			continue
		}
		recs = append(recs, rec)
	}
	return recs
}

// ---- crash recovery ----

// restoreConn rebuilds a connection endpoint from its serialized state in
// SUSPENDED and registers it; shared by the migration arrival path
// (nonceSlack 0 — the serialized state is exact) and the crash recovery
// path (restartNonceSlack — the checkpoint may be stale).
func (ctrl *Controller) restoreConn(st connState, nonceSlack uint64) (*Socket, error) {
	s, err := newSocket(ctrl, st.ID, st.LocalAgent, st.RemoteAgent, st.SessionKey, fsm.Suspended)
	if err != nil {
		return nil, fmt.Errorf("napletsocket: restoring connection %s: %w", wire.ConnID(st.ID), err)
	}
	s.mu.Lock()
	s.nextSendSeq = st.NextSendSeq
	s.lastEnqueued = st.LastEnqueued
	s.recvBuf = st.RecvBuf
	for _, e := range st.RecvBuf {
		s.recvBytes += len(e.Payload)
	}
	s.leftover = st.Leftover
	s.leftoverBack = st.Leftover
	s.leftoverSeq = st.LeftoverSeq
	// Whatever the tail's original provenance, it has now crossed a
	// migration (or restart) in the buffer; the bytes still to be read
	// count against the buffered path in Fig 7's accounting.
	s.leftoverBuf = len(st.Leftover) > 0
	s.leftoverRestored = len(st.Leftover) > 0
	s.sendLog = st.SendLog
	for _, e := range st.SendLog {
		s.sendLogSize += len(e.Payload)
	}
	s.peerControlAddr = st.PeerControlAddr
	s.peerDataAddr = st.PeerDataAddr
	s.sendNonce = st.SendNonce + nonceSlack
	s.lastPeerNonce = st.LastPeerNonce
	s.owesSusRes = st.OwesSusRes
	s.accepted = st.Accepted
	s.localSuspended = true
	if nonceSlack > 0 {
		// Crash restore: the connection has been down since (at latest) the
		// crash; stamp the episode so the resume records a recovery latency.
		s.failedAt = time.Now()
	}
	s.mu.Unlock()
	ctrl.registerConn(s)
	return s, nil
}

// RecoverConns rebuilds the controller's listeners and connections from
// the journal after a process restart and kicks off their resumption
// through the normal resume handshake. Call it once, after the journal is
// open and before agents restart their traffic; it returns the number of
// connections restored.
func (ctrl *Controller) RecoverConns() (int, error) {
	j := ctrl.cfg.Journal
	if j == nil {
		return 0, nil
	}

	for agentID := range j.Entries(journal.KindListener) {
		if _, err := ctrl.ListenAs(agentID, ctrl.cfg.Guard.IssueCredential(agentID)); err != nil {
			ctrl.logf("recover: restoring listener of %s: %v", agentID, err)
		}
	}

	restored := 0
	for key, data := range j.Entries(journal.KindConn) {
		var st connState
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
			ctrl.logf("recover: undecodable conn record %q: %v", key, err)
			continue
		}
		s, err := ctrl.restoreConn(st, restartNonceSlack)
		if err != nil {
			ctrl.logf("recover: %v", err)
			continue
		}
		// Re-checkpoint immediately with the bumped nonce, so a second crash
		// before the resume completes bumps again from here, not from the
		// pre-crash value.
		ctrl.checkpointConn(s)
		restored++
		go func(s *Socket) {
			if err := s.Resume(); err != nil && !errors.Is(err, ErrClosed) {
				ctrl.logf("conn %s: resume after restart: %v", s.id, err)
			}
		}(s)
	}
	if restored > 0 || j.Replayed() > 0 {
		ctrl.olog(obs.LevelInfo, "recovered %d connections from journal (%d records replayed)",
			restored, j.Replayed())
	}
	return restored, nil
}
