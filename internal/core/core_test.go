package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"naplet/internal/fsm"
	"naplet/internal/naming"
	"naplet/internal/security"
	"naplet/internal/wire"
)

// testHost is one simulated host: a controller plus the identity machinery
// an agent needs, without the full agent runtime.
type testHost struct {
	name  string
	ctrl  *Controller
	guard *security.Guard
}

// cred issues a credential for an agent "resident" on this host.
func (h *testHost) cred(agentID string) [security.CredentialSize]byte {
	return h.guard.IssueCredential(agentID)
}

func (h *testHost) loc() naming.Location {
	return naming.Location{
		Host:        h.name,
		ControlAddr: h.ctrl.ControlAddr(),
		DataAddr:    h.ctrl.DataAddr(),
	}
}

type testEnv struct {
	t     *testing.T
	svc   *naming.Service
	hosts map[string]*testHost
}

type envOption func(*Config)

func insecure() envOption        { return func(c *Config) { c.Insecure = true } }
func noFailureResume() envOption { return func(c *Config) { c.DisableFailureResume = true } }
func quickOps() envOption {
	return func(c *Config) { c.OpTimeout = 2 * time.Second; c.DrainTimeout = 2 * time.Second }
}
func parkFor(d time.Duration) envOption { return func(c *Config) { c.ParkTimeout = d } }

func newEnv(t *testing.T, hostNames []string, opts ...envOption) *testEnv {
	t.Helper()
	env := &testEnv{t: t, svc: naming.NewService(), hosts: make(map[string]*testHost)}
	for _, name := range hostNames {
		guard, err := security.NewGuard(security.NewStore(security.AllowAgentAll()...))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			HostName:     name,
			Guard:        guard,
			Locator:      env.svc,
			Logf:         t.Logf,
			OpTimeout:    2 * time.Second,
			ParkTimeout:  20 * time.Second,
			DrainTimeout: 2 * time.Second,
		}
		for _, o := range opts {
			o(&cfg)
		}
		ctrl, err := NewController(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ctrl.Close() })
		env.hosts[name] = &testHost{name: name, ctrl: ctrl, guard: guard}
	}
	return env
}

// place registers an agent at a host in the location service.
func (e *testEnv) place(agentID, host string) {
	e.t.Helper()
	if err := e.svc.Register(agentID, e.hosts[host].loc()); err != nil {
		e.t.Fatal(err)
	}
}

// pair establishes a connection: client on hostC dials server agent on
// hostS, returning both endpoints.
func (e *testEnv) pair(clientAgent, hostC, serverAgent, hostS string) (*Socket, *Socket) {
	e.t.Helper()
	hc, hs := e.hosts[hostC], e.hosts[hostS]
	e.place(clientAgent, hostC)
	e.place(serverAgent, hostS)
	ss, err := hs.ctrl.ListenAs(serverAgent, hs.cred(serverAgent))
	if err != nil {
		e.t.Fatal(err)
	}
	type acceptResult struct {
		s   *Socket
		err error
	}
	acceptCh := make(chan acceptResult, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s, err := ss.Accept(ctx)
		acceptCh <- acceptResult{s, err}
	}()
	client, err := hc.ctrl.OpenAs(clientAgent, hc.cred(clientAgent), serverAgent)
	if err != nil {
		e.t.Fatal(err)
	}
	res := <-acceptCh
	if res.err != nil {
		e.t.Fatal(res.err)
	}
	return client, res.s
}

// migrate simulates the docking system moving an agent between hosts: the
// origin controller's PreDepart, the location update, the destination
// controller's PostArrive.
func (e *testEnv) migrate(agentID, from, to string, epoch uint64) {
	e.t.Helper()
	blob, err := e.hosts[from].ctrl.PreDepart(agentID)
	if err != nil {
		e.t.Fatalf("PreDepart(%s): %v", agentID, err)
	}
	if err := e.svc.Update(agentID, e.hosts[to].loc(), epoch); err != nil {
		e.t.Fatalf("location update for %s: %v", agentID, err)
	}
	if err := e.hosts[to].ctrl.PostArrive(agentID, blob); err != nil {
		e.t.Fatalf("PostArrive(%s): %v", agentID, err)
	}
}

func waitEstablished(t *testing.T, sockets ...*Socket) {
	t.Helper()
	for _, s := range sockets {
		if _, err := s.waitState(15*time.Second, fsm.Established); err != nil {
			t.Fatalf("conn %s never established: %v (state %s)", s.ID(), err, s.State())
		}
	}
}

// ---- establishment and data transfer ----

func TestOpenAcceptRoundTrip(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("alice", "h1", "bob", "h2")
	defer client.Close()

	if client.State() != fsm.Established || server.State() != fsm.Established {
		t.Fatalf("states: client %s server %s", client.State(), server.State())
	}
	if client.LocalAgent() != "alice" || client.RemoteAgent() != "bob" {
		t.Fatalf("client agents: %s -> %s", client.LocalAgent(), client.RemoteAgent())
	}
	if server.LocalAgent() != "bob" || server.RemoteAgent() != "alice" {
		t.Fatalf("server agents: %s -> %s", server.LocalAgent(), server.RemoteAgent())
	}
	if client.ID() != server.ID() {
		t.Fatal("endpoint connection ids differ")
	}

	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := server.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "ping" {
		t.Fatalf("server read %q", buf[:n])
	}
	if _, err := server.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	n, err = client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "pong" {
		t.Fatalf("client read %q", buf[:n])
	}
}

func TestOpenInsecureMode(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"}, insecure())
	client, server := env.pair("a", "h1", "b", "h2")
	defer client.Close()
	if _, err := client.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if n, err := server.Read(buf); err != nil || string(buf[:n]) != "x" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
}

func TestSameHostConnection(t *testing.T) {
	env := newEnv(t, []string{"h1"})
	client, server := env.pair("a", "h1", "b", "h1")
	defer client.Close()
	if _, err := client.Write([]byte("local")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if n, _ := server.Read(buf); string(buf[:n]) != "local" {
		t.Fatalf("read %q", buf[:n])
	}
}

func TestMessageBoundaries(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	defer client.Close()
	msgs := []string{"one", "two", "three"}
	for _, m := range msgs {
		if err := client.WriteMsg([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := server.ReadMsg()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("ReadMsg = %q, want %q", got, want)
		}
	}
}

func TestLargeTransfer(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	defer client.Close()

	payload := make([]byte, 3<<20) // spans multiple frames
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		if _, err := client.Write(payload); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large transfer corrupted")
	}
}

func TestBidirectionalConcurrentTransfer(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	defer client.Close()

	const per = 200
	var wg sync.WaitGroup
	send := func(s *Socket, tag byte) {
		defer wg.Done()
		for i := 0; i < per; i++ {
			if err := s.WriteMsg([]byte{tag, byte(i)}); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}
	recv := func(s *Socket, tag byte) {
		defer wg.Done()
		for i := 0; i < per; i++ {
			m, err := s.ReadMsg()
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if m[0] != tag || m[1] != byte(i) {
				t.Errorf("got %v, want [%d %d]", m, tag, byte(i))
				return
			}
		}
	}
	wg.Add(4)
	go send(client, 'c')
	go recv(server, 'c')
	go send(server, 's')
	go recv(client, 's')
	wg.Wait()
}

// ---- security ----

func TestOpenDeniedWithoutPolicy(t *testing.T) {
	// A guard with no agent allow rules: default deny.
	env := &testEnv{t: t, svc: naming.NewService(), hosts: make(map[string]*testHost)}
	guard, _ := security.NewGuard(security.NewStore())
	ctrl, err := NewController(Config{HostName: "h1", Guard: guard, Locator: env.svc, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	env.hosts["h1"] = &testHost{name: "h1", ctrl: ctrl, guard: guard}
	env.place("b", "h1")
	_, err = ctrl.OpenAs("a", guard.IssueCredential("a"), "b")
	if !errors.Is(err, security.ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
}

func TestOpenDeniedWithBadCredential(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	env.place("b", "h2")
	var forged [security.CredentialSize]byte
	_, err := env.hosts["h1"].ctrl.OpenAs("a", forged, "b")
	if !errors.Is(err, security.ErrAuthentication) {
		t.Fatalf("err = %v, want ErrAuthentication", err)
	}
}

func TestListenDeniedWithBadCredential(t *testing.T) {
	env := newEnv(t, []string{"h1"})
	var forged [security.CredentialSize]byte
	_, err := env.hosts["h1"].ctrl.ListenAs("b", forged)
	if !errors.Is(err, security.ErrAuthentication) {
		t.Fatalf("err = %v, want ErrAuthentication", err)
	}
}

func TestOpenToAbsentAgentFails(t *testing.T) {
	env := newEnv(t, []string{"h1"})
	h := env.hosts["h1"]
	_, err := h.ctrl.OpenAs("a", h.cred("a"), "nobody")
	if !errors.Is(err, naming.ErrNotFound) {
		t.Fatalf("err = %v, want naming.ErrNotFound", err)
	}
}

func TestOpenToNonListeningAgentFails(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	env.place("b", "h2") // registered but not listening
	h := env.hosts["h1"]
	_, err := h.ctrl.OpenAs("a", h.cred("a"), "b")
	if err == nil {
		t.Fatal("open to non-listening agent succeeded")
	}
}

// ---- explicit suspend/resume (paper's application-controlled interface) ----

func TestSuspendResumeExplicit(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	defer client.Close()

	if _, err := client.Write([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := client.Suspend(); err != nil {
		t.Fatal(err)
	}
	if client.State() != fsm.Suspended {
		t.Fatalf("client state after suspend = %s", client.State())
	}
	if _, err := server.waitState(5*time.Second, fsm.Suspended); err != nil {
		t.Fatalf("server never suspended: %v", err)
	}
	if err := client.Resume(); err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, client, server)

	if _, err := client.Write([]byte(" after")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len("before after"))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "before after" {
		t.Fatalf("read %q", got)
	}
}

func TestSuspendIsIdempotent(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, _ := env.pair("a", "h1", "b", "h2")
	defer client.Close()
	if err := client.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := client.Suspend(); err != nil {
		t.Fatalf("second suspend: %v", err)
	}
	if err := client.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := client.Resume(); err != nil {
		t.Fatalf("second resume: %v", err)
	}
}

func TestPeerInitiatedSuspendBlocksWriterTransparently(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	defer client.Close()

	if err := server.Suspend(); err != nil {
		t.Fatal(err)
	}
	// The client side is suspended too; a write must block, then complete
	// after resume.
	wrote := make(chan error, 1)
	go func() {
		_, err := client.Write([]byte("delayed"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("write completed while suspended (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	if err := server.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := <-wrote; err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := server.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "delayed" {
		t.Fatalf("read %q", buf[:n])
	}
}

func TestInFlightDataSurvivesSuspend(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	defer client.Close()

	// Fill the pipe, then suspend before the receiver reads anything: all
	// in-flight frames must be drained into the buffer, none lost.
	const n = 500
	for i := 0; i < n; i++ {
		if err := client.WriteMsg([]byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := server.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := server.Resume(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		m, err := server.ReadMsg()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if int(m[0])|int(m[1])<<8 != i {
			t.Fatalf("msg %d: got %v", i, m)
		}
	}
}

// ---- close ----

func TestCloseFromEstablished(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	if _, err := client.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if client.State() != fsm.Closed {
		t.Fatalf("client state = %s", client.State())
	}
	// The passive side delivers remaining data then EOF.
	buf := make([]byte, 8)
	n, err := server.Read(buf)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n > 0 && string(buf[:n]) != "bye" {
		t.Fatalf("read %q", buf[:n])
	}
	deadline := time.Now().Add(5 * time.Second)
	for server.State() != fsm.Closed {
		if time.Now().After(deadline) {
			t.Fatalf("server state = %s, want CLOSED", server.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := server.Read(buf); err != io.EOF {
		t.Fatalf("read after close: %v, want EOF", err)
	}
	if _, err := server.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v, want ErrClosed", err)
	}
}

func TestCloseFromSuspended(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	if err := client.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for server.State() != fsm.Closed {
		if time.Now().After(deadline) {
			t.Fatalf("server state = %s, want CLOSED", server.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, _ := env.pair("a", "h1", "b", "h2")
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
}

// ---- redirector security ----

func TestHandoffWithBadTokenRejected(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, _ := env.pair("a", "h1", "b", "h2")
	defer client.Close()

	// Forge a resume handoff for the existing connection without the
	// session key.
	hdr := &wire.HandoffHeader{
		Purpose:   wire.HandoffResume,
		ConnID:    client.ID(),
		FromAgent: "a",
		Nonce:     999,
	}
	sock, err := dialHandoff(env.hosts["h2"].ctrl.DataAddr(), hdr)
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	status, err := wire.ReadHandoffStatus(sock)
	if err != nil {
		t.Fatal(err)
	}
	if status != wire.HandoffDenied {
		t.Fatalf("forged handoff status = %v, want denied", status)
	}
}

func TestHandoffForUnknownConnRejected(t *testing.T) {
	env := newEnv(t, []string{"h1"})
	id, _ := wire.NewConnID()
	hdr := &wire.HandoffHeader{Purpose: wire.HandoffConnect, ConnID: id, TargetAgent: "x", FromAgent: "y"}
	sock, err := dialHandoff(env.hosts["h1"].ctrl.DataAddr(), hdr)
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	status, err := wire.ReadHandoffStatus(sock)
	if err != nil {
		t.Fatal(err)
	}
	if status != wire.HandoffDenied {
		t.Fatalf("status = %v, want denied", status)
	}
}

func dialHandoff(addr string, hdr *wire.HandoffHeader) (io.ReadWriteCloser, error) {
	sock, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	if err := hdr.Write(sock); err != nil {
		sock.Close()
		return nil, err
	}
	return sock, nil
}

// ---- control-plane authentication ----

func TestReplayedControlMessageRejected(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, _ := env.pair("a", "h1", "b", "h2")
	defer client.Close()

	// Build a correctly signed SUS with a stale nonce: the server conn
	// must reject it even though the tag verifies.
	m := &wire.ControlMsg{
		Type:   wire.MsgSuspend,
		ConnID: client.ID(),
		From:   "a",
		To:     "b",
		Nonce:  0, // never valid: nonces start at 1
	}
	m.Tag = client.auth.Sign(m.SigningBytes())
	if err := func() error {
		serverConn, ok := env.hosts["h2"].ctrl.connByKey(client.ID(), "b")
		if !ok {
			return errors.New("server conn missing")
		}
		return serverConn.checkAuth(m)
	}(); err == nil {
		t.Fatal("replayed nonce accepted")
	}
}

func TestTamperedControlMessageRejected(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, _ := env.pair("a", "h1", "b", "h2")
	defer client.Close()
	m := &wire.ControlMsg{
		Type: wire.MsgSuspend, ConnID: client.ID(), From: "a", To: "b", Nonce: 99,
	}
	m.Tag = client.auth.Sign(m.SigningBytes())
	m.Nonce = 100 // tamper after signing
	serverConn, ok := env.hosts["h2"].ctrl.connByKey(client.ID(), "b")
	if !ok {
		t.Fatal("server conn missing")
	}
	if err := serverConn.checkAuth(m); err == nil {
		t.Fatal("tampered message accepted")
	}
}
