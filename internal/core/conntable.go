package core

import (
	"sync"

	"naplet/internal/wire"
)

// connShards is the stripe count of the controller's connection table.
// Every hot-path operation — register, drop, lookup by key, the
// per-agent queries the migration hook makes, and the isMigrating check
// on the resume path — is keyed by agent id, so the table stripes on a
// hash of the agent: two agents on different shards never contend, and
// at 100k conns the old whole-table mutex (one lock for every
// registerConn/dropConn/connByKey in the process) becomes 64 locks each
// covering ~1.5k conns.
const connShards = 64

// connShard is one stripe: the maps mirror the old Controller fields,
// restricted to agents that hash here. migrating lives with the conns it
// gates so PreDepart's set-flag-and-collect is one lock acquisition.
type connShard struct {
	mu        sync.Mutex
	conns     map[connKey]*Socket
	byAgent   map[string]map[wire.ConnID]*Socket
	migrating map[string]bool
}

// connTable is the sharded resident-connection table.
type connTable struct {
	shards [connShards]connShard
}

func newConnTable() *connTable {
	t := &connTable{}
	for i := range t.shards {
		s := &t.shards[i]
		s.conns = make(map[connKey]*Socket)
		s.byAgent = make(map[string]map[wire.ConnID]*Socket)
		s.migrating = make(map[string]bool)
	}
	return t
}

// shard maps an agent id to its stripe (FNV-1a).
func (t *connTable) shard(agent string) *connShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(agent); i++ {
		h ^= uint64(agent[i])
		h *= prime64
	}
	return &t.shards[h%connShards]
}

// register adds a socket under its local agent.
func (t *connTable) register(s *Socket) {
	sh := t.shard(s.localAgent)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.conns[connKey{id: s.id, agent: s.localAgent}] = s
	agents := sh.byAgent[s.localAgent]
	if agents == nil {
		agents = make(map[wire.ConnID]*Socket)
		sh.byAgent[s.localAgent] = agents
	}
	agents[s.id] = s
}

// drop removes a socket; it is a no-op for sockets already dropped.
func (t *connTable) drop(s *Socket) {
	sh := t.shard(s.localAgent)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.conns, connKey{id: s.id, agent: s.localAgent})
	if agents := sh.byAgent[s.localAgent]; agents != nil {
		delete(agents, s.id)
		if len(agents) == 0 {
			delete(sh.byAgent, s.localAgent)
		}
	}
}

// byKey fetches a resident connection endpoint by id and local agent.
func (t *connTable) byKey(id wire.ConnID, agent string) (*Socket, bool) {
	sh := t.shard(agent)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.conns[connKey{id: id, agent: agent}]
	return s, ok
}

// agentSocket fetches one of an agent's connections by id.
func (t *connTable) agentSocket(agent string, id wire.ConnID) (*Socket, bool) {
	sh := t.shard(agent)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.byAgent[agent][id]
	return s, ok
}

// agentSockets lists an agent's resident connections.
func (t *connTable) agentSockets(agent string) []*Socket {
	sh := t.shard(agent)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]*Socket, 0, len(sh.byAgent[agent]))
	for _, s := range sh.byAgent[agent] {
		out = append(out, s)
	}
	return out
}

// setMigrating flips the agent's suspend-phase flag; when turning the
// flag on it also returns the agent's resident connections, so the
// migration hook's "mark and collect" is atomic within the shard.
func (t *connTable) setMigrating(agent string, v bool) []*Socket {
	sh := t.shard(agent)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !v {
		delete(sh.migrating, agent)
		return nil
	}
	sh.migrating[agent] = true
	out := make([]*Socket, 0, len(sh.byAgent[agent]))
	for _, s := range sh.byAgent[agent] {
		out = append(out, s)
	}
	return out
}

// isMigrating reports whether the agent is in its suspend phase.
func (t *connTable) isMigrating(agent string) bool {
	sh := t.shard(agent)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.migrating[agent]
}

// migratingCount counts agents currently in their suspend phase.
func (t *connTable) migratingCount() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.migrating)
		sh.mu.Unlock()
	}
	return n
}

// all snapshots every resident connection across the shards.
func (t *connTable) all() []*Socket {
	var out []*Socket
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, s := range sh.conns {
			out = append(out, s)
		}
		sh.mu.Unlock()
	}
	return out
}

// count returns the number of resident connection endpoints.
func (t *connTable) count() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.conns)
		sh.mu.Unlock()
	}
	return n
}
