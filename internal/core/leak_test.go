package core

import (
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"
)

// settledGoroutines samples runtime.NumGoroutine until it reaches target
// (when target > 0) or holds steady across consecutive samples, bounded by
// a deadline. Connection teardown is asynchronous (drainAndClose
// goroutines, redirector handshakes), so a single instantaneous sample
// would race with in-flight cleanup.
func settledGoroutines(t *testing.T, target int) int {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	last := runtime.NumGoroutine()
	for {
		time.Sleep(100 * time.Millisecond)
		n := runtime.NumGoroutine()
		if target > 0 && n <= target {
			return n
		}
		if time.Now().After(deadline) {
			return n
		}
		if target == 0 && n == last {
			return n
		}
		last = n
	}
}

// TestGoroutineCountFlatAcrossConns guards the goroutine collapse behind
// the 100k-connection target: opening and closing many connections must
// not leave per-connection goroutines behind. Steady state is
// O(transports + worker pool + timer wheel), not O(conns), so after a
// churn of N connections the count must return to the post-warmup
// baseline (slack covers runtime and test-harness noise).
func TestGoroutineCountFlatAcrossConns(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"}, noFailureResume())

	churn := func(i int) {
		t.Helper()
		client, server := env.pair(fmt.Sprintf("leak-c%d", i), "h1", fmt.Sprintf("leak-s%d", i), "h2")
		if _, err := client.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(server, buf); err != nil {
			t.Fatal(err)
		}
		if err := client.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Warm up the shared machinery (host-pair transports, data-plane
	// worker pool, timer wheel) so it lands in the baseline, not in the
	// churn delta.
	churn(-1)
	base := settledGoroutines(t, 0)

	const conns = 48
	for i := 0; i < conns; i++ {
		churn(i)
	}

	const slack = 8
	after := settledGoroutines(t, base+slack)
	if after > base+slack {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines grew from %d to %d after churning %d conns (slack %d)\n%s",
			base, after, conns, slack, buf[:n])
	}
	t.Logf("goroutines: baseline %d, after %d conns: %d", base, conns, after)
}
